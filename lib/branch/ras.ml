type t = {
  stack : int array;
  size : int;
  mutable tos : int; (* index of the next free slot, grows upward mod size *)
  mutable live : int;
  mutable n_push : int;
  mutable n_pop : int;
  mutable version : int;
}

let create size =
  if size <= 0 then invalid_arg "Ras.create: size must be positive";
  {
    stack = Array.make size 0;
    size;
    tos = 0;
    live = 0;
    n_push = 0;
    n_pop = 0;
    version = 0;
  }

let push t v =
  t.n_push <- t.n_push + 1;
  t.version <- t.version + 1;
  t.stack.(t.tos) <- v;
  t.tos <- (t.tos + 1) mod t.size;
  t.live <- min t.size (t.live + 1)

let pop t =
  t.n_pop <- t.n_pop + 1;
  t.version <- t.version + 1;
  if t.live = 0 then None
  else begin
    t.tos <- (t.tos + t.size - 1) mod t.size;
    t.live <- t.live - 1;
    Some t.stack.(t.tos)
  end

(* Pack tos and live into one int so a checkpoint is a plain immediate. *)
let checkpoint t = (t.tos lsl 16) lor t.live

let restore t ck =
  t.version <- t.version + 1;
  t.tos <- (ck lsr 16) mod t.size;
  t.live <- min t.size (ck land 0xFFFF)

(* Every push/pop/restore changes the observable stack (window or top
   index), so the version counts all of them. RAS traffic only happens
   on the fetch path, which Code Reuse gates, so during a reused loop
   the version is frozen -- exactly the property the fast-forward
   controller verifies. *)
let version t = t.version

let depth t = t.live
let pushes t = t.n_push
let pops t = t.n_pop
