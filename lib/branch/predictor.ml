open Riq_isa

type scheme = Bimodal | Gshare of { history_bits : int }

type config = {
  scheme : scheme;
  entries : int;
  btb_sets : int;
  btb_ways : int;
  ras_size : int;
}

let baseline = { scheme = Bimodal; entries = 2048; btb_sets = 512; btb_ways = 4; ras_size = 8 }

type dir = Dir_bimod of Bimod.t | Dir_gshare of Gshare.t

type t = {
  config : config;
  dir : dir;
  btb : Btb.t;
  ras : Ras.t;
  mutable n_dir_lookup : int;
  mutable n_dir_update : int;
}

let create config =
  let dir =
    match config.scheme with
    | Bimodal -> Dir_bimod (Bimod.create config.entries)
    | Gshare { history_bits } ->
        Dir_gshare (Gshare.create ~entries:config.entries ~history_bits)
  in
  {
    config;
    dir;
    btb = Btb.create ~sets:config.btb_sets ~ways:config.btb_ways;
    ras = Ras.create config.ras_size;
    n_dir_lookup = 0;
    n_dir_update = 0;
  }

let cfg t = t.config

type decision = { taken : bool; target : int option; used_ras : bool; btb_hit : bool }

let fall_through = { taken = false; target = None; used_ras = false; btb_hit = false }

let predict_dir t ~pc =
  t.n_dir_lookup <- t.n_dir_lookup + 1;
  match t.dir with
  | Dir_bimod b -> Bimod.predict b ~pc
  | Dir_gshare g -> Gshare.predict g ~pc

let update_dir t ~pc ~taken =
  t.n_dir_update <- t.n_dir_update + 1;
  match t.dir with
  | Dir_bimod b -> Bimod.update b ~pc ~taken
  | Dir_gshare g -> Gshare.update g ~pc ~taken

let lookup t ~pc ~insn =
  match Insn.kind insn with
  | Insn.K_branch ->
      let taken = predict_dir t ~pc in
      let btb = Btb.lookup t.btb ~pc in
      let target = if taken then Insn.ctrl_target insn ~pc else None in
      { taken; target; used_ras = false; btb_hit = btb <> None }
  | K_jump ->
      let btb = Btb.lookup t.btb ~pc in
      { taken = true; target = Insn.ctrl_target insn ~pc; used_ras = false; btb_hit = btb <> None }
  | K_call ->
      Ras.push t.ras (pc + 4);
      let btb = Btb.lookup t.btb ~pc in
      let target =
        match Insn.ctrl_target insn ~pc with Some tgt -> Some tgt | None -> btb
      in
      { taken = true; target; used_ras = false; btb_hit = btb <> None }
  | K_return -> (
      let popped = Ras.pop t.ras in
      match popped with
      | Some target -> { taken = true; target = Some target; used_ras = true; btb_hit = false }
      | None ->
          let btb = Btb.lookup t.btb ~pc in
          { taken = true; target = btb; used_ras = false; btb_hit = btb <> None })
  | K_ijump ->
      let btb = Btb.lookup t.btb ~pc in
      { taken = true; target = btb; used_ras = false; btb_hit = btb <> None }
  | K_int | K_fp | K_load | K_store | K_nop | K_halt -> fall_through

(* Decoded variants: same table mutations in the same order as
   [lookup]/[resolve], but driven by a pre-extracted kind and static
   target (-1 = statically unknown) and returning the predicted next pc
   directly (-1 = unknown, fetch must stall) — no option or record
   allocation on the fetch path. *)

let lookup_decoded t ~pc ~kind ~static_target =
  match kind with
  | Insn.K_branch ->
      let taken = predict_dir t ~pc in
      ignore (Btb.lookup_target t.btb ~pc);
      if taken then static_target else pc + 4
  | K_jump ->
      ignore (Btb.lookup_target t.btb ~pc);
      static_target
  | K_call ->
      Ras.push t.ras (pc + 4);
      let btb = Btb.lookup_target t.btb ~pc in
      if static_target >= 0 then static_target else btb
  | K_return -> (
      match Ras.pop t.ras with
      | Some target -> target
      | None -> Btb.lookup_target t.btb ~pc)
  | K_ijump -> Btb.lookup_target t.btb ~pc
  | K_int | K_fp | K_load | K_store | K_nop | K_halt -> pc + 4

let resolve_decoded t ~pc ~kind ~taken ~target =
  match kind with
  | Insn.K_branch ->
      update_dir t ~pc ~taken;
      if taken then Btb.update t.btb ~pc ~target
  | K_jump | K_call | K_ijump -> Btb.update t.btb ~pc ~target
  | K_return -> ()
  | K_int | K_fp | K_load | K_store | K_nop | K_halt -> ()

let resolve t ~pc ~insn ~taken ~target =
  match Insn.kind insn with
  | Insn.K_branch ->
      update_dir t ~pc ~taken;
      if taken then Btb.update t.btb ~pc ~target
  | K_jump | K_call | K_ijump -> Btb.update t.btb ~pc ~target
  | K_return -> () (* returns are served by the RAS, keeping the BTB clean *)
  | K_int | K_fp | K_load | K_store | K_nop | K_halt -> ()

(* Fast-forward snapshot support: the direction tables, BTB contents and
   RAS window must repeat exactly across steady-state loop iterations
   (rigid); the BTB clock/LRU stamps and the access counters advance by a
   constant per-iteration stride (affine) and are relocated by adding a
   multiple of that stride. Rigid equality is proven in O(1) by content
   version counters: each component bumps its version exactly when stored
   content changes, so two equal readings of the sum certify that no
   component mutated in between (the counters are individually monotonic
   non-decreasing, making the sum collision-free). *)

let ffwd_version t =
  (match t.dir with
  | Dir_bimod b -> Bimod.version b
  | Dir_gshare g -> Gshare.version g)
  + Btb.version t.btb + Ras.version t.ras

let ffwd_affine t =
  let btb = Btb.ffwd_affine t.btb in
  let n = Array.length btb in
  let a = Array.make (2 + n) 0 in
  a.(0) <- t.n_dir_lookup;
  a.(1) <- t.n_dir_update;
  Array.blit btb 0 a 2 n;
  a

let ffwd_set_affine t a =
  t.n_dir_lookup <- a.(0);
  t.n_dir_update <- a.(1);
  Btb.ffwd_set_affine t.btb (Array.sub a 2 (Array.length a - 2))

type checkpoint = int

let checkpoint t = Ras.checkpoint t.ras
let restore t ck = Ras.restore t.ras ck

let dir_lookups t = t.n_dir_lookup
let dir_updates t = t.n_dir_update
let btb_lookups t = Btb.lookups t.btb
let btb_updates t = Btb.updates t.btb
let ras_ops t = Ras.pushes t.ras + Ras.pops t.ras
