open Riq_isa

(** The complete front-end branch prediction unit: a direction predictor
    (bimodal by default, gshare as an ablation), the branch target buffer,
    and the return address stack.

    The fetch stage calls {!lookup} once per control instruction; the
    writeback stage calls {!resolve} with the computed outcome. Access
    counts feed the power model — in the paper's Code Reuse state the
    lookup path is gated while resolve-time table updates continue. *)

type scheme = Bimodal | Gshare of { history_bits : int }

type config = {
  scheme : scheme;
  entries : int; (** direction table entries *)
  btb_sets : int;
  btb_ways : int;
  ras_size : int;
}

val baseline : config
(** Table 1: bimodal with 2048 entries, 512-set 4-way BTB, 8-entry RAS. *)

type t

val create : config -> t
val cfg : t -> config

type decision = {
  taken : bool;
  target : int option;
      (** Predicted next PC when taken; [None] when the unit has no target
          (BTB miss on an indirect jump) — the fetch stage must stall. *)
  used_ras : bool;
  btb_hit : bool;
}

val lookup : t -> pc:int -> insn:Insn.t -> decision
(** Consult the unit for the control instruction [insn] at [pc]. Calls and
    returns speculatively push/pop the RAS. Non-control instructions return
    a fall-through decision without touching any table. *)

val resolve : t -> pc:int -> insn:Insn.t -> taken:bool -> target:int -> unit
(** Train the unit with the architectural outcome. *)

val lookup_decoded : t -> pc:int -> kind:Insn.kind -> static_target:int -> int
(** Allocation-free {!lookup} for the packed fast path: the caller
    supplies the pre-decoded kind and statically-known taken target
    ([-1] = unknown), and gets the predicted next pc back directly
    ([-1] = no target, fetch must stall). Performs exactly the same table
    lookups and RAS operations (in the same order) as {!lookup}, so
    every access counter advances identically. *)

val resolve_decoded : t -> pc:int -> kind:Insn.kind -> taken:bool -> target:int -> unit
(** {!resolve} driven by a pre-decoded kind. *)

type checkpoint = int
(** Concrete so pipeline structures can store checkpoints in plain integer
    fields; treat the value as opaque. *)

val checkpoint : t -> checkpoint
(** Capture RAS state before a speculative control instruction. *)

val restore : t -> checkpoint -> unit

(** {2 Fast-forward snapshot support}

    [Riq_core.Processor]'s steady-state loop fast-forward verifies that
    predictor state repeats across loop iterations before replaying them
    analytically. Table contents must match exactly ({!ffwd_version});
    monotonic clocks and access counters advance by a constant stride per
    iteration and are captured/relocated separately ({!ffwd_affine}). *)

val ffwd_version : t -> int
(** Sum of the component content versions (direction table, BTB, RAS).
    Each component's version is monotonic non-decreasing and bumps exactly
    when its stored content changes, so equal readings at two points prove
    the tables were bit-identical throughout the interval — an O(1),
    strictly conservative stand-in for hashing the tables. *)

val ffwd_affine : t -> int array
(** Access counters, BTB clock and per-entry LRU stamps. *)

val ffwd_set_affine : t -> int array -> unit

(** {2 Access statistics (power model inputs)} *)

val dir_lookups : t -> int
val dir_updates : t -> int
val btb_lookups : t -> int
val btb_updates : t -> int
val ras_ops : t -> int
