(** Gshare direction predictor (global history XOR PC into a table of 2-bit
    counters). Not part of the paper's baseline (which is bimodal); provided
    for the predictor-sensitivity ablation bench. History is updated at
    resolve time (non-speculatively). *)

type t

val create : entries:int -> history_bits:int -> t
val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit

val version : t -> int
(** Content version: monotonic, bumped when a counter or the history
    register changes (fast-forward snapshot support). *)
