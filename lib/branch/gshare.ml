open Riq_util

type t = {
  table : Bytes.t;
  mask : int;
  hmask : int;
  mutable history : int;
  mutable version : int;
}

let create ~entries ~history_bits =
  if not (Bits.is_pow2 entries) then invalid_arg "Gshare.create: entries must be a power of two";
  if history_bits < 1 || history_bits > 24 then invalid_arg "Gshare.create: history bits";
  {
    table = Bytes.make entries '\001';
    mask = entries - 1;
    hmask = (1 lsl history_bits) - 1;
    history = 0;
    version = 0;
  }

(* Content version (see Bimod): counter-table and history changes both
   count. The history register shifts on every update, so under gshare
   the version essentially always advances and the fast-forward
   controller correctly refuses to extrapolate. *)
let version t = t.version

let index t ~pc = ((pc lsr 2) lxor t.history) land t.mask
let predict t ~pc = Char.code (Bytes.get t.table (index t ~pc)) >= 2

let update t ~pc ~taken =
  let i = index t ~pc in
  let c = Char.code (Bytes.get t.table i) in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  if c' <> c then begin
    Bytes.set t.table i (Char.chr c');
    t.version <- t.version + 1
  end;
  let h = ((t.history lsl 1) lor (if taken then 1 else 0)) land t.hmask in
  if h <> t.history then begin
    t.history <- h;
    t.version <- t.version + 1
  end
