open Riq_util

type entry = { mutable tag : int; mutable target : int; mutable valid : bool; mutable lru : int }

type t = {
  sets : int;
  ways : int;
  table : entry array;
  mutable clock : int;
  mutable n_lookup : int;
  mutable n_hit : int;
  mutable n_update : int;
  mutable version : int;
}

let create ~sets ~ways =
  if not (Bits.is_pow2 sets) then invalid_arg "Btb.create: sets must be a power of two";
  if ways < 1 then invalid_arg "Btb.create: ways must be >= 1";
  {
    sets;
    ways;
    table =
      Array.init (sets * ways) (fun _ -> { tag = 0; target = 0; valid = false; lru = 0 });
    clock = 0;
    n_lookup = 0;
    n_hit = 0;
    n_update = 0;
    version = 0;
  }

(* Table index of the matching way, or -1: the hot path stays free of
   option and tuple allocations. *)
let find_idx t ~pc =
  let idx = pc lsr 2 in
  let set = idx land (t.sets - 1) in
  let tag = idx / t.sets in
  let base = set * t.ways in
  let rec go w last =
    if w = t.ways then last
    else
      let e = t.table.(base + w) in
      go (w + 1) (if e.valid && e.tag = tag then base + w else last)
  in
  go 0 (-1)

let lookup_target t ~pc =
  t.n_lookup <- t.n_lookup + 1;
  t.clock <- t.clock + 1;
  let i = find_idx t ~pc in
  if i >= 0 then begin
    let e = t.table.(i) in
    t.n_hit <- t.n_hit + 1;
    e.lru <- t.clock;
    e.target
  end
  else -1

let lookup t ~pc =
  let tgt = lookup_target t ~pc in
  if tgt >= 0 then Some tgt else None

let update t ~pc ~target =
  t.n_update <- t.n_update + 1;
  t.clock <- t.clock + 1;
  let i = find_idx t ~pc in
  if i >= 0 then begin
    let e = t.table.(i) in
    if e.target <> target then begin
      e.target <- target;
      t.version <- t.version + 1
    end;
    e.lru <- t.clock
  end
  else begin
    let idx = pc lsr 2 in
    let set = idx land (t.sets - 1) in
    let tag = idx / t.sets in
    let base = set * t.ways in
    let victim = ref t.table.(base) in
    for w = 1 to t.ways - 1 do
      let e = t.table.(base + w) in
      let v = !victim in
      if (not e.valid) && v.valid then victim := e
      else if v.valid && e.valid && e.lru < v.lru then victim := e
    done;
    let v = !victim in
    v.tag <- tag;
    v.target <- target;
    v.valid <- true;
    v.lru <- t.clock;
    t.version <- t.version + 1
  end

(* Fast-forward snapshots (Processor's loop fast-forward, DESIGN §9):
   tags/targets/valid bits must repeat exactly across loop iterations,
   while the clock and the LRU stamps advance by a constant amount per
   iteration — so content changes are tracked by an O(1) version counter
   (bumped on any tag/target/valid change; refreshing an entry with the
   target it already holds is a no-op) and the clock/LRU stamps are
   snapshotted separately and relocated by adding a multiple of the
   observed per-iteration stride. *)

let version t = t.version

let ffwd_affine t =
  let n = Array.length t.table in
  let a = Array.make (4 + n) 0 in
  a.(0) <- t.clock;
  a.(1) <- t.n_lookup;
  a.(2) <- t.n_hit;
  a.(3) <- t.n_update;
  for i = 0 to n - 1 do
    a.(4 + i) <- t.table.(i).lru
  done;
  a

let ffwd_set_affine t a =
  t.clock <- a.(0);
  t.n_lookup <- a.(1);
  t.n_hit <- a.(2);
  t.n_update <- a.(3);
  for i = 0 to Array.length t.table - 1 do
    t.table.(i).lru <- a.(4 + i)
  done

let lookups t = t.n_lookup
let hits t = t.n_hit
let updates t = t.n_update
