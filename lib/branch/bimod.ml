open Riq_util

type t = { table : Bytes.t; mask : int; mutable version : int }

let create entries =
  if not (Bits.is_pow2 entries) then invalid_arg "Bimod.create: entries must be a power of two";
  { table = Bytes.make entries '\001'; mask = entries - 1; version = 0 }

let entries t = Bytes.length t.table
let index t ~pc = (pc lsr 2) land t.mask
let counter t ~pc = Char.code (Bytes.get t.table (index t ~pc))
let predict t ~pc = counter t ~pc >= 2

(* Content version: bumped only when a stored counter actually changes,
   so equal versions prove the table is bit-identical between the two
   observations (saturated updates are no-ops). O(1) where hashing the
   table would be O(entries) -- this runs at every loop-iteration
   boundary of the fast-forward controller. *)
let version t = t.version

let update t ~pc ~taken =
  let i = index t ~pc in
  let c = Char.code (Bytes.get t.table i) in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  if c' <> c then begin
    Bytes.set t.table i (Char.chr c');
    t.version <- t.version + 1
  end
