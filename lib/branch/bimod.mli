(** Bimodal branch direction predictor: a table of 2-bit saturating
    counters indexed by the branch PC (Table 1: 2048 entries). *)

type t

val create : int -> t
(** [create entries]; [entries] must be a power of two. Counters start
    weakly not-taken (state 1), the SimpleScalar convention. *)

val entries : t -> int

val predict : t -> pc:int -> bool
(** True when the counter for [pc] predicts taken. Pure lookup. *)

val update : t -> pc:int -> taken:bool -> unit
(** Saturating increment/decrement toward the observed direction. *)

val counter : t -> pc:int -> int
(** Raw 2-bit state, for tests. *)

val version : t -> int
(** Content version: monotonic, bumped exactly when a stored counter
    changes. Two equal readings prove the table did not change in
    between (fast-forward snapshot support). *)
