(** Return address stack (Table 1: 8 entries), with top-of-stack
    checkpointing for branch-misprediction repair.

    The stack is circular: pushing beyond capacity silently overwrites the
    oldest entry, and popping an empty stack returns [None]. Checkpoints
    capture only the top-of-stack index (the standard low-cost repair);
    contents clobbered by wrong-path calls are not restored, which models
    real RAS corruption behaviour. *)

type t

val create : int -> t
(** [create size]; size must be positive. *)

val push : t -> int -> unit
val pop : t -> int option

val checkpoint : t -> int
(** Opaque TOS snapshot to be taken before a speculative control
    instruction alters the stack. *)

val restore : t -> int -> unit

val depth : t -> int
(** Current number of live entries (saturates at capacity). *)

val pushes : t -> int
val pops : t -> int

val version : t -> int
(** Content version: monotonic, bumped on every push, pop and restore.
    Equal readings prove the observable stack did not change in between
    (fast-forward snapshot support). *)
