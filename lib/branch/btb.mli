(** Branch target buffer: a set-associative store of taken-branch targets
    (Table 1: 512 sets, 4-way). LRU replacement. *)

type t

val create : sets:int -> ways:int -> t

val lookup : t -> pc:int -> int option
(** Predicted target for the control instruction at [pc], updating LRU. *)

val lookup_target : t -> pc:int -> int
(** Allocation-free {!lookup}: the predicted target, or -1 on a miss. *)

val update : t -> pc:int -> target:int -> unit
(** Record (or refresh) the taken target. *)

val lookups : t -> int
val hits : t -> int
val updates : t -> int
