(** Branch target buffer: a set-associative store of taken-branch targets
    (Table 1: 512 sets, 4-way). LRU replacement. *)

type t

val create : sets:int -> ways:int -> t

val lookup : t -> pc:int -> int option
(** Predicted target for the control instruction at [pc], updating LRU. *)

val lookup_target : t -> pc:int -> int
(** Allocation-free {!lookup}: the predicted target, or -1 on a miss. *)

val update : t -> pc:int -> target:int -> unit
(** Record (or refresh) the taken target. *)

val lookups : t -> int
val hits : t -> int
val updates : t -> int

(** {2 Fast-forward snapshot support} (see [Riq_core.Processor]) *)

val version : t -> int
(** Content version: monotonic, bumped exactly when some entry's
    tag/target/valid changes (refreshing a hit with an identical target
    is a no-op). Equal readings prove the stored targets did not change
    in between. *)

val ffwd_affine : t -> int array
(** Clock, access counters and per-entry LRU stamps — values that advance
    by a constant stride per steady-state iteration. *)

val ffwd_set_affine : t -> int array -> unit
