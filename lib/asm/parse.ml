open Riq_isa

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let strip_comment line =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  cut '#' (cut ';' line)

let tokenize s =
  (* Split on whitespace and commas; keep "off(base)" as one token. *)
  let buf = Buffer.create 16 in
  let toks = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | _ -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !toks

let reg line s =
  match Reg.of_string s with Some r -> r | None -> fail line "bad register %S" s

let int_tok line s =
  match int_of_string_opt s with Some v -> v | None -> fail line "bad integer %S" s

let float_tok line s =
  match float_of_string_opt s with Some v -> v | None -> fail line "bad float %S" s

(* "off(base)" -> (off, base) *)
let mem_operand line s =
  match String.index_opt s '(' with
  | Some i when String.length s > i + 1 && s.[String.length s - 1] = ')' ->
      let off = String.sub s 0 i in
      let base = String.sub s (i + 1) (String.length s - i - 2) in
      let off = if off = "" then 0 else int_tok line off in
      (off, reg line base)
  | Some _ | None -> fail line "bad memory operand %S (expected off(base))" s

let alu_of_name = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "nor" -> Some Insn.Nor
  | "slt" -> Some Insn.Slt
  | "sltu" -> Some Insn.Sltu
  | _ -> None

let alui_of_name = function
  | "addi" -> Some Insn.Add
  | "andi" -> Some Insn.And
  | "ori" -> Some Insn.Or
  | "xori" -> Some Insn.Xor
  | "slti" -> Some Insn.Slt
  | "sltiu" -> Some Insn.Sltu
  | _ -> None

let shift_of_name = function
  | "sll" -> Some Insn.Sll
  | "srl" -> Some Insn.Srl
  | "sra" -> Some Insn.Sra
  | _ -> None

let shiftv_of_name = function
  | "sllv" -> Some Insn.Sll
  | "srlv" -> Some Insn.Srl
  | "srav" -> Some Insn.Sra
  | _ -> None

let fpu_of_name = function
  | "fadd" -> Some Insn.Fadd
  | "fsub" -> Some Insn.Fsub
  | "fmul" -> Some Insn.Fmul
  | "fdiv" -> Some Insn.Fdiv
  | "fsqrt" -> Some Insn.Fsqrt
  | "fneg" -> Some Insn.Fneg
  | "fabs" -> Some Insn.Fabs
  | "fmov" -> Some Insn.Fmov
  | _ -> None

let fcmp_of_name = function
  | "feq" -> Some Insn.Feq
  | "flt" -> Some Insn.Flt
  | "fle" -> Some Insn.Fle
  | _ -> None

let cond_of_name = function
  | "beq" -> Some Insn.Beq
  | "bne" -> Some Insn.Bne
  | "blez" -> Some Insn.Blez
  | "bgtz" -> Some Insn.Bgtz
  | "bltz" -> Some Insn.Bltz
  | "bgez" -> Some Insn.Bgez
  | _ -> None

let is_label_tok s =
  String.length s > 0
  &&
  match s.[0] with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | '.' -> int_of_string_opt s = None
  | '0' .. '9' | '-' | '+' -> false
  | _ -> false

(* [note] records a label reference on the current line, so errors the
   builder can only detect at resolution time (undefined label, branch out
   of range) still map back to a source position. *)
let parse_line b ~note line_no raw =
  let line = String.trim (strip_comment raw) in
  if line = "" then ()
  else if String.length line > 1 && line.[String.length line - 1] = ':' then
    Builder.label b (String.sub line 0 (String.length line - 1))
  else begin
    match tokenize line with
    | [] -> ()
    | ".word" :: name :: vals when vals <> [] ->
        Builder.data_word b name (Array.of_list (List.map (int_tok line_no) vals))
    | ".float" :: name :: vals when vals <> [] ->
        Builder.data_float b name (Array.of_list (List.map (float_tok line_no) vals))
    | [ ".space"; name; n ] -> Builder.data_space b name (int_tok line_no n)
    | [ "li"; rd; v ] -> Builder.li b (reg line_no rd) (int_tok line_no v)
    | [ "la"; rd; name ] ->
        note name;
        Builder.la b (reg line_no rd) name
    | [ "nop" ] -> Builder.emit b Insn.Nop
    | [ "halt" ] -> Builder.emit b Insn.Halt
    | [ "j"; tgt ] ->
        if is_label_tok tgt then begin
          note tgt;
          Builder.j b tgt
        end
        else Builder.emit b (Insn.J (int_tok line_no tgt))
    | [ "jal"; tgt ] ->
        if is_label_tok tgt then begin
          note tgt;
          Builder.jal b tgt
        end
        else Builder.emit b (Insn.Jal (int_tok line_no tgt))
    | [ "jr"; r1 ] -> Builder.emit b (Insn.Jr (reg line_no r1))
    | [ "jalr"; rd; r1 ] -> Builder.emit b (Insn.Jalr (reg line_no rd, reg line_no r1))
    | [ "lui"; rt; imm ] -> Builder.emit b (Insn.Lui (reg line_no rt, int_tok line_no imm))
    | [ "mul"; rd; r1; r2 ] ->
        Builder.emit b (Insn.Mul (reg line_no rd, reg line_no r1, reg line_no r2))
    | [ "div"; rd; r1; r2 ] ->
        Builder.emit b (Insn.Div (reg line_no rd, reg line_no r1, reg line_no r2))
    | [ "cvtsw"; fd; r1 ] -> Builder.emit b (Insn.Cvtsw (reg line_no fd, reg line_no r1))
    | [ "cvtws"; rd; f1 ] -> Builder.emit b (Insn.Cvtws (reg line_no rd, reg line_no f1))
    | [ ("lw" | "lb" | "lbu" | "lh" | "lhu") as op; rt; memop ] ->
        let off, base = mem_operand line_no memop in
        let rt = reg line_no rt in
        Builder.emit b
          (match op with
          | "lw" -> Insn.Lw (rt, base, off)
          | "lb" -> Insn.Lb (rt, base, off)
          | "lbu" -> Insn.Lbu (rt, base, off)
          | "lh" -> Insn.Lh (rt, base, off)
          | _ -> Insn.Lhu (rt, base, off))
    | [ ("sw" | "sb" | "sh") as op; rt; memop ] ->
        let off, base = mem_operand line_no memop in
        let rt = reg line_no rt in
        Builder.emit b
          (match op with
          | "sw" -> Insn.Sw (rt, base, off)
          | "sb" -> Insn.Sb (rt, base, off)
          | _ -> Insn.Sh (rt, base, off))
    | [ "l.s"; ft; memop ] ->
        let off, base = mem_operand line_no memop in
        Builder.emit b (Insn.Lwf (reg line_no ft, base, off))
    | [ "s.s"; ft; memop ] ->
        let off, base = mem_operand line_no memop in
        Builder.emit b (Insn.Swf (reg line_no ft, base, off))
    | [ op; rd; r1; r2 ] when alu_of_name op <> None && Reg.of_string r2 <> None ->
        let aop = Option.get (alu_of_name op) in
        Builder.emit b (Insn.Alu (aop, reg line_no rd, reg line_no r1, reg line_no r2))
    | [ op; rt; r1; imm ] when alui_of_name op <> None ->
        let aop = Option.get (alui_of_name op) in
        Builder.emit b (Insn.Alui (aop, reg line_no rt, reg line_no r1, int_tok line_no imm))
    | [ op; rd; rt; sh ] when shift_of_name op <> None ->
        let sop = Option.get (shift_of_name op) in
        Builder.emit b (Insn.Shift (sop, reg line_no rd, reg line_no rt, int_tok line_no sh))
    | [ op; rd; rt; r1 ] when shiftv_of_name op <> None ->
        let sop = Option.get (shiftv_of_name op) in
        Builder.emit b (Insn.Shiftv (sop, reg line_no rd, reg line_no rt, reg line_no r1))
    | [ op; fd; f1 ] when fpu_of_name op <> None && Insn.fpu_unary (Option.get (fpu_of_name op))
      ->
        let fop = Option.get (fpu_of_name op) in
        Builder.emit b (Insn.Fpu (fop, reg line_no fd, reg line_no f1, Reg.f 0))
    | [ op; fd; f1; f2 ] when fpu_of_name op <> None ->
        let fop = Option.get (fpu_of_name op) in
        Builder.emit b (Insn.Fpu (fop, reg line_no fd, reg line_no f1, reg line_no f2))
    | [ op; rd; f1; f2 ] when fcmp_of_name op <> None ->
        let cop = Option.get (fcmp_of_name op) in
        Builder.emit b (Insn.Fcmp (cop, reg line_no rd, reg line_no f1, reg line_no f2))
    | [ op; r1; r2; tgt ] when cond_of_name op <> None ->
        let cond = Option.get (cond_of_name op) in
        if is_label_tok tgt then begin
          note tgt;
          Builder.br b cond (reg line_no r1) (reg line_no r2) tgt
        end
        else
          Builder.emit b
            (Insn.Br (cond, reg line_no r1, reg line_no r2, int_tok line_no tgt))
    | [ op; r1; tgt ] when cond_of_name op <> None ->
        let cond = Option.get (cond_of_name op) in
        if is_label_tok tgt then begin
          note tgt;
          Builder.br b cond (reg line_no r1) Reg.zero tgt
        end
        else Builder.emit b (Insn.Br (cond, reg line_no r1, Reg.zero, int_tok line_no tgt))
    | op :: _ -> fail line_no "unrecognised instruction %S" op
  end

let program_with_lines ?text_base src =
  let b = Builder.create ?text_base () in
  (* Every line that references each label, for resolution-time errors. *)
  let refs : (string, int) Hashtbl.t = Hashtbl.create 32 in
  (* Byte address -> source line. A line that expands to several words
     ([li], [la]) maps each of them back to itself, so downstream
     diagnostics always have a position. *)
  let lines : (int, int) Hashtbl.t = Hashtbl.create 64 in
  try
    String.split_on_char '\n' src
    |> List.iteri (fun i l ->
           let line_no = i + 1 in
           let note name = Hashtbl.add refs name line_no in
           let before = Builder.here b in
           (try parse_line b ~note line_no l
            with Failure msg | Invalid_argument msg ->
              raise (Parse_error (line_no, msg)));
           let pc = ref before in
           while !pc < Builder.here b do
             Hashtbl.replace lines !pc line_no;
             pc := !pc + 4
           done);
    Ok (Builder.finish b, lines)
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Builder.Resolve_error { label; reason } -> (
      match List.sort compare (Hashtbl.find_all refs label) with
      | [] -> Error (Printf.sprintf "%s %S" reason label)
      | first :: rest ->
          let also =
            if rest = [] then ""
            else
              Printf.sprintf " (also referenced at line%s %s)"
                (if List.length rest > 1 then "s" else "")
                (String.concat ", " (List.map string_of_int rest))
          in
          Error (Printf.sprintf "line %d: %s %S%s" first reason label also))
  | Failure msg | Invalid_argument msg -> Error msg

let program ?text_base src = Result.map fst (program_with_lines ?text_base src)

let program_exn ?text_base src =
  match program ?text_base src with
  | Ok p -> p
  | Error msg -> failwith ("Parse.program_exn: " ^ msg)
