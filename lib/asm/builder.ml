open Riq_isa

type item =
  | Fixed of Insn.t
  | Branch of Insn.cond * Reg.t * Reg.t * string
  | Jump of bool * string (* link?, label *)
  | Addr_hi of Reg.t * string (* lui rd, hi16(label) *)
  | Addr_lo of Reg.t * string (* ori rd, rd, lo16(label) *)

type t = {
  text_base : int;
  mutable items : item list; (* reversed *)
  mutable n_items : int;
  labels : (string, [ `Text of int (* item index *) | `Data of int (* byte addr *) ]) Hashtbl.t;
  mutable data : Program.data_init list; (* reversed *)
  mutable data_cursor : int;
  mutable fresh : int;
  pool : (float, string) Hashtbl.t; (* float constant pool *)
}

exception Resolve_error of { label : string; reason : string }

let data_base_default = 0x0010_0000

let create ?(text_base = 0x1000) () =
  if text_base land 3 <> 0 then invalid_arg "Builder.create: misaligned text base";
  {
    text_base;
    items = [];
    n_items = 0;
    labels = Hashtbl.create 64;
    data = [];
    data_cursor = data_base_default;
    fresh = 0;
    pool = Hashtbl.create 16;
  }

let here t = t.text_base + (4 * t.n_items)

let define t name binding =
  if Hashtbl.mem t.labels name then
    invalid_arg (Printf.sprintf "Builder: label %S redefined" name);
  Hashtbl.replace t.labels name binding

let label t name = define t name (`Text t.n_items)

let fresh_label t stem =
  t.fresh <- t.fresh + 1;
  Printf.sprintf ".L%s_%d" stem t.fresh

let push t item =
  t.items <- item :: t.items;
  t.n_items <- t.n_items + 1

let emit t insn = push t (Fixed insn)
let br t cond rs rt name = push t (Branch (cond, rs, rt, name))
let j t name = push t (Jump (false, name))
let jal t name = push t (Jump (true, name))

let li t rd v =
  if Encode.imm_fits ~signed:true v then emit t (Insn.Alui (Add, rd, Reg.zero, v))
  else begin
    let u = v land 0xFFFFFFFF in
    let hi = (u lsr 16) land 0xFFFF in
    let lo = u land 0xFFFF in
    emit t (Insn.Lui (rd, hi));
    if lo <> 0 then emit t (Insn.Alui (Or, rd, rd, lo))
  end

let la t rd name =
  push t (Addr_hi (rd, name));
  push t (Addr_lo (rd, name))

let alloc_data t name nbytes =
  define t name (`Data t.data_cursor);
  let base = t.data_cursor in
  t.data_cursor <- t.data_cursor + nbytes;
  (* Keep every block word-aligned and leave a guard word between blocks so
     an off-by-one in a kernel shows up as a wrong value, not silent overlap. *)
  t.data_cursor <- (t.data_cursor + 7) land lnot 3;
  base

let data_word t name values =
  let base = alloc_data t name (4 * Array.length values) in
  t.data <- Program.Words { base; values = Array.copy values } :: t.data

let data_float t name values =
  let base = alloc_data t name (4 * Array.length values) in
  t.data <- Program.Floats { base; values = Array.copy values } :: t.data

let data_space t name n =
  let base = alloc_data t name (4 * n) in
  t.data <- Program.Words { base; values = Array.make n 0 } :: t.data

let lf t fd v =
  let name =
    match Hashtbl.find_opt t.pool v with
    | Some name -> name
    | None ->
        let name = fresh_label t "fconst" in
        data_float t name [| v |];
        Hashtbl.replace t.pool v name;
        name
  in
  la t (Reg.r 1) name;
  emit t (Insn.Lwf (fd, Reg.r 1, 0))

let finish ?entry_label t =
  let resolve name =
    match Hashtbl.find_opt t.labels name with
    | Some (`Text idx) -> t.text_base + (4 * idx)
    | Some (`Data addr) -> addr
    | None -> raise (Resolve_error { label = name; reason = "undefined label" })
  in
  let items = Array.of_list (List.rev t.items) in
  let code =
    Array.mapi
      (fun i item ->
        let pc = t.text_base + (4 * i) in
        match item with
        | Fixed insn -> insn
        | Branch (cond, rs, rt, name) ->
            let target = resolve name in
            let off = (target - (pc + 4)) / 4 in
            if not (Encode.imm_fits ~signed:true off) then
              raise
                (Resolve_error
                   {
                     label = name;
                     reason = Printf.sprintf "branch out of range (%d words)" off;
                   });
            Insn.Br (cond, rs, rt, off)
        | Jump (link, name) ->
            let target = resolve name / 4 in
            if link then Insn.Jal target else Insn.J target
        | Addr_hi (rd, name) ->
            let addr = resolve name in
            Insn.Lui (rd, (addr lsr 16) land 0xFFFF)
        | Addr_lo (rd, name) ->
            let addr = resolve name in
            Insn.Alui (Or, rd, rd, addr land 0xFFFF))
      items
  in
  let symbols =
    Hashtbl.fold
      (fun name binding acc ->
        let addr =
          match binding with `Text idx -> t.text_base + (4 * idx) | `Data addr -> addr
        in
        (name, addr) :: acc)
      t.labels []
  in
  let entry = Option.map resolve entry_label in
  Program.make ~text_base:t.text_base ~data:(List.rev t.data) ?entry ~symbols code
