open Riq_isa

(** Program construction with symbolic labels.

    The builder accumulates instructions; control transfers may name labels
    that are defined before or after the reference. [finish] resolves every
    label into branch offsets / jump targets and returns the program image.
    This is the interface the loop-nest code generator and the workloads
    target. *)

type t

exception Resolve_error of { label : string; reason : string }
(** Raised by {!finish} for errors only detectable once every label is
    placed: an undefined label, or a branch whose offset does not fit 16
    bits. Carries the label so callers that track source positions (the
    assembly parser) can map the error back to the referencing line. *)

val create : ?text_base:int -> unit -> t

val here : t -> int
(** Byte address of the next instruction to be emitted. *)

val label : t -> string -> unit
(** Define [name] at the current position. Raises on redefinition. *)

val fresh_label : t -> string -> string
(** [fresh_label t stem] returns a unique label name derived from [stem]
    (not yet defined; pass it to {!label} later). *)

val emit : t -> Insn.t -> unit
(** Append a fully-resolved instruction. *)

val br : t -> Insn.cond -> Reg.t -> Reg.t -> string -> unit
(** Conditional branch to a label. *)

val j : t -> string -> unit
val jal : t -> string -> unit

val li : t -> Reg.t -> int -> unit
(** Load a 32-bit constant: one [addiu]-style or [lui]+[ori] pair. *)

val la : t -> Reg.t -> string -> unit
(** Load the address of a (data or text) label; resolved at [finish] into
    [lui]+[ori], so it always occupies two instructions. *)

val lf : t -> Reg.t -> float -> unit
(** Load a single-precision float constant into an FP register. The
    constant is placed in an automatically-allocated constant pool in the
    data segment and loaded with [lui]+[ori]+[l.s]; integer register [r1]
    is clobbered as the address temporary. *)

val data_word : t -> string -> int array -> unit
(** Define a labelled block of integer words in the data segment. *)

val data_float : t -> string -> float array -> unit
(** Define a labelled block of single-precision floats. *)

val data_space : t -> string -> int -> unit
(** Reserve [n] words of zero-initialised data under a label. *)

val finish : ?entry_label:string -> t -> Program.t
(** Resolve labels and produce the image. Raises {!Resolve_error} on
    undefined labels or on branch offsets that do not fit 16 bits. *)
