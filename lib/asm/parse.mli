(** Textual RIQ32 assembler.

    Accepts the syntax printed by [Insn.to_string] plus labels, comments
    ([#] or [;] to end of line), the pseudo-instructions [li]/[la], and data
    directives. Branch and jump operands may be label names instead of
    numeric offsets. Supported directives:

    {v
    .word  name v1 v2 ...     integer words under label `name`
    .float name v1 v2 ...     single-precision floats
    .space name n             n zero words
    v}

    Example:
    {v
    start:
        li   r2, 10
    loop:
        addi r3, r3, 1
        addi r2, r2, -1
        bgtz r2, loop
        halt
    v} *)

val program : ?text_base:int -> string -> (Program.t, string) result
(** Assemble a whole source text. Every error message carries the source
    line it arose on — including errors only detectable at label
    resolution (undefined label, branch out of range), which are reported
    at the referencing line. *)

val program_exn : ?text_base:int -> string -> Program.t

val program_with_lines :
  ?text_base:int -> string -> (Program.t * (int, int) Hashtbl.t, string) result
(** Like {!program}, but also returns the byte-address → source-line map
    (1-based lines). Pseudo-instructions that expand to several words
    ([li], [la]) map every emitted word back to the originating line, so
    tools reporting on an address always have a position ([riq-lint]'s
    [file:line:] diagnostic prefixes). *)
