type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> Buffer.add_string b "null"
  | _ ->
      (* Shortest representation that round-trips a binary64. *)
      let s = Printf.sprintf "%.17g" f in
      let shorter = Printf.sprintf "%.12g" f in
      Buffer.add_string b (if float_of_string shorter = f then shorter else s)

let rec add ~indent ~level b t =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  match t with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> add_float b v
  | String v -> escape_string b v
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          add ~indent ~level:(level + 1) b x)
        xs;
      nl ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          add ~indent ~level:(level + 1) b v)
        kvs;
      nl ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = false) t =
  let b = Buffer.create 1024 in
  add ~indent ~level:0 b t;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ~indent:true t))
