type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> Buffer.add_string b "null"
  | _ ->
      (* Shortest representation that round-trips a binary64. *)
      let s = Printf.sprintf "%.17g" f in
      let shorter = Printf.sprintf "%.12g" f in
      Buffer.add_string b (if float_of_string shorter = f then shorter else s)

let rec add ~indent ~level b t =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  match t with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> add_float b v
  | String v -> escape_string b v
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          add ~indent ~level:(level + 1) b x)
        xs;
      nl ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          add ~indent ~level:(level + 1) b v)
        kvs;
      nl ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = false) t =
  let b = Buffer.create 1024 in
  add ~indent ~level:0 b t;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ~indent:true t))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

(* Recursive-descent parser over the whole input string. Accepts exactly
   the JSON grammar (RFC 8259): no trailing commas, no comments, no bare
   NaN/Infinity — everything the emitter above produces and nothing the
   other tools in a pipeline would reject. Numbers without a fraction or
   exponent that fit in an OCaml [int] parse as [Int], everything else as
   [Float], mirroring the emitter's split. *)
let of_string s : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail !pos (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail !pos (Printf.sprintf "expected %c, found end of input" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos ("invalid literal, expected " ^ word)
  in
  (* Encode one Unicode scalar value as UTF-8 into [b]. *)
  let add_utf8 b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail !pos (Printf.sprintf "bad hex digit %c in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'u' ->
               advance ();
               let u = hex4 () in
               (* Surrogate pair: a high surrogate must be followed by an
                  escaped low surrogate; lone surrogates are rejected. *)
               if u >= 0xD800 && u <= 0xDBFF then begin
                 if
                   !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo < 0xDC00 || lo > 0xDFFF then
                     fail !pos "invalid low surrogate"
                   else
                     add_utf8 b
                       (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                 end
                 else fail !pos "lone high surrogate"
               end
               else if u >= 0xDC00 && u <= 0xDFFF then
                 fail !pos "lone low surrogate"
               else add_utf8 b u
           | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 ->
          fail !pos "unescaped control character in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail !pos "expected digit"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' ->
        advance ();
        (* leading zeros are not allowed *)
        (match peek () with
        | Some ('0' .. '9') -> fail !pos "leading zero in number"
        | _ -> ())
    | Some ('1' .. '9') -> digits ()
    | _ -> fail !pos "expected digit");
    let integral = ref true in
    if peek () = Some '.' then begin
      integral := false;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        integral := false;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text) (* out of int range *)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                more ()
            | Some ']' -> advance ()
            | _ -> fail !pos "expected , or ] in array"
          in
          more ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := member () :: !items;
                more ()
            | Some '}' -> advance ()
            | _ -> fail !pos "expected , or } in object"
          in
          more ();
          Obj (List.rev !items)
        end
    | Some c -> fail !pos (Printf.sprintf "unexpected character %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing characters after JSON value"
    else Ok v
  with Parse_error (p, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
