(** Minimal JSON document tree and serializer (no external dependency) —
    enough for the machine-readable experiment exports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] (default false) pretty-prints with two-space
    indentation and a trailing newline. NaN and infinities serialize as
    [null]; finite floats use the shortest digit string that round-trips. *)

val to_file : string -> t -> unit
(** Pretty-printed [to_string] written to [path]. *)
