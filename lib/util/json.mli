(** Minimal JSON document tree and serializer (no external dependency) —
    enough for the machine-readable experiment exports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] (default false) pretty-prints with two-space
    indentation and a trailing newline. NaN and infinities serialize as
    [null]; finite floats use the shortest digit string that round-trips. *)

val to_file : string -> t -> unit
(** Pretty-printed [to_string] written to [path]. *)

val of_string : string -> (t, string) result
(** Parse one RFC 8259 JSON document (no trailing garbage). Numbers with
    no fraction or exponent that fit an OCaml [int] parse as [Int]; all
    others as [Float]. String escapes, including [\uXXXX] and surrogate
    pairs, decode to UTF-8 bytes. Errors carry the byte offset. *)

val of_string_exn : string -> t
(** [of_string], raising [Failure] on a parse error. *)

(** {2 Accessors} — shallow, [None]-on-shape-mismatch helpers for picking
    fields out of parsed documents (the wire protocol, test assertions). *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
val to_float_opt : t -> float option
(** [Int] widens to float; everything non-numeric is [None]. *)

val to_str : t -> string option
val to_list : t -> t list option
