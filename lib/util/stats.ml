let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let geomean a =
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let sum = Array.fold_left (fun acc x -> acc +. log x) 0. a in
    exp (sum /. float_of_int n)
  end

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. a in
    sqrt (sq /. float_of_int n)
  end

let quantile q a =
  if q < 0. || q > 1. || Float.is_nan q then invalid_arg "Stats.quantile: q outside [0, 1]";
  let n = Array.length a in
  if n = 0 then 0.
  else if n = 1 then a.(0)
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0))
    a

let percent part whole = if whole = 0. then 0. else 100. *. part /. whole
let ratio a b = if b = 0. then 0. else a /. b

type counter = { cname : string; mutable count : int }

let counter cname = { cname; count = 0 }
let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count
let name c = c.cname
let reset c = c.count <- 0
