(** Lightweight statistics helpers used by the harness and power accounting. *)

val mean : float array -> float
(** Arithmetic mean; 0. for the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0. for the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0. for arrays of length < 2. *)

val quantile : float -> float array -> float
(** [quantile q a] is the [q]-th quantile of [a] (linear interpolation
    between closest ranks, the default of R/numpy): [quantile 0.] is the
    minimum, [quantile 1.] the maximum, [quantile 0.5] the median. Returns
    0. for the empty array and the element itself for singletons. Raises
    [Invalid_argument] when [q] is outside [0, 1]. *)

val min_max : float array -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on empty input. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole], or 0. when [whole = 0.]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a / b], or 0. when [b = 0.]. *)

type counter
(** A named monotonic event counter. *)

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val name : counter -> string
val reset : counter -> unit
