open Riq_power
open Riq_core
open Riq_interp

(* In-process execution of one job. This is the single place that turns a
   (config, program) pair into measurements; the harness's [Run] module and
   the worker pool both delegate here. *)
let execute (job : Job.t) : Outcome.t =
  let p = Processor.create job.Job.cfg job.Job.program in
  match Processor.run ~cycle_limit:job.Job.cycle_limit p with
  | Processor.Cycle_limit -> Error (Outcome.Cycle_limit_exceeded job.Job.cycle_limit)
  | Processor.Halted -> (
      let checked =
        if not job.Job.check then Ok None
        else
          let m = Machine.create job.Job.program in
          match Machine.run m with
          | Machine.Halted ->
              Ok (Some (Machine.equal_arch (Machine.arch_state m) (Processor.arch_state p)))
          | Machine.Insn_limit | Machine.Bad_pc _ -> Error Outcome.Reference_did_not_halt
      in
      match checked with
      | Error e -> Error e
      | Ok (Some false) -> Error Outcome.Arch_state_mismatch
      | Ok arch_ok ->
          let acct = Processor.account p in
          Ok
            {
              Outcome.stats = Processor.stats p;
              icache_power = Account.group_power acct Component.G_icache;
              bpred_power = Account.group_power acct Component.G_bpred;
              iq_power = Account.group_power acct Component.G_iq;
              overhead_power = Account.group_power acct Component.G_overhead;
              total_power = Account.avg_power acct;
              arch_ok;
            })

let execute_safe job =
  try execute job
  with exn -> Error (Outcome.Worker_crashed (Printexc.to_string exn))
