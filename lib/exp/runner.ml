open Riq_power
open Riq_core
open Riq_interp
open Riq_analysis

(* In-process execution of one job. This is the single place that turns a
   (config, program) pair into measurements; the harness's [Run] module and
   the worker pool both delegate here. *)
let execute (job : Job.t) : Outcome.t =
  let p = Processor.create job.Job.cfg job.Job.program in
  (* CPU time, not wall time: the worker may share the host with siblings,
     and throughput telemetry should measure the simulator, not the load. *)
  let t0 = (Unix.times ()).Unix.tms_utime in
  let stop = Processor.run ~cycle_limit:job.Job.cycle_limit p in
  let sim_seconds = (Unix.times ()).Unix.tms_utime -. t0 in
  match stop with
  | Processor.Cycle_limit -> Error (Outcome.Cycle_limit_exceeded job.Job.cycle_limit)
  | Processor.Halted -> (
      let checked =
        if not job.Job.check then Ok None
        else
          let m = Machine.create job.Job.program in
          match Machine.run m with
          | Machine.Halted ->
              let golden = Machine.arch_state m and got = Processor.arch_state p in
              if Machine.equal_arch golden got then Ok (Some true)
              else Error (Outcome.Arch_state_mismatch (Machine.diff_string golden got))
          | Machine.Insn_limit | Machine.Bad_pc _ -> Error Outcome.Reference_did_not_halt
      in
      let verdicts =
        if not (job.Job.verdicts && job.Job.cfg.Riq_ooo.Config.reuse_enabled) then
          Ok ()
        else
          let report = Bufferability.analyze_config job.Job.cfg job.Job.program in
          let decisions = Processor.loop_decisions p in
          let promotions =
            List.map
              (fun d -> (d.Processor.ld_tail, d.Processor.ld_promotions))
              decisions
          in
          let causes =
            List.map
              (fun d ->
                ( d.Processor.ld_tail,
                  {
                    Bufferability.rc_inner = d.Processor.ld_rv_inner;
                    rc_left = d.Processor.ld_rv_left;
                    rc_overflow = d.Processor.ld_rv_overflow;
                    rc_mispredict = d.Processor.ld_rv_mispredict;
                  } ))
              decisions
          in
          Result.map_error
            (fun msg -> Outcome.Verdict_mismatch msg)
            (match Bufferability.consistency ~causes report ~promotions with
            | Error _ as e -> e
            | Ok () ->
                (* Same soundness gate as the fuzz oracle: no-alias claims
                   must survive the addresses the program actually
                   produces. *)
                Result.map (fun (_ : int) -> ())
                  (Result.map_error
                     (fun s -> "no-alias claim contradicted: " ^ s)
                     (Bufferability.validate_no_alias job.Job.program report)))
      in
      match (checked, verdicts) with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok arch_ok, Ok () ->
          let acct = Processor.account p in
          Ok
            {
              Outcome.stats = Processor.stats p;
              sim_seconds;
              icache_power = Account.group_power acct Component.G_icache;
              bpred_power = Account.group_power acct Component.G_bpred;
              iq_power = Account.group_power acct Component.G_iq;
              overhead_power = Account.group_power acct Component.G_overhead;
              total_power = Account.avg_power acct;
              arch_ok;
            })

let execute_safe job =
  try execute job
  with exn -> Error (Outcome.Worker_crashed (Printexc.to_string exn))
