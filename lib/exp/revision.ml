(* The simulator-revision stamp folded into every job fingerprint and into
   the cache directory layout. Cached results are only reusable while the
   simulator produces bit-identical outputs for the same job, so this must
   be bumped whenever the timing model, the power model, the reference
   interpreter, the workload compiler or the statistics change meaning.
   Bumping it orphans the old cache tree (a warm run simply repopulates a
   fresh subdirectory); it never corrupts it. *)

let stamp = "riq-sim-2026-08-09.2"

(* On-disk format of cache entries, independent of the simulator revision:
   bump when the marshalled [Outcome.t] layout changes. *)
let format_version = 4
