open Riq_asm
open Riq_ooo

(** A job is one simulation the engine may run, cache, or farm out: a
    machine configuration, a program image, whether to differentially
    validate, and the cycle budget. *)

type t = {
  cfg : Config.t;
  program : Program.t;
  check : bool;
  verdicts : bool;
      (** also cross-check dynamic promotions against the static
          bufferability analysis (only meaningful with [reuse_enabled];
          used by the fuzzer) *)
  cycle_limit : int;
}

val default_cycle_limit : int
(** 100 million cycles, matching the harness's historical default. *)

val make :
  ?check:bool -> ?verdicts:bool -> ?cycle_limit:int -> Config.t -> Program.t -> t
(** [check] and [verdicts] default to false. *)

val fingerprint : t -> string
(** Deterministic content address (hex MD5) of the job: covers the
    simulator-revision stamp, the configuration, the encoded program
    words and data image, the check flag and the cycle limit. Stable
    across processes and binaries; two jobs with equal fingerprints
    produce bit-identical outcomes. *)
