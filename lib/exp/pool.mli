(** Unix-fork worker pool: jobs travel to workers as copy-on-write memory
    (only a job {e index} crosses the pipe), results come back marshalled.
    Handles per-job timeouts (SIGKILL + [Job_timeout]), crash detection
    with one retry per job, and on-demand replacement workers. *)

val available : unit -> bool
(** Whether fork-based pools work on this platform. *)

type summary = {
  busy_seconds : float; (** summed worker busy time, for utilization *)
  retries : int; (** jobs re-dispatched after a worker crash *)
}

val run :
  workers:int ->
  timeout:float option ->
  jobs:Job.t array ->
  indices:int list ->
  on_result:(int -> seconds:float -> Outcome.t -> unit) ->
  unit ->
  summary
(** Execute [jobs.(i)] for every [i] in [indices] on [workers] forked
    processes; [on_result] fires in completion order, exactly once per
    index, with the job's wall-clock [seconds] on its final worker.
    [timeout] is the per-job wall-clock budget in seconds ([None] disables
    it). Raises if the pool cannot make progress (e.g. fork keeps
    failing) — callers fall back to in-process execution. *)
