(** Unix-fork worker pool: jobs travel to workers as copy-on-write memory
    (only a job {e index} crosses the pipe), results come back marshalled.
    Handles per-job timeouts (SIGKILL + [Job_timeout]), crash detection
    with one retry per job, and on-demand replacement workers. *)

val available : unit -> bool
(** Whether fork-based pools work on this platform. *)

val run :
  workers:int ->
  timeout:float option ->
  jobs:Job.t array ->
  indices:int list ->
  on_result:(int -> Outcome.t -> unit) ->
  unit ->
  float
(** Execute [jobs.(i)] for every [i] in [indices] on [workers] forked
    processes; [on_result] fires in completion order, exactly once per
    index. [timeout] is the per-job wall-clock budget in seconds ([None]
    disables it). Returns the summed worker busy seconds (for utilization
    reporting). Raises if the pool cannot make progress (e.g. fork keeps
    failing) — callers fall back to in-process execution. *)
