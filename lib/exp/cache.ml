(* On-disk content-addressed result store.

   Layout:  <root>/v<format>/<revision-stamp>/<k0k1>/<fingerprint>
   where <k0k1> is the first two hex digits of the fingerprint (256-way
   fan-out keeps directories small on big sweeps). Each entry is the
   marshalled pair (revision stamp, outcome); the stamp inside the file is
   checked again on read so a mislaid file can never leak stale results.

   Writes go through a per-process temporary file renamed into place, so
   concurrent writers (parallel workers, or two sweeps racing) are safe:
   rename is atomic and last-writer-wins with identical contents. *)

let default_root () =
  match Sys.getenv_opt "RIQ_CACHE_DIR" with
  | Some dir when dir <> "" -> dir
  | _ -> ".riq-cache"

type t = { root : string; dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?root () =
  let root = match root with Some r -> r | None -> default_root () in
  let dir =
    Filename.concat
      (Filename.concat root (Printf.sprintf "v%d" Revision.format_version))
      Revision.stamp
  in
  mkdir_p dir;
  { root; dir }

let root t = t.root

let path t key =
  if String.length key < 2 then invalid_arg "Cache.path: key too short";
  Filename.concat (Filename.concat t.dir (String.sub key 0 2)) key

let find t key : Outcome.t option =
  let file = path t key in
  if not (Sys.file_exists file) then None
  else
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let stamp, (outcome : Outcome.t) = Marshal.from_channel ic in
          if stamp = Revision.stamp then Some outcome else None)
    with _ -> None (* truncated/corrupt entries behave like misses *)

(* Distinguishes two temp files written by the same process for the same
   key (e.g. an engine and a serve daemon's store sharing one root). *)
let tmp_counter = ref 0

let store t key (outcome : Outcome.t) =
  if Outcome.cacheable outcome then begin
    let file = path t key in
    incr tmp_counter;
    let tmp = Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ()) !tmp_counter in
    (* Best-effort: a cache that cannot be written (read-only tree, full
       disk, permissions) degrades to a pass-through, it never kills the
       experiment that was trying to warm it. *)
    try
      mkdir_p (Filename.dirname file);
      let oc = open_out_bin tmp in
      (try
         Marshal.to_channel oc (Revision.stamp, outcome) [];
         close_out oc;
         Sys.rename tmp file
       with exn ->
         close_out_noerr oc;
         (try Sys.remove tmp with _ -> ());
         raise exn)
    with _ -> ()
  end
