type progress = {
  total : int;
  finished : int;
  cache_hits : int;
  deduped : int;
  executed : int;
  failures : int;
  workers : int;
}

type stats = {
  jobs : int;
  cache_hits : int;
  deduped : int;
  executed : int;
  failures : int;
  retries : int;
  timeouts : int;
  wall_seconds : float;
  busy_seconds : float;
}

module Metrics = Riq_obs.Metrics

(* Engine-side instruments: one set per registry, mirroring [stats] so a
   metrics scrape and the engine summary always agree. *)
type instruments = {
  i_jobs : Metrics.counter;
  i_hits : Metrics.counter;
  i_dedup : Metrics.counter;
  i_exec : Metrics.counter;
  i_fail : Metrics.counter;
  i_retries : Metrics.counter;
  i_timeouts : Metrics.counter;
  i_job_seconds : Metrics.histogram;
}

let instruments_of registry =
  let counter = Metrics.counter registry in
  {
    i_jobs = counter ~help:"Jobs submitted to the engine" "engine_jobs_total";
    i_hits = counter ~help:"Jobs served from the local cache" "engine_cache_hits_total";
    i_dedup =
      counter ~help:"Jobs coalesced onto an identical in-batch job"
        "engine_dedup_total";
    i_exec = counter ~help:"Jobs executed by the backend" "engine_executed_total";
    i_fail = counter ~help:"Jobs that finished with an error" "engine_failures_total";
    i_retries =
      counter ~help:"Jobs re-dispatched after a worker crash" "engine_retries_total";
    i_timeouts = counter ~help:"Jobs that hit the wall-clock budget" "engine_timeouts_total";
    i_job_seconds =
      Metrics.histogram registry ~help:"Wall-clock seconds per executed job"
        "engine_job_seconds";
  }

type t = {
  backend : Backend.t;
  timeout : float option;
  cache : Cache.t option;
  on_progress : (progress -> unit) option;
  ins : instruments option;
  mutable s_jobs : int;
  mutable s_hits : int;
  mutable s_dedup : int;
  mutable s_exec : int;
  mutable s_fail : int;
  mutable s_retries : int;
  mutable s_timeouts : int;
  mutable s_wall : float;
  mutable s_busy : float;
  mutable s_job_secs : float list; (* per executed job, unordered *)
}

let create ?(workers = 1) ?backend ?cache ?(timeout = 600.) ?metrics ?on_progress () =
  if workers < 1 then invalid_arg "Engine.create: workers must be >= 1";
  let timeout = if timeout <= 0. then None else Some timeout in
  let backend =
    match backend with Some b -> b | None -> Backend.default ~workers
  in
  {
    backend;
    timeout;
    cache;
    on_progress;
    ins = Option.map instruments_of metrics;
    s_jobs = 0;
    s_hits = 0;
    s_dedup = 0;
    s_exec = 0;
    s_fail = 0;
    s_retries = 0;
    s_timeouts = 0;
    s_wall = 0.;
    s_busy = 0.;
    s_job_secs = [];
  }

let workers t = t.backend.Backend.parallelism
let backend_name t = t.backend.Backend.name
let telemetry t = t.backend.Backend.telemetry ()
let cache t = t.cache

let stats t =
  {
    jobs = t.s_jobs;
    cache_hits = t.s_hits;
    deduped = t.s_dedup;
    executed = t.s_exec;
    failures = t.s_fail;
    retries = t.s_retries;
    timeouts = t.s_timeouts;
    wall_seconds = t.s_wall;
    busy_seconds = t.s_busy;
  }

let job_seconds t = Array.of_list t.s_job_secs

let utilization t =
  if t.s_wall <= 0. then 0.
  else min 1. (t.s_busy /. (t.s_wall *. float_of_int (workers t)))

let run t (jobs : Job.t array) : Outcome.t array =
  let n = Array.length jobs in
  if n = 0 then [||]
  else begin
    let t0 = Unix.gettimeofday () in
    let out : Outcome.t option array = Array.make n None in
    let finished = ref 0 and hits = ref 0 and executed = ref 0 and failures = ref 0 in
    let deduped = ref 0 in
    let emit () =
      match t.on_progress with
      | None -> ()
      | Some f ->
          f
            {
              total = n;
              finished = !finished;
              cache_hits = !hits;
              deduped = !deduped;
              executed = !executed;
              failures = !failures;
              workers = workers t;
            }
    in
    (* Identical jobs inside one batch (the ablations re-request many sweep
       cells) collapse onto one representative execution. *)
    let fps = Array.map Job.fingerprint jobs in
    let rep = Hashtbl.create (2 * n) in
    let uniques = ref [] in
    let duplicates = ref [] in
    Array.iteri
      (fun i fp ->
        match Hashtbl.find_opt rep fp with
        | Some j -> duplicates := (i, j) :: !duplicates
        | None ->
            Hashtbl.add rep fp i;
            uniques := i :: !uniques)
      fps;
    let uniques = List.rev !uniques in
    let record i outcome =
      out.(i) <- Some outcome;
      incr finished;
      (match outcome with
      | Error e -> (
          incr failures;
          match e with
          | Outcome.Job_timeout _ ->
              t.s_timeouts <- t.s_timeouts + 1;
              Option.iter (fun i -> Metrics.inc i.i_timeouts) t.ins
          | _ -> ())
      | Ok _ -> ());
      emit ()
    in
    (* Warm entries first. *)
    let misses =
      List.filter
        (fun i ->
          match t.cache with
          | None -> true
          | Some c -> (
              match Cache.find c fps.(i) with
              | Some outcome ->
                  incr hits;
                  record i outcome;
                  false
              | None -> true))
        uniques
    in
    let complete i ~seconds outcome =
      (match t.cache with Some c -> Cache.store c fps.(i) outcome | None -> ());
      incr executed;
      if seconds > 0. then t.s_job_secs <- seconds :: t.s_job_secs;
      Option.iter
        (fun ins -> Metrics.observe ins.i_job_seconds (Float.max 0. seconds))
        t.ins;
      record i outcome
    in
    (if misses <> [] then begin
       let s =
         t.backend.Backend.execute ~timeout:t.timeout ~jobs ~indices:misses
           ~on_result:complete
       in
       t.s_busy <- t.s_busy +. s.Backend.busy_seconds;
       t.s_retries <- t.s_retries + s.Backend.retries;
       Option.iter (fun i -> Metrics.add i.i_retries s.Backend.retries) t.ins
     end);
    (* Resolve duplicates from their representatives. *)
    List.iter
      (fun (i, j) ->
        match out.(j) with
        | Some outcome ->
            incr deduped;
            record i outcome
        | None -> record i (Error (Outcome.Worker_crashed "representative job missing")))
      (List.rev !duplicates);
    let wall = Unix.gettimeofday () -. t0 in
    t.s_jobs <- t.s_jobs + n;
    t.s_hits <- t.s_hits + !hits;
    t.s_dedup <- t.s_dedup + !deduped;
    t.s_exec <- t.s_exec + !executed;
    t.s_fail <- t.s_fail + !failures;
    t.s_wall <- t.s_wall +. wall;
    Option.iter
      (fun ins ->
        Metrics.add ins.i_jobs n;
        Metrics.add ins.i_hits !hits;
        Metrics.add ins.i_dedup !deduped;
        Metrics.add ins.i_exec !executed;
        Metrics.add ins.i_fail !failures)
      t.ins;
    Array.map
      (function
        | Some o -> o
        | None -> Error (Outcome.Worker_crashed "job never completed"))
      out
  end

let run_exn t jobs =
  Array.mapi
    (fun i outcome ->
      match outcome with
      | Ok r -> r
      | Error e -> failwith (Printf.sprintf "job %d: %s" i (Outcome.error_to_string e)))
    (run t jobs)

let simulate_exn t ?check ?cycle_limit cfg program =
  (run_exn t [| Job.make ?check ?cycle_limit cfg program |]).(0)
