(** Cache-invalidation stamps for the experiment engine. *)

val stamp : string
(** Simulator-revision stamp. Part of every job fingerprint and of the
    cache path: bump it whenever a simulator change can alter any result,
    and every previously cached entry becomes unreachable. *)

val format_version : int
(** Version of the marshalled on-disk cache entry format. *)
