(* Pluggable execution backends for the experiment engine.

   A backend is the thing that actually turns cache-missing jobs into
   outcomes; the engine keeps ownership of caching, deduplication,
   progress and statistics, and hands the backend only the set of indices
   it could not serve locally. Two implementations live here (in-process,
   fork pool); the remote-worker client that speaks the serve daemon's
   wire protocol lives in [lib/svc] and plugs into the same record. *)

type stats = {
  busy_seconds : float;
  retries : int;
}

type t = {
  name : string;
  parallelism : int;
  telemetry : unit -> (string * Riq_util.Json.t) list;
  execute :
    timeout:float option ->
    jobs:Job.t array ->
    indices:int list ->
    on_result:(int -> seconds:float -> Outcome.t -> unit) ->
    stats;
}

let no_telemetry () = []

let run_in_process (jobs : Job.t array) indices on_result =
  List.iter
    (fun i ->
      let t0 = Unix.gettimeofday () in
      let outcome = Runner.execute_safe jobs.(i) in
      on_result i ~seconds:(Unix.gettimeofday () -. t0) outcome)
    indices

let in_process =
  {
    name = "in-process";
    parallelism = 1;
    telemetry = no_telemetry;
    execute =
      (fun ~timeout:_ ~jobs ~indices ~on_result ->
        run_in_process jobs indices on_result;
        { busy_seconds = 0.; retries = 0 });
  }

let fork_pool ~workers =
  if workers < 1 then invalid_arg "Backend.fork_pool: workers must be >= 1";
  {
    name = Printf.sprintf "fork-pool/%d" workers;
    parallelism = workers;
    telemetry = no_telemetry;
    execute =
      (fun ~timeout ~jobs ~indices ~on_result ->
        if workers = 1 || List.length indices <= 1 || not (Pool.available ())
        then begin
          run_in_process jobs indices on_result;
          { busy_seconds = 0.; retries = 0 }
        end
        else begin
          (* Track completions so a pool failure (fork exhaustion, platform
             quirk) can fall back in-process for whatever is still missing. *)
          let done_ = Hashtbl.create (2 * List.length indices) in
          let on_result i ~seconds outcome =
            Hashtbl.replace done_ i ();
            on_result i ~seconds outcome
          in
          try
            let s = Pool.run ~workers ~timeout ~jobs ~indices ~on_result () in
            { busy_seconds = s.Pool.busy_seconds; retries = s.Pool.retries }
          with _ ->
            run_in_process jobs
              (List.filter (fun i -> not (Hashtbl.mem done_ i)) indices)
              on_result;
            { busy_seconds = 0.; retries = 0 }
        end);
  }

let default ~workers = if workers > 1 then fork_pool ~workers else in_process
