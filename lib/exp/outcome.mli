open Riq_core

(** The result of one simulation job: either the full measurement record
    every experiment consumes, or a structured per-job failure. Plain data
    on both sides so outcomes marshal across worker pipes and onto disk. *)

type sim_result = {
  stats : Processor.stats;
  sim_seconds : float;
      (** CPU seconds spent inside [Processor.run] for this job — host
          throughput telemetry (insns/s derives from it), not part of the
          deterministic measurement contract. A cache hit reports the
          seconds of the run that populated the cache. *)
  icache_power : float; (** per-cycle, Figure 6 grouping *)
  bpred_power : float;
  iq_power : float;
  overhead_power : float;
  total_power : float;
  arch_ok : bool option; (** differential check result when requested *)
}

type error =
  | Cycle_limit_exceeded of int (** the simulated program did not halt *)
  | Arch_state_mismatch of string
      (** differential validation failed; carries the rendered
          register/memory diff ({!Riq_interp.Machine.diff_string}) *)
  | Verdict_mismatch of string
      (** requested with [Job.verdicts]: a dynamically promoted loop the
          static {!Riq_analysis.Bufferability} pass hard-rejects, or a
          promoted tail the analysis never saw *)
  | Reference_did_not_halt
  | Worker_crashed of string (** worker process died; host-dependent *)
  | Job_timeout of float (** per-job wall-clock budget exhausted *)

type t = (sim_result, error) result

val error_is_deterministic : error -> bool
(** Whether the error is a property of the job (cacheable) rather than of
    the host it ran on (retry next time). *)

val cacheable : t -> bool

val zero_timing : t -> t
(** Erase the host-timing telemetry ([sim_seconds] := 0). The
    bit-identity contract between independently executed runs of the same
    job covers everything {e except} [sim_seconds]; structural equality
    checks must normalize both sides through this first. *)

val error_to_string : error -> string
