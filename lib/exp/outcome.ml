open Riq_core

type sim_result = {
  stats : Processor.stats;
  sim_seconds : float;
  icache_power : float;
  bpred_power : float;
  iq_power : float;
  overhead_power : float;
  total_power : float;
  arch_ok : bool option;
}

type error =
  | Cycle_limit_exceeded of int
  | Arch_state_mismatch of string
  | Verdict_mismatch of string
  | Reference_did_not_halt
  | Worker_crashed of string
  | Job_timeout of float

type t = (sim_result, error) result

(* Deterministic errors are properties of the job itself and may be cached;
   crashes and timeouts depend on the host and must be retried next run. *)
let error_is_deterministic = function
  | Cycle_limit_exceeded _ | Arch_state_mismatch _ | Verdict_mismatch _
  | Reference_did_not_halt ->
      true
  | Worker_crashed _ | Job_timeout _ -> false

let error_to_string = function
  | Cycle_limit_exceeded n -> Printf.sprintf "cycle limit exceeded (%d cycles)" n
  | Arch_state_mismatch diff ->
      "architectural state mismatch vs reference simulator:\n" ^ diff
  | Verdict_mismatch msg ->
      "dynamic reuse decisions contradict the static bufferability verdicts: " ^ msg
  | Reference_did_not_halt -> "reference simulator did not halt"
  | Worker_crashed msg -> "worker crashed: " ^ msg
  | Job_timeout s -> Printf.sprintf "job timed out after %.1f s" s

let cacheable = function Ok _ -> true | Error e -> error_is_deterministic e

(* The determinism contract covers everything but [sim_seconds], which
   measures the host, not the job. Comparisons of independently executed
   outcomes must erase it first. *)
let zero_timing : t -> t = function
  | Ok r -> Ok { r with sim_seconds = 0. }
  | Error _ as e -> e
