open Riq_asm
open Riq_ooo

(** The experiment engine: schedules {!Job.t}s over a fork worker pool,
    serves repeats from the content-addressed {!Cache}, deduplicates
    identical jobs inside a batch, and reports live progress.

    Results are bit-identical regardless of [workers]: parallelism only
    changes who computes each outcome, never what is computed. *)

type progress = {
  total : int;
  finished : int;
  cache_hits : int;
  deduped : int; (** served by another identical job in the same batch *)
  executed : int;
  failures : int;
  workers : int;
}

type stats = {
  jobs : int; (** jobs submitted across all [run] calls *)
  cache_hits : int;
  deduped : int;
  executed : int; (** jobs sent to the backend (simulated or served remotely) *)
  failures : int;
  retries : int; (** jobs re-dispatched after a worker crash *)
  timeouts : int; (** jobs recorded as [Job_timeout] *)
  wall_seconds : float;
  busy_seconds : float; (** summed worker busy time *)
}

type t

val create :
  ?workers:int ->
  ?backend:Backend.t ->
  ?cache:Cache.t ->
  ?timeout:float ->
  ?metrics:Riq_obs.Metrics.t ->
  ?on_progress:(progress -> unit) ->
  unit ->
  t
(** [backend] is where cache-missing jobs execute; when omitted it is
    {!Backend.default}[ ~workers] — the fork pool for [workers] (default
    1) > 1 when the platform supports it, in-process otherwise. Omitting
    [cache] disables local result caching (a remote backend typically
    runs cache-less and lets the daemon's shared store serve repeats).
    [timeout] (default 600 s; [<= 0.] disables) is the per-job wall-clock
    budget passed to the backend. With [metrics], the engine registers
    [engine_*_total] counters mirroring {!stats} plus the
    [engine_job_seconds] histogram against the given registry.
    [on_progress] fires after every job completion. *)

val run : t -> Job.t array -> Outcome.t array
(** Outcomes in job order. Per-job failures are recorded, never raised:
    one diverging simulation cannot kill a sweep. *)

val run_exn : t -> Job.t array -> Outcome.sim_result array
(** Like {!run} but raises [Failure] on the first failed job — for
    experiments whose tables need every cell. *)

val simulate_exn :
  t -> ?check:bool -> ?cycle_limit:int -> Config.t -> Program.t -> Outcome.sim_result
(** One-job convenience wrapper over {!run_exn}. *)

val workers : t -> int
(** The backend's parallelism. *)

val backend_name : t -> string

val telemetry : t -> (string * Riq_util.Json.t) list
(** The backend's extra telemetry (e.g. a remote client's service
    counters), merged into the sweep export's engine block. *)

val cache : t -> Cache.t option
val stats : t -> stats

val job_seconds : t -> float array
(** Wall-clock seconds of every job actually executed (cache hits and
    deduplicated jobs excluded), in no particular order — the raw series
    behind the sweep export's job-time quantiles. *)

val utilization : t -> float
(** [busy / (wall * workers)] over the engine's lifetime, in [0, 1]. *)
