(** In-process job execution — the one code path from a {!Job.t} to its
    measurements, used directly for sequential runs and inside every
    pool worker. *)

val execute : Job.t -> Outcome.t
(** Run the job in this process. Never raises for the simulation-level
    failure modes (cycle limit, differential mismatch, non-halting
    reference); unexpected exceptions propagate. *)

val execute_safe : Job.t -> Outcome.t
(** Like {!execute} but converts unexpected exceptions into
    [Error (Worker_crashed _)]. *)
