open Riq_isa
open Riq_asm
open Riq_ooo

type t = {
  cfg : Config.t;
  program : Program.t;
  check : bool;
  verdicts : bool;
  cycle_limit : int;
}

let default_cycle_limit = 100_000_000

let make ?(check = false) ?(verdicts = false) ?(cycle_limit = default_cycle_limit)
    cfg program =
  { cfg; program; check; verdicts; cycle_limit }

(* The fingerprint hashes exactly what determines the simulation's output:
   the encoded program image (the same 32-bit words both simulators load),
   the machine configuration, the check flag and the cycle limit, prefixed
   by the simulator-revision stamp. The program is hashed through
   [Encode.encode] rather than the AST so that any two programs that load
   identically fingerprint identically; labels/symbols are deliberately
   excluded. [Config.t] is a closed tree of scalars and immutable records,
   so its marshalled bytes are a canonical encoding. *)
let fingerprint t =
  let b = Buffer.create 4096 in
  Buffer.add_string b Revision.stamp;
  Buffer.add_char b '\n';
  Buffer.add_string b (Marshal.to_string t.cfg []);
  Buffer.add_string b (Printf.sprintf "|%b|%b|%d|" t.check t.verdicts t.cycle_limit);
  Buffer.add_string b (Printf.sprintf "text@%x entry@%x|" t.program.Program.text_base t.program.Program.entry);
  Array.iter
    (fun insn -> Buffer.add_string b (Printf.sprintf "%08x" (Encode.encode insn)))
    t.program.Program.code;
  List.iter
    (fun init ->
      match init with
      | Program.Words { base; values } ->
          Buffer.add_string b (Printf.sprintf "|W%x:" base);
          Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "%x," v)) values
      | Program.Floats { base; values } ->
          Buffer.add_string b (Printf.sprintf "|F%x:" base);
          Array.iter
            (fun v -> Buffer.add_string b (Printf.sprintf "%Lx," (Int64.bits_of_float v)))
            values)
    t.program.Program.data;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))
