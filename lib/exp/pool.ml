(* Unix-fork worker pool.

   The parent builds the full job array first, then forks workers, so the
   jobs travel to the children for free via copy-on-write memory: over the
   pipes only a 4-byte job index flows parent->worker and a marshalled
   (index, outcome) record flows back, length-prefixed.

   The parent runs a select loop over the result pipes. Per-worker state is
   the index it is running and when it started; a worker that exceeds the
   per-job timeout is SIGKILLed and its job is recorded as [Job_timeout]; a
   worker that dies (EOF on its pipe / failed dispatch write) gets its job
   retried exactly once on a fresh worker before the job is recorded as
   [Worker_crashed]. Replacement workers are forked on demand, so one bad
   job cannot drain the pool. *)

let available () = Sys.unix

type worker = {
  pid : int;
  req_w : Unix.file_descr; (* parent writes the next job index here *)
  res_r : Unix.file_descr; (* parent reads (index, outcome) records here *)
  mutable busy : int option; (* job index currently running, if any *)
  mutable started : float;
}

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

(* [read_exact fd n] returns [None] on EOF before [n] bytes. *)
let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Some b
    else
      let r = restart_on_intr (fun () -> Unix.read fd b off (n - off)) in
      if r = 0 then None else go (off + r)
  in
  go 0

let write_all fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = restart_on_intr (fun () -> Unix.write fd b off (n - off)) in
      go (off + w)
  in
  go 0

let encode_index idx =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int idx);
  b

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let worker_main (jobs : Job.t array) req_r res_w =
  let rec loop () =
    match read_exact req_r 4 with
    | None -> () (* parent closed the request pipe: shut down *)
    | Some b ->
        let idx = Int32.to_int (Bytes.get_int32_le b 0) in
        if idx < 0 then ()
        else begin
          let outcome = Runner.execute_safe jobs.(idx) in
          let payload = Marshal.to_bytes (idx, outcome) [] in
          let hdr = Bytes.create 8 in
          Bytes.set_int64_le hdr 0 (Int64.of_int (Bytes.length payload));
          write_all res_w hdr;
          write_all res_w payload;
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

let spawn jobs live =
  let req_r, req_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close req_w;
      Unix.close res_r;
      (* Close the parent-side ends of every sibling's pipes, otherwise a
         sibling's death would not read as EOF in the parent. *)
      List.iter
        (fun w ->
          (try Unix.close w.req_w with _ -> ());
          try Unix.close w.res_r with _ -> ())
        !live;
      (try worker_main jobs req_r res_w with _ -> ());
      (* _exit: do not run the parent's at_exit handlers or flush its
         channels a second time. *)
      Unix._exit 0
  | pid ->
      Unix.close req_r;
      Unix.close res_w;
      let w = { pid; req_w; res_r; busy = None; started = 0. } in
      live := w :: !live;
      w

let reap w =
  (try Unix.close w.req_w with _ -> ());
  (try Unix.close w.res_r with _ -> ());
  try ignore (restart_on_intr (fun () -> Unix.waitpid [] w.pid)) with _ -> ()

let kill_and_reap w =
  (try Unix.kill w.pid Sys.sigkill with _ -> ());
  reap w

exception Worker_died of worker

(* Read one (index, outcome) record off a worker's result pipe. The worker
   writes records whole and each is far smaller than the pipe buffer, so
   once the pipe selects readable the blocking reads below complete
   immediately; EOF at any point means the worker died. *)
let read_result w : int * Outcome.t =
  match read_exact w.res_r 8 with
  | None -> raise (Worker_died w)
  | Some hdr -> (
      let len = Int64.to_int (Bytes.get_int64_le hdr 0) in
      if len <= 0 || len > 1 lsl 30 then raise (Worker_died w);
      match read_exact w.res_r len with
      | None -> raise (Worker_died w)
      | Some payload -> (Marshal.from_bytes payload 0 : int * Outcome.t))

type summary = { busy_seconds : float; retries : int }

let run ~workers ~timeout ~(jobs : Job.t array) ~indices ~on_result () =
  if workers < 1 then invalid_arg "Pool.run: workers must be >= 1";
  let pending = Queue.create () in
  List.iter (fun i -> Queue.add i pending) indices;
  let remaining = ref (Queue.length pending) in
  if !remaining = 0 then { busy_seconds = 0.; retries = 0 }
  else begin
    let n_workers = min workers !remaining in
    let live = ref [] in
    let retried = Hashtbl.create 16 in
    let busy_seconds = ref 0. in
    let old_sigpipe =
      (* A worker dying between select and dispatch must surface as EPIPE,
         not kill the whole experiment. *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> None
    in
    let finish w idx outcome =
      w.busy <- None;
      let dt = Unix.gettimeofday () -. w.started in
      busy_seconds := !busy_seconds +. dt;
      decr remaining;
      on_result idx ~seconds:dt outcome
    in
    (* A worker died while [idx] was in flight: retry the job once on a
       fresh worker, then give up on it. *)
    let crashed w msg =
      (match w.busy with
      | None -> ()
      | Some idx ->
          if Hashtbl.mem retried idx then finish w idx (Error (Outcome.Worker_crashed msg))
          else begin
            Hashtbl.add retried idx ();
            w.busy <- None;
            busy_seconds := !busy_seconds +. (Unix.gettimeofday () -. w.started);
            Queue.add idx pending
          end);
      live := List.filter (fun w' -> w'.pid <> w.pid) !live;
      reap w
    in
    let dispatch w idx =
      w.busy <- Some idx;
      w.started <- Unix.gettimeofday ();
      try write_all w.req_w (encode_index idx)
      with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        crashed w "worker process exited before accepting the job"
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun w ->
            (try write_all w.req_w (encode_index (-1)) with _ -> ());
            reap w)
          !live;
        match old_sigpipe with
        | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
        | None -> ())
      (fun () ->
        for _ = 1 to n_workers do
          ignore (spawn jobs live)
        done;
        while !remaining > 0 do
          (* Refork if crashes shrank the pool below the work left. *)
          if List.length !live < min n_workers !remaining then ignore (spawn jobs live);
          (* Feed every idle worker. *)
          List.iter
            (fun w ->
              if w.busy = None && not (Queue.is_empty pending) then
                dispatch w (Queue.pop pending))
            !live;
          let busy = List.filter (fun w -> w.busy <> None) !live in
          if busy = [] then begin
            (* Every job is pending, in flight, or finished; with nothing
               in flight and nothing pending, remaining must be 0. Being
               here means dispatch itself keeps failing. *)
            if Queue.is_empty pending then
              failwith "Pool.run: workers lost with no jobs in flight"
          end
          else begin
            let now = Unix.gettimeofday () in
            let select_timeout =
              match timeout with
              | None -> -1.0 (* block until a result or a worker EOF *)
              | Some t ->
                  List.fold_left
                    (fun acc w -> min acc (max 0.05 (t -. (now -. w.started))))
                    1.0 busy
            in
            let readable, _, _ =
              restart_on_intr (fun () ->
                  Unix.select (List.map (fun w -> w.res_r) busy) [] [] select_timeout)
            in
            List.iter
              (fun w ->
                if List.memq w.res_r readable then
                  match read_result w with
                  | idx, outcome -> finish w idx outcome
                  | exception Worker_died w -> crashed w "worker process died mid-job"
                  | exception _ -> crashed w "unreadable result from worker")
              busy;
            (* Enforce the per-job wall-clock budget. *)
            match timeout with
            | None -> ()
            | Some t ->
                let now = Unix.gettimeofday () in
                List.iter
                  (fun w ->
                    match w.busy with
                    | Some idx when now -. w.started > t ->
                        finish w idx (Error (Outcome.Job_timeout t));
                        live := List.filter (fun w' -> w'.pid <> w.pid) !live;
                        kill_and_reap w
                    | _ -> ())
                  !live
          end
        done;
        { busy_seconds = !busy_seconds; retries = Hashtbl.length retried })
  end
