(** Pluggable execution backends for the {!Engine}.

    The engine owns caching, in-batch deduplication, progress and
    statistics; a backend only turns the cache-missing job indices into
    outcomes. Besides the two local implementations here, [Riq_svc.Client]
    builds a backend that forwards jobs to a [riq-sim serve] daemon over
    the wire protocol — the engine cannot tell the difference. *)

type stats = {
  busy_seconds : float;  (** summed worker busy time (0 when unknown) *)
  retries : int;  (** jobs re-dispatched after a worker crash *)
}

type t = {
  name : string;
  parallelism : int;  (** worker slots behind this backend, best guess *)
  telemetry : unit -> (string * Riq_util.Json.t) list;
      (** extra key/value pairs merged into the sweep export's engine
          block (e.g. the remote client's service counters); called once
          at export time. *)
  execute :
    timeout:float option ->
    jobs:Job.t array ->
    indices:int list ->
    on_result:(int -> seconds:float -> Outcome.t -> unit) ->
    stats;
      (** Run [indices] (a subset of [jobs]), reporting each outcome
          exactly once via [on_result]. Must not raise: per-job failures
          travel as [Error] outcomes. An index never reported is recorded
          by the engine as [Worker_crashed]. *)
}

val in_process : t
(** Sequential execution in the calling process. *)

val fork_pool : workers:int -> t
(** The Unix-fork worker pool ({!Pool}), with per-job [timeout]
    enforcement and retry-once on worker death. Falls back to in-process
    execution when forking is unavailable or there is nothing to
    parallelize. *)

val default : workers:int -> t
(** {!fork_pool} when [workers > 1], else {!in_process} — the engine's
    historical behaviour. *)

val no_telemetry : unit -> (string * Riq_util.Json.t) list
(** The empty telemetry hook, for custom backends. *)
