(** On-disk content-addressed result cache.

    Entries live under [<root>/v<format>/<revision-stamp>/<k0k1>/<key>],
    keyed by {!Job.fingerprint}; bumping {!Revision.stamp} orphans every
    old entry. Corrupt or stale files read as misses. Writes are atomic
    (temp file + rename), so parallel workers and concurrent sweeps can
    share one cache. *)

type t

val default_root : unit -> string
(** [$RIQ_CACHE_DIR] when set and non-empty, else [".riq-cache"] in the
    working directory. *)

val open_ : ?root:string -> unit -> t
(** Open (and create if needed) the cache under [root]
    (default {!default_root}). *)

val root : t -> string

val path : t -> string -> string
(** Absolute entry path for a fingerprint — exposed for tests and for the
    CLI's cache description. *)

val find : t -> string -> Outcome.t option

val store : t -> string -> Outcome.t -> unit
(** No-op for outcomes that are not {!Outcome.cacheable} (crashes,
    timeouts). Writes are atomic (unique temp file + rename) and
    best-effort: an unwritable cache (read-only tree, full disk) is
    silently skipped rather than failing the experiment. *)
