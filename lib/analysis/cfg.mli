open Riq_isa
open Riq_asm

(** Basic-block control-flow graph over a decoded {!Program.t}.

    Blocks partition the text segment: a leader starts at the entry point,
    at every branch/jump target, and at every instruction following a
    control transfer. Edges follow the statically-known control flow:

    - conditional branches get a taken edge and a fallthrough edge;
    - direct jumps get their target edge;
    - direct calls ([jal]) get an edge to the callee entry {e and} to the
      fallthrough (the return point), so reachability and liveness flow
      through call sites without an interprocedural summary;
    - indirect jumps ([jr]/[jalr]) have no statically-known successors —
      the block is marked {!field-b_indirect} instead — except for the
      assembler's constant-address idiom [la rX, L; jr rX] with the
      [lui]/[ori] pair in the same block, which resolves to a direct edge
      to [L];
    - [halt] ends the program (no successors).

    The graph deliberately mirrors what the decode stage of the simulated
    processor can know: targets of indirect transfers are opaque, exactly
    as they are to the paper's loop detector. *)

type block = {
  b_id : int;
  b_first : int; (** byte address of the first instruction *)
  b_last : int; (** byte address of the last instruction *)
  mutable b_succs : int list; (** successor block ids, deterministic order *)
  mutable b_preds : int list;
  b_indirect : bool;
      (** ends in a [jr]/[jalr] whose target is unknown (a resolved
          [la; jr] pair clears this) *)
  b_call : bool; (** ends in [jal]/[jalr] (procedure call) *)
}

type t = {
  program : Program.t;
  blocks : block array; (** ordered by address *)
  entry : int; (** block id containing [Program.entry] *)
}

val build : Program.t -> t
(** Decode the text segment into a CFG. Raises [Invalid_argument] when the
    entry point lies outside the text segment. *)

val n_blocks : t -> int
val block : t -> int -> block

val block_at : t -> int -> block option
(** Block whose address range contains the given byte address. *)

val n_insns : block -> int

val insns : t -> block -> (int * Insn.t) list
(** The [(pc, instruction)] sequence of a block, in address order. *)

val last_insn : t -> block -> Insn.t

val reverse_postorder : t -> int array
(** Block ids in reverse postorder of a DFS from the entry block.
    Unreachable blocks are appended after the reachable ones (in address
    order) so dataflow passes still visit them. *)

val reachable : t -> bool array
(** Per-block flag: reachable from the entry by CFG edges. *)

val pp : Format.formatter -> t -> unit
