open Riq_isa

(** Reaching definitions over a {!Cfg.t}, the first {!Dataflow} client.

    A definition is an instruction whose {!Insn.dest} is some register;
    the pseudo-definition at pc [-1] models the machine's initial state
    (both simulators start with zeroed register files). The solve is a
    forward union-of-sets fixpoint, so facts flow around loop back edges:
    asking for the definitions of [r] reaching a loop-body pc returns
    defs from {e any} iteration, which is exactly what the bufferability
    window-invariance and induction checks need. *)

type t

val analyze : Cfg.t -> t

val entry_pc : int
(** The pseudo-pc ([-1]) of the initial-state definition of each register. *)

val defs_of : t -> pc:int -> Reg.t -> int list
(** Pcs (sorted ascending, possibly including {!entry_pc}) of the
    definitions of a register that reach the program point {e just
    before} executing [pc]. Empty when [pc] is outside the text
    segment. *)

val invariant_in : t -> head:int -> tail:int -> Reg.t -> bool
(** No definition of the register inside the byte-address window
    [[head, tail]] reaches the window head — i.e. the register is
    loop-invariant for a natural loop spanning that window. *)
