type loop = {
  l_header : int;
  l_back_edges : int list;
  l_blocks : int list;
  l_depth : int;
  l_parent : int option;
  l_children : int list;
}

type t = {
  cfg : Cfg.t;
  dom : Dominators.t;
  loops : loop array;
  irreducible : (int * int) list;
}

module IntSet = Set.Make (Int)

(* Retreating edges = edges whose target is an ancestor in the DFS tree
   (equivalently, for our purposes: target appears no later in reverse
   postorder). A retreating edge is a genuine back edge iff its target
   dominates its source. *)
let detect cfg =
  let dom = Dominators.compute cfg in
  let reach = Cfg.reachable cfg in
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let pos = Array.make n max_int in
  Array.iteri (fun i b -> pos.(b) <- i) rpo;
  let back = ref [] and irreducible = ref [] in
  for b = 0 to n - 1 do
    if reach.(b) then
      List.iter
        (fun s ->
          if pos.(s) <= pos.(b) then
            if Dominators.dominates dom s b then back := (b, s) :: !back
            else irreducible := (b, s) :: !irreducible)
        (Cfg.block cfg b).Cfg.b_succs
  done;
  (* Natural loop of each back edge; merge back edges sharing a header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (src, header) ->
      let body =
        match Hashtbl.find_opt by_header header with
        | Some (srcs, body) ->
            Hashtbl.replace by_header header (src :: srcs, body);
            body
      | None ->
            let body = ref (IntSet.singleton header) in
            Hashtbl.replace by_header header ([ src ], body);
            body
      in
      (* Walk predecessors backward from the edge source. *)
      let stack = ref [] in
      if not (IntSet.mem src !body) then begin
        body := IntSet.add src !body;
        stack := [ src ]
      end;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | x :: rest ->
            stack := rest;
            List.iter
              (fun p ->
                if reach.(p) && not (IntSet.mem p !body) then begin
                  body := IntSet.add p !body;
                  stack := p :: !stack
                end)
              (Cfg.block cfg x).Cfg.b_preds
      done)
    !back;
  let raw =
    Hashtbl.fold
      (fun header (srcs, body) acc -> (header, List.sort compare srcs, !body) :: acc)
      by_header []
  in
  (* Nesting: loop A contains loop B iff A's body contains B's header and
     the loops differ. Sort outermost-first by body size (a containing
     loop is strictly larger). *)
  let raw =
    List.sort
      (fun (_, _, b1) (_, _, b2) ->
        compare (IntSet.cardinal b2, 0) (IntSet.cardinal b1, 0))
      raw
  in
  let arr = Array.of_list raw in
  let nl = Array.length arr in
  let parent = Array.make nl None in
  for i = 0 to nl - 1 do
    let hdr_i, _, body_i = arr.(i) in
    ignore body_i;
    (* Smallest enclosing loop: the last (smallest) loop before... scan all
       larger loops, keep the smallest body containing our header. *)
    let best = ref None in
    for j = 0 to nl - 1 do
      if j <> i then begin
        let hdr_j, _, body_j = arr.(j) in
        if hdr_j <> hdr_i && IntSet.mem hdr_i body_j then
          match !best with
          | None -> best := Some j
          | Some k ->
              let _, _, body_k = arr.(k) in
              if IntSet.cardinal body_j < IntSet.cardinal body_k then best := Some j
      end
    done;
    parent.(i) <- !best
  done;
  let depth = Array.make nl 0 in
  let rec depth_of i =
    if depth.(i) > 0 then depth.(i)
    else begin
      let d = match parent.(i) with None -> 1 | Some p -> depth_of p + 1 in
      depth.(i) <- d;
      d
    end
  in
  for i = 0 to nl - 1 do
    ignore (depth_of i)
  done;
  let children = Array.make nl [] in
  for i = nl - 1 downto 0 do
    match parent.(i) with
    | Some p -> children.(p) <- i :: children.(p)
    | None -> ()
  done;
  let loops =
    Array.mapi
      (fun i (header, srcs, body) ->
        {
          l_header = header;
          l_back_edges = srcs;
          l_blocks = IntSet.elements body;
          l_depth = depth.(i);
          l_parent = parent.(i);
          l_children = children.(i);
        })
      arr
  in
  { cfg; dom; loops; irreducible = List.rev !irreducible }

let loop_of_header t h =
  Array.fold_left
    (fun acc l -> match acc with Some _ -> acc | None -> if l.l_header = h then Some l else None)
    None t.loops

let innermost _t l = l.l_children = []

let containing t b =
  let idx = ref [] in
  Array.iteri (fun i l -> if List.mem b l.l_blocks then idx := i :: !idx) t.loops;
  List.sort
    (fun i j -> compare t.loops.(i).l_depth t.loops.(j).l_depth)
    (List.rev !idx)

let pp ppf t =
  Array.iteri
    (fun i l ->
      Format.fprintf ppf "loop %d: header B%d depth %d blocks [%s]%s@." i l.l_header l.l_depth
        (String.concat ";" (List.map (fun b -> string_of_int b) l.l_blocks))
        (if l.l_children = [] then " (innermost)" else ""))
    t.loops;
  List.iter
    (fun (s, d) -> Format.fprintf ppf "irreducible edge B%d -> B%d@." s d)
    t.irreducible
