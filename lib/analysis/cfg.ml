open Riq_isa
open Riq_asm

type block = {
  b_id : int;
  b_first : int;
  b_last : int;
  mutable b_succs : int list;
  mutable b_preds : int list;
  b_indirect : bool;
  b_call : bool;
}

type t = { program : Program.t; blocks : block array; entry : int }

let n_blocks t = Array.length t.blocks
let block t i = t.blocks.(i)
let n_insns b = ((b.b_last - b.b_first) / 4) + 1

(* Whether control falls through from an instruction to its successor
   address. Conditional branches and calls do; unconditional jumps, returns
   and halt do not. *)
let falls_through insn =
  match Insn.kind insn with
  | Insn.K_jump | K_ijump | K_return | K_halt -> false
  | K_branch | K_call | K_int | K_fp | K_load | K_store | K_nop -> true

(* [la rX, L; jr rX] — the assembler's expansion of a jump to a constant
   label. When the lui/ori pair sits in the same block as the [jr] (no
   leader between them), the register can only hold that label's address
   at the jump, so the transfer is as static as a direct jump. [first]
   bounds the backward look; returns the byte target. *)
let resolved_ijump_target program ~first ~pc insn =
  match insn with
  | Insn.Jr r when r <> Reg.ra && pc - 8 >= first -> (
      let base = program.Program.text_base in
      let at a = program.Program.code.((a - base) / 4) in
      match (at (pc - 8), at (pc - 4)) with
      | Insn.Lui (r1, hi), Insn.Alui (Insn.Or, r2, r3, lo)
        when r1 = r && r2 = r && r3 = r ->
          Some ((hi lsl 16) lor lo)
      | _ -> None)
  | _ -> None

(* Statically-known successor addresses of the instruction at [pc], within
   the text segment. *)
let succ_addrs program ~pc insn =
  let base = program.Program.text_base in
  let limit = base + Program.size_bytes program in
  let in_text a = a >= base && a < limit in
  let tgt =
    match Insn.kind insn with
    | Insn.K_branch | K_jump -> Insn.ctrl_target insn ~pc
    | K_call -> (
        match insn with Insn.Jal t -> Some (4 * t) | _ -> None (* jalr: unknown *))
    | K_ijump | K_return | K_int | K_fp | K_load | K_store | K_nop | K_halt -> None
  in
  let fall = if falls_through insn && in_text (pc + 4) then [ pc + 4 ] else [] in
  match tgt with
  | Some a when in_text a && not (List.mem a fall) -> fall @ [ a ]
  | Some _ | None -> fall

let build program =
  let base = program.Program.text_base in
  let n = Array.length program.Program.code in
  let limit = base + (4 * n) in
  if program.Program.entry < base || program.Program.entry >= limit then
    invalid_arg "Cfg.build: entry point outside the text segment";
  let insn_at pc = program.Program.code.((pc - base) / 4) in
  (* Pass 1: leaders. *)
  let leader = Array.make n false in
  let mark pc = if pc >= base && pc < limit then leader.((pc - base) / 4) <- true in
  mark base;
  mark program.Program.entry;
  for i = 0 to n - 1 do
    let pc = base + (4 * i) in
    let insn = insn_at pc in
    if Insn.is_ctrl insn || Insn.kind insn = Insn.K_halt then begin
      mark (pc + 4);
      match Insn.kind insn with
      | Insn.K_branch | K_jump -> Option.iter mark (Insn.ctrl_target insn ~pc)
      | K_call -> ( match insn with Insn.Jal t -> mark (4 * t) | _ -> ())
      | K_ijump ->
          (* Over-approximation is harmless here: the same-block condition
             is re-checked against the final leaders in passes 2 and 3. *)
          Option.iter mark (resolved_ijump_target program ~first:base ~pc insn)
      | K_return | K_int | K_fp | K_load | K_store | K_nop | K_halt -> ()
    end
  done;
  (* Pass 2: blocks. *)
  let blocks = ref [] in
  let start = ref 0 in
  let nb = ref 0 in
  let id_of_word = Array.make n (-1) in
  for i = 0 to n - 1 do
    let last_of_block = i = n - 1 || leader.(i + 1) in
    if last_of_block then begin
      let first = base + (4 * !start) and last = base + (4 * i) in
      let insn = insn_at last in
      let kind = Insn.kind insn in
      let resolved =
        kind = Insn.K_ijump
        && resolved_ijump_target program ~first ~pc:last insn <> None
      in
      blocks :=
        {
          b_id = !nb;
          b_first = first;
          b_last = last;
          b_succs = [];
          b_preds = [];
          b_indirect =
            (match kind with
            | Insn.K_ijump -> not resolved
            | K_return -> true
            | _ -> false);
          b_call = (match kind with Insn.K_call -> true | _ -> false);
        }
        :: !blocks;
      for w = !start to i do
        id_of_word.(w) <- !nb
      done;
      incr nb;
      start := i + 1
    end
  done;
  let blocks = Array.of_list (List.rev !blocks) in
  (* Pass 3: edges. *)
  Array.iter
    (fun b ->
      let insn = insn_at b.b_last in
      let addrs =
        match resolved_ijump_target program ~first:b.b_first ~pc:b.b_last insn with
        | Some t when t >= base && t < limit -> [ t ]
        | Some _ | None -> succ_addrs program ~pc:b.b_last insn
      in
      let succs = List.map (fun a -> id_of_word.((a - base) / 4)) addrs in
      b.b_succs <- succs;
      List.iter (fun s -> blocks.(s).b_preds <- b.b_id :: blocks.(s).b_preds) succs)
    blocks;
  Array.iter (fun b -> b.b_preds <- List.rev b.b_preds) blocks;
  { program; blocks; entry = id_of_word.((program.Program.entry - base) / 4) }

let block_at t pc =
  let n = Array.length t.blocks in
  let rec bsearch lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let b = t.blocks.(mid) in
      if pc < b.b_first then bsearch lo (mid - 1)
      else if pc > b.b_last then bsearch (mid + 1) hi
      else Some b
  in
  bsearch 0 (n - 1)

let insns t b =
  let rec go pc acc =
    if pc > b.b_last then List.rev acc
    else
      match Program.insn_at t.program pc with
      | Some i -> go (pc + 4) ((pc, i) :: acc)
      | None -> List.rev acc
  in
  go b.b_first []

let last_insn t b =
  match Program.insn_at t.program b.b_last with
  | Some i -> i
  | None -> assert false

let reachable t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.blocks.(i).b_succs
    end
  in
  dfs t.entry;
  seen

let reverse_postorder t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.blocks.(i).b_succs;
      post := i :: !post
    end
  in
  dfs t.entry;
  let order = !post in
  (* Unreachable blocks after the reachable ones, in address order. *)
  let rest = List.filter (fun i -> not seen.(i)) (List.init n Fun.id) in
  Array.of_list (order @ rest)

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d [%08x..%08x] -> %s%s@."
        b.b_id b.b_first b.b_last
        (String.concat "," (List.map (fun s -> "B" ^ string_of_int s) b.b_succs))
        (if b.b_indirect then " (indirect)" else ""))
    t.blocks
