open Riq_isa
open Riq_asm

type reason =
  | Too_large of int
  | Inner_transfer of int
  | Call_overflow of int
  | Callee_loops of int
  | Indirect of int
  | Contains_halt of int
  | Side_entry
  | Irreducible

type prediction = Promotes | Never_promotes | Marginal

type risk =
  | Aliasing_store of { store : int; load : int }
  | Data_dependent_trip

type revoke_cause = Rv_inner_loop | Rv_left_loop | Rv_overflow | Rv_mispredict

type cause_counts = {
  rc_inner : int;
  rc_left : int;
  rc_overflow : int;
  rc_mispredict : int;
}

type loop_report = {
  head : int;
  tail : int;
  span : int;
  depth : int;
  innermost : bool;
  verdict : (unit, reason) result;
  trip : int option;
  entries : float option;
  iter_insns : float;
  unroll : int;
  prediction : prediction;
  intra_branches : int;
  early_exits : int;
  nblt_risk : bool;
  lrl : Int64.t;
  reused_insns : float option;
  risks : risk list;
  no_alias : Alias.pair list;
  predicted_cause : revoke_cause option;
}

type report = {
  iq_size : int;
  multi_iter : bool;
  loops : loop_report list;
  total_insns : float option;
  coverage : float option;
  exact_trips : bool;
  irreducible_edges : (int * int) list;
  unreachable : (int * int) list;
}

let reason_to_string = function
  | Too_large span -> Printf.sprintf "too-large (span %d)" span
  | Inner_transfer pc -> Printf.sprintf "inner-loop (backward transfer at %08x)" pc
  | Call_overflow fp -> Printf.sprintf "call-overflow (iteration footprint %d)" fp
  | Callee_loops pc -> Printf.sprintf "callee-loops (callee at %08x)" pc
  | Indirect pc -> Printf.sprintf "indirect (at %08x)" pc
  | Contains_halt pc -> Printf.sprintf "contains-halt (at %08x)" pc
  | Side_entry -> "side-entry"
  | Irreducible -> "irreducible"

let risk_to_string = function
  | Aliasing_store { store; load } ->
      Printf.sprintf "aliasing-store (store %08x may hit load %08x)" store load
  | Data_dependent_trip -> "data-dependent-trip"

let cause_to_string = function
  | Rv_inner_loop -> "inner-loop"
  | Rv_left_loop -> "left-loop"
  | Rv_overflow -> "overflow"
  | Rv_mispredict -> "mispredict"

(* Default amplification for loops whose trip count resists static
   derivation; flow estimates using it are flagged inexact. *)
let default_trip = 10.

(* ------------------------------------------------------------------ *)
(* Constant resolution and trip counts.                                 *)
(* ------------------------------------------------------------------ *)

(* The loop head's predecessors outside the address window: the preheader
   paths, whose dataflow facts give loop-entry register values. *)
let outside_preds cfg ~head ~tail =
  match Cfg.block_at cfg head with
  | None -> []
  | Some hb ->
      List.filter
        (fun p ->
          let pb = Cfg.block cfg p in
          pb.Cfg.b_last < head || pb.Cfg.b_first > tail)
        hb.Cfg.b_preds

(* Loop-entry constant of a register: the value-range join over every
   preheader edge. Strictly stronger than the old single-predecessor
   immediate chase, and sound across calls (Valrange havocs them). *)
let entry_const cfg values ~head ~tail reg =
  match Cfg.block_at cfg head with
  | None -> None
  | Some hb ->
      Valrange.const
        (Valrange.value_into values ~block:hb.Cfg.b_id
           ~from:(outside_preds cfg ~head ~tail)
           reg)

(* The instructions of the address window [head..tail], the quantity the
   dynamic detector and buffering state machine reason about. *)
let window_insns program ~head ~tail =
  let rec go pc acc =
    if pc > tail then List.rev acc
    else
      match Program.insn_at program pc with
      | Some i -> go (pc + 4) ((pc, i) :: acc)
      | None -> List.rev acc
  in
  go head []

(* Statically derive the per-entry iteration count of the loop closed by
   the backward branch at [tail]. Recognises the two bottom-test idioms:
     slt/slti rc, ri, bound ; bne rc, r0, head     (count up to a bound)
     addi ri, ri, -s ; bgtz/bne ri(, r0), head     (count down to zero)
   with the induction step the unique in-window update of [ri] and the
   loop-entry values taken from the value-range analysis. Every count
   returned is exact (the tail test fires after exactly that many
   induction updates), which is what lets {!Alias} lower induction-based
   addresses to concrete intervals: a [bne]-to-zero countdown whose
   initial value is not divisible by the step never hits zero, so it
   yields [None] rather than a bogus ceiling. *)
let trip_count cfg values ~head ~tail =
  let program = cfg.Cfg.program in
  let win = window_insns program ~head ~tail in
  let defs_of r =
    List.filter (fun (pc, i) -> pc <> tail && Insn.dest i = Some r) win
  in
  let induction ri =
    match defs_of ri with
    | [ (_, Insn.Alui (Insn.Add, _, rs, step)) ] when rs = ri && step <> 0 -> Some step
    | _ -> None
  in
  let entry_const reg = entry_const cfg values ~head ~tail reg in
  let last_def_before_tail r =
    let rec go best = function
      | [] -> best
      | (pc, i) :: rest ->
          if pc < tail && Insn.dest i = Some r then go (Some (pc, i)) rest
          else go best rest
    in
    go None win
  in
  let up ~init ~bound ~step =
    if step <= 0 then None
    else if init >= bound then Some 1 (* entered at all means one pass *)
    else Some ((bound - init + step - 1) / step)
  in
  match Program.insn_at program tail with
  | Some (Insn.Br (Insn.Bne, rc, rt, _)) when rt = Reg.zero -> (
      match last_def_before_tail rc with
      | Some (_, Insn.Alui (Insn.Slt, _, ri, bound)) -> (
          match (induction ri, entry_const ri) with
          | Some step, Some init -> up ~init ~bound ~step
          | _ -> None)
      | Some (slt_pc, Insn.Alu (Insn.Slt, _, ri, rb)) -> (
          (* The bound register's value just before the compare. *)
          match
            ( induction ri,
              entry_const ri,
              Valrange.const (Valrange.value_at values ~pc:slt_pc rb) )
          with
          | Some step, Some init, Some bound when defs_of rb = [] ->
              up ~init ~bound ~step
          | _ -> None)
      | _ -> (
          (* bne ri, r0: count down to zero. *)
          match (induction rc, entry_const rc) with
          | Some step, Some init
            when step < 0 && init > 0 && init mod -step = 0 ->
              Some (init / -step)
          | _ -> None))
  | Some (Insn.Br (Insn.Bgtz, ri, _, _)) -> (
      match (induction ri, entry_const ri) with
      | Some step, Some init when step < 0 && init > 0 -> Some ((init + -step - 1) / -step)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Block execution-frequency estimation.                               *)
(* ------------------------------------------------------------------ *)

type flow = {
  counts : float array; (* expected executions per block *)
  header_entries : float array; (* flow into a loop header from outside *)
  exact : bool; (* no unknown trip count was involved *)
}

let estimate_flow cfg (ls : Loops.t) (trips : int option array) =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let reach = Cfg.reachable cfg in
  let pos = Array.make n max_int in
  Array.iteri (fun i b -> pos.(b) <- i) rpo;
  let retreating src dst = pos.(dst) <= pos.(src) in
  let loop_idx_of_header = Hashtbl.create 8 in
  Array.iteri (fun i l -> Hashtbl.replace loop_idx_of_header l.Loops.l_header i) ls.Loops.loops;
  let exact = ref true in
  let trip_float i =
    match trips.(i) with
    | Some t -> float_of_int (max 1 t)
    | None ->
        exact := false;
        default_trip
  in
  let inflow = Array.make n 0. in
  let counts = Array.make n 0. in
  let header_entries = Array.make n 0. in
  inflow.(cfg.Cfg.entry) <- 1.;
  (* The source block of a back edge of loop [i], used to scale its exit
     edges down by the trip count. *)
  let back_loop_of b =
    let best = ref None in
    Array.iteri
      (fun i l ->
        if List.mem b l.Loops.l_back_edges && List.exists (retreating b) [ l.Loops.l_header ]
        then best := Some i)
      ls.Loops.loops;
    !best
  in
  Array.iter
    (fun b ->
      if reach.(b) then begin
        let c =
          match Hashtbl.find_opt loop_idx_of_header b with
          | Some i ->
              header_entries.(b) <- inflow.(b);
              inflow.(b) *. trip_float i
          | None -> inflow.(b)
        in
        counts.(b) <- c;
        let bl = Cfg.block cfg b in
        let add s w = inflow.(s) <- inflow.(s) +. w in
        match back_loop_of b with
        | Some i ->
            (* Loop-closing block: the back edge is consumed by the header
               amplification; exit edges fire once per loop entry. *)
            let t = trip_float i in
            List.iter (fun s -> if not (retreating b s) then add s (c /. t)) bl.Cfg.b_succs
        | None -> (
            if bl.Cfg.b_call then List.iter (fun s -> add s c) bl.Cfg.b_succs
            else
              match List.filter (fun s -> not (retreating b s)) bl.Cfg.b_succs with
              | [] -> ()
              | [ s ] -> add s c
              | [ s1; s2 ] -> (
                  (* Loop-guard idiom: a branch that either enters an
                     upcoming loop or skips it takes the entering side
                     whenever the loop statically iterates. *)
                  let guard s =
                    match Hashtbl.find_opt loop_idx_of_header s with
                    | Some i when not (List.mem b ls.Loops.loops.(i).Loops.l_blocks) ->
                        trips.(i)
                    | _ -> None
                  in
                  match (guard s1, guard s2) with
                  | Some t, _ ->
                      if t >= 1 then add s1 c else add s2 c
                  | _, Some t ->
                      if t >= 1 then add s2 c else add s1 c
                  | None, None ->
                      add s1 (c *. 0.5);
                      add s2 (c *. 0.5))
              | more ->
                  let w = c /. float_of_int (List.length more) in
                  List.iter (fun s -> add s w) more)
      end)
    rpo;
  { counts; header_entries; exact = !exact }

(* ------------------------------------------------------------------ *)
(* Direct-callee footprint.                                            *)
(* ------------------------------------------------------------------ *)

(* Size in instructions of the procedure entered at [entry] (a block id),
   following direct calls transitively; [Error] when the callee cannot be
   buffered as straight-line code. *)
let callee_size cfg (ls : Loops.t) =
  let memo = Hashtbl.create 8 in
  let rec size ~depth entry =
    if depth > 8 then Error (Callee_loops (Cfg.block cfg entry).Cfg.b_first)
    else
      match Hashtbl.find_opt memo entry with
      | Some r -> r
      | None ->
          let visited = Hashtbl.create 8 in
          let total = ref 0 in
          let err = ref None in
          let rec dfs b =
            if (not (Hashtbl.mem visited b)) && !err = None then begin
              Hashtbl.replace visited b ();
              let bl = Cfg.block cfg b in
              total := !total + Cfg.n_insns bl;
              if Loops.containing ls b <> [] then
                err := Some (Callee_loops (Cfg.block cfg entry).Cfg.b_first)
              else begin
                (match Cfg.last_insn cfg bl with
                | Insn.Jalr _ -> err := Some (Indirect bl.Cfg.b_last)
                | Jr r when r <> Reg.ra -> err := Some (Indirect bl.Cfg.b_last)
                | Halt -> err := Some (Contains_halt bl.Cfg.b_last)
                | Jal t -> (
                    match Cfg.block_at cfg (4 * t) with
                    | Some cb -> (
                        match size ~depth:(depth + 1) cb.Cfg.b_id with
                        | Ok s -> total := !total + s
                        | Error e -> err := Some e)
                    | None -> err := Some (Indirect bl.Cfg.b_last))
                | _ -> ());
                match Cfg.last_insn cfg bl with
                | Insn.Jr _ -> () (* return: end of the callee *)
                | Jal _ ->
                    (* continue at the return point only *)
                    (match bl.Cfg.b_succs with
                    | fall :: _ when (Cfg.block cfg fall).Cfg.b_first = bl.Cfg.b_last + 4 ->
                        dfs fall
                    | _ -> ())
                | _ -> List.iter dfs bl.Cfg.b_succs
              end
            end
          in
          dfs entry;
          let r = match !err with Some e -> Error e | None -> Ok !total in
          Hashtbl.replace memo entry r;
          r
  in
  fun entry -> size ~depth:0 entry

(* ------------------------------------------------------------------ *)
(* The analysis proper.                                                *)
(* ------------------------------------------------------------------ *)

let analyze ?(multi_iter = true) ~iq_size program =
  let cfg = Cfg.build program in
  let ls = Loops.detect cfg in
  let live = Liveness.compute cfg in
  let reaching = Reaching.analyze cfg in
  let values = Valrange.analyze cfg in
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let reach = Cfg.reachable cfg in
  let pos = Array.make n max_int in
  Array.iteri (fun i b -> pos.(b) <- i) rpo;
  let nloops = Array.length ls.Loops.loops in
  (* Trip counts per natural loop, closed by its last back edge. *)
  let trips = Array.make nloops None in
  Array.iteri
    (fun i l ->
      let tail_block =
        List.fold_left
          (fun acc b -> if (Cfg.block cfg b).Cfg.b_last > (Cfg.block cfg acc).Cfg.b_last then b else acc)
          (List.hd l.Loops.l_back_edges) l.Loops.l_back_edges
      in
      let head = (Cfg.block cfg l.Loops.l_header).Cfg.b_first in
      let tail = (Cfg.block cfg tail_block).Cfg.b_last in
      if tail > head then trips.(i) <- trip_count cfg values ~head ~tail)
    ls.Loops.loops;
  let flow = estimate_flow cfg ls trips in
  let csize = callee_size cfg ls in
  let total_insns =
    Array.fold_left ( +. ) 0.
      (Array.mapi (fun b c -> c *. float_of_int (Cfg.n_insns (Cfg.block cfg b))) flow.counts)
  in
  (* Candidate backward transfers, exactly the dynamic detector's set. *)
  let candidates =
    Array.to_list cfg.Cfg.blocks
    |> List.filter_map (fun bl ->
           if not reach.(bl.Cfg.b_id) then None
           else
             let pc = bl.Cfg.b_last in
             let insn = Cfg.last_insn cfg bl in
             match Insn.kind insn with
             | Insn.K_branch | K_jump -> (
                 match Insn.ctrl_target insn ~pc with
                 | Some target when target <= pc -> Some (bl, target, pc)
                 | _ -> None)
             | _ -> None)
  in
  let classify (bl : Cfg.block) head tail =
    let span = ((tail - head) / 4) + 1 in
    if span > iq_size then (Error (Too_large span), 0)
    else begin
      let win = window_insns program ~head ~tail in
      (* Scan the window the way the buffering state machine watches the
         decode stream. *)
      let rec scan fp = function
        | [] -> (Ok (), fp)
        | (pc, insn) :: rest when pc <> tail -> (
            match Insn.kind insn with
            | Insn.K_branch | K_jump -> (
                match Insn.ctrl_target insn ~pc with
                | Some t when t <= pc -> (Error (Inner_transfer pc), fp)
                | _ -> scan fp rest)
            | K_ijump | K_return -> (Error (Indirect pc), fp)
            | K_halt -> (Error (Contains_halt pc), fp)
            | K_call -> (
                match insn with
                | Insn.Jal t -> (
                    match Cfg.block_at cfg (4 * t) with
                    | None -> (Error (Indirect pc), fp)
                    | Some cb -> (
                        match csize cb.Cfg.b_id with
                        | Ok s -> scan (fp + s) rest
                        | Error e -> (Error e, fp)))
                | _ -> (Error (Indirect pc), fp))
            | K_int | K_fp | K_load | K_store | K_nop -> scan fp rest)
        | _ :: rest -> scan fp rest
      in
      let structural, fp = scan span win in
      match structural with
      | Error e -> (Error e, fp)
      | Ok () -> (
          (* Natural-loop agreement: reject irreducible regions and side
             entries rather than mis-detecting them. *)
          match Cfg.block_at cfg head with
          | None -> (Error Irreducible, fp)
          | Some hb ->
              if hb.Cfg.b_first <> head then (Error Side_entry, fp)
              else if not (Dominators.dominates ls.Loops.dom hb.Cfg.b_id bl.Cfg.b_id) then
                (Error Irreducible, fp)
              else (
                match Loops.loop_of_header ls hb.Cfg.b_id with
                | None -> (Error Irreducible, fp)
                | Some l ->
                    let window_blocks =
                      List.filter_map
                        (fun b ->
                          let blk = Cfg.block cfg b in
                          if blk.Cfg.b_first >= head && blk.Cfg.b_last <= tail then Some b
                          else None)
                        (List.init n Fun.id)
                    in
                    let same =
                      List.sort compare l.Loops.l_blocks = List.sort compare window_blocks
                    in
                    if not same then (Error Side_entry, fp)
                    else if fp > iq_size then (Error (Call_overflow fp), fp)
                    else (Ok (), fp)))
    end
  in
  let mk_report (bl, head, tail) =
    let span = ((tail - head) / 4) + 1 in
    let verdict, footprint = classify bl head tail in
    let footprint = max span footprint in
    let hb = Cfg.block_at cfg head in
    let natural =
      match hb with
      | Some h when h.Cfg.b_first = head -> Loops.loop_of_header ls h.Cfg.b_id
      | _ -> None
    in
    let depth, innermost =
      match natural with
      | Some l -> (l.Loops.l_depth, l.Loops.l_children = [])
      | None -> (0, true)
    in
    let trip =
      match natural with
      | Some l ->
          let i = ref None in
          Array.iteri (fun k lk -> if lk == l then i := Some k) ls.Loops.loops;
          Option.bind !i (fun k -> trips.(k))
      | None -> None
    in
    let entries =
      match natural with
      | Some l ->
          let e = flow.header_entries.(l.Loops.l_header) in
          if e > 0. then Some e else None
      | None -> None
    in
    let win = window_insns program ~head ~tail in
    let intra_branches =
      List.length
        (List.filter
           (fun (pc, i) -> pc <> tail && Insn.kind i = Insn.K_branch)
           win)
    in
    let early_exits =
      List.length
        (List.filter
           (fun (pc, i) ->
             pc <> tail
             &&
             match Insn.kind i with
             | Insn.K_branch | K_jump -> (
                 match Insn.ctrl_target i ~pc with
                 | Some t -> t < head || t > tail + 4
                 | None -> false)
             | _ -> false)
           win)
    in
    (* Expected dynamic instructions per iteration: flow-weighted window
       plus direct-callee bodies. *)
    let iter_insns =
      match (natural, entries, trip) with
      | Some l, Some e, Some t when t >= 1 ->
          let body =
            List.fold_left
              (fun acc b ->
                acc +. (flow.counts.(b) *. float_of_int (Cfg.n_insns (Cfg.block cfg b))))
              0. l.Loops.l_blocks
          in
          let callees =
            List.fold_left
              (fun acc b ->
                let blk = Cfg.block cfg b in
                match Cfg.last_insn cfg blk with
                | Insn.Jal tgt -> (
                    match Cfg.block_at cfg (4 * tgt) with
                    | Some cb -> (
                        match csize cb.Cfg.b_id with
                        | Ok s -> acc +. (flow.counts.(b) *. float_of_int s)
                        | Error _ -> acc)
                    | None -> acc)
                | _ -> acc)
              0. l.Loops.l_blocks
          in
          (body +. callees) /. (e *. float_of_int t)
      | _ -> float_of_int footprint
    in
    let unroll =
      if multi_iter then max 1 (int_of_float (float_of_int iq_size /. max 1. iter_insns))
      else 1
    in
    let lrl =
      match hb with Some h -> Liveness.live_in live h.Cfg.b_id | None -> 0L
    in
    let reused_per_program =
      match (verdict, trip, entries) with
      | Ok (), Some t, Some e ->
          let spare = float_of_int (t - 1 - unroll) in
          Some (max 0. ((e *. spare) -. 1.) *. iter_insns)
      | Ok (), _, _ -> None
      | Error _, _, _ -> Some 0.
    in
    let prediction =
      match verdict with
      | Ok () -> (
          match trip with
          | None -> Marginal
          | Some t ->
              let margin = max 2 (unroll / 4) in
              let spare = t - 1 - unroll in
              if footprint >= iq_size - 4 then Marginal
              else if spare >= margin then Promotes
              else if spare <= -margin then Never_promotes
              else Marginal)
      | Error (Indirect _) | Error Side_entry -> Marginal
      | Error _ -> Never_promotes
    in
    let nblt_risk =
      early_exits > 0
      || (match (verdict, trip) with
         | Ok (), Some t -> t - 1 <= unroll
         | Error (Too_large _), _ -> false
         | Error _, _ -> true
         | Ok (), None -> false)
    in
    (* Data facts: the alias analysis is only meaningful on a proper
       natural loop (the window equals the loop body and every entry goes
       through the header); anything else never buffers far enough for a
       Section 2.2.3 store-hits-buffered-load revoke to matter. *)
    let alias_window =
      match verdict with
      | Ok () ->
          Some
            (Alias.window cfg ~reaching ~values ~head ~tail
               ~outside_preds:(outside_preds cfg ~head ~tail)
               ~trip)
      | Error _ -> None
    in
    let no_alias =
      match alias_window with Some w -> Alias.no_alias_claims w | None -> []
    in
    let risks =
      let aliasing =
        match alias_window with
        | Some w ->
            List.map
              (fun (p : Alias.pair) ->
                Aliasing_store { store = p.Alias.p_store; load = p.Alias.p_load })
              (Alias.may_alias w)
        | None -> []
      in
      let data_trip =
        match (verdict, trip) with
        | Ok (), None -> [ Data_dependent_trip ]
        | _ -> []
      in
      aliasing @ data_trip
    in
    let predicted_cause =
      match verdict with
      | Error (Inner_transfer _) | Error (Callee_loops _) -> Some Rv_inner_loop
      | Error (Call_overflow _) -> Some Rv_overflow
      | Ok () when prediction = Never_promotes -> Some Rv_left_loop
      | _ -> None
    in
    {
      head;
      tail;
      span;
      depth;
      innermost;
      verdict;
      trip;
      entries;
      iter_insns;
      unroll;
      prediction;
      intra_branches;
      early_exits;
      nblt_risk;
      lrl;
      reused_insns = reused_per_program;
      risks;
      no_alias;
      predicted_cause;
    }
  in
  let loops =
    List.sort (fun a b -> compare a.tail b.tail) (List.map mk_report candidates)
  in
  let reused_total =
    List.fold_left (fun acc r -> acc +. Option.value ~default:0. r.reused_insns) 0. loops
  in
  let coverage =
    if total_insns > 0. then Some (100. *. reused_total /. total_insns) else None
  in
  let unreachable =
    Array.to_list cfg.Cfg.blocks
    |> List.filter_map (fun b ->
           if reach.(b.Cfg.b_id) then None else Some (b.Cfg.b_first, b.Cfg.b_last))
  in
  {
    iq_size;
    multi_iter;
    loops;
    total_insns = Some total_insns;
    coverage;
    exact_trips = flow.exact;
    irreducible_edges = ls.Loops.irreducible;
    unreachable;
  }

let analyze_config (cfg : Riq_ooo.Config.t) program =
  analyze ~multi_iter:cfg.Riq_ooo.Config.buffer_multiple_iterations
    ~iq_size:cfg.Riq_ooo.Config.iq_entries program

let coverage_of report ~tail =
  match (report.total_insns, List.find_opt (fun r -> r.tail = tail) report.loops) with
  | Some total, Some r when total > 0. ->
      Option.map (fun reused -> 100. *. reused /. total) r.reused_insns
  | _ -> None

(* A hard rejection is one whose offending condition the dynamic core is
   guaranteed to trip over on every path from head to tail: a too-large
   span is measured identically by the detector, and an inner back edge or
   a looping callee is decoded (and revokes buffering) even when the
   branch itself falls through. Call overflow, indirect transfers, side
   entries and irreducibility depend on the path actually executed, so a
   structured program can legitimately promote despite them. The fuzzer's
   generator never hides a hard-reject condition behind a guard, which is
   what makes this classification exact for generated programs. *)
let hard_reject = function
  | Too_large _ | Inner_transfer _ | Callee_loops _ -> true
  | Call_overflow _ | Indirect _ | Contains_halt _ | Side_entry | Irreducible -> false

(* ------------------------------------------------------------------ *)
(* Differential validation of the dataflow facts.                      *)
(* ------------------------------------------------------------------ *)

(* No-alias claims are global facts, so they are checkable against the
   reference interpreter directly: replay the program, record every
   effective address each claimed instruction produces, and test the
   cartesian byte overlap. One contradicted pair is a soundness bug in
   the dataflow stack. Callers (the fuzz oracle, the experiment runner's
   verdict jobs, riq-lint --dynamic) treat the error like any other
   static/dynamic mismatch. *)
let validate_no_alias ?(limit = 5_000_000) program report =
  let claims =
    List.concat_map
      (fun l -> List.map (fun p -> (l, p)) l.no_alias)
      report.loops
  in
  if claims = [] then Ok 0
  else begin
    let watched = Hashtbl.create 16 in
    List.iter
      (fun (_, (p : Alias.pair)) ->
        Hashtbl.replace watched p.Alias.p_store ();
        Hashtbl.replace watched p.Alias.p_load ())
      claims;
    (* pc -> set of observed start addresses *)
    let observed : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
    let record pc addr =
      let tbl =
        match Hashtbl.find_opt observed pc with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 64 in
            Hashtbl.replace observed pc tbl;
            tbl
      in
      Hashtbl.replace tbl addr ()
    in
    let m = Riq_interp.Machine.create program in
    let steps = ref 0 in
    let stopped = ref false in
    while (not !stopped) && !steps <= limit do
      incr steps;
      let pc = Riq_interp.Machine.pc m in
      if Hashtbl.mem watched pc then
        (match Option.bind (Program.insn_at program pc) Alias.mem_operand with
        | Some (base, off) ->
            record pc (Riq_util.Bits.add32 (Riq_interp.Machine.reg m base) off)
        | None -> ());
      if Riq_interp.Machine.step m <> None then stopped := true
    done;
    let addrs pc =
      match Hashtbl.find_opt observed pc with
      | Some tbl -> Hashtbl.fold (fun a () acc -> a :: acc) tbl []
      | None -> []
    in
    let contradiction =
      List.find_map
        (fun (l, (p : Alias.pair)) ->
          let ws = p.Alias.p_store_bytes and wl = p.Alias.p_load_bytes in
          let stores = addrs p.Alias.p_store and loads = addrs p.Alias.p_load in
          List.find_map
            (fun s ->
              List.find_map
                (fun ld ->
                  if s < ld + wl && ld < s + ws then
                    Some
                      (Printf.sprintf
                         "loop %08x..%08x: store %08x touched %08x..%08x and load %08x touched %08x..%08x despite a no-alias claim"
                         l.head l.tail p.Alias.p_store s (s + ws - 1)
                         p.Alias.p_load ld (ld + wl - 1))
                  else None)
                loads)
            stores)
        claims
    in
    match contradiction with
    | Some msg -> Error msg
    | None -> Ok (List.length claims)
  end

(* Verdicts under which a dynamic inner-loop revoke (decode sees a second
   capturable backward transfer while buffering) is statically impossible:

   - [Ok], [Call_overflow], [Side_entry] and [Irreducible] all mean the
     window scan completed, so there is no backward transfer at a
     non-tail window pc and every direct callee is straight-line; decode
     while buffering either stays inside the window (seeing none) or
     leaves it, which fires the left-loop revoke first — even on the
     wrong path.
   - [Too_large] means the detector rejects the span before buffering
     ever starts, so no revoke of any kind can be attributed to the tail.

   The early-stopping scan errors ([Inner_transfer], [Callee_loops],
   [Indirect], [Contains_halt]) leave the rest of the window unscanned,
   so an inner revoke stays possible. *)
let inner_revoke_impossible l =
  match l.verdict with
  | Ok () | Error (Too_large _ | Call_overflow _ | Side_entry | Irreducible) ->
      true
  | Error (Inner_transfer _ | Callee_loops _ | Indirect _ | Contains_halt _) ->
      false

let consistency ?(causes = []) report ~promotions =
  let promos_at tail =
    match List.find_opt (fun (t, _) -> t = tail) promotions with
    | Some (_, n) -> n
    | None -> 0
  in
  let bad =
    List.filter_map
      (fun l ->
        match l.verdict with
        | Error r when hard_reject r && promos_at l.tail > 0 ->
            Some
              (Printf.sprintf "loop %08x..%08x promoted %d times despite static %s"
                 l.head l.tail (promos_at l.tail) (reason_to_string r))
        | _ -> None)
      report.loops
  in
  (* Promotions at a tail the analysis never saw would mean the CFG pass
     missed an executable backward transfer. *)
  let unknown =
    List.filter_map
      (fun (tail, n) ->
        if n > 0 && not (List.exists (fun l -> l.tail = tail) report.loops) then
          Some (Printf.sprintf "loop tail %08x promoted %d times but is unknown to the analysis" tail n)
        else None)
      promotions
  in
  (* A dynamic inner-loop revoke where the scan proved the window clean is
     a soundness bug in either the analysis or the core. *)
  let impossible_causes =
    List.filter_map
      (fun (tail, cc) ->
        match List.find_opt (fun l -> l.tail = tail) report.loops with
        | Some l when cc.rc_inner > 0 && inner_revoke_impossible l ->
            Some
              (Printf.sprintf
                 "loop %08x..%08x took %d inner-loop revokes despite a clean window scan (static verdict %s)"
                 l.head l.tail cc.rc_inner
                 (match l.verdict with
                 | Ok () -> "ok"
                 | Error r -> reason_to_string r))
        | _ -> None)
      causes
  in
  match bad @ unknown @ impossible_causes with
  | [] -> Ok ()
  | msgs -> Error (String.concat "; " msgs)
