open Riq_isa

(** Constant / value-range propagation over a {!Cfg.t}.

    Each integer register is abstracted to an interval: [Bot] (no
    execution reaches this point yet), [Const c], [Range (lo, hi)]
    (inclusive, signed 32-bit views), or [Top]. Constant folding calls
    the {e same} {!Riq_interp.Semantics} functions as the simulators, so
    a folded constant can never disagree with a run; interval arithmetic
    goes to [Top] whenever a bound could leave the 32-bit range, which
    is exactly when the machine would wrap.

    Soundness boundaries, chosen to match what decode-time hardware
    could assume:
    - calls havoc every register (both the return point and the callee
      entry see [Top]), so no interprocedural summary is needed;
    - returns are assumed to follow call discipline (a [jr r31] goes to
      the fallthrough of some call site, which the call edges + havoc
      already over-approximate);
    - any {e unresolved} computed jump ([jr] beyond the [la; jr] idiom)
      or indirect call ([jalr]) could land anywhere, so its presence
      degrades every query in the program to [Top] ({!tainted}). *)

type value = Bot | Const of int | Range of int * int | Top

type t

val analyze : Cfg.t -> t

val tainted : t -> bool
(** The program contains an unresolved indirect transfer; every query
    answers [Top]. *)

val value_at : t -> pc:int -> Reg.t -> value
(** Abstract value of a register just {e before} executing [pc].
    [Top] outside the text segment. *)

val value_into : t -> block:int -> from:int list -> Reg.t -> value
(** Abstract value of a register flowing into [block] along the edges
    from the listed predecessor blocks only — the loop-entry value when
    [from] is a loop head's outside predecessors. With [from = []] the
    value is the boundary fact if [block] is the CFG entry, else [Bot]
    (no such edge). *)

val const : value -> int option
val bounds : value -> (int * int) option
(** [Const c] is [(c, c)]; [Bot]/[Top] are [None]. *)

val join_value : value -> value -> value
val to_string : value -> string
