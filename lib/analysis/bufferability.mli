open Riq_asm

(** Static classification of backward transfers against the paper's
    decode-time bufferability criteria (Sections 2.1-2.3).

    The analysis mirrors what the dynamic core decides while running:

    - the {!Riq_core.Detector} candidate test (backward conditional branch
      or direct jump whose static span fits the issue queue);
    - the revoke conditions of Sections 2.2.2-2.2.3 (an inner loop, a
      procedure that overflows the queue, an indirect transfer, leaving
      the loop while buffering);
    - the promote condition of Section 2.2.1 (multiple-iteration
      buffering while iterations fit), which yields the predicted
      automatic unroll factor;
    - and, from statically estimated trip counts and block execution
      frequencies, the fraction of committed instructions the issue queue
      is expected to supply (predicted reuse coverage).

    Irreducible control flow is rejected, never mis-detected: a backward
    branch participating in a retreating edge whose target does not
    dominate it gets {!constructor-Irreducible}. *)

type reason =
  | Too_large of int (** static span exceeds the issue queue; carries the span *)
  | Inner_transfer of int
      (** another backward branch/jump inside the window (inner loop,
          sibling back edge, or backward exit); carries its pc *)
  | Call_overflow of int
      (** iteration footprint including direct callees exceeds the queue;
          carries the footprint in instructions *)
  | Callee_loops of int (** a direct callee contains a loop; carries the callee entry *)
  | Indirect of int (** [jr]/[jalr] in the window or a callee; carries its pc *)
  | Contains_halt of int
  | Side_entry (** the loop body is entered other than through the header *)
  | Irreducible (** retreating edge whose target does not dominate it *)

type prediction =
  | Promotes (** buffering is expected to reach Code Reuse *)
  | Never_promotes (** detected but expected to revoke or exit early, every time *)
  | Marginal (** too close to a capacity or trip-count boundary to call *)

type loop_report = {
  head : int; (** byte address of the loop's first instruction *)
  tail : int; (** byte address of the backward transfer *)
  span : int; (** static body size in instructions, as the detector measures it *)
  depth : int; (** loop-nest depth (1 = outermost); 0 when no natural loop exists *)
  innermost : bool;
  verdict : (unit, reason) result;
  trip : int option; (** statically derived per-entry iteration count *)
  entries : float option; (** estimated number of times the loop is entered *)
  iter_insns : float; (** expected dynamic instructions per iteration, callees included *)
  unroll : int; (** predicted automatic unroll factor (iterations buffered) *)
  prediction : prediction;
  intra_branches : int; (** conditional branches in the window besides the tail *)
  early_exits : int; (** forward branches leaving the window *)
  nblt_risk : bool; (** expected to register in the non-bufferable loop table *)
  lrl : Int64.t; (** live registers at the loop head (the logical register list) *)
  reused_insns : float option; (** predicted committed instructions supplied by reuse *)
}

type report = {
  iq_size : int;
  multi_iter : bool;
  loops : loop_report list; (** every executable backward transfer, by tail address *)
  total_insns : float option; (** estimated dynamic committed instructions *)
  coverage : float option; (** predicted reuse coverage, percent of committed *)
  exact_trips : bool; (** every trip count involved was statically derived *)
  irreducible_edges : (int * int) list; (** retreating non-back edges (block ids) *)
}

val analyze : ?multi_iter:bool -> iq_size:int -> Program.t -> report
(** [multi_iter] defaults to true (the paper's strategy 2). *)

val analyze_config : Riq_ooo.Config.t -> Program.t -> report
(** Pull [iq_entries] and [buffer_multiple_iterations] from a machine
    configuration. *)

val reason_to_string : reason -> string

val hard_reject : reason -> bool
(** Rejection reasons whose dynamic counterpart can never promote, because
    the offending condition sits on every head-to-tail path and is decoded
    even when not taken: {!constructor-Too_large} (the detector measures
    the same span), {!constructor-Inner_transfer} and
    {!constructor-Callee_loops} (the inner back edge revokes buffering at
    decode). The remaining reasons are advisory for arbitrary control
    flow — e.g. a guarded call can make a statically overflowing loop fit
    dynamically. The differential fuzzer ({!Riq_fuzz}) generates programs
    that never hide a hard condition behind a guard, so for those programs
    a promotion of a hard-rejected loop is a simulator bug. *)

val consistency :
  report -> promotions:(int * int) list -> (unit, string) result
(** [consistency report ~promotions] checks the dynamic per-loop promotion
    counts (pairs of loop-tail pc and promotion count, from
    {!Riq_core.Processor.loop_decisions}) against the static verdicts:
    a promotion of a {!hard_reject}-ed loop, or of a tail the analysis
    never saw, is an inconsistency. *)

val coverage_of : report -> tail:int -> float option
(** Predicted coverage contribution (percent of all committed
    instructions) of the loop ending at [tail]. *)
