open Riq_asm

(** Static classification of backward transfers against the paper's
    decode-time bufferability criteria (Sections 2.1-2.3).

    The analysis mirrors what the dynamic core decides while running:

    - the {!Riq_core.Detector} candidate test (backward conditional branch
      or direct jump whose static span fits the issue queue);
    - the revoke conditions of Sections 2.2.2-2.2.3 (an inner loop, a
      procedure that overflows the queue, an indirect transfer, leaving
      the loop while buffering);
    - the promote condition of Section 2.2.1 (multiple-iteration
      buffering while iterations fit), which yields the predicted
      automatic unroll factor;
    - and, from statically estimated trip counts and block execution
      frequencies, the fraction of committed instructions the issue queue
      is expected to supply (predicted reuse coverage).

    Irreducible control flow is rejected, never mis-detected: a backward
    branch participating in a retreating edge whose target does not
    dominate it gets {!constructor-Irreducible}. *)

type reason =
  | Too_large of int (** static span exceeds the issue queue; carries the span *)
  | Inner_transfer of int
      (** another backward branch/jump inside the window (inner loop,
          sibling back edge, or backward exit); carries its pc *)
  | Call_overflow of int
      (** iteration footprint including direct callees exceeds the queue;
          carries the footprint in instructions *)
  | Callee_loops of int (** a direct callee contains a loop; carries the callee entry *)
  | Indirect of int (** [jr]/[jalr] in the window or a callee; carries its pc *)
  | Contains_halt of int
  | Side_entry (** the loop body is entered other than through the header *)
  | Irreducible (** retreating edge whose target does not dominate it *)

type prediction =
  | Promotes (** buffering is expected to reach Code Reuse *)
  | Never_promotes (** detected but expected to revoke or exit early, every time *)
  | Marginal (** too close to a capacity or trip-count boundary to call *)

(** Data-fact risks from the {!Dataflow}-based analyses. These do not
    change the control-flow verdict; they flag conditions the paper's
    hardware would react to that the shape analysis alone cannot see. *)
type risk =
  | Aliasing_store of { store : int; load : int }
      (** a store in the window may hit a buffered load's line — the
          Section 2.2.3 revoke condition; pcs of the pair *)
  | Data_dependent_trip
      (** the trip count is not statically derivable, so the promotion
          prediction degrades to {!constructor-Marginal} *)

(** Why a buffering attempt is revoked, statically predicted here and
    dynamically counted per loop by {!Riq_core.Processor}. *)
type revoke_cause =
  | Rv_inner_loop (** decode saw a second capturable backward transfer *)
  | Rv_left_loop (** decode left the window before promotion *)
  | Rv_overflow (** the issue queue filled while buffering *)
  | Rv_mispredict (** a mispredicted branch inside the window recovered *)

(** Dynamic revoke-cause counts for one loop tail, as reported by the
    core (plain integers so {!Riq_core} need not depend on this
    library). *)
type cause_counts = {
  rc_inner : int;
  rc_left : int;
  rc_overflow : int;
  rc_mispredict : int;
}

type loop_report = {
  head : int; (** byte address of the loop's first instruction *)
  tail : int; (** byte address of the backward transfer *)
  span : int; (** static body size in instructions, as the detector measures it *)
  depth : int; (** loop-nest depth (1 = outermost); 0 when no natural loop exists *)
  innermost : bool;
  verdict : (unit, reason) result;
  trip : int option; (** statically derived per-entry iteration count *)
  entries : float option; (** estimated number of times the loop is entered *)
  iter_insns : float; (** expected dynamic instructions per iteration, callees included *)
  unroll : int; (** predicted automatic unroll factor (iterations buffered) *)
  prediction : prediction;
  intra_branches : int; (** conditional branches in the window besides the tail *)
  early_exits : int; (** forward branches leaving the window *)
  nblt_risk : bool; (** expected to register in the non-bufferable loop table *)
  lrl : Int64.t; (** live registers at the loop head (the logical register list) *)
  reused_insns : float option; (** predicted committed instructions supplied by reuse *)
  risks : risk list; (** data-fact risks; empty for control-flow-rejected loops *)
  no_alias : Alias.pair list;
      (** globally-valid no-alias claims for store/load pairs in the
          window — checkable against every address the program touches,
          which is exactly what the fuzz oracle does *)
  predicted_cause : revoke_cause option;
      (** the revoke cause the static verdict implies, when it implies
          one: inner-loop for {!constructor-Inner_transfer} /
          {!constructor-Callee_loops}, overflow for
          {!constructor-Call_overflow}, left-loop for a clean window
          that can never reach promotion *)
}

type report = {
  iq_size : int;
  multi_iter : bool;
  loops : loop_report list; (** every executable backward transfer, by tail address *)
  total_insns : float option; (** estimated dynamic committed instructions *)
  coverage : float option; (** predicted reuse coverage, percent of committed *)
  exact_trips : bool; (** every trip count involved was statically derived *)
  irreducible_edges : (int * int) list; (** retreating non-back edges (block ids) *)
  unreachable : (int * int) list;
      (** byte-address ranges [(first, last)] of statically unreachable
          blocks (meaningful now that [la; jr] targets resolve) *)
}

val analyze : ?multi_iter:bool -> iq_size:int -> Program.t -> report
(** [multi_iter] defaults to true (the paper's strategy 2). *)

val analyze_config : Riq_ooo.Config.t -> Program.t -> report
(** Pull [iq_entries] and [buffer_multiple_iterations] from a machine
    configuration. *)

val reason_to_string : reason -> string
val risk_to_string : risk -> string
val cause_to_string : revoke_cause -> string

val hard_reject : reason -> bool
(** Rejection reasons whose dynamic counterpart can never promote, because
    the offending condition sits on every head-to-tail path and is decoded
    even when not taken: {!constructor-Too_large} (the detector measures
    the same span), {!constructor-Inner_transfer} and
    {!constructor-Callee_loops} (the inner back edge revokes buffering at
    decode). The remaining reasons are advisory for arbitrary control
    flow — e.g. a guarded call can make a statically overflowing loop fit
    dynamically. The differential fuzzer ({!Riq_fuzz}) generates programs
    that never hide a hard condition behind a guard, so for those programs
    a promotion of a hard-rejected loop is a simulator bug. *)

val consistency :
  ?causes:(int * cause_counts) list ->
  report ->
  promotions:(int * int) list ->
  (unit, string) result
(** [consistency report ~promotions] checks the dynamic per-loop promotion
    counts (pairs of loop-tail pc and promotion count, from
    {!Riq_core.Processor.loop_decisions}) against the static verdicts:
    a promotion of a {!hard_reject}-ed loop, or of a tail the analysis
    never saw, is an inconsistency. [causes] adds the per-tail dynamic
    revoke-cause counts; an inner-loop revoke at a tail whose window scan
    completed (verdict [Ok], [Call_overflow], [Side_entry],
    [Irreducible] — or [Too_large], which never buffers) is one too,
    because a completed scan proves no second backward transfer is
    decodable while buffering. *)

val validate_no_alias :
  ?limit:int -> Program.t -> report -> (int, string) result
(** [validate_no_alias program report] replays [program] on the reference
    interpreter (at most [limit] steps, default 5 million) and checks
    every {!field-no_alias} claim against the effective addresses actually
    produced: a store byte range intersecting a load byte range under a
    [No_alias] verdict is a soundness bug in the dataflow stack. Returns
    the number of claims validated. The fuzz oracle and the experiment
    runner's verdict jobs both call this, so the analyses are
    differentially tested on every corpus program. *)

val coverage_of : report -> tail:int -> float option
(** Predicted coverage contribution (percent of all committed
    instructions) of the loop ending at [tail]. *)
