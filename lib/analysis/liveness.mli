open Riq_isa

(** Backward logical-register liveness over a {!Cfg.t}.

    Computes, for every basic block, the set of logical registers live on
    entry and exit, and exposes a per-instruction query. This is the
    static derivation of the paper's per-entry {e logical register list}:
    the registers live around a buffered loop body are exactly the names
    the modified issue queue must keep renaming on every reused pass.

    Register sets cover the full flat namespace of {!Reg} (64 names) as
    [Int64] bitmasks. Calls are handled through the CFG's call edges (the
    callee's live-in flows into the call site alongside the return path),
    so no interprocedural summary is needed. Blocks ending in indirect
    transfers ([jr]/[jalr]) have no static successors; [jr r31] is a
    return, whose conservative live-out is {!return_live_out}. *)

type t

val compute : Cfg.t -> t

val live_in : t -> int -> Int64.t
(** Live set at entry of a block id. *)

val live_out : t -> int -> Int64.t

val live_before : t -> pc:int -> Int64.t
(** Live set immediately before the instruction at [pc]. Raises
    [Invalid_argument] outside the text segment. *)

val return_live_out : Int64.t
(** Registers conservatively assumed live at a return: the caller-visible
    scalar pools ([r16]-[r28], [f16]-[f31]), the stack pointer and the
    link register. *)

val mem : Int64.t -> Reg.t -> bool
val to_list : Int64.t -> Reg.t list
val cardinal : Int64.t -> int
val pp_set : Format.formatter -> Int64.t -> unit
