(** Generic worklist dataflow framework over {!Cfg.t}.

    A client supplies a join-semilattice of facts ({!LATTICE}) and a
    per-block transfer function; {!Make.solve} iterates to the least
    fixpoint with a worklist seeded in reverse postorder. Both directions
    are supported: a {!Forward} problem propagates facts along CFG edges
    from the entry block, a {!Backward} problem against them from the
    exit blocks (implemented as a forward solve of the {!reverse}d
    graph, which is what the direction-symmetry property test pins down).

    The solver checks its own answer: after the worklist drains it makes
    one more full pass and raises {!Unstable} if any fact still moves (a
    broken [equal] or a non-deterministic transfer), and it raises
    {!Non_monotone} as soon as a recomputed block output loses
    information relative to the previous visit — the observable symptom
    of a non-monotone transfer function, which would make the "fixpoint"
    an artifact of visit order.

    Lattices of unbounded height (e.g. integer intervals) terminate via
    {!LATTICE.widen}: once a node's input has been recomputed
    [widen_after] times, subsequent joins at that node go through [widen]
    instead, which must force ascent to a finite ceiling. *)

type direction = Forward | Backward

(** The CFG stripped to what the solver needs. Tests build these by hand
    (or {!reverse} one) to pin solver properties down independently of
    {!Cfg.build}. *)
type graph = {
  g_nodes : int;
  g_entry : int;  (** boundary node for {!Forward}; [-1] for none *)
  g_succs : int list array;
  g_preds : int list array;
  g_order : int array;  (** iteration-order hint, typically reverse postorder *)
}

val of_cfg : Cfg.t -> graph

val reverse : graph -> graph
(** Swap successors and predecessors (and clear [g_entry]: the boundary
    of a reversed problem is its no-predecessor nodes). [g_order] is
    reversed so the hint stays favourable. *)

module type LATTICE = sig
  type fact

  val name : string
  val bottom : fact
  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact

  val widen : fact -> fact -> fact
  (** [widen old new_] replaces [join] at a node visited more than
      [widen_after] times. Must satisfy [leq new_ (widen old new_)] and
      reach a fixed ceiling in finitely many steps. Finite lattices can
      use [join]. *)
end

exception Non_monotone of { lattice : string; node : int }
exception Unstable of { lattice : string; node : int }

module Make (L : LATTICE) : sig
  type result = {
    input : L.fact array;
        (** per node: fact at block entry ({!Forward}) or block exit
            ({!Backward}) *)
    output : L.fact array;  (** [transfer node input.(node)] *)
    passes : int;  (** node recomputations until the fixpoint *)
  }

  val solve :
    ?direction:direction ->
    ?boundary:L.fact ->
    ?widen_after:int ->
    transfer:(int -> L.fact -> L.fact) ->
    graph ->
    result
  (** [transfer] maps a node id and its input fact to its output fact;
      for {!Backward} problems the "input" is the fact at block exit.
      [boundary] (default {!L.bottom}) is joined into the entry node's
      input ({!Forward}: [g_entry] plus any no-predecessor node;
      {!Backward}: any no-successor node). [widen_after] defaults to 16.

      @raise Non_monotone see above.
      @raise Unstable see above. *)

  val solve_cfg :
    ?direction:direction ->
    ?boundary:L.fact ->
    ?widen_after:int ->
    transfer:(int -> L.fact -> L.fact) ->
    Cfg.t ->
    result

  val stable :
    ?direction:direction ->
    ?boundary:L.fact ->
    transfer:(int -> L.fact -> L.fact) ->
    graph ->
    result ->
    bool
  (** Re-derive every node's input from its neighbours' outputs and
      re-apply [transfer]: [true] iff nothing changes. [solve] already
      asserts this, so it mainly serves the property tests (re-solving
      changes nothing). *)
end
