type direction = Forward | Backward

type graph = {
  g_nodes : int;
  g_entry : int;
  g_succs : int list array;
  g_preds : int list array;
  g_order : int array;
}

let of_cfg (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.blocks in
  {
    g_nodes = n;
    g_entry = (if n = 0 then -1 else cfg.Cfg.entry);
    g_succs = Array.map (fun b -> b.Cfg.b_succs) cfg.Cfg.blocks;
    g_preds = Array.map (fun b -> b.Cfg.b_preds) cfg.Cfg.blocks;
    g_order = Cfg.reverse_postorder cfg;
  }

let reverse g =
  let order = Array.copy g.g_order in
  let n = Array.length order in
  for i = 0 to (n / 2) - 1 do
    let t = order.(i) in
    order.(i) <- order.(n - 1 - i);
    order.(n - 1 - i) <- t
  done;
  {
    g_nodes = g.g_nodes;
    g_entry = -1;
    g_succs = Array.map (fun l -> l) g.g_preds;
    g_preds = Array.map (fun l -> l) g.g_succs;
    g_order = order;
  }

module type LATTICE = sig
  type fact

  val name : string
  val bottom : fact
  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
  val widen : fact -> fact -> fact
end

exception Non_monotone of { lattice : string; node : int }
exception Unstable of { lattice : string; node : int }

module Make (L : LATTICE) = struct
  type result = { input : L.fact array; output : L.fact array; passes : int }

  let leq a b = L.equal (L.join a b) b

  (* Boundary nodes receive the boundary fact: the designated entry plus
     every node with no incoming edge (in the solving direction), so
     unreachable islands still get a defined, conservative input. *)
  let is_boundary g node = node = g.g_entry || g.g_preds.(node) = []

  let solve_graph ?(boundary = L.bottom) ?(widen_after = 16) ~transfer g =
    let n = g.g_nodes in
    let input = Array.make n L.bottom in
    let output = Array.make n L.bottom in
    let visits = Array.make n 0 in
    let passes = ref 0 in
    if n > 0 then begin
      let in_list = Array.make n false in
      let queue = Queue.create () in
      let enqueue node =
        if not in_list.(node) then begin
          in_list.(node) <- true;
          Queue.push node queue
        end
      in
      let order = if Array.length g.g_order = n then g.g_order else Array.init n Fun.id in
      Array.iter enqueue order;
      for node = 0 to n - 1 do
        enqueue node
      done;
      while not (Queue.is_empty queue) do
        let node = Queue.pop queue in
        in_list.(node) <- false;
        incr passes;
        visits.(node) <- visits.(node) + 1;
        let from_preds =
          List.fold_left
            (fun acc p -> L.join acc output.(p))
            L.bottom g.g_preds.(node)
        in
        let from_preds =
          if is_boundary g node then L.join boundary from_preds else from_preds
        in
        let inp =
          if visits.(node) > widen_after then L.widen input.(node) from_preds
          else L.join input.(node) from_preds
        in
        let out = transfer node inp in
        if not (leq output.(node) out) then
          raise (Non_monotone { lattice = L.name; node });
        if not (L.equal inp input.(node)) || not (L.equal out output.(node))
        then begin
          input.(node) <- inp;
          output.(node) <- out;
          List.iter enqueue g.g_succs.(node)
        end
      done;
      (* Fixpoint self-check: one more full sweep must change nothing. *)
      for node = 0 to n - 1 do
        let from_preds =
          List.fold_left
            (fun acc p -> L.join acc output.(p))
            L.bottom g.g_preds.(node)
        in
        let from_preds =
          if is_boundary g node then L.join boundary from_preds else from_preds
        in
        if not (leq from_preds input.(node)) then
          raise (Unstable { lattice = L.name; node });
        if not (L.equal (transfer node input.(node)) output.(node)) then
          raise (Unstable { lattice = L.name; node })
      done
    end;
    { input; output; passes = !passes }

  let solve ?(direction = Forward) ?boundary ?widen_after ~transfer g =
    let g = match direction with Forward -> g | Backward -> reverse g in
    solve_graph ?boundary ?widen_after ~transfer g

  let solve_cfg ?direction ?boundary ?widen_after ~transfer cfg =
    solve ?direction ?boundary ?widen_after ~transfer (of_cfg cfg)

  let stable ?(direction = Forward) ?(boundary = L.bottom) ~transfer g r =
    let g = match direction with Forward -> g | Backward -> reverse g in
    let ok = ref (Array.length r.input = g.g_nodes) in
    if !ok then
      for node = 0 to g.g_nodes - 1 do
        let from_preds =
          List.fold_left
            (fun acc p -> L.join acc r.output.(p))
            L.bottom g.g_preds.(node)
        in
        let from_preds =
          if is_boundary g node then L.join boundary from_preds else from_preds
        in
        if not (leq from_preds r.input.(node)) then ok := false;
        if not (L.equal (transfer node r.input.(node)) r.output.(node)) then
          ok := false
      done;
    !ok
end
