(** Natural-loop detection on a {!Cfg.t}.

    A back edge is an edge [t -> h] whose target [h] dominates its source
    [t]; the natural loop of the edge is [h] plus every block that reaches
    [t] without passing through [h]. Loops sharing a header are merged
    (they are one loop with several back edges to the paper's detector,
    which keys loops by their ending instruction).

    Retreating edges whose target does {e not} dominate the source signal
    an irreducible region (e.g. a jump into the middle of a loop). They are
    reported in {!field-irreducible} and deliberately produce {e no} loop:
    the bufferability pass rejects the corresponding backward branches
    instead of mis-classifying them as capturable loops. *)

type loop = {
  l_header : int; (** block id *)
  l_back_edges : int list; (** source blocks of the back edges *)
  l_blocks : int list; (** member block ids, sorted, header included *)
  l_depth : int; (** nesting depth, 1 = outermost *)
  l_parent : int option; (** index of the enclosing loop in {!field-loops} *)
  l_children : int list; (** indices of directly nested loops *)
}

type t = {
  cfg : Cfg.t;
  dom : Dominators.t;
  loops : loop array; (** sorted outermost-first (by depth, then header) *)
  irreducible : (int * int) list; (** retreating non-back edges (src, dst) *)
}

val detect : Cfg.t -> t

val loop_of_header : t -> int -> loop option

val innermost : t -> loop -> bool

val containing : t -> int -> int list
(** Indices of every loop containing the given block, outermost first. *)

val pp : Format.formatter -> t -> unit
