open Riq_isa

type t = { cfg : Cfg.t; l_in : Int64.t array; l_out : Int64.t array }

let bit r = Int64.shift_left 1L r
let mem set r = Int64.logand set (bit r) <> 0L
let add set r = Int64.logor set (bit r)

let to_list set =
  let rec go r acc = if r < 0 then acc else go (r - 1) (if mem set r then r :: acc else acc) in
  go (Reg.count - 1) []

let cardinal set =
  let rec go x n = if x = 0L then n else go (Int64.logand x (Int64.sub x 1L)) (n + 1) in
  go set 0

let pp_set ppf set =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map Reg.to_string (to_list set)))

(* Conservative live-out at a return: scalar pools, sp, ra. The codegen
   conventions (see Codegen's docs) keep long-lived values in r16-r28 and
   f16-f31; everything below is expression-temporary. *)
let return_live_out =
  let s = ref 0L in
  for r = 16 to 28 do
    s := add !s (Reg.r r)
  done;
  for f = 16 to 31 do
    s := add !s (Reg.f f)
  done;
  s := add !s Reg.sp;
  s := add !s Reg.ra;
  !s

(* use/def transfer of one instruction. [r0] is excluded from [sources]
   already and never a dest. *)
let gen insn = List.fold_left add 0L (Insn.sources insn)

let kill insn = match Insn.dest insn with Some d -> bit d | None -> 0L

let transfer_block cfg b out =
  (* Backward over the block's instructions. *)
  let is_ = Cfg.insns cfg b in
  List.fold_left
    (fun live (_, insn) -> Int64.logor (gen insn) (Int64.logand live (Int64.lognot (kill insn))))
    out (List.rev is_)

let compute (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let l_in = Array.make n 0L and l_out = Array.make n 0L in
  let rpo = Cfg.reverse_postorder cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Postorder (reverse of RPO) converges fastest for backward flow. *)
    for i = Array.length rpo - 1 downto 0 do
      let b = rpo.(i) in
      let blk = Cfg.block cfg b in
      let out =
        match blk.Cfg.b_succs with
        | [] -> if blk.Cfg.b_indirect then return_live_out else 0L
        | succs -> List.fold_left (fun acc s -> Int64.logor acc l_in.(s)) 0L succs
      in
      let inn = transfer_block cfg blk out in
      if out <> l_out.(b) || inn <> l_in.(b) then begin
        l_out.(b) <- out;
        l_in.(b) <- inn;
        changed := true
      end
    done
  done;
  { cfg; l_in; l_out }

let live_in t b = t.l_in.(b)
let live_out t b = t.l_out.(b)

let live_before t ~pc =
  match Cfg.block_at t.cfg pc with
  | None -> invalid_arg "Liveness.live_before: pc outside the text segment"
  | Some b ->
      let is_ = Cfg.insns t.cfg b in
      List.fold_left
        (fun live (ipc, insn) ->
          if ipc >= pc then
            Int64.logor (gen insn) (Int64.logand live (Int64.lognot (kill insn)))
          else live)
        t.l_out.(b.Cfg.b_id) (List.rev is_)
