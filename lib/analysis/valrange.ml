open Riq_util
open Riq_isa
open Riq_interp

type value = Bot | Const of int | Range of int * int | Top

let min_i32 = -0x8000_0000
let max_i32 = 0x7fff_ffff
let norm lo hi = if lo = hi then Const lo else Range (lo, hi)

let bounds = function
  | Const c -> Some (c, c)
  | Range (lo, hi) -> Some (lo, hi)
  | Bot | Top -> None

let const = function Const c -> Some c | _ -> None

let join_value a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Top, _ | _, Top -> Top
  | _ -> (
      match (bounds a, bounds b) with
      | Some (l1, h1), Some (l2, h2) -> norm (min l1 l2) (max h1 h2)
      | _ -> Top)

let leq_value a b =
  match (a, b) with
  | Bot, _ | _, Top -> true
  | _, Bot | Top, _ -> false
  | _ -> (
      match (bounds a, bounds b) with
      | Some (l1, h1), Some (l2, h2) -> l2 <= l1 && h1 <= h2
      | _ -> false)

let widen_value old v = if leq_value v old then old else Top

let to_string = function
  | Bot -> "bot"
  | Top -> "top"
  | Const c -> string_of_int c
  | Range (lo, hi) -> Printf.sprintf "[%d..%d]" lo hi

(* ---- the fact: one value per logical register ---- *)

module L = struct
  type fact = value array

  let name = "value-range"
  let bottom = [||] (* distinguished: every register Bot *)
  let expand f = if f = [||] then Array.make Reg.count Bot else f
  let equal a b = a == b || (a <> [||] && b <> [||] && Array.for_all2 ( = ) a b)

  let join a b =
    if a = [||] then b
    else if b = [||] then a
    else Array.init Reg.count (fun r -> join_value a.(r) b.(r))

  let widen a b =
    if a = [||] then b
    else if b = [||] then a
    else Array.init Reg.count (fun r -> widen_value a.(r) b.(r))
end

module Solver = Dataflow.Make (L)

(* ---- per-instruction abstract step ---- *)

let in32 lo hi = lo >= min_i32 && hi <= max_i32

let add_v a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> Const (Bits.add32 x y)
  | _ -> (
      match (bounds a, bounds b) with
      | Some (l1, h1), Some (l2, h2) when in32 (l1 + l2) (h1 + h2) ->
          norm (l1 + l2) (h1 + h2)
      | _ -> Top)

let sub_v a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> Const (Bits.sub32 x y)
  | _ -> (
      match (bounds a, bounds b) with
      | Some (l1, h1), Some (l2, h2) when in32 (l1 - h2) (h1 - l2) ->
          norm (l1 - h2) (h1 - l2)
      | _ -> Top)

let alu_v op a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> Const (Semantics.alu op x y)
  | _ -> (
      match op with
      | Insn.Add -> add_v a b
      | Sub -> sub_v a b
      | Slt -> (
          (* signed compare decided by disjoint intervals *)
          match (bounds a, bounds b) with
          | Some (_, h1), Some (l2, _) when h1 < l2 -> Const 1
          | Some (l1, _), Some (_, h2) when l1 >= h2 -> Const 0
          | _ -> Range (0, 1))
      | Sltu -> Range (0, 1)
      | And -> (
          match (bounds a, bounds b) with
          | Some (l1, h1), Some (l2, h2) when l1 >= 0 && l2 >= 0 ->
              norm 0 (min h1 h2)
          | _ -> Top)
      | Or | Xor | Nor -> Top)

let shift_v op v sh =
  match v with
  | Bot -> Bot
  | Const x -> Const (Semantics.shift op x sh)
  | _ -> (
      let sh = sh land 31 in
      match (op, bounds v) with
      | Insn.Sll, Some (lo, hi)
        when lo >= 0 && in32 (lo lsl sh) (hi lsl sh) ->
          norm (lo lsl sh) (hi lsl sh)
      | Insn.Sra, Some (lo, hi) -> norm (lo asr sh) (hi asr sh)
      | Insn.Srl, Some (lo, hi) when lo >= 0 -> norm (lo asr sh) (hi asr sh)
      | _ -> Top)

let load_v insn =
  match insn with
  | Insn.Lb _ -> Range (-128, 127)
  | Lbu _ -> Range (0, 255)
  | Lh _ -> Range (-32768, 32767)
  | Lhu _ -> Range (0, 65535)
  | _ -> Top

(* [fact] is a fresh (expanded) array the caller owns; mutated in place. *)
let step fact insn =
  let get r = if r = Reg.zero then Const 0 else fact.(r) in
  let set r v = if r <> Reg.zero then fact.(r) <- v in
  let havoc () =
    for r = 1 to Reg.count - 1 do
      fact.(r) <- Top
    done
  in
  match insn with
  | Insn.Alu (op, rd, rs, rt) -> set rd (alu_v op (get rs) (get rt))
  | Alui (op, rt, rs, imm) ->
      set rt (alu_v op (get rs) (Const (Semantics.alui_imm op imm)))
  | Shift (op, rd, rt, sh) -> set rd (shift_v op (get rt) sh)
  | Shiftv (_, rd, _, _) -> set rd Top
  | Lui (rt, imm) -> set rt (Const (Bits.of_i32 (imm lsl 16)))
  | Mul (rd, rs, rt) -> (
      match (get rs, get rt) with
      | Bot, _ | _, Bot -> set rd Bot
      | Const x, Const y -> set rd (Const (Semantics.mul x y))
      | _ -> set rd Top)
  | Div (rd, rs, rt) -> (
      match (get rs, get rt) with
      | Bot, _ | _, Bot -> set rd Bot
      | Const x, Const y -> set rd (Const (Semantics.div x y))
      | _ -> set rd Top)
  | Fcmp (_, rd, _, _) -> set rd (Range (0, 1))
  | Cvtws (rd, _) -> set rd Top
  | Fpu (_, fd, _, _) -> set fd Top
  | Cvtsw (fd, _) -> set fd Top
  | Lwf (ft, _, _) -> set ft Top
  | (Lw (rt, _, _) | Lb (rt, _, _) | Lbu (rt, _, _) | Lh (rt, _, _) | Lhu (rt, _, _)) as l ->
      set rt (load_v l)
  | Jal _ | Jalr _ -> havoc ()
  | Sw _ | Sb _ | Sh _ | Swf _ | Br _ | J _ | Jr _ | Nop | Halt -> ()

(* ---- analysis ---- *)

type t = {
  cfg : Cfg.t;
  tainted : bool;
  boundary : value array;
  input : value array array; (* block id -> fact at block entry *)
  output : value array array; (* block id -> fact at block exit *)
}

let machine_entry_fact () =
  (* Both simulators zero the integer file; the harness may point sp at a
     stack and fp registers hold floats, so those stay unknown. *)
  Array.init Reg.count (fun r ->
      if r = Reg.zero then Const 0
      else if r = Reg.sp || Reg.is_fp r then Top
      else Const 0)

let has_unresolved_indirect cfg =
  Array.exists
    (fun b ->
      match Cfg.last_insn cfg b with
      | Insn.Jalr _ -> true
      | last -> b.Cfg.b_indirect && Insn.kind last = Insn.K_ijump)
    cfg.Cfg.blocks

let analyze cfg =
  let tainted = has_unresolved_indirect cfg in
  let boundary = machine_entry_fact () in
  let transfer node fact =
    let fact = Array.copy (L.expand fact) in
    List.iter (fun (_, insn) -> step fact insn) (Cfg.insns cfg cfg.Cfg.blocks.(node));
    fact
  in
  let r = Solver.solve_cfg ~boundary ~transfer cfg in
  {
    cfg;
    tainted;
    boundary;
    input = Array.map L.expand r.Solver.input;
    output = Array.map L.expand r.Solver.output;
  }

let tainted t = t.tainted

let value_at t ~pc reg =
  if t.tainted then Top
  else if reg = Reg.zero then Const 0
  else
    match Cfg.block_at t.cfg pc with
    | None -> Top
    | Some b ->
        let fact = Array.copy t.input.(b.Cfg.b_id) in
        List.iter
          (fun (p, insn) -> if p < pc then step fact insn)
          (Cfg.insns t.cfg b);
        fact.(reg)

let value_into t ~block ~from reg =
  if t.tainted then Top
  else if reg = Reg.zero then Const 0
  else
    let init = if block = t.cfg.Cfg.entry then t.boundary.(reg) else Bot in
    List.fold_left (fun acc p -> join_value acc t.output.(p).(reg)) init from
