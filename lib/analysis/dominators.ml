type t = { idom : int array; depth : int array }

let compute (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let reach = Cfg.reachable cfg in
  (* Position of each block in reverse postorder, for the intersection
     walk. Unreachable blocks keep position max_int and are skipped. *)
  let pos = Array.make n max_int in
  Array.iteri (fun i b -> if reach.(b) then pos.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  let entry = cfg.Cfg.entry in
  idom.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while pos.(!a) > pos.(!b) do
        a := idom.(!a)
      done;
      while pos.(!b) > pos.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if reach.(b) && b <> entry then begin
          let preds =
            List.filter (fun p -> reach.(p) && idom.(p) >= 0) (Cfg.block cfg b).Cfg.b_preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let depth = Array.make n (-1) in
  depth.(entry) <- 0;
  (* Blocks in RPO see their idom first, so one pass suffices. *)
  Array.iter
    (fun b ->
      if reach.(b) && b <> entry && idom.(b) >= 0 then depth.(b) <- depth.(idom.(b)) + 1)
    rpo;
  { idom; depth }

let idom t b =
  if t.idom.(b) < 0 || t.idom.(b) = b then None else Some t.idom.(b)

let dominates t a b =
  if t.depth.(b) < 0 then a = b
  else
    let rec walk x = x = a || (t.idom.(x) <> x && walk t.idom.(x)) in
    walk b

let dom_depth t b = t.depth.(b)
