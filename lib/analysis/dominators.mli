(** Dominator computation over a {!Cfg.t}.

    Iterative dataflow on the reverse-postorder worklist (Cooper, Harvey,
    Kennedy, "A Simple, Fast Dominance Algorithm"): converges in a handful
    of passes on reducible graphs and is robust on irreducible ones, which
    the loop detector then rejects explicitly. Unreachable blocks have no
    dominator information ({!idom} returns [None]; {!dominates} is false
    except on the block itself). *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block id; [None] for the entry block and for
    unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does block [a] dominate block [b]? Reflexive. *)

val dom_depth : t -> int -> int
(** Length of the dominator chain from the entry (entry = 0); [-1] for
    unreachable blocks. *)
