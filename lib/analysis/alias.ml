open Riq_isa

type verdict = No_alias | No_alias_iter | May_alias

type pair = {
  p_store : int;
  p_load : int;
  p_store_bytes : int;
  p_load_bytes : int;
  p_verdict : verdict;
}

type window = { w_stores : int list; w_loads : int list; w_pairs : pair list }

let verdict_to_string = function
  | No_alias -> "no-alias"
  | No_alias_iter -> "no-alias-per-iteration"
  | May_alias -> "may-alias"

(* Internal address classes; see the .mli for their guarantees. *)
type addr =
  | Abs of int * int (* concrete inclusive interval of start addresses *)
  | Sym of Reg.t * int (* loop-invariant base + constant offset *)
  | Ind of Reg.t * int * int (* induction base, step, constant offset *)
  | Unknown

let min_i32 = -0x8000_0000
let max_i32 = 0x7fff_ffff
let in32 lo hi = lo >= min_i32 && hi <= max_i32

let mem_operand = function
  | Insn.Lw (_, b, o)
  | Lb (_, b, o)
  | Lbu (_, b, o)
  | Lh (_, b, o)
  | Lhu (_, b, o)
  | Sw (_, b, o)
  | Sb (_, b, o)
  | Sh (_, b, o)
  | Lwf (_, b, o)
  | Swf (_, b, o) ->
      Some (b, o)
  | _ -> None

let window_insns cfg ~head ~tail =
  Array.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc (pc, insn) ->
          if pc >= head && pc <= tail then (pc, insn) :: acc else acc)
        acc (Cfg.insns cfg b))
    [] cfg.Cfg.blocks
  |> List.sort compare

(* The unique in-window reaching definition of [base] at [pc], when it is
   the canonical induction update [base := base + step]. *)
let induction_step insns reaching ~head ~tail ~pc base =
  let in_window =
    List.filter
      (fun d -> d >= head && d <= tail)
      (Reaching.defs_of reaching ~pc base)
  in
  match in_window with
  | [ d ] -> (
      match List.assoc_opt d insns with
      | Some (Insn.Alui (Insn.Add, rt, rs, step)) when rt = base && rs = base ->
          Some step
      | _ -> None)
  | _ -> None

let classify cfg insns ~reaching ~values ~head ~tail ~outside_preds ~trip ~pc
    base off =
  ignore cfg;
  match Valrange.bounds (Valrange.value_at values ~pc base) with
  | Some (lo, hi) when in32 (lo + off) (hi + off) -> Abs (lo + off, hi + off)
  | Some _ -> Unknown
  | None -> (
      match induction_step insns reaching ~head ~tail ~pc base with
      | Some step -> (
          let head_block =
            match Cfg.block_at cfg head with
            | Some b -> b.Cfg.b_id
            | None -> -1
          in
          let entry =
            if head_block < 0 then Valrange.Top
            else
              Valrange.value_into values ~block:head_block ~from:outside_preds
                base
          in
          match (Valrange.const entry, trip) with
          | Some c, Some t
            when t >= 0
                 && in32 (c + off + min 0 (step * t))
                      (c + off + max 0 (step * t)) ->
              (* The tail branch exits after at most [t] updates, so over
                 the whole execution the start address stays inside the
                 swept interval (the access may sit before or after the
                 update in the body, hence the inclusive 0..t sweep). *)
              Abs (c + off + min 0 (step * t), c + off + max 0 (step * t))
          | _ -> Ind (base, step, off))
      | None ->
          if Reaching.invariant_in reaching ~head ~tail base then Sym (base, off)
          else Unknown)

let pair_verdict (sa, ws) (la, wl) =
  match (sa, la) with
  | Abs (sl, sh), Abs (ll, lh) ->
      if sh + ws - 1 < ll || lh + wl - 1 < sl then No_alias else May_alias
  | Sym (r1, o1), Sym (r2, o2) when r1 = r2 ->
      if o1 >= o2 + wl || o2 >= o1 + ws then No_alias_iter else May_alias
  | Ind (r1, s1, o1), Ind (r2, s2, o2) when r1 = r2 && s1 = s2 && s1 <> 0 ->
      (* Addresses differ by d*step + (o1-o2) for some integer d; no pair
         overlaps iff the residue keeps the store's ws bytes clear of the
         load's wl bytes for every d. *)
      let m = abs s1 in
      let r0 = (((o1 - o2) mod m) + m) mod m in
      if r0 >= ws && r0 <= m - wl then No_alias_iter else May_alias
  | _ -> May_alias

let window cfg ~reaching ~values ~head ~tail ~outside_preds ~trip =
  let insns = window_insns cfg ~head ~tail in
  let accesses k =
    List.filter_map
      (fun (pc, insn) ->
        if Insn.kind insn <> k then None
        else
          match mem_operand insn with
          | None -> None
          | Some (base, off) ->
              let a =
                classify cfg insns ~reaching ~values ~head ~tail ~outside_preds
                  ~trip ~pc base off
              in
              Some (pc, a, Insn.access_bytes insn))
      insns
  in
  let stores = accesses Insn.K_store and loads = accesses Insn.K_load in
  let pairs =
    List.concat_map
      (fun (spc, sa, ws) ->
        List.map
          (fun (lpc, la, wl) ->
            {
              p_store = spc;
              p_load = lpc;
              p_store_bytes = ws;
              p_load_bytes = wl;
              p_verdict = pair_verdict (sa, ws) (la, wl);
            })
          loads)
      stores
  in
  {
    w_stores = List.map (fun (pc, _, _) -> pc) stores;
    w_loads = List.map (fun (pc, _, _) -> pc) loads;
    w_pairs = pairs;
  }

let no_alias_claims w =
  List.filter (fun p -> p.p_verdict = No_alias) w.w_pairs

let may_alias w = List.filter (fun p -> p.p_verdict = May_alias) w.w_pairs
