open Riq_isa
module IS = Set.Make (Int)

let entry_pc = -1

(* Definition sites are numbered densely: ids [0..63] are the initial-state
   pseudo-defs (one per register), higher ids are instructions with a
   destination, in address order. *)
type t = {
  cfg : Cfg.t;
  def_pc : int array; (* def id -> pc *)
  def_reg : int array; (* def id -> register *)
  kill : IS.t array; (* register -> all def ids of that register *)
  def_at : (int, int) Hashtbl.t; (* pc -> def id *)
  input : IS.t array; (* block id -> defs reaching block entry *)
}

module L = struct
  type fact = IS.t

  let name = "reaching-defs"
  let bottom = IS.empty
  let equal = IS.equal
  let join = IS.union
  let widen = IS.union
end

module Solver = Dataflow.Make (L)

let analyze cfg =
  let defs = ref [] and n = ref Reg.count in
  let def_at = Hashtbl.create 64 in
  Array.iter
    (fun b ->
      List.iter
        (fun (pc, insn) ->
          match Insn.dest insn with
          | Some r ->
              Hashtbl.replace def_at pc !n;
              defs := (pc, r) :: !defs;
              incr n
          | None -> ())
        (Cfg.insns cfg b))
    cfg.Cfg.blocks;
  let def_pc = Array.make !n entry_pc and def_reg = Array.make !n 0 in
  for r = 0 to Reg.count - 1 do
    def_reg.(r) <- r
  done;
  List.iter
    (fun (pc, r) ->
      let id = Hashtbl.find def_at pc in
      def_pc.(id) <- pc;
      def_reg.(id) <- r)
    !defs;
  let kill = Array.make Reg.count IS.empty in
  for id = 0 to !n - 1 do
    kill.(def_reg.(id)) <- IS.add id kill.(def_reg.(id))
  done;
  let transfer node fact =
    List.fold_left
      (fun fact (pc, insn) ->
        match Insn.dest insn with
        | Some r ->
            IS.add (Hashtbl.find def_at pc) (IS.diff fact kill.(r))
        | None -> fact)
      fact
      (Cfg.insns cfg cfg.Cfg.blocks.(node))
  in
  (* Boundary: at program entry every register holds its initial value. *)
  let boundary = IS.of_list (List.init Reg.count Fun.id) in
  let r = Solver.solve_cfg ~boundary ~transfer cfg in
  { cfg; def_pc; def_reg; kill; def_at; input = r.Solver.input }

let fact_at t ~pc =
  match Cfg.block_at t.cfg pc with
  | None -> None
  | Some b ->
      let fact = ref t.input.(b.Cfg.b_id) in
      List.iter
        (fun (p, insn) ->
          if p < pc then
            match Insn.dest insn with
            | Some r ->
                fact :=
                  IS.add (Hashtbl.find t.def_at p) (IS.diff !fact t.kill.(r))
            | None -> ())
        (Cfg.insns t.cfg b);
      Some !fact

let defs_of t ~pc reg =
  match fact_at t ~pc with
  | None -> []
  | Some fact ->
      IS.fold
        (fun id acc ->
          if t.def_reg.(id) = reg then t.def_pc.(id) :: acc else acc)
        fact []
      |> List.sort compare

let invariant_in t ~head ~tail reg =
  List.for_all (fun pc -> pc < head || pc > tail) (defs_of t ~pc:head reg)
