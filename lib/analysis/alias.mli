(** Store–load alias analysis scoped to a candidate loop window — the
    static side of the Section 2.2.3 revoke condition (a store whose
    line hits a buffered load forces a revoke).

    Every memory access whose base register can be understood inside
    the window is assigned an address class:

    - a {e concrete interval} (base value known to {!Valrange}, or an
      induction register with a constant loop-entry value, lowered to
      the interval it sweeps over the loop's iterations);
    - a {e symbolic} loop-invariant base plus constant offset;
    - an {e induction} base ([r := r + step] once per iteration) plus
      constant offset.

    Disjoint concrete intervals yield {!No_alias} — a {e global} claim,
    valid against every address the program ever touches, which is what
    the fuzz oracle checks it against. Same-base symbolic-distance and
    same-induction-register stride-residue tests yield {!No_alias_iter}:
    sound for all iteration pairs of {e one} loop execution (the window
    the revoke logic cares about) but not across separate loop entries,
    so they suppress the {e Aliasing_store} risk without being exported
    as checkable claims. Everything else is {!May_alias}. *)

type verdict = No_alias | No_alias_iter | May_alias

type pair = {
  p_store : int; (** pc of the store *)
  p_load : int; (** pc of the load *)
  p_store_bytes : int;
  p_load_bytes : int;
  p_verdict : verdict;
}

type window = {
  w_stores : int list; (** pcs of stores in the window, ascending *)
  w_loads : int list;
  w_pairs : pair list; (** every store × load pair *)
}

val window :
  Cfg.t ->
  reaching:Reaching.t ->
  values:Valrange.t ->
  head:int ->
  tail:int ->
  outside_preds:int list ->
  trip:int option ->
  window
(** Analyse the byte-address window [[head, tail]]. [outside_preds] are
    the block ids of the loop head's non-back-edge predecessors (for
    loop-entry values of induction bases); [trip] a statically-known
    trip count, if any. *)

val no_alias_claims : window -> pair list
(** The globally-valid [No_alias] pairs. *)

val mem_operand : Riq_isa.Insn.t -> (Riq_isa.Reg.t * int) option
(** Base register and byte offset of a load or store; [None] otherwise.
    Exposed so the fuzz oracle can recompute the effective addresses the
    claims talk about. *)

val may_alias : window -> pair list
val verdict_to_string : verdict -> string
