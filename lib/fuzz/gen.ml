open Riq_util

type params = {
  iq_size : int;
  bufferable_bias : float;
  min_top : int;
  max_top : int;
  dynamic_budget : int;
  allow_ijump_in_loop : bool;
  miss_bias : float;
}

let default =
  {
    iq_size = 64;
    bufferable_bias = 0.6;
    min_top = 3;
    max_top = 7;
    dynamic_budget = 40_000;
    allow_ijump_in_loop = false;
    miss_bias = 0.12;
  }

let small_iq = { default with iq_size = 16 }

let derive_seed base i =
  (* splitmix-style finalizer over (base, i); stable across platforms. *)
  let z = ref Int64.(add (of_int base) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L)) in
  z := Int64.(mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L);
  z := Int64.(mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL);
  Int64.to_int (Int64.logand !z 0x3FFFFFFFFFFFFFFFL)

(* ---------------------------------------------------------------- *)
(* Straight-line instruction patterns                                *)
(* ---------------------------------------------------------------- *)

(* Integer scratch destinations r8..r13; sources may also read counters in
   scope and the zero register. Pattern temporaries r14/r15 are write-only
   here (never live across items). *)

let iscratch rng = Printf.sprintf "r%d" (Rng.int_in rng 8 13)

let isrc rng ~counters =
  match Rng.int rng (10 + (3 * List.length counters)) with
  | 0 -> "r0"
  | n when n >= 10 -> List.nth counters (Rng.int rng (List.length counters))
  | _ -> Printf.sprintf "r%d" (Rng.int_in rng 8 13)

let fscratch rng = Printf.sprintf "f%d" (Rng.int rng 8)

let word_off rng = 4 * Rng.int rng 32 (* 0..124, word aligned *)
let base rng = if Rng.bool rng then "r24" else "r25"

let op_int3 rng ~counters =
  let op = Rng.choose rng [| "add"; "sub"; "and"; "or"; "xor"; "slt"; "sltu" |] in
  Printf.sprintf "%s %s, %s, %s" op (iscratch rng) (isrc rng ~counters) (isrc rng ~counters)

let op_imm rng ~counters =
  match Rng.int rng 5 with
  | 0 -> Printf.sprintf "addi %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int_in rng (-128) 127)
  | 1 -> Printf.sprintf "andi %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int rng 256)
  | 2 -> Printf.sprintf "ori %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int rng 256)
  | 3 -> Printf.sprintf "xori %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int rng 256)
  | _ -> Printf.sprintf "slti %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int_in rng (-64) 63)

let op_shift rng ~counters =
  match Rng.int rng 4 with
  | 0 -> Printf.sprintf "sll %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int rng 8)
  | 1 -> Printf.sprintf "srl %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int rng 8)
  | 2 -> Printf.sprintf "sra %s, %s, %d" (iscratch rng) (isrc rng ~counters) (Rng.int rng 8)
  | _ -> Printf.sprintf "sllv %s, %s, %s" (iscratch rng) (isrc rng ~counters) (isrc rng ~counters)

let op_muldiv rng ~counters =
  if Rng.int rng 3 = 0 then
    Printf.sprintf "div %s, %s, %s" (iscratch rng) (isrc rng ~counters) (isrc rng ~counters)
  else Printf.sprintf "mul %s, %s, %s" (iscratch rng) (isrc rng ~counters) (isrc rng ~counters)

let op_mem_direct rng ~counters =
  match Rng.int rng 8 with
  | 0 -> Printf.sprintf "lw %s, %d(%s)" (iscratch rng) (word_off rng) (base rng)
  | 1 -> Printf.sprintf "sw %s, %d(%s)" (isrc rng ~counters) (word_off rng) (base rng)
  | 2 -> Printf.sprintf "lb %s, %d(%s)" (iscratch rng) (Rng.int rng 128) (base rng)
  | 3 -> Printf.sprintf "lbu %s, %d(%s)" (iscratch rng) (Rng.int rng 128) (base rng)
  | 4 -> Printf.sprintf "sb %s, %d(%s)" (isrc rng ~counters) (Rng.int rng 128) (base rng)
  | 5 -> Printf.sprintf "lh %s, %d(%s)" (iscratch rng) (2 * Rng.int rng 64) (base rng)
  | 6 -> Printf.sprintf "lhu %s, %d(%s)" (iscratch rng) (2 * Rng.int rng 64) (base rng)
  | _ -> Printf.sprintf "sh %s, %d(%s)" (isrc rng ~counters) (2 * Rng.int rng 64) (base rng)

(* Register-indexed access with the address masked into [buf]: the index
   register's value is arbitrary, the masked result never leaves the
   array. This is where cross-iteration aliasing comes from. *)
let op_mem_indexed rng ~counters =
  let idx = isrc rng ~counters in
  match Rng.int rng 4 with
  | 0 ->
      Printf.sprintf "andi r14, %s, 60\nadd r14, r14, r24\nlw %s, 0(r14)" idx (iscratch rng)
  | 1 ->
      Printf.sprintf "andi r14, %s, 60\nadd r14, r14, r24\nsw %s, 0(r14)" idx
        (isrc rng ~counters)
  | 2 -> Printf.sprintf "andi r14, %s, 63\nadd r14, r14, r24\nlbu %s, 0(r14)" idx (iscratch rng)
  | _ ->
      Printf.sprintf "andi r14, %s, 62\nadd r14, r14, r24\nsh %s, 0(r14)" idx
        (isrc rng ~counters)

(* The integer data window the strided stress pattern roams over: 8 KiB
   is 256 L1 lines, so a line-per-iteration loop burns through its first
   touches cold and keeps the L2/DRAM path busy. The [andi] mask below
   must stay [4 * stress_words - 4]. *)
let stress_words = 2048

(* Counter-scaled strided access over the stress window (the first 8 KiB
   of [buf], see [stress_words]): with a loop counter as the index each
   iteration lands on a fresh cache line, so steady-state iterations
   carry long-latency (L2 / DRAM) loads whose fills straddle the
   following iteration — exactly the timing irregularity the loop
   fast-forward's memory log must refuse to replay through. The mask
   keeps the address inside the window whatever the index holds, so an
   unwrapped loop (shrinker) or a stale counter stays architecturally
   valid. *)
let op_mem_strided rng ~counters =
  let idx =
    if counters <> [] && Rng.int rng 4 > 0 then
      List.nth counters (Rng.int rng (List.length counters))
    else isrc rng ~counters
  in
  let shift = Rng.int_in rng 5 7 (* 32..128 B: one to four lines per step *) in
  let addr =
    Printf.sprintf "sll r14, %s, %d\nandi r14, r14, 8188\nadd r14, r14, r24" idx
      shift
  in
  if Rng.int rng 4 = 0 then
    Printf.sprintf "%s\nsw %s, 0(r14)" addr (isrc rng ~counters)
  else Printf.sprintf "%s\nlw %s, 0(r14)" addr (iscratch rng)

let op_fp rng ~counters =
  let f3 op = Printf.sprintf "%s %s, %s, %s" op (fscratch rng) (fscratch rng) (fscratch rng) in
  let f2 op = Printf.sprintf "%s %s, %s" op (fscratch rng) (fscratch rng) in
  match Rng.int rng 12 with
  | 0 | 1 -> Printf.sprintf "l.s %s, %d(r26)" (fscratch rng) (word_off rng)
  | 2 | 3 -> Printf.sprintf "s.s %s, %d(r26)" (fscratch rng) (word_off rng)
  | 4 -> f3 "fadd"
  | 5 -> f3 "fsub"
  | 6 -> f3 "fmul"
  | 7 -> f2 "fabs"
  | 8 -> f2 "fneg"
  | 9 ->
      Printf.sprintf "%s %s, %s, %s"
        (Rng.choose rng [| "feq"; "flt"; "fle" |])
        (iscratch rng) (fscratch rng) (fscratch rng)
  | 10 -> Printf.sprintf "cvtsw %s, %s" (fscratch rng) (isrc rng ~counters)
  | _ -> Printf.sprintf "cvtws %s, %s" (iscratch rng) (fscratch rng)

(* One random straight-line pattern; [lines] is how many instructions it
   contributes (indexed memory patterns cost 3, strided ones 4).
   [miss_bias] skews the draw toward the strided long-latency pattern. *)
let straight_op rng (p : params) ~counters =
  if Rng.float rng 1.0 < p.miss_bias then
    (Prog.Op (op_mem_strided rng ~counters), 4)
  else
    match Rng.int rng 16 with
    | 0 | 1 | 2 -> (Prog.Op (op_int3 rng ~counters), 1)
    | 3 | 4 | 5 -> (Prog.Op (op_imm rng ~counters), 1)
    | 6 | 7 -> (Prog.Op (op_shift rng ~counters), 1)
    | 8 -> (Prog.Op (op_muldiv rng ~counters), 1)
    | 9 | 10 | 11 -> (Prog.Op (op_mem_direct rng ~counters), 1)
    | 12 | 13 -> (Prog.Op (op_mem_indexed rng ~counters), 3)
    | _ -> (Prog.Op (op_fp rng ~counters), 1)

let cond rng ~counters =
  match Rng.int rng 6 with
  | 0 -> Printf.sprintf "beq %s, %s" (isrc rng ~counters) (isrc rng ~counters)
  | 1 -> Printf.sprintf "bne %s, %s" (isrc rng ~counters) (isrc rng ~counters)
  | 2 -> Printf.sprintf "bgtz %s" (isrc rng ~counters)
  | 3 -> Printf.sprintf "blez %s" (isrc rng ~counters)
  | 4 -> Printf.sprintf "bltz %s" (isrc rng ~counters)
  | _ -> Printf.sprintf "bgez %s" (isrc rng ~counters)

(* ---------------------------------------------------------------- *)
(* Loop shapes                                                       *)
(* ---------------------------------------------------------------- *)

(* [n_insns] straight-line instructions (counted, not items), with an
   optional guard thrown in. Guards wrap only straight-line ops. *)
let straight_body rng (p : params) ~counters ~n_insns ~allow_guard =
  let items = ref [] in
  let left = ref n_insns in
  while !left > 0 do
    if allow_guard && !left >= 4 && Rng.int rng 6 = 0 then begin
      let inner = Rng.int_in rng 1 (min 3 (!left - 1)) in
      let body = ref [] in
      let used = ref 1 (* the branch itself *) in
      for _ = 1 to inner do
        let op, n = straight_op rng p ~counters in
        body := op :: !body;
        used := !used + n
      done;
      items := Prog.Guard { g_cond = cond rng ~counters; g_body = List.rev !body } :: !items;
      left := !left - !used
    end
    else begin
      let op, n = straight_op rng p ~counters in
      items := op :: !items;
      left := !left - n
    end
  done;
  List.rev !items

type shape = Bufferable | Straddle | Nested | With_call | Early_exit | With_ijump

(* Dynamic-cost estimate of an item list (instructions executed, guards
   assumed not taken, breaks ignored). Used to respect the budget. *)
let rec est_items procs items =
  List.fold_left (fun acc it -> acc + est_item procs it) 0 items

and est_item procs = function
  | Prog.Op s -> List.length (String.split_on_char '\n' s)
  | Prog.Guard g -> 1 + est_items procs g.g_body
  | Prog.Loop l -> 1 + (l.trip * (est_items procs l.body + 2))
  | Prog.Call i -> (
      match List.nth_opt procs i with
      | Some p -> 2 + est_items procs p.Prog.p_body
      | None -> 1)
  | Prog.Break _ -> 2
  | Prog.Ijump -> 3

(* Cap [trip] so that trip * per_iter fits in [budget]. *)
let fit_trip ~budget ~per_iter trip =
  let per_iter = max 1 per_iter in
  max 1 (min trip (budget / per_iter))

let counters_at depth =
  List.init depth (fun i -> Printf.sprintf "r%d" (16 + i))

let rec gen_loop rng (p : params) ~procs ~depth ~budget shape =
  let inner_counters extra = counters_at (depth + extra) in
  match shape with
  | Bufferable ->
      (* Innermost, span below the queue size; trips sized so the queue
         fills with buffered iterations and the loop promotes. *)
      let span = Rng.int_in rng 3 (max 4 ((p.iq_size / 2) - 2)) in
      let body = straight_body rng p ~counters:(inner_counters 1) ~n_insns:span ~allow_guard:true in
      let per_iter = est_items procs body + 2 in
      (* Enough iterations to fill the queue with buffered copies, so the
         loop actually promotes to Code Reuse. *)
      let lo = min 40 (max 6 (p.iq_size / per_iter)) in
      let trip = fit_trip ~budget ~per_iter (Rng.int_in rng lo 48) in
      Prog.Loop { trip; body }
  | Straddle ->
      (* Span within +-25% of the queue size: half of these are capturable,
         half are Too_large, and buffered ones promote after very few
         iterations. *)
      let span = Rng.int_in rng (max 3 (p.iq_size * 3 / 4)) (p.iq_size * 5 / 4) in
      let body = straight_body rng p ~counters:(inner_counters 1) ~n_insns:span ~allow_guard:true in
      let per_iter = est_items procs body + 2 in
      let trip = fit_trip ~budget ~per_iter (Rng.int_in rng 4 12) in
      Prog.Loop { trip; body }
  | Nested ->
      (* Outer loop revokes on the inner back edge and registers in the
         NBLT; trip >= 3 so a later detection gets NBLT-filtered. *)
      let inner_span = Rng.int_in rng 3 10 in
      let inner_body =
        straight_body rng p ~counters:(inner_counters 2) ~n_insns:inner_span ~allow_guard:true
      in
      let inner_per = est_items procs inner_body + 2 in
      let outer_trip = Rng.int_in rng 3 6 in
      let inner_lo = min 28 (max 6 (p.iq_size / inner_per)) in
      let inner_trip =
        fit_trip ~budget:(budget / outer_trip) ~per_iter:inner_per
          (Rng.int_in rng inner_lo 32)
      in
      let pre = straight_body rng p ~counters:(inner_counters 1) ~n_insns:(Rng.int_in rng 1 4) ~allow_guard:false in
      let post = straight_body rng p ~counters:(inner_counters 1) ~n_insns:(Rng.int_in rng 1 3) ~allow_guard:false in
      Prog.Loop
        { trip = outer_trip; body = pre @ [ Prog.Loop { trip = inner_trip; body = inner_body } ] @ post }
  | With_call ->
      let n_procs = List.length procs in
      if n_procs = 0 then
        gen_loop rng p ~procs ~depth ~budget Bufferable
      else begin
        let callee = Rng.int rng n_procs in
        let span = Rng.int_in rng 2 8 in
        let body = straight_body rng p ~counters:(inner_counters 1) ~n_insns:span ~allow_guard:false in
        let body = body @ [ Prog.Call callee ] in
        let per_iter = est_items procs body + 2 in
        let trip = fit_trip ~budget ~per_iter (Rng.int_in rng 3 16) in
        Prog.Loop { trip; body }
      end
  | Early_exit ->
      let span = Rng.int_in rng 3 12 in
      let body = straight_body rng p ~counters:(inner_counters 1) ~n_insns:span ~allow_guard:false in
      let per_iter = est_items procs body + 4 in
      let trip = fit_trip ~budget ~per_iter (Rng.int_in rng 6 32) in
      (* Break when the countdown reaches a value inside [1, trip]: the
         exit really is taken mid-loop. *)
      let k = Rng.int_in rng 1 (max 1 (trip / 2)) in
      let cut = Rng.int rng (List.length body + 1) in
      let rec insert i = function
        | [] -> [ Prog.Break k ]
        | x :: tl when i = 0 -> Prog.Break k :: x :: tl
        | x :: tl -> x :: insert (i - 1) tl
      in
      Prog.Loop { trip; body = insert cut body }
  | With_ijump ->
      let span = Rng.int_in rng 2 8 in
      let body = straight_body rng p ~counters:(inner_counters 1) ~n_insns:span ~allow_guard:false in
      let body = body @ [ Prog.Ijump ] in
      let per_iter = est_items procs body + 2 in
      let trip = fit_trip ~budget ~per_iter (Rng.int_in rng 3 16) in
      Prog.Loop { trip; body }

let pick_shape rng (p : params) ~have_procs =
  if Rng.float rng 1.0 < p.bufferable_bias then
    if Rng.int rng 4 = 0 then Straddle else Bufferable
  else
    match Rng.int rng (if p.allow_ijump_in_loop then 5 else 4) with
    | 0 -> Nested
    | 1 -> if have_procs then With_call else Nested
    | 2 -> Early_exit
    | 3 -> Straddle
    | _ -> With_ijump

(* ---------------------------------------------------------------- *)
(* Whole programs                                                    *)
(* ---------------------------------------------------------------- *)

let gen_proc rng (p : params) ~with_loop =
  (* Leaf procedures: straight-line ops (scratch only, no calls), loop
     counter r20 when [with_loop]. *)
  let body = straight_body rng p ~counters:[] ~n_insns:(Rng.int_in rng 3 10) ~allow_guard:true in
  if with_loop then
    let lbody = straight_body rng p ~counters:[ "r20" ] ~n_insns:(Rng.int_in rng 2 5) ~allow_guard:false in
    body @ [ Prog.Loop { trip = Rng.int_in rng 2 6; body = lbody } ]
  else body

let program ?(params = default) ~seed () =
  let rng = Rng.create (seed lxor 0x5EED_F022) in
  let n_procs = Rng.int rng 3 in
  let procs =
    List.init n_procs (fun i ->
        { Prog.p_name = Printf.sprintf "p%d" i; p_body = gen_proc rng params ~with_loop:(Rng.int rng 4 = 0) })
  in
  let n_top = Rng.int_in rng params.min_top params.max_top in
  let budget_per = params.dynamic_budget / max 1 n_top in
  let items = ref [] in
  for _ = 1 to n_top do
    match Rng.int rng 10 with
    | 0 ->
        (* a little inter-loop straight-line glue *)
        items :=
          List.rev_append
            (List.rev (straight_body rng params ~counters:[] ~n_insns:(Rng.int_in rng 1 5) ~allow_guard:true))
            !items
    | 1 when n_procs > 0 -> items := Prog.Call (Rng.int rng n_procs) :: !items
    | 2 -> items := Prog.Ijump :: !items
    | _ ->
        let shape = pick_shape rng params ~have_procs:(n_procs > 0) in
        items := gen_loop rng params ~procs ~depth:0 ~budget:budget_per shape :: !items
  done;
  let data_words = if params.miss_bias > 0. then stress_words else 64 in
  let data_i = Array.init data_words (fun _ -> Rng.int_in rng (-1000) 1000) in
  let data_f = Array.init 32 (fun _ -> 0.25 *. float_of_int (Rng.int_in rng (-40) 40)) in
  { Prog.seed; main = List.rev !items; procs; data_i; data_f }
