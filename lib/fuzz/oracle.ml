open Riq_asm
open Riq_ooo
open Riq_core
open Riq_interp
open Riq_analysis

type run = {
  arch : Machine.arch_state;
  stats : Processor.stats;
  decisions : Processor.loop_decision list;
}

type runner = Config.t -> Program.t -> (run, string) result

let default_runner ?(cycle_limit = 10_000_000) () : runner =
 fun cfg program ->
  match
    let p = Processor.create cfg program in
    match Processor.run ~cycle_limit p with
    | Processor.Cycle_limit ->
        Error (Printf.sprintf "cycle limit exceeded (%d cycles)" cycle_limit)
    | Processor.Halted ->
        Ok
          {
            arch = Processor.arch_state p;
            stats = Processor.stats p;
            decisions = Processor.loop_decisions p;
          }
  with
  | result -> result
  | exception exn -> Error ("exception: " ^ Printexc.to_string exn)

type failure =
  | Reference_stuck of string
  | Ooo_stuck of { config : string; detail : string }
  | Arch_mismatch of { config : string; diff : string }
  | Verdict_mismatch of string
  | Alias_mismatch of string
  | Accounting of string
  | Fastforward_mismatch of string

let failure_to_string = function
  | Reference_stuck s -> "reference interpreter stuck: " ^ s
  | Ooo_stuck { config; detail } ->
      Printf.sprintf "out-of-order run (%s) stuck: %s" config detail
  | Arch_mismatch { config; diff } ->
      Printf.sprintf "architectural state mismatch (%s vs reference):\n%s" config diff
  | Verdict_mismatch s -> "static/dynamic verdict mismatch: " ^ s
  | Alias_mismatch s -> "static no-alias claim contradicted dynamically: " ^ s
  | Accounting s -> "reuse accounting inconsistency: " ^ s
  | Fastforward_mismatch s -> "fast-path (skip-ahead/fast-forward) divergence: " ^ s

(* The two fast paths are contracted to be invisible everywhere except
   their own diagnostic counters; scrub those before comparing. *)
let scrub_fast (s : Processor.stats) =
  { s with Processor.skipped_cycles = 0; ffwd_iterations = 0 }

let stats_diff (a : Processor.stats) (b : Processor.stats) =
  let fields =
    [
      ("cycles", (fun s -> string_of_int s.Processor.cycles));
      ("committed", fun s -> string_of_int s.Processor.committed);
      ("gated_cycles", fun s -> string_of_int s.Processor.gated_cycles);
      ("branches", fun s -> string_of_int s.Processor.branches);
      ("mispredicts", fun s -> string_of_int s.Processor.mispredicts);
      ("loads", fun s -> string_of_int s.Processor.loads);
      ("stores", fun s -> string_of_int s.Processor.stores);
      ("reuse_dispatches", fun s -> string_of_int s.Processor.reuse_dispatches);
      ("reuse_committed", fun s -> string_of_int s.Processor.reuse_committed);
      ("buffer_attempts", fun s -> string_of_int s.Processor.buffer_attempts);
      ("revokes", fun s -> string_of_int s.Processor.revokes);
      ("promotions", fun s -> string_of_int s.Processor.promotions);
      ("reuse_exits", fun s -> string_of_int s.Processor.reuse_exits);
      ( "avg_power",
        fun s ->
          Printf.sprintf "%.17g (%Lx)" s.Processor.avg_power
            (Int64.bits_of_float s.Processor.avg_power) );
      ("icache_accesses", fun s -> string_of_int s.Processor.icache_accesses);
      ("icache_misses", fun s -> string_of_int s.Processor.icache_misses);
      ("dcache_accesses", fun s -> string_of_int s.Processor.dcache_accesses);
      ("dcache_misses", fun s -> string_of_int s.Processor.dcache_misses);
    ]
  in
  let diffs =
    List.filter_map
      (fun (name, get) ->
        let va = get a and vb = get b in
        if va = vb then None else Some (Printf.sprintf "%s: %s vs %s" name va vb))
      fields
  in
  match diffs with
  | [] ->
      (* The records differ but no named field does: a stat added since
         this list was written. Still a real divergence. *)
      "stats records differ in a field not covered by the diff printer"
  | _ -> String.concat "; " diffs

type summary = {
  committed : int;
  detections : int;
  nblt_filtered : int;
  attempts : int;
  revokes : int;
  nblt_registered : int;
  promotions : int;
  exits : int;
  reuse_committed : int;
  static_loops : int;
  hard_rejected : int;
  no_alias_claims : int;
  alias_risks : int;
}

let ( let* ) = Result.bind

let run_leg (runner : runner) ~name ~golden cfg program =
  let* r =
    Result.map_error (fun detail -> Ooo_stuck { config = name; detail })
      (runner cfg program)
  in
  if Machine.equal_arch golden r.arch then Ok r
  else
    Error
      (Arch_mismatch { config = name; diff = Machine.diff_string golden r.arch })

let check ?(runner = default_runner ()) ?(ref_limit = 5_000_000) ~cfg program =
  let m = Machine.create program in
  let* golden =
    match Machine.run ~limit:ref_limit m with
    | Machine.Halted -> Ok (Machine.arch_state m)
    | Machine.Insn_limit ->
        Error (Reference_stuck (Printf.sprintf "instruction limit (%d)" ref_limit))
    | Machine.Bad_pc pc -> Error (Reference_stuck (Printf.sprintf "bad pc 0x%x" pc))
  in
  let* off =
    run_leg runner ~name:"reuse-off" ~golden
      { cfg with Config.reuse_enabled = false }
      program
  in
  let* () =
    if off.stats.Processor.reuse_committed = 0 && off.stats.Processor.promotions = 0
    then Ok ()
    else
      Error
        (Accounting
           (Printf.sprintf
              "reuse-off run reports reuse activity (%d reused commits, %d promotions)"
              off.stats.Processor.reuse_committed off.stats.Processor.promotions))
  in
  let* on = run_leg runner ~name:"reuse-on" ~golden cfg program in
  (* Fourth leg: same configuration with both algorithmic fast paths
     forced off. Beyond agreeing with the reference architecturally, the
     cycle-accurate run must match the fast-path run bit-for-bit on every
     stat (power included, to the float bit) and on the per-loop decision
     log — the fast paths are accelerations, not approximations. Skipped
     when [cfg] already has both paths off (the legs would be identical). *)
  let* () =
    if not (cfg.Config.skip_ahead || cfg.Config.loop_ffwd) then Ok ()
    else
      let* slow =
        run_leg runner ~name:"ffwd-off" ~golden
          { cfg with Config.skip_ahead = false; loop_ffwd = false }
          program
      in
      let sst = slow.stats in
      if sst.Processor.skipped_cycles <> 0 || sst.Processor.ffwd_iterations <> 0
      then
        Error
          (Accounting
             (Printf.sprintf
                "fast paths disabled but diagnostics nonzero (%d skipped, %d ffwd)"
                sst.Processor.skipped_cycles sst.Processor.ffwd_iterations))
      else if scrub_fast sst <> scrub_fast on.stats then
        Error
          (Fastforward_mismatch
             ("stats (ffwd-off vs reuse-on): "
             ^ stats_diff (scrub_fast sst) (scrub_fast on.stats)))
      else if slow.decisions <> on.decisions then
        Error
          (Fastforward_mismatch
             "per-loop decision logs differ between ffwd-off and reuse-on")
      else Ok ()
  in
  let st = on.stats in
  let* () =
    if st.Processor.reuse_committed > 0 && st.Processor.promotions = 0 then
      Error
        (Accounting
           (Printf.sprintf "%d reused commits but no promotion"
              st.Processor.reuse_committed))
    else Ok ()
  in
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 on.decisions in
  let per_loop_promotions = sum (fun d -> d.Processor.ld_promotions) in
  let* () =
    if per_loop_promotions = st.Processor.promotions then Ok ()
    else
      Error
        (Accounting
           (Printf.sprintf "per-loop promotions (%d) != stats.promotions (%d)"
              per_loop_promotions st.Processor.promotions))
  in
  let report = Bufferability.analyze_config cfg program in
  let promotions =
    List.map (fun d -> (d.Processor.ld_tail, d.Processor.ld_promotions)) on.decisions
  in
  let causes =
    List.map
      (fun d ->
        ( d.Processor.ld_tail,
          {
            Bufferability.rc_inner = d.Processor.ld_rv_inner;
            rc_left = d.Processor.ld_rv_left;
            rc_overflow = d.Processor.ld_rv_overflow;
            rc_mispredict = d.Processor.ld_rv_mispredict;
          } ))
      on.decisions
  in
  let* () =
    Result.map_error (fun s -> Verdict_mismatch s)
      (Bufferability.consistency ~causes report ~promotions)
  in
  let* no_alias_claims =
    Result.map_error (fun s -> Alias_mismatch s)
      (Bufferability.validate_no_alias ~limit:ref_limit program report)
  in
  let hard_rejected =
    List.length
      (List.filter
         (fun (l : Bufferability.loop_report) ->
           match l.Bufferability.verdict with
           | Error r -> Bufferability.hard_reject r
           | Ok () -> false)
         report.Bufferability.loops)
  in
  Ok
    {
      committed = st.Processor.committed;
      detections = sum (fun d -> d.Processor.ld_detections);
      nblt_filtered = sum (fun d -> d.Processor.ld_nblt_filtered);
      attempts = sum (fun d -> d.Processor.ld_attempts);
      revokes = sum (fun d -> d.Processor.ld_revokes);
      nblt_registered = sum (fun d -> d.Processor.ld_nblt_registered);
      promotions = st.Processor.promotions;
      exits = st.Processor.reuse_exits;
      reuse_committed = st.Processor.reuse_committed;
      static_loops = List.length report.Bufferability.loops;
      hard_rejected;
      no_alias_claims;
      alias_risks =
        List.fold_left
          (fun acc (l : Bufferability.loop_report) ->
            acc
            + List.length
                (List.filter
                   (function
                     | Bufferability.Aliasing_store _ -> true
                     | Bufferability.Data_dependent_trip -> false)
                   l.Bufferability.risks))
          0 report.Bufferability.loops;
    }
