open Riq_asm
open Riq_ooo
open Riq_core
open Riq_interp
open Riq_analysis

type run = {
  arch : Machine.arch_state;
  stats : Processor.stats;
  decisions : Processor.loop_decision list;
}

type runner = Config.t -> Program.t -> (run, string) result

let default_runner ?(cycle_limit = 10_000_000) () : runner =
 fun cfg program ->
  match
    let p = Processor.create cfg program in
    match Processor.run ~cycle_limit p with
    | Processor.Cycle_limit ->
        Error (Printf.sprintf "cycle limit exceeded (%d cycles)" cycle_limit)
    | Processor.Halted ->
        Ok
          {
            arch = Processor.arch_state p;
            stats = Processor.stats p;
            decisions = Processor.loop_decisions p;
          }
  with
  | result -> result
  | exception exn -> Error ("exception: " ^ Printexc.to_string exn)

type failure =
  | Reference_stuck of string
  | Ooo_stuck of { config : string; detail : string }
  | Arch_mismatch of { config : string; diff : string }
  | Verdict_mismatch of string
  | Alias_mismatch of string
  | Accounting of string

let failure_to_string = function
  | Reference_stuck s -> "reference interpreter stuck: " ^ s
  | Ooo_stuck { config; detail } ->
      Printf.sprintf "out-of-order run (%s) stuck: %s" config detail
  | Arch_mismatch { config; diff } ->
      Printf.sprintf "architectural state mismatch (%s vs reference):\n%s" config diff
  | Verdict_mismatch s -> "static/dynamic verdict mismatch: " ^ s
  | Alias_mismatch s -> "static no-alias claim contradicted dynamically: " ^ s
  | Accounting s -> "reuse accounting inconsistency: " ^ s

type summary = {
  committed : int;
  detections : int;
  nblt_filtered : int;
  attempts : int;
  revokes : int;
  nblt_registered : int;
  promotions : int;
  exits : int;
  reuse_committed : int;
  static_loops : int;
  hard_rejected : int;
  no_alias_claims : int;
  alias_risks : int;
}

let ( let* ) = Result.bind

let run_leg (runner : runner) ~name ~golden cfg program =
  let* r =
    Result.map_error (fun detail -> Ooo_stuck { config = name; detail })
      (runner cfg program)
  in
  if Machine.equal_arch golden r.arch then Ok r
  else
    Error
      (Arch_mismatch { config = name; diff = Machine.diff_string golden r.arch })

let check ?(runner = default_runner ()) ?(ref_limit = 5_000_000) ~cfg program =
  let m = Machine.create program in
  let* golden =
    match Machine.run ~limit:ref_limit m with
    | Machine.Halted -> Ok (Machine.arch_state m)
    | Machine.Insn_limit ->
        Error (Reference_stuck (Printf.sprintf "instruction limit (%d)" ref_limit))
    | Machine.Bad_pc pc -> Error (Reference_stuck (Printf.sprintf "bad pc 0x%x" pc))
  in
  let* off =
    run_leg runner ~name:"reuse-off" ~golden
      { cfg with Config.reuse_enabled = false }
      program
  in
  let* () =
    if off.stats.Processor.reuse_committed = 0 && off.stats.Processor.promotions = 0
    then Ok ()
    else
      Error
        (Accounting
           (Printf.sprintf
              "reuse-off run reports reuse activity (%d reused commits, %d promotions)"
              off.stats.Processor.reuse_committed off.stats.Processor.promotions))
  in
  let* on = run_leg runner ~name:"reuse-on" ~golden cfg program in
  let st = on.stats in
  let* () =
    if st.Processor.reuse_committed > 0 && st.Processor.promotions = 0 then
      Error
        (Accounting
           (Printf.sprintf "%d reused commits but no promotion"
              st.Processor.reuse_committed))
    else Ok ()
  in
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 on.decisions in
  let per_loop_promotions = sum (fun d -> d.Processor.ld_promotions) in
  let* () =
    if per_loop_promotions = st.Processor.promotions then Ok ()
    else
      Error
        (Accounting
           (Printf.sprintf "per-loop promotions (%d) != stats.promotions (%d)"
              per_loop_promotions st.Processor.promotions))
  in
  let report = Bufferability.analyze_config cfg program in
  let promotions =
    List.map (fun d -> (d.Processor.ld_tail, d.Processor.ld_promotions)) on.decisions
  in
  let causes =
    List.map
      (fun d ->
        ( d.Processor.ld_tail,
          {
            Bufferability.rc_inner = d.Processor.ld_rv_inner;
            rc_left = d.Processor.ld_rv_left;
            rc_overflow = d.Processor.ld_rv_overflow;
            rc_mispredict = d.Processor.ld_rv_mispredict;
          } ))
      on.decisions
  in
  let* () =
    Result.map_error (fun s -> Verdict_mismatch s)
      (Bufferability.consistency ~causes report ~promotions)
  in
  let* no_alias_claims =
    Result.map_error (fun s -> Alias_mismatch s)
      (Bufferability.validate_no_alias ~limit:ref_limit program report)
  in
  let hard_rejected =
    List.length
      (List.filter
         (fun (l : Bufferability.loop_report) ->
           match l.Bufferability.verdict with
           | Error r -> Bufferability.hard_reject r
           | Ok () -> false)
         report.Bufferability.loops)
  in
  Ok
    {
      committed = st.Processor.committed;
      detections = sum (fun d -> d.Processor.ld_detections);
      nblt_filtered = sum (fun d -> d.Processor.ld_nblt_filtered);
      attempts = sum (fun d -> d.Processor.ld_attempts);
      revokes = sum (fun d -> d.Processor.ld_revokes);
      nblt_registered = sum (fun d -> d.Processor.ld_nblt_registered);
      promotions = st.Processor.promotions;
      exits = st.Processor.reuse_exits;
      reuse_committed = st.Processor.reuse_committed;
      static_loops = List.length report.Bufferability.loops;
      hard_rejected;
      no_alias_claims;
      alias_risks =
        List.fold_left
          (fun acc (l : Bufferability.loop_report) ->
            acc
            + List.length
                (List.filter
                   (function
                     | Bufferability.Aliasing_store _ -> true
                     | Bufferability.Data_dependent_trip -> false)
                   l.Bufferability.risks))
          0 report.Bufferability.loops;
    }
