(** Greedy structural shrinker for failing fuzz programs.

    Enumerates one-edit variants of a {!Prog.t} — delete an item, unwrap a
    loop or guard into its body, halve or collapse a trip count — coarse
    edits first, takes the first variant on which [still_fails] holds, and
    restarts from it. The result is locally minimal: no single remaining
    edit preserves the failure (unless [max_checks] ran out first).

    [still_fails] must be deterministic and should return [false] for
    programs that no longer assemble ({!Prog.to_program} = [Error]) —
    the shrinker itself never looks at the rendered assembly. *)

val minimize :
  ?max_checks:int -> still_fails:(Prog.t -> bool) -> Prog.t -> Prog.t
(** [max_checks] caps calls to [still_fails] (default 400). *)

val variants : Prog.t -> Prog.t list
(** The one-edit neighbourhood (exposed for the shrinker's own tests). *)
