type item =
  | Op of string
  | Guard of guard
  | Loop of loop
  | Call of int
  | Break of int
  | Ijump

and guard = { g_cond : string; g_body : item list }
and loop = { trip : int; body : item list }

type proc = { p_name : string; p_body : item list }

type t = {
  seed : int;
  main : item list;
  procs : proc list;
  data_i : int array;
  data_f : float array;
}

let strip_breaks items =
  List.filter (function Break _ -> false | _ -> true) items

(* Which procedures does the program actually call? Calls only occur in
   [main] (procedures are leaves), but walk guards and loops to be safe. *)
let called_procs t =
  let called = Array.make (List.length t.procs) false in
  let rec walk items =
    List.iter
      (function
        | Call i -> if i < Array.length called then called.(i) <- true
        | Loop l -> walk l.body
        | Guard g -> walk g.g_body
        | Op _ | Break _ | Ijump -> ())
      items
  in
  walk t.main;
  called

let render t =
  let buf = Buffer.create 4096 in
  let fresh = ref 0 in
  let label stem =
    incr fresh;
    Printf.sprintf ".L%s%d" stem !fresh
  in
  let line s = Buffer.add_string buf ("    " ^ s ^ "\n") in
  let deflabel l = Buffer.add_string buf (l ^ ":\n") in
  (* depth = number of enclosing loops (counter register r16+depth while
     inside); [exit_label] is the innermost loop's exit. [counter_base]
     distinguishes main loops (r16..) from procedure loops (r20). *)
  let rec emit_items ~counter_base ~depth ~exit_label items =
    List.iter (emit_item ~counter_base ~depth ~exit_label) items
  and emit_item ~counter_base ~depth ~exit_label = function
    | Op s ->
        String.split_on_char '\n' s |> List.iter (fun l -> if l <> "" then line l)
    | Guard g ->
        let l = label "g" in
        line (g.g_cond ^ ", " ^ l);
        emit_items ~counter_base ~depth ~exit_label g.g_body;
        deflabel l
    | Loop lp ->
        let rc = Printf.sprintf "r%d" (counter_base + depth) in
        let head = label "h" in
        let exit = label "x" in
        line (Printf.sprintf "li %s, %d" rc lp.trip);
        deflabel head;
        emit_items ~counter_base ~depth:(depth + 1) ~exit_label:(Some (rc, exit)) lp.body;
        line (Printf.sprintf "addi %s, %s, -1" rc rc);
        line (Printf.sprintf "bgtz %s, %s" rc head);
        deflabel exit
    | Call i -> line (Printf.sprintf "jal p%d" i)
    | Break k -> (
        match exit_label with
        | None -> () (* orphaned by an unwrap: a no-op *)
        | Some (rc, exit) ->
            line (Printf.sprintf "addi r15, %s, %d" rc (-k));
            line (Printf.sprintf "beq r15, r0, %s" exit))
    | Ijump ->
        let l = label "ij" in
        line (Printf.sprintf "la r14, %s" l);
        line "jr r14";
        deflabel l
  in
  Buffer.add_string buf (Printf.sprintf "# riq-fuzz program, seed=%d\n" t.seed);
  (* Body first, into a scratch buffer, so the prologue can set up only the
     base registers the body actually names. *)
  let body_start = Buffer.length buf in
  emit_items ~counter_base:16 ~depth:0 ~exit_label:None t.main;
  line "halt";
  let called = called_procs t in
  List.iteri
    (fun i p ->
      if called.(i) then begin
        deflabel p.p_name;
        emit_items ~counter_base:20 ~depth:0 ~exit_label:None p.p_body;
        line "jr r31"
      end)
    t.procs;
  let body = Buffer.sub buf body_start (Buffer.length buf - body_start) in
  Buffer.truncate buf body_start;
  (* Plain substring search is enough: register names are unambiguous
     ("r24" never occurs inside another token in rendered text). *)
  let contains sub =
    let n = String.length body and m = String.length sub in
    let rec go i = i + m <= n && (String.sub body i m = sub || go (i + 1)) in
    go 0
  in
  let needs_buf = contains "r24" || contains "r25" in
  let needs_fbuf = contains "r26" in
  if needs_buf then begin
    line "la r24, buf";
    line "addi r25, r24, 8"
  end;
  if needs_fbuf then line "la r26, fbuf";
  Buffer.add_string buf body;
  if needs_buf || Array.length t.data_i > 0 then begin
    Buffer.add_string buf ".word buf";
    if Array.length t.data_i = 0 then Buffer.add_string buf " 0";
    Array.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int v)) t.data_i;
    Buffer.add_char buf '\n'
  end;
  if needs_fbuf || Array.length t.data_f > 0 then begin
    Buffer.add_string buf ".float fbuf";
    if Array.length t.data_f = 0 then Buffer.add_string buf " 0";
    Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %.6g" v)) t.data_f;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let to_program t = Riq_asm.Parse.program (render t)

let size_insns t =
  match to_program t with
  | Ok p -> Array.length p.Riq_asm.Program.code
  | Error _ -> 0
