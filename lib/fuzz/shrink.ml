open Prog

let remove i l = List.filteri (fun j _ -> j <> i) l
let replace i x l = List.mapi (fun j y -> if j = i then x else y) l

let splice i xs l =
  List.concat (List.mapi (fun j y -> if j = i then xs else [ y ]) l)

(* Every program obtainable by one structural edit, coarse edits first:
   deleting a whole item, unwrapping a loop or guard into its body,
   reducing a trip count, then the same edits one level deeper. *)
let rec list_variants items =
  let deletions = List.mapi (fun i _ -> remove i items) items in
  let unwraps =
    List.concat
      (List.mapi
         (fun i it ->
           match it with
           | Loop l -> [ splice i (strip_breaks l.body) items ]
           | Guard g -> [ splice i g.g_body items ]
           | Op _ | Call _ | Break _ | Ijump -> [])
         items)
  in
  let rewrites =
    List.concat
      (List.mapi
         (fun i it -> List.map (fun it' -> replace i it' items) (item_variants it))
         items)
  in
  deletions @ unwraps @ rewrites

and item_variants = function
  | Loop l ->
      let trips =
        (if l.trip > 2 then [ Loop { l with trip = l.trip / 2 } ] else [])
        @ if l.trip > 1 then [ Loop { l with trip = 1 } ] else []
      in
      trips @ List.map (fun b -> Loop { l with body = b }) (list_variants l.body)
  | Guard g -> List.map (fun b -> Guard { g with g_body = b }) (list_variants g.g_body)
  | Op _ | Call _ | Break _ | Ijump -> []

let variants (p : t) =
  List.map (fun m -> { p with main = m }) (list_variants p.main)
  @ List.concat
      (List.mapi
         (fun i pr ->
           List.map
             (fun b -> { p with procs = replace i { pr with p_body = b } p.procs })
             (list_variants pr.p_body))
         p.procs)

let minimize ?(max_checks = 400) ~still_fails prog =
  let checks = ref 0 in
  let fails p =
    if !checks >= max_checks then false
    else (
      incr checks;
      still_fails p)
  in
  (* Greedy with restart: take the first variant that still fails and
     re-enumerate from it, so coarse deletions get first shot at every
     intermediate program. *)
  let rec go p =
    match List.find_opt fails (variants p) with
    | Some v when !checks < max_checks -> go v
    | Some v -> v
    | None -> p
  in
  go prog
