open Riq_ooo

(** Fuzzing campaign driver: generate [count] programs from a base seed,
    fan the simulations out over the experiment engine's worker pool
    ({!Riq_exp.Engine} — three differential jobs per program: reuse on,
    reuse off, and reuse on with the algorithmic fast paths off, whose
    stats must match the first job's bit-for-bit), re-check every
    engine-reported failure in-process through the {!Oracle}, shrink it
    ({!Shrink.minimize}) and hand back standalone repro assembly.

    Everything here is deterministic: equal (config, seed, count) produce
    an equal {!result} and byte-equal {!summary_to_string}, regardless of
    worker count or cache state. Timing belongs to the caller's progress
    reporting, never to the summary. *)

val configs : (string * (Config.t * Gen.params)) list
(** Named campaign configurations: ["default"], ["small-iq"] (16-entry
    queue), ["big-iq"] (128), ["no-nblt"], ["single-iter"] (strategy 1
    buffering). The configuration is the reuse-on leg; the driver derives
    the reuse-off leg from it. *)

val config : string -> (Config.t * Gen.params, string) result

type failure = {
  f_seed : int;  (** per-program generator seed *)
  f_index : int;  (** index of the program in the campaign *)
  f_detail : string;  (** rendered oracle (or engine) failure *)
  f_repro : Prog.t;  (** shrunk reproducer *)
  f_repro_insns : int;  (** assembled size of the reproducer *)
}

type agg = {
  programs : int;
  static_insns : int;  (** assembled instructions across the corpus *)
  committed : int;  (** dynamically committed, reuse-on legs *)
  attempts : int;
  revokes : int;
  promotions : int;
  exits : int;
  reuse_committed : int;
}

type result = {
  config_name : string;
  base_seed : int;
  passed : int;
  failures : failure list;  (** ascending campaign index *)
  agg : agg;
}

val run :
  ?engine:Riq_exp.Engine.t ->
  ?shrink_checks:int ->
  config:string ->
  seed:int ->
  count:int ->
  unit ->
  (result, string) Stdlib.result
(** [Error] only for an unknown configuration name; simulation failures
    are data ({!result.failures}). [engine] defaults to a fresh
    single-worker engine without a cache. *)

val summary_to_string : result -> string
(** The deterministic run report ([riq-fuzz run]'s stdout). *)

val repro_text : config_name:string -> failure -> string
(** Standalone [.s] reproducer: provenance header (seed, configuration,
    failure) over the shrunk program's assembly. Replayable with
    [riq-fuzz replay]. *)
