open Riq_asm
open Riq_ooo
open Riq_core
open Riq_interp

(** Four-way differential oracle.

    One generated program is run on four machines — the functional
    reference ({!Riq_interp.Machine}), the out-of-order core with reuse
    disabled, the same core with the reusable issue queue on, and that
    reuse configuration again with the algorithmic fast paths
    ([Config.skip_ahead] and [Config.loop_ffwd]) forced off — and the
    final architectural states must agree bit-for-bit. The fourth leg
    additionally pins the fast paths to their contract: every stat
    (power to the float bit) and the per-loop decision log must be
    bit-identical between the fast and cycle-accurate runs. On top of
    the state comparisons the oracle cross-checks the dynamic reuse
    decisions against the static {!Riq_analysis.Bufferability} verdicts
    ({!Riq_analysis.Bufferability.consistency}) and the processor's own
    reuse accounting. *)

type run = {
  arch : Machine.arch_state;
  stats : Processor.stats;
  decisions : Processor.loop_decision list;
}

type runner = Config.t -> Program.t -> (run, string) result
(** How the oracle executes one out-of-order simulation. Injectable so the
    mutation tests can wrap {!default_runner} with a deliberate fault and
    prove the oracle catches it. *)

val default_runner : ?cycle_limit:int -> unit -> runner
(** In-process {!Riq_core.Processor} run ([cycle_limit] defaults to 10
    million — generated programs execute tens of thousands of
    instructions, so anything near the limit is a livelock). *)

type failure =
  | Reference_stuck of string
      (** the golden model did not halt — a generator invariant broke *)
  | Ooo_stuck of { config : string; detail : string }
      (** an out-of-order run hit its cycle limit or crashed *)
  | Arch_mismatch of { config : string; diff : string }
      (** final architectural state differs from the reference *)
  | Verdict_mismatch of string
      (** dynamic promotions or revoke causes contradict the static
          bufferability verdicts *)
  | Alias_mismatch of string
      (** a static [No_alias] claim was contradicted by effective
          addresses observed on the reference interpreter — a soundness
          bug in the dataflow analyses *)
  | Accounting of string
      (** the processor's reuse counters are self-inconsistent (e.g.
          reused commits without a promotion, or reuse activity in the
          reuse-off run) *)
  | Fastforward_mismatch of string
      (** the fast-path run (skip-ahead / loop fast-forward on) and the
          cycle-accurate run disagree on a stat or a per-loop decision —
          a soundness bug in one of the fast paths (DESIGN §9) *)

val failure_to_string : failure -> string

val scrub_fast : Processor.stats -> Processor.stats
(** Zero the two fast-path diagnostic counters ([skipped_cycles] and
    [ffwd_iterations]) — everything else in a stats record is covered by
    the fast paths' bit-identity contract, so comparisons go through this
    first. Shared with the campaign driver's engine-level leg check. *)

(** Aggregate reuse activity of the reuse-on run, summed over all detected
    loops. The corpus tests assert every transition of the paper's Figure 2
    state machine is exercised by accumulating these across programs. *)
type summary = {
  committed : int;
  detections : int;
  nblt_filtered : int;
  attempts : int;
  revokes : int;
  nblt_registered : int;
  promotions : int;
  exits : int;
  reuse_committed : int;
  static_loops : int;  (** loops the static analysis saw *)
  hard_rejected : int;  (** of those, hard-rejected ones *)
  no_alias_claims : int;  (** no-alias claims validated against the interpreter *)
  alias_risks : int;  (** store/load pairs flagged [Aliasing_store] *)
}

val check :
  ?runner:runner ->
  ?ref_limit:int ->
  cfg:Config.t ->
  Program.t ->
  (summary, failure) result
(** [check ~cfg program] with [cfg.reuse_enabled]; the reuse-off leg is
    [cfg] with the mechanism switched off, and the ffwd-off leg is [cfg]
    with only the fast paths switched off, so each pair of out-of-order
    runs differs in exactly one feature under test. The ffwd-off leg is
    skipped when [cfg] already has both fast paths off. [ref_limit]
    bounds the reference interpreter (default 5 million instructions). *)
