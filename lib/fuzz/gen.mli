(** Seeded random generator of structured loop programs.

    Fully deterministic: [program ~seed] builds every random choice from a
    {!Riq_util.Rng} stream derived from [seed] alone, so a seed identifies
    a program forever (the corpus in [test/] and CI replays rely on this).

    The generator is biased so a tunable fraction of generated loops is
    bufferable by the paper's criteria, and the rest exercise each revoke
    path: nests (inner transfer), bodies straddling the issue-queue size
    boundary (too large), embedded procedure calls (call overflow /
    callee loops), early exits, and — optionally — in-window indirect
    jumps. Loads and stores mix direct offsets off two aliasing base
    registers with masked register-indexed addressing, so buffered loop
    iterations see genuinely different memory behaviour. *)

type params = {
  iq_size : int;
      (** issue-queue size to straddle when sizing loop bodies *)
  bufferable_bias : float;
      (** fraction of generated loops aimed at the bufferable shape *)
  min_top : int;
  max_top : int; (** top-level item count range *)
  dynamic_budget : int;
      (** approximate cap on dynamically executed instructions *)
  allow_ijump_in_loop : bool;
      (** permit indirect jumps inside loop bodies (stresses a corner the
          static analysis flags {!Riq_analysis.Bufferability.Indirect};
          off by default) *)
  miss_bias : float;
      (** probability that a straight-line slot draws the counter-scaled
          strided memory pattern: long-latency loads walking one cache
          line per loop iteration, whose miss fills straddle iteration
          boundaries and break the timing repeatability the loop
          fast-forward relies on. Nonzero keeps the four-leg oracle's
          ffwd-off leg honest; [> 0.] also widens the program's integer
          data window to 8 KiB. *)
}

val default : params
(** [iq_size = 64], [bufferable_bias = 0.6], 3..7 top-level items, 40k
    dynamic instructions, no in-loop indirect jumps, [miss_bias = 0.12]. *)

val small_iq : params
(** [default] resized for a 16-entry queue. *)

val program : ?params:params -> seed:int -> unit -> Prog.t
(** Generate one program. Renders to valid assembly by construction. *)

val derive_seed : int -> int -> int
(** [derive_seed base i] — the per-program seed the driver and the corpus
    use for program [i] of a run seeded with [base] (splitmix-style
    mixing, stable across platforms). *)
