(** Structured random loop programs for the differential fuzzer.

    A fuzz program is a tree of loops, guarded regions and straight-line
    instruction patterns that renders to RIQ32 assembly text. The structure
    guarantees two properties the oracle depends on:

    - {b termination}: every loop counts a dedicated register down from a
      constant trip count, breaks only exit forward, guards only skip
      forward, procedures are leaf calls, and indirect jumps target the
      immediately following instruction;
    - {b memory safety}: every computed address is masked into one of the
      program's data arrays before use, so loads and stores always land in
      [buf]/[fbuf] (or in untouched low memory, identically on every
      simulator).

    Register convention (the renderer and generator keep these disjoint):
    [r24] base of [buf], [r25] = [r24]+8 (aliasing base), [r26] base of
    [fbuf]; [r16..r19] loop counters by nesting depth, [r20] the procedure
    loop counter; [r8..r13] integer scratch; [r14]/[r15] pattern-internal
    temporaries; [f0..f7] float scratch. Guards and breaks never wrap
    loops, calls or indirect jumps, which is what makes the static
    bufferability verdicts of hard-reject loops exact (see
    {!Riq_analysis.Bufferability.hard_reject}). *)

type item =
  | Op of string
      (** One straight-line instruction pattern: one or more assembly
          lines, atomic for the shrinker. Must not write [r16..r31] or the
          base registers. *)
  | Guard of guard
      (** Forward conditional skip over straight-line ops only. *)
  | Loop of loop
  | Call of int (** [jal p<i>] *)
  | Break of int
      (** Early exit of the innermost enclosing loop when its counter
          equals the given value. Rendered as nothing outside a loop. *)
  | Ijump (** [la r14, L; jr r14; L:] — an in-window indirect transfer *)

and guard = {
  g_cond : string;
      (** condition without target, e.g. ["bne r8, r9"] or ["bgtz r10"];
          the renderer appends the skip label *)
  g_body : item list;
}

and loop = { trip : int; (** constant trip count, >= 1 *) body : item list }

type proc = { p_name : string; p_body : item list }

type t = {
  seed : int; (** generator seed, for provenance comments *)
  main : item list;
  procs : proc list; (** only procedures actually called are rendered *)
  data_i : int array; (** initial contents of [buf] (words) *)
  data_f : float array; (** initial contents of [fbuf] *)
}

val render : t -> string
(** Assembly text: prologue (base-register setup, emitted only for the
    bases the body actually uses), main items, [halt], called procedures,
    data directives. Deterministic: equal programs render to equal text. *)

val to_program : t -> (Riq_asm.Program.t, string) result
(** [render] then assemble. *)

val size_insns : t -> int
(** Number of instructions in the assembled image ([0] if the program
    fails to assemble — the shrinker treats that as uninteresting). *)

val strip_breaks : item list -> item list
(** Drop top-level [Break]s (used when a loop is unwrapped into its
    body). Does not recurse into nested loops, whose breaks stay valid. *)
