open Riq_ooo
open Riq_exp

let configs =
  [
    ("default", (Config.reuse, Gen.default));
    ("small-iq", (Config.with_iq_size Config.reuse 16, Gen.small_iq));
    ( "big-iq",
      (Config.with_iq_size Config.reuse 128, { Gen.default with Gen.iq_size = 128 })
    );
    ("no-nblt", ({ Config.reuse with Config.nblt_entries = 0 }, Gen.default));
    ( "single-iter",
      ({ Config.reuse with Config.buffer_multiple_iterations = false }, Gen.default)
    );
  ]

let config name =
  match List.assoc_opt name configs with
  | Some c -> Ok c
  | None ->
      Error
        (Printf.sprintf "unknown config %S (have: %s)" name
           (String.concat ", " (List.map fst configs)))

type failure = {
  f_seed : int;
  f_index : int;
  f_detail : string;
  f_repro : Prog.t;
  f_repro_insns : int;
}

type agg = {
  programs : int;
  static_insns : int;
  committed : int;
  attempts : int;
  revokes : int;
  promotions : int;
  exits : int;
  reuse_committed : int;
}

type result = {
  config_name : string;
  base_seed : int;
  passed : int;
  failures : failure list;
  agg : agg;
}

let cycle_limit = 10_000_000

(* Shrink against the full in-process oracle: any failure keeps the
   candidate (chasing a second bug the shrink uncovers is fine — the repro
   still fails the oracle); a program that stops assembling is dead. *)
let shrink ~cfg ~max_checks prog =
  let still_fails p =
    match Prog.to_program p with
    | Error _ -> false
    | Ok program -> Result.is_error (Oracle.check ~cfg program)
  in
  Shrink.minimize ~max_checks ~still_fails prog

let run ?engine ?(shrink_checks = 400) ~config:name ~seed ~count () =
  match config name with
  | Error _ as e -> e
  | Ok (cfg, params) ->
      let engine =
        match engine with Some e -> e | None -> Engine.create ~workers:1 ()
      in
      let progs =
        Array.init count (fun i ->
            Gen.program ~params ~seed:(Gen.derive_seed seed i) ())
      in
      let programs =
        Array.map
          (fun p ->
            match Prog.to_program p with
            | Ok program -> program
            | Error msg ->
                (* A generator invariant broke; surface it loudly rather
                   than skewing the campaign. *)
                failwith
                  (Printf.sprintf "fuzz generator emitted invalid assembly (seed %d): %s"
                     p.Prog.seed msg))
          progs
      in
      let jobs =
        Array.concat
          (Array.to_list
             (Array.map
                (fun program ->
                  [|
                    Job.make ~check:true ~verdicts:true ~cycle_limit cfg program;
                    Job.make ~check:true ~cycle_limit
                      { cfg with Config.reuse_enabled = false }
                      program;
                    (* Fourth oracle leg: the same reuse configuration with
                       the algorithmic fast paths off. Its stats must match
                       the first job's bit-for-bit (fast-path diagnostics
                       aside). *)
                    Job.make ~check:true ~cycle_limit
                      { cfg with Config.skip_ahead = false; loop_ffwd = false }
                      program;
                  |])
                programs))
      in
      let outcomes = Engine.run engine jobs in
      let agg = ref
          {
            programs = count;
            static_insns = 0;
            committed = 0;
            attempts = 0;
            revokes = 0;
            promotions = 0;
            exits = 0;
            reuse_committed = 0;
          }
      in
      let failures = ref [] in
      Array.iteri
        (fun i program ->
          let a = !agg in
          agg :=
            { a with
              static_insns = a.static_insns + Array.length program.Riq_asm.Program.code
            };
          let on = outcomes.(3 * i)
          and off = outcomes.((3 * i) + 1)
          and slow = outcomes.((3 * i) + 2) in
          (match on with
          | Ok r ->
              let st = r.Outcome.stats in
              let a = !agg in
              agg :=
                {
                  a with
                  committed = a.committed + st.Riq_core.Processor.committed;
                  attempts = a.attempts + st.Riq_core.Processor.buffer_attempts;
                  revokes = a.revokes + st.Riq_core.Processor.revokes;
                  promotions = a.promotions + st.Riq_core.Processor.promotions;
                  exits = a.exits + st.Riq_core.Processor.reuse_exits;
                  reuse_committed =
                    a.reuse_committed + st.Riq_core.Processor.reuse_committed;
                }
          | Error _ -> ());
          let engine_error =
            match (on, off, slow) with
            | Ok r_on, Ok _, Ok r_slow ->
                if
                  Oracle.scrub_fast r_on.Outcome.stats
                  <> Oracle.scrub_fast r_slow.Outcome.stats
                then
                  Some
                    "fast-path stats diverge from the cycle-accurate leg"
                else None
            | Error e, _, _ | _, Error e, _ | _, _, Error e ->
                Some (Outcome.error_to_string e)
          in
          match engine_error with
          | None -> ()
          | Some engine_detail ->
              (* Re-check in-process for the richer oracle diagnosis, then
                 shrink whatever still fails. *)
              let detail =
                match Oracle.check ~cfg programs.(i) with
                | Error f -> Oracle.failure_to_string f
                | Ok _ -> "engine-only failure: " ^ engine_detail
              in
              let repro = shrink ~cfg ~max_checks:shrink_checks progs.(i) in
              failures :=
                {
                  f_seed = progs.(i).Prog.seed;
                  f_index = i;
                  f_detail = detail;
                  f_repro = repro;
                  f_repro_insns = Prog.size_insns repro;
                }
                :: !failures)
        programs;
      let failures = List.rev !failures in
      Ok
        {
          config_name = name;
          base_seed = seed;
          passed = count - List.length failures;
          failures;
          agg = !agg;
        }

let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

let summary_to_string r =
  let b = Buffer.create 1024 in
  let a = r.agg in
  Buffer.add_string b
    (Printf.sprintf "riq-fuzz: config=%s seed=%d programs=%d\n" r.config_name
       r.base_seed a.programs);
  Buffer.add_string b
    (Printf.sprintf "result: pass=%d fail=%d\n" r.passed (List.length r.failures));
  Buffer.add_string b
    (Printf.sprintf "corpus: static_insns=%d committed=%d\n" a.static_insns
       a.committed);
  Buffer.add_string b
    (Printf.sprintf
       "reuse: attempts=%d revokes=%d promotions=%d exits=%d reuse_committed=%d\n"
       a.attempts a.revokes a.promotions a.exits a.reuse_committed);
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "FAIL program=%d seed=%d repro_insns=%d: %s\n" f.f_index
           f.f_seed f.f_repro_insns (first_line f.f_detail)))
    r.failures;
  Buffer.contents b

let repro_text ~config_name f =
  let header =
    String.concat "\n"
      (List.map
         (fun l -> "# " ^ l)
         (("riq-fuzz reproducer: replay with `riq-fuzz replay <this file> --config "
          ^ config_name ^ "`")
         :: Printf.sprintf "seed %d (program %d of its campaign)" f.f_seed f.f_index
         :: String.split_on_char '\n' f.f_detail))
  in
  header ^ "\n" ^ Prog.render f.f_repro
