open Riq_loopir

type t = { name : string; source : string; description : string; ir : Ir.program }

(* ---- IR construction shorthands ---- *)

let ic n = Ir.Iconst n
let iv x = Ir.Ivar x
let ( +! ) a b = Ir.Iadd (a, b)
let ( -! ) a b = Ir.Isub (a, b)
let fc x = Ir.Fconst x
let fv x = Ir.Fvar x
let ( +. ) a b = Ir.Fadd (a, b)
let ( -. ) a b = Ir.Fsub (a, b)
let ( *. ) a b = Ir.Fmul (a, b)
let ( /. ) a b = Ir.Fdiv (a, b)
let ld arr subs = Ir.Fload (arr, subs)
let st arr subs e = Ir.Sfstore (arr, subs, e)
let assign v e = Ir.Sfassign (v, e)
let for_ var lo hi body = Ir.Sfor { var; lo; hi; body }
let farr name dims = { Ir.a_name = name; a_dims = dims; a_init = `Index_pattern; a_float = true }
let farr0 name dims = { Ir.a_name = name; a_dims = dims; a_init = `Zero; a_float = true }

(* ------------------------------------------------------------------ *)
(* adi — Livermore: alternating-direction-implicit sweeps on a 2-D     *)
(* grid. Two large sweep loops (~70-instruction bodies) per timestep   *)
(* plus a small flattened copy loop a 32-entry queue can capture.      *)
(* ------------------------------------------------------------------ *)

let adi =
  let n = 24 in
  let t_steps = 3 in
  {
    name = "adi";
    source = "Livermore";
    description = "alternating-direction-implicit integration sweeps";
    ir =
      {
        Ir.arrays =
          [
            farr "u1" [ n; n ]; farr "u2" [ n; n ]; farr "z1" [ n; n ]; farr "z2" [ n; n ];
            farr0 "du1" [ n ]; farr0 "du2" [ n ];
          ];
        int_scalars = [];
        float_scalars = [ "a1"; "a2"; "a3"; "a4" ];
        procs = [];
        main =
          [
            assign "a1" (fc 0.125);
            assign "a2" (fc (-0.0625));
            assign "a3" (fc 0.03125);
            assign "a4" (fc 0.25);
            for_ "t" (ic 0) (ic t_steps)
              [
                (* Small copy loop (flattened): shadow <- current, row 0. *)
                for_ "k" (ic 1)
                  (ic (n - 1))
                  [ st "du1" [ iv "k" ] (ld "u1" [ ic 0; iv "k" ] *. fc 0.5) ];
                (* x sweep: differences from the previous-step shadow, so
                   the four statements are distributable (Section 4). *)
                for_ "i" (ic 1)
                  (ic (n - 1))
                  [
                    for_ "j" (ic 1)
                      (ic (n - 1))
                      [
                        st "du1" [ iv "j" ]
                          (ld "z1" [ iv "i"; iv "j" +! ic 1 ]
                          -. ld "z1" [ iv "i"; iv "j" -! ic 1 ]);
                        st "du2" [ iv "j" ]
                          (ld "z2" [ iv "i"; iv "j" +! ic 1 ]
                          -. ld "z2" [ iv "i"; iv "j" -! ic 1 ]);
                        st "u1"
                          [ iv "i"; iv "j" ]
                          (ld "u1" [ iv "i"; iv "j" ]
                          +. (fv "a1" *. ld "du1" [ iv "j" ])
                          +. (fv "a2" *. ld "du2" [ iv "j" ]));
                        st "u2"
                          [ iv "i"; iv "j" ]
                          (ld "u2" [ iv "i"; iv "j" ]
                          +. (fv "a3" *. ld "du1" [ iv "j" ])
                          +. (fv "a4" *. ld "du2" [ iv "j" ]));
                      ];
                  ];
                (* y sweep (transposed differences). *)
                for_ "j2" (ic 1)
                  (ic (n - 1))
                  [
                    for_ "i2" (ic 1)
                      (ic (n - 1))
                      [
                        st "du1" [ iv "i2" ]
                          (ld "z1" [ iv "i2" +! ic 1; iv "j2" ]
                          -. ld "z1" [ iv "i2" -! ic 1; iv "j2" ]);
                        st "du2" [ iv "i2" ]
                          (ld "z2" [ iv "i2" +! ic 1; iv "j2" ]
                          -. ld "z2" [ iv "i2" -! ic 1; iv "j2" ]);
                        st "u1"
                          [ iv "i2"; iv "j2" ]
                          (ld "u1" [ iv "i2"; iv "j2" ]
                          +. (fv "a1" *. ld "du1" [ iv "i2" ])
                          +. (fv "a2" *. ld "du2" [ iv "i2" ]));
                        st "u2"
                          [ iv "i2"; iv "j2" ]
                          (ld "u2" [ iv "i2"; iv "j2" ]
                          +. (fv "a3" *. ld "du1" [ iv "i2" ])
                          +. (fv "a4" *. ld "du2" [ iv "i2" ]));
                      ];
                  ];
                (* Shadow refresh: small 2-D copy loops. *)
                for_ "i3" (ic 1)
                  (ic (n - 1))
                  [
                    for_ "j3" (ic 1)
                      (ic (n - 1))
                      [
                        st "z1" [ iv "i3"; iv "j3" ] (ld "u1" [ iv "i3"; iv "j3" ]);
                        st "z2" [ iv "i3"; iv "j3" ] (ld "u2" [ iv "i3"; iv "j3" ]);
                      ];
                  ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* aps — Perfect Club: a battery of small vector kernels (scale,       *)
(* saxpy, reduction, triad) plus a tiny procedure called from inside   *)
(* a loop, all with bodies a 32-entry queue captures.                  *)
(* ------------------------------------------------------------------ *)

let aps =
  let n = 256 in
  let t_steps = 18 in
  {
    name = "aps";
    source = "Perfect Club";
    description = "small-vector kernel battery with an in-loop procedure";
    ir =
      {
        Ir.arrays = [ farr "x" [ n ]; farr "y" [ n ]; farr0 "z" [ n ]; farr0 "w" [ n ] ];
        int_scalars = [ "gi" ];
        float_scalars = [ "alpha"; "s" ];
        procs =
          [
            (* Parameterless accumulation procedure operating on globals;
               called from inside a capturable loop (Section 2.2.2). *)
            ("accum", [ assign "s" (fv "s" +. (ld "x" [ iv "gi" ] *. ld "y" [ iv "gi" ])) ]);
          ];
        main =
          [
            assign "alpha" (fc 1.8125);
            assign "s" (fc 0.0);
            for_ "t" (ic 0) (ic t_steps)
              [
                for_ "i" (ic 0) (ic n) [ st "z" [ iv "i" ] (fv "alpha" *. ld "x" [ iv "i" ]) ];
                for_ "j" (ic 0) (ic n)
                  [ st "w" [ iv "j" ] (ld "z" [ iv "j" ] +. ld "y" [ iv "j" ]) ];
                for_ "k" (ic 0) (ic n)
                  [
                    st "z" [ iv "k" ]
                      (ld "w" [ iv "k" ] +. (fv "alpha" *. ld "y" [ iv "k" ]));
                  ];
                for_ "m" (ic 0) (ic n)
                  [ Ir.Siassign ("gi", iv "m"); Ir.Scall "accum" ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* btrix — SPEC92/NASA: block-tridiagonal elimination. The dominant    *)
(* loop wraps a ~80-instruction procedure, so its dynamic iteration is *)
(* ~90 instructions: statically capturable everywhere, but buffering   *)
(* fails until the queue is large enough to hold call plus callee.     *)
(* ------------------------------------------------------------------ *)

let btrix =
  let m = 2600 in
  let t_steps = 2 in
  let j = iv "gj" in
  {
    name = "btrix";
    source = "SPEC92/NASA";
    description = "block-tridiagonal forward elimination and backsubstitution";
    ir =
      {
        Ir.arrays =
          [
            farr "a" [ m; 8 ]; farr "b" [ m; 8 ]; farr "c" [ m; 8 ]; farr0 "f" [ m; 8 ];
            { Ir.a_name = "prow"; a_dims = [ m; 8 ]; a_init = `Zero; a_float = false };
          ];
        int_scalars = [ "gj"; "pj" ];
        float_scalars = [ "pivot" ];
        procs =
          [
            (* Element-parallel block-row update through a pivot-row
               indirection: the row index itself streams from memory, so
               the row's loads wait in the queue on a missing load. This
               is what makes btrix window-limited — and what makes it lose
               performance when the buffered iterations under-fill a large
               queue (the paper's Section 3 discussion). *)
            ( "elim_row",
              [
                Ir.Siassign ("pj", Ir.Iload ("prow", [ j; ic 0 ]));
                assign "pivot" (ld "b" [ iv "pj"; ic 0 ] +. fc 3.0);
                st "f" [ j; ic 0 ]
                  ((ld "c" [ iv "pj"; ic 0 ] *. ld "a" [ iv "pj"; ic 0 ]) /. fv "pivot");
                st "f" [ j; ic 1 ]
                  (ld "f" [ j; ic 1 ]
                  -. (ld "a" [ iv "pj"; ic 1 ] *. ld "b" [ iv "pj"; ic 1 ]));
                st "b" [ j; ic 3 ]
                  (ld "b" [ j; ic 3 ] -. (ld "a" [ iv "pj"; ic 3 ] *. ld "c" [ iv "pj"; ic 3 ]));
              ] );
          ];
        main =
          [
            (* Identity pivot permutation (no row exchanges in this
               synthetic system, but the indirection is real). *)
            for_ "p" (ic 0) (ic m) [ Ir.Sistore ("prow", [ iv "p"; ic 0 ], iv "p") ];
            for_ "t" (ic 0) (ic t_steps)
              [
                (* Dominant loop: call + bookkeeping per iteration; the
                   dynamic iteration (call plus callee) is ~90
                   instructions, so buffering succeeds only once the queue
                   holds call and callee together. *)
                for_ "jj" (ic 1) (ic m) [ Ir.Siassign ("gj", iv "jj"); Ir.Scall "elim_row" ];
                (* Backsubstitution: a mid-sized loop. *)
                for_ "k" (ic 1) (ic m)
                  [
                    st "f"
                      [ ic (m - 1) -! iv "k"; ic 5 ]
                      (ld "f" [ ic (m - 1) -! iv "k"; ic 5 ]
                      -. (ld "c" [ ic (m - 1) -! iv "k"; ic 5 ]
                         *. ld "b" [ ic m -! iv "k"; ic 5 ]));
                  ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* eflux — Perfect Club (FLO52-like): flux differences along edges     *)
(* with a highly-biased limiter branch inside the dominant loop.       *)
(* ------------------------------------------------------------------ *)

let eflux =
  let e = 400 in
  let t_steps = 7 in
  let i = iv "i" in
  {
    name = "eflux";
    source = "Perfect Club";
    description = "edge flux evaluation with a biased limiter branch";
    ir =
      {
        Ir.arrays =
          [
            farr "p" [ e + 2 ]; farr "q" [ e + 2 ]; farr0 "fx" [ e + 2 ]; farr0 "fy" [ e + 2 ];
            farr0 "qn" [ e + 2 ];
          ];
        int_scalars = [];
        float_scalars = [ "lim" ];
        procs = [];
        main =
          [
            assign "lim" (fc 1000.0);
            for_ "t" (ic 0) (ic t_steps)
              [
                (* Small gather loop. *)
                for_ "k" (ic 0) (ic e) [ st "fy" [ iv "k" ] (ld "p" [ iv "k" ] *. fc 0.5) ];
                (* Dominant flux loop: three statements with a limiter
                   branch that essentially never fires with this data; the
                   statements carry only forward dependences, so loop
                   distribution (Section 4) can split them. *)
                for_ "i" (ic 1) (ic e)
                  [
                    Ir.Sif
                      ( Ir.Clt (fv "lim", Ir.Fabs (ld "p" [ i +! ic 1 ] -. ld "p" [ i -! ic 1 ])),
                        [ st "fx" [ i ] (fv "lim" *. ld "q" [ i ]) ],
                        [
                          st "fx" [ i ]
                            (((ld "p" [ i +! ic 1 ] -. ld "p" [ i -! ic 1 ]) *. ld "q" [ i ])
                            +. ((ld "q" [ i +! ic 1 ] -. ld "q" [ i -! ic 1 ]) *. ld "p" [ i ])
                            +. (ld "fy" [ i ] *. fc 0.25));
                        ] );
                    st "fy" [ i ]
                      (((ld "p" [ i +! ic 1 ] -. ld "p" [ i -! ic 1 ])
                       *. (ld "q" [ i +! ic 1 ] -. ld "q" [ i -! ic 1 ]))
                      +. (ld "p" [ i ] *. ld "q" [ i ] *. fc 0.125)
                      +. ld "fx" [ i -! ic 1 ]);
                    st "qn" [ i ]
                      (ld "q" [ i ] +. (fc 0.0625 *. (ld "fx" [ i ] -. ld "fy" [ i ])));
                  ];
                (* Commit the updated state: another small loop. *)
                for_ "k2" (ic 1) (ic e) [ st "q" [ iv "k2" ] (ld "qn" [ iv "k2" ]) ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* tomcat — SPEC95 tomcatv-like mesh smoothing: two large residual     *)
(* loops over the interior plus a small norm loop.                     *)
(* ------------------------------------------------------------------ *)

let tomcat =
  let n = 22 in
  let t_steps = 5 in
  let x i j = ld "mx" [ i; j ] in
  let y i j = ld "my" [ i; j ] in
  let i = iv "i" and j = iv "j" in
  let i2 = iv "i2" and j2 = iv "j2" in
  {
    name = "tomcat";
    source = "Spec95";
    description = "vectorized mesh smoothing (tomcatv-like)";
    ir =
      {
        Ir.arrays =
          [ farr "mx" [ n; n ]; farr "my" [ n; n ]; farr0 "rx" [ n; n ]; farr0 "ry" [ n; n ] ];
        int_scalars = [];
        float_scalars = [ "rnorm" ];
        procs = [];
        main =
          [
            for_ "t" (ic 0) (ic t_steps)
              [
                for_ "i" (ic 1)
                  (ic (n - 1))
                  [
                    for_ "j" (ic 1)
                      (ic (n - 1))
                      [
                        st "rx" [ i; j ]
                          (x (i +! ic 1) j +. x (i -! ic 1) j +. x i (j +! ic 1)
                          +. x i (j -! ic 1)
                          -. (fc 4.0 *. x i j));
                        st "ry" [ i; j ]
                          (y (i +! ic 1) j +. y (i -! ic 1) j +. y i (j +! ic 1)
                          +. y i (j -! ic 1)
                          -. (fc 4.0 *. y i j));
                      ];
                  ];
                for_ "i2" (ic 1)
                  (ic (n - 1))
                  [
                    for_ "j2" (ic 1)
                      (ic (n - 1))
                      [
                        st "mx" [ i2; j2 ] (x i2 j2 +. (fc 0.09375 *. ld "rx" [ i2; j2 ]));
                        st "my" [ i2; j2 ] (y i2 j2 +. (fc 0.09375 *. ld "ry" [ i2; j2 ]));
                      ];
                  ];
                (* Small norm accumulation (flattened). *)
                for_ "k" (ic 0)
                  (ic n)
                  [ assign "rnorm" (fv "rnorm" +. Ir.Fabs (ld "rx" [ ic 1; iv "k" ])) ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* tsf — Perfect Club: tight serial recurrences (first-order linear    *)
(* solve forward) — the smallest loops of the suite.                   *)
(* ------------------------------------------------------------------ *)

let tsf =
  let n = 256 in
  let t_steps = 40 in
  {
    name = "tsf";
    source = "Perfect Club";
    description = "tight first-order recurrence and reduction loops";
    ir =
      {
        Ir.arrays = [ farr "xx" [ n ]; farr "yy" [ n ]; farr "zz" [ n ] ];
        int_scalars = [];
        float_scalars = [ "acc" ];
        procs = [];
        main =
          [
            assign "acc" (fc 0.0);
            for_ "t" (ic 0) (ic t_steps)
              [
                for_ "i" (ic 1) (ic n)
                  [
                    st "xx" [ iv "i" ]
                      (ld "zz" [ iv "i" ] *. (ld "yy" [ iv "i" ] -. ld "xx" [ iv "i" -! ic 1 ]));
                  ];
                for_ "j" (ic 0) (ic n)
                  [ assign "acc" (fv "acc" +. (ld "xx" [ iv "j" ] *. fc 0.001)) ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* vpenta — SPEC92/NASA: pentadiagonal inversion; the dominant loop    *)
(* body is so large that only a 256-entry queue captures it.           *)
(* ------------------------------------------------------------------ *)

let vpenta =
  let n = 64 in
  let t_steps = 14 in
  let i = iv "i" in
  let l name k = ld name [ i +! ic k ] in
  {
    name = "vpenta";
    source = "Spec92/NASA";
    description = "pentadiagonal matrix inversion sweeps";
    ir =
      {
        Ir.arrays =
          [
            farr "va" [ n + 4 ]; farr "vb" [ n + 4 ]; farr "vc" [ n + 4 ]; farr "vd" [ n + 4 ];
            farr "ve" [ n + 4 ]; farr0 "vf" [ n + 4 ]; farr0 "vg" [ n + 4 ];
            farr0 "t1" [ n + 4 ]; farr0 "t2" [ n + 4 ];
          ];
        int_scalars = [];
        float_scalars = [];
        procs = [];
        main =
          [
            for_ "t" (ic 0) (ic t_steps)
              [
                (* Small scaling loop. *)
                for_ "k" (ic 0) (ic n) [ st "vg" [ iv "k" ] (ld "va" [ iv "k" ] *. fc 0.5) ];
                (* Dominant elimination loop: the multiplier temporaries
                   live in arrays (t1, t2), so every statement carries
                   only forward dependences and the loop distributes. *)
                for_ "i" (ic 2)
                  (ic (n - 2))
                  [
                    st "t1" [ i ] (l "va" (-1) /. (l "vb" (-1) +. fc 2.0));
                    st "t2" [ i ] (l "va" (-2) /. (l "vb" (-2) +. fc 3.0));
                    st "vc" [ i ]
                      (l "vc" 0 -. (l "t1" 0 *. l "vd" (-1)) -. (l "t2" 0 *. l "ve" (-2)));
                    st "vd" [ i ]
                      (l "vd" 0 -. (l "t1" 0 *. l "ve" (-1)) -. (l "t2" 0 *. l "vg" (-2)));
                    st "vf" [ i ]
                      (l "vf" 0 -. (l "t1" 0 *. l "vf" (-1)) -. (l "t2" 0 *. l "vf" (-2)));
                    st "ve" [ i ]
                      (l "ve" 0 -. (l "t1" 0 *. l "vg" (-1)) +. (l "t2" 0 *. l "va" 1));
                    st "vg" [ i ] ((l "vg" 0 +. l "vb" 1) *. fc 0.5 -. (l "t1" 0 *. l "vg" (-1)));
                  ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* wss — Perfect Club: small weighted-stencil smoothing loops.         *)
(* ------------------------------------------------------------------ *)

let wss =
  let n = 320 in
  let t_steps = 24 in
  {
    name = "wss";
    source = "Perfect Club";
    description = "weighted 1-D stencil smoothing and reduction";
    ir =
      {
        Ir.arrays = [ farr "sx" [ n + 2 ]; farr0 "sy" [ n + 2 ] ];
        int_scalars = [];
        float_scalars = [ "wsum" ];
        procs = [];
        main =
          [
            for_ "t" (ic 0) (ic t_steps)
              [
                for_ "i" (ic 1) (ic n)
                  [
                    st "sy" [ iv "i" ]
                      ((fc 0.25 *. ld "sx" [ iv "i" -! ic 1 ])
                      +. (fc 0.75 *. ld "sx" [ iv "i" ]));
                  ];
                for_ "j" (ic 1) (ic n)
                  [ assign "wsum" (fv "wsum" +. (ld "sy" [ iv "j" ] *. fc 0.01)) ];
                for_ "k" (ic 1) (ic n) [ st "sx" [ iv "k" ] (ld "sy" [ iv "k" ] *. fc 0.999) ];
              ];
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* mxm — dense matrix-matrix multiply. Not part of Table 2: kept out   *)
(* of [all] so the paper's sweep (and its cached results) is           *)
(* untouched, but available through [find] as the observability demo — *)
(* its tight 5-instruction dot-product loop promotes to Code Reuse     *)
(* hundreds of times, which makes for a legible Perfetto trace.        *)
(* ------------------------------------------------------------------ *)

let mxm =
  let n = 14 in
  let t_steps = 2 in
  {
    name = "mxm";
    source = "Livermore";
    description = "dense matrix-matrix multiply (observability demo)";
    ir =
      {
        Ir.arrays = [ farr "ma" [ n; n ]; farr "mb" [ n; n ]; farr0 "mc" [ n; n ] ];
        int_scalars = [];
        float_scalars = [ "s" ];
        procs = [];
        main =
          [
            for_ "t" (ic 0) (ic t_steps)
              [
                for_ "i" (ic 0) (ic n)
                  [
                    for_ "j" (ic 0) (ic n)
                      [
                        assign "s" (fc 0.0);
                        for_ "k" (ic 0) (ic n)
                          [
                            assign "s"
                              (fv "s"
                              +. (ld "ma" [ iv "i"; iv "k" ] *. ld "mb" [ iv "k"; iv "j" ]));
                          ];
                        st "mc" [ iv "i"; iv "j" ] (fv "s");
                      ];
                  ];
              ];
          ];
      };
  }

let all = [ adi; aps; btrix; eflux; tomcat; tsf; vpenta; wss ]
let extras = [ mxm ]

let find name = List.find (fun w -> w.name = name) (all @ extras)

let program w = Codegen.compile w.ir
let optimized_ir w = Distribute.distribute_program w.ir
let optimized w = Codegen.compile (optimized_ir w)
let loop_profile w = snd (Codegen.compile_info w.ir)
