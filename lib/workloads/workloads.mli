open Riq_asm
open Riq_loopir

(** The eight array-intensive applications of Table 2, as synthetic RIQ32
    kernels.

    The original SPEC/Perfect-Club/Livermore Fortran sources and the
    SimpleScalar cross-compilation toolchain are unavailable, so each
    kernel implements the same numerical access-pattern class as its
    namesake and is calibrated so its {e loop structure} — innermost-loop
    body size in instructions, nesting, trip counts, procedure calls and
    intra-loop branches — reproduces the per-benchmark behaviour the paper
    reports (see DESIGN.md): [aps], [tsf], [wss] are tight-loop codes whose
    dominant loops fit a 32-entry issue queue; [adi], [btrix], [eflux],
    [tomcat], [vpenta] are dominated by large loop bodies that only a
    128/256-entry queue can capture ([btrix]'s dominant loop is ~90
    instructions); every kernel also contains small auxiliary loops
    (initialisation, reductions) that small queues can capture. *)

type t = {
  name : string;
  source : string; (** provenance per Table 2, e.g. "Livermore" *)
  description : string;
  ir : Ir.program;
}

val all : t list
(** In Table 2 order: adi, aps, btrix, eflux, tomcat, tsf, vpenta, wss. *)

val extras : t list
(** Kernels outside Table 2 — currently [mxm], a dense matrix multiply
    used by the tracing walkthrough. Deliberately not in {!all} so the
    paper's sweep (and any cached sweep results) is unaffected. *)

val find : string -> t
(** Searches {!all} then {!extras}. Raises [Not_found]. *)

val program : t -> Program.t
(** Compiled original code. *)

val optimized : t -> Program.t
(** Loop-distributed code (the Section 4 comparison). *)

val optimized_ir : t -> Ir.program

val loop_profile : t -> Codegen.loop_info list
(** Static loop-body sizes of the original code. *)
