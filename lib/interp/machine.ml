open Riq_util
open Riq_isa
open Riq_asm
open Riq_mem

type t = {
  program : Program.t;
  words : Packed.word array; (* program text packed once at create *)
  memory : Store.t;
  int_regs : int array;
  fp_regs : float array;
  mutable pc : int;
  mutable count : int;
  mutable halted : bool;
}

type stop = Halted | Insn_limit | Bad_pc of int

let default_sp = 0x7FFF_F000

let create program =
  let memory = Store.create () in
  Program.load program ~write_word:(Store.write_word memory);
  let int_regs = Array.make 32 0 in
  int_regs.(Reg.sp) <- default_sp;
  {
    program;
    words = Packed.of_code_array program.Program.code;
    memory;
    int_regs;
    fp_regs = Array.make 32 0.;
    pc = program.Program.entry;
    count = 0;
    halted = false;
  }

let pc t = t.pc
let insn_count t = t.count
let mem t = t.memory

let reg t r =
  if Reg.is_fp r then invalid_arg "Machine.reg: FP register";
  Bits.of_i32 t.int_regs.(Reg.index r)

let freg t r =
  if not (Reg.is_fp r) then invalid_arg "Machine.freg: integer register";
  t.fp_regs.(Reg.index r)

let set_reg t r v =
  if Reg.is_fp r then invalid_arg "Machine.set_reg: FP register";
  if r <> Reg.zero then t.int_regs.(Reg.index r) <- Bits.of_i32 v

let set_freg t r v =
  if not (Reg.is_fp r) then invalid_arg "Machine.set_freg: integer register";
  t.fp_regs.(Reg.index r) <- Semantics.to_single v

(* Operand access for the packed path, as top-level functions so the hot
   loop builds no closures. Integer registers index the file directly;
   FP register numbers are offset by 32 (see {!Reg}). *)
let rv_ t r = Bits.of_i32 t.int_regs.(r)
let fv_ t r = t.fp_regs.(r - 32)
let wr_ t r v = if r <> 0 then t.int_regs.(r) <- Bits.of_i32 v
let wf_ t r v = t.fp_regs.(r - 32) <- Semantics.to_single v

let step t =
  if t.halted then Some Halted
  else begin
    match Program.insn_at t.program t.pc with
    | None -> Some (Bad_pc t.pc)
    | Some insn ->
        let rv r = Bits.of_i32 t.int_regs.(Reg.index r) in
        let fv r = t.fp_regs.(Reg.index r) in
        let wr r v = if r <> Reg.zero then t.int_regs.(Reg.index r) <- Bits.of_i32 v in
        let wf r v = t.fp_regs.(Reg.index r) <- Semantics.to_single v in
        let next = t.pc + 4 in
        let new_pc = ref next in
        (match insn with
        | Insn.Alu (op, rd, rs, rt) -> wr rd (Semantics.alu op (rv rs) (rv rt))
        | Alui (op, rt, rs, imm) -> wr rt (Semantics.alu op (rv rs) (Semantics.alui_imm op imm))
        | Shift (op, rd, rt, sh) -> wr rd (Semantics.shift op (rv rt) sh)
        | Shiftv (op, rd, rt, rs) -> wr rd (Semantics.shift op (rv rt) (rv rs))
        | Lui (rt, imm) -> wr rt (Bits.of_i32 (imm lsl 16))
        | Mul (rd, rs, rt) -> wr rd (Semantics.mul (rv rs) (rv rt))
        | Div (rd, rs, rt) -> wr rd (Semantics.div (rv rs) (rv rt))
        | Fpu (op, fd, fs, ft) -> wf fd (Semantics.fpu op (fv fs) (fv ft))
        | Fcmp (op, rd, fs, ft) -> wr rd (Semantics.fcmp op (fv fs) (fv ft))
        | Cvtsw (fd, rs) -> wf fd (Semantics.cvt_s_w (rv rs))
        | Cvtws (rd, fs) -> wr rd (Semantics.cvt_w_s (fv fs))
        | Lw (rt, base, off) -> wr rt (Store.read_word t.memory (Bits.add32 (rv base) off))
        | Lb (rt, base, off) ->
            wr rt (Bits.sign_extend (Store.read_byte t.memory (Bits.add32 (rv base) off)) ~width:8)
        | Lbu (rt, base, off) -> wr rt (Store.read_byte t.memory (Bits.add32 (rv base) off))
        | Lh (rt, base, off) ->
            wr rt (Bits.sign_extend (Store.read_half t.memory (Bits.add32 (rv base) off)) ~width:16)
        | Lhu (rt, base, off) -> wr rt (Store.read_half t.memory (Bits.add32 (rv base) off))
        | Sw (rt, base, off) ->
            Store.write_word t.memory (Bits.add32 (rv base) off) (Bits.to_u32 (rv rt))
        | Sb (rt, base, off) -> Store.write_byte t.memory (Bits.add32 (rv base) off) (rv rt)
        | Sh (rt, base, off) -> Store.write_half t.memory (Bits.add32 (rv base) off) (rv rt)
        | Lwf (ft, base, off) -> wf ft (Store.read_float t.memory (Bits.add32 (rv base) off))
        | Swf (ft, base, off) -> Store.write_float t.memory (Bits.add32 (rv base) off) (fv ft)
        | Br (cond, rs, rt, off) ->
            if Semantics.branch_taken cond (rv rs) (rv rt) then new_pc := t.pc + 4 + (4 * off)
        | J tgt -> new_pc := 4 * tgt
        | Jal tgt ->
            wr Reg.ra next;
            new_pc := 4 * tgt
        | Jr rs -> new_pc := rv rs
        | Jalr (rd, rs) ->
            let target = rv rs in
            wr rd next;
            new_pc := target
        | Nop -> ()
        | Halt -> t.halted <- true);
        t.count <- t.count + 1;
        t.pc <- !new_pc;
        if t.halted then Some Halted else None
  end

(* Packed execution: the same semantics as {!step}, dispatched on the
   packed word's execution code instead of reconstructing an [Insn.t].
   [step] stays on the constructor path and serves as the oracle for the
   fast/slow interpreter equality test. *)

let exec_word t w =
  let a = Packed.ra w and b = Packed.rb w in
  let imm = Packed.imm w in
  (* Register fields carry Reg.t values verbatim: integer registers are
     their own index, FP registers are offset by 32. *)
  let next = t.pc + 4 in
  let new_pc = ref next in
  (match Packed.code w with
  | 0 -> wr_ t a (Semantics.alu Insn.Add (rv_ t b) (rv_ t (Packed.rc w)))
  | 1 -> wr_ t a (Semantics.alu Insn.Sub (rv_ t b) (rv_ t (Packed.rc w)))
  | 2 -> wr_ t a (Semantics.alu Insn.And (rv_ t b) (rv_ t (Packed.rc w)))
  | 3 -> wr_ t a (Semantics.alu Insn.Or (rv_ t b) (rv_ t (Packed.rc w)))
  | 4 -> wr_ t a (Semantics.alu Insn.Xor (rv_ t b) (rv_ t (Packed.rc w)))
  | 5 -> wr_ t a (Semantics.alu Insn.Nor (rv_ t b) (rv_ t (Packed.rc w)))
  | 6 -> wr_ t a (Semantics.alu Insn.Slt (rv_ t b) (rv_ t (Packed.rc w)))
  | 7 -> wr_ t a (Semantics.alu Insn.Sltu (rv_ t b) (rv_ t (Packed.rc w)))
  | 8 -> wr_ t a (Semantics.alu Insn.Add (rv_ t b) (Semantics.alui_imm Insn.Add imm))
  | 9 -> wr_ t a (Semantics.alu Insn.And (rv_ t b) (Semantics.alui_imm Insn.And imm))
  | 10 -> wr_ t a (Semantics.alu Insn.Or (rv_ t b) (Semantics.alui_imm Insn.Or imm))
  | 11 -> wr_ t a (Semantics.alu Insn.Xor (rv_ t b) (Semantics.alui_imm Insn.Xor imm))
  | 12 -> wr_ t a (Semantics.alu Insn.Slt (rv_ t b) (Semantics.alui_imm Insn.Slt imm))
  | 13 -> wr_ t a (Semantics.alu Insn.Sltu (rv_ t b) (Semantics.alui_imm Insn.Sltu imm))
  | 14 -> wr_ t a (Semantics.shift Insn.Sll (rv_ t b) imm)
  | 15 -> wr_ t a (Semantics.shift Insn.Srl (rv_ t b) imm)
  | 16 -> wr_ t a (Semantics.shift Insn.Sra (rv_ t b) imm)
  | 17 -> wr_ t a (Semantics.shift Insn.Sll (rv_ t b) (rv_ t (Packed.rc w)))
  | 18 -> wr_ t a (Semantics.shift Insn.Srl (rv_ t b) (rv_ t (Packed.rc w)))
  | 19 -> wr_ t a (Semantics.shift Insn.Sra (rv_ t b) (rv_ t (Packed.rc w)))
  | 20 -> wr_ t a (Bits.of_i32 (imm lsl 16))
  | 21 -> wr_ t a (Semantics.mul (rv_ t b) (rv_ t (Packed.rc w)))
  | 22 -> wr_ t a (Semantics.div (rv_ t b) (rv_ t (Packed.rc w)))
  | 23 -> wf_ t a (Semantics.fpu Insn.Fadd (fv_ t b) (fv_ t (Packed.rc w)))
  | 24 -> wf_ t a (Semantics.fpu Insn.Fsub (fv_ t b) (fv_ t (Packed.rc w)))
  | 25 -> wf_ t a (Semantics.fpu Insn.Fmul (fv_ t b) (fv_ t (Packed.rc w)))
  | 26 -> wf_ t a (Semantics.fpu Insn.Fdiv (fv_ t b) (fv_ t (Packed.rc w)))
  | 27 -> wf_ t a (Semantics.fpu Insn.Fsqrt (fv_ t b) (fv_ t (Packed.rc w)))
  | 28 -> wf_ t a (Semantics.fpu Insn.Fneg (fv_ t b) (fv_ t (Packed.rc w)))
  | 29 -> wf_ t a (Semantics.fpu Insn.Fabs (fv_ t b) (fv_ t (Packed.rc w)))
  | 30 -> wf_ t a (Semantics.fpu Insn.Fmov (fv_ t b) (fv_ t (Packed.rc w)))
  | 31 -> wr_ t a (Semantics.fcmp Insn.Feq (fv_ t b) (fv_ t (Packed.rc w)))
  | 32 -> wr_ t a (Semantics.fcmp Insn.Flt (fv_ t b) (fv_ t (Packed.rc w)))
  | 33 -> wr_ t a (Semantics.fcmp Insn.Fle (fv_ t b) (fv_ t (Packed.rc w)))
  | 34 -> wf_ t a (Semantics.cvt_s_w (rv_ t b))
  | 35 -> wr_ t a (Semantics.cvt_w_s (fv_ t b))
  | 36 -> wr_ t a (Store.read_word t.memory (Bits.add32 (rv_ t b) imm))
  | 37 ->
      wr_ t a
        (Bits.sign_extend (Store.read_byte t.memory (Bits.add32 (rv_ t b) imm)) ~width:8)
  | 38 -> wr_ t a (Store.read_byte t.memory (Bits.add32 (rv_ t b) imm))
  | 39 ->
      wr_ t a
        (Bits.sign_extend (Store.read_half t.memory (Bits.add32 (rv_ t b) imm)) ~width:16)
  | 40 -> wr_ t a (Store.read_half t.memory (Bits.add32 (rv_ t b) imm))
  | 41 -> wf_ t a (Store.read_float t.memory (Bits.add32 (rv_ t b) imm))
  | 42 -> Store.write_word t.memory (Bits.add32 (rv_ t b) imm) (Bits.to_u32 (rv_ t a))
  | 43 -> Store.write_byte t.memory (Bits.add32 (rv_ t b) imm) (rv_ t a)
  | 44 -> Store.write_half t.memory (Bits.add32 (rv_ t b) imm) (rv_ t a)
  | 45 -> Store.write_float t.memory (Bits.add32 (rv_ t b) imm) (fv_ t a)
  | 46 -> if Semantics.branch_taken Insn.Beq (rv_ t a) (rv_ t b) then new_pc := t.pc + 4 + (4 * imm)
  | 47 -> if Semantics.branch_taken Insn.Bne (rv_ t a) (rv_ t b) then new_pc := t.pc + 4 + (4 * imm)
  | 48 -> if Semantics.branch_taken Insn.Blez (rv_ t a) (rv_ t b) then new_pc := t.pc + 4 + (4 * imm)
  | 49 -> if Semantics.branch_taken Insn.Bgtz (rv_ t a) (rv_ t b) then new_pc := t.pc + 4 + (4 * imm)
  | 50 -> if Semantics.branch_taken Insn.Bltz (rv_ t a) (rv_ t b) then new_pc := t.pc + 4 + (4 * imm)
  | 51 -> if Semantics.branch_taken Insn.Bgez (rv_ t a) (rv_ t b) then new_pc := t.pc + 4 + (4 * imm)
  | 52 -> new_pc := 4 * imm
  | 53 ->
      wr_ t Reg.ra next;
      new_pc := 4 * imm
  | 54 | 55 -> new_pc := rv_ t a
  | 56 ->
      let target = rv_ t b in
      wr_ t a next;
      new_pc := target
  | 57 -> ()
  | 58 -> t.halted <- true
  | _ -> invalid_arg "Machine.exec_word");
  t.count <- t.count + 1;
  t.pc <- !new_pc

let run ?(limit = 100_000_000) t =
  let words = t.words in
  let base = t.program.Program.text_base in
  let n4 = 4 * Array.length words in
  let rec go () =
    if t.count >= limit then Insn_limit
    else if t.halted then Halted
    else begin
      let off = t.pc - base in
      if t.pc land 3 <> 0 || off < 0 || off >= n4 then Bad_pc t.pc
      else begin
        exec_word t (Array.unsafe_get words (off lsr 2));
        go ()
      end
    end
  in
  go ()

type arch_state = {
  final_pc : int;
  instructions : int;
  int_regs : int array;
  fp_regs : float array;
  memory : (int * int) list;
}

let arch_state t =
  {
    final_pc = t.pc;
    instructions = t.count;
    int_regs = Array.copy t.int_regs;
    fp_regs = Array.copy t.fp_regs;
    memory =
      List.rev (Store.fold_nonzero t.memory ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc));
  }

let equal_arch a b =
  a.final_pc = b.final_pc && a.instructions = b.instructions
  && a.int_regs = b.int_regs
  && Array.for_all2 (fun (x : float) y -> Int32.bits_of_float x = Int32.bits_of_float y)
       a.fp_regs b.fp_regs
  && a.memory = b.memory

let pp_arch_diff ppf a b =
  let shown = ref 0 in
  let report fmt =
    incr shown;
    Format.fprintf ppf fmt
  in
  if a.final_pc <> b.final_pc then report "final pc: %#x vs %#x@." a.final_pc b.final_pc;
  if a.instructions <> b.instructions then
    report "instruction count: %d vs %d@." a.instructions b.instructions;
  for i = 0 to 31 do
    if !shown < 8 && a.int_regs.(i) <> b.int_regs.(i) then
      report "r%d: %d vs %d@." i a.int_regs.(i) b.int_regs.(i);
    if !shown < 8 && Int32.bits_of_float a.fp_regs.(i) <> Int32.bits_of_float b.fp_regs.(i)
    then report "f%d: %h vs %h@." i a.fp_regs.(i) b.fp_regs.(i)
  done;
  if !shown < 8 && a.memory <> b.memory then begin
    let ha = Hashtbl.create 64 and hb = Hashtbl.create 64 in
    List.iter (fun (k, v) -> Hashtbl.replace ha k v) a.memory;
    List.iter (fun (k, v) -> Hashtbl.replace hb k v) b.memory;
    let check src dst tag =
      Hashtbl.iter
        (fun addr v ->
          if !shown < 8 then begin
            match Hashtbl.find_opt dst addr with
            | Some v' when v' = v -> ()
            | Some v' -> report "mem[%#x]: %d vs %d@." addr v v'
            | None -> report "mem[%#x]: %s only (%d)@." addr tag v
          end)
        src
    in
    check ha hb "left";
    check hb ha "right"
  end;
  if !shown = 0 then Format.fprintf ppf "states are equal@."

let diff_string a b =
  Format.asprintf "%a" (fun ppf () -> pp_arch_diff ppf a b) ()
