open Riq_util
open Riq_isa
open Riq_asm
open Riq_mem

type t = {
  program : Program.t;
  memory : Store.t;
  int_regs : int array;
  fp_regs : float array;
  mutable pc : int;
  mutable count : int;
  mutable halted : bool;
}

type stop = Halted | Insn_limit | Bad_pc of int

let default_sp = 0x7FFF_F000

let create program =
  let memory = Store.create () in
  Program.load program ~write_word:(Store.write_word memory);
  let int_regs = Array.make 32 0 in
  int_regs.(Reg.sp) <- default_sp;
  {
    program;
    memory;
    int_regs;
    fp_regs = Array.make 32 0.;
    pc = program.Program.entry;
    count = 0;
    halted = false;
  }

let pc t = t.pc
let insn_count t = t.count
let mem t = t.memory

let reg t r =
  if Reg.is_fp r then invalid_arg "Machine.reg: FP register";
  Bits.of_i32 t.int_regs.(Reg.index r)

let freg t r =
  if not (Reg.is_fp r) then invalid_arg "Machine.freg: integer register";
  t.fp_regs.(Reg.index r)

let set_reg t r v =
  if Reg.is_fp r then invalid_arg "Machine.set_reg: FP register";
  if r <> Reg.zero then t.int_regs.(Reg.index r) <- Bits.of_i32 v

let set_freg t r v =
  if not (Reg.is_fp r) then invalid_arg "Machine.set_freg: integer register";
  t.fp_regs.(Reg.index r) <- Semantics.to_single v

let step t =
  if t.halted then Some Halted
  else begin
    match Program.insn_at t.program t.pc with
    | None -> Some (Bad_pc t.pc)
    | Some insn ->
        let rv r = Bits.of_i32 t.int_regs.(Reg.index r) in
        let fv r = t.fp_regs.(Reg.index r) in
        let wr r v = if r <> Reg.zero then t.int_regs.(Reg.index r) <- Bits.of_i32 v in
        let wf r v = t.fp_regs.(Reg.index r) <- Semantics.to_single v in
        let next = t.pc + 4 in
        let new_pc = ref next in
        (match insn with
        | Insn.Alu (op, rd, rs, rt) -> wr rd (Semantics.alu op (rv rs) (rv rt))
        | Alui (op, rt, rs, imm) -> wr rt (Semantics.alu op (rv rs) (Semantics.alui_imm op imm))
        | Shift (op, rd, rt, sh) -> wr rd (Semantics.shift op (rv rt) sh)
        | Shiftv (op, rd, rt, rs) -> wr rd (Semantics.shift op (rv rt) (rv rs))
        | Lui (rt, imm) -> wr rt (Bits.of_i32 (imm lsl 16))
        | Mul (rd, rs, rt) -> wr rd (Semantics.mul (rv rs) (rv rt))
        | Div (rd, rs, rt) -> wr rd (Semantics.div (rv rs) (rv rt))
        | Fpu (op, fd, fs, ft) -> wf fd (Semantics.fpu op (fv fs) (fv ft))
        | Fcmp (op, rd, fs, ft) -> wr rd (Semantics.fcmp op (fv fs) (fv ft))
        | Cvtsw (fd, rs) -> wf fd (Semantics.cvt_s_w (rv rs))
        | Cvtws (rd, fs) -> wr rd (Semantics.cvt_w_s (fv fs))
        | Lw (rt, base, off) -> wr rt (Store.read_word t.memory (Bits.add32 (rv base) off))
        | Lb (rt, base, off) ->
            wr rt (Bits.sign_extend (Store.read_byte t.memory (Bits.add32 (rv base) off)) ~width:8)
        | Lbu (rt, base, off) -> wr rt (Store.read_byte t.memory (Bits.add32 (rv base) off))
        | Lh (rt, base, off) ->
            wr rt (Bits.sign_extend (Store.read_half t.memory (Bits.add32 (rv base) off)) ~width:16)
        | Lhu (rt, base, off) -> wr rt (Store.read_half t.memory (Bits.add32 (rv base) off))
        | Sw (rt, base, off) ->
            Store.write_word t.memory (Bits.add32 (rv base) off) (Bits.to_u32 (rv rt))
        | Sb (rt, base, off) -> Store.write_byte t.memory (Bits.add32 (rv base) off) (rv rt)
        | Sh (rt, base, off) -> Store.write_half t.memory (Bits.add32 (rv base) off) (rv rt)
        | Lwf (ft, base, off) -> wf ft (Store.read_float t.memory (Bits.add32 (rv base) off))
        | Swf (ft, base, off) -> Store.write_float t.memory (Bits.add32 (rv base) off) (fv ft)
        | Br (cond, rs, rt, off) ->
            if Semantics.branch_taken cond (rv rs) (rv rt) then new_pc := t.pc + 4 + (4 * off)
        | J tgt -> new_pc := 4 * tgt
        | Jal tgt ->
            wr Reg.ra next;
            new_pc := 4 * tgt
        | Jr rs -> new_pc := rv rs
        | Jalr (rd, rs) ->
            let target = rv rs in
            wr rd next;
            new_pc := target
        | Nop -> ()
        | Halt -> t.halted <- true);
        t.count <- t.count + 1;
        t.pc <- !new_pc;
        if t.halted then Some Halted else None
  end

let run ?(limit = 100_000_000) t =
  let rec go () =
    if t.count >= limit then Insn_limit
    else
      match step t with
      | Some reason -> reason
      | None -> go ()
  in
  go ()

type arch_state = {
  final_pc : int;
  instructions : int;
  int_regs : int array;
  fp_regs : float array;
  memory : (int * int) list;
}

let arch_state t =
  {
    final_pc = t.pc;
    instructions = t.count;
    int_regs = Array.copy t.int_regs;
    fp_regs = Array.copy t.fp_regs;
    memory =
      List.rev (Store.fold_nonzero t.memory ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc));
  }

let equal_arch a b =
  a.final_pc = b.final_pc && a.instructions = b.instructions
  && a.int_regs = b.int_regs
  && Array.for_all2 (fun (x : float) y -> Int32.bits_of_float x = Int32.bits_of_float y)
       a.fp_regs b.fp_regs
  && a.memory = b.memory

let pp_arch_diff ppf a b =
  let shown = ref 0 in
  let report fmt =
    incr shown;
    Format.fprintf ppf fmt
  in
  if a.final_pc <> b.final_pc then report "final pc: %#x vs %#x@." a.final_pc b.final_pc;
  if a.instructions <> b.instructions then
    report "instruction count: %d vs %d@." a.instructions b.instructions;
  for i = 0 to 31 do
    if !shown < 8 && a.int_regs.(i) <> b.int_regs.(i) then
      report "r%d: %d vs %d@." i a.int_regs.(i) b.int_regs.(i);
    if !shown < 8 && Int32.bits_of_float a.fp_regs.(i) <> Int32.bits_of_float b.fp_regs.(i)
    then report "f%d: %h vs %h@." i a.fp_regs.(i) b.fp_regs.(i)
  done;
  if !shown < 8 && a.memory <> b.memory then begin
    let ha = Hashtbl.create 64 and hb = Hashtbl.create 64 in
    List.iter (fun (k, v) -> Hashtbl.replace ha k v) a.memory;
    List.iter (fun (k, v) -> Hashtbl.replace hb k v) b.memory;
    let check src dst tag =
      Hashtbl.iter
        (fun addr v ->
          if !shown < 8 then begin
            match Hashtbl.find_opt dst addr with
            | Some v' when v' = v -> ()
            | Some v' -> report "mem[%#x]: %d vs %d@." addr v v'
            | None -> report "mem[%#x]: %s only (%d)@." addr tag v
          end)
        src
    in
    check ha hb "left";
    check hb ha "right"
  end;
  if !shown = 0 then Format.fprintf ppf "states are equal@."

let diff_string a b =
  Format.asprintf "%a" (fun ppf () -> pp_arch_diff ppf a b) ()
