open Riq_isa
open Riq_asm
open Riq_mem

(** Functional (in-order, one instruction at a time) reference simulator.

    This is the golden model: it defines the architectural meaning of a
    program. The out-of-order simulators are validated by running the same
    program on both and comparing {!arch_state}. *)

type t

type stop = Halted | Insn_limit | Bad_pc of int

val create : Program.t -> t
(** Load the program into a fresh memory image; PC at the entry point,
    registers zeroed, [sp] initialised to {!default_sp}. *)

val default_sp : int
(** Initial stack pointer (grows down). *)

val step : t -> stop option
(** Execute one instruction; [Some reason] when the machine stopped. *)

val run : ?limit:int -> t -> stop
(** Step until halt or until [limit] instructions (default 100 million). *)

val pc : t -> int
val insn_count : t -> int
val reg : t -> Reg.t -> int
(** Integer register value (canonical signed 32-bit view). *)

val freg : t -> Reg.t -> float
val mem : t -> Store.t

val set_reg : t -> Reg.t -> int -> unit
val set_freg : t -> Reg.t -> float -> unit

type arch_state = {
  final_pc : int;
  instructions : int;
  int_regs : int array; (** 32 entries *)
  fp_regs : float array; (** 32 entries *)
  memory : (int * int) list; (** non-zero words, ascending addresses *)
}

val arch_state : t -> arch_state
(** Snapshot for differential comparison. *)

val equal_arch : arch_state -> arch_state -> bool
(** Architectural equality: registers, memory and instruction count (the
    final PC is included; speculative execution must not leak). *)

val pp_arch_diff : Format.formatter -> arch_state -> arch_state -> unit
(** Human-readable description of the first few differences. *)

val diff_string : arch_state -> arch_state -> string
(** {!pp_arch_diff} rendered to a single plain string — what the
    experiment runner and the fuzzer attach to a mismatch outcome. *)
