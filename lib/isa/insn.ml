type alu_op = Add | Sub | And | Or | Xor | Nor | Slt | Sltu
type shift_op = Sll | Srl | Sra
type fpu_op = Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Fabs | Fmov
type fcmp_op = Feq | Flt | Fle
type cond = Beq | Bne | Blez | Bgtz | Bltz | Bgez

type t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
  | Alui of alu_op * Reg.t * Reg.t * int
  | Shift of shift_op * Reg.t * Reg.t * int
  | Shiftv of shift_op * Reg.t * Reg.t * Reg.t
  | Lui of Reg.t * int
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t
  | Fpu of fpu_op * Reg.t * Reg.t * Reg.t
  | Fcmp of fcmp_op * Reg.t * Reg.t * Reg.t
  | Cvtsw of Reg.t * Reg.t
  | Cvtws of Reg.t * Reg.t
  | Lw of Reg.t * Reg.t * int
  | Lb of Reg.t * Reg.t * int
  | Lbu of Reg.t * Reg.t * int
  | Lh of Reg.t * Reg.t * int
  | Lhu of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Sb of Reg.t * Reg.t * int
  | Sh of Reg.t * Reg.t * int
  | Lwf of Reg.t * Reg.t * int
  | Swf of Reg.t * Reg.t * int
  | Br of cond * Reg.t * Reg.t * int
  | J of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Nop
  | Halt

type fu_class = FU_none | FU_ialu | FU_imult | FU_fpalu | FU_fpmult | FU_mem

type kind =
  | K_int
  | K_fp
  | K_load
  | K_store
  | K_branch
  | K_jump
  | K_call
  | K_return
  | K_ijump
  | K_nop
  | K_halt

let fpu_unary = function
  | Fsqrt | Fneg | Fabs | Fmov -> true
  | Fadd | Fsub | Fmul | Fdiv -> false

(* Dense execution code: one small integer per (constructor, operation)
   pair, so per-instruction properties become single array loads instead
   of nested pattern matches. [Jr] gets two codes because its kind depends
   on the source register (return vs indirect jump); both decode back to
   [Jr]. The numbering is internal — only [code_count] and the accessors
   below are meant for clients (see [Packed]). *)

let code_count = 59

let code = function
  | Alu (op, _, _, _) -> (
      match op with
      | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3
      | Xor -> 4 | Nor -> 5 | Slt -> 6 | Sltu -> 7)
  | Alui (op, _, _, _) -> (
      match op with
      | Add -> 8 | And -> 9 | Or -> 10 | Xor -> 11 | Slt -> 12 | Sltu -> 13
      | Sub | Nor -> invalid_arg "Insn.code: sub/nor have no immediate form")
  | Shift (op, _, _, _) -> ( match op with Sll -> 14 | Srl -> 15 | Sra -> 16)
  | Shiftv (op, _, _, _) -> ( match op with Sll -> 17 | Srl -> 18 | Sra -> 19)
  | Lui _ -> 20
  | Mul _ -> 21
  | Div _ -> 22
  | Fpu (op, _, _, _) -> (
      match op with
      | Fadd -> 23 | Fsub -> 24 | Fmul -> 25 | Fdiv -> 26
      | Fsqrt -> 27 | Fneg -> 28 | Fabs -> 29 | Fmov -> 30)
  | Fcmp (op, _, _, _) -> ( match op with Feq -> 31 | Flt -> 32 | Fle -> 33)
  | Cvtsw _ -> 34
  | Cvtws _ -> 35
  | Lw _ -> 36
  | Lb _ -> 37
  | Lbu _ -> 38
  | Lh _ -> 39
  | Lhu _ -> 40
  | Lwf _ -> 41
  | Sw _ -> 42
  | Sb _ -> 43
  | Sh _ -> 44
  | Swf _ -> 45
  | Br (cond, _, _, _) -> (
      match cond with
      | Beq -> 46 | Bne -> 47 | Blez -> 48 | Bgtz -> 49 | Bltz -> 50 | Bgez -> 51)
  | J _ -> 52
  | Jal _ -> 53
  | Jr rs -> if rs = Reg.ra then 54 else 55
  | Jalr _ -> 56
  | Nop -> 57
  | Halt -> 58

(* Representative instruction per code, used to derive the property
   tables from the match-based definitions below (so the tables cannot
   drift from the single source of truth). *)
let of_code c =
  let r0 = Reg.zero and r1 = Reg.r 1 in
  match c with
  | 0 -> Alu (Add, r0, r0, r0)
  | 1 -> Alu (Sub, r0, r0, r0)
  | 2 -> Alu (And, r0, r0, r0)
  | 3 -> Alu (Or, r0, r0, r0)
  | 4 -> Alu (Xor, r0, r0, r0)
  | 5 -> Alu (Nor, r0, r0, r0)
  | 6 -> Alu (Slt, r0, r0, r0)
  | 7 -> Alu (Sltu, r0, r0, r0)
  | 8 -> Alui (Add, r0, r0, 0)
  | 9 -> Alui (And, r0, r0, 0)
  | 10 -> Alui (Or, r0, r0, 0)
  | 11 -> Alui (Xor, r0, r0, 0)
  | 12 -> Alui (Slt, r0, r0, 0)
  | 13 -> Alui (Sltu, r0, r0, 0)
  | 14 -> Shift (Sll, r0, r0, 0)
  | 15 -> Shift (Srl, r0, r0, 0)
  | 16 -> Shift (Sra, r0, r0, 0)
  | 17 -> Shiftv (Sll, r0, r0, r0)
  | 18 -> Shiftv (Srl, r0, r0, r0)
  | 19 -> Shiftv (Sra, r0, r0, r0)
  | 20 -> Lui (r0, 0)
  | 21 -> Mul (r0, r0, r0)
  | 22 -> Div (r0, r0, r0)
  | 23 -> Fpu (Fadd, Reg.f 0, Reg.f 0, Reg.f 0)
  | 24 -> Fpu (Fsub, Reg.f 0, Reg.f 0, Reg.f 0)
  | 25 -> Fpu (Fmul, Reg.f 0, Reg.f 0, Reg.f 0)
  | 26 -> Fpu (Fdiv, Reg.f 0, Reg.f 0, Reg.f 0)
  | 27 -> Fpu (Fsqrt, Reg.f 0, Reg.f 0, Reg.f 0)
  | 28 -> Fpu (Fneg, Reg.f 0, Reg.f 0, Reg.f 0)
  | 29 -> Fpu (Fabs, Reg.f 0, Reg.f 0, Reg.f 0)
  | 30 -> Fpu (Fmov, Reg.f 0, Reg.f 0, Reg.f 0)
  | 31 -> Fcmp (Feq, r0, Reg.f 0, Reg.f 0)
  | 32 -> Fcmp (Flt, r0, Reg.f 0, Reg.f 0)
  | 33 -> Fcmp (Fle, r0, Reg.f 0, Reg.f 0)
  | 34 -> Cvtsw (Reg.f 0, r0)
  | 35 -> Cvtws (r0, Reg.f 0)
  | 36 -> Lw (r0, r0, 0)
  | 37 -> Lb (r0, r0, 0)
  | 38 -> Lbu (r0, r0, 0)
  | 39 -> Lh (r0, r0, 0)
  | 40 -> Lhu (r0, r0, 0)
  | 41 -> Lwf (Reg.f 0, r0, 0)
  | 42 -> Sw (r0, r0, 0)
  | 43 -> Sb (r0, r0, 0)
  | 44 -> Sh (r0, r0, 0)
  | 45 -> Swf (Reg.f 0, r0, 0)
  | 46 -> Br (Beq, r0, r0, 0)
  | 47 -> Br (Bne, r0, r0, 0)
  | 48 -> Br (Blez, r0, r0, 0)
  | 49 -> Br (Bgtz, r0, r0, 0)
  | 50 -> Br (Bltz, r0, r0, 0)
  | 51 -> Br (Bgez, r0, r0, 0)
  | 52 -> J 0
  | 53 -> Jal 0
  | 54 -> Jr Reg.ra
  | 55 -> Jr r1
  | 56 -> Jalr (r0, r0)
  | 57 -> Nop
  | 58 -> Halt
  | _ -> invalid_arg "Insn.of_code"

let kind_match = function
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Mul _ | Div _ | Fcmp _ | Cvtws _ -> K_int
  | Fpu _ | Cvtsw _ -> K_fp
  | Lw _ | Lb _ | Lbu _ | Lh _ | Lhu _ | Lwf _ -> K_load
  | Sw _ | Sb _ | Sh _ | Swf _ -> K_store
  | Br _ -> K_branch
  | J _ -> K_jump
  | Jal _ | Jalr _ -> K_call
  | Jr rs -> if rs = Reg.ra then K_return else K_ijump
  | Nop -> K_nop
  | Halt -> K_halt

let fu_match = function
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Br _ | J _ | Jal _ | Jr _ | Jalr _
  | Fcmp _ | Cvtws _ | Cvtsw _ ->
      FU_ialu
  | Mul _ | Div _ -> FU_imult
  | Fpu (op, _, _, _) -> (
      match op with
      | Fmul | Fdiv | Fsqrt -> FU_fpmult
      | Fadd | Fsub | Fneg | Fabs | Fmov -> FU_fpalu)
  | Lw _ | Lb _ | Lbu _ | Lh _ | Lhu _ | Sw _ | Sb _ | Sh _ | Lwf _ | Swf _ -> FU_mem
  | Nop | Halt -> FU_none

let latency_match = function
  | Mul _ -> 3
  | Div _ -> 20
  | Fpu (op, _, _, _) -> (
      match op with
      | Fadd | Fsub -> 2
      | Fmul -> 4
      | Fdiv -> 12
      | Fsqrt -> 24
      | Fneg | Fabs | Fmov -> 1)
  | Fcmp _ | Cvtsw _ | Cvtws _ -> 2
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Br _ | J _ | Jal _ | Jr _ | Jalr _
  | Lw _ | Lb _ | Lbu _ | Lh _ | Lhu _ | Sw _ | Sb _ | Sh _ | Lwf _ | Swf _ | Nop | Halt ->
      1

let pipelined_match = function
  | Div _ -> false
  | Fpu (Fdiv, _, _, _) | Fpu (Fsqrt, _, _, _) -> false
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Mul _ | Fpu _ | Fcmp _ | Cvtsw _
  | Cvtws _ | Lw _ | Lb _ | Lbu _ | Lh _ | Lhu _ | Sw _ | Sb _ | Sh _ | Lwf _ | Swf _
  | Br _ | J _ | Jal _ | Jr _ | Jalr _ | Nop | Halt ->
      true

let non_zero rs l = if rs = Reg.zero then l else rs :: l

let sources = function
  | Alu (_, _, rs, rt) | Mul (_, rs, rt) | Div (_, rs, rt) -> non_zero rs (non_zero rt [])
  | Alui (_, _, rs, _) -> non_zero rs []
  | Shift (_, _, rt, _) -> non_zero rt []
  | Shiftv (_, _, rt, rs) -> non_zero rt (non_zero rs [])
  | Lui (_, _) -> []
  | Fpu (op, _, fs, ft) -> if fpu_unary op then [ fs ] else [ fs; ft ]
  | Fcmp (_, _, fs, ft) -> [ fs; ft ]
  | Cvtsw (_, rs) -> non_zero rs []
  | Cvtws (_, fs) -> [ fs ]
  | Lw (_, base, _) | Lb (_, base, _) | Lbu (_, base, _) | Lh (_, base, _)
  | Lhu (_, base, _) | Lwf (_, base, _) ->
      non_zero base []
  | Sw (rt, base, _) | Sb (rt, base, _) | Sh (rt, base, _) -> non_zero rt (non_zero base [])
  | Swf (ft, base, _) -> ft :: non_zero base []
  | Br (cond, rs, rt, _) -> (
      match cond with
      | Beq | Bne -> non_zero rs (non_zero rt [])
      | Blez | Bgtz | Bltz | Bgez -> non_zero rs [])
  | J _ | Jal _ -> []
  | Jr rs | Jalr (_, rs) -> non_zero rs []
  | Nop | Halt -> []

let dest insn =
  let d r = if r = Reg.zero then None else Some r in
  match insn with
  | Alu (_, rd, _, _)
  | Shift (_, rd, _, _)
  | Shiftv (_, rd, _, _)
  | Mul (rd, _, _)
  | Div (rd, _, _)
  | Fcmp (_, rd, _, _)
  | Cvtws (rd, _)
  | Jalr (rd, _) ->
      d rd
  | Alui (_, rt, _, _) | Lui (rt, _) | Lw (rt, _, _) | Lb (rt, _, _) | Lbu (rt, _, _)
  | Lh (rt, _, _) | Lhu (rt, _, _) ->
      d rt
  | Fpu (_, fd, _, _) | Cvtsw (fd, _) | Lwf (fd, _, _) -> Some fd
  | Jal _ -> Some Reg.ra
  | Sw _ | Sb _ | Sh _ | Swf _ | Br _ | J _ | Jr _ | Nop | Halt -> None

let access_bytes_match = function
  | Lw _ | Sw _ | Lwf _ | Swf _ -> 4
  | Lh _ | Lhu _ | Sh _ -> 2
  | Lb _ | Lbu _ | Sb _ -> 1
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Mul _ | Div _ | Fpu _ | Fcmp _
  | Cvtsw _ | Cvtws _ | Br _ | J _ | Jal _ | Jr _ | Jalr _ | Nop | Halt ->
      invalid_arg "Insn.access_bytes: not a memory operation"

(* Properties as code-indexed tables: one shallow match ([code]) plus an
   array load per query, instead of re-walking the constructor tree. *)

let kind_table = Array.init code_count (fun c -> kind_match (of_code c))
let fu_table = Array.init code_count (fun c -> fu_match (of_code c))
let latency_table = Array.init code_count (fun c -> latency_match (of_code c))
let pipelined_table = Array.init code_count (fun c -> pipelined_match (of_code c))

let access_bytes_table =
  Array.init code_count (fun c ->
      match kind_table.(c) with
      | K_load | K_store -> access_bytes_match (of_code c)
      | K_int | K_fp | K_branch | K_jump | K_call | K_return | K_ijump | K_nop
      | K_halt ->
          0)

let kind insn = kind_table.(code insn)
let fu insn = fu_table.(code insn)
let latency insn = latency_table.(code insn)
let pipelined insn = pipelined_table.(code insn)

let access_bytes insn =
  let b = access_bytes_table.(code insn) in
  if b = 0 then invalid_arg "Insn.access_bytes: not a memory operation" else b

let is_ctrl insn =
  match kind insn with
  | K_branch | K_jump | K_call | K_return | K_ijump -> true
  | K_int | K_fp | K_load | K_store | K_nop | K_halt -> false

let is_cond_branch insn = match insn with Br _ -> true | _ -> false

let is_direct_jump insn =
  match insn with J _ | Jal _ -> true | _ -> false

let ctrl_target insn ~pc =
  match insn with
  | Br (_, _, _, off) -> Some (pc + 4 + (4 * off))
  | J tgt | Jal tgt -> Some (4 * tgt)
  | Jr _ | Jalr _ -> None
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Mul _ | Div _ | Fpu _ | Fcmp _
  | Cvtsw _ | Cvtws _ | Lw _ | Lb _ | Lbu _ | Lh _ | Lhu _ | Sw _ | Sb _ | Sh _
  | Lwf _ | Swf _ | Nop | Halt ->
      None

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Nor -> "nor"
  | Slt -> "slt"
  | Sltu -> "sltu"

let shift_name = function Sll -> "sll" | Srl -> "srl" | Sra -> "sra"

let fpu_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fsqrt -> "fsqrt"
  | Fneg -> "fneg"
  | Fabs -> "fabs"
  | Fmov -> "fmov"

let fcmp_name = function Feq -> "feq" | Flt -> "flt" | Fle -> "fle"

let cond_name = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blez -> "blez"
  | Bgtz -> "bgtz"
  | Bltz -> "bltz"
  | Bgez -> "bgez"

let rs = Reg.to_string

let to_string insn =
  match insn with
  | Alu (op, rd, r1, r2) -> Printf.sprintf "%s %s, %s, %s" (alu_name op) (rs rd) (rs r1) (rs r2)
  | Alui (op, rt, r1, imm) ->
      let mnemonic = match op with Sltu -> "sltiu" | _ -> alu_name op ^ "i" in
      Printf.sprintf "%s %s, %s, %d" mnemonic (rs rt) (rs r1) imm
  | Shift (op, rd, rt, sh) -> Printf.sprintf "%s %s, %s, %d" (shift_name op) (rs rd) (rs rt) sh
  | Shiftv (op, rd, rt, r1) ->
      Printf.sprintf "%sv %s, %s, %s" (shift_name op) (rs rd) (rs rt) (rs r1)
  | Lui (rt, imm) -> Printf.sprintf "lui %s, %d" (rs rt) imm
  | Mul (rd, r1, r2) -> Printf.sprintf "mul %s, %s, %s" (rs rd) (rs r1) (rs r2)
  | Div (rd, r1, r2) -> Printf.sprintf "div %s, %s, %s" (rs rd) (rs r1) (rs r2)
  | Fpu (op, fd, fs, ft) ->
      if fpu_unary op then Printf.sprintf "%s %s, %s" (fpu_name op) (rs fd) (rs fs)
      else Printf.sprintf "%s %s, %s, %s" (fpu_name op) (rs fd) (rs fs) (rs ft)
  | Fcmp (op, rd, fs, ft) ->
      Printf.sprintf "%s %s, %s, %s" (fcmp_name op) (rs rd) (rs fs) (rs ft)
  | Cvtsw (fd, r1) -> Printf.sprintf "cvtsw %s, %s" (rs fd) (rs r1)
  | Cvtws (rd, fs) -> Printf.sprintf "cvtws %s, %s" (rs rd) (rs fs)
  | Lw (rt, base, off) -> Printf.sprintf "lw %s, %d(%s)" (rs rt) off (rs base)
  | Lb (rt, base, off) -> Printf.sprintf "lb %s, %d(%s)" (rs rt) off (rs base)
  | Lbu (rt, base, off) -> Printf.sprintf "lbu %s, %d(%s)" (rs rt) off (rs base)
  | Lh (rt, base, off) -> Printf.sprintf "lh %s, %d(%s)" (rs rt) off (rs base)
  | Lhu (rt, base, off) -> Printf.sprintf "lhu %s, %d(%s)" (rs rt) off (rs base)
  | Sw (rt, base, off) -> Printf.sprintf "sw %s, %d(%s)" (rs rt) off (rs base)
  | Sb (rt, base, off) -> Printf.sprintf "sb %s, %d(%s)" (rs rt) off (rs base)
  | Sh (rt, base, off) -> Printf.sprintf "sh %s, %d(%s)" (rs rt) off (rs base)
  | Lwf (ft, base, off) -> Printf.sprintf "l.s %s, %d(%s)" (rs ft) off (rs base)
  | Swf (ft, base, off) -> Printf.sprintf "s.s %s, %d(%s)" (rs ft) off (rs base)
  | Br (cond, r1, r2, off) -> (
      match cond with
      | Beq | Bne -> Printf.sprintf "%s %s, %s, %d" (cond_name cond) (rs r1) (rs r2) off
      | Blez | Bgtz | Bltz | Bgez -> Printf.sprintf "%s %s, %d" (cond_name cond) (rs r1) off)
  | J tgt -> Printf.sprintf "j %d" tgt
  | Jal tgt -> Printf.sprintf "jal %d" tgt
  | Jr r1 -> Printf.sprintf "jr %s" (rs r1)
  | Jalr (rd, r1) -> Printf.sprintf "jalr %s, %s" (rs rd) (rs r1)
  | Nop -> "nop"
  | Halt -> "halt"

let pp ppf insn = Format.pp_print_string ppf (to_string insn)
let equal (a : t) (b : t) = a = b
