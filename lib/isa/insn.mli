(** RIQ32 instruction set.

    A MIPS-like 32-bit RISC ISA, large enough to compile the paper's
    array-intensive loop kernels: integer ALU, multiply/divide, single-
    precision floating point, word loads/stores for both files, the six MIPS
    compare-with-zero / compare-two-registers branches, direct and indirect
    jumps and calls, and a [halt] that terminates simulation.

    Branch and jump offsets are expressed in instruction words. A
    conditional branch at address [pc] with offset [off] targets
    [pc + 4 + 4*off] (MIPS convention, but with no delay slots — RIQ32 has
    none). Direct jumps carry an absolute word index: [j tgt] jumps to byte
    address [4*tgt]. *)

type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Nor
  | Slt  (** set on signed less-than *)
  | Sltu (** set on unsigned less-than *)

type shift_op = Sll | Srl | Sra

type fpu_op =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fsqrt (** unary; the [ft] field is ignored *)
  | Fneg  (** unary *)
  | Fabs  (** unary *)
  | Fmov  (** unary *)

type fcmp_op = Feq | Flt | Fle

val fpu_unary : fpu_op -> bool
(** Whether the operation uses only its [fs] operand. *)

type cond = Beq | Bne | Blez | Bgtz | Bltz | Bgez

type t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t (** [rd, rs, rt] *)
  | Alui of alu_op * Reg.t * Reg.t * int
      (** [rt, rs, imm16]; the immediate is sign-extended for
          [Add]/[Slt]/[Sltu], zero-extended for the bitwise operations.
          [Sub]/[Nor] have no immediate form. *)
  | Shift of shift_op * Reg.t * Reg.t * int (** [rd, rt, shamt] *)
  | Shiftv of shift_op * Reg.t * Reg.t * Reg.t (** [rd, rt, rs]; shift by rs&31 *)
  | Lui of Reg.t * int (** [rt, imm16] *)
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t (** signed; division by zero yields 0 *)
  | Fpu of fpu_op * Reg.t * Reg.t * Reg.t (** [fd, fs, ft] *)
  | Fcmp of fcmp_op * Reg.t * Reg.t * Reg.t (** [rd(int), fs, ft] *)
  | Cvtsw of Reg.t * Reg.t (** [fd, rs]: int register to float *)
  | Cvtws of Reg.t * Reg.t (** [rd, fs]: float to int (truncation) *)
  | Lw of Reg.t * Reg.t * int (** [rt, base, offset-bytes] *)
  | Lb of Reg.t * Reg.t * int (** sign-extending byte load *)
  | Lbu of Reg.t * Reg.t * int (** zero-extending byte load *)
  | Lh of Reg.t * Reg.t * int (** sign-extending halfword load *)
  | Lhu of Reg.t * Reg.t * int (** zero-extending halfword load *)
  | Sw of Reg.t * Reg.t * int
  | Sb of Reg.t * Reg.t * int (** stores the low 8 bits of [rt] *)
  | Sh of Reg.t * Reg.t * int (** stores the low 16 bits of [rt] *)
  | Lwf of Reg.t * Reg.t * int (** l.s: [ft, base, offset-bytes] *)
  | Swf of Reg.t * Reg.t * int
  | Br of cond * Reg.t * Reg.t * int
      (** [rs, rt, offset-words]; [Blez]..[Bgez] ignore [rt]. *)
  | J of int (** absolute word index *)
  | Jal of int (** call: writes [pc+4] to [r31] *)
  | Jr of Reg.t (** indirect jump; [jr r31] is the return idiom *)
  | Jalr of Reg.t * Reg.t (** [rd, rs] *)
  | Nop
  | Halt

(** Functional-unit class, used by the issue logic and the power model. *)
type fu_class =
  | FU_none (** nop/halt: no execution resource *)
  | FU_ialu
  | FU_imult (** integer multiply and divide *)
  | FU_fpalu
  | FU_fpmult (** FP multiply, divide, sqrt *)
  | FU_mem (** address generation + cache port *)

type kind =
  | K_int
  | K_fp
  | K_load
  | K_store
  | K_branch (** conditional branch *)
  | K_jump (** unconditional direct jump *)
  | K_call (** jal / jalr *)
  | K_return (** jr r31 *)
  | K_ijump (** jr (not return) *)
  | K_nop
  | K_halt

val code_count : int
(** Number of dense execution codes. *)

val code : t -> int
(** Dense execution code in [0, code_count): one value per
    (constructor, operation) pair, with [Jr r31] (return) and other [Jr]
    (indirect jump) split so every per-code property is exact. This is
    what makes the property tables below and the {!Packed} side tables
    single array loads. *)

val of_code : int -> t
(** Representative instruction for a code (registers/immediates zeroed);
    [code (of_code c) = c]. Raises [Invalid_argument] out of range. *)

val kind_table : kind array
val fu_table : fu_class array
val latency_table : int array
val pipelined_table : bool array

val access_bytes_table : int array
(** Indexed by {!code}; [access_bytes_table.(c)] is 0 for non-memory
    codes (where {!access_bytes} raises). *)

val kind : t -> kind
val fu : t -> fu_class

val latency : t -> int
(** Execution latency in cycles, excluding cache access time for memory
    operations (SimpleScalar-like defaults: ialu 1, imul 3, idiv 20,
    fpalu 2, fpmul 4, fpdiv 12, fpsqrt 24, agen 1). *)

val pipelined : t -> bool
(** Whether the functional unit accepts a new operation every cycle while
    executing this one (divides are not pipelined). *)

val sources : t -> Reg.t list
(** Logical source registers, [r0] excluded (it is never a dependence). *)

val dest : t -> Reg.t option
(** Logical destination register; [None] for stores, branches, [r0] writes. *)

val access_bytes : t -> int
(** Memory footprint of a load or store: 1, 2 or 4 bytes. Raises
    [Invalid_argument] for non-memory instructions. *)

val is_ctrl : t -> bool
(** True for every instruction that can redirect the PC. *)

val is_cond_branch : t -> bool
val is_direct_jump : t -> bool

val ctrl_target : t -> pc:int -> int option
(** Statically-known taken target (byte address) for branches and direct
    jumps; [None] for indirect jumps. *)

val to_string : t -> string
(** Assembler syntax, e.g. ["add r3, r1, r2"], ["lw r4, 16(r29)"],
    ["beq r1, r2, -12"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
