(** Packed instruction words: one {!Insn.t} encoded losslessly in one
    OCaml [int], plus property lookups that are a code extraction and a
    single array load.

    This is the foundation of the flat-array execution core: the whole
    program is packed once, the pipeline then indexes [int array]s for
    fetch/decode/dispatch/issue instead of matching constructors, and the
    decoded side tables (operand registers, precomputed immediates,
    static targets) are built from these words at [Processor.create]
    time.

    Layout: bits 0–5 execution code ({!Insn.code}), three 7-bit register
    fields biased by +1 (0 = none), then the raw signed immediate in the
    remaining high bits. Register fields carry the constructor arguments
    verbatim (including [r0]); [unpack (pack i) = i] exactly. *)

type word = int

val pack : Insn.t -> word
val unpack : word -> Insn.t

val code : word -> int
(** The {!Insn.code} of the packed instruction. *)

val ra : word -> int
val rb : word -> int

val rc : word -> int
(** Raw register fields (constructor argument order); [-1] when the
    constructor has no such field. *)

val imm : word -> int
(** Raw immediate field: shift amount, 16-bit ALU immediate, branch word
    offset, jump word target, or memory byte offset. *)

val kind : word -> Insn.kind
val fu : word -> Insn.fu_class
val latency : word -> int
val pipelined : word -> bool

val access_bytes : word -> int
(** 0 for non-memory codes (unlike {!Insn.access_bytes}, never raises). *)

val of_code_array : Insn.t array -> word array
(** Pack a whole text segment. *)
