(* One instruction in one OCaml int, plus code-indexed property tables.

   Word layout (low to high):

     bits  0..5   execution code (Insn.code, < 59)
     bits  6..12  register field a, biased by +1 (0 = none)
     bits 13..19  register field b, biased by +1
     bits 20..26  register field c, biased by +1
     bits 27..    raw immediate, signed (recovered with [asr 27])

   Register fields hold the constructor arguments verbatim (including
   r0); semantic filtering such as "r0 is never a dependence" belongs to
   the consumers building their own side tables. The immediate is the
   raw constructor argument too — shift amount, 16-bit immediate, branch
   offset or jump word target — so [unpack (pack i) = i] exactly.

   Field assignment per constructor (a, b, c):
     Alu/Mul/Div/Shiftv rd rs rt     -> rd, rs, rt   (Shiftv: rd rt rs)
     Alui rt rs imm / Shift rd rt sh -> rt/rd, rs/rt, imm
     Fpu fd fs ft / Fcmp rd fs ft    -> fd/rd, fs, ft
     Cvtsw fd rs / Cvtws rd fs       -> fd/rd, rs/fs
     loads/stores rt base off        -> rt, base, imm=off
     Br rs rt off                    -> rs, rt, imm=off
     J/Jal tgt                       -> imm=tgt
     Jr rs / Jalr rd rs              -> rs / rd, rs
     Lui rt imm                      -> rt, imm *)

type word = int

let a_shift = 6
let b_shift = 13
let c_shift = 20
let imm_shift = 27

let make ?(a = -1) ?(b = -1) ?(c = -1) ?(imm = 0) code =
  code
  lor ((a + 1) lsl a_shift)
  lor ((b + 1) lsl b_shift)
  lor ((c + 1) lsl c_shift)
  lor (imm lsl imm_shift)

let code w = w land 0x3F
let ra w = ((w lsr a_shift) land 0x7F) - 1
let rb w = ((w lsr b_shift) land 0x7F) - 1
let rc w = ((w lsr c_shift) land 0x7F) - 1
let imm w = w asr imm_shift

let pack insn =
  let cd = Insn.code insn in
  match insn with
  | Insn.Alu (_, rd, rs, rt) | Mul (rd, rs, rt) | Div (rd, rs, rt)
  | Fpu (_, rd, rs, rt)
  | Fcmp (_, rd, rs, rt) ->
      make cd ~a:rd ~b:rs ~c:rt
  | Shiftv (_, rd, rt, rs) -> make cd ~a:rd ~b:rt ~c:rs
  | Alui (_, rt, rs, imm) -> make cd ~a:rt ~b:rs ~imm
  | Shift (_, rd, rt, sh) -> make cd ~a:rd ~b:rt ~imm:sh
  | Lui (rt, imm) -> make cd ~a:rt ~imm
  | Cvtsw (fd, rs) -> make cd ~a:fd ~b:rs
  | Cvtws (rd, fs) -> make cd ~a:rd ~b:fs
  | Lw (rt, base, off)
  | Lb (rt, base, off)
  | Lbu (rt, base, off)
  | Lh (rt, base, off)
  | Lhu (rt, base, off)
  | Lwf (rt, base, off)
  | Sw (rt, base, off)
  | Sb (rt, base, off)
  | Sh (rt, base, off)
  | Swf (rt, base, off) ->
      make cd ~a:rt ~b:base ~imm:off
  | Br (_, rs, rt, off) -> make cd ~a:rs ~b:rt ~imm:off
  | J tgt | Jal tgt -> make cd ~imm:tgt
  | Jr rs -> make cd ~a:rs
  | Jalr (rd, rs) -> make cd ~a:rd ~b:rs
  | Nop | Halt -> make cd

let unpack w =
  let a = ra w and b = rb w and c = rc w and imm = imm w in
  match code w with
  | 0 -> Insn.Alu (Insn.Add, a, b, c)
  | 1 -> Alu (Sub, a, b, c)
  | 2 -> Alu (And, a, b, c)
  | 3 -> Alu (Or, a, b, c)
  | 4 -> Alu (Xor, a, b, c)
  | 5 -> Alu (Nor, a, b, c)
  | 6 -> Alu (Slt, a, b, c)
  | 7 -> Alu (Sltu, a, b, c)
  | 8 -> Alui (Add, a, b, imm)
  | 9 -> Alui (And, a, b, imm)
  | 10 -> Alui (Or, a, b, imm)
  | 11 -> Alui (Xor, a, b, imm)
  | 12 -> Alui (Slt, a, b, imm)
  | 13 -> Alui (Sltu, a, b, imm)
  | 14 -> Shift (Sll, a, b, imm)
  | 15 -> Shift (Srl, a, b, imm)
  | 16 -> Shift (Sra, a, b, imm)
  | 17 -> Shiftv (Sll, a, b, c)
  | 18 -> Shiftv (Srl, a, b, c)
  | 19 -> Shiftv (Sra, a, b, c)
  | 20 -> Lui (a, imm)
  | 21 -> Mul (a, b, c)
  | 22 -> Div (a, b, c)
  | 23 -> Fpu (Fadd, a, b, c)
  | 24 -> Fpu (Fsub, a, b, c)
  | 25 -> Fpu (Fmul, a, b, c)
  | 26 -> Fpu (Fdiv, a, b, c)
  | 27 -> Fpu (Fsqrt, a, b, c)
  | 28 -> Fpu (Fneg, a, b, c)
  | 29 -> Fpu (Fabs, a, b, c)
  | 30 -> Fpu (Fmov, a, b, c)
  | 31 -> Fcmp (Feq, a, b, c)
  | 32 -> Fcmp (Flt, a, b, c)
  | 33 -> Fcmp (Fle, a, b, c)
  | 34 -> Cvtsw (a, b)
  | 35 -> Cvtws (a, b)
  | 36 -> Lw (a, b, imm)
  | 37 -> Lb (a, b, imm)
  | 38 -> Lbu (a, b, imm)
  | 39 -> Lh (a, b, imm)
  | 40 -> Lhu (a, b, imm)
  | 41 -> Lwf (a, b, imm)
  | 42 -> Sw (a, b, imm)
  | 43 -> Sb (a, b, imm)
  | 44 -> Sh (a, b, imm)
  | 45 -> Swf (a, b, imm)
  | 46 -> Br (Beq, a, b, imm)
  | 47 -> Br (Bne, a, b, imm)
  | 48 -> Br (Blez, a, b, imm)
  | 49 -> Br (Bgtz, a, b, imm)
  | 50 -> Br (Bltz, a, b, imm)
  | 51 -> Br (Bgez, a, b, imm)
  | 52 -> J imm
  | 53 -> Jal imm
  | 54 | 55 -> Jr a
  | 56 -> Jalr (a, b)
  | 57 -> Nop
  | 58 -> Halt
  | _ -> invalid_arg "Packed.unpack"

(* Property lookups on words: code extraction + one array load. *)

let kind w = Insn.kind_table.(code w)
let fu w = Insn.fu_table.(code w)
let latency w = Insn.latency_table.(code w)
let pipelined w = Insn.pipelined_table.(code w)
let access_bytes w = Insn.access_bytes_table.(code w)

let of_code_array insns = Array.map pack insns
