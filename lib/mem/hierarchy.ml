type config = {
  l0i : Cache.config option;
  l1i : Cache.config;
  l1d : Cache.config;
  l2 : Cache.config;
  itlb : Cache.config;
  dtlb : Cache.config;
  tlb_miss_penalty : int;
  mem_first_chunk : int;
  mem_next_chunk : int;
  chunk_bytes : int;
}

let baseline =
  {
    l0i = None;
    (* 32 KiB, 2-way, 32 B lines -> 512 sets *)
    l1i = Cache.config ~name:"il1" ~sets:512 ~ways:2 ~line_bytes:32 ~hit_latency:1;
    (* 32 KiB, 4-way, 32 B lines -> 256 sets *)
    l1d = Cache.config ~name:"dl1" ~sets:256 ~ways:4 ~line_bytes:32 ~hit_latency:1;
    (* 256 KiB, 4-way, 64 B lines -> 1024 sets *)
    l2 = Cache.config ~name:"ul2" ~sets:1024 ~ways:4 ~line_bytes:64 ~hit_latency:8;
    itlb = Cache.config ~name:"itlb" ~sets:16 ~ways:4 ~line_bytes:4096 ~hit_latency:1;
    dtlb = Cache.config ~name:"dtlb" ~sets:32 ~ways:4 ~line_bytes:4096 ~hit_latency:1;
    tlb_miss_penalty = 30;
    mem_first_chunk = 80;
    mem_next_chunk = 8;
    chunk_bytes = 8;
  }

type t = {
  config : config;
  l0i : Cache.t option;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  itlb : Cache.t;
  dtlb : Cache.t;
  mutable n_mem : int;
  (* In-flight line fills, per L1: line index -> cycle the fill completes.
     Entries are pruned lazily on lookup. [pmax_*] holds the latest fill
     completion cycle ever registered: once [now] passes it every entry is
     stale, so the per-hit table lookup can be skipped entirely. *)
  pending_i : (int, int) Hashtbl.t;
  pending_d : (int, int) Hashtbl.t;
  pmax_i : int ref;
  pmax_d : int ref;
}

let create config =
  {
    config;
    l0i = Option.map Cache.create config.l0i;
    l1i = Cache.create config.l1i;
    l1d = Cache.create config.l1d;
    l2 = Cache.create config.l2;
    itlb = Cache.create config.itlb;
    dtlb = Cache.create config.dtlb;
    n_mem = 0;
    pending_i = Hashtbl.create 64;
    pending_d = Hashtbl.create 64;
    pmax_i = ref 0;
    pmax_d = ref 0;
  }

let cfg t = t.config

let dram_latency t ~line_bytes =
  let chunks = max 1 (line_bytes / t.config.chunk_bytes) in
  t.config.mem_first_chunk + (t.config.mem_next_chunk * (chunks - 1))

(* A miss in [l1] goes to the L2; an L2 miss goes to DRAM. The L2 access is
   charged even for the write-back of a dirty L1 victim (one extra L2
   access, no added latency: write-back buffers hide it). *)
let through_l2 t ~addr ~write ~l1 =
  match Cache.access l1 ~addr ~write with
  | Cache.Hit -> (Cache.cfg l1).hit_latency
  | Cache.Miss { dirty_evict } ->
      if dirty_evict then ignore (Cache.access t.l2 ~addr ~write:true);
      let l2_part =
        match Cache.access t.l2 ~addr ~write:false with
        | Cache.Hit -> (Cache.cfg t.l2).hit_latency
        | Cache.Miss { dirty_evict = _ } ->
            t.n_mem <- t.n_mem + 1;
            (Cache.cfg t.l2).hit_latency
            + dram_latency t ~line_bytes:(Cache.cfg t.l2).line_bytes
      in
      (Cache.cfg l1).hit_latency + l2_part

let tlb_latency t ~addr ~tlb =
  match Cache.access tlb ~addr ~write:false with
  | Cache.Hit -> 0
  | Cache.Miss _ -> t.config.tlb_miss_penalty

(* MSHR-style pending-fill adjustment: a miss registers the fill
   completion time; a subsequent access to the same line before completion
   waits for the remaining time rather than hitting instantly. [now] is a
   plain int, -1 meaning "no timing context" (no adjustment), so the
   per-access hot path allocates no option. *)
let with_pending_at ~pending ~pmax ~l1 ~now ~addr raw_latency =
  if now < 0 then raw_latency
  else begin
    let hit_lat = (Cache.cfg l1).Cache.hit_latency in
    if raw_latency > hit_lat then begin
      let line = Cache.line_index l1 ~addr in
      Hashtbl.replace pending line (now + raw_latency);
      if now + raw_latency > !pmax then pmax := now + raw_latency;
      raw_latency
    end
    else if now >= !pmax then begin
      (* Every registered fill has completed: all entries are stale, so
         skip the lookup. Empty the table once so it stays small. *)
      if Hashtbl.length pending > 0 then Hashtbl.reset pending;
      raw_latency
    end
    else begin
      let line = Cache.line_index l1 ~addr in
      match Hashtbl.find_opt pending line with
      | Some ready when ready > now -> ready - now
      | Some _ ->
          Hashtbl.remove pending line;
          raw_latency
      | None -> raw_latency
    end
  end

let l1i_path t ~now ~addr =
  let raw = through_l2 t ~addr ~write:false ~l1:t.l1i in
  with_pending_at ~pending:t.pending_i ~pmax:t.pmax_i ~l1:t.l1i ~now ~addr raw

let fetch_at t ~now ~addr =
  (* With a filter cache, an L0 hit never touches the L1I; an L0 miss
     costs the L0 probe cycle and then the normal L1I path. *)
  let tlb = tlb_latency t ~addr ~tlb:t.itlb in
  match t.l0i with
  | None -> tlb + l1i_path t ~now ~addr
  | Some l0 -> (
      match Cache.access l0 ~addr ~write:false with
      | Cache.Hit -> tlb + (Cache.cfg l0).Cache.hit_latency
      | Cache.Miss _ -> tlb + (Cache.cfg l0).Cache.hit_latency + l1i_path t ~now ~addr)

let data_at t ~now ~addr ~write =
  let tlb = tlb_latency t ~addr ~tlb:t.dtlb in
  let raw = through_l2 t ~addr ~write ~l1:t.l1d in
  let access = with_pending_at ~pending:t.pending_d ~pmax:t.pmax_d ~l1:t.l1d ~now ~addr raw in
  if write then 1 + tlb else tlb + access

let fetch t ?now ~addr () =
  fetch_at t ~now:(match now with None -> -1 | Some n -> n) ~addr

let data t ?now ~addr ~write () =
  data_at t ~now:(match now with None -> -1 | Some n -> n) ~addr ~write

let quiescent_at t ~now = now >= !(t.pmax_d) && now >= !(t.pmax_i)

let data_would_hit t ~addr =
  addr >= 0 && Cache.probe t.dtlb ~addr && Cache.probe t.l1d ~addr

let l0i t = t.l0i
let l1i t = t.l1i
let l1d t = t.l1d
let l2 t = t.l2
let itlb t = t.itlb
let dtlb t = t.dtlb
let mem_accesses t = t.n_mem

let reset_stats t =
  Cache.reset_stats t.l1i;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.itlb;
  Cache.reset_stats t.dtlb;
  t.n_mem <- 0
