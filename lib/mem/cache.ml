open Riq_util

type config = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

let config ~name ~sets ~ways ~line_bytes ~hit_latency =
  if not (Bits.is_pow2 sets) then invalid_arg "Cache.config: sets must be a power of two";
  if not (Bits.is_pow2 line_bytes) then
    invalid_arg "Cache.config: line size must be a power of two";
  if ways < 1 then invalid_arg "Cache.config: ways must be >= 1";
  if hit_latency < 1 then invalid_arg "Cache.config: hit latency must be >= 1";
  { name; sets; ways; line_bytes; hit_latency }

let size_bytes c = c.sets * c.ways * c.line_bytes

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type t = {
  config : config;
  lines : line array; (* sets * ways, row-major by set *)
  (* Shift/mask forms of the (power-of-two) geometry: integer division by
     a runtime divisor is ~25 cycles on this core; a shift is one. *)
  line_shift : int;
  set_mask : int;
  set_shift : int;
  mutable clock : int; (* monotonic, for LRU ordering *)
  mutable n_access : int;
  mutable n_hit : int;
  mutable n_dirty_evict : int;
}

type result = Hit | Miss of { dirty_evict : bool }

let create config =
  let n = config.sets * config.ways in
  {
    config;
    lines = Array.init n (fun _ -> { tag = 0; valid = false; dirty = false; lru = 0 });
    line_shift = Bits.log2 config.line_bytes;
    set_mask = config.sets - 1;
    set_shift = Bits.log2 config.sets;
    clock = 0;
    n_access = 0;
    n_hit = 0;
    n_dirty_evict = 0;
  }

let cfg t = t.config

(* Wrong-path address arithmetic can go negative; [lsr] and [/] disagree
   there, so fall back to the division (the branch predicts perfectly). *)
let line_index t ~addr =
  if addr >= 0 then addr lsr t.line_shift else addr / t.config.line_bytes

let tag_of t line_idx =
  if line_idx >= 0 then line_idx lsr t.set_shift else line_idx / t.config.sets

let set_and_tag t addr =
  let line_idx = line_index t ~addr in
  (line_idx land t.set_mask, tag_of t line_idx)

let access t ~addr ~write =
  t.n_access <- t.n_access + 1;
  t.clock <- t.clock + 1;
  let line_idx = line_index t ~addr in
  let set = line_idx land t.set_mask in
  let tag = tag_of t line_idx in
  let ways = t.config.ways in
  let base = set * ways in
  (* Imperative scans: local refs compile to stack mutables, so a hit
     allocates nothing. Tags are unique within a set, so the first match
     is the match. *)
  let hit = ref (-1) in
  let w = ref 0 in
  while !hit < 0 && !w < ways do
    let line = Array.unsafe_get t.lines (base + !w) in
    if line.valid && line.tag = tag then hit := base + !w else incr w
  done;
  if !hit >= 0 then begin
    let line = t.lines.(!hit) in
    t.n_hit <- t.n_hit + 1;
    line.lru <- t.clock;
    if write then line.dirty <- true;
    Hit
  end
  else begin
    (* Choose the eviction victim: an invalid way if any, else true LRU. *)
    let v = ref t.lines.(base) in
    for w = 1 to ways - 1 do
      let line = Array.unsafe_get t.lines (base + w) in
      let cur = !v in
      if (not line.valid) && cur.valid then v := line
      else if (not cur.valid) || not line.valid then ()
      else if line.lru < cur.lru then v := line
    done;
    let v = !v in
    let dirty_evict = v.valid && v.dirty in
    if dirty_evict then t.n_dirty_evict <- t.n_dirty_evict + 1;
    v.tag <- tag;
    v.valid <- true;
    v.dirty <- write;
    v.lru <- t.clock;
    Miss { dirty_evict }
  end

let probe t ~addr =
  let set, tag = set_and_tag t addr in
  let base = set * t.config.ways in
  let found = ref false in
  for w = 0 to t.config.ways - 1 do
    let line = t.lines.(base + w) in
    if line.valid && line.tag = tag then found := true
  done;
  !found

let flush t =
  Array.iter
    (fun line ->
      line.valid <- false;
      line.dirty <- false)
    t.lines

let accesses t = t.n_access
let hits t = t.n_hit
let misses t = t.n_access - t.n_hit
let dirty_evictions t = t.n_dirty_evict
let miss_rate t = Stats.ratio (float_of_int (misses t)) (float_of_int t.n_access)

let reset_stats t =
  t.n_access <- 0;
  t.n_hit <- 0;
  t.n_dirty_evict <- 0
