(** The full memory hierarchy of the modelled machine (Table 1 of the
    paper): split L1 instruction/data caches, a unified L2, separate
    instruction/data TLBs, and a DRAM latency model.

    The hierarchy answers latency queries for the pipeline and keeps the
    per-structure access counts the power model consumes. Data values are
    not handled here — simulators read/write their {!Store} directly and
    ask the hierarchy only "how long does this access take". *)

type config = {
  l0i : Cache.config option;
      (** optional filter cache between the fetch unit and the L1I
          (related-work baseline); a miss costs one extra cycle and then
          the normal L1I path *)
  l1i : Cache.config;
  l1d : Cache.config;
  l2 : Cache.config;
  itlb : Cache.config;
  dtlb : Cache.config;
  tlb_miss_penalty : int;
  mem_first_chunk : int; (** cycles to the first chunk from DRAM *)
  mem_next_chunk : int; (** cycles per additional chunk *)
  chunk_bytes : int;
}

val baseline : config
(** Table 1: 32 KiB 2-way L1I (1 cycle), 32 KiB 4-way L1D (1 cycle),
    256 KiB 4-way unified L2 (8 cycles), 16-set 4-way ITLB, 32-set 4-way
    DTLB with 4 KiB pages and a 30-cycle miss penalty, DRAM 80 cycles for
    the first chunk and 8 for each of the rest (8-byte chunks). *)

type t

val create : config -> t
val cfg : t -> config

val fetch_at : t -> now:int -> addr:int -> int
(** Allocation-free {!fetch}: [now] is a plain cycle number, -1 meaning
    "no timing context" (pending-fill adjustment disabled). *)

val data_at : t -> now:int -> addr:int -> write:bool -> int
(** Allocation-free {!data}; [now] as in {!fetch_at}. *)

val fetch : t -> ?now:int -> addr:int -> unit -> int
(** Latency in cycles of an instruction fetch at [addr] (ITLB + L1I + L2 +
    DRAM as needed). When [now] is supplied, in-flight line fills are
    modelled (MSHR-style): an access to a line whose fill is still pending
    waits for the remaining fill time instead of hitting instantly. *)

val data : t -> ?now:int -> addr:int -> write:bool -> unit -> int
(** Latency in cycles of a data access. Writes that miss allocate; their
    reported latency is 1 (write buffer), but the line fill still occurs
    and is charged to the counters. [now] as in {!fetch}. *)

val quiescent_at : t -> now:int -> bool
(** No in-flight line fill (instruction or data side) completes after
    [now]: every future access latency is a pure function of cache
    contents. The repeatability precondition for the loop fast-forward. *)

val data_would_hit : t -> addr:int -> bool
(** Non-mutating: a data access at [addr] would hit the DTLB and the L1D
    (so its latency is the L1D hit latency for reads, 1 for writes, and
    the access would not disturb L2/DRAM state). Combined with
    {!quiescent_at} this makes the access timing provably repeatable. *)

val l0i : t -> Cache.t option
val l1i : t -> Cache.t
val l1d : t -> Cache.t
val l2 : t -> Cache.t
val itlb : t -> Cache.t
val dtlb : t -> Cache.t

val mem_accesses : t -> int
(** Number of DRAM line fills. *)

val reset_stats : t -> unit
