let page_words = 1024 (* 4 KiB pages *)

type t = {
  pages : (int, int array) Hashtbl.t;
  (* One-entry page cache: accesses are strongly page-local, so the
     common case skips the hashtable entirely. *)
  mutable lp_idx : int;
  mutable lp_page : int array;
}

let no_page : int array = [||]

let create () = { pages = Hashtbl.create 256; lp_idx = -1; lp_page = no_page }

let find_page t page_idx =
  if t.lp_idx = page_idx then t.lp_page
  else
    match Hashtbl.find_opt t.pages page_idx with
    | None -> no_page
    | Some page ->
        t.lp_idx <- page_idx;
        t.lp_page <- page;
        page

let check_addr addr =
  if addr < 0 then invalid_arg "Store: negative address";
  if addr land 3 <> 0 then invalid_arg (Printf.sprintf "Store: misaligned address 0x%x" addr)

let read_word t addr =
  check_addr addr;
  let word_idx = addr lsr 2 in
  let page = find_page t (word_idx / page_words) in
  if page == no_page then 0 else page.(word_idx mod page_words)

let write_word t addr v =
  check_addr addr;
  let word_idx = addr lsr 2 in
  let page_idx = word_idx / page_words in
  let page =
    let page = find_page t page_idx in
    if page != no_page then page
    else begin
      let page = Array.make page_words 0 in
      Hashtbl.replace t.pages page_idx page;
      t.lp_idx <- page_idx;
      t.lp_page <- page;
      page
    end
  in
  page.(word_idx mod page_words) <- v land 0xFFFFFFFF

let read_byte t addr =
  if addr < 0 then invalid_arg "Store: negative address";
  let w = read_word t (addr land lnot 3) in
  (w lsr (8 * (addr land 3))) land 0xFF

let write_byte t addr v =
  if addr < 0 then invalid_arg "Store: negative address";
  let word_addr = addr land lnot 3 in
  let shift = 8 * (addr land 3) in
  let w = read_word t word_addr in
  write_word t word_addr (w land lnot (0xFF lsl shift) lor ((v land 0xFF) lsl shift))

let read_half t addr =
  if addr < 0 then invalid_arg "Store: negative address";
  if addr land 1 <> 0 then invalid_arg (Printf.sprintf "Store: misaligned halfword 0x%x" addr);
  let w = read_word t (addr land lnot 3) in
  (w lsr (8 * (addr land 3))) land 0xFFFF

let write_half t addr v =
  if addr < 0 then invalid_arg "Store: negative address";
  if addr land 1 <> 0 then invalid_arg (Printf.sprintf "Store: misaligned halfword 0x%x" addr);
  let word_addr = addr land lnot 3 in
  let shift = 8 * (addr land 3) in
  let w = read_word t word_addr in
  write_word t word_addr (w land lnot (0xFFFF lsl shift) lor ((v land 0xFFFF) lsl shift))

let read_float t addr = Int32.float_of_bits (Int32.of_int (read_word t addr))

let write_float t addr v = write_word t addr (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF)

let copy t =
  let t' = create () in
  Hashtbl.iter (fun k page -> Hashtbl.replace t'.pages k (Array.copy page)) t.pages;
  t'

let fold_nonzero t ~init ~f =
  let pages = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  let pages = List.sort compare pages in
  List.fold_left
    (fun acc page_idx ->
      let page = Hashtbl.find t.pages page_idx in
      let acc = ref acc in
      Array.iteri
        (fun i v ->
          if v <> 0 then acc := f !acc (4 * ((page_idx * page_words) + i)) v)
        page;
      !acc)
    init pages

let equal a b =
  let dump t = fold_nonzero t ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc) in
  dump a = dump b
