(** Set-associative cache timing model with true-LRU replacement.

    Models tags only — data contents live in {!Store}. A TLB is the same
    structure with the page size as its line size, so this module serves
    both. Write policy is write-back / write-allocate (the SimpleScalar
    default); dirty evictions are counted so the hierarchy can charge
    write-back traffic. *)

type config = {
  name : string;
  sets : int; (** power of two *)
  ways : int;
  line_bytes : int; (** power of two *)
  hit_latency : int; (** cycles *)
}

val config :
  name:string -> sets:int -> ways:int -> line_bytes:int -> hit_latency:int -> config
(** Validating constructor. *)

val size_bytes : config -> int

type t

type result = Hit | Miss of { dirty_evict : bool }

val create : config -> t
val cfg : t -> config

val line_index : t -> addr:int -> int
(** The line index containing [addr] (i.e. [addr / line_bytes], computed
    with a shift for the common non-negative case). *)

val access : t -> addr:int -> write:bool -> result
(** Look up the line containing [addr]; on a miss the line is filled
    (allocated) and the LRU way of the set is evicted. [write] marks the
    line dirty. *)

val probe : t -> addr:int -> bool
(** Non-allocating lookup: true when the line is present. Does not perturb
    LRU state; used by tests. *)

val flush : t -> unit
(** Invalidate every line (dirty contents are discarded — data is always
    current in the backing store). *)

(** {2 Statistics} *)

val accesses : t -> int
val hits : t -> int
val misses : t -> int
val dirty_evictions : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
