type t = {
  model : Model.t;
  act : float array;
  acc : float array; (* cumulative energy per component *)
  (* Per-access / per-idle energies indexed by [Component.index], copied
     out of the model so [tick] is a straight-line array loop. *)
  ea : float array;
  ia : float array;
  mutable n_cycles : int;
}

let create model =
  {
    model;
    act = Array.make Component.count 0.;
    acc = Array.make Component.count 0.;
    ea = Array.init Component.count (fun i -> Model.energy model (Component.of_index i));
    ia = Array.init Component.count (fun i -> Model.idle model (Component.of_index i));
    n_cycles = 0;
  }

let model t = t.model
let activity t = t.act
let add t c n = t.act.(Component.index c) <- t.act.(Component.index c) +. n

let clock_idx = Component.index Component.Clock

let tick t =
  t.n_cycles <- t.n_cycles + 1;
  let act = t.act and acc = t.acc and ea = t.ea and ia = t.ia in
  for i = 0 to Component.count - 1 do
    let a = Array.unsafe_get act i in
    if a > 0. then begin
      Array.unsafe_set acc i (Array.unsafe_get acc i +. (a *. Array.unsafe_get ea i));
      Array.unsafe_set act i 0.
    end
    else Array.unsafe_set acc i (Array.unsafe_get acc i +. Array.unsafe_get ia i)
  done;
  t.acc.(clock_idx) <- t.acc.(clock_idx) +. Model.clock_per_cycle t.model

let cycles t = t.n_cycles
let total_energy t = Array.fold_left ( +. ) 0. t.acc
let energy_of t c = t.acc.(Component.index c)

let group_energy t g =
  let sum = ref 0. in
  Array.iter
    (fun c -> if Component.group c = g then sum := !sum +. energy_of t c)
    Component.all;
  !sum

let avg_power t = if t.n_cycles = 0 then 0. else total_energy t /. float_of_int t.n_cycles

let group_power t g =
  if t.n_cycles = 0 then 0. else group_energy t g /. float_of_int t.n_cycles

let breakdown t =
  let total = total_energy t in
  let entries =
    Array.map
      (fun c -> (c, if total = 0. then 0. else energy_of t c /. total))
      Component.all
  in
  Array.sort (fun (_, a) (_, b) -> compare b a) entries;
  entries
