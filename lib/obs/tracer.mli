(** Structured event tracer with pluggable sinks.

    The simulator emits {e span} (begin/end), {e instant} and {e counter}
    events keyed by cycle number. Three sinks are provided:

    - {!null}: discards everything. [enabled] is [false], so guarded call
      sites ([if Tracer.enabled tr then ...]) pay one branch and no
      allocation — the default configuration is observability-free.
    - {!ring}: a bounded in-memory ring buffer; when full, the oldest
      events are overwritten ({!dropped} counts the overwrites). Use for
      programmatic inspection and post-mortem dumps.
    - {!stream}: streaming Chrome trace-event JSON written to an
      [out_channel] as events arrive — the file (after {!close}) is a
      valid JSON array loadable in Perfetto ([ui.perfetto.dev]) or
      [chrome://tracing].

    Timestamps are simulated cycles, exported 1 cycle = 1 us so trace
    viewers show meaningful durations. *)

type t

type phase =
  | Begin  (** span open — Chrome ["B"] *)
  | End  (** span close — Chrome ["E"] *)
  | Instant  (** point event — Chrome ["i"] *)
  | Counter  (** counter track sample — Chrome ["C"] *)
  | Meta  (** metadata (thread names) — Chrome ["M"] *)
  | Complete  (** self-contained span with a duration — Chrome ["X"] *)

type arg = Int of int | Float of float | Str of string

type event = {
  ts : int;  (** cycle number (core traces) or wall-clock us (service traces) *)
  ph : phase;
  name : string;
  cat : string;
  pid : int;  (** process track; see {!set_pid} *)
  tid : int;  (** track id; see {!set_thread_name} *)
  dur : int;  (** {!Complete} events only: span length in ts units *)
  args : (string * arg) list;
}

val null : unit -> t
val ring : ?capacity:int -> unit -> t
(** Bounded sink (default capacity 4096 events). *)

val stream : ?process_name:string -> out_channel -> t
(** Streaming Chrome-trace sink; the caller owns the channel but must call
    {!close} (which flushes and writes the closing bracket) before closing
    it. [process_name] (default ["riq-sim"]) labels the Perfetto process
    track. *)

val enabled : t -> bool
(** [false] only for the null sink. Call sites building argument lists
    should guard on this so the disabled tracer allocates nothing. *)

val set_pid : t -> int -> unit
(** Default process id stamped on subsequent events (initially 1). The
    serving tier sets the real Unix pid so events from several processes
    merge into one multi-process trace; core traces keep the default. *)

val pid : t -> int

val set_thread_name : t -> ?pid:int -> tid:int -> string -> unit
(** Label a track; shows as a named thread row in trace viewers. *)

val set_process_name : t -> ?pid:int -> string -> unit
(** Label a process track — what {!stream} emits automatically; ring
    traces destined for a merged multi-process file emit it themselves. *)

val begin_span :
  t -> now:int -> ?pid:int -> ?tid:int -> ?args:(string * arg) list -> cat:string ->
  string -> unit

val end_span :
  t -> now:int -> ?pid:int -> ?tid:int -> ?args:(string * arg) list -> cat:string ->
  string -> unit
(** Spans pair by (name, tid) nesting in the viewer; emit [end_span] with
    the same name/tid as the matching {!begin_span}. *)

val instant :
  t -> now:int -> ?pid:int -> ?tid:int -> ?args:(string * arg) list -> cat:string ->
  string -> unit

val complete :
  t -> now:int -> dur:int -> ?pid:int -> ?tid:int -> ?args:(string * arg) list ->
  cat:string -> string -> unit
(** One Chrome ["X"] event: a span that starts at [now] and lasts [dur],
    needing no matching end. The serving tier uses these for queue-wait
    and simulate spans, whose begin and end are known together. *)

val counter : t -> now:int -> name:string -> (string * float) list -> unit
(** One sample on counter track [name]; each pair becomes a series. *)

val recorded : t -> int
(** Events accepted since creation (including any later overwritten). *)

val dropped : t -> int
(** Ring sink only: events overwritten by newer ones. *)

val counts : t -> (string * int) list
(** Per-event-name emission counts, sorted by name. *)

val events : t -> event list
(** Ring sink: retained events, oldest first. Empty for other sinks. *)

val event_json : event -> Riq_util.Json.t
(** One event as a Chrome trace-event object. *)

val to_json : t -> Riq_util.Json.t
(** Ring sink contents as a complete Chrome trace (JSON array). *)

val summary : t -> Riq_util.Json.t
(** Sink kind, recorded/dropped totals and per-name counts — the block
    embedded in run reports. *)

val close : t -> unit
(** Finalize: for {!stream}, writes the closing bracket and flushes.
    Idempotent; a no-op for other sinks. *)
