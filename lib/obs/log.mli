(** Leveled structured logger (logfmt) for the service tier.

    One process-global logger, configured once from the environment:
    [RIQ_LOG=debug|info|warn|error] sets the threshold (default [info]),
    [RIQ_LOG_FILE=PATH] appends to a file instead of stderr. Every line
    is logfmt — [ts=<RFC3339> level=info scope=serve msg="..." k=v ...] —
    so `grep scope=serve` and any logfmt parser both work on it.

    Call sites pass a [scope] (the subsystem: ["serve"], ["store"],
    ["client"]) and optional key/value pairs; values are quoted only when
    they need it. Disabled levels cost one branch. *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> (level, string) result
val level_to_string : level -> string

val set_level : level -> unit
(** Override the environment-derived threshold (e.g. [--quiet]). *)

val level : unit -> level

val enabled : level -> bool
(** [true] when a message at this level would be emitted. *)

val set_output : out_channel -> unit
(** Redirect away from the [RIQ_LOG_FILE]/stderr default. The caller owns
    the channel. *)

val log : level -> scope:string -> ?kv:(string * string) list -> string -> unit

val debug : scope:string -> ?kv:(string * string) list -> string -> unit
val info : scope:string -> ?kv:(string * string) list -> string -> unit
val warn : scope:string -> ?kv:(string * string) list -> string -> unit
val error : scope:string -> ?kv:(string * string) list -> string -> unit

(** {1 Value helpers} — shorthand for the common kv payloads. *)

val int : int -> string
val float : float -> string
(** Compact [%g] rendering. *)
