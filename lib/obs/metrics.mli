(** Dependency-free metrics registry: the service-level mirror of the
    cycle-level {!Tracer}/{!Sampler} pair.

    A registry holds named series — monotonic {e counters}, last-write
    {e gauges} and fixed-bucket {e histograms} — each optionally
    distinguished by a small label set. Handles are cheap mutable cells:
    the hot path ([inc]/[observe]) is a field update, no allocation, no
    hashing. Registration is idempotent — asking for an existing
    (name, labels) series returns the same handle, so independent modules
    can instrument themselves against a shared registry without
    coordination.

    Snapshots are immutable, marshalable values with a total merge
    operation (counters and histogram buckets add, gauges add — the
    convention that makes per-worker gauges like jobs-in-flight sum to
    the fleet value). Forked workers snapshot their registry and ship it
    back over the pipe or wire they already use for results; the parent
    merges. Exposition: Prometheus text format and a JSON document
    (schema [riq-metrics/1]) that round-trips through {!snapshot_of_json}
    for wire transport. *)

type t
(** A registry. *)

val create : unit -> t

(** {1 Instruments} *)

type counter

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or retrieve) the counter (name, labels). Names must match
    [[a-zA-Z_][a-zA-Z0-9_]*]; by convention counters end in [_total].
    Raises [Invalid_argument] on a malformed name or if the name is
    already registered as a different instrument kind. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** [add c n] with [n < 0] raises [Invalid_argument]: counters are
    monotonic. *)

val counter_value : counter -> int

type gauge

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram

val log_buckets : ?start:float -> ?factor:float -> int -> float array
(** [log_buckets n] is [n] ascending upper bounds [start * factor^i]
    (defaults [start = 1e-6], [factor = 2.], spanning ~1 us to ~9 min at
    [n = 30] — the service default for durations in seconds). The
    implicit overflow (+Inf) bucket is not included. *)

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?buckets:float array ->
  string -> histogram
(** Register (or retrieve) the histogram. [buckets] (default
    [log_buckets 30]) are ascending finite upper bounds; an overflow
    bucket is always appended. Retrieval ignores [buckets] (the first
    registration wins). *)

val observe : histogram -> float -> unit
(** Value [v] lands in the first bucket with [v <= bound] — Prometheus
    [le] semantics, so a value exactly on an edge belongs to that edge's
    bucket — or in the overflow bucket beyond the last bound. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Snapshots} *)

type kind = Counter | Gauge | Histogram

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of { bounds : float array; counts : int array; sum : float }
      (** [counts] has one more slot than [bounds]: the overflow bucket.
          Counts are per-bucket (not cumulative). *)

type series = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;  (** sorted by key *)
  s_value : sample;
}

type snapshot = series list
(** Sorted by (name, labels) — deterministic, so expositions diff
    cleanly. Plain immutable data: safe to [Marshal] across processes
    built from the same source. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union: counters and histogram buckets add, gauges add.
    Raises [Invalid_argument] if one (name, labels) series appears with
    different kinds or histogram bounds on the two sides. *)

val merge_all : snapshot list -> snapshot

val absorb : t -> snapshot -> unit
(** Merge a snapshot into live registry state (creating series as
    needed) — how a parent folds a finished worker's registry into its
    own. Same kind/bounds constraints as {!merge}. *)

(** {1 Exposition} *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format, version 0.0.4: [# HELP]/[# TYPE]
    per metric name, histogram series as cumulative [_bucket{le=...}]
    plus [_sum]/[_count]. *)

val to_json : snapshot -> Riq_util.Json.t
(** Schema [riq-metrics/1]. *)

val snapshot_of_json : Riq_util.Json.t -> (snapshot, string) result
(** Inverse of {!to_json} — wire transport for the [metrics] op. *)

val histogram_quantile : float -> bounds:float array -> counts:int array -> float
(** [histogram_quantile q] estimates the [q]-th quantile by linear
    interpolation inside the bucket where the rank falls (the overflow
    bucket clamps to the last finite bound). 0. when the histogram is
    empty. Raises [Invalid_argument] when [q] is outside [0, 1]. *)
