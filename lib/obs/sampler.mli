(** Bounded per-cycle time-series recorder.

    The pipeline records one multi-channel sample every [stride] cycles
    (windowed IPC, queue occupancies, per-group power, ...). Memory stays
    O([max_samples]) for arbitrarily long runs through automatic
    decimation: when the buffer fills, every other sample is discarded and
    the effective stride doubles, so the retained series always covers the
    whole run at uniform (if coarsened) resolution. *)

type t

val create : ?stride:int -> ?max_samples:int -> channels:string list -> unit -> t
(** [stride] (default 64) is the initial sampling period in cycles;
    [max_samples] (default 4096, >= 2) bounds the retained series.
    [channels] names the sample components, in recording order. *)

val channels : t -> string list
val base_stride : t -> int
val stride : t -> int
(** Current effective stride: [base_stride * 2^decimations]. *)

val decimations : t -> int
val length : t -> int
(** Samples currently retained. *)

val due : t -> cycle:int -> bool
(** Whether [cycle] falls on the current stride — the pipeline's cheap
    per-cycle check. *)

val next_due : t -> cycle:int -> int
(** First due cycle at or after [cycle], for bulk cycle advances
    (skip-ahead, loop fast-forward). Must be re-queried after every
    {!record}: a decimation doubles the stride mid-run. *)

val record : t -> cycle:int -> float array -> unit
(** Append one sample ([Array.length] must equal the channel count);
    decimates first when the buffer is full. *)

val samples : t -> (int * float array) list
(** Retained (cycle, values) pairs, oldest first. *)

val to_csv : t -> string
(** Header [cycle,ch1,ch2,...] then one row per retained sample. *)

val to_json : t -> Riq_util.Json.t
(** Full series, column-major: [{schema; stride; channels; cycles;
    series}]. *)

val summary : t -> Riq_util.Json.t
(** Per-channel min / mean / p50 / p95 / max over the retained samples —
    the block embedded in run reports. *)
