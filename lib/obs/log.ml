type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other -> Error (Printf.sprintf "unknown log level %S" other)

(* Environment is read once, lazily, so tests can set RIQ_LOG before the
   first message; set_level / set_output override it afterwards. *)
let env_level () =
  match Sys.getenv_opt "RIQ_LOG" with
  | None -> Info
  | Some s -> ( match level_of_string s with Ok l -> l | Error _ -> Info)

let env_output () =
  match Sys.getenv_opt "RIQ_LOG_FILE" with
  | None -> stderr
  | Some path -> (
      try open_out_gen [ Open_append; Open_creat ] 0o644 path with _ -> stderr)

let current_level = ref None (* None = not yet initialized from env *)
let current_output = ref None

let level () =
  match !current_level with
  | Some l -> l
  | None ->
      let l = env_level () in
      current_level := Some l;
      l

let output () =
  match !current_output with
  | Some oc -> oc
  | None ->
      let oc = env_output () in
      current_output := Some oc;
      oc

let set_level l = current_level := Some l
let set_output oc = current_output := Some oc

let enabled l = severity l >= severity (level ())

(* logfmt value: bare when it is one unquoted token, quoted otherwise. *)
let needs_quoting v =
  v = ""
  || String.exists
       (function ' ' | '"' | '=' | '\n' | '\t' -> true | _ -> false)
       v

let render_value v =
  if not (needs_quoting v) then v
  else begin
    let b = Buffer.create (String.length v + 2) in
    Buffer.add_char b '"';
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c -> Buffer.add_char b c)
      v;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let timestamp () =
  let now = Unix.gettimeofday () in
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec (max 0 (min 999 ms))

let log l ~scope ?(kv = []) msg =
  if enabled l then begin
    let b = Buffer.create 128 in
    Buffer.add_string b ("ts=" ^ timestamp ());
    Buffer.add_string b (" level=" ^ level_to_string l);
    Buffer.add_string b (" scope=" ^ render_value scope);
    Buffer.add_string b (" msg=" ^ render_value msg);
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k (render_value v)))
      kv;
    Buffer.add_char b '\n';
    let oc = output () in
    try
      output_string oc (Buffer.contents b);
      flush oc
    with _ -> () (* a full disk must not take the daemon down *)
  end

let debug ~scope ?kv msg = log Debug ~scope ?kv msg
let info ~scope ?kv msg = log Info ~scope ?kv msg
let warn ~scope ?kv msg = log Warn ~scope ?kv msg
let error ~scope ?kv msg = log Error ~scope ?kv msg

let int = string_of_int
let float v = Printf.sprintf "%g" v
