open Riq_util

type t = {
  names : string array;
  base_stride : int;
  max_samples : int;
  mutable cur_stride : int;
  mutable n_decimations : int;
  mutable cycles : int array; (* capacity max_samples, first n live *)
  mutable data : float array array; (* data.(c) is channel c's series *)
  mutable n : int;
}

let create ?(stride = 64) ?(max_samples = 4096) ~channels () =
  if stride < 1 then invalid_arg "Sampler.create: stride must be >= 1";
  if max_samples < 2 then invalid_arg "Sampler.create: max_samples must be >= 2";
  if channels = [] then invalid_arg "Sampler.create: no channels";
  let names = Array.of_list channels in
  {
    names;
    base_stride = stride;
    max_samples;
    cur_stride = stride;
    n_decimations = 0;
    cycles = Array.make max_samples 0;
    data = Array.init (Array.length names) (fun _ -> Array.make max_samples 0.);
    n = 0;
  }

let channels t = Array.to_list t.names
let base_stride t = t.base_stride
let stride t = t.cur_stride
let decimations t = t.n_decimations
let length t = t.n

let due t ~cycle = cycle mod t.cur_stride = 0

(* First due cycle >= [cycle]. Lets bulk cycle advances (skip-ahead, loop
   fast-forward) jump between sample points instead of testing [due]
   every cycle. Callers must re-query after each [record]: a decimation
   doubles the stride and moves later due points. *)
let next_due t ~cycle =
  let r = cycle mod t.cur_stride in
  if r = 0 then cycle else cycle + (t.cur_stride - r)

(* Keep every other sample (the even indices, preserving the first) and
   double the stride; the series still spans the whole run. *)
let decimate t =
  let kept = (t.n + 1) / 2 in
  for i = 0 to kept - 1 do
    t.cycles.(i) <- t.cycles.(2 * i);
    Array.iter (fun ch -> ch.(i) <- ch.(2 * i)) t.data
  done;
  t.n <- kept;
  t.cur_stride <- t.cur_stride * 2;
  t.n_decimations <- t.n_decimations + 1

let record t ~cycle values =
  if Array.length values <> Array.length t.names then
    invalid_arg "Sampler.record: value count does not match channels";
  (* After a decimation, samples still arriving on the old stride but off
     the new one are dropped, keeping the retained spacing uniform. *)
  if cycle mod t.cur_stride = 0 then begin
    if t.n = t.max_samples then decimate t;
    t.cycles.(t.n) <- cycle;
    Array.iteri (fun c ch -> ch.(t.n) <- values.(c)) t.data;
    t.n <- t.n + 1
  end

let samples t =
  List.init t.n (fun i -> (t.cycles.(i), Array.map (fun ch -> ch.(i)) t.data))

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "cycle";
  Array.iter
    (fun name ->
      Buffer.add_char b ',';
      Buffer.add_string b name)
    t.names;
  Buffer.add_char b '\n';
  for i = 0 to t.n - 1 do
    Buffer.add_string b (string_of_int t.cycles.(i));
    Array.iter
      (fun ch ->
        Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%.6g" ch.(i)))
      t.data;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let live t c = Array.sub t.data.(c) 0 t.n

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "riq-sampler/1");
      ("base_stride", Json.Int t.base_stride);
      ("stride", Json.Int t.cur_stride);
      ("decimations", Json.Int t.n_decimations);
      ("channels", Json.List (Array.to_list (Array.map (fun s -> Json.String s) t.names)));
      ("cycles", Json.List (List.init t.n (fun i -> Json.Int t.cycles.(i))));
      ( "series",
        Json.Obj
          (Array.to_list
             (Array.mapi
                (fun c name ->
                  (name, Json.List (List.init t.n (fun i -> Json.Float t.data.(c).(i)))))
                t.names)) );
    ]

let summary t =
  let channel_summary c =
    let a = live t c in
    Json.Obj
      [
        ("min", Json.Float (Stats.quantile 0. a));
        ("mean", Json.Float (Stats.mean a));
        ("p50", Json.Float (Stats.quantile 0.5 a));
        ("p95", Json.Float (Stats.quantile 0.95 a));
        ("max", Json.Float (Stats.quantile 1. a));
      ]
  in
  Json.Obj
    [
      ("samples", Json.Int t.n);
      ("stride", Json.Int t.cur_stride);
      ("decimations", Json.Int t.n_decimations);
      ( "channels",
        Json.Obj
          (Array.to_list (Array.mapi (fun c name -> (name, channel_summary c)) t.names)) );
    ]
