open Riq_util

type phase = Begin | End | Instant | Counter | Meta | Complete

type arg = Int of int | Float of float | Str of string

type event = {
  ts : int;
  ph : phase;
  name : string;
  cat : string;
  pid : int;
  tid : int;
  dur : int; (* Complete events only *)
  args : (string * arg) list;
}

type ring_state = {
  buf : event option array;
  mutable next : int; (* insertion cursor *)
  mutable stored : int; (* <= capacity *)
}

type stream_state = { oc : out_channel; mutable first : bool; mutable closed : bool }

type sink = Null | Ring of ring_state | Stream of stream_state

type t = {
  sink : sink;
  enabled : bool;
  mutable default_pid : int;
  mutable n_recorded : int;
  mutable n_dropped : int;
  by_name : (string, int) Hashtbl.t;
}

let phase_code = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Counter -> "C"
  | Meta -> "M"
  | Complete -> "X"

let arg_json = function
  | Int v -> Json.Int v
  | Float v -> Json.Float v
  | Str v -> Json.String v

let event_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (phase_code e.ph));
      ("ts", Json.Int e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
    ]
    @ (match e.ph with Complete -> [ ("dur", Json.Int e.dur) ] | _ -> [])
  in
  let args =
    match (e.args, e.ph) with
    | [], Instant ->
        (* Perfetto requires a scope on bare instants. *)
        [ ("s", Json.String "t") ]
    | [], _ -> []
    | args, Instant ->
        [ ("s", Json.String "t"); ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
    | args, _ -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
  in
  Json.Obj (base @ args)

let make sink =
  {
    sink;
    enabled = sink <> Null;
    default_pid = 1;
    n_recorded = 0;
    n_dropped = 0;
    by_name = Hashtbl.create 32;
  }

let null () = make Null

let ring ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Tracer.ring: capacity must be >= 1";
  make (Ring { buf = Array.make capacity None; next = 0; stored = 0 })

let stream_write st e =
  if not st.closed then begin
    if st.first then st.first <- false else output_string st.oc ",\n";
    output_string st.oc (Json.to_string (event_json e))
  end

let stream ?(process_name = "riq-sim") oc =
  let st = { oc; first = true; closed = false } in
  output_string oc "[\n";
  stream_write st
    {
      ts = 0;
      ph = Meta;
      name = "process_name";
      cat = "__metadata";
      pid = 1;
      tid = 0;
      dur = 0;
      args = [ ("name", Str process_name) ];
    };
  make (Stream st)

let enabled t = t.enabled

let set_pid t pid = t.default_pid <- pid
let pid t = t.default_pid

let emit t e =
  if t.enabled then begin
    t.n_recorded <- t.n_recorded + 1;
    (match Hashtbl.find_opt t.by_name e.name with
    | Some n -> Hashtbl.replace t.by_name e.name (n + 1)
    | None -> Hashtbl.add t.by_name e.name 1);
    match t.sink with
    | Null -> ()
    | Ring r ->
        if r.buf.(r.next) <> None then t.n_dropped <- t.n_dropped + 1
        else r.stored <- r.stored + 1;
        r.buf.(r.next) <- Some e;
        r.next <- (r.next + 1) mod Array.length r.buf
    | Stream st -> stream_write st e
  end

let set_thread_name t ?pid:pid_ ~tid name =
  let pid = match pid_ with Some p -> p | None -> t.default_pid in
  emit t
    { ts = 0; ph = Meta; name = "thread_name"; cat = "__metadata"; pid; tid; dur = 0;
      args = [ ("name", Str name) ] }

let set_process_name t ?pid:pid_ name =
  let pid = match pid_ with Some p -> p | None -> t.default_pid in
  emit t
    { ts = 0; ph = Meta; name = "process_name"; cat = "__metadata"; pid; tid = 0;
      dur = 0; args = [ ("name", Str name) ] }

let begin_span t ~now ?pid:pid_ ?(tid = 0) ?(args = []) ~cat name =
  let pid = match pid_ with Some p -> p | None -> t.default_pid in
  emit t { ts = now; ph = Begin; name; cat; pid; tid; dur = 0; args }

let end_span t ~now ?pid:pid_ ?(tid = 0) ?(args = []) ~cat name =
  let pid = match pid_ with Some p -> p | None -> t.default_pid in
  emit t { ts = now; ph = End; name; cat; pid; tid; dur = 0; args }

let instant t ~now ?pid:pid_ ?(tid = 1) ?(args = []) ~cat name =
  let pid = match pid_ with Some p -> p | None -> t.default_pid in
  emit t { ts = now; ph = Instant; name; cat; pid; tid; dur = 0; args }

let complete t ~now ~dur ?pid:pid_ ?(tid = 0) ?(args = []) ~cat name =
  let pid = match pid_ with Some p -> p | None -> t.default_pid in
  emit t { ts = now; ph = Complete; name; cat; pid; tid; dur = max 0 dur; args }

let counter t ~now ~name series =
  emit t
    {
      ts = now;
      ph = Counter;
      name;
      cat = "counter";
      pid = t.default_pid;
      tid = 0;
      dur = 0;
      args = List.map (fun (k, v) -> (k, Float v)) series;
    }

let recorded t = t.n_recorded
let dropped t = t.n_dropped

let counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_name []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let events t =
  match t.sink with
  | Null | Stream _ -> []
  | Ring r ->
      (* Oldest first: from the cursor when the ring has wrapped. *)
      let cap = Array.length r.buf in
      let start = if r.stored < cap then 0 else r.next in
      List.filter_map
        (fun i -> r.buf.((start + i) mod cap))
        (List.init r.stored Fun.id)

let to_json t = Json.List (List.map event_json (events t))

let sink_name t =
  match t.sink with Null -> "null" | Ring _ -> "ring" | Stream _ -> "stream"

let summary t =
  Json.Obj
    [
      ("sink", Json.String (sink_name t));
      ("recorded", Json.Int t.n_recorded);
      ("dropped", Json.Int t.n_dropped);
      ("by_name", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counts t)));
    ]

let close t =
  match t.sink with
  | Null | Ring _ -> ()
  | Stream st ->
      if not st.closed then begin
        st.closed <- true;
        output_string st.oc "\n]\n";
        flush st.oc
      end
