(* The metrics registry. See the interface for the model; the points of
   implementation interest:

   - Handles are the mutable cells themselves, returned at registration.
     Updating a counter is [c.c <- c.c + 1] — no hashing, no allocation —
     so instrumenting the engine's per-job path costs nothing measurable
     next to a simulation.
   - Histograms hold per-bucket (not cumulative) counts internally;
     cumulation happens once, at exposition time, where Prometheus wants
     it.
   - Snapshots are plain immutable data sorted by (name, labels), so
     [Marshal] moves them between forked processes and equal registries
     produce byte-equal expositions. *)

open Riq_util

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array; (* ascending finite upper bounds *)
  counts : int array; (* length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable n : int;
}

type kind = Counter | Gauge | Histogram

type cell = C of counter | G of gauge | H of histogram

type registered = {
  r_name : string;
  r_help : string;
  r_labels : (string * string) list; (* sorted by key *)
  r_cell : cell;
}

type t = {
  tbl : (string * (string * string) list, registered) Hashtbl.t;
  mutable all : registered list; (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 64; all = [] }

let valid_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let kind_of_cell = function C _ -> Counter | G _ -> Gauge | H _ -> Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let register t ~help ~labels name make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels;
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  match Hashtbl.find_opt t.tbl (name, labels) with
  | Some r -> r.r_cell
  | None ->
      let cell = make () in
      (* One name, one kind: a counter and a gauge sharing a name would
         produce an unparseable exposition. *)
      List.iter
        (fun r ->
          if r.r_name = name && kind_of_cell r.r_cell <> kind_of_cell cell then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered as a %s" name
                 (kind_name (kind_of_cell r.r_cell))))
        t.all;
      let r = { r_name = name; r_help = help; r_labels = labels; r_cell = cell } in
      Hashtbl.replace t.tbl (name, labels) r;
      t.all <- r :: t.all;
      cell

let counter t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> C { c = 0 }) with
  | C c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a counter" name)

let inc c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.c <- c.c + n

let counter_value c = c.c

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> G { g = 0. }) with
  | G g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a gauge" name)

let set g v = g.g <- v
let gauge_value g = g.g

let log_buckets ?(start = 1e-6) ?(factor = 2.) n =
  if n < 1 || start <= 0. || factor <= 1. then
    invalid_arg "Metrics.log_buckets: need n >= 1, start > 0, factor > 1";
  Array.init n (fun i -> start *. (factor ** float_of_int i))

let default_buckets = lazy (log_buckets 30)

let histogram t ?(help = "") ?(labels = []) ?buckets name =
  let make () =
    let bounds =
      match buckets with Some b -> b | None -> Lazy.force default_buckets
    in
    if Array.length bounds = 0 then
      invalid_arg "Metrics.histogram: need at least one bucket bound";
    Array.iteri
      (fun i b ->
        if (not (Float.is_finite b)) || (i > 0 && bounds.(i - 1) >= b) then
          invalid_arg "Metrics.histogram: bounds must be finite and ascending")
      bounds;
    H
      {
        bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.;
        n = 0;
      }
  in
  match register t ~help ~labels name make with
  | H h -> h
  | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a histogram" name)

(* First bucket with v <= bound — Prometheus `le` semantics, so a value
   exactly on an edge counts into that edge's bucket. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go lo hi =
    (* invariant: every i < lo has bounds.(i) < v; every i >= hi admits v *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let histogram_count h = h.n
let histogram_sum h = h.sum

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of { bounds : float array; counts : int array; sum : float }

type series = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : sample;
}

type snapshot = series list

let kind_of_sample = function
  | Counter_sample _ -> Counter
  | Gauge_sample _ -> Gauge
  | Histogram_sample _ -> Histogram

let compare_series a b =
  match compare a.s_name b.s_name with
  | 0 -> compare a.s_labels b.s_labels
  | c -> c

let snapshot t =
  List.sort compare_series
    (List.map
       (fun r ->
         let v =
           match r.r_cell with
           | C c -> Counter_sample c.c
           | G g -> Gauge_sample g.g
           | H h ->
               Histogram_sample
                 {
                   bounds = Array.copy h.bounds;
                   counts = Array.copy h.counts;
                   sum = h.sum;
                 }
         in
         { s_name = r.r_name; s_help = r.r_help; s_labels = r.r_labels; s_value = v })
       t.all)

let merge_sample name a b =
  match (a, b) with
  | Counter_sample x, Counter_sample y -> Counter_sample (x + y)
  | Gauge_sample x, Gauge_sample y -> Gauge_sample (x +. y)
  | Histogram_sample x, Histogram_sample y ->
      if x.bounds <> y.bounds then
        invalid_arg
          (Printf.sprintf "Metrics.merge: %s has mismatched histogram bounds" name);
      Histogram_sample
        {
          bounds = x.bounds;
          counts = Array.mapi (fun i c -> c + y.counts.(i)) x.counts;
          sum = x.sum +. y.sum;
        }
  | _ ->
      invalid_arg
        (Printf.sprintf "Metrics.merge: %s appears as two different kinds" name)

(* Merge-join over the two sorted series lists. *)
let merge a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> (
        match compare_series x y with
        | 0 -> go xs ys ({ x with s_value = merge_sample x.s_name x.s_value y.s_value } :: acc)
        | c when c < 0 -> go xs b (x :: acc)
        | _ -> go a ys (y :: acc))
  in
  go a b []

let merge_all = List.fold_left merge []

let absorb t snap =
  List.iter
    (fun s ->
      match s.s_value with
      | Counter_sample v ->
          let c = counter t ~help:s.s_help ~labels:s.s_labels s.s_name in
          add c v
      | Gauge_sample v ->
          let g = gauge t ~help:s.s_help ~labels:s.s_labels s.s_name in
          set g (g.g +. v)
      | Histogram_sample { bounds; counts; sum } ->
          let h = histogram t ~help:s.s_help ~labels:s.s_labels ~buckets:bounds s.s_name in
          if h.bounds <> bounds then
            invalid_arg
              (Printf.sprintf "Metrics.absorb: %s has mismatched histogram bounds"
                 s.s_name);
          Array.iteri (fun i c -> h.counts.(i) <- h.counts.(i) + c) counts;
          h.sum <- h.sum +. sum;
          h.n <- h.n + Array.fold_left ( + ) 0 counts)
    snap

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

(* %.12g: enough digits that distinct bucket bounds stay distinct, short
   enough that common values print as humans expect (0.001, not
   0.001000000000000000021). *)
let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" v

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_block labels =
  match labels with
  | [] -> ""
  | _ ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              labels))

(* As label_block, but with the extra pair appended (histogram le). *)
let label_block_with labels extra =
  label_block (labels @ [ extra ])

let to_prometheus snap =
  let b = Buffer.create 1024 in
  let headed = Hashtbl.create 16 in
  List.iter
    (fun s ->
      (* HELP/TYPE once per metric name; series of one name are adjacent
         because the snapshot is sorted. *)
      if not (Hashtbl.mem headed s.s_name) then begin
        Hashtbl.add headed s.s_name ();
        if s.s_help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" s.s_name s.s_help);
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.s_name
             (kind_name (kind_of_sample s.s_value)))
      end;
      match s.s_value with
      | Counter_sample v ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" s.s_name (label_block s.s_labels) v)
      | Gauge_sample v ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.s_name (label_block s.s_labels) (fmt_float v))
      | Histogram_sample { bounds; counts; sum } ->
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + counts.(i);
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                   (label_block_with s.s_labels ("le", fmt_float bound))
                   !cum))
            bounds;
          let total = !cum + counts.(Array.length counts - 1) in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" s.s_name
               (label_block_with s.s_labels ("le", "+Inf"))
               total);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" s.s_name (label_block s.s_labels)
               (fmt_float sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.s_name (label_block s.s_labels) total))
    snap;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let schema = "riq-metrics/1"

let sample_json = function
  | Counter_sample v -> [ ("type", Json.String "counter"); ("value", Json.Int v) ]
  | Gauge_sample v -> [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Histogram_sample { bounds; counts; sum } ->
      [
        ("type", Json.String "histogram");
        ("bounds", Json.List (List.map (fun v -> Json.Float v) (Array.to_list bounds)));
        ("counts", Json.List (List.map (fun v -> Json.Int v) (Array.to_list counts)));
        ("sum", Json.Float sum);
      ]

let to_json snap =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "series",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 ([
                    ("name", Json.String s.s_name);
                    ("help", Json.String s.s_help);
                    ( "labels",
                      Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.s_labels)
                    );
                  ]
                 @ sample_json s.s_value))
             snap) );
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "metrics json: missing or ill-typed %S" name)

let all_list conv msg items =
  List.fold_right
    (fun item acc ->
      let* acc = acc in
      match conv item with Some v -> Ok (v :: acc) | None -> Error msg)
    items (Ok [])

let series_of_json j =
  let* name = field "name" Json.to_str j in
  let* help = field "help" Json.to_str j in
  let* labels =
    match Json.member "labels" j with
    | Some (Json.Obj kvs) ->
        all_list
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          "metrics json: non-string label" kvs
    | _ -> Error "metrics json: missing labels object"
  in
  let* ty = field "type" Json.to_str j in
  let* value =
    match ty with
    | "counter" ->
        let* v = field "value" Json.to_int j in
        Ok (Counter_sample v)
    | "gauge" ->
        let* v = field "value" Json.to_float_opt j in
        Ok (Gauge_sample v)
    | "histogram" ->
        let* bounds =
          Result.map Array.of_list
            (Result.bind (field "bounds" Json.to_list j)
               (all_list Json.to_float_opt "metrics json: non-number bound"))
        in
        let* counts =
          Result.map Array.of_list
            (Result.bind (field "counts" Json.to_list j)
               (all_list Json.to_int "metrics json: non-int count"))
        in
        let* sum = field "sum" Json.to_float_opt j in
        if Array.length counts <> Array.length bounds + 1 then
          Error "metrics json: histogram counts/bounds length mismatch"
        else Ok (Histogram_sample { bounds; counts; sum })
    | other -> Error (Printf.sprintf "metrics json: unknown series type %S" other)
  in
  Ok { s_name = name; s_help = help; s_labels = labels; s_value = value }

let snapshot_of_json j =
  let* s = field "schema" Json.to_str j in
  if s <> schema then Error (Printf.sprintf "metrics json: unknown schema %S" s)
  else
    let* items = field "series" Json.to_list j in
    let* series =
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          let* s = series_of_json item in
          Ok (s :: acc))
        items (Ok [])
    in
    Ok (List.sort compare_series series)

(* ------------------------------------------------------------------ *)
(* Quantile estimation                                                 *)
(* ------------------------------------------------------------------ *)

let histogram_quantile q ~bounds ~counts =
  if q < 0. || q > 1. then invalid_arg "Metrics.histogram_quantile: q outside [0, 1]";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else begin
    let rank = q *. float_of_int total in
    let n = Array.length bounds in
    let rec go i cum =
      if i >= Array.length counts then bounds.(n - 1)
      else
        let cum' = cum + counts.(i) in
        if float_of_int cum' >= rank && counts.(i) > 0 then
          if i >= n then bounds.(n - 1) (* overflow bucket: clamp *)
          else
            let lo = if i = 0 then 0. else bounds.(i - 1) in
            let hi = bounds.(i) in
            let within = (rank -. float_of_int cum) /. float_of_int counts.(i) in
            lo +. ((hi -. lo) *. min 1. (max 0. within))
        else go (i + 1) cum'
    in
    go 0 0
  end
