open Riq_util
open Riq_isa
open Riq_asm
open Riq_mem
open Riq_branch
open Riq_power
open Riq_ooo
open Riq_interp
open Riq_obs

(* Instruction fetched but not yet dispatched. *)
type fetched = {
  f_pc : int;
  f_insn : Insn.t;
  f_pred_npc : int; (* -1: unknown target, fetch stalls until resolution *)
  f_ras_ck : Predictor.checkpoint;
  mutable f_buffered : bool; (* classification decided at decode *)
}

type ev_kind = Complete | Agen

type ev = {
  ev_seq : int;
  ev_rob : int;
  ev_kind : ev_kind;
  ev_addr : int; (* memory ops: effective address *)
  ev_di : int; (* stores: integer data *)
  ev_df : float; (* stores: FP data *)
  ev_dtag : int; (* stores: ROB index the data waits on, or -1 *)
}

type replay = { rp_seq : int; rp_rob : int; rp_addr : int }

(* Why a buffering attempt was revoked, one constructor per revoke site.
   The static side (Riq_analysis.Bufferability) predicts these; keeping
   per-cause counters is what lets the oracle cross-check prediction
   against execution. *)
type revoke_cause =
  | Rv_inner_loop (* decode saw a second capturable backward transfer *)
  | Rv_left_loop (* decode left the window before promotion *)
  | Rv_overflow (* the issue queue filled while buffering *)
  | Rv_mispredict (* recovery from a mispredict older than the loop *)

let revoke_cause_to_string = function
  | Rv_inner_loop -> "inner-loop"
  | Rv_left_loop -> "left-loop"
  | Rv_overflow -> "overflow"
  | Rv_mispredict -> "mispredict"

(* Per-loop decision record, keyed by the loop-ending instruction's pc —
   the same key the detector and NBLT use. Queryable after a run to
   compare the dynamic decisions with the static bufferability pass. *)
type loop_decision = {
  ld_head : int;
  ld_tail : int;
  ld_span : int;
  mutable ld_detections : int; (* detector hits at the tail *)
  mutable ld_nblt_filtered : int; (* detections suppressed by the NBLT *)
  mutable ld_attempts : int; (* buffering attempts started *)
  mutable ld_revokes : int;
  mutable ld_rv_inner : int; (* ld_revokes split by cause *)
  mutable ld_rv_left : int;
  mutable ld_rv_overflow : int;
  mutable ld_rv_mispredict : int;
  mutable ld_nblt_registered : int; (* revokes that registered in the NBLT *)
  mutable ld_promotions : int; (* reached Code Reuse *)
  mutable ld_reuse_committed : int; (* committed instructions supplied by reuse *)
}

type t = {
  cfg : Config.t;
  program : Program.t;
  memory : Store.t;
  hier : Hierarchy.t;
  pred : Predictor.t;
  rob : Rob.t;
  iq : Iq.t;
  lsq : Lsq.t;
  fu : Fu.t;
  acct : Account.t;
  reuse : Reuse_state.t;
  nblt : Nblt.t;
  lc : Loopcache.t option; (* related-work baseline, Config.loop_cache *)
  arch_i : int array;
  arch_f : float array;
  map : int array; (* logical register -> ROB index, -1 = architectural *)
  mutable fetch_pc : int; (* -1: blocked until redirect *)
  mutable fetch_stall_until : int;
  fetch_q : fetched Queue.t;
  decode_latch : fetched Queue.t;
  mutable now : int;
  mutable seq_ctr : int;
  events : (int, ev list ref) Hashtbl.t;
  mutable replays : replay list;
  mutable halted : bool;
  mutable halt_pc : int;
  mutable committed : int;
  mutable gated_cycles : int;
  mutable n_branches : int;
  mutable n_mispredicts : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_reuse_dispatch : int;
  mutable n_reuse_commit : int;
  loop_log : (int, loop_decision) Hashtbl.t; (* keyed by tail pc *)
  mutable cur_reuse_tail : int; (* tail of the last promoted loop, -1 = none *)
  (* Observability. The tracer defaults to the null sink (one dead branch
     per emission site); the sampler is absent unless attached. *)
  tracer : Tracer.t;
  sampler : Sampler.t option;
  counter_stride : int; (* cadence of the tracer's counter tracks *)
  mutable samp_last_cycle : int;
  mutable samp_last_committed : int;
  samp_last_energy : float array; (* per Component.group, at the last sample *)
}

type stop = Halted | Cycle_limit

(* Sample channels, in recording order; callers attaching a sampler must
   create it with exactly these (see [sample_channels] in the interface). *)
let sample_channels =
  [
    "ipc"; "iq"; "rob"; "lsq"; "power-icache"; "power-bpred"; "power-iq";
    "power-overhead"; "power-other"; "power-total";
  ]

let sample_groups =
  [| Component.G_icache; G_bpred; G_iq; G_overhead; G_other |]

let create ?tracer ?sampler cfg program =
  Config.validate cfg;
  let tracer = match tracer with Some tr -> tr | None -> Tracer.null () in
  if Tracer.enabled tracer then begin
    Tracer.set_thread_name tracer ~tid:0 "reuse-engine";
    Tracer.set_thread_name tracer ~tid:1 "pipeline-events"
  end;
  (match sampler with
  | Some s when Sampler.channels s <> sample_channels ->
      invalid_arg "Processor.create: sampler channels must be Processor.sample_channels"
  | Some _ | None -> ());
  let memory = Store.create () in
  Program.load program ~write_word:(Store.write_word memory);
  let arch_i = Array.make 32 0 in
  arch_i.(Reg.sp) <- Machine.default_sp;
  {
    cfg;
    program;
    memory;
    hier = Hierarchy.create cfg.Config.mem;
    pred = Predictor.create cfg.Config.bpred;
    rob = Rob.create cfg.Config.rob_entries;
    iq = Iq.create cfg.Config.iq_entries;
    lsq = Lsq.create cfg.Config.lsq_entries;
    fu =
      Fu.create ~n_ialu:cfg.Config.n_ialu ~n_imult:cfg.Config.n_imult
        ~n_fpalu:cfg.Config.n_fpalu ~n_fpmult:cfg.Config.n_fpmult
        ~n_memport:cfg.Config.n_memport;
    acct = Account.create (Model.create (Config.power_geometry cfg));
    reuse = Reuse_state.create ~tracer ();
    nblt = Nblt.create ~tracer cfg.Config.nblt_entries;
    lc =
      (if cfg.Config.loop_cache_entries > 0 then
         Some (Loopcache.create cfg.Config.loop_cache_entries)
       else None);
    arch_i;
    arch_f = Array.make 32 0.;
    map = Array.make Reg.count (-1);
    fetch_pc = program.Program.entry;
    fetch_stall_until = 0;
    fetch_q = Queue.create ();
    decode_latch = Queue.create ();
    now = 0;
    seq_ctr = 0;
    events = Hashtbl.create 64;
    replays = [];
    halted = false;
    halt_pc = 0;
    committed = 0;
    gated_cycles = 0;
    n_branches = 0;
    n_mispredicts = 0;
    n_loads = 0;
    n_stores = 0;
    n_reuse_dispatch = 0;
    n_reuse_commit = 0;
    loop_log = Hashtbl.create 16;
    cur_reuse_tail = -1;
    tracer;
    sampler;
    counter_stride =
      (match sampler with Some s -> Sampler.base_stride s | None -> 64);
    samp_last_cycle = 0;
    samp_last_committed = 0;
    samp_last_energy = Array.make (Array.length sample_groups) 0.;
  }

let loop_record t ~head ~tail =
  match Hashtbl.find_opt t.loop_log tail with
  | Some r -> r
  | None ->
      let r =
        {
          ld_head = head;
          ld_tail = tail;
          ld_span = ((tail - head) / 4) + 1;
          ld_detections = 0;
          ld_nblt_filtered = 0;
          ld_attempts = 0;
          ld_revokes = 0;
          ld_rv_inner = 0;
          ld_rv_left = 0;
          ld_rv_overflow = 0;
          ld_rv_mispredict = 0;
          ld_nblt_registered = 0;
          ld_promotions = 0;
          ld_reuse_committed = 0;
        }
      in
      Hashtbl.replace t.loop_log tail r;
      r

let charge t c n = Account.add t.acct c n
let charge1 t c = Account.add t.acct c 1.

let schedule t ~cycle ev =
  match Hashtbl.find_opt t.events cycle with
  | Some l -> l := ev :: !l
  | None -> Hashtbl.replace t.events cycle (ref [ ev ])

let next_seq t =
  t.seq_ctr <- t.seq_ctr + 1;
  t.seq_ctr

(* Memory hierarchy wrappers that charge the power account, including the
   L2 accesses triggered by L1 misses. *)
let fetch_latency t addr =
  let l1_before = Cache.accesses (Hierarchy.l1i t.hier) in
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.fetch t.hier ~now:t.now ~addr () in
  (* With a filter cache, an L0 hit never reaches the L1I; charging by
     access deltas attributes the energy to the structure actually used. *)
  (match Hierarchy.l0i t.hier with
  | Some _ -> charge1 t Component.L0cache
  | None -> ());
  let d1 = Cache.accesses (Hierarchy.l1i t.hier) - l1_before in
  if d1 > 0 then charge t Component.Icache (float_of_int d1);
  charge1 t Component.Itlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

let data_latency t ~addr ~write =
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.data t.hier ~now:t.now ~addr ~write () in
  charge1 t Component.Dcache;
  charge1 t Component.Dtlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

(* The two register-source operands of an instruction, as logical register
   numbers (-1 = none). For stores src1 is the base and src2 the data. *)
let operand_regs insn =
  let z r = if r = Reg.zero then -1 else r in
  match insn with
  | Insn.Alu (_, _, rs, rt) | Mul (_, rs, rt) | Div (_, rs, rt) -> (z rs, z rt)
  | Alui (_, _, rs, _) -> (z rs, -1)
  | Shift (_, _, rt, _) -> (z rt, -1)
  | Shiftv (_, _, rt, rs) -> (z rt, z rs)
  | Lui _ -> (-1, -1)
  | Fpu (op, _, fs, ft) -> if Insn.fpu_unary op then (fs, -1) else (fs, ft)
  | Fcmp (_, _, fs, ft) -> (fs, ft)
  | Cvtsw (_, rs) -> (z rs, -1)
  | Cvtws (_, fs) -> (fs, -1)
  | Lw (_, base, _) | Lb (_, base, _) | Lbu (_, base, _) | Lh (_, base, _)
  | Lhu (_, base, _) | Lwf (_, base, _) ->
      (z base, -1)
  | Sw (rt, base, _) | Sb (rt, base, _) | Sh (rt, base, _) -> (z base, z rt)
  | Swf (ft, base, _) -> (z base, ft)
  | Br (cond, rs, rt, _) -> (
      match cond with
      | Beq | Bne -> (z rs, z rt)
      | Blez | Bgtz | Bltz | Bgez -> (z rs, -1))
  | Jr rs | Jalr (_, rs) -> (z rs, -1)
  | J _ | Jal _ | Nop | Halt -> (-1, -1)

(* Resolve one source operand through the map table: (tag, value_i,
   value_f); tag = -1 when the value is available now. *)
let read_operand t r =
  if r < 0 then (-1, 0, 0.)
  else begin
    charge1 t Component.Regfile;
    match t.map.(r) with
    | -1 ->
        if Reg.is_fp r then (-1, 0, t.arch_f.(Reg.index r))
        else (-1, t.arch_i.(Reg.index r), 0.)
    | idx ->
        let e = Rob.entry t.rob idx in
        if e.Rob.completed then (-1, e.Rob.value_i, e.Rob.value_f) else (idx, 0, 0.)
  end

(* Execute an instruction given its operand values; returns
   (value_i, value_f, taken, next_pc). Memory operations are handled
   separately (address generation + cache access). *)
let compute insn ~pc ~s1i ~s1f ~s2i ~s2f =
  let next = pc + 4 in
  match insn with
  | Insn.Alu (op, _, _, _) -> (Semantics.alu op s1i s2i, 0., false, next)
  | Alui (op, _, _, imm) -> (Semantics.alu op s1i (Semantics.alui_imm op imm), 0., false, next)
  | Shift (op, _, _, sh) -> (Semantics.shift op s1i sh, 0., false, next)
  | Shiftv (op, _, _, _) -> (Semantics.shift op s1i s2i, 0., false, next)
  | Lui (_, imm) -> (Bits.of_i32 (imm lsl 16), 0., false, next)
  | Mul (_, _, _) -> (Semantics.mul s1i s2i, 0., false, next)
  | Div (_, _, _) -> (Semantics.div s1i s2i, 0., false, next)
  | Fpu (op, _, _, _) -> (0, Semantics.fpu op s1f s2f, false, next)
  | Fcmp (op, _, _, _) -> (Semantics.fcmp op s1f s2f, 0., false, next)
  | Cvtsw (_, _) -> (0, Semantics.cvt_s_w s1i, false, next)
  | Cvtws (_, _) -> (Semantics.cvt_w_s s1f, 0., false, next)
  | Br (cond, _, _, off) ->
      let taken = Semantics.branch_taken cond s1i s2i in
      (0, 0., taken, if taken then pc + 4 + (4 * off) else next)
  | J tgt -> (0, 0., true, 4 * tgt)
  | Jal tgt -> (next, 0., true, 4 * tgt)
  | Jr _ -> (0, 0., true, s1i)
  | Jalr (_, _) -> (next, 0., true, s1i)
  | Lw _ | Lb _ | Lbu _ | Lh _ | Lhu _ | Sw _ | Sb _ | Sh _ | Lwf _ | Swf _ | Nop | Halt ->
      (0, 0., false, next)

let effective_addr insn ~base =
  match insn with
  | Insn.Lw (_, _, off) | Lb (_, _, off) | Lbu (_, _, off) | Lh (_, _, off)
  | Lhu (_, _, off) | Sw (_, _, off) | Sb (_, _, off) | Sh (_, _, off)
  | Lwf (_, _, off) | Swf (_, _, off) ->
      Bits.add32 base off
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Mul _ | Div _ | Fpu _ | Fcmp _
  | Cvtsw _ | Cvtws _ | Br _ | J _ | Jal _ | Jr _ | Jalr _ | Nop | Halt ->
      invalid_arg "Processor.effective_addr: not a memory operation"

let is_fp_mem insn = match insn with Insn.Lwf _ | Swf _ -> true | _ -> false

(* Wrong-path accesses may compute garbage addresses; an address is usable
   when non-negative and aligned to the access width. *)
let valid_addr insn addr =
  addr >= 0 && addr land (Insn.access_bytes insn - 1) = 0

(* ------------------------------------------------------------------ *)
(* Misprediction recovery and reuse-engine state transitions.          *)
(* ------------------------------------------------------------------ *)

let rebuild_map t =
  Array.fill t.map 0 (Array.length t.map) (-1);
  Rob.iter_oldest_first t.rob (fun idx e ->
      if e.Rob.dest >= 0 then t.map.(e.Rob.dest) <- idx)

let flush_front_end t =
  Queue.clear t.fetch_q;
  Queue.clear t.decode_latch

let revoke_buffering t ~register_nblt ~cause =
  let r =
    loop_record t ~head:t.reuse.Reuse_state.head ~tail:t.reuse.Reuse_state.tail
  in
  r.ld_revokes <- r.ld_revokes + 1;
  (match cause with
  | Rv_inner_loop -> r.ld_rv_inner <- r.ld_rv_inner + 1
  | Rv_left_loop -> r.ld_rv_left <- r.ld_rv_left + 1
  | Rv_overflow -> r.ld_rv_overflow <- r.ld_rv_overflow + 1
  | Rv_mispredict -> r.ld_rv_mispredict <- r.ld_rv_mispredict + 1);
  if Tracer.enabled t.tracer then
    Tracer.instant t.tracer ~now:t.now
      ~args:
        [
          ("head", Tracer.Int t.reuse.Reuse_state.head);
          ("tail", Tracer.Int t.reuse.Reuse_state.tail);
          ("cause", Tracer.Str (revoke_cause_to_string cause));
          ("registered_nblt", Tracer.Int (if register_nblt then 1 else 0));
        ]
      ~cat:"reuse" "revoke";
  if register_nblt then begin
    r.ld_nblt_registered <- r.ld_nblt_registered + 1;
    charge1 t Component.Nblt;
    Nblt.insert ~now:t.now t.nblt t.reuse.Reuse_state.tail
  end;
  Iq.clear_classification t.iq;
  Reuse_state.revoke ~now:t.now t.reuse

let exit_reuse t =
  Iq.clear_classification t.iq;
  Iq.set_reuse_ptr t.iq 0;
  Reuse_state.exit_reuse ~now:t.now t.reuse

(* Conventional branch-misprediction recovery (Section 2.5), plus the
   revoke / reuse-exit that accompanies it in the buffering states. *)
let recover t (e : Rob.entry) =
  let seq = e.Rob.seq in
  if Tracer.enabled t.tracer then
    Tracer.instant t.tracer ~now:t.now
      ~args:[ ("pc", Tracer.Int e.Rob.pc); ("redirect", Tracer.Int e.Rob.actual_npc) ]
      ~cat:"pipeline" "pipeline-flush";
  Rob.squash_after t.rob ~seq ~f:(fun _ _ -> ());
  Lsq.squash_after t.lsq ~seq;
  Iq.squash_after t.iq ~seq;
  rebuild_map t;
  Predictor.restore t.pred e.Rob.ras_ck;
  flush_front_end t;
  t.fetch_pc <- e.Rob.actual_npc;
  t.fetch_stall_until <- t.now + 1;
  t.replays <- List.filter (fun r -> r.rp_seq <= seq) t.replays;
  Option.iter Loopcache.reset t.lc;
  match t.reuse.Reuse_state.state with
  | Reuse_state.Normal -> ()
  | Reuse_state.Buffering ->
      (* A wrong path inside the loop (including the loop exit) makes the
         loop non-bufferable; a mispredict older than the loop is a plain
         revoke. *)
      let in_loop = Reuse_state.in_loop t.reuse ~pc:e.Rob.pc in
      revoke_buffering t ~register_nblt:in_loop
        ~cause:(if in_loop then Rv_left_loop else Rv_mispredict)
  | Reuse_state.Reusing -> exit_reuse t

(* ------------------------------------------------------------------ *)
(* Commit stage.                                                       *)
(* ------------------------------------------------------------------ *)

let commit_one t (e : Rob.entry) =
  charge1 t Component.Rob;
  (match e.Rob.dest with
  | -1 -> ()
  | d ->
      charge1 t Component.Regfile;
      if Reg.is_fp d then t.arch_f.(Reg.index d) <- e.Rob.value_f
      else t.arch_i.(Reg.index d) <- e.Rob.value_i;
      let head_idx = Rob.head t.rob in
      if t.map.(d) = head_idx then t.map.(d) <- -1);
  if e.Rob.lsq_idx >= 0 then begin
    let le = Lsq.entry t.lsq e.Rob.lsq_idx in
    assert (Lsq.head_is t.lsq e.Rob.lsq_idx);
    if e.Rob.is_store then begin
      t.n_stores <- t.n_stores + 1;
      charge1 t Component.Lsq;
      ignore (data_latency t ~addr:le.Lsq.addr ~write:true);
      if le.Lsq.is_fp then Store.write_float t.memory le.Lsq.addr le.Lsq.data_f
      else begin
        match e.Rob.insn with
        | Insn.Sb _ -> Store.write_byte t.memory le.Lsq.addr le.Lsq.data_i
        | Insn.Sh _ -> Store.write_half t.memory le.Lsq.addr le.Lsq.data_i
        | _ -> Store.write_word t.memory le.Lsq.addr (Bits.to_u32 le.Lsq.data_i)
      end
    end
    else t.n_loads <- t.n_loads + 1;
    Lsq.pop_head t.lsq
  end;
  (match e.Rob.insn with
  | Insn.Halt ->
      t.halted <- true;
      t.halt_pc <- e.Rob.pc;
      (* End-of-run drain: everything still in flight is younger than the
         halt and will never execute, so empty the queues (no power
         charges) — [occupancy] reads (0, 0, 0) once [run] returns
         [Halted]. The halt itself is still at the ROB head; the normal
         [pop_head] below removes it. *)
      Rob.squash_after t.rob ~seq:e.Rob.seq ~f:(fun _ _ -> ());
      Lsq.squash_after t.lsq ~seq:e.Rob.seq;
      Iq.clear t.iq;
      flush_front_end t;
      Hashtbl.reset t.events;
      t.replays <- [];
      if Tracer.enabled t.tracer then
        Tracer.instant t.tracer ~now:t.now
          ~args:[ ("pc", Tracer.Int e.Rob.pc) ]
          ~cat:"pipeline" "halted"
  | _ -> ());
  if e.Rob.from_reuse then begin
    t.n_reuse_commit <- t.n_reuse_commit + 1;
    (* Attribute to the smallest logged window containing the pc; callee
       instructions (outside every window) go to the loop being reused. *)
    let best = ref None in
    Hashtbl.iter
      (fun _ r ->
        if e.Rob.pc >= r.ld_head && e.Rob.pc <= r.ld_tail then
          match !best with
          | Some b when b.ld_span <= r.ld_span -> ()
          | _ -> best := Some r)
      t.loop_log;
    match (!best, Hashtbl.find_opt t.loop_log t.cur_reuse_tail) with
    | Some r, _ | None, Some r -> r.ld_reuse_committed <- r.ld_reuse_committed + 1
    | None, None -> ()
  end;
  t.committed <- t.committed + 1;
  Rob.pop_head t.rob

let commit_stage t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.cfg.Config.commit_width && not t.halted do
    match Rob.head_entry t.rob with
    | Some e when e.Rob.completed ->
        commit_one t e;
        incr n
    | Some _ | None -> continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Writeback: completion and address-generation events.                *)
(* ------------------------------------------------------------------ *)

let complete t (e : Rob.entry) rob_idx =
  e.Rob.completed <- true;
  charge1 t Component.Rob;
  charge1 t Component.Resultbus;
  charge1 t Component.Iq_wakeup;
  Iq.wakeup t.iq ~tag:rob_idx ~value_i:e.Rob.value_i ~value_f:e.Rob.value_f;
  List.iter
    (fun (store_rob, store_seq) ->
      schedule t ~cycle:(t.now + 1)
        {
          ev_seq = store_seq;
          ev_rob = store_rob;
          ev_kind = Complete;
          ev_addr = 0;
          ev_di = 0;
          ev_df = 0.;
          ev_dtag = -1;
        })
    (Lsq.capture_data t.lsq ~tag:rob_idx ~value_i:e.Rob.value_i ~value_f:e.Rob.value_f);
  if e.Rob.is_ctrl then begin
    t.n_branches <- t.n_branches + 1;
    (* Predictor tables are trained at resolution in every issue-queue
       state (lookups are what gating suppresses). *)
    (match e.Rob.insn with
    | Insn.Br _ -> charge1 t Component.Bpred_dir
    | _ -> ());
    if e.Rob.taken then charge1 t Component.Btb;
    Predictor.resolve t.pred ~pc:e.Rob.pc ~insn:e.Rob.insn ~taken:e.Rob.taken
      ~target:e.Rob.actual_npc;
    if e.Rob.actual_npc <> e.Rob.pred_npc then begin
      t.n_mispredicts <- t.n_mispredicts + 1;
      recover t e
    end
  end

(* A load attempting to execute: forward or access the cache. The LSQ
   search is charged once, on the first attempt — replayed loads sleep in
   the queue and are re-checked without a fresh CAM search. *)
(* The integer value a load produces, given the raw register value a
   matching store would write (forwarding) — extract and extend the low
   bits per the load's width and signedness. *)
let load_value_from_reg insn raw =
  match insn with
  | Insn.Lb _ -> Bits.sign_extend raw ~width:8
  | Lbu _ -> raw land 0xFF
  | Lh _ -> Bits.sign_extend raw ~width:16
  | Lhu _ -> raw land 0xFFFF
  | _ -> Bits.of_i32 raw

let load_value_from_memory t insn addr =
  match insn with
  | Insn.Lb _ -> Bits.sign_extend (Store.read_byte t.memory addr) ~width:8
  | Lbu _ -> Store.read_byte t.memory addr
  | Lh _ -> Bits.sign_extend (Store.read_half t.memory addr) ~width:16
  | Lhu _ -> Store.read_half t.memory addr
  | _ -> Bits.of_i32 (Store.read_word t.memory addr)

let start_load ?(charge_search = true) t ~rob_idx ~(e : Rob.entry) ~addr =
  let le = Lsq.entry t.lsq e.Rob.lsq_idx in
  if charge_search then charge1 t Component.Lsq;
  match Lsq.check_load t.lsq ~idx:e.Rob.lsq_idx ~addr ~width:le.Lsq.width with
  | Lsq.Wait -> false
  | Lsq.Forward se ->
      if le.Lsq.is_fp then e.Rob.value_f <- se.Lsq.data_f
      else e.Rob.value_i <- load_value_from_reg e.Rob.insn se.Lsq.data_i;
      schedule t ~cycle:(t.now + 1)
        { ev_seq = e.Rob.seq; ev_rob = rob_idx; ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 };
      true
  | Lsq.Access ->
      let lat =
        if valid_addr e.Rob.insn addr then begin
          let lat = data_latency t ~addr ~write:false in
          if le.Lsq.is_fp then e.Rob.value_f <- Store.read_float t.memory addr
          else e.Rob.value_i <- load_value_from_memory t e.Rob.insn addr;
          lat
        end
        else 1 (* wrong-path garbage address: complete without touching memory *)
      in
      schedule t ~cycle:(t.now + lat)
        { ev_seq = e.Rob.seq; ev_rob = rob_idx; ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 };
      true

let process_agen t ev =
  let e = Rob.entry t.rob ev.ev_rob in
  if e.Rob.seq = ev.ev_seq then begin
    let le = Lsq.entry t.lsq e.Rob.lsq_idx in
    le.Lsq.addr <- ev.ev_addr;
    le.Lsq.addr_ready <- true;
    charge1 t Component.Lsq;
    if e.Rob.is_store then begin
      if ev.ev_dtag = -1 then begin
        le.Lsq.data_i <- ev.ev_di;
        le.Lsq.data_f <- ev.ev_df;
        le.Lsq.data_ready <- true;
        (* The store has done all its execute-stage work. *)
        schedule t ~cycle:(t.now + 1)
          { ev with ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 }
      end
      else begin
        (* Address is known; the data operand is still in flight and will
           arrive over the result bus. *)
        let producer = Rob.entry t.rob ev.ev_dtag in
        if producer.Rob.completed then begin
          le.Lsq.data_i <- producer.Rob.value_i;
          le.Lsq.data_f <- producer.Rob.value_f;
          le.Lsq.data_ready <- true;
          schedule t ~cycle:(t.now + 1)
            { ev with ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 }
        end
        else le.Lsq.data_tag <- ev.ev_dtag
      end
    end
    else if not (start_load t ~rob_idx:ev.ev_rob ~e ~addr:ev.ev_addr) then
      t.replays <- { rp_seq = ev.ev_seq; rp_rob = ev.ev_rob; rp_addr = ev.ev_addr } :: t.replays
  end

let writeback_stage t =
  match Hashtbl.find_opt t.events t.now with
  | None -> ()
  | Some l ->
      Hashtbl.remove t.events t.now;
      let evs = List.sort (fun a b -> compare a.ev_seq b.ev_seq) !l in
      List.iter
        (fun ev ->
          let e = Rob.entry t.rob ev.ev_rob in
          if e.Rob.seq = ev.ev_seq && not e.Rob.completed then begin
            match ev.ev_kind with
            | Complete -> complete t e ev.ev_rob
            | Agen -> process_agen t ev
          end)
        evs

let replay_stage t =
  let pending = t.replays in
  t.replays <- [];
  List.iter
    (fun r ->
      let e = Rob.entry t.rob r.rp_rob in
      if e.Rob.seq = r.rp_seq && not e.Rob.completed then
        if not (start_load ~charge_search:false t ~rob_idx:r.rp_rob ~e ~addr:r.rp_addr) then
          t.replays <- r :: t.replays)
    (List.rev pending)

(* ------------------------------------------------------------------ *)
(* Issue stage: oldest-first selection of ready instructions.          *)
(* ------------------------------------------------------------------ *)

let issue_slot t (s : Iq.slot) =
  let insn = s.Iq.insn in
  s.Iq.issued <- true;
  charge1 t Component.Iq_payload;
  (match s.Iq.fu with
  | Insn.FU_ialu -> charge1 t Component.Ialu
  | FU_imult -> charge1 t Component.Imult
  | FU_fpalu -> charge1 t Component.Fpalu
  | FU_fpmult -> charge1 t Component.Fpmult
  | FU_mem -> charge1 t Component.Ialu (* address generation adder *)
  | FU_none -> ());
  let e = Rob.entry t.rob s.Iq.rob_idx in
  (match Insn.kind insn with
  | Insn.K_load | K_store ->
      let addr = effective_addr insn ~base:s.Iq.src1_i in
      schedule t ~cycle:(t.now + 1)
        {
          ev_seq = s.Iq.seq;
          ev_rob = s.Iq.rob_idx;
          ev_kind = Agen;
          ev_addr = addr;
          ev_di = s.Iq.src2_i;
          ev_df = s.Iq.src2_f;
          ev_dtag = s.Iq.src2_tag;
        }
  | K_int | K_fp | K_branch | K_jump | K_call | K_return | K_ijump | K_nop | K_halt ->
      let vi, vf, taken, npc =
        compute insn ~pc:s.Iq.pc ~s1i:s.Iq.src1_i ~s1f:s.Iq.src1_f ~s2i:s.Iq.src2_i
          ~s2f:s.Iq.src2_f
      in
      e.Rob.value_i <- vi;
      e.Rob.value_f <- vf;
      e.Rob.taken <- taken;
      e.Rob.actual_npc <- npc;
      let lat = max 1 (Insn.latency insn) in
      schedule t ~cycle:(t.now + lat)
        { ev_seq = s.Iq.seq; ev_rob = s.Iq.rob_idx; ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 });
  if not s.Iq.reusable then s.Iq.dead <- true

let issue_stage t =
  let width = t.cfg.Config.issue_width in
  if Iq.count t.iq > 0 then charge1 t Component.Iq_select;
  (* Collect the [width] oldest ready instructions (the array is not in
     age order during Code Reuse, so order by sequence number). *)
  let cand = Array.make width (-1) in
  let cand_seq = Array.make width max_int in
  let slots = Iq.slots t.iq in
  for i = 0 to Iq.count t.iq - 1 do
    let s = slots.(i) in
    let is_store = match Insn.kind s.Iq.insn with Insn.K_store -> true | _ -> false in
    if
      (not s.Iq.dead) && (not s.Iq.issued) && s.Iq.src1_tag = -1
      && (s.Iq.src2_tag = -1 || is_store)
    then begin
      (* Insertion into the running top-[width] youngest-seq table. *)
      let j = ref (width - 1) in
      if s.Iq.seq < cand_seq.(!j) then begin
        while !j > 0 && s.Iq.seq < cand_seq.(!j - 1) do
          cand_seq.(!j) <- cand_seq.(!j - 1);
          cand.(!j) <- cand.(!j - 1);
          decr j
        done;
        cand_seq.(!j) <- s.Iq.seq;
        cand.(!j) <- i
      end
    end
  done;
  for k = 0 to width - 1 do
    if cand.(k) >= 0 then begin
      let s = slots.(cand.(k)) in
      let lat = max 1 (Insn.latency s.Iq.insn) in
      if Fu.acquire t.fu s.Iq.fu ~now:t.now ~latency:lat ~pipelined:(Insn.pipelined s.Iq.insn)
      then issue_slot t s
    end
  done

(* ------------------------------------------------------------------ *)
(* Dispatch (rename + queue): normal mode.                             *)
(* ------------------------------------------------------------------ *)

let fill_rob_entry t ~rob_idx ~seq ~pc ~insn ~pred_npc ~ras_ck ~from_reuse =
  let e = Rob.entry t.rob rob_idx in
  e.Rob.seq <- seq;
  e.Rob.pc <- pc;
  e.Rob.insn <- insn;
  e.Rob.completed <- false;
  e.Rob.value_i <- 0;
  e.Rob.value_f <- 0.;
  e.Rob.dest <- (match Insn.dest insn with Some d -> d | None -> -1);
  e.Rob.is_store <- (match Insn.kind insn with Insn.K_store -> true | _ -> false);
  e.Rob.lsq_idx <- -1;
  e.Rob.is_ctrl <- Insn.is_ctrl insn;
  e.Rob.pred_npc <- pred_npc;
  e.Rob.actual_npc <- pc + 4;
  e.Rob.taken <- false;
  e.Rob.ras_ck <- ras_ck;
  e.Rob.from_reuse <- from_reuse;
  e

let is_mem insn =
  match Insn.kind insn with Insn.K_load | K_store -> true | _ -> false

let rename_into_slot t (s : Iq.slot) ~seq ~rob_idx ~pc ~insn ~pred_npc =
  charge1 t Component.Rename;
  let r1, r2 = operand_regs insn in
  let t1, v1i, v1f = read_operand t r1 in
  let t2, v2i, v2f = read_operand t r2 in
  s.Iq.seq <- seq;
  s.Iq.rob_idx <- rob_idx;
  s.Iq.pc <- pc;
  s.Iq.insn <- insn;
  s.Iq.fu <- Insn.fu insn;
  s.Iq.src1_tag <- t1;
  s.Iq.src1_i <- v1i;
  s.Iq.src1_f <- v1f;
  s.Iq.src2_tag <- t2;
  s.Iq.src2_i <- v2i;
  s.Iq.src2_f <- v2f;
  s.Iq.issued <- false;
  s.Iq.pred_npc <- pred_npc;
  (match Insn.dest insn with
  | Some d -> t.map.(d) <- rob_idx
  | None -> ())

(* Dispatch one decoded instruction; returns false on a structural stall. *)
let dispatch_one t (f : fetched) =
  if Rob.is_full t.rob then false
  else if Iq.is_full t.iq then begin
    (* Queue exhausted while buffering a loop (e.g. a too-large procedure
       inside it): the loop is non-bufferable (Section 2.2.2). *)
    if t.reuse.Reuse_state.state = Reuse_state.Buffering && f.f_buffered then
      revoke_buffering t ~register_nblt:true ~cause:Rv_overflow;
    false
  end
  else if is_mem f.f_insn && Lsq.is_full t.lsq then false
  else begin
    let seq = next_seq t in
    let rob_idx = Rob.alloc t.rob in
    charge1 t Component.Rob;
    let e =
      fill_rob_entry t ~rob_idx ~seq ~pc:f.f_pc ~insn:f.f_insn ~pred_npc:f.f_pred_npc
        ~ras_ck:f.f_ras_ck ~from_reuse:false
    in
    if is_mem f.f_insn then begin
      let li = Lsq.alloc t.lsq in
      let le = Lsq.entry t.lsq li in
      le.Lsq.seq <- seq;
      le.Lsq.rob_idx <- rob_idx;
      le.Lsq.is_store <- e.Rob.is_store;
      le.Lsq.is_fp <- is_fp_mem f.f_insn;
      le.Lsq.width <- Insn.access_bytes f.f_insn;
      e.Rob.lsq_idx <- li
    end;
    let s = Iq.dispatch t.iq in
    rename_into_slot t s ~seq ~rob_idx ~pc:f.f_pc ~insn:f.f_insn ~pred_npc:f.f_pred_npc;
    charge1 t Component.Iq_payload;
    let buffering = t.reuse.Reuse_state.state = Reuse_state.Buffering in
    if buffering && f.f_buffered then begin
      s.Iq.reusable <- true;
      charge1 t Component.Lrl;
      t.reuse.Reuse_state.iter_count <- t.reuse.Reuse_state.iter_count + 1;
      if t.reuse.Reuse_state.first_buffered_seq = -1 then
        t.reuse.Reuse_state.first_buffered_seq <- seq;
      (* Iteration boundary: the loop-ending instruction was dispatched. *)
      if f.f_pc = t.reuse.Reuse_state.tail then begin
        let iter_size = t.reuse.Reuse_state.iter_count in
        t.reuse.Reuse_state.iters_buffered <- t.reuse.Reuse_state.iters_buffered + 1;
        t.reuse.Reuse_state.iter_count <- 0;
        let continue_buffering =
          t.cfg.Config.buffer_multiple_iterations && Iq.free t.iq >= iter_size
        in
        if not continue_buffering then begin
          let r =
            loop_record t ~head:t.reuse.Reuse_state.head
              ~tail:t.reuse.Reuse_state.tail
          in
          r.ld_promotions <- r.ld_promotions + 1;
          t.cur_reuse_tail <- t.reuse.Reuse_state.tail;
          Reuse_state.promote ~now:t.now t.reuse;
          Iq.set_reuse_ptr t.iq (Iq.first_reusable t.iq);
          flush_front_end t
        end
      end
    end;
    true
  end

let dispatch_normal t =
  let budget = ref t.cfg.Config.decode_width in
  let continue_ = ref true in
  while
    !continue_ && !budget > 0
    && (not (Queue.is_empty t.decode_latch))
    && t.reuse.Reuse_state.state <> Reuse_state.Reusing
  do
    let f = Queue.peek t.decode_latch in
    if dispatch_one t f then begin
      (* [dispatch_one] may have promoted to Code Reuse and flushed the
         front-end queues, in which case the latch is now empty. *)
      if not (Queue.is_empty t.decode_latch) then ignore (Queue.pop t.decode_latch);
      decr budget
    end
    else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Dispatch in Code Reuse state: the queue feeds rename itself.        *)
(* ------------------------------------------------------------------ *)

(* [allow_wrap] implements the paper's unidirectional scan: within one
   cycle the pointer only moves forward; it resets to the first buffered
   instruction after the last one is reused, so a wrap ends the cycle's
   dispatch group. *)
let reuse_dispatch_one t ~allow_wrap =
  let first = Iq.first_reusable t.iq in
  if first < 0 then false
  else begin
    let p = Iq.reuse_ptr t.iq in
    let needs_wrap = p >= Iq.count t.iq || not (Iq.slots t.iq).(p).Iq.reusable in
    if needs_wrap && not allow_wrap then false
    else begin
    let rptr = if needs_wrap then first else p in
    let s = (Iq.slots t.iq).(rptr) in
    if not s.Iq.issued then false (* previous instance still in flight *)
    else if Rob.is_full t.rob then false
    else if is_mem s.Iq.insn && Lsq.is_full t.lsq then false
    else begin
      let insn = s.Iq.insn in
      let pc = s.Iq.pc in
      let seq = next_seq t in
      let rob_idx = Rob.alloc t.rob in
      charge1 t Component.Rob;
      let e =
        fill_rob_entry t ~rob_idx ~seq ~pc ~insn ~pred_npc:s.Iq.pred_npc
          ~ras_ck:(Predictor.checkpoint t.pred) ~from_reuse:true
      in
      if is_mem insn then begin
        let li = Lsq.alloc t.lsq in
        let le = Lsq.entry t.lsq li in
        le.Lsq.seq <- seq;
        le.Lsq.rob_idx <- rob_idx;
        le.Lsq.is_store <- e.Rob.is_store;
        le.Lsq.is_fp <- is_fp_mem insn;
        le.Lsq.width <- Insn.access_bytes insn;
        e.Rob.lsq_idx <- li
      end;
      (* Partial update: only the register information and the ROB pointer
         change (Section 2.4) — renaming happens as in normal dispatch. *)
      rename_into_slot t s ~seq ~rob_idx ~pc ~insn ~pred_npc:s.Iq.pred_npc;
      s.Iq.reusable <- true;
      charge1 t Component.Lrl;
      charge t Component.Iq_payload Model.iq_partial_update_fraction;
      t.n_reuse_dispatch <- t.n_reuse_dispatch + 1;
      Iq.set_reuse_ptr t.iq (rptr + 1);
      true
    end
    end
  end

let dispatch_reuse t =
  let budget = ref t.cfg.Config.issue_width in
  let continue_ = ref true in
  (* The pointer reset after the last buffered instruction (Section 2.4)
     is modelled as free within the cycle: the buffered region behaves as
     a circular buffer for the "first n from the pointer" check. *)
  while !continue_ && !budget > 0 && t.reuse.Reuse_state.state = Reuse_state.Reusing do
    if reuse_dispatch_one t ~allow_wrap:true then decr budget else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Decode stage: loop detection and classification (Section 2.1).      *)
(* ------------------------------------------------------------------ *)

let decode_reuse_hooks t (f : fetched) =
  if t.cfg.Config.reuse_enabled then begin
    let r = t.reuse in
    match r.Reuse_state.state with
    | Reuse_state.Normal -> (
        if Insn.is_ctrl f.f_insn then charge1 t Component.Reuse_logic;
        match
          Detector.examine ~tracer:t.tracer ~now:t.now ~iq_size:t.cfg.Config.iq_entries
            ~pc:f.f_pc f.f_insn
        with
        | Detector.Capturable { head; tail; span = _ } ->
            r.Reuse_state.n_detections <- r.Reuse_state.n_detections + 1;
            let ld = loop_record t ~head ~tail in
            ld.ld_detections <- ld.ld_detections + 1;
            charge1 t Component.Nblt;
            if Nblt.mem t.nblt tail then begin
              r.Reuse_state.n_nblt_filtered <- r.Reuse_state.n_nblt_filtered + 1;
              ld.ld_nblt_filtered <- ld.ld_nblt_filtered + 1;
              if Tracer.enabled t.tracer then
                Tracer.instant t.tracer ~now:t.now
                  ~args:[ ("head", Tracer.Int head); ("tail", Tracer.Int tail) ]
                  ~cat:"nblt" "nblt-suppress"
            end
            else if f.f_pred_npc = head then begin
              ld.ld_attempts <- ld.ld_attempts + 1;
              (* Detection works on the predicted target (Section 2.1):
                 buffering begins with the second iteration, so it only
                 makes sense when the branch is predicted to loop back. *)
              Reuse_state.start_buffering ~now:t.now r ~head ~tail
            end
        | Detector.Too_large _ | Detector.Not_a_loop -> ())
    | Reuse_state.Buffering ->
        let in_loop = Reuse_state.in_loop r ~pc:f.f_pc in
        let in_callee = r.Reuse_state.call_depth > 0 in
        f.f_buffered <- in_loop || in_callee;
        (match Insn.kind f.f_insn with
        | Insn.K_call -> if f.f_buffered then r.Reuse_state.call_depth <- r.Reuse_state.call_depth + 1
        | K_return ->
            if in_callee then r.Reuse_state.call_depth <- r.Reuse_state.call_depth - 1
        | K_branch | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt ->
            ());
        if (not in_loop) && not in_callee then
          (* The execution left the loop while buffering (Section 2.2.3). *)
          revoke_buffering t ~register_nblt:true ~cause:Rv_left_loop
        else begin
          match Detector.examine ~iq_size:t.cfg.Config.iq_entries ~pc:f.f_pc f.f_insn with
          | Detector.Capturable { tail; _ } when tail <> r.Reuse_state.tail ->
              (* An inner loop makes the current loop non-bufferable. *)
              revoke_buffering t ~register_nblt:true ~cause:Rv_inner_loop
          | Detector.Capturable _ | Detector.Too_large _ | Detector.Not_a_loop -> ()
        end
    | Reuse_state.Reusing -> ()
  end

let decode_stage t =
  if t.reuse.Reuse_state.state <> Reuse_state.Reusing then begin
    let room = t.cfg.Config.decode_width - Queue.length t.decode_latch in
    for _ = 1 to room do
      if
        (not (Queue.is_empty t.fetch_q))
        && t.reuse.Reuse_state.state <> Reuse_state.Reusing
      then begin
        let f = Queue.pop t.fetch_q in
        charge1 t Component.Decoder;
        decode_reuse_hooks t f;
        Queue.push f t.decode_latch
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Fetch stage.                                                        *)
(* ------------------------------------------------------------------ *)

let fetch_stage t =
  if
    t.reuse.Reuse_state.state <> Reuse_state.Reusing
    && t.fetch_pc >= 0
    && t.now >= t.fetch_stall_until
    && Queue.length t.fetch_q < t.cfg.Config.fetch_queue
    && Program.insn_at t.program t.fetch_pc <> None
  then begin
    (* The loop cache, when present and active, supplies the whole fetch
       group without touching the instruction cache or ITLB. *)
    let serve_lc =
      match t.lc with Some lc -> Loopcache.serving lc ~pc:t.fetch_pc | None -> false
    in
    let lat =
      if serve_lc then begin
        charge1 t Component.Loopcache;
        t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency
      end
      else fetch_latency t t.fetch_pc
    in
    if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then
      t.fetch_stall_until <- t.now + lat
    else begin
      let line = t.cfg.Config.mem.Hierarchy.l1i.Cache.line_bytes in
      let line_of pc = pc / line in
      let cur_line = ref (line_of t.fetch_pc) in
      let fetched = ref 0 in
      let continue_ = ref true in
      while
        !continue_ && !fetched < t.cfg.Config.fetch_width
        && Queue.length t.fetch_q < t.cfg.Config.fetch_queue
        && t.fetch_pc >= 0
      do
        (* Crossing into another cache line (sequentially or through a
           taken branch) costs another port access; a miss there ends the
           group and stalls the front end. Loop-cache-served groups never
           touch the line ports. *)
        if (not serve_lc) && line_of t.fetch_pc <> !cur_line then begin
          let lat = fetch_latency t t.fetch_pc in
          if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then begin
            t.fetch_stall_until <- t.now + lat;
            continue_ := false
          end
          else cur_line := line_of t.fetch_pc
        end;
        if !continue_ then begin
          match Program.insn_at t.program t.fetch_pc with
          | None -> continue_ := false
          | Some insn ->
              let pc = t.fetch_pc in
              let pred_npc, ck =
                if Insn.is_ctrl insn then begin
                  (match Insn.kind insn with
                  | Insn.K_branch -> charge1 t Component.Bpred_dir
                  | K_call | K_return -> charge1 t Component.Ras
                  | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt -> ());
                  charge1 t Component.Btb;
                  let d = Predictor.lookup t.pred ~pc ~insn in
                  let ck = Predictor.checkpoint t.pred in
                  let npc =
                    if d.Predictor.taken then
                      match d.Predictor.target with Some tgt -> tgt | None -> -1
                    else pc + 4
                  in
                  (npc, ck)
                end
                else (pc + 4, Predictor.checkpoint t.pred)
              in
              Queue.push
                { f_pc = pc; f_insn = insn; f_pred_npc = pred_npc; f_ras_ck = ck; f_buffered = false }
                t.fetch_q;
              (match t.lc with
              | Some lc ->
                  (* Fill writes are charged; supplied reads were charged
                     once for the group. *)
                  if Loopcache.state lc = Loopcache.Fill then charge1 t Component.Loopcache;
                  Loopcache.on_fetch lc ~pc ~insn ~pred_npc
              | None -> ());
              incr fetched;
              (match Insn.kind insn with
              | Insn.K_halt ->
                  t.fetch_pc <- -1;
                  continue_ := false
              | _ ->
                  t.fetch_pc <- pred_npc;
                  (* Unknown target: wait for the instruction to resolve. *)
                  if pred_npc < 0 then continue_ := false)
        end
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Cycle loop.                                                         *)
(* ------------------------------------------------------------------ *)

(* Windowed sample over (samp_last_cycle, now]: IPC, queue occupancies and
   per-group power, in [sample_channels] order. *)
let sample_values t =
  let dc = float_of_int (max 1 (t.now - t.samp_last_cycle)) in
  let v = Array.make (5 + Array.length sample_groups) 0. in
  v.(0) <- float_of_int (t.committed - t.samp_last_committed) /. dc;
  v.(1) <- float_of_int (Iq.count t.iq);
  v.(2) <- float_of_int (Rob.count t.rob);
  v.(3) <- float_of_int (Lsq.count t.lsq);
  let total = ref 0. in
  Array.iteri
    (fun i g ->
      let e = Account.group_energy t.acct g in
      let p = (e -. t.samp_last_energy.(i)) /. dc in
      t.samp_last_energy.(i) <- e;
      total := !total +. p;
      v.(4 + i) <- p)
    sample_groups;
  v.(4 + Array.length sample_groups) <- !total;
  t.samp_last_cycle <- t.now;
  t.samp_last_committed <- t.committed;
  v

let sample_tick t =
  let sampler_due =
    match t.sampler with Some s -> Sampler.due s ~cycle:t.now | None -> false
  in
  let tracer_due = Tracer.enabled t.tracer && t.now mod t.counter_stride = 0 in
  if sampler_due || tracer_due then begin
    let v = sample_values t in
    (match t.sampler with
    | Some s when sampler_due -> Sampler.record s ~cycle:t.now v
    | Some _ | None -> ());
    if tracer_due then begin
      Tracer.counter t.tracer ~now:t.now ~name:"ipc" [ ("ipc", v.(0)) ];
      Tracer.counter t.tracer ~now:t.now ~name:"occupancy"
        [ ("iq", v.(1)); ("rob", v.(2)); ("lsq", v.(3)) ];
      Tracer.counter t.tracer ~now:t.now ~name:"power"
        (Array.to_list
           (Array.mapi
              (fun i g -> (Component.group_name g, v.(4 + i)))
              sample_groups))
    end
  end

let step_cycle t =
  commit_stage t;
  if not t.halted then begin
    writeback_stage t;
    replay_stage t;
    issue_stage t;
    (match t.reuse.Reuse_state.state with
    | Reuse_state.Reusing -> dispatch_reuse t
    | Reuse_state.Normal | Reuse_state.Buffering -> dispatch_normal t);
    decode_stage t;
    fetch_stage t;
    if t.reuse.Reuse_state.state = Reuse_state.Reusing then begin
      t.gated_cycles <- t.gated_cycles + 1;
      charge1 t Component.Reuse_logic
    end;
    let removed = Iq.compact t.iq in
    if removed > 0 then charge t Component.Iq_payload (float_of_int removed)
  end;
  Account.tick t.acct;
  t.now <- t.now + 1;
  sample_tick t

let run ?(cycle_limit = 200_000_000) t =
  let rec go () =
    if t.halted then Halted
    else if t.now >= cycle_limit then Cycle_limit
    else begin
      step_cycle t;
      go ()
    end
  in
  go ()

let halted t = t.halted
let cycles t = t.now
let committed t = t.committed
let ipc t = if t.now = 0 then 0. else float_of_int t.committed /. float_of_int t.now
let gated_cycles t = t.gated_cycles
let occupancy t = (Iq.count t.iq, Rob.count t.rob, Lsq.count t.lsq)

let arch_state t =
  {
    Machine.final_pc = t.halt_pc + 4;
    instructions = t.committed;
    int_regs = Array.copy t.arch_i;
    fp_regs = Array.copy t.arch_f;
    memory =
      List.rev (Store.fold_nonzero t.memory ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc));
  }

let loop_decisions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.loop_log []
  |> List.sort (fun a b -> compare a.ld_tail b.ld_tail)

let account t = t.acct
let tracer t = t.tracer
let sampler t = t.sampler
let hierarchy t = t.hier
let reuse_state t = t.reuse
let nblt t = t.nblt
let loopcache t = t.lc
let config t = t.cfg

type stats = {
  cycles : int;
  committed : int;
  ipc : float;
  gated_cycles : int;
  gated_fraction : float;
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  reuse_dispatches : int;
  reuse_committed : int;
  buffer_attempts : int;
  revokes : int;
  promotions : int;
  reuse_exits : int;
  avg_power : float;
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
}

let stats t =
  {
    cycles = t.now;
    committed = t.committed;
    ipc = ipc t;
    gated_cycles = t.gated_cycles;
    gated_fraction = (if t.now = 0 then 0. else float_of_int t.gated_cycles /. float_of_int t.now);
    branches = t.n_branches;
    mispredicts = t.n_mispredicts;
    loads = t.n_loads;
    stores = t.n_stores;
    reuse_dispatches = t.n_reuse_dispatch;
    reuse_committed = t.n_reuse_commit;
    buffer_attempts = t.reuse.Reuse_state.n_buffer_attempts;
    revokes = t.reuse.Reuse_state.n_revokes;
    promotions = t.reuse.Reuse_state.n_promotions;
    reuse_exits = t.reuse.Reuse_state.n_reuse_exits;
    avg_power = Account.avg_power t.acct;
    icache_accesses = Cache.accesses (Hierarchy.l1i t.hier);
    icache_misses = Cache.misses (Hierarchy.l1i t.hier);
    dcache_accesses = Cache.accesses (Hierarchy.l1d t.hier);
    dcache_misses = Cache.misses (Hierarchy.l1d t.hier);
  }
