open Riq_util
open Riq_isa
open Riq_asm
open Riq_mem
open Riq_branch
open Riq_power
open Riq_ooo
open Riq_interp
open Riq_obs

(* The packed fast-path execution core. The pipeline structure is the
   seed core's (see [Slowpath], the locked reference copy the
   differential suite compares against), but every per-instruction
   property is pre-decoded once at [create] into the flat side tables of
   [Decoded], and the cycle loop's dynamic structures are preallocated
   flat arrays:

   - fetch queue and decode latch are rings of mutable records instead
     of [Queue.t]s (no cell allocation per instruction);
   - the writeback event set is a ring-indexed event wheel instead of a
     per-cycle [Hashtbl] of lists (no bucket/cons allocation, no hash);
   - load replays live in a swap-buffered FIFO of int arrays;
   - execute is a single dispatch on the dense opcode, reading
     pre-transformed immediates and absolute targets from the tables.

   Everything observable — architectural state, statistics counters, and
   the exact per-component order of power charges (floats accumulate, so
   charge order matters bit-for-bit) — is kept identical to the seed
   core; the differential suite asserts this on every corpus program. *)

(* Instruction fetched but not yet dispatched: one preallocated record
   per ring slot, fields overwritten in place. *)
type fetched = {
  mutable f_pc : int;
  mutable f_wi : int; (* word index into the side tables *)
  mutable f_pred_npc : int; (* -1: unknown target, fetch stalls until resolution *)
  mutable f_ras_ck : Predictor.checkpoint;
  mutable f_buffered : bool; (* classification decided at decode *)
}

type ring = { slots : fetched array; mutable head : int; mutable len : int }

let ring_create cap =
  {
    slots =
      Array.init cap (fun _ ->
          { f_pc = 0; f_wi = -1; f_pred_npc = 0; f_ras_ck = 0; f_buffered = false });
    head = 0;
    len = 0;
  }

let ring_cap r = Array.length r.slots
let ring_clear r = r.len <- 0

let ring_push r =
  let i = r.head + r.len in
  let i = if i >= Array.length r.slots then i - Array.length r.slots else i in
  r.len <- r.len + 1;
  r.slots.(i)

let ring_peek r = r.slots.(r.head)

let ring_pop r =
  r.head <- r.head + 1;
  if r.head = Array.length r.slots then r.head <- 0;
  r.len <- r.len - 1

(* Event wheel: writeback events indexed by [cycle land wheel_mask].
   The maximum schedule distance is bounded by the worst-case memory
   latency chain (TLB walk + L2 + DRAM bursts, well under 200 cycles),
   so a 256-slot wheel always has the target slot drained before any
   event can wrap onto it; [schedule] enforces the horizon. *)
let wheel_size = 256
let wheel_mask = wheel_size - 1
let ev_complete = 0
let ev_agen = 1

(* Why a buffering attempt was revoked, one constructor per revoke site.
   The static side (Riq_analysis.Bufferability) predicts these; keeping
   per-cause counters is what lets the oracle cross-check prediction
   against execution. *)
type revoke_cause =
  | Rv_inner_loop (* decode saw a second capturable backward transfer *)
  | Rv_left_loop (* decode left the window before promotion *)
  | Rv_overflow (* the issue queue filled while buffering *)
  | Rv_mispredict (* recovery from a mispredict older than the loop *)

let revoke_cause_to_string = function
  | Rv_inner_loop -> "inner-loop"
  | Rv_left_loop -> "left-loop"
  | Rv_overflow -> "overflow"
  | Rv_mispredict -> "mispredict"

(* Per-loop decision record, keyed by the loop-ending instruction's pc —
   the same key the detector and NBLT use. Queryable after a run to
   compare the dynamic decisions with the static bufferability pass. *)
type loop_decision = {
  ld_head : int;
  ld_tail : int;
  ld_span : int;
  mutable ld_detections : int; (* detector hits at the tail *)
  mutable ld_nblt_filtered : int; (* detections suppressed by the NBLT *)
  mutable ld_attempts : int; (* buffering attempts started *)
  mutable ld_revokes : int;
  mutable ld_rv_inner : int; (* ld_revokes split by cause *)
  mutable ld_rv_left : int;
  mutable ld_rv_overflow : int;
  mutable ld_rv_mispredict : int;
  mutable ld_nblt_registered : int; (* revokes that registered in the NBLT *)
  mutable ld_promotions : int; (* reached Code Reuse *)
  mutable ld_reuse_committed : int; (* committed instructions supplied by reuse *)
}

(* Ways of the steady-state decode cache: dispatch descriptors for the
   loop being buffered, installed when buffering starts and keyed by the
   loop tail — the same key the reuse IQ and the NBLT use. *)
let dc_ways = 16

type t = {
  cfg : Config.t;
  program : Program.t;
  dec : Decoded.t; (* pre-decoded side tables, built once *)
  memory : Store.t;
  hier : Hierarchy.t;
  pred : Predictor.t;
  rob : Rob.t;
  iq : Iq.t;
  lsq : Lsq.t;
  fu : Fu.t;
  acct : Account.t;
  reuse : Reuse_state.t;
  nblt : Nblt.t;
  lc : Loopcache.t option; (* related-work baseline, Config.loop_cache *)
  arch_i : int array;
  arch_f : float array;
  map : int array; (* logical register -> ROB index, -1 = architectural *)
  mutable fetch_pc : int; (* -1: blocked until redirect *)
  mutable fetch_stall_until : int;
  fetch_q : ring;
  decode_latch : ring;
  mutable now : int;
  mutable seq_ctr : int;
  (* Event wheel, struct-of-arrays per slot; [ev_n.(i)] live events. *)
  ev_n : int array;
  ev_seq : int array array;
  ev_rob : int array array;
  ev_kind : int array array;
  ev_addr : int array array;
  ev_di : int array array;
  ev_dtag : int array array;
  ev_df : float array array;
  mutable ev_ord : int array; (* drain-order scratch *)
  (* Replay FIFO: arrival-ordered parallel arrays, swap-buffered. *)
  mutable rp_n : int;
  mutable rp_seq : int array;
  mutable rp_rob : int array;
  mutable rp_addr : int array;
  mutable rp2_seq : int array;
  mutable rp2_rob : int array;
  mutable rp2_addr : int array;
  (* Decode cache: per-way loop window [dc_head..dc_tail] (word indices)
     and the dispatch descriptors covering it. *)
  dc_head : int array;
  dc_tail : int array;
  dc_desc : int array array;
  mutable dc_hits : int;
  mutable dc_installs : int;
  (* Issue-select scratch, [issue_width] wide, reset every cycle. *)
  issue_cand : Iq.slot array;
  issue_cand_seq : int array;
  (* Reuse-attribution memo: wi -> smallest logged window containing it
     (None = outside every window); invalidated when a window is logged. *)
  attr_memo : loop_decision option option array;
  mutable halted : bool;
  mutable halt_pc : int;
  mutable committed : int;
  mutable gated_cycles : int;
  mutable n_branches : int;
  mutable n_mispredicts : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_reuse_dispatch : int;
  mutable n_reuse_commit : int;
  loop_log : (int, loop_decision) Hashtbl.t; (* keyed by tail pc *)
  mutable cur_reuse_tail : int; (* tail of the last promoted loop, -1 = none *)
  (* Observability. The tracer defaults to the null sink (one dead branch
     per emission site); the sampler is absent unless attached. *)
  tracer : Tracer.t;
  sampler : Sampler.t option;
  counter_stride : int; (* cadence of the tracer's counter tracks *)
  mutable samp_last_cycle : int;
  mutable samp_last_committed : int;
  samp_last_energy : float array; (* per Component.group, at the last sample *)
}

type stop = Halted | Cycle_limit

(* Sample channels, in recording order; callers attaching a sampler must
   create it with exactly these (see [sample_channels] in the interface). *)
let sample_channels =
  [
    "ipc"; "iq"; "rob"; "lsq"; "power-icache"; "power-bpred"; "power-iq";
    "power-overhead"; "power-other"; "power-total";
  ]

let sample_groups =
  [| Component.G_icache; G_bpred; G_iq; G_overhead; G_other |]

let create ?tracer ?sampler cfg program =
  Config.validate cfg;
  let tracer = match tracer with Some tr -> tr | None -> Tracer.null () in
  if Tracer.enabled tracer then begin
    Tracer.set_thread_name tracer ~tid:0 "reuse-engine";
    Tracer.set_thread_name tracer ~tid:1 "pipeline-events"
  end;
  (match sampler with
  | Some s when Sampler.channels s <> sample_channels ->
      invalid_arg "Processor.create: sampler channels must be Processor.sample_channels"
  | Some _ | None -> ());
  let memory = Store.create () in
  Program.load program ~write_word:(Store.write_word memory);
  let arch_i = Array.make 32 0 in
  arch_i.(Reg.sp) <- Machine.default_sp;
  let iq = Iq.create cfg.Config.iq_entries in
  {
    cfg;
    program;
    dec = Decoded.of_program program;
    memory;
    hier = Hierarchy.create cfg.Config.mem;
    pred = Predictor.create cfg.Config.bpred;
    rob = Rob.create cfg.Config.rob_entries;
    iq;
    lsq = Lsq.create cfg.Config.lsq_entries;
    fu =
      Fu.create ~n_ialu:cfg.Config.n_ialu ~n_imult:cfg.Config.n_imult
        ~n_fpalu:cfg.Config.n_fpalu ~n_fpmult:cfg.Config.n_fpmult
        ~n_memport:cfg.Config.n_memport;
    acct = Account.create (Model.create (Config.power_geometry cfg));
    reuse = Reuse_state.create ~tracer ();
    nblt = Nblt.create ~tracer cfg.Config.nblt_entries;
    lc =
      (if cfg.Config.loop_cache_entries > 0 then
         Some (Loopcache.create cfg.Config.loop_cache_entries)
       else None);
    arch_i;
    arch_f = Array.make 32 0.;
    map = Array.make Reg.count (-1);
    fetch_pc = program.Program.entry;
    fetch_stall_until = 0;
    fetch_q = ring_create cfg.Config.fetch_queue;
    decode_latch = ring_create cfg.Config.decode_width;
    now = 0;
    seq_ctr = 0;
    ev_n = Array.make wheel_size 0;
    ev_seq = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_rob = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_kind = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_addr = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_di = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_dtag = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_df = Array.init wheel_size (fun _ -> Array.make 8 0.);
    ev_ord = Array.make 16 0;
    rp_n = 0;
    rp_seq = Array.make 16 0;
    rp_rob = Array.make 16 0;
    rp_addr = Array.make 16 0;
    rp2_seq = Array.make 16 0;
    rp2_rob = Array.make 16 0;
    rp2_addr = Array.make 16 0;
    dc_head = Array.make dc_ways (-1);
    dc_tail = Array.make dc_ways (-1);
    dc_desc = Array.init dc_ways (fun _ -> [||]);
    dc_hits = 0;
    dc_installs = 0;
    issue_cand = Array.make cfg.Config.issue_width (Iq.slots iq).(0);
    issue_cand_seq = Array.make cfg.Config.issue_width max_int;
    attr_memo = Array.make (max 1 (Array.length program.Program.code)) None;
    halted = false;
    halt_pc = 0;
    committed = 0;
    gated_cycles = 0;
    n_branches = 0;
    n_mispredicts = 0;
    n_loads = 0;
    n_stores = 0;
    n_reuse_dispatch = 0;
    n_reuse_commit = 0;
    loop_log = Hashtbl.create 16;
    cur_reuse_tail = -1;
    tracer;
    sampler;
    counter_stride =
      (match sampler with Some s -> Sampler.base_stride s | None -> 64);
    samp_last_cycle = 0;
    samp_last_committed = 0;
    samp_last_energy = Array.make (Array.length sample_groups) 0.;
  }

let loop_record t ~head ~tail =
  match Hashtbl.find_opt t.loop_log tail with
  | Some r -> r
  | None ->
      let r =
        {
          ld_head = head;
          ld_tail = tail;
          ld_span = ((tail - head) / 4) + 1;
          ld_detections = 0;
          ld_nblt_filtered = 0;
          ld_attempts = 0;
          ld_revokes = 0;
          ld_rv_inner = 0;
          ld_rv_left = 0;
          ld_rv_overflow = 0;
          ld_rv_mispredict = 0;
          ld_nblt_registered = 0;
          ld_promotions = 0;
          ld_reuse_committed = 0;
        }
      in
      Hashtbl.replace t.loop_log tail r;
      Array.fill t.attr_memo 0 (Array.length t.attr_memo) None;
      r

let charge t c n = Account.add t.acct c n
let charge1 t c = Account.add t.acct c 1.

let schedule t ~cycle ~seq ~rob ~kind ~addr ~di ~df ~dtag =
  if cycle <= t.now || cycle - t.now >= wheel_size then
    failwith "Processor.schedule: event outside the wheel horizon";
  let sl = cycle land wheel_mask in
  let n = t.ev_n.(sl) in
  if n = Array.length t.ev_seq.(sl) then begin
    let grow a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.ev_seq.(sl) <- grow t.ev_seq.(sl);
    t.ev_rob.(sl) <- grow t.ev_rob.(sl);
    t.ev_kind.(sl) <- grow t.ev_kind.(sl);
    t.ev_addr.(sl) <- grow t.ev_addr.(sl);
    t.ev_di.(sl) <- grow t.ev_di.(sl);
    t.ev_dtag.(sl) <- grow t.ev_dtag.(sl);
    let bf = Array.make (2 * n) 0. in
    Array.blit t.ev_df.(sl) 0 bf 0 n;
    t.ev_df.(sl) <- bf
  end;
  t.ev_seq.(sl).(n) <- seq;
  t.ev_rob.(sl).(n) <- rob;
  t.ev_kind.(sl).(n) <- kind;
  t.ev_addr.(sl).(n) <- addr;
  t.ev_di.(sl).(n) <- di;
  t.ev_dtag.(sl).(n) <- dtag;
  t.ev_df.(sl).(n) <- df;
  t.ev_n.(sl) <- n + 1

let schedule_complete t ~cycle ~seq ~rob =
  schedule t ~cycle ~seq ~rob ~kind:ev_complete ~addr:0 ~di:0 ~df:0. ~dtag:(-1)

let next_seq t =
  t.seq_ctr <- t.seq_ctr + 1;
  t.seq_ctr

let push_replay t ~seq ~rob ~addr =
  let n = t.rp_n in
  if n = Array.length t.rp_seq then begin
    let grow a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.rp_seq <- grow t.rp_seq;
    t.rp_rob <- grow t.rp_rob;
    t.rp_addr <- grow t.rp_addr
  end;
  t.rp_seq.(n) <- seq;
  t.rp_rob.(n) <- rob;
  t.rp_addr.(n) <- addr;
  t.rp_n <- n + 1

(* Memory hierarchy wrappers that charge the power account, including the
   L2 accesses triggered by L1 misses. *)
let fetch_latency t addr =
  let l1_before = Cache.accesses (Hierarchy.l1i t.hier) in
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.fetch_at t.hier ~now:t.now ~addr in
  (* With a filter cache, an L0 hit never reaches the L1I; charging by
     access deltas attributes the energy to the structure actually used. *)
  (match Hierarchy.l0i t.hier with
  | Some _ -> charge1 t Component.L0cache
  | None -> ());
  let d1 = Cache.accesses (Hierarchy.l1i t.hier) - l1_before in
  if d1 > 0 then charge t Component.Icache (float_of_int d1);
  charge1 t Component.Itlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

let data_latency t ~addr ~write =
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.data_at t.hier ~now:t.now ~addr ~write in
  charge1 t Component.Dcache;
  charge1 t Component.Dtlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

(* Resolve one source operand through the map table directly into the
   slot's src fields; registers are plain ints ([0..31] integer file,
   [32..63] FP file) so no tuple or option is allocated. *)
let read_src1 t (s : Iq.slot) r =
  if r < 0 then begin
    s.Iq.src1_tag <- -1;
    s.Iq.src1_i <- 0;
    s.Iq.src1_f <- 0.
  end
  else begin
    charge1 t Component.Regfile;
    let idx = t.map.(r) in
    if idx = -1 then
      if r >= 32 then begin
        s.Iq.src1_tag <- -1;
        s.Iq.src1_i <- 0;
        s.Iq.src1_f <- t.arch_f.(r - 32)
      end
      else begin
        s.Iq.src1_tag <- -1;
        s.Iq.src1_i <- t.arch_i.(r);
        s.Iq.src1_f <- 0.
      end
    else begin
      let e = Rob.entry t.rob idx in
      if e.Rob.completed then begin
        s.Iq.src1_tag <- -1;
        s.Iq.src1_i <- e.Rob.value_i;
        s.Iq.src1_f <- e.Rob.value_f
      end
      else begin
        s.Iq.src1_tag <- idx;
        s.Iq.src1_i <- 0;
        s.Iq.src1_f <- 0.
      end
    end
  end

let read_src2 t (s : Iq.slot) r =
  if r < 0 then begin
    s.Iq.src2_tag <- -1;
    s.Iq.src2_i <- 0;
    s.Iq.src2_f <- 0.
  end
  else begin
    charge1 t Component.Regfile;
    let idx = t.map.(r) in
    if idx = -1 then
      if r >= 32 then begin
        s.Iq.src2_tag <- -1;
        s.Iq.src2_i <- 0;
        s.Iq.src2_f <- t.arch_f.(r - 32)
      end
      else begin
        s.Iq.src2_tag <- -1;
        s.Iq.src2_i <- t.arch_i.(r);
        s.Iq.src2_f <- 0.
      end
    else begin
      let e = Rob.entry t.rob idx in
      if e.Rob.completed then begin
        s.Iq.src2_tag <- -1;
        s.Iq.src2_i <- e.Rob.value_i;
        s.Iq.src2_f <- e.Rob.value_f
      end
      else begin
        s.Iq.src2_tag <- idx;
        s.Iq.src2_i <- 0;
        s.Iq.src2_f <- 0.
      end
    end
  end

(* Operation groups of the dense opcode space, for the execute dispatch. *)
let alu_ops = [| Insn.Add; Sub; And; Or; Xor; Nor; Slt; Sltu |] (* 0..7 *)
let alui_ops = [| Insn.Add; And; Or; Xor; Slt; Sltu |] (* 8..13 *)
let shift_ops = [| Insn.Sll; Srl; Sra |] (* 14..16 imm, 17..19 variable *)
let fpu_ops = [| Insn.Fadd; Fsub; Fmul; Fdiv; Fsqrt; Fneg; Fabs; Fmov |] (* 23..30 *)
let fcmp_ops = [| Insn.Feq; Flt; Fle |] (* 31..33 *)
let br_conds = [| Insn.Beq; Bne; Blez; Bgtz; Bltz; Bgez |] (* 46..51 *)

(* Execute a non-memory instruction straight into its ROB entry: one
   dispatch on the dense opcode, immediates and branch/jump targets read
   pre-transformed from the side tables. Memory operations never reach
   this (they go through address generation); 57/58 (nop/halt) keep the
   defaults. *)
let execute_into t (e : Rob.entry) ~wi ~pc ~s1i ~s1f ~s2i ~s2f =
  let d = t.dec in
  let next = pc + 4 in
  e.Rob.value_i <- 0;
  e.Rob.value_f <- 0.;
  e.Rob.taken <- false;
  e.Rob.actual_npc <- next;
  let c = d.Decoded.exe.(wi) in
  if c < 8 then e.Rob.value_i <- Semantics.alu alu_ops.(c) s1i s2i
  else if c < 14 then
    e.Rob.value_i <- Semantics.alu alui_ops.(c - 8) s1i d.Decoded.imm.(wi)
  else if c < 17 then
    e.Rob.value_i <- Semantics.shift shift_ops.(c - 14) s1i d.Decoded.imm.(wi)
  else if c < 20 then
    e.Rob.value_i <- Semantics.shift shift_ops.(c - 17) s1i s2i
  else if c = 20 then e.Rob.value_i <- d.Decoded.imm.(wi) (* lui, pre-shifted *)
  else if c = 21 then e.Rob.value_i <- Semantics.mul s1i s2i
  else if c = 22 then e.Rob.value_i <- Semantics.div s1i s2i
  else if c < 31 then e.Rob.value_f <- Semantics.fpu fpu_ops.(c - 23) s1f s2f
  else if c < 34 then e.Rob.value_i <- Semantics.fcmp fcmp_ops.(c - 31) s1f s2f
  else if c = 34 then e.Rob.value_f <- Semantics.cvt_s_w s1i
  else if c = 35 then e.Rob.value_i <- Semantics.cvt_w_s s1f
  else if c >= 46 then
    if c <= 51 then begin
      let taken = Semantics.branch_taken br_conds.(c - 46) s1i s2i in
      e.Rob.taken <- taken;
      if taken then e.Rob.actual_npc <- d.Decoded.target.(wi)
    end
    else if c = 52 then begin
      e.Rob.taken <- true;
      e.Rob.actual_npc <- d.Decoded.target.(wi)
    end
    else if c = 53 then begin
      e.Rob.value_i <- next;
      e.Rob.taken <- true;
      e.Rob.actual_npc <- d.Decoded.target.(wi)
    end
    else if c <= 55 then begin
      e.Rob.taken <- true;
      e.Rob.actual_npc <- s1i
    end
    else if c = 56 then begin
      e.Rob.value_i <- next;
      e.Rob.taken <- true;
      e.Rob.actual_npc <- s1i
    end

(* The integer value a load produces, per the side tables' extension
   code: extract and extend the low bits per width and signedness. *)
let load_from_reg ext raw =
  if ext = Decoded.ext_word then Bits.of_i32 raw
  else if ext = Decoded.ext_s8 then Bits.sign_extend raw ~width:8
  else if ext = Decoded.ext_u8 then raw land 0xFF
  else if ext = Decoded.ext_s16 then Bits.sign_extend raw ~width:16
  else raw land 0xFFFF

let load_from_memory t ext addr =
  if ext = Decoded.ext_word then Bits.of_i32 (Store.read_word t.memory addr)
  else if ext = Decoded.ext_s8 then Bits.sign_extend (Store.read_byte t.memory addr) ~width:8
  else if ext = Decoded.ext_u8 then Store.read_byte t.memory addr
  else if ext = Decoded.ext_s16 then Bits.sign_extend (Store.read_half t.memory addr) ~width:16
  else Store.read_half t.memory addr

(* ------------------------------------------------------------------ *)
(* Misprediction recovery and reuse-engine state transitions.          *)
(* ------------------------------------------------------------------ *)

let rebuild_map t =
  Array.fill t.map 0 (Array.length t.map) (-1);
  Rob.iter_oldest_first t.rob (fun idx e ->
      if e.Rob.dest >= 0 then t.map.(e.Rob.dest) <- idx)

let flush_front_end t =
  ring_clear t.fetch_q;
  ring_clear t.decode_latch

let revoke_buffering t ~register_nblt ~cause =
  let r =
    loop_record t ~head:t.reuse.Reuse_state.head ~tail:t.reuse.Reuse_state.tail
  in
  r.ld_revokes <- r.ld_revokes + 1;
  (match cause with
  | Rv_inner_loop -> r.ld_rv_inner <- r.ld_rv_inner + 1
  | Rv_left_loop -> r.ld_rv_left <- r.ld_rv_left + 1
  | Rv_overflow -> r.ld_rv_overflow <- r.ld_rv_overflow + 1
  | Rv_mispredict -> r.ld_rv_mispredict <- r.ld_rv_mispredict + 1);
  if Tracer.enabled t.tracer then
    Tracer.instant t.tracer ~now:t.now
      ~args:
        [
          ("head", Tracer.Int t.reuse.Reuse_state.head);
          ("tail", Tracer.Int t.reuse.Reuse_state.tail);
          ("cause", Tracer.Str (revoke_cause_to_string cause));
          ("registered_nblt", Tracer.Int (if register_nblt then 1 else 0));
        ]
      ~cat:"reuse" "revoke";
  if register_nblt then begin
    r.ld_nblt_registered <- r.ld_nblt_registered + 1;
    charge1 t Component.Nblt;
    Nblt.insert ~now:t.now t.nblt t.reuse.Reuse_state.tail
  end;
  Iq.clear_classification t.iq;
  Reuse_state.revoke ~now:t.now t.reuse

let exit_reuse t =
  Iq.clear_classification t.iq;
  Iq.set_reuse_ptr t.iq 0;
  Reuse_state.exit_reuse ~now:t.now t.reuse

(* Conventional branch-misprediction recovery (Section 2.5), plus the
   revoke / reuse-exit that accompanies it in the buffering states. *)
let recover t (e : Rob.entry) =
  let seq = e.Rob.seq in
  if Tracer.enabled t.tracer then
    Tracer.instant t.tracer ~now:t.now
      ~args:[ ("pc", Tracer.Int e.Rob.pc); ("redirect", Tracer.Int e.Rob.actual_npc) ]
      ~cat:"pipeline" "pipeline-flush";
  Rob.squash_after t.rob ~seq ~f:(fun _ _ -> ());
  Lsq.squash_after t.lsq ~seq;
  Iq.squash_after t.iq ~seq;
  rebuild_map t;
  Predictor.restore t.pred e.Rob.ras_ck;
  flush_front_end t;
  t.fetch_pc <- e.Rob.actual_npc;
  t.fetch_stall_until <- t.now + 1;
  (* Drop replays younger than the redirect, keeping arrival order. *)
  let w = ref 0 in
  for i = 0 to t.rp_n - 1 do
    if t.rp_seq.(i) <= seq then begin
      t.rp_seq.(!w) <- t.rp_seq.(i);
      t.rp_rob.(!w) <- t.rp_rob.(i);
      t.rp_addr.(!w) <- t.rp_addr.(i);
      incr w
    end
  done;
  t.rp_n <- !w;
  Option.iter Loopcache.reset t.lc;
  match t.reuse.Reuse_state.state with
  | Reuse_state.Normal -> ()
  | Reuse_state.Buffering ->
      (* A wrong path inside the loop (including the loop exit) makes the
         loop non-bufferable; a mispredict older than the loop is a plain
         revoke. *)
      let in_loop = Reuse_state.in_loop t.reuse ~pc:e.Rob.pc in
      revoke_buffering t ~register_nblt:in_loop
        ~cause:(if in_loop then Rv_left_loop else Rv_mispredict)
  | Reuse_state.Reusing -> exit_reuse t

(* ------------------------------------------------------------------ *)
(* Commit stage.                                                       *)
(* ------------------------------------------------------------------ *)

let commit_one t (e : Rob.entry) =
  charge1 t Component.Rob;
  (match e.Rob.dest with
  | -1 -> ()
  | d ->
      charge1 t Component.Regfile;
      if d >= 32 then t.arch_f.(d - 32) <- e.Rob.value_f
      else t.arch_i.(d) <- e.Rob.value_i;
      let head_idx = Rob.head t.rob in
      if t.map.(d) = head_idx then t.map.(d) <- -1);
  if e.Rob.lsq_idx >= 0 then begin
    let le = Lsq.entry t.lsq e.Rob.lsq_idx in
    assert (Lsq.head_is t.lsq e.Rob.lsq_idx);
    if e.Rob.is_store then begin
      t.n_stores <- t.n_stores + 1;
      charge1 t Component.Lsq;
      ignore (data_latency t ~addr:le.Lsq.addr ~write:true);
      if le.Lsq.is_fp then Store.write_float t.memory le.Lsq.addr le.Lsq.data_f
      else if le.Lsq.width = 1 then Store.write_byte t.memory le.Lsq.addr le.Lsq.data_i
      else if le.Lsq.width = 2 then Store.write_half t.memory le.Lsq.addr le.Lsq.data_i
      else Store.write_word t.memory le.Lsq.addr (Bits.to_u32 le.Lsq.data_i)
    end
    else t.n_loads <- t.n_loads + 1;
    Lsq.pop_head t.lsq
  end;
  (match t.dec.Decoded.kind.(e.Rob.wi) with
  | Insn.K_halt ->
      t.halted <- true;
      t.halt_pc <- e.Rob.pc;
      (* End-of-run drain: everything still in flight is younger than the
         halt and will never execute, so empty the queues (no power
         charges) — [occupancy] reads (0, 0, 0) once [run] returns
         [Halted]. The halt itself is still at the ROB head; the normal
         [pop_head] below removes it. *)
      Rob.squash_after t.rob ~seq:e.Rob.seq ~f:(fun _ _ -> ());
      Lsq.squash_after t.lsq ~seq:e.Rob.seq;
      Iq.clear t.iq;
      flush_front_end t;
      Array.fill t.ev_n 0 wheel_size 0;
      t.rp_n <- 0;
      if Tracer.enabled t.tracer then
        Tracer.instant t.tracer ~now:t.now
          ~args:[ ("pc", Tracer.Int e.Rob.pc) ]
          ~cat:"pipeline" "halted"
  | K_branch | K_jump | K_call | K_return | K_ijump | K_int | K_fp | K_load
  | K_store | K_nop ->
      ());
  if e.Rob.from_reuse then begin
    t.n_reuse_commit <- t.n_reuse_commit + 1;
    (* Attribute to the smallest logged window containing the pc; callee
       instructions (outside every window) go to the loop being reused.
       Memoized per word index — reuse commits the same few pcs millions
       of times and the window set changes only when a loop is first
       logged (which clears the memo). *)
    let wi = e.Rob.wi in
    let best =
      match t.attr_memo.(wi) with
      | Some b -> b
      | None ->
          let best = ref None in
          Hashtbl.iter
            (fun _ r ->
              if e.Rob.pc >= r.ld_head && e.Rob.pc <= r.ld_tail then
                match !best with
                | Some b when b.ld_span <= r.ld_span -> ()
                | _ -> best := Some r)
            t.loop_log;
          t.attr_memo.(wi) <- Some !best;
          !best
    in
    match best with
    | Some r -> r.ld_reuse_committed <- r.ld_reuse_committed + 1
    | None -> (
        match Hashtbl.find_opt t.loop_log t.cur_reuse_tail with
        | Some r -> r.ld_reuse_committed <- r.ld_reuse_committed + 1
        | None -> ())
  end;
  t.committed <- t.committed + 1;
  Rob.pop_head t.rob

let commit_stage t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.cfg.Config.commit_width && not t.halted do
    if Rob.count t.rob = 0 then continue_ := false
    else begin
      let e = Rob.entry t.rob (Rob.head t.rob) in
      if e.Rob.completed then begin
        commit_one t e;
        incr n
      end
      else continue_ := false
    end
  done

(* ------------------------------------------------------------------ *)
(* Writeback: completion and address-generation events.                *)
(* ------------------------------------------------------------------ *)

let complete t (e : Rob.entry) rob_idx =
  e.Rob.completed <- true;
  charge1 t Component.Rob;
  charge1 t Component.Resultbus;
  charge1 t Component.Iq_wakeup;
  Iq.wakeup t.iq ~tag:rob_idx ~value_i:e.Rob.value_i ~value_f:e.Rob.value_f;
  (match Lsq.capture_data t.lsq ~tag:rob_idx ~value_i:e.Rob.value_i ~value_f:e.Rob.value_f with
  | [] -> ()
  | captured ->
      List.iter
        (fun (store_rob, store_seq) ->
          schedule_complete t ~cycle:(t.now + 1) ~seq:store_seq ~rob:store_rob)
        captured);
  if e.Rob.is_ctrl then begin
    t.n_branches <- t.n_branches + 1;
    (* Predictor tables are trained at resolution in every issue-queue
       state (lookups are what gating suppresses). *)
    let kind = t.dec.Decoded.kind.(e.Rob.wi) in
    (match kind with
    | Insn.K_branch -> charge1 t Component.Bpred_dir
    | K_jump | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store
    | K_nop | K_halt ->
        ());
    if e.Rob.taken then charge1 t Component.Btb;
    Predictor.resolve_decoded t.pred ~pc:e.Rob.pc ~kind ~taken:e.Rob.taken
      ~target:e.Rob.actual_npc;
    if e.Rob.actual_npc <> e.Rob.pred_npc then begin
      t.n_mispredicts <- t.n_mispredicts + 1;
      recover t e
    end
  end

(* A load attempting to execute: forward or access the cache. The LSQ
   search is charged once, on the first attempt — replayed loads sleep in
   the queue and are re-checked without a fresh CAM search. *)
let start_load ?(charge_search = true) t ~rob_idx ~(e : Rob.entry) ~addr =
  let le = Lsq.entry t.lsq e.Rob.lsq_idx in
  if charge_search then charge1 t Component.Lsq;
  match Lsq.check_load t.lsq ~idx:e.Rob.lsq_idx ~addr ~width:le.Lsq.width with
  | Lsq.Wait -> false
  | Lsq.Forward se ->
      if le.Lsq.is_fp then e.Rob.value_f <- se.Lsq.data_f
      else e.Rob.value_i <- load_from_reg t.dec.Decoded.ext.(e.Rob.wi) se.Lsq.data_i;
      schedule_complete t ~cycle:(t.now + 1) ~seq:e.Rob.seq ~rob:rob_idx;
      true
  | Lsq.Access ->
      let wi = e.Rob.wi in
      let lat =
        (* Wrong-path accesses may compute garbage addresses; an address
           is usable when non-negative and aligned to the access width. *)
        if addr >= 0 && addr land t.dec.Decoded.amask.(wi) = 0 then begin
          let lat = data_latency t ~addr ~write:false in
          if le.Lsq.is_fp then e.Rob.value_f <- Store.read_float t.memory addr
          else e.Rob.value_i <- load_from_memory t t.dec.Decoded.ext.(wi) addr;
          lat
        end
        else 1 (* wrong-path garbage address: complete without touching memory *)
      in
      schedule_complete t ~cycle:(t.now + lat) ~seq:e.Rob.seq ~rob:rob_idx;
      true

let process_agen t ~seq ~rob ~addr ~di ~df ~dtag =
  let e = Rob.entry t.rob rob in
  if e.Rob.seq = seq then begin
    let le = Lsq.entry t.lsq e.Rob.lsq_idx in
    le.Lsq.addr <- addr;
    le.Lsq.addr_ready <- true;
    charge1 t Component.Lsq;
    if e.Rob.is_store then begin
      if dtag = -1 then begin
        le.Lsq.data_i <- di;
        le.Lsq.data_f <- df;
        le.Lsq.data_ready <- true;
        (* The store has done all its execute-stage work. *)
        schedule_complete t ~cycle:(t.now + 1) ~seq ~rob
      end
      else begin
        (* Address is known; the data operand is still in flight and will
           arrive over the result bus. *)
        let producer = Rob.entry t.rob dtag in
        if producer.Rob.completed then begin
          le.Lsq.data_i <- producer.Rob.value_i;
          le.Lsq.data_f <- producer.Rob.value_f;
          le.Lsq.data_ready <- true;
          schedule_complete t ~cycle:(t.now + 1) ~seq ~rob
        end
        else Lsq.wait_data t.lsq le ~tag:dtag
      end
    end
    else if not (start_load t ~rob_idx:rob ~e ~addr) then
      push_replay t ~seq ~rob ~addr
  end

let writeback_stage t =
  let sl = t.now land wheel_mask in
  let n = t.ev_n.(sl) in
  if n > 0 then begin
    (* Snapshot the slot: events scheduled while draining always target a
       strictly later cycle, hence a different wheel slot. *)
    t.ev_n.(sl) <- 0;
    let seqs = t.ev_seq.(sl) in
    let robs = t.ev_rob.(sl) in
    let kinds = t.ev_kind.(sl) in
    let addrs = t.ev_addr.(sl) in
    let dis = t.ev_di.(sl) in
    let dtags = t.ev_dtag.(sl) in
    let dfs = t.ev_df.(sl) in
    if Array.length t.ev_ord < n then t.ev_ord <- Array.make (2 * n) 0;
    let ord = t.ev_ord in
    for i = 0 to n - 1 do
      ord.(i) <- i
    done;
    (* Drain order: sequence ascending; equal sequences in reverse
       insertion order (the seed stable-sorted a cons-built list, so the
       later insertion comes first within a sequence number). *)
    for i = 1 to n - 1 do
      let x = ord.(i) in
      let j = ref (i - 1) in
      while
        !j >= 0
        && (let y = ord.(!j) in
            seqs.(y) > seqs.(x) || (seqs.(y) = seqs.(x) && y < x))
      do
        ord.(!j + 1) <- ord.(!j);
        decr j
      done;
      ord.(!j + 1) <- x
    done;
    for k = 0 to n - 1 do
      let i = ord.(k) in
      let rob = robs.(i) in
      let seq = seqs.(i) in
      let e = Rob.entry t.rob rob in
      if e.Rob.seq = seq && not e.Rob.completed then
        if kinds.(i) = ev_complete then complete t e rob
        else
          process_agen t ~seq ~rob ~addr:addrs.(i) ~di:dis.(i) ~df:dfs.(i)
            ~dtag:dtags.(i)
    done
  end

let replay_stage t =
  let n = t.rp_n in
  if n > 0 then begin
    (* Swap the arrival-ordered FIFO into scratch; failed attempts are
       re-appended in processing order, exactly the order the seed's
       cons-and-reverse produced. *)
    let seqs = t.rp_seq and robs = t.rp_rob and addrs = t.rp_addr in
    t.rp_seq <- t.rp2_seq;
    t.rp_rob <- t.rp2_rob;
    t.rp_addr <- t.rp2_addr;
    t.rp2_seq <- seqs;
    t.rp2_rob <- robs;
    t.rp2_addr <- addrs;
    t.rp_n <- 0;
    for i = 0 to n - 1 do
      let seq = seqs.(i) and rob = robs.(i) and addr = addrs.(i) in
      let e = Rob.entry t.rob rob in
      if e.Rob.seq = seq && not e.Rob.completed then
        if not (start_load ~charge_search:false t ~rob_idx:rob ~e ~addr) then
          push_replay t ~seq ~rob ~addr
    done
  end

(* ------------------------------------------------------------------ *)
(* Issue stage: oldest-first selection of ready instructions.          *)
(* ------------------------------------------------------------------ *)

let issue_slot t (s : Iq.slot) =
  Iq.mark_issued t.iq s;
  charge1 t Component.Iq_payload;
  (match s.Iq.fu with
  | Insn.FU_ialu -> charge1 t Component.Ialu
  | FU_imult -> charge1 t Component.Imult
  | FU_fpalu -> charge1 t Component.Fpalu
  | FU_fpmult -> charge1 t Component.Fpmult
  | FU_mem -> charge1 t Component.Ialu (* address generation adder *)
  | FU_none -> ());
  let e = Rob.entry t.rob s.Iq.rob_idx in
  if s.Iq.is_mem then begin
    let addr = Bits.add32 s.Iq.src1_i t.dec.Decoded.imm.(s.Iq.wi) in
    schedule t ~cycle:(t.now + 1) ~seq:s.Iq.seq ~rob:s.Iq.rob_idx ~kind:ev_agen
      ~addr ~di:s.Iq.src2_i ~df:s.Iq.src2_f ~dtag:s.Iq.src2_tag
  end
  else begin
    execute_into t e ~wi:s.Iq.wi ~pc:s.Iq.pc ~s1i:s.Iq.src1_i ~s1f:s.Iq.src1_f
      ~s2i:s.Iq.src2_i ~s2f:s.Iq.src2_f;
    schedule_complete t ~cycle:(t.now + s.Iq.lat) ~seq:s.Iq.seq ~rob:s.Iq.rob_idx
  end;
  if not s.Iq.reusable then Iq.kill t.iq s

(* Top-level (closure-free) ready-ring walk: insertion into the running
   top-[width] youngest-seq candidate table. *)
let rec select_scan (rdy : Iq.slot) (cand : Iq.slot array) cand_seq width (s : Iq.slot) =
  if s != rdy then begin
    let j = ref (width - 1) in
    if s.Iq.seq < cand_seq.(!j) then begin
      while !j > 0 && s.Iq.seq < cand_seq.(!j - 1) do
        cand_seq.(!j) <- cand_seq.(!j - 1);
        cand.(!j) <- cand.(!j - 1);
        decr j
      done;
      cand_seq.(!j) <- s.Iq.seq;
      cand.(!j) <- s
    end;
    select_scan rdy cand cand_seq width s.Iq.r_next
  end

let issue_stage t =
  let width = t.cfg.Config.issue_width in
  if Iq.count t.iq > 0 then charge1 t Component.Iq_select;
  (* Collect the [width] oldest ready instructions from the ready ring
     (the ring is not in age order during Code Reuse, so order by
     sequence number — unique, so ring order cannot matter). *)
  let cand = t.issue_cand in
  let cand_seq = t.issue_cand_seq in
  Array.fill cand_seq 0 width max_int;
  let rdy = Iq.ready t.iq in
  select_scan rdy cand cand_seq width rdy.Iq.r_next;
  for k = 0 to width - 1 do
    if cand_seq.(k) < max_int then begin
      let s = cand.(k) in
      if Fu.acquire t.fu s.Iq.fu ~now:t.now ~latency:s.Iq.lat ~pipelined:s.Iq.pipe
      then issue_slot t s
    end
  done

(* ------------------------------------------------------------------ *)
(* Dispatch (rename + queue): normal mode.                             *)
(* ------------------------------------------------------------------ *)

let fill_rob_entry t ~rob_idx ~seq ~pc ~wi ~pred_npc ~ras_ck ~from_reuse ~dst
    ~is_store ~is_ctrl =
  let e = Rob.entry t.rob rob_idx in
  e.Rob.seq <- seq;
  e.Rob.pc <- pc;
  e.Rob.wi <- wi;
  e.Rob.completed <- false;
  e.Rob.value_i <- 0;
  e.Rob.value_f <- 0.;
  e.Rob.dest <- dst;
  e.Rob.is_store <- is_store;
  e.Rob.lsq_idx <- -1;
  e.Rob.is_ctrl <- is_ctrl;
  e.Rob.pred_npc <- pred_npc;
  e.Rob.actual_npc <- pc + 4;
  e.Rob.taken <- false;
  e.Rob.ras_ck <- ras_ck;
  e.Rob.from_reuse <- from_reuse;
  e

let rename_into_slot t (s : Iq.slot) ~seq ~rob_idx ~pc ~wi ~pred_npc ~d =
  charge1 t Component.Rename;
  read_src1 t s (Decoded.d_r1 d);
  read_src2 t s (Decoded.d_r2 d);
  s.Iq.seq <- seq;
  s.Iq.rob_idx <- rob_idx;
  s.Iq.pc <- pc;
  s.Iq.wi <- wi;
  s.Iq.fu <- Decoded.d_fu d;
  s.Iq.lat <- Decoded.d_lat d;
  s.Iq.pipe <- Decoded.d_pipe d;
  s.Iq.is_mem <- Decoded.d_is_mem d;
  s.Iq.is_store <- Decoded.d_is_store d;
  s.Iq.issued <- false;
  s.Iq.pred_npc <- pred_npc;
  let dst = Decoded.d_dst d in
  if dst >= 0 then t.map.(dst) <- rob_idx

(* Decode-cache lookup for the loop currently being buffered; falls back
   to packing a descriptor from the side tables (callee instructions
   buffered from inside the loop live outside the cached window). *)
let dcache_lookup t wi =
  let tail_wi = Decoded.wi_of_pc t.dec t.reuse.Reuse_state.tail in
  let way = tail_wi land (dc_ways - 1) in
  if t.dc_tail.(way) = tail_wi && wi >= t.dc_head.(way) && wi <= tail_wi then begin
    t.dc_hits <- t.dc_hits + 1;
    t.dc_desc.(way).(wi - t.dc_head.(way))
  end
  else Decoded.descriptor t.dec wi

let dcache_install t ~head ~tail =
  let head_wi = Decoded.wi_of_pc t.dec head in
  let tail_wi = Decoded.wi_of_pc t.dec tail in
  if head_wi >= 0 && tail_wi >= head_wi && tail_wi < t.dec.Decoded.n then begin
    let way = tail_wi land (dc_ways - 1) in
    if t.dc_tail.(way) <> tail_wi || t.dc_head.(way) <> head_wi then begin
      t.dc_installs <- t.dc_installs + 1;
      t.dc_head.(way) <- head_wi;
      t.dc_tail.(way) <- tail_wi;
      t.dc_desc.(way) <-
        Array.init (tail_wi - head_wi + 1) (fun k ->
            Decoded.descriptor t.dec (head_wi + k))
    end
  end

(* Dispatch one decoded instruction; returns false on a structural stall. *)
let dispatch_one t (f : fetched) =
  let buffering = t.reuse.Reuse_state.state = Reuse_state.Buffering in
  let d =
    if buffering && f.f_buffered then dcache_lookup t f.f_wi
    else Decoded.descriptor t.dec f.f_wi
  in
  let is_mem = Decoded.d_is_mem d in
  if Rob.is_full t.rob then false
  else if Iq.is_full t.iq then begin
    (* Queue exhausted while buffering a loop (e.g. a too-large procedure
       inside it): the loop is non-bufferable (Section 2.2.2). *)
    if buffering && f.f_buffered then
      revoke_buffering t ~register_nblt:true ~cause:Rv_overflow;
    false
  end
  else if is_mem && Lsq.is_full t.lsq then false
  else begin
    let seq = next_seq t in
    let rob_idx = Rob.alloc t.rob in
    charge1 t Component.Rob;
    let e =
      fill_rob_entry t ~rob_idx ~seq ~pc:f.f_pc ~wi:f.f_wi ~pred_npc:f.f_pred_npc
        ~ras_ck:f.f_ras_ck ~from_reuse:false ~dst:(Decoded.d_dst d)
        ~is_store:(Decoded.d_is_store d) ~is_ctrl:(Decoded.d_is_ctrl d)
    in
    if is_mem then begin
      let li = Lsq.alloc t.lsq in
      let le = Lsq.entry t.lsq li in
      le.Lsq.seq <- seq;
      le.Lsq.rob_idx <- rob_idx;
      le.Lsq.is_store <- e.Rob.is_store;
      le.Lsq.is_fp <- Decoded.d_is_fp_mem d;
      le.Lsq.width <- Decoded.d_width d;
      e.Rob.lsq_idx <- li
    end;
    let s = Iq.dispatch t.iq in
    rename_into_slot t s ~seq ~rob_idx ~pc:f.f_pc ~wi:f.f_wi ~pred_npc:f.f_pred_npc ~d;
    Iq.enqueue t.iq s;
    charge1 t Component.Iq_payload;
    if buffering && f.f_buffered then begin
      s.Iq.reusable <- true;
      charge1 t Component.Lrl;
      t.reuse.Reuse_state.iter_count <- t.reuse.Reuse_state.iter_count + 1;
      if t.reuse.Reuse_state.first_buffered_seq = -1 then
        t.reuse.Reuse_state.first_buffered_seq <- seq;
      (* Iteration boundary: the loop-ending instruction was dispatched. *)
      if f.f_pc = t.reuse.Reuse_state.tail then begin
        let iter_size = t.reuse.Reuse_state.iter_count in
        t.reuse.Reuse_state.iters_buffered <- t.reuse.Reuse_state.iters_buffered + 1;
        t.reuse.Reuse_state.iter_count <- 0;
        let continue_buffering =
          t.cfg.Config.buffer_multiple_iterations && Iq.free t.iq >= iter_size
        in
        if not continue_buffering then begin
          let r =
            loop_record t ~head:t.reuse.Reuse_state.head
              ~tail:t.reuse.Reuse_state.tail
          in
          r.ld_promotions <- r.ld_promotions + 1;
          t.cur_reuse_tail <- t.reuse.Reuse_state.tail;
          Reuse_state.promote ~now:t.now t.reuse;
          Iq.set_reuse_ptr t.iq (Iq.first_reusable t.iq);
          flush_front_end t
        end
      end
    end;
    true
  end

let dispatch_normal t =
  let budget = ref t.cfg.Config.decode_width in
  let continue_ = ref true in
  while
    !continue_ && !budget > 0
    && t.decode_latch.len > 0
    && t.reuse.Reuse_state.state <> Reuse_state.Reusing
  do
    let f = ring_peek t.decode_latch in
    if dispatch_one t f then begin
      (* [dispatch_one] may have promoted to Code Reuse and flushed the
         front-end queues, in which case the latch is now empty. *)
      if t.decode_latch.len > 0 then ring_pop t.decode_latch;
      decr budget
    end
    else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Dispatch in Code Reuse state: the queue feeds rename itself.        *)
(* ------------------------------------------------------------------ *)

(* Rename a reused slot in place: only the register information, the ROB
   pointer and the sequence number change (Section 2.4) — the payload
   fields cached at capture (wi, fu, latency, classification) are the
   point of reuse and stay. *)
let rename_reuse_slot t (s : Iq.slot) ~seq ~rob_idx =
  charge1 t Component.Rename;
  read_src1 t s t.dec.Decoded.r1.(s.Iq.wi);
  read_src2 t s t.dec.Decoded.r2.(s.Iq.wi);
  s.Iq.seq <- seq;
  s.Iq.rob_idx <- rob_idx;
  Iq.mark_renamed t.iq s;
  let dst = t.dec.Decoded.dst.(s.Iq.wi) in
  if dst >= 0 then t.map.(dst) <- rob_idx

(* [allow_wrap] implements the paper's unidirectional scan: within one
   cycle the pointer only moves forward; it resets to the first buffered
   instruction after the last one is reused, so a wrap ends the cycle's
   dispatch group. *)
let reuse_dispatch_one t ~allow_wrap =
  let first = Iq.first_reusable t.iq in
  if first < 0 then false
  else begin
    let p = Iq.reuse_ptr t.iq in
    let needs_wrap = p >= Iq.count t.iq || not (Iq.slots t.iq).(p).Iq.reusable in
    if needs_wrap && not allow_wrap then false
    else begin
      let rptr = if needs_wrap then first else p in
      let s = (Iq.slots t.iq).(rptr) in
      if not s.Iq.issued then false (* previous instance still in flight *)
      else if Rob.is_full t.rob then false
      else if s.Iq.is_mem && Lsq.is_full t.lsq then false
      else begin
        let wi = s.Iq.wi in
        let pc = s.Iq.pc in
        let seq = next_seq t in
        let rob_idx = Rob.alloc t.rob in
        charge1 t Component.Rob;
        let e =
          fill_rob_entry t ~rob_idx ~seq ~pc ~wi ~pred_npc:s.Iq.pred_npc
            ~ras_ck:(Predictor.checkpoint t.pred) ~from_reuse:true
            ~dst:t.dec.Decoded.dst.(wi) ~is_store:s.Iq.is_store
            ~is_ctrl:t.dec.Decoded.is_ctrl.(wi)
        in
        if s.Iq.is_mem then begin
          let li = Lsq.alloc t.lsq in
          let le = Lsq.entry t.lsq li in
          le.Lsq.seq <- seq;
          le.Lsq.rob_idx <- rob_idx;
          le.Lsq.is_store <- e.Rob.is_store;
          le.Lsq.is_fp <- t.dec.Decoded.is_fp_mem.(wi);
          le.Lsq.width <- t.dec.Decoded.width.(wi);
          e.Rob.lsq_idx <- li
        end;
        (* Partial update: only the register information and the ROB pointer
           change (Section 2.4) — renaming happens as in normal dispatch. *)
        rename_reuse_slot t s ~seq ~rob_idx;
        s.Iq.reusable <- true;
        charge1 t Component.Lrl;
        charge t Component.Iq_payload Model.iq_partial_update_fraction;
        t.n_reuse_dispatch <- t.n_reuse_dispatch + 1;
        Iq.set_reuse_ptr t.iq (rptr + 1);
        true
      end
    end
  end

let dispatch_reuse t =
  let budget = ref t.cfg.Config.issue_width in
  let continue_ = ref true in
  (* The pointer reset after the last buffered instruction (Section 2.4)
     is modelled as free within the cycle: the buffered region behaves as
     a circular buffer for the "first n from the pointer" check. *)
  while !continue_ && !budget > 0 && t.reuse.Reuse_state.state = Reuse_state.Reusing do
    if reuse_dispatch_one t ~allow_wrap:true then decr budget else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Decode stage: loop detection and classification (Section 2.1).      *)
(* ------------------------------------------------------------------ *)

(* A detector hit in Normal state: filter through the NBLT, then start
   buffering when the loop branch is predicted to loop back. *)
let handle_capture t (f : fetched) ~head ~tail =
  let r = t.reuse in
  r.Reuse_state.n_detections <- r.Reuse_state.n_detections + 1;
  let ld = loop_record t ~head ~tail in
  ld.ld_detections <- ld.ld_detections + 1;
  charge1 t Component.Nblt;
  if Nblt.mem t.nblt tail then begin
    r.Reuse_state.n_nblt_filtered <- r.Reuse_state.n_nblt_filtered + 1;
    ld.ld_nblt_filtered <- ld.ld_nblt_filtered + 1;
    if Tracer.enabled t.tracer then
      Tracer.instant t.tracer ~now:t.now
        ~args:[ ("head", Tracer.Int head); ("tail", Tracer.Int tail) ]
        ~cat:"nblt" "nblt-suppress"
  end
  else if f.f_pred_npc = head then begin
    ld.ld_attempts <- ld.ld_attempts + 1;
    (* Detection works on the predicted target (Section 2.1): buffering
       begins with the second iteration, so it only makes sense when the
       branch is predicted to loop back. *)
    Reuse_state.start_buffering ~now:t.now t.reuse ~head ~tail;
    dcache_install t ~head ~tail
  end

let decode_reuse_hooks t (f : fetched) =
  if t.cfg.Config.reuse_enabled then begin
    let r = t.reuse in
    let dec = t.dec in
    let wi = f.f_wi in
    match r.Reuse_state.state with
    | Reuse_state.Normal ->
        if dec.Decoded.is_ctrl.(wi) then charge1 t Component.Reuse_logic;
        if Tracer.enabled t.tracer then begin
          (* The tracer wants the detector's instants, so take the
             constructor-matching reference path. *)
          match
            Detector.examine ~tracer:t.tracer ~now:t.now
              ~iq_size:t.cfg.Config.iq_entries ~pc:f.f_pc dec.Decoded.insns.(wi)
          with
          | Detector.Capturable { head; tail; span = _ } ->
              handle_capture t f ~head ~tail
          | Detector.Too_large _ | Detector.Not_a_loop -> ()
        end
        else begin
          (* Pure side-table form of [Detector.examine]: conditional
             branches and direct jumps always carry a static target. *)
          match dec.Decoded.kind.(wi) with
          | Insn.K_branch | K_jump ->
              let head = dec.Decoded.target.(wi) in
              let tail = f.f_pc in
              if head <= tail && ((tail - head) / 4) + 1 <= t.cfg.Config.iq_entries
              then handle_capture t f ~head ~tail
          | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store
          | K_nop | K_halt ->
              ()
        end
    | Reuse_state.Buffering ->
        let in_loop = Reuse_state.in_loop r ~pc:f.f_pc in
        let in_callee = r.Reuse_state.call_depth > 0 in
        f.f_buffered <- in_loop || in_callee;
        (match dec.Decoded.kind.(wi) with
        | Insn.K_call ->
            if f.f_buffered then
              r.Reuse_state.call_depth <- r.Reuse_state.call_depth + 1
        | K_return ->
            if in_callee then r.Reuse_state.call_depth <- r.Reuse_state.call_depth - 1
        | K_branch | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt ->
            ());
        if (not in_loop) && not in_callee then
          (* The execution left the loop while buffering (Section 2.2.3). *)
          revoke_buffering t ~register_nblt:true ~cause:Rv_left_loop
        else begin
          (* An inner loop makes the current loop non-bufferable. *)
          match dec.Decoded.kind.(wi) with
          | Insn.K_branch | K_jump ->
              let head = dec.Decoded.target.(wi) in
              if
                head <= f.f_pc
                && ((f.f_pc - head) / 4) + 1 <= t.cfg.Config.iq_entries
                && f.f_pc <> r.Reuse_state.tail
              then revoke_buffering t ~register_nblt:true ~cause:Rv_inner_loop
          | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store
          | K_nop | K_halt ->
              ()
        end
    | Reuse_state.Reusing -> ()
  end

let decode_stage t =
  if t.reuse.Reuse_state.state <> Reuse_state.Reusing then begin
    let room = t.cfg.Config.decode_width - t.decode_latch.len in
    for _ = 1 to room do
      if t.fetch_q.len > 0 && t.reuse.Reuse_state.state <> Reuse_state.Reusing
      then begin
        let f = ring_peek t.fetch_q in
        charge1 t Component.Decoder;
        decode_reuse_hooks t f;
        (* The hooks never flush the front end (promotion happens at
           dispatch), so the latch slot is always available. *)
        let g = ring_push t.decode_latch in
        g.f_pc <- f.f_pc;
        g.f_wi <- f.f_wi;
        g.f_pred_npc <- f.f_pred_npc;
        g.f_ras_ck <- f.f_ras_ck;
        g.f_buffered <- f.f_buffered;
        ring_pop t.fetch_q
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Fetch stage.                                                        *)
(* ------------------------------------------------------------------ *)

let fetch_stage t =
  if
    t.reuse.Reuse_state.state <> Reuse_state.Reusing
    && t.fetch_pc >= 0
    && t.now >= t.fetch_stall_until
    && t.fetch_q.len < ring_cap t.fetch_q
    && Decoded.valid t.dec t.fetch_pc
  then begin
    let dec = t.dec in
    (* The loop cache, when present and active, supplies the whole fetch
       group without touching the instruction cache or ITLB. *)
    let serve_lc =
      match t.lc with Some lc -> Loopcache.serving lc ~pc:t.fetch_pc | None -> false
    in
    let lat =
      if serve_lc then begin
        charge1 t Component.Loopcache;
        t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency
      end
      else fetch_latency t t.fetch_pc
    in
    if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then
      t.fetch_stall_until <- t.now + lat
    else begin
      let il1 = Hierarchy.l1i t.hier in
      let cur_line = ref (Cache.line_index il1 ~addr:t.fetch_pc) in
      let fetched = ref 0 in
      let continue_ = ref true in
      while
        !continue_ && !fetched < t.cfg.Config.fetch_width
        && t.fetch_q.len < ring_cap t.fetch_q
        && t.fetch_pc >= 0
      do
        (* Crossing into another cache line (sequentially or through a
           taken branch) costs another port access; a miss there ends the
           group and stalls the front end. Loop-cache-served groups never
           touch the line ports. *)
        if (not serve_lc) && Cache.line_index il1 ~addr:t.fetch_pc <> !cur_line
        then begin
          let lat = fetch_latency t t.fetch_pc in
          if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then begin
            t.fetch_stall_until <- t.now + lat;
            continue_ := false
          end
          else cur_line := Cache.line_index il1 ~addr:t.fetch_pc
        end;
        if !continue_ then begin
          if not (Decoded.valid t.dec t.fetch_pc) then continue_ := false
          else begin
            let pc = t.fetch_pc in
            let wi = Decoded.wi_of_pc dec pc in
            let kind = dec.Decoded.kind.(wi) in
            let pred_npc =
              if dec.Decoded.is_ctrl.(wi) then begin
                (match kind with
                | Insn.K_branch -> charge1 t Component.Bpred_dir
                | K_call | K_return -> charge1 t Component.Ras
                | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt ->
                    ());
                charge1 t Component.Btb;
                Predictor.lookup_decoded t.pred ~pc ~kind
                  ~static_target:dec.Decoded.target.(wi)
              end
              else pc + 4
            in
            let f = ring_push t.fetch_q in
            f.f_pc <- pc;
            f.f_wi <- wi;
            f.f_pred_npc <- pred_npc;
            f.f_ras_ck <- Predictor.checkpoint t.pred;
            f.f_buffered <- false;
            (match t.lc with
            | Some lc ->
                (* Fill writes are charged; supplied reads were charged
                   once for the group. *)
                if Loopcache.state lc = Loopcache.Fill then charge1 t Component.Loopcache;
                Loopcache.on_fetch_decoded lc ~pc ~kind
                  ~static_target:dec.Decoded.target.(wi) ~pred_npc
            | None -> ());
            incr fetched;
            match kind with
            | Insn.K_halt ->
                t.fetch_pc <- -1;
                continue_ := false
            | K_branch | K_jump | K_call | K_return | K_ijump | K_int | K_fp
            | K_load | K_store | K_nop ->
                t.fetch_pc <- pred_npc;
                (* Unknown target: wait for the instruction to resolve. *)
                if pred_npc < 0 then continue_ := false
          end
        end
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Cycle loop.                                                         *)
(* ------------------------------------------------------------------ *)

(* Windowed sample over (samp_last_cycle, now]: IPC, queue occupancies and
   per-group power, in [sample_channels] order. *)
let sample_values t =
  let dc = float_of_int (max 1 (t.now - t.samp_last_cycle)) in
  let v = Array.make (5 + Array.length sample_groups) 0. in
  v.(0) <- float_of_int (t.committed - t.samp_last_committed) /. dc;
  v.(1) <- float_of_int (Iq.count t.iq);
  v.(2) <- float_of_int (Rob.count t.rob);
  v.(3) <- float_of_int (Lsq.count t.lsq);
  let total = ref 0. in
  Array.iteri
    (fun i g ->
      let e = Account.group_energy t.acct g in
      let p = (e -. t.samp_last_energy.(i)) /. dc in
      t.samp_last_energy.(i) <- e;
      total := !total +. p;
      v.(4 + i) <- p)
    sample_groups;
  v.(4 + Array.length sample_groups) <- !total;
  t.samp_last_cycle <- t.now;
  t.samp_last_committed <- t.committed;
  v

let sample_tick t =
  let sampler_due =
    match t.sampler with Some s -> Sampler.due s ~cycle:t.now | None -> false
  in
  let tracer_due = Tracer.enabled t.tracer && t.now mod t.counter_stride = 0 in
  if sampler_due || tracer_due then begin
    let v = sample_values t in
    (match t.sampler with
    | Some s when sampler_due -> Sampler.record s ~cycle:t.now v
    | Some _ | None -> ());
    if tracer_due then begin
      Tracer.counter t.tracer ~now:t.now ~name:"ipc" [ ("ipc", v.(0)) ];
      Tracer.counter t.tracer ~now:t.now ~name:"occupancy"
        [ ("iq", v.(1)); ("rob", v.(2)); ("lsq", v.(3)) ];
      Tracer.counter t.tracer ~now:t.now ~name:"power"
        (Array.to_list
           (Array.mapi
              (fun i g -> (Component.group_name g, v.(4 + i)))
              sample_groups))
    end
  end

let step_cycle t =
  commit_stage t;
  if not t.halted then begin
    writeback_stage t;
    replay_stage t;
    issue_stage t;
    (match t.reuse.Reuse_state.state with
    | Reuse_state.Reusing -> dispatch_reuse t
    | Reuse_state.Normal | Reuse_state.Buffering -> dispatch_normal t);
    decode_stage t;
    fetch_stage t;
    if t.reuse.Reuse_state.state = Reuse_state.Reusing then begin
      t.gated_cycles <- t.gated_cycles + 1;
      charge1 t Component.Reuse_logic
    end;
    let removed = Iq.compact t.iq in
    if removed > 0 then charge t Component.Iq_payload (float_of_int removed)
  end;
  Account.tick t.acct;
  t.now <- t.now + 1;
  sample_tick t

let run ?(cycle_limit = 200_000_000) t =
  let rec go () =
    if t.halted then Halted
    else if t.now >= cycle_limit then Cycle_limit
    else begin
      step_cycle t;
      go ()
    end
  in
  go ()

let halted t = t.halted
let cycles t = t.now
let committed t = t.committed
let ipc t = if t.now = 0 then 0. else float_of_int t.committed /. float_of_int t.now
let gated_cycles t = t.gated_cycles
let occupancy t = (Iq.count t.iq, Rob.count t.rob, Lsq.count t.lsq)
let decode_cache_hits t = t.dc_hits
let decode_cache_installs t = t.dc_installs

let arch_state t =
  {
    Machine.final_pc = t.halt_pc + 4;
    instructions = t.committed;
    int_regs = Array.copy t.arch_i;
    fp_regs = Array.copy t.arch_f;
    memory =
      List.rev (Store.fold_nonzero t.memory ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc));
  }

let loop_decisions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.loop_log []
  |> List.sort (fun a b -> compare a.ld_tail b.ld_tail)

let account t = t.acct
let tracer t = t.tracer
let sampler t = t.sampler
let hierarchy t = t.hier
let reuse_state t = t.reuse
let nblt t = t.nblt
let loopcache t = t.lc
let config t = t.cfg

type stats = {
  cycles : int;
  committed : int;
  ipc : float;
  gated_cycles : int;
  gated_fraction : float;
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  reuse_dispatches : int;
  reuse_committed : int;
  buffer_attempts : int;
  revokes : int;
  promotions : int;
  reuse_exits : int;
  avg_power : float;
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
}

let stats t =
  {
    cycles = t.now;
    committed = t.committed;
    ipc = ipc t;
    gated_cycles = t.gated_cycles;
    gated_fraction = (if t.now = 0 then 0. else float_of_int t.gated_cycles /. float_of_int t.now);
    branches = t.n_branches;
    mispredicts = t.n_mispredicts;
    loads = t.n_loads;
    stores = t.n_stores;
    reuse_dispatches = t.n_reuse_dispatch;
    reuse_committed = t.n_reuse_commit;
    buffer_attempts = t.reuse.Reuse_state.n_buffer_attempts;
    revokes = t.reuse.Reuse_state.n_revokes;
    promotions = t.reuse.Reuse_state.n_promotions;
    reuse_exits = t.reuse.Reuse_state.n_reuse_exits;
    avg_power = Account.avg_power t.acct;
    icache_accesses = Cache.accesses (Hierarchy.l1i t.hier);
    icache_misses = Cache.misses (Hierarchy.l1i t.hier);
    dcache_accesses = Cache.accesses (Hierarchy.l1d t.hier);
    dcache_misses = Cache.misses (Hierarchy.l1d t.hier);
  }
