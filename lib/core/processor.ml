open Riq_util
open Riq_isa
open Riq_asm
open Riq_mem
open Riq_branch
open Riq_power
open Riq_ooo
open Riq_interp
open Riq_obs

(* The packed fast-path execution core. The pipeline structure is the
   seed core's (see [Slowpath], the locked reference copy the
   differential suite compares against), but every per-instruction
   property is pre-decoded once at [create] into the flat side tables of
   [Decoded], and the cycle loop's dynamic structures are preallocated
   flat arrays:

   - fetch queue and decode latch are rings of mutable records instead
     of [Queue.t]s (no cell allocation per instruction);
   - the writeback event set is a ring-indexed event wheel instead of a
     per-cycle [Hashtbl] of lists (no bucket/cons allocation, no hash);
   - load replays live in a swap-buffered FIFO of int arrays;
   - execute is a single dispatch on the dense opcode, reading
     pre-transformed immediates and absolute targets from the tables.

   Everything observable — architectural state, statistics counters, and
   the exact per-component order of power charges (floats accumulate, so
   charge order matters bit-for-bit) — is kept identical to the seed
   core; the differential suite asserts this on every corpus program. *)

(* Instruction fetched but not yet dispatched: one preallocated record
   per ring slot, fields overwritten in place. *)
type fetched = {
  mutable f_pc : int;
  mutable f_wi : int; (* word index into the side tables *)
  mutable f_pred_npc : int; (* -1: unknown target, fetch stalls until resolution *)
  mutable f_ras_ck : Predictor.checkpoint;
  mutable f_buffered : bool; (* classification decided at decode *)
}

type ring = { slots : fetched array; mutable head : int; mutable len : int }

let ring_create cap =
  {
    slots =
      Array.init cap (fun _ ->
          { f_pc = 0; f_wi = -1; f_pred_npc = 0; f_ras_ck = 0; f_buffered = false });
    head = 0;
    len = 0;
  }

let ring_cap r = Array.length r.slots
let ring_clear r = r.len <- 0

let ring_push r =
  let i = r.head + r.len in
  let i = if i >= Array.length r.slots then i - Array.length r.slots else i in
  r.len <- r.len + 1;
  r.slots.(i)

let ring_peek r = r.slots.(r.head)

let ring_pop r =
  r.head <- r.head + 1;
  if r.head = Array.length r.slots then r.head <- 0;
  r.len <- r.len - 1

(* Event wheel: writeback events indexed by [cycle land wheel_mask].
   The maximum schedule distance is bounded by the worst-case memory
   latency chain (TLB walk + L2 + DRAM bursts, well under 200 cycles),
   so a 256-slot wheel always has the target slot drained before any
   event can wrap onto it; [schedule] enforces the horizon. *)
let wheel_size = 256
let wheel_mask = wheel_size - 1
let ev_complete = 0
let ev_agen = 1

(* Why a buffering attempt was revoked, one constructor per revoke site.
   The static side (Riq_analysis.Bufferability) predicts these; keeping
   per-cause counters is what lets the oracle cross-check prediction
   against execution. *)
type revoke_cause =
  | Rv_inner_loop (* decode saw a second capturable backward transfer *)
  | Rv_left_loop (* decode left the window before promotion *)
  | Rv_overflow (* the issue queue filled while buffering *)
  | Rv_mispredict (* recovery from a mispredict older than the loop *)

let revoke_cause_to_string = function
  | Rv_inner_loop -> "inner-loop"
  | Rv_left_loop -> "left-loop"
  | Rv_overflow -> "overflow"
  | Rv_mispredict -> "mispredict"

(* Per-loop decision record, keyed by the loop-ending instruction's pc —
   the same key the detector and NBLT use. Queryable after a run to
   compare the dynamic decisions with the static bufferability pass. *)
type loop_decision = {
  ld_head : int;
  ld_tail : int;
  ld_span : int;
  mutable ld_detections : int; (* detector hits at the tail *)
  mutable ld_nblt_filtered : int; (* detections suppressed by the NBLT *)
  mutable ld_attempts : int; (* buffering attempts started *)
  mutable ld_revokes : int;
  mutable ld_rv_inner : int; (* ld_revokes split by cause *)
  mutable ld_rv_left : int;
  mutable ld_rv_overflow : int;
  mutable ld_rv_mispredict : int;
  mutable ld_nblt_registered : int; (* revokes that registered in the NBLT *)
  mutable ld_promotions : int; (* reached Code Reuse *)
  mutable ld_reuse_committed : int; (* committed instructions supplied by reuse *)
}

(* Ways of the steady-state decode cache: dispatch descriptors for the
   loop being buffered, installed when buffering starts and keyed by the
   loop tail — the same key the reuse IQ and the NBLT use. *)
let dc_ways = 16

(* ------------------------------------------------------------------ *)
(* Steady-state loop fast-forward (Config.loop_ffwd).                  *)
(*                                                                     *)
(* Once the machine is in Code Reuse, every commit of the loop-ending  *)
(* instruction is an iteration boundary. The controller observes       *)
(* [ffwd_verify_periods] consecutive periods (boundary to boundary):   *)
(* the machine state at each boundary must repeat exactly up to a      *)
(* uniform relocation (sequence numbers, wheel rotation, monotonic     *)
(* counters), and the per-cycle activity/occupancy/commit logs and the *)
(* memory access pattern (one common address stride for every memory   *)
(* op) must be bitwise identical period to period. Verified periods    *)
(* are then replayed analytically: per cycle, the logged activity      *)
(* vector is charged and the logged commits/occupancies drive the      *)
(* sampler, while a semantic machine executes the loop body in program  *)
(* order to produce the values, addresses and branch outcomes the       *)
(* relocated pipeline state needs at exit. Floats are never            *)
(* extrapolated — every replayed cycle performs the same [Account]     *)
(* additions the cycle-accurate path would, so energy accumulation is  *)
(* bit-identical. *)

type ivec = { mutable iv : int array; mutable ivn : int }
type fvec = { mutable fv : float array; mutable fvn : int }

let iv_make () = { iv = Array.make 256 0; ivn = 0 }
let iv_clear v = v.ivn <- 0

let iv_push v x =
  (if v.ivn = Array.length v.iv then begin
     let b = Array.make (2 * v.ivn) 0 in
     Array.blit v.iv 0 b 0 v.ivn;
     v.iv <- b
   end);
  v.iv.(v.ivn) <- x;
  v.ivn <- v.ivn + 1

let iv_equal a b =
  a.ivn = b.ivn
  &&
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < a.ivn do
    if a.iv.(!i) <> b.iv.(!i) then ok := false;
    incr i
  done;
  !ok

let iv_copy_into dst src =
  if Array.length dst.iv < src.ivn then dst.iv <- Array.make (Array.length src.iv) 0;
  Array.blit src.iv 0 dst.iv 0 src.ivn;
  dst.ivn <- src.ivn

let fv_make () = { fv = Array.make 256 0.; fvn = 0 }
let fv_clear v = v.fvn <- 0

let fv_append v src n =
  (if v.fvn + n > Array.length v.fv then begin
     let cap = ref (2 * Array.length v.fv) in
     while !cap < v.fvn + n do
       cap := 2 * !cap
     done;
     let b = Array.make !cap 0. in
     Array.blit v.fv 0 b 0 v.fvn;
     v.fv <- b
   end);
  Array.blit src 0 v.fv v.fvn n;
  v.fvn <- v.fvn + n

(* Controller modes: 0 = idle (waiting for the first boundary),
   4 = searching for the period, 1 = observing, 3 = dormant (too many
   verification failures for this reuse episode; reset on reuse exit).

   The period of the machine state is a whole number of loop iterations
   but not necessarily one: when the loop body length is not a multiple
   of the commit width, the commit phase rotates by a fixed amount per
   iteration and the pipeline state only repeats every few iterations
   (e.g. a 35-instruction body on a 4-wide machine repeats every 4
   iterations). The search mode keeps a short history of boundary
   snapshots and picks the smallest boundary distance at which the
   snapshot recurs; everything downstream then works in units of that
   super-period. *)
type ffwd = {
  ff_k : int; (* periods to verify before replaying *)
  mutable ff_mode : int;
  mutable ff_fails : int;
  mutable ff_super : int; (* boundaries per machine-state period *)
  mutable ff_bcount : int; (* boundaries since the last super-boundary *)
  ff_hist : ivec array; (* search mode: recent boundary snapshots *)
  ff_hist_pred : int array;
  mutable ff_hist_n : int; (* boundaries recorded by the search *)
  (* Cumulative snapshot work spent per loop (keyed by head/tail)
     without a successful replay. A loop that keeps rejecting — or whose
     episodes are too short to ever reach a replay — would otherwise
     re-pay the snapshot-per-boundary search on every one of its (often
     thousands of) episodes, turning the fast path into a slowdown. Once
     a loop exhausts the budget it stays dormant; a successful replay
     resets its account. *)
  ff_work : (int, int ref) Hashtbl.t;
  mutable ff_cur_work : int ref; (* the active loop's account *)
  mutable ff_boundary : bool; (* set by commit, consumed by [run] *)
  mutable ff_poison : bool; (* irregularity inside the current period *)
  mutable ff_periods : int; (* boundaries survived since observation start *)
  mutable ff_cycle_start : int;
  mutable ff_seq_start : int;
  mutable ff_last_committed : int;
  (* Per-cycle logs: activity vector, (iq, rob, lsq) occupancy, commit
     count. The reference period is the log every later period must
     reproduce bitwise. *)
  mutable ff_ref_act : fvec;
  mutable ff_cur_act : fvec;
  mutable ff_ref_occ : ivec;
  mutable ff_cur_occ : ivec;
  mutable ff_ref_com : ivec;
  mutable ff_cur_com : ivec;
  (* Memory log, 5 ints per op: kind (0 load access / 1 store commit /
     2 forward), cycle offset, seq offset, latency, address. Everything
     but the address must repeat; addresses advance by one common
     stride. *)
  mutable ff_ref_mem : ivec;
  mutable ff_cur_mem : ivec;
  (* Dispatch log, 3 ints per op: wi, pc, pred_npc — the loop body in
     program order, the replay lookahead's template. *)
  mutable ff_ref_dsp : ivec;
  mutable ff_cur_dsp : ivec;
  (* Boundary snapshots: relocation-invariant state (must repeat
     exactly) and monotonic counters (per-period delta must repeat). *)
  mutable ff_rigid_prev : ivec;
  mutable ff_rigid_cur : ivec;
  mutable ff_pred_prev : int;
  mutable ff_aff_prev : int array;
  mutable ff_adiff : int array; (* [||] until the first delta is seen *)
  mutable ff_mem_prev : int array; (* last period's address column *)
  mutable ff_mem_stride : int array; (* [||] until set at period 3 *)
}

(* Longest machine-state period the search can find, and how many
   boundaries it may examine before concluding the loop has none. *)
let ff_hist_len = 32
let ff_search_budget = 128

let ff_create k =
  {
    ff_k = k;
    ff_mode = 0;
    ff_fails = 0;
    ff_super = 1;
    ff_bcount = 0;
    ff_hist = Array.init ff_hist_len (fun _ -> iv_make ());
    ff_hist_pred = Array.make ff_hist_len 0;
    ff_hist_n = 0;
    ff_work = Hashtbl.create 16;
    ff_cur_work = ref 0;
    ff_boundary = false;
    ff_poison = false;
    ff_periods = 0;
    ff_cycle_start = 0;
    ff_seq_start = 0;
    ff_last_committed = 0;
    ff_ref_act = fv_make ();
    ff_cur_act = fv_make ();
    ff_ref_occ = iv_make ();
    ff_cur_occ = iv_make ();
    ff_ref_com = iv_make ();
    ff_cur_com = iv_make ();
    ff_ref_mem = iv_make ();
    ff_cur_mem = iv_make ();
    ff_ref_dsp = iv_make ();
    ff_cur_dsp = iv_make ();
    ff_rigid_prev = iv_make ();
    ff_rigid_cur = iv_make ();
    ff_pred_prev = 0;
    ff_aff_prev = [||];
    ff_adiff = [||];
    ff_mem_prev = [||];
    ff_mem_stride = [||];
  }

(* Verification failures tolerated per reuse episode before going
   dormant (restarting observation forever on an irregular loop would
   burn more time than it could ever save). *)
let ff_max_fails = 16

type t = {
  cfg : Config.t;
  program : Program.t;
  dec : Decoded.t; (* pre-decoded side tables, built once *)
  memory : Store.t;
  hier : Hierarchy.t;
  pred : Predictor.t;
  rob : Rob.t;
  iq : Iq.t;
  lsq : Lsq.t;
  fu : Fu.t;
  acct : Account.t;
  reuse : Reuse_state.t;
  nblt : Nblt.t;
  lc : Loopcache.t option; (* related-work baseline, Config.loop_cache *)
  arch_i : int array;
  arch_f : float array;
  map : int array; (* logical register -> ROB index, -1 = architectural *)
  mutable fetch_pc : int; (* -1: blocked until redirect *)
  mutable fetch_stall_until : int;
  fetch_q : ring;
  decode_latch : ring;
  mutable now : int;
  mutable seq_ctr : int;
  (* Event wheel, struct-of-arrays per slot; [ev_n.(i)] live events. *)
  ev_n : int array;
  ev_seq : int array array;
  ev_rob : int array array;
  ev_kind : int array array;
  ev_addr : int array array;
  ev_di : int array array;
  ev_dtag : int array array;
  ev_df : float array array;
  mutable ev_ord : int array; (* drain-order scratch *)
  (* Replay FIFO: arrival-ordered parallel arrays, swap-buffered. *)
  mutable rp_n : int;
  mutable rp_seq : int array;
  mutable rp_rob : int array;
  mutable rp_addr : int array;
  mutable rp2_seq : int array;
  mutable rp2_rob : int array;
  mutable rp2_addr : int array;
  (* Decode cache: per-way loop window [dc_head..dc_tail] (word indices)
     and the dispatch descriptors covering it. *)
  dc_head : int array;
  dc_tail : int array;
  dc_desc : int array array;
  mutable dc_hits : int;
  mutable dc_installs : int;
  (* Issue-select scratch, [issue_width] wide, reset every cycle. *)
  issue_cand : Iq.slot array;
  issue_cand_seq : int array;
  (* Reuse-attribution memo: wi -> smallest logged window containing it
     (None = outside every window); invalidated when a window is logged. *)
  attr_memo : loop_decision option option array;
  mutable halted : bool;
  mutable halt_pc : int;
  mutable committed : int;
  mutable gated_cycles : int;
  mutable n_branches : int;
  mutable n_mispredicts : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_reuse_dispatch : int;
  mutable n_reuse_commit : int;
  loop_log : (int, loop_decision) Hashtbl.t; (* keyed by tail pc *)
  mutable cur_reuse_tail : int; (* tail of the last promoted loop, -1 = none *)
  (* Simulator-only fast paths (no timing/power effect). *)
  ff : ffwd option; (* loop fast-forward controller, None = disabled *)
  mutable n_skipped : int; (* cycles covered by event skip-ahead *)
  mutable n_ffwd_iters : int; (* loop iterations replayed analytically *)
  (* Observability. The tracer defaults to the null sink (one dead branch
     per emission site); the sampler is absent unless attached. *)
  tracer : Tracer.t;
  sampler : Sampler.t option;
  counter_stride : int; (* cadence of the tracer's counter tracks *)
  mutable samp_last_cycle : int;
  mutable samp_last_committed : int;
  samp_last_energy : float array; (* per Component.group, at the last sample *)
}

type stop = Halted | Cycle_limit

(* Sample channels, in recording order; callers attaching a sampler must
   create it with exactly these (see [sample_channels] in the interface). *)
let sample_channels =
  [
    "ipc"; "iq"; "rob"; "lsq"; "power-icache"; "power-bpred"; "power-iq";
    "power-overhead"; "power-other"; "power-total";
  ]

let sample_groups =
  [| Component.G_icache; G_bpred; G_iq; G_overhead; G_other |]

let create ?tracer ?sampler cfg program =
  Config.validate cfg;
  let tracer = match tracer with Some tr -> tr | None -> Tracer.null () in
  if Tracer.enabled tracer then begin
    Tracer.set_thread_name tracer ~tid:0 "reuse-engine";
    Tracer.set_thread_name tracer ~tid:1 "pipeline-events"
  end;
  (match sampler with
  | Some s when Sampler.channels s <> sample_channels ->
      invalid_arg "Processor.create: sampler channels must be Processor.sample_channels"
  | Some _ | None -> ());
  let memory = Store.create () in
  Program.load program ~write_word:(Store.write_word memory);
  let arch_i = Array.make 32 0 in
  arch_i.(Reg.sp) <- Machine.default_sp;
  let iq = Iq.create cfg.Config.iq_entries in
  (* Fast-forward needs reuse periods to observe, no competing loop
     cache rewriting the front end, and no tracer (per-cycle trace
     events cannot be replayed in bulk). *)
  let ff =
    if
      cfg.Config.loop_ffwd && cfg.Config.reuse_enabled
      && cfg.Config.loop_cache_entries = 0
      && not (Tracer.enabled tracer)
    then Some (ff_create cfg.Config.ffwd_verify_periods)
    else None
  in
  {
    cfg;
    program;
    dec = Decoded.of_program program;
    memory;
    hier = Hierarchy.create cfg.Config.mem;
    pred = Predictor.create cfg.Config.bpred;
    rob = Rob.create cfg.Config.rob_entries;
    iq;
    lsq = Lsq.create cfg.Config.lsq_entries;
    fu =
      Fu.create ~n_ialu:cfg.Config.n_ialu ~n_imult:cfg.Config.n_imult
        ~n_fpalu:cfg.Config.n_fpalu ~n_fpmult:cfg.Config.n_fpmult
        ~n_memport:cfg.Config.n_memport;
    acct = Account.create (Model.create (Config.power_geometry cfg));
    reuse = Reuse_state.create ~tracer ();
    nblt = Nblt.create ~tracer cfg.Config.nblt_entries;
    lc =
      (if cfg.Config.loop_cache_entries > 0 then
         Some (Loopcache.create cfg.Config.loop_cache_entries)
       else None);
    arch_i;
    arch_f = Array.make 32 0.;
    map = Array.make Reg.count (-1);
    fetch_pc = program.Program.entry;
    fetch_stall_until = 0;
    fetch_q = ring_create cfg.Config.fetch_queue;
    decode_latch = ring_create cfg.Config.decode_width;
    now = 0;
    seq_ctr = 0;
    ev_n = Array.make wheel_size 0;
    ev_seq = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_rob = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_kind = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_addr = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_di = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_dtag = Array.init wheel_size (fun _ -> Array.make 8 0);
    ev_df = Array.init wheel_size (fun _ -> Array.make 8 0.);
    ev_ord = Array.make 16 0;
    rp_n = 0;
    rp_seq = Array.make 16 0;
    rp_rob = Array.make 16 0;
    rp_addr = Array.make 16 0;
    rp2_seq = Array.make 16 0;
    rp2_rob = Array.make 16 0;
    rp2_addr = Array.make 16 0;
    dc_head = Array.make dc_ways (-1);
    dc_tail = Array.make dc_ways (-1);
    dc_desc = Array.init dc_ways (fun _ -> [||]);
    dc_hits = 0;
    dc_installs = 0;
    issue_cand = Array.make cfg.Config.issue_width (Iq.slots iq).(0);
    issue_cand_seq = Array.make cfg.Config.issue_width max_int;
    attr_memo = Array.make (max 1 (Array.length program.Program.code)) None;
    halted = false;
    halt_pc = 0;
    committed = 0;
    gated_cycles = 0;
    n_branches = 0;
    n_mispredicts = 0;
    n_loads = 0;
    n_stores = 0;
    n_reuse_dispatch = 0;
    n_reuse_commit = 0;
    loop_log = Hashtbl.create 16;
    cur_reuse_tail = -1;
    ff;
    n_skipped = 0;
    n_ffwd_iters = 0;
    tracer;
    sampler;
    counter_stride =
      (match sampler with Some s -> Sampler.base_stride s | None -> 64);
    samp_last_cycle = 0;
    samp_last_committed = 0;
    samp_last_energy = Array.make (Array.length sample_groups) 0.;
  }

let loop_record t ~head ~tail =
  match Hashtbl.find_opt t.loop_log tail with
  | Some r -> r
  | None ->
      let r =
        {
          ld_head = head;
          ld_tail = tail;
          ld_span = ((tail - head) / 4) + 1;
          ld_detections = 0;
          ld_nblt_filtered = 0;
          ld_attempts = 0;
          ld_revokes = 0;
          ld_rv_inner = 0;
          ld_rv_left = 0;
          ld_rv_overflow = 0;
          ld_rv_mispredict = 0;
          ld_nblt_registered = 0;
          ld_promotions = 0;
          ld_reuse_committed = 0;
        }
      in
      Hashtbl.replace t.loop_log tail r;
      Array.fill t.attr_memo 0 (Array.length t.attr_memo) None;
      r

let charge t c n = Account.add t.acct c n
let charge1 t c = Account.add t.acct c 1.

let schedule t ~cycle ~seq ~rob ~kind ~addr ~di ~df ~dtag =
  if cycle <= t.now || cycle - t.now >= wheel_size then
    failwith "Processor.schedule: event outside the wheel horizon";
  let sl = cycle land wheel_mask in
  let n = t.ev_n.(sl) in
  if n = Array.length t.ev_seq.(sl) then begin
    let grow a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.ev_seq.(sl) <- grow t.ev_seq.(sl);
    t.ev_rob.(sl) <- grow t.ev_rob.(sl);
    t.ev_kind.(sl) <- grow t.ev_kind.(sl);
    t.ev_addr.(sl) <- grow t.ev_addr.(sl);
    t.ev_di.(sl) <- grow t.ev_di.(sl);
    t.ev_dtag.(sl) <- grow t.ev_dtag.(sl);
    let bf = Array.make (2 * n) 0. in
    Array.blit t.ev_df.(sl) 0 bf 0 n;
    t.ev_df.(sl) <- bf
  end;
  t.ev_seq.(sl).(n) <- seq;
  t.ev_rob.(sl).(n) <- rob;
  t.ev_kind.(sl).(n) <- kind;
  t.ev_addr.(sl).(n) <- addr;
  t.ev_di.(sl).(n) <- di;
  t.ev_dtag.(sl).(n) <- dtag;
  t.ev_df.(sl).(n) <- df;
  t.ev_n.(sl) <- n + 1

let schedule_complete t ~cycle ~seq ~rob =
  schedule t ~cycle ~seq ~rob ~kind:ev_complete ~addr:0 ~di:0 ~df:0. ~dtag:(-1)

let next_seq t =
  t.seq_ctr <- t.seq_ctr + 1;
  t.seq_ctr

let push_replay t ~seq ~rob ~addr =
  let n = t.rp_n in
  if n = Array.length t.rp_seq then begin
    let grow a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.rp_seq <- grow t.rp_seq;
    t.rp_rob <- grow t.rp_rob;
    t.rp_addr <- grow t.rp_addr
  end;
  t.rp_seq.(n) <- seq;
  t.rp_rob.(n) <- rob;
  t.rp_addr.(n) <- addr;
  t.rp_n <- n + 1

(* Fast-forward observation hooks. All are no-ops unless the controller
   is in observing mode; the [match] is allocation-free and the hooks
   sit on paths that are already per-event, not per-cycle. *)

let ff_note_mem t ~kind ~seq ~addr ~lat =
  match t.ff with
  | Some f when f.ff_mode = 1 ->
      iv_push f.ff_cur_mem kind;
      iv_push f.ff_cur_mem (t.now - f.ff_cycle_start);
      iv_push f.ff_cur_mem (seq - f.ff_seq_start);
      iv_push f.ff_cur_mem lat;
      iv_push f.ff_cur_mem addr
  | Some _ | None -> ()

let ff_note_dispatch t ~wi ~pc ~pred_npc =
  match t.ff with
  | Some f when f.ff_mode = 1 ->
      iv_push f.ff_cur_dsp wi;
      iv_push f.ff_cur_dsp pc;
      iv_push f.ff_cur_dsp pred_npc
  | Some _ | None -> ()

(* An event the replay cannot reproduce (e.g. a wrong-path load with a
   garbage address): the current observation attempt is abandoned at the
   next boundary. *)
let ff_poison t =
  match t.ff with
  | Some f when f.ff_mode = 1 -> f.ff_poison <- true
  | Some _ | None -> ()

let ff_reset t =
  match t.ff with
  | Some f ->
      f.ff_mode <- 0;
      f.ff_fails <- 0;
      f.ff_super <- 1;
      f.ff_bcount <- 0;
      f.ff_hist_n <- 0;
      f.ff_boundary <- false;
      f.ff_poison <- false;
      f.ff_periods <- 0
  | None -> ()

(* Memory hierarchy wrappers that charge the power account, including the
   L2 accesses triggered by L1 misses. *)
let fetch_latency t addr =
  let l1_before = Cache.accesses (Hierarchy.l1i t.hier) in
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.fetch_at t.hier ~now:t.now ~addr in
  (* With a filter cache, an L0 hit never reaches the L1I; charging by
     access deltas attributes the energy to the structure actually used. *)
  (match Hierarchy.l0i t.hier with
  | Some _ -> charge1 t Component.L0cache
  | None -> ());
  let d1 = Cache.accesses (Hierarchy.l1i t.hier) - l1_before in
  if d1 > 0 then charge t Component.Icache (float_of_int d1);
  charge1 t Component.Itlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

let data_latency t ~addr ~write =
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.data_at t.hier ~now:t.now ~addr ~write in
  charge1 t Component.Dcache;
  charge1 t Component.Dtlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

(* Resolve one source operand through the map table directly into the
   slot's src fields; registers are plain ints ([0..31] integer file,
   [32..63] FP file) so no tuple or option is allocated. *)
let read_src1 t (s : Iq.slot) r =
  if r < 0 then begin
    s.Iq.src1_tag <- -1;
    s.Iq.src1_i <- 0;
    s.Iq.src1_f <- 0.
  end
  else begin
    charge1 t Component.Regfile;
    let idx = t.map.(r) in
    if idx = -1 then
      if r >= 32 then begin
        s.Iq.src1_tag <- -1;
        s.Iq.src1_i <- 0;
        s.Iq.src1_f <- t.arch_f.(r - 32)
      end
      else begin
        s.Iq.src1_tag <- -1;
        s.Iq.src1_i <- t.arch_i.(r);
        s.Iq.src1_f <- 0.
      end
    else begin
      let e = Rob.entry t.rob idx in
      if e.Rob.completed then begin
        s.Iq.src1_tag <- -1;
        s.Iq.src1_i <- e.Rob.value_i;
        s.Iq.src1_f <- e.Rob.value_f
      end
      else begin
        s.Iq.src1_tag <- idx;
        s.Iq.src1_i <- 0;
        s.Iq.src1_f <- 0.
      end
    end
  end

let read_src2 t (s : Iq.slot) r =
  if r < 0 then begin
    s.Iq.src2_tag <- -1;
    s.Iq.src2_i <- 0;
    s.Iq.src2_f <- 0.
  end
  else begin
    charge1 t Component.Regfile;
    let idx = t.map.(r) in
    if idx = -1 then
      if r >= 32 then begin
        s.Iq.src2_tag <- -1;
        s.Iq.src2_i <- 0;
        s.Iq.src2_f <- t.arch_f.(r - 32)
      end
      else begin
        s.Iq.src2_tag <- -1;
        s.Iq.src2_i <- t.arch_i.(r);
        s.Iq.src2_f <- 0.
      end
    else begin
      let e = Rob.entry t.rob idx in
      if e.Rob.completed then begin
        s.Iq.src2_tag <- -1;
        s.Iq.src2_i <- e.Rob.value_i;
        s.Iq.src2_f <- e.Rob.value_f
      end
      else begin
        s.Iq.src2_tag <- idx;
        s.Iq.src2_i <- 0;
        s.Iq.src2_f <- 0.
      end
    end
  end

(* Operation groups of the dense opcode space, for the execute dispatch. *)
let alu_ops = [| Insn.Add; Sub; And; Or; Xor; Nor; Slt; Sltu |] (* 0..7 *)
let alui_ops = [| Insn.Add; And; Or; Xor; Slt; Sltu |] (* 8..13 *)
let shift_ops = [| Insn.Sll; Srl; Sra |] (* 14..16 imm, 17..19 variable *)
let fpu_ops = [| Insn.Fadd; Fsub; Fmul; Fdiv; Fsqrt; Fneg; Fabs; Fmov |] (* 23..30 *)
let fcmp_ops = [| Insn.Feq; Flt; Fle |] (* 31..33 *)
let br_conds = [| Insn.Beq; Bne; Blez; Bgtz; Bltz; Bgez |] (* 46..51 *)

(* Execute a non-memory instruction straight into its ROB entry: one
   dispatch on the dense opcode, immediates and branch/jump targets read
   pre-transformed from the side tables. Memory operations never reach
   this (they go through address generation); 57/58 (nop/halt) keep the
   defaults. *)
let execute_into t (e : Rob.entry) ~wi ~pc ~s1i ~s1f ~s2i ~s2f =
  let d = t.dec in
  let next = pc + 4 in
  e.Rob.value_i <- 0;
  e.Rob.value_f <- 0.;
  e.Rob.taken <- false;
  e.Rob.actual_npc <- next;
  let c = d.Decoded.exe.(wi) in
  if c < 8 then e.Rob.value_i <- Semantics.alu alu_ops.(c) s1i s2i
  else if c < 14 then
    e.Rob.value_i <- Semantics.alu alui_ops.(c - 8) s1i d.Decoded.imm.(wi)
  else if c < 17 then
    e.Rob.value_i <- Semantics.shift shift_ops.(c - 14) s1i d.Decoded.imm.(wi)
  else if c < 20 then
    e.Rob.value_i <- Semantics.shift shift_ops.(c - 17) s1i s2i
  else if c = 20 then e.Rob.value_i <- d.Decoded.imm.(wi) (* lui, pre-shifted *)
  else if c = 21 then e.Rob.value_i <- Semantics.mul s1i s2i
  else if c = 22 then e.Rob.value_i <- Semantics.div s1i s2i
  else if c < 31 then e.Rob.value_f <- Semantics.fpu fpu_ops.(c - 23) s1f s2f
  else if c < 34 then e.Rob.value_i <- Semantics.fcmp fcmp_ops.(c - 31) s1f s2f
  else if c = 34 then e.Rob.value_f <- Semantics.cvt_s_w s1i
  else if c = 35 then e.Rob.value_i <- Semantics.cvt_w_s s1f
  else if c >= 46 then
    if c <= 51 then begin
      let taken = Semantics.branch_taken br_conds.(c - 46) s1i s2i in
      e.Rob.taken <- taken;
      if taken then e.Rob.actual_npc <- d.Decoded.target.(wi)
    end
    else if c = 52 then begin
      e.Rob.taken <- true;
      e.Rob.actual_npc <- d.Decoded.target.(wi)
    end
    else if c = 53 then begin
      e.Rob.value_i <- next;
      e.Rob.taken <- true;
      e.Rob.actual_npc <- d.Decoded.target.(wi)
    end
    else if c <= 55 then begin
      e.Rob.taken <- true;
      e.Rob.actual_npc <- s1i
    end
    else if c = 56 then begin
      e.Rob.value_i <- next;
      e.Rob.taken <- true;
      e.Rob.actual_npc <- s1i
    end

(* The integer value a load produces, per the side tables' extension
   code: extract and extend the low bits per width and signedness. *)
let load_from_reg ext raw =
  if ext = Decoded.ext_word then Bits.of_i32 raw
  else if ext = Decoded.ext_s8 then Bits.sign_extend raw ~width:8
  else if ext = Decoded.ext_u8 then raw land 0xFF
  else if ext = Decoded.ext_s16 then Bits.sign_extend raw ~width:16
  else raw land 0xFFFF

let load_from_memory t ext addr =
  if ext = Decoded.ext_word then Bits.of_i32 (Store.read_word t.memory addr)
  else if ext = Decoded.ext_s8 then Bits.sign_extend (Store.read_byte t.memory addr) ~width:8
  else if ext = Decoded.ext_u8 then Store.read_byte t.memory addr
  else if ext = Decoded.ext_s16 then Bits.sign_extend (Store.read_half t.memory addr) ~width:16
  else Store.read_half t.memory addr

(* ------------------------------------------------------------------ *)
(* Misprediction recovery and reuse-engine state transitions.          *)
(* ------------------------------------------------------------------ *)

let rebuild_map t =
  Array.fill t.map 0 (Array.length t.map) (-1);
  Rob.iter_oldest_first t.rob (fun idx e ->
      if e.Rob.dest >= 0 then t.map.(e.Rob.dest) <- idx)

let flush_front_end t =
  ring_clear t.fetch_q;
  ring_clear t.decode_latch

let revoke_buffering t ~register_nblt ~cause =
  let r =
    loop_record t ~head:t.reuse.Reuse_state.head ~tail:t.reuse.Reuse_state.tail
  in
  r.ld_revokes <- r.ld_revokes + 1;
  (match cause with
  | Rv_inner_loop -> r.ld_rv_inner <- r.ld_rv_inner + 1
  | Rv_left_loop -> r.ld_rv_left <- r.ld_rv_left + 1
  | Rv_overflow -> r.ld_rv_overflow <- r.ld_rv_overflow + 1
  | Rv_mispredict -> r.ld_rv_mispredict <- r.ld_rv_mispredict + 1);
  if Tracer.enabled t.tracer then
    Tracer.instant t.tracer ~now:t.now
      ~args:
        [
          ("head", Tracer.Int t.reuse.Reuse_state.head);
          ("tail", Tracer.Int t.reuse.Reuse_state.tail);
          ("cause", Tracer.Str (revoke_cause_to_string cause));
          ("registered_nblt", Tracer.Int (if register_nblt then 1 else 0));
        ]
      ~cat:"reuse" "revoke";
  if register_nblt then begin
    r.ld_nblt_registered <- r.ld_nblt_registered + 1;
    charge1 t Component.Nblt;
    Nblt.insert ~now:t.now t.nblt t.reuse.Reuse_state.tail
  end;
  Iq.clear_classification t.iq;
  Reuse_state.revoke ~now:t.now t.reuse

let exit_reuse t =
  Iq.clear_classification t.iq;
  Iq.set_reuse_ptr t.iq 0;
  ff_reset t;
  Reuse_state.exit_reuse ~now:t.now t.reuse

(* Conventional branch-misprediction recovery (Section 2.5), plus the
   revoke / reuse-exit that accompanies it in the buffering states. *)
let recover t (e : Rob.entry) =
  let seq = e.Rob.seq in
  if Tracer.enabled t.tracer then
    Tracer.instant t.tracer ~now:t.now
      ~args:[ ("pc", Tracer.Int e.Rob.pc); ("redirect", Tracer.Int e.Rob.actual_npc) ]
      ~cat:"pipeline" "pipeline-flush";
  Rob.squash_after t.rob ~seq ~f:(fun _ _ -> ());
  Lsq.squash_after t.lsq ~seq;
  Iq.squash_after t.iq ~seq;
  rebuild_map t;
  Predictor.restore t.pred e.Rob.ras_ck;
  flush_front_end t;
  t.fetch_pc <- e.Rob.actual_npc;
  t.fetch_stall_until <- t.now + 1;
  (* Drop replays younger than the redirect, keeping arrival order. *)
  let w = ref 0 in
  for i = 0 to t.rp_n - 1 do
    if t.rp_seq.(i) <= seq then begin
      t.rp_seq.(!w) <- t.rp_seq.(i);
      t.rp_rob.(!w) <- t.rp_rob.(i);
      t.rp_addr.(!w) <- t.rp_addr.(i);
      incr w
    end
  done;
  t.rp_n <- !w;
  Option.iter Loopcache.reset t.lc;
  match t.reuse.Reuse_state.state with
  | Reuse_state.Normal -> ()
  | Reuse_state.Buffering ->
      (* A wrong path inside the loop (including the loop exit) makes the
         loop non-bufferable; a mispredict older than the loop is a plain
         revoke. *)
      let in_loop = Reuse_state.in_loop t.reuse ~pc:e.Rob.pc in
      revoke_buffering t ~register_nblt:in_loop
        ~cause:(if in_loop then Rv_left_loop else Rv_mispredict)
  | Reuse_state.Reusing -> exit_reuse t

(* ------------------------------------------------------------------ *)
(* Commit stage.                                                       *)
(* ------------------------------------------------------------------ *)

let commit_one t (e : Rob.entry) =
  charge1 t Component.Rob;
  (match e.Rob.dest with
  | -1 -> ()
  | d ->
      charge1 t Component.Regfile;
      if d >= 32 then t.arch_f.(d - 32) <- e.Rob.value_f
      else t.arch_i.(d) <- e.Rob.value_i;
      let head_idx = Rob.head t.rob in
      if t.map.(d) = head_idx then t.map.(d) <- -1);
  if e.Rob.lsq_idx >= 0 then begin
    let le = Lsq.entry t.lsq e.Rob.lsq_idx in
    assert (Lsq.head_is t.lsq e.Rob.lsq_idx);
    if e.Rob.is_store then begin
      t.n_stores <- t.n_stores + 1;
      charge1 t Component.Lsq;
      let wlat = data_latency t ~addr:le.Lsq.addr ~write:true in
      ff_note_mem t ~kind:1 ~seq:e.Rob.seq ~addr:le.Lsq.addr ~lat:wlat;
      if le.Lsq.is_fp then Store.write_float t.memory le.Lsq.addr le.Lsq.data_f
      else if le.Lsq.width = 1 then Store.write_byte t.memory le.Lsq.addr le.Lsq.data_i
      else if le.Lsq.width = 2 then Store.write_half t.memory le.Lsq.addr le.Lsq.data_i
      else Store.write_word t.memory le.Lsq.addr (Bits.to_u32 le.Lsq.data_i)
    end
    else t.n_loads <- t.n_loads + 1;
    Lsq.pop_head t.lsq
  end;
  (match t.dec.Decoded.kind.(e.Rob.wi) with
  | Insn.K_halt ->
      t.halted <- true;
      t.halt_pc <- e.Rob.pc;
      (* End-of-run drain: everything still in flight is younger than the
         halt and will never execute, so empty the queues (no power
         charges) — [occupancy] reads (0, 0, 0) once [run] returns
         [Halted]. The halt itself is still at the ROB head; the normal
         [pop_head] below removes it. *)
      Rob.squash_after t.rob ~seq:e.Rob.seq ~f:(fun _ _ -> ());
      Lsq.squash_after t.lsq ~seq:e.Rob.seq;
      Iq.clear t.iq;
      flush_front_end t;
      Array.fill t.ev_n 0 wheel_size 0;
      t.rp_n <- 0;
      if Tracer.enabled t.tracer then
        Tracer.instant t.tracer ~now:t.now
          ~args:[ ("pc", Tracer.Int e.Rob.pc) ]
          ~cat:"pipeline" "halted"
  | K_branch | K_jump | K_call | K_return | K_ijump | K_int | K_fp | K_load
  | K_store | K_nop ->
      ());
  if e.Rob.from_reuse then begin
    t.n_reuse_commit <- t.n_reuse_commit + 1;
    (* Attribute to the smallest logged window containing the pc; callee
       instructions (outside every window) go to the loop being reused.
       Memoized per word index — reuse commits the same few pcs millions
       of times and the window set changes only when a loop is first
       logged (which clears the memo). *)
    let wi = e.Rob.wi in
    let best =
      match t.attr_memo.(wi) with
      | Some b -> b
      | None ->
          let best = ref None in
          Hashtbl.iter
            (fun _ r ->
              if e.Rob.pc >= r.ld_head && e.Rob.pc <= r.ld_tail then
                match !best with
                | Some b when b.ld_span <= r.ld_span -> ()
                | _ -> best := Some r)
            t.loop_log;
          t.attr_memo.(wi) <- Some !best;
          !best
    in
    (match best with
    | Some r -> r.ld_reuse_committed <- r.ld_reuse_committed + 1
    | None -> (
        match Hashtbl.find_opt t.loop_log t.cur_reuse_tail with
        | Some r -> r.ld_reuse_committed <- r.ld_reuse_committed + 1
        | None -> ()));
    (* Iteration boundary for the fast-forward controller: the loop-ending
       instruction of the reused loop committed this cycle. *)
    match t.ff with
    | Some f
      when f.ff_mode <> 3
           && e.Rob.pc = t.reuse.Reuse_state.tail
           && t.reuse.Reuse_state.state = Reuse_state.Reusing ->
        f.ff_boundary <- true
    | Some _ | None -> ()
  end;
  t.committed <- t.committed + 1;
  Rob.pop_head t.rob

let commit_stage t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.cfg.Config.commit_width && not t.halted do
    if Rob.count t.rob = 0 then continue_ := false
    else begin
      let e = Rob.entry t.rob (Rob.head t.rob) in
      if e.Rob.completed then begin
        commit_one t e;
        incr n
      end
      else continue_ := false
    end
  done

(* ------------------------------------------------------------------ *)
(* Writeback: completion and address-generation events.                *)
(* ------------------------------------------------------------------ *)

let complete t (e : Rob.entry) rob_idx =
  e.Rob.completed <- true;
  charge1 t Component.Rob;
  charge1 t Component.Resultbus;
  charge1 t Component.Iq_wakeup;
  Iq.wakeup t.iq ~tag:rob_idx ~value_i:e.Rob.value_i ~value_f:e.Rob.value_f;
  (match Lsq.capture_data t.lsq ~tag:rob_idx ~value_i:e.Rob.value_i ~value_f:e.Rob.value_f with
  | [] -> ()
  | captured ->
      List.iter
        (fun (store_rob, store_seq) ->
          schedule_complete t ~cycle:(t.now + 1) ~seq:store_seq ~rob:store_rob)
        captured);
  if e.Rob.is_ctrl then begin
    t.n_branches <- t.n_branches + 1;
    (* Predictor tables are trained at resolution in every issue-queue
       state (lookups are what gating suppresses). *)
    let kind = t.dec.Decoded.kind.(e.Rob.wi) in
    (match kind with
    | Insn.K_branch -> charge1 t Component.Bpred_dir
    | K_jump | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store
    | K_nop | K_halt ->
        ());
    if e.Rob.taken then charge1 t Component.Btb;
    Predictor.resolve_decoded t.pred ~pc:e.Rob.pc ~kind ~taken:e.Rob.taken
      ~target:e.Rob.actual_npc;
    if e.Rob.actual_npc <> e.Rob.pred_npc then begin
      t.n_mispredicts <- t.n_mispredicts + 1;
      recover t e
    end
  end

(* A load attempting to execute: forward or access the cache. The LSQ
   search is charged once, on the first attempt — replayed loads sleep in
   the queue and are re-checked without a fresh CAM search. *)
let start_load ?(charge_search = true) t ~rob_idx ~(e : Rob.entry) ~addr =
  let le = Lsq.entry t.lsq e.Rob.lsq_idx in
  if charge_search then charge1 t Component.Lsq;
  match Lsq.check_load t.lsq ~idx:e.Rob.lsq_idx ~addr ~width:le.Lsq.width with
  | Lsq.Wait -> false
  | Lsq.Forward se ->
      if le.Lsq.is_fp then e.Rob.value_f <- se.Lsq.data_f
      else e.Rob.value_i <- load_from_reg t.dec.Decoded.ext.(e.Rob.wi) se.Lsq.data_i;
      ff_note_mem t ~kind:2 ~seq:e.Rob.seq ~addr ~lat:0;
      schedule_complete t ~cycle:(t.now + 1) ~seq:e.Rob.seq ~rob:rob_idx;
      true
  | Lsq.Access ->
      let wi = e.Rob.wi in
      let lat =
        (* Wrong-path accesses may compute garbage addresses; an address
           is usable when non-negative and aligned to the access width. *)
        if addr >= 0 && addr land t.dec.Decoded.amask.(wi) = 0 then begin
          let lat = data_latency t ~addr ~write:false in
          if le.Lsq.is_fp then e.Rob.value_f <- Store.read_float t.memory addr
          else e.Rob.value_i <- load_from_memory t t.dec.Decoded.ext.(wi) addr;
          ff_note_mem t ~kind:0 ~seq:e.Rob.seq ~addr ~lat;
          lat
        end
        else begin
          ff_poison t;
          1 (* wrong-path garbage address: complete without touching memory *)
        end
      in
      schedule_complete t ~cycle:(t.now + lat) ~seq:e.Rob.seq ~rob:rob_idx;
      true

let process_agen t ~seq ~rob ~addr ~di ~df ~dtag =
  let e = Rob.entry t.rob rob in
  if e.Rob.seq = seq then begin
    let le = Lsq.entry t.lsq e.Rob.lsq_idx in
    le.Lsq.addr <- addr;
    le.Lsq.addr_ready <- true;
    charge1 t Component.Lsq;
    if e.Rob.is_store then begin
      if dtag = -1 then begin
        le.Lsq.data_i <- di;
        le.Lsq.data_f <- df;
        le.Lsq.data_ready <- true;
        (* The store has done all its execute-stage work. *)
        schedule_complete t ~cycle:(t.now + 1) ~seq ~rob
      end
      else begin
        (* Address is known; the data operand is still in flight and will
           arrive over the result bus. *)
        let producer = Rob.entry t.rob dtag in
        if producer.Rob.completed then begin
          le.Lsq.data_i <- producer.Rob.value_i;
          le.Lsq.data_f <- producer.Rob.value_f;
          le.Lsq.data_ready <- true;
          schedule_complete t ~cycle:(t.now + 1) ~seq ~rob
        end
        else Lsq.wait_data t.lsq le ~tag:dtag
      end
    end
    else if not (start_load t ~rob_idx:rob ~e ~addr) then
      push_replay t ~seq ~rob ~addr
  end

let writeback_stage t =
  let sl = t.now land wheel_mask in
  let n = t.ev_n.(sl) in
  if n > 0 then begin
    (* Snapshot the slot: events scheduled while draining always target a
       strictly later cycle, hence a different wheel slot. *)
    t.ev_n.(sl) <- 0;
    let seqs = t.ev_seq.(sl) in
    let robs = t.ev_rob.(sl) in
    let kinds = t.ev_kind.(sl) in
    let addrs = t.ev_addr.(sl) in
    let dis = t.ev_di.(sl) in
    let dtags = t.ev_dtag.(sl) in
    let dfs = t.ev_df.(sl) in
    if Array.length t.ev_ord < n then t.ev_ord <- Array.make (2 * n) 0;
    let ord = t.ev_ord in
    for i = 0 to n - 1 do
      ord.(i) <- i
    done;
    (* Drain order: sequence ascending; equal sequences in reverse
       insertion order (the seed stable-sorted a cons-built list, so the
       later insertion comes first within a sequence number). *)
    for i = 1 to n - 1 do
      let x = ord.(i) in
      let j = ref (i - 1) in
      while
        !j >= 0
        && (let y = ord.(!j) in
            seqs.(y) > seqs.(x) || (seqs.(y) = seqs.(x) && y < x))
      do
        ord.(!j + 1) <- ord.(!j);
        decr j
      done;
      ord.(!j + 1) <- x
    done;
    for k = 0 to n - 1 do
      let i = ord.(k) in
      let rob = robs.(i) in
      let seq = seqs.(i) in
      let e = Rob.entry t.rob rob in
      if e.Rob.seq = seq && not e.Rob.completed then
        if kinds.(i) = ev_complete then complete t e rob
        else
          process_agen t ~seq ~rob ~addr:addrs.(i) ~di:dis.(i) ~df:dfs.(i)
            ~dtag:dtags.(i)
    done
  end

let replay_stage t =
  let n = t.rp_n in
  if n > 0 then begin
    (* Swap the arrival-ordered FIFO into scratch; failed attempts are
       re-appended in processing order, exactly the order the seed's
       cons-and-reverse produced. *)
    let seqs = t.rp_seq and robs = t.rp_rob and addrs = t.rp_addr in
    t.rp_seq <- t.rp2_seq;
    t.rp_rob <- t.rp2_rob;
    t.rp_addr <- t.rp2_addr;
    t.rp2_seq <- seqs;
    t.rp2_rob <- robs;
    t.rp2_addr <- addrs;
    t.rp_n <- 0;
    for i = 0 to n - 1 do
      let seq = seqs.(i) and rob = robs.(i) and addr = addrs.(i) in
      let e = Rob.entry t.rob rob in
      if e.Rob.seq = seq && not e.Rob.completed then
        if not (start_load ~charge_search:false t ~rob_idx:rob ~e ~addr) then
          push_replay t ~seq ~rob ~addr
    done
  end

(* ------------------------------------------------------------------ *)
(* Issue stage: oldest-first selection of ready instructions.          *)
(* ------------------------------------------------------------------ *)

let issue_slot t (s : Iq.slot) =
  Iq.mark_issued t.iq s;
  charge1 t Component.Iq_payload;
  (match s.Iq.fu with
  | Insn.FU_ialu -> charge1 t Component.Ialu
  | FU_imult -> charge1 t Component.Imult
  | FU_fpalu -> charge1 t Component.Fpalu
  | FU_fpmult -> charge1 t Component.Fpmult
  | FU_mem -> charge1 t Component.Ialu (* address generation adder *)
  | FU_none -> ());
  let e = Rob.entry t.rob s.Iq.rob_idx in
  if s.Iq.is_mem then begin
    let addr = Bits.add32 s.Iq.src1_i t.dec.Decoded.imm.(s.Iq.wi) in
    schedule t ~cycle:(t.now + 1) ~seq:s.Iq.seq ~rob:s.Iq.rob_idx ~kind:ev_agen
      ~addr ~di:s.Iq.src2_i ~df:s.Iq.src2_f ~dtag:s.Iq.src2_tag
  end
  else begin
    execute_into t e ~wi:s.Iq.wi ~pc:s.Iq.pc ~s1i:s.Iq.src1_i ~s1f:s.Iq.src1_f
      ~s2i:s.Iq.src2_i ~s2f:s.Iq.src2_f;
    schedule_complete t ~cycle:(t.now + s.Iq.lat) ~seq:s.Iq.seq ~rob:s.Iq.rob_idx
  end;
  if not s.Iq.reusable then Iq.kill t.iq s

(* Top-level (closure-free) ready-ring walk: insertion into the running
   top-[width] youngest-seq candidate table. *)
let rec select_scan (rdy : Iq.slot) (cand : Iq.slot array) cand_seq width (s : Iq.slot) =
  if s != rdy then begin
    let j = ref (width - 1) in
    if s.Iq.seq < cand_seq.(!j) then begin
      while !j > 0 && s.Iq.seq < cand_seq.(!j - 1) do
        cand_seq.(!j) <- cand_seq.(!j - 1);
        cand.(!j) <- cand.(!j - 1);
        decr j
      done;
      cand_seq.(!j) <- s.Iq.seq;
      cand.(!j) <- s
    end;
    select_scan rdy cand cand_seq width s.Iq.r_next
  end

let issue_stage t =
  let width = t.cfg.Config.issue_width in
  if Iq.count t.iq > 0 then charge1 t Component.Iq_select;
  (* Collect the [width] oldest ready instructions from the ready ring
     (the ring is not in age order during Code Reuse, so order by
     sequence number — unique, so ring order cannot matter). *)
  let cand = t.issue_cand in
  let cand_seq = t.issue_cand_seq in
  Array.fill cand_seq 0 width max_int;
  let rdy = Iq.ready t.iq in
  select_scan rdy cand cand_seq width rdy.Iq.r_next;
  for k = 0 to width - 1 do
    if cand_seq.(k) < max_int then begin
      let s = cand.(k) in
      if Fu.acquire t.fu s.Iq.fu ~now:t.now ~latency:s.Iq.lat ~pipelined:s.Iq.pipe
      then issue_slot t s
    end
  done

(* ------------------------------------------------------------------ *)
(* Dispatch (rename + queue): normal mode.                             *)
(* ------------------------------------------------------------------ *)

let fill_rob_entry t ~rob_idx ~seq ~pc ~wi ~pred_npc ~ras_ck ~from_reuse ~dst
    ~is_store ~is_ctrl =
  let e = Rob.entry t.rob rob_idx in
  e.Rob.seq <- seq;
  e.Rob.pc <- pc;
  e.Rob.wi <- wi;
  e.Rob.completed <- false;
  e.Rob.value_i <- 0;
  e.Rob.value_f <- 0.;
  e.Rob.dest <- dst;
  e.Rob.is_store <- is_store;
  e.Rob.lsq_idx <- -1;
  e.Rob.is_ctrl <- is_ctrl;
  e.Rob.pred_npc <- pred_npc;
  e.Rob.actual_npc <- pc + 4;
  e.Rob.taken <- false;
  e.Rob.ras_ck <- ras_ck;
  e.Rob.from_reuse <- from_reuse;
  e

let rename_into_slot t (s : Iq.slot) ~seq ~rob_idx ~pc ~wi ~pred_npc ~d =
  charge1 t Component.Rename;
  read_src1 t s (Decoded.d_r1 d);
  read_src2 t s (Decoded.d_r2 d);
  s.Iq.seq <- seq;
  s.Iq.rob_idx <- rob_idx;
  s.Iq.pc <- pc;
  s.Iq.wi <- wi;
  s.Iq.fu <- Decoded.d_fu d;
  s.Iq.lat <- Decoded.d_lat d;
  s.Iq.pipe <- Decoded.d_pipe d;
  s.Iq.is_mem <- Decoded.d_is_mem d;
  s.Iq.is_store <- Decoded.d_is_store d;
  s.Iq.issued <- false;
  s.Iq.pred_npc <- pred_npc;
  let dst = Decoded.d_dst d in
  if dst >= 0 then t.map.(dst) <- rob_idx

(* Decode-cache lookup for the loop currently being buffered; falls back
   to packing a descriptor from the side tables (callee instructions
   buffered from inside the loop live outside the cached window). *)
let dcache_lookup t wi =
  let tail_wi = Decoded.wi_of_pc t.dec t.reuse.Reuse_state.tail in
  let way = tail_wi land (dc_ways - 1) in
  if t.dc_tail.(way) = tail_wi && wi >= t.dc_head.(way) && wi <= tail_wi then begin
    t.dc_hits <- t.dc_hits + 1;
    t.dc_desc.(way).(wi - t.dc_head.(way))
  end
  else Decoded.descriptor t.dec wi

let dcache_install t ~head ~tail =
  let head_wi = Decoded.wi_of_pc t.dec head in
  let tail_wi = Decoded.wi_of_pc t.dec tail in
  if head_wi >= 0 && tail_wi >= head_wi && tail_wi < t.dec.Decoded.n then begin
    let way = tail_wi land (dc_ways - 1) in
    if t.dc_tail.(way) <> tail_wi || t.dc_head.(way) <> head_wi then begin
      t.dc_installs <- t.dc_installs + 1;
      t.dc_head.(way) <- head_wi;
      t.dc_tail.(way) <- tail_wi;
      t.dc_desc.(way) <-
        Array.init (tail_wi - head_wi + 1) (fun k ->
            Decoded.descriptor t.dec (head_wi + k))
    end
  end

(* Dispatch one decoded instruction; returns false on a structural stall. *)
let dispatch_one t (f : fetched) =
  let buffering = t.reuse.Reuse_state.state = Reuse_state.Buffering in
  let d =
    if buffering && f.f_buffered then dcache_lookup t f.f_wi
    else Decoded.descriptor t.dec f.f_wi
  in
  let is_mem = Decoded.d_is_mem d in
  if Rob.is_full t.rob then false
  else if Iq.is_full t.iq then begin
    (* Queue exhausted while buffering a loop (e.g. a too-large procedure
       inside it): the loop is non-bufferable (Section 2.2.2). *)
    if buffering && f.f_buffered then
      revoke_buffering t ~register_nblt:true ~cause:Rv_overflow;
    false
  end
  else if is_mem && Lsq.is_full t.lsq then false
  else begin
    let seq = next_seq t in
    let rob_idx = Rob.alloc t.rob in
    charge1 t Component.Rob;
    let e =
      fill_rob_entry t ~rob_idx ~seq ~pc:f.f_pc ~wi:f.f_wi ~pred_npc:f.f_pred_npc
        ~ras_ck:f.f_ras_ck ~from_reuse:false ~dst:(Decoded.d_dst d)
        ~is_store:(Decoded.d_is_store d) ~is_ctrl:(Decoded.d_is_ctrl d)
    in
    if is_mem then begin
      let li = Lsq.alloc t.lsq in
      let le = Lsq.entry t.lsq li in
      le.Lsq.seq <- seq;
      le.Lsq.rob_idx <- rob_idx;
      le.Lsq.is_store <- e.Rob.is_store;
      le.Lsq.is_fp <- Decoded.d_is_fp_mem d;
      le.Lsq.width <- Decoded.d_width d;
      e.Rob.lsq_idx <- li
    end;
    let s = Iq.dispatch t.iq in
    rename_into_slot t s ~seq ~rob_idx ~pc:f.f_pc ~wi:f.f_wi ~pred_npc:f.f_pred_npc ~d;
    Iq.enqueue t.iq s;
    charge1 t Component.Iq_payload;
    if buffering && f.f_buffered then begin
      s.Iq.reusable <- true;
      charge1 t Component.Lrl;
      t.reuse.Reuse_state.iter_count <- t.reuse.Reuse_state.iter_count + 1;
      if t.reuse.Reuse_state.first_buffered_seq = -1 then
        t.reuse.Reuse_state.first_buffered_seq <- seq;
      (* Iteration boundary: the loop-ending instruction was dispatched. *)
      if f.f_pc = t.reuse.Reuse_state.tail then begin
        let iter_size = t.reuse.Reuse_state.iter_count in
        t.reuse.Reuse_state.iters_buffered <- t.reuse.Reuse_state.iters_buffered + 1;
        t.reuse.Reuse_state.iter_count <- 0;
        let continue_buffering =
          t.cfg.Config.buffer_multiple_iterations && Iq.free t.iq >= iter_size
        in
        if not continue_buffering then begin
          let r =
            loop_record t ~head:t.reuse.Reuse_state.head
              ~tail:t.reuse.Reuse_state.tail
          in
          r.ld_promotions <- r.ld_promotions + 1;
          t.cur_reuse_tail <- t.reuse.Reuse_state.tail;
          Reuse_state.promote ~now:t.now t.reuse;
          Iq.set_reuse_ptr t.iq (Iq.first_reusable t.iq);
          flush_front_end t
        end
      end
    end;
    true
  end

let dispatch_normal t =
  let budget = ref t.cfg.Config.decode_width in
  let continue_ = ref true in
  while
    !continue_ && !budget > 0
    && t.decode_latch.len > 0
    && t.reuse.Reuse_state.state <> Reuse_state.Reusing
  do
    let f = ring_peek t.decode_latch in
    if dispatch_one t f then begin
      (* [dispatch_one] may have promoted to Code Reuse and flushed the
         front-end queues, in which case the latch is now empty. *)
      if t.decode_latch.len > 0 then ring_pop t.decode_latch;
      decr budget
    end
    else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Dispatch in Code Reuse state: the queue feeds rename itself.        *)
(* ------------------------------------------------------------------ *)

(* Rename a reused slot in place: only the register information, the ROB
   pointer and the sequence number change (Section 2.4) — the payload
   fields cached at capture (wi, fu, latency, classification) are the
   point of reuse and stay. *)
let rename_reuse_slot t (s : Iq.slot) ~seq ~rob_idx =
  charge1 t Component.Rename;
  read_src1 t s t.dec.Decoded.r1.(s.Iq.wi);
  read_src2 t s t.dec.Decoded.r2.(s.Iq.wi);
  s.Iq.seq <- seq;
  s.Iq.rob_idx <- rob_idx;
  Iq.mark_renamed t.iq s;
  let dst = t.dec.Decoded.dst.(s.Iq.wi) in
  if dst >= 0 then t.map.(dst) <- rob_idx

(* [allow_wrap] implements the paper's unidirectional scan: within one
   cycle the pointer only moves forward; it resets to the first buffered
   instruction after the last one is reused, so a wrap ends the cycle's
   dispatch group. *)
let reuse_dispatch_one t ~allow_wrap =
  let first = Iq.first_reusable t.iq in
  if first < 0 then false
  else begin
    let p = Iq.reuse_ptr t.iq in
    let needs_wrap = p >= Iq.count t.iq || not (Iq.slots t.iq).(p).Iq.reusable in
    if needs_wrap && not allow_wrap then false
    else begin
      let rptr = if needs_wrap then first else p in
      let s = (Iq.slots t.iq).(rptr) in
      if not s.Iq.issued then false (* previous instance still in flight *)
      else if Rob.is_full t.rob then false
      else if s.Iq.is_mem && Lsq.is_full t.lsq then false
      else begin
        let wi = s.Iq.wi in
        let pc = s.Iq.pc in
        let seq = next_seq t in
        let rob_idx = Rob.alloc t.rob in
        charge1 t Component.Rob;
        let e =
          fill_rob_entry t ~rob_idx ~seq ~pc ~wi ~pred_npc:s.Iq.pred_npc
            ~ras_ck:(Predictor.checkpoint t.pred) ~from_reuse:true
            ~dst:t.dec.Decoded.dst.(wi) ~is_store:s.Iq.is_store
            ~is_ctrl:t.dec.Decoded.is_ctrl.(wi)
        in
        if s.Iq.is_mem then begin
          let li = Lsq.alloc t.lsq in
          let le = Lsq.entry t.lsq li in
          le.Lsq.seq <- seq;
          le.Lsq.rob_idx <- rob_idx;
          le.Lsq.is_store <- e.Rob.is_store;
          le.Lsq.is_fp <- t.dec.Decoded.is_fp_mem.(wi);
          le.Lsq.width <- t.dec.Decoded.width.(wi);
          e.Rob.lsq_idx <- li
        end;
        (* Partial update: only the register information and the ROB pointer
           change (Section 2.4) — renaming happens as in normal dispatch. *)
        rename_reuse_slot t s ~seq ~rob_idx;
        s.Iq.reusable <- true;
        charge1 t Component.Lrl;
        charge t Component.Iq_payload Model.iq_partial_update_fraction;
        t.n_reuse_dispatch <- t.n_reuse_dispatch + 1;
        ff_note_dispatch t ~wi ~pc ~pred_npc:s.Iq.pred_npc;
        Iq.set_reuse_ptr t.iq (rptr + 1);
        true
      end
    end
  end

let dispatch_reuse t =
  let budget = ref t.cfg.Config.issue_width in
  let continue_ = ref true in
  (* The pointer reset after the last buffered instruction (Section 2.4)
     is modelled as free within the cycle: the buffered region behaves as
     a circular buffer for the "first n from the pointer" check. *)
  while !continue_ && !budget > 0 && t.reuse.Reuse_state.state = Reuse_state.Reusing do
    if reuse_dispatch_one t ~allow_wrap:true then decr budget else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Decode stage: loop detection and classification (Section 2.1).      *)
(* ------------------------------------------------------------------ *)

(* A detector hit in Normal state: filter through the NBLT, then start
   buffering when the loop branch is predicted to loop back. *)
let handle_capture t (f : fetched) ~head ~tail =
  let r = t.reuse in
  r.Reuse_state.n_detections <- r.Reuse_state.n_detections + 1;
  let ld = loop_record t ~head ~tail in
  ld.ld_detections <- ld.ld_detections + 1;
  charge1 t Component.Nblt;
  if Nblt.mem t.nblt tail then begin
    r.Reuse_state.n_nblt_filtered <- r.Reuse_state.n_nblt_filtered + 1;
    ld.ld_nblt_filtered <- ld.ld_nblt_filtered + 1;
    if Tracer.enabled t.tracer then
      Tracer.instant t.tracer ~now:t.now
        ~args:[ ("head", Tracer.Int head); ("tail", Tracer.Int tail) ]
        ~cat:"nblt" "nblt-suppress"
  end
  else if f.f_pred_npc = head then begin
    ld.ld_attempts <- ld.ld_attempts + 1;
    (* Detection works on the predicted target (Section 2.1): buffering
       begins with the second iteration, so it only makes sense when the
       branch is predicted to loop back. *)
    Reuse_state.start_buffering ~now:t.now t.reuse ~head ~tail;
    dcache_install t ~head ~tail
  end

let decode_reuse_hooks t (f : fetched) =
  if t.cfg.Config.reuse_enabled then begin
    let r = t.reuse in
    let dec = t.dec in
    let wi = f.f_wi in
    match r.Reuse_state.state with
    | Reuse_state.Normal ->
        if dec.Decoded.is_ctrl.(wi) then charge1 t Component.Reuse_logic;
        if Tracer.enabled t.tracer then begin
          (* The tracer wants the detector's instants, so take the
             constructor-matching reference path. *)
          match
            Detector.examine ~tracer:t.tracer ~now:t.now
              ~iq_size:t.cfg.Config.iq_entries ~pc:f.f_pc dec.Decoded.insns.(wi)
          with
          | Detector.Capturable { head; tail; span = _ } ->
              handle_capture t f ~head ~tail
          | Detector.Too_large _ | Detector.Not_a_loop -> ()
        end
        else begin
          (* Pure side-table form of [Detector.examine]: conditional
             branches and direct jumps always carry a static target. *)
          match dec.Decoded.kind.(wi) with
          | Insn.K_branch | K_jump ->
              let head = dec.Decoded.target.(wi) in
              let tail = f.f_pc in
              if head <= tail && ((tail - head) / 4) + 1 <= t.cfg.Config.iq_entries
              then handle_capture t f ~head ~tail
          | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store
          | K_nop | K_halt ->
              ()
        end
    | Reuse_state.Buffering ->
        let in_loop = Reuse_state.in_loop r ~pc:f.f_pc in
        let in_callee = r.Reuse_state.call_depth > 0 in
        f.f_buffered <- in_loop || in_callee;
        (match dec.Decoded.kind.(wi) with
        | Insn.K_call ->
            if f.f_buffered then
              r.Reuse_state.call_depth <- r.Reuse_state.call_depth + 1
        | K_return ->
            if in_callee then r.Reuse_state.call_depth <- r.Reuse_state.call_depth - 1
        | K_branch | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt ->
            ());
        if (not in_loop) && not in_callee then
          (* The execution left the loop while buffering (Section 2.2.3). *)
          revoke_buffering t ~register_nblt:true ~cause:Rv_left_loop
        else begin
          (* An inner loop makes the current loop non-bufferable. *)
          match dec.Decoded.kind.(wi) with
          | Insn.K_branch | K_jump ->
              let head = dec.Decoded.target.(wi) in
              if
                head <= f.f_pc
                && ((f.f_pc - head) / 4) + 1 <= t.cfg.Config.iq_entries
                && f.f_pc <> r.Reuse_state.tail
              then revoke_buffering t ~register_nblt:true ~cause:Rv_inner_loop
          | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store
          | K_nop | K_halt ->
              ()
        end
    | Reuse_state.Reusing -> ()
  end

let decode_stage t =
  if t.reuse.Reuse_state.state <> Reuse_state.Reusing then begin
    let room = t.cfg.Config.decode_width - t.decode_latch.len in
    for _ = 1 to room do
      if t.fetch_q.len > 0 && t.reuse.Reuse_state.state <> Reuse_state.Reusing
      then begin
        let f = ring_peek t.fetch_q in
        charge1 t Component.Decoder;
        decode_reuse_hooks t f;
        (* The hooks never flush the front end (promotion happens at
           dispatch), so the latch slot is always available. *)
        let g = ring_push t.decode_latch in
        g.f_pc <- f.f_pc;
        g.f_wi <- f.f_wi;
        g.f_pred_npc <- f.f_pred_npc;
        g.f_ras_ck <- f.f_ras_ck;
        g.f_buffered <- f.f_buffered;
        ring_pop t.fetch_q
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Fetch stage.                                                        *)
(* ------------------------------------------------------------------ *)

let fetch_stage t =
  if
    t.reuse.Reuse_state.state <> Reuse_state.Reusing
    && t.fetch_pc >= 0
    && t.now >= t.fetch_stall_until
    && t.fetch_q.len < ring_cap t.fetch_q
    && Decoded.valid t.dec t.fetch_pc
  then begin
    let dec = t.dec in
    (* The loop cache, when present and active, supplies the whole fetch
       group without touching the instruction cache or ITLB. *)
    let serve_lc =
      match t.lc with Some lc -> Loopcache.serving lc ~pc:t.fetch_pc | None -> false
    in
    let lat =
      if serve_lc then begin
        charge1 t Component.Loopcache;
        t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency
      end
      else fetch_latency t t.fetch_pc
    in
    if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then
      t.fetch_stall_until <- t.now + lat
    else begin
      let il1 = Hierarchy.l1i t.hier in
      let cur_line = ref (Cache.line_index il1 ~addr:t.fetch_pc) in
      let fetched = ref 0 in
      let continue_ = ref true in
      while
        !continue_ && !fetched < t.cfg.Config.fetch_width
        && t.fetch_q.len < ring_cap t.fetch_q
        && t.fetch_pc >= 0
      do
        (* Crossing into another cache line (sequentially or through a
           taken branch) costs another port access; a miss there ends the
           group and stalls the front end. Loop-cache-served groups never
           touch the line ports. *)
        if (not serve_lc) && Cache.line_index il1 ~addr:t.fetch_pc <> !cur_line
        then begin
          let lat = fetch_latency t t.fetch_pc in
          if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then begin
            t.fetch_stall_until <- t.now + lat;
            continue_ := false
          end
          else cur_line := Cache.line_index il1 ~addr:t.fetch_pc
        end;
        if !continue_ then begin
          if not (Decoded.valid t.dec t.fetch_pc) then continue_ := false
          else begin
            let pc = t.fetch_pc in
            let wi = Decoded.wi_of_pc dec pc in
            let kind = dec.Decoded.kind.(wi) in
            let pred_npc =
              if dec.Decoded.is_ctrl.(wi) then begin
                (match kind with
                | Insn.K_branch -> charge1 t Component.Bpred_dir
                | K_call | K_return -> charge1 t Component.Ras
                | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt ->
                    ());
                charge1 t Component.Btb;
                Predictor.lookup_decoded t.pred ~pc ~kind
                  ~static_target:dec.Decoded.target.(wi)
              end
              else pc + 4
            in
            let f = ring_push t.fetch_q in
            f.f_pc <- pc;
            f.f_wi <- wi;
            f.f_pred_npc <- pred_npc;
            f.f_ras_ck <- Predictor.checkpoint t.pred;
            f.f_buffered <- false;
            (match t.lc with
            | Some lc ->
                (* Fill writes are charged; supplied reads were charged
                   once for the group. *)
                if Loopcache.state lc = Loopcache.Fill then charge1 t Component.Loopcache;
                Loopcache.on_fetch_decoded lc ~pc ~kind
                  ~static_target:dec.Decoded.target.(wi) ~pred_npc
            | None -> ());
            incr fetched;
            match kind with
            | Insn.K_halt ->
                t.fetch_pc <- -1;
                continue_ := false
            | K_branch | K_jump | K_call | K_return | K_ijump | K_int | K_fp
            | K_load | K_store | K_nop ->
                t.fetch_pc <- pred_npc;
                (* Unknown target: wait for the instruction to resolve. *)
                if pred_npc < 0 then continue_ := false
          end
        end
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Cycle loop.                                                         *)
(* ------------------------------------------------------------------ *)

(* Windowed sample over (samp_last_cycle, now]: IPC, queue occupancies and
   per-group power, in [sample_channels] order. The occupancies are
   parameters so the fast-forward replay can sample from its logged
   occupancy columns while the pipeline structures stay frozen. *)
let sample_values_occ t ~iqc ~robc ~lsqc =
  let dc = float_of_int (max 1 (t.now - t.samp_last_cycle)) in
  let v = Array.make (5 + Array.length sample_groups) 0. in
  v.(0) <- float_of_int (t.committed - t.samp_last_committed) /. dc;
  v.(1) <- float_of_int iqc;
  v.(2) <- float_of_int robc;
  v.(3) <- float_of_int lsqc;
  let total = ref 0. in
  Array.iteri
    (fun i g ->
      let e = Account.group_energy t.acct g in
      let p = (e -. t.samp_last_energy.(i)) /. dc in
      t.samp_last_energy.(i) <- e;
      total := !total +. p;
      v.(4 + i) <- p)
    sample_groups;
  v.(4 + Array.length sample_groups) <- !total;
  t.samp_last_cycle <- t.now;
  t.samp_last_committed <- t.committed;
  v

let sample_values t =
  sample_values_occ t ~iqc:(Iq.count t.iq) ~robc:(Rob.count t.rob)
    ~lsqc:(Lsq.count t.lsq)

let sample_tick t =
  let sampler_due =
    match t.sampler with Some s -> Sampler.due s ~cycle:t.now | None -> false
  in
  let tracer_due = Tracer.enabled t.tracer && t.now mod t.counter_stride = 0 in
  if sampler_due || tracer_due then begin
    let v = sample_values t in
    (match t.sampler with
    | Some s when sampler_due -> Sampler.record s ~cycle:t.now v
    | Some _ | None -> ());
    if tracer_due then begin
      Tracer.counter t.tracer ~now:t.now ~name:"ipc" [ ("ipc", v.(0)) ];
      Tracer.counter t.tracer ~now:t.now ~name:"occupancy"
        [ ("iq", v.(1)); ("rob", v.(2)); ("lsq", v.(3)) ];
      Tracer.counter t.tracer ~now:t.now ~name:"power"
        (Array.to_list
           (Array.mapi
              (fun i g -> (Component.group_name g, v.(4 + i)))
              sample_groups))
    end
  end

(* End-of-cycle capture for the fast-forward observation: the activity
   vector (before [Account.tick] consumes it), the queue occupancies and
   the cycle's commit count. *)
let ff_capture_cycle t f =
  fv_append f.ff_cur_act (Account.activity t.acct) Component.count;
  iv_push f.ff_cur_occ (Iq.count t.iq);
  iv_push f.ff_cur_occ (Rob.count t.rob);
  iv_push f.ff_cur_occ (Lsq.count t.lsq);
  iv_push f.ff_cur_com (t.committed - f.ff_last_committed);
  f.ff_last_committed <- t.committed

let step_cycle t =
  commit_stage t;
  if not t.halted then begin
    writeback_stage t;
    replay_stage t;
    issue_stage t;
    (match t.reuse.Reuse_state.state with
    | Reuse_state.Reusing -> dispatch_reuse t
    | Reuse_state.Normal | Reuse_state.Buffering -> dispatch_normal t);
    decode_stage t;
    fetch_stage t;
    if t.reuse.Reuse_state.state = Reuse_state.Reusing then begin
      t.gated_cycles <- t.gated_cycles + 1;
      charge1 t Component.Reuse_logic
    end;
    let removed = Iq.compact t.iq in
    if removed > 0 then charge t Component.Iq_payload (float_of_int removed)
  end;
  (match t.ff with
  | Some f when f.ff_mode = 1 -> ff_capture_cycle t f
  | Some _ | None -> ());
  Account.tick t.acct;
  t.now <- t.now + 1;
  sample_tick t

(* ------------------------------------------------------------------ *)
(* Event skip-ahead (Config.skip_ahead).                               *)
(*                                                                     *)
(* When nothing in the pipeline can make progress this cycle — no      *)
(* writeback event due, no replay pending, nothing ready to issue,     *)
(* commit blocked on an incomplete head, front end drained and fetch   *)
(* stalled or gated — the machine's only per-cycle work is the idle    *)
(* power accounting. Such a cycle changes no pipeline state, so the    *)
(* same is true of every following cycle until the next writeback      *)
(* event (or the fetch stall expiring). Those cycles are run through a *)
(* lean loop that performs exactly the charges, accounting and        *)
(* sampling the full cycle loop would, in the same order.              *)

(* Fetch can do nothing now or on any later event-free cycle: gated by
   Code Reuse, blocked on an unresolved redirect, stalled on a miss, or
   past the end of the program. *)
let fetch_blocked t =
  t.reuse.Reuse_state.state = Reuse_state.Reusing
  || t.fetch_pc < 0
  || t.now < t.fetch_stall_until
  || not (Decoded.valid t.dec t.fetch_pc)

(* Mirror of [reuse_dispatch_one]'s early-outs (with wrap allowed, as
   the first dispatch of a cycle has): true when the reuse queue cannot
   dispatch anything this cycle. All inputs change only through events,
   so the answer is stable across event-free cycles. *)
let reuse_dispatch_blocked t =
  let first = Iq.first_reusable t.iq in
  first < 0
  ||
  let p = Iq.reuse_ptr t.iq in
  let needs_wrap = p >= Iq.count t.iq || not (Iq.slots t.iq).(p).Iq.reusable in
  let rptr = if needs_wrap then first else p in
  let s = (Iq.slots t.iq).(rptr) in
  (not s.Iq.issued) || Rob.is_full t.rob || (s.Iq.is_mem && Lsq.is_full t.lsq)

let quiescent t =
  (not t.halted)
  && t.rp_n = 0
  && t.ev_n.(t.now land wheel_mask) = 0
  && (let rdy = Iq.ready t.iq in
      rdy.Iq.r_next == rdy)
  && (Rob.count t.rob = 0
     || not (Rob.entry t.rob (Rob.head t.rob)).Rob.completed)
  && t.fetch_q.len = 0
  && t.decode_latch.len = 0
  &&
  match t.reuse.Reuse_state.state with
  | Reuse_state.Reusing -> reuse_dispatch_blocked t
  | Reuse_state.Normal | Reuse_state.Buffering -> fetch_blocked t

(* First cycle at which a quiescent machine can make progress: the next
   scheduled writeback event, or the fetch stall expiring (when fetch is
   runnable after it), or the cycle limit. *)
let next_wake t ~cycle_limit =
  let best = ref cycle_limit in
  let k = ref 1 in
  let found = ref false in
  while (not !found) && !k <= wheel_mask do
    if t.ev_n.((t.now + !k) land wheel_mask) > 0 then begin
      let c = t.now + !k in
      if c < !best then best := c;
      found := true
    end;
    incr k
  done;
  if
    t.reuse.Reuse_state.state <> Reuse_state.Reusing
    && t.fetch_pc >= 0
    && t.fetch_stall_until > t.now
    && Decoded.valid t.dec t.fetch_pc
    && t.fetch_stall_until < !best
  then best := t.fetch_stall_until;
  !best

(* Lean cycle loop covering [t.now, target): the only charges a
   quiescent cycle makes are the occupied-queue select probe and the
   Code Reuse gating logic, in [step_cycle]'s order; both are invariant
   across the skipped stretch. *)
let skip_to t ~target =
  let iq_busy = Iq.count t.iq > 0 in
  let reusing = t.reuse.Reuse_state.state = Reuse_state.Reusing in
  while t.now < target do
    if iq_busy then charge1 t Component.Iq_select;
    if reusing then begin
      t.gated_cycles <- t.gated_cycles + 1;
      charge1 t Component.Reuse_logic
    end;
    (match t.ff with
    | Some f when f.ff_mode = 1 -> ff_capture_cycle t f
    | Some _ | None -> ());
    Account.tick t.acct;
    t.now <- t.now + 1;
    t.n_skipped <- t.n_skipped + 1;
    sample_tick t
  done

(* ------------------------------------------------------------------ *)
(* Fast-forward: boundary snapshots, verification and replay.          *)
(* ------------------------------------------------------------------ *)

(* Relocation-invariant snapshot of the machine at an iteration
   boundary. Sequence numbers are encoded relative to [seq_ctr], ROB
   references as distance from the ROB head, LSQ references as age rank
   (position in sequence order), cycles as distance from [now] — all
   invariant under the uniform relocation a replay applies. Semantic
   payloads (operand values, addresses, store data) are excluded; the
   replay recomputes and patches them at exit. *)
let ff_rigid_vec t v =
  iv_clear v;
  let rs = Rob.size t.rob and rh = Rob.head t.rob in
  let rrel i = if i < 0 then -1 else (i - rh + rs) mod rs in
  let ls = Lsq.size t.lsq in
  let lrank = Array.make (max 1 ls) (-1) in
  let lids = ref [] in
  for i = ls - 1 downto 0 do
    if (Lsq.entry t.lsq i).Lsq.live then lids := i :: !lids
  done;
  let lids =
    List.sort
      (fun a b -> compare (Lsq.entry t.lsq a).Lsq.seq (Lsq.entry t.lsq b).Lsq.seq)
      !lids
  in
  List.iteri (fun rank i -> lrank.(i) <- rank) lids;
  let lrel i = if i < 0 then -1 else lrank.(i) in
  let sc = t.seq_ctr in
  let b x = if x then 1 else 0 in
  let r = t.reuse in
  iv_push v
    (match r.Reuse_state.state with Normal -> 0 | Buffering -> 1 | Reusing -> 2);
  iv_push v r.Reuse_state.head;
  iv_push v r.Reuse_state.tail;
  iv_push v r.Reuse_state.iter_count;
  iv_push v r.Reuse_state.call_depth;
  iv_push v r.Reuse_state.iters_buffered;
  iv_push v t.cur_reuse_tail;
  iv_push v t.fetch_pc;
  iv_push v (max 0 (t.fetch_stall_until - t.now));
  iv_push v t.fetch_q.len;
  iv_push v t.decode_latch.len;
  iv_push v t.rp_n;
  iv_push v t.dc_hits;
  iv_push v t.dc_installs;
  List.iter (iv_push v) (Fu.ffwd_busy_rel t.fu ~now:t.now);
  Array.iter (fun m -> iv_push v (rrel m)) t.map;
  iv_push v (Rob.count t.rob);
  Rob.iter_oldest_first t.rob (fun _ e ->
      iv_push v (e.Rob.seq - sc);
      iv_push v e.Rob.pc;
      iv_push v e.Rob.wi;
      iv_push v (b e.Rob.completed);
      iv_push v e.Rob.dest;
      iv_push v (b e.Rob.is_store);
      iv_push v (lrel e.Rob.lsq_idx);
      iv_push v (b e.Rob.is_ctrl);
      iv_push v e.Rob.pred_npc;
      iv_push v e.Rob.actual_npc;
      iv_push v (b e.Rob.taken);
      iv_push v e.Rob.ras_ck;
      iv_push v (b e.Rob.from_reuse));
  iv_push v (Iq.count t.iq);
  iv_push v (Iq.reuse_ptr t.iq);
  iv_push v (Iq.first_reusable t.iq);
  let slots = Iq.slots t.iq in
  for i = 0 to Iq.count t.iq - 1 do
    let s = slots.(i) in
    iv_push v (s.Iq.seq - sc);
    iv_push v (rrel s.Iq.rob_idx);
    iv_push v s.Iq.pc;
    iv_push v s.Iq.wi;
    iv_push v
      (match s.Iq.fu with
      | Insn.FU_none -> 0
      | FU_ialu -> 1
      | FU_imult -> 2
      | FU_fpalu -> 3
      | FU_fpmult -> 4
      | FU_mem -> 5);
    iv_push v s.Iq.lat;
    iv_push v (b s.Iq.pipe);
    iv_push v (b s.Iq.is_mem);
    iv_push v (b s.Iq.is_store);
    iv_push v (rrel s.Iq.src1_tag);
    iv_push v (rrel s.Iq.src2_tag);
    iv_push v (b s.Iq.issued);
    iv_push v (b s.Iq.reusable);
    iv_push v (b s.Iq.dead);
    iv_push v s.Iq.pred_npc;
    iv_push v (b (s.Iq.r_next != s));
    iv_push v (b (s.Iq.w1_next != s));
    iv_push v (b (s.Iq.w2_next != s))
  done;
  iv_push v (Lsq.count t.lsq);
  List.iter
    (fun i ->
      let le = Lsq.entry t.lsq i in
      iv_push v (le.Lsq.seq - sc);
      iv_push v (rrel le.Lsq.rob_idx);
      iv_push v (b le.Lsq.is_store);
      iv_push v (b le.Lsq.is_fp);
      iv_push v (b le.Lsq.addr_ready);
      iv_push v le.Lsq.width;
      iv_push v (b le.Lsq.data_ready);
      iv_push v (rrel le.Lsq.data_tag))
    lids;
  for k = 0 to wheel_mask do
    let sl = (t.now + k) land wheel_mask in
    let n = t.ev_n.(sl) in
    if n > 0 then begin
      iv_push v k;
      iv_push v n;
      for j = 0 to n - 1 do
        iv_push v t.ev_kind.(sl).(j);
        iv_push v (t.ev_seq.(sl).(j) - sc);
        iv_push v (rrel t.ev_rob.(sl).(j));
        iv_push v (rrel t.ev_dtag.(sl).(j))
      done
    end
  done

(* Monotonic counters that advance by a constant amount per period:
   captured at each boundary; relocation adds a multiple of the verified
   per-period delta. Field order here and in [ff_affine_restore] must
   match. *)
let ff_affine_vec t =
  let loops =
    List.sort
      (fun a b -> compare a.ld_tail b.ld_tail)
      (Hashtbl.fold (fun _ r acc -> r :: acc) t.loop_log [])
  in
  let fuc = Fu.ffwd_counters t.fu in
  let pa = Predictor.ffwd_affine t.pred in
  let n = 9 + List.length loops + Array.length fuc + Array.length pa in
  let a = Array.make n 0 in
  a.(0) <- t.committed;
  a.(1) <- t.seq_ctr;
  a.(2) <- t.gated_cycles;
  a.(3) <- t.n_branches;
  a.(4) <- t.n_mispredicts;
  a.(5) <- t.n_loads;
  a.(6) <- t.n_stores;
  a.(7) <- t.n_reuse_dispatch;
  a.(8) <- t.n_reuse_commit;
  let i = ref 9 in
  List.iter
    (fun r ->
      a.(!i) <- r.ld_reuse_committed;
      incr i)
    loops;
  Array.iter
    (fun x ->
      a.(!i) <- x;
      incr i)
    fuc;
  Array.iter
    (fun x ->
      a.(!i) <- x;
      incr i)
    pa;
  a

let ff_affine_restore t base ~m ~d =
  let n = Array.length base in
  let v = Array.init n (fun i -> base.(i) + (m * d.(i))) in
  t.committed <- v.(0);
  t.seq_ctr <- v.(1);
  t.gated_cycles <- v.(2);
  t.n_branches <- v.(3);
  t.n_mispredicts <- v.(4);
  t.n_loads <- v.(5);
  t.n_stores <- v.(6);
  t.n_reuse_dispatch <- v.(7);
  t.n_reuse_commit <- v.(8);
  let loops =
    List.sort
      (fun a b -> compare a.ld_tail b.ld_tail)
      (Hashtbl.fold (fun _ r acc -> r :: acc) t.loop_log [])
  in
  let i = ref 9 in
  List.iter
    (fun r ->
      r.ld_reuse_committed <- v.(!i);
      incr i)
    loops;
  let nf = Array.length (Fu.ffwd_counters t.fu) in
  Fu.ffwd_set_counters t.fu (Array.sub v !i nf);
  i := !i + nf;
  Predictor.ffwd_set_affine t.pred (Array.sub v !i (n - !i))

(* (Re)start observation with the current boundary as the base state. *)
let ff_snapshot_start t f =
  f.ff_mode <- 1;
  f.ff_periods <- 0;
  f.ff_poison <- false;
  f.ff_cycle_start <- t.now;
  f.ff_seq_start <- t.seq_ctr;
  f.ff_last_committed <- t.committed;
  fv_clear f.ff_cur_act;
  iv_clear f.ff_cur_occ;
  iv_clear f.ff_cur_com;
  iv_clear f.ff_cur_mem;
  iv_clear f.ff_cur_dsp;
  f.ff_adiff <- [||];
  f.ff_mem_prev <- [||];
  f.ff_mem_stride <- [||];
  ff_rigid_vec t f.ff_rigid_prev;
  f.ff_pred_prev <- Predictor.ffwd_version t.pred;
  f.ff_aff_prev <- ff_affine_vec t

(* One iteration boundary under observation: check this period against
   the base snapshot and the reference logs, and roll the observation
   window forward on success. Period 1's cycle logs are discarded
   (observation started mid-way through its first cycle); period 2
   becomes the reference; periods 3+ must reproduce it bitwise. *)
let ff_verify_boundary t f =
  let p = f.ff_periods + 1 in
  ff_rigid_vec t f.ff_rigid_cur;
  let pred = Predictor.ffwd_version t.pred in
  let acur = ff_affine_vec t in
  let ok = ref ((not f.ff_poison) && t.rp_n = 0) in
  if !ok then
    ok := iv_equal f.ff_rigid_cur f.ff_rigid_prev && pred = f.ff_pred_prev;
  if !ok then begin
    let na = Array.length acur in
    if na <> Array.length f.ff_aff_prev then ok := false
    else begin
      let d = Array.init na (fun i -> acur.(i) - f.ff_aff_prev.(i)) in
      if p = 1 then f.ff_adiff <- d else if d <> f.ff_adiff then ok := false
    end
  end;
  if !ok && p >= 3 then begin
    ok :=
      f.ff_cur_act.fvn = f.ff_ref_act.fvn
      && iv_equal f.ff_cur_occ f.ff_ref_occ
      && iv_equal f.ff_cur_com f.ff_ref_com
      && iv_equal f.ff_cur_dsp f.ff_ref_dsp
      && f.ff_cur_mem.ivn = f.ff_ref_mem.ivn;
    if !ok then begin
      let i = ref 0 in
      while !ok && !i < f.ff_cur_act.fvn do
        if f.ff_cur_act.fv.(!i) <> f.ff_ref_act.fv.(!i) then ok := false;
        incr i
      done
    end;
    if !ok then begin
      let nm = f.ff_ref_mem.ivn / 5 in
      let j = ref 0 in
      while !ok && !j < nm do
        let base = 5 * !j in
        if
          f.ff_cur_mem.iv.(base) <> f.ff_ref_mem.iv.(base)
          || f.ff_cur_mem.iv.(base + 1) <> f.ff_ref_mem.iv.(base + 1)
          || f.ff_cur_mem.iv.(base + 2) <> f.ff_ref_mem.iv.(base + 2)
          || f.ff_cur_mem.iv.(base + 3) <> f.ff_ref_mem.iv.(base + 3)
        then ok := false;
        incr j
      done;
      (* Per-op address strides: each memory op must advance by its own
         constant stride from period to period. Equal-stride pairs keep
         a constant address distance (so their forwarding and aliasing
         relationship is frozen); unequal-stride pairs drift, and the
         replay bounds the number of periods it runs to provably before
         any such pair can come to overlap ([ff_alias_cap]). *)
      if !ok then begin
        if p = 3 then
          f.ff_mem_stride <-
            Array.init nm (fun j ->
                f.ff_cur_mem.iv.((5 * j) + 4) - f.ff_mem_prev.(j))
        else
          for j = 0 to nm - 1 do
            if
              f.ff_cur_mem.iv.((5 * j) + 4) - f.ff_mem_prev.(j)
              <> f.ff_mem_stride.(j)
            then ok := false
          done
      end
    end
  end;
  if !ok then begin
    f.ff_periods <- p;
    (if p = 2 then begin
       let sf = f.ff_ref_act in
       f.ff_ref_act <- f.ff_cur_act;
       f.ff_cur_act <- sf;
       let o = f.ff_ref_occ in
       f.ff_ref_occ <- f.ff_cur_occ;
       f.ff_cur_occ <- o;
       let c = f.ff_ref_com in
       f.ff_ref_com <- f.ff_cur_com;
       f.ff_cur_com <- c;
       let mm = f.ff_ref_mem in
       f.ff_ref_mem <- f.ff_cur_mem;
       f.ff_cur_mem <- mm;
       let dd = f.ff_ref_dsp in
       f.ff_ref_dsp <- f.ff_cur_dsp;
       f.ff_cur_dsp <- dd
     end);
    (if p >= 2 then begin
       let src = if p = 2 then f.ff_ref_mem else f.ff_cur_mem in
       let nm = src.ivn / 5 in
       if Array.length f.ff_mem_prev <> nm then f.ff_mem_prev <- Array.make nm 0;
       for j = 0 to nm - 1 do
         f.ff_mem_prev.(j) <- src.iv.((5 * j) + 4)
       done
     end);
    let rtmp = f.ff_rigid_prev in
    f.ff_rigid_prev <- f.ff_rigid_cur;
    f.ff_rigid_cur <- rtmp;
    f.ff_pred_prev <- pred;
    f.ff_aff_prev <- acur;
    f.ff_cycle_start <- t.now;
    f.ff_seq_start <- t.seq_ctr;
    f.ff_last_committed <- t.committed;
    fv_clear f.ff_cur_act;
    iv_clear f.ff_cur_occ;
    iv_clear f.ff_cur_com;
    iv_clear f.ff_cur_mem;
    iv_clear f.ff_cur_dsp;
    true
  end
  else false

exception Ff_stop

(* Replay verified periods until the loop's behaviour stops matching the
   template (typically the loop exit), memory timing stops repeating, or
   the cycle budget runs out. Pipeline structures are frozen throughout;
   a semantic machine executes the loop body in program order to supply
   the values the relocated state needs. All checks that can reject a
   period run before the period mutates any processor state — the
   semantic machine works entirely on private copies. *)
let ff_replay_periods t f ~nd ~dc ~cycle_limit =
  let dec = t.dec in
  let base_now = t.now and base_seq = t.seq_ctr in
  let ncomp = Component.count in
  (* Semantic record ring, indexed by sequence number. Sized so records
     stay alive from semantic execution until the commit fold and the
     exit patch reach them. *)
  let cap =
    let need = Rob.size t.rob + (2 * nd) + 64 in
    let c = ref 256 in
    while !c < need do
      c := !c * 2
    done;
    !c
  in
  let rmask = cap - 1 in
  let r_seq = Array.make cap min_int in
  let r_wi = Array.make cap 0
  and r_res_i = Array.make cap 0
  and r_s1i = Array.make cap 0
  and r_s2i = Array.make cap 0
  and r_addr = Array.make cap 0
  and r_sdi = Array.make cap 0
  and r_npc = Array.make cap 0 in
  let r_res_f = Array.make cap 0.
  and r_s1f = Array.make cap 0.
  and r_s2f = Array.make cap 0.
  and r_sdf = Array.make cap 0. in
  let r_taken = Array.make cap false in
  let priv = Store.copy t.memory in
  let sem_i = Array.copy t.arch_i and sem_f = Array.copy t.arch_f in
  let carch_i = Array.copy t.arch_i and carch_f = Array.copy t.arch_f in
  let scratch_rob = Rob.create 1 in
  let se = Rob.entry scratch_rob (Rob.alloc scratch_rob) in
  let load_priv ext addr =
    if ext = Decoded.ext_word then Bits.of_i32 (Store.read_word priv addr)
    else if ext = Decoded.ext_s8 then
      Bits.sign_extend (Store.read_byte priv addr) ~width:8
    else if ext = Decoded.ext_u8 then Store.read_byte priv addr
    else if ext = Decoded.ext_s16 then
      Bits.sign_extend (Store.read_half priv addr) ~width:16
    else Store.read_half priv addr
  in
  (* Execute one instruction architecturally on the private image,
     recording everything the relocation needs. Raises [Ff_stop] on
     anything the replay must not extrapolate over (halt, unusable
     memory address). *)
  let sem_exec ~wi ~pc ~seq =
    let r1 = dec.Decoded.r1.(wi) and r2 = dec.Decoded.r2.(wi) in
    let s1i = if r1 >= 0 && r1 < 32 then sem_i.(r1) else 0 in
    let s1f = if r1 >= 32 then sem_f.(r1 - 32) else 0. in
    let s2i = if r2 >= 0 && r2 < 32 then sem_i.(r2) else 0 in
    let s2f = if r2 >= 32 then sem_f.(r2 - 32) else 0. in
    let i = seq land rmask in
    r_seq.(i) <- seq;
    r_wi.(i) <- wi;
    r_s1i.(i) <- s1i;
    r_s1f.(i) <- s1f;
    r_s2i.(i) <- s2i;
    r_s2f.(i) <- s2f;
    r_addr.(i) <- 0;
    r_sdi.(i) <- 0;
    r_sdf.(i) <- 0.;
    let npc =
      match dec.Decoded.kind.(wi) with
      | Insn.K_load ->
          let addr = Bits.add32 s1i dec.Decoded.imm.(wi) in
          if addr < 0 || addr land dec.Decoded.amask.(wi) <> 0 then raise Ff_stop;
          r_addr.(i) <- addr;
          (if dec.Decoded.is_fp_mem.(wi) then begin
             r_res_f.(i) <- Store.read_float priv addr;
             r_res_i.(i) <- 0
           end
           else begin
             r_res_i.(i) <- load_priv dec.Decoded.ext.(wi) addr;
             r_res_f.(i) <- 0.
           end);
          r_taken.(i) <- false;
          pc + 4
      | K_store ->
          let addr = Bits.add32 s1i dec.Decoded.imm.(wi) in
          if addr < 0 || addr land dec.Decoded.amask.(wi) <> 0 then raise Ff_stop;
          r_addr.(i) <- addr;
          r_sdi.(i) <- s2i;
          r_sdf.(i) <- s2f;
          r_res_i.(i) <- 0;
          r_res_f.(i) <- 0.;
          r_taken.(i) <- false;
          (if dec.Decoded.is_fp_mem.(wi) then Store.write_float priv addr s2f
           else if dec.Decoded.width.(wi) = 1 then Store.write_byte priv addr s2i
           else if dec.Decoded.width.(wi) = 2 then Store.write_half priv addr s2i
           else Store.write_word priv addr (Bits.to_u32 s2i));
          pc + 4
      | K_halt -> raise Ff_stop
      | K_branch | K_jump | K_call | K_return | K_ijump | K_int | K_fp | K_nop
        ->
          execute_into t se ~wi ~pc ~s1i ~s1f ~s2i ~s2f;
          r_res_i.(i) <- se.Rob.value_i;
          r_res_f.(i) <- se.Rob.value_f;
          r_taken.(i) <- se.Rob.taken;
          se.Rob.actual_npc
    in
    r_npc.(i) <- npc;
    (let dst = dec.Decoded.dst.(wi) in
     if dst >= 0 then
       if dst >= 32 then sem_f.(dst - 32) <- r_res_f.(i)
       else sem_i.(dst) <- r_res_i.(i));
    npc
  in
  (* Dispatch and memory templates from the reference period. *)
  let dw = Array.make nd 0 and dp = Array.make nd 0 and dq = Array.make nd 0 in
  for i = 0 to nd - 1 do
    dw.(i) <- f.ff_ref_dsp.iv.(3 * i);
    dp.(i) <- f.ff_ref_dsp.iv.((3 * i) + 1);
    dq.(i) <- f.ff_ref_dsp.iv.((3 * i) + 2)
  done;
  let nm = f.ff_ref_mem.ivn / 5 in
  let mkind = Array.make (max 1 nm) 0
  and moff = Array.make (max 1 nm) 0
  and mrel = Array.make (max 1 nm) 0
  and mlat = Array.make (max 1 nm) 0 in
  for j = 0 to nm - 1 do
    mkind.(j) <- f.ff_ref_mem.iv.(5 * j);
    moff.(j) <- f.ff_ref_mem.iv.((5 * j) + 1);
    mrel.(j) <- f.ff_ref_mem.iv.((5 * j) + 2);
    mlat.(j) <- f.ff_ref_mem.iv.((5 * j) + 3)
  done;
  let mlast = Array.copy f.ff_mem_prev in
  let stride = f.ff_mem_stride in
  let ipp = ref 0 in
  for i = 0 to nd - 1 do
    if dp.(i) = t.reuse.Reuse_state.tail then incr ipp
  done;
  (* Periods the replay may run before any unequal-stride pair involving
     a store could come to overlap. Equal-stride pairs keep a constant
     address distance, so whatever LSQ forwarding/disambiguation
     relationship the observed periods had is frozen; an unequal-stride
     pair drifts linearly — period [m]'s op [j] accesses
     [L_j + (m+1)s_j, +w_j) — so the first period at which ops [j] (in
     period [m]) and [j'] (in period [m+r], for every straddle distance
     [r] the in-flight window allows) can overlap is closed-form. An
     overlap before the replay window (m < 0, i.e. during the observed
     periods themselves) taints the template: the logged timing may
     embed a forwarding event whose address geometry will not recur. *)
  let alias_cap =
    if nm = 0 then max_int
    else begin
      let fdiv a b =
        let q = a / b and r = a mod b in
        if r <> 0 && r < 0 <> (b < 0) then q - 1 else q
      in
      let cdiv a b = -fdiv (-a) b in
      let w = Array.make nm 1 in
      for j = 0 to nm - 1 do
        (* [mrel] can be <= 0 (an op still in flight from an earlier
           period); the dispatch template repeats every [nd] sequence
           numbers, so the op's slot — and hence its window index and
           width — is the offset mod [nd]. *)
        let slot = (((mrel.(j) - 1) mod nd) + nd) mod nd in
        let wi = dw.(slot) in
        w.(j) <-
          (if dec.Decoded.is_fp_mem.(wi) then 8 else dec.Decoded.width.(wi))
      done;
      let cap = ref max_int in
      let rspan = (Rob.size t.rob + nd - 1) / nd in
      let m0 = -f.ff_periods in
      for j = 0 to nm - 1 do
        for j' = 0 to nm - 1 do
          if
            mkind.(j) <= 1
            && mkind.(j') <= 1
            && (mkind.(j) = 1 || mkind.(j') = 1)
            && stride.(j) <> stride.(j')
          then
            for r = 0 to rspan do
              if r > 0 || j <> j' then begin
                let dlt = stride.(j') - stride.(j) in
                let d0 =
                  mlast.(j') + ((r + 1) * stride.(j'))
                  - (mlast.(j) + stride.(j))
                in
                (* Overlap iff 1 - w_j' <= d0 + m*dlt <= w_j - 1. *)
                let lo = 1 - w.(j') and hi = w.(j) - 1 in
                let mlo, mhi =
                  if dlt > 0 then (cdiv (lo - d0) dlt, fdiv (hi - d0) dlt)
                  else (cdiv (hi - d0) dlt, fdiv (lo - d0) dlt)
                in
                if mhi >= m0 then begin
                  let first = max m0 mlo in
                  if first <= mhi then cap := min !cap (max 0 first)
                end
              end
            done
        done
      done;
      !cap
    end
  in
  let m = ref 0 in
  let frontier = ref ((Rob.entry t.rob (Rob.head t.rob)).Rob.seq - 1) in
  (try
     (* Catch up on the in-flight window: every instruction already in
        the ROB must execute to its predicted outcome, or the pipeline
        would leave the loop before the next boundary. *)
     let chain = ref min_int in
     Rob.iter_oldest_first t.rob (fun _ e ->
         if !chain <> min_int && e.Rob.pc <> !chain then raise Ff_stop;
         let npc = sem_exec ~wi:e.Rob.wi ~pc:e.Rob.pc ~seq:e.Rob.seq in
         if npc <> e.Rob.pred_npc then raise Ff_stop;
         chain := npc);
     while true do
       if t.now + dc > cycle_limit then raise Ff_stop;
       if !m >= alias_cap then raise Ff_stop;
       let sbase = base_seq + (!m * nd) in
       (* Lookahead: the next period must follow the dispatch template
          and conform to its predictions (the loop exit surfaces as a
          conformance failure here, before any state is touched). *)
       for i = 0 to nd - 1 do
         if dp.(i) <> !chain then raise Ff_stop;
         let npc = sem_exec ~wi:dw.(i) ~pc:dp.(i) ~seq:(sbase + 1 + i) in
         if npc <> dq.(i) then raise Ff_stop;
         chain := npc
       done;
       (* Memory pre-check: addresses advance by the verified stride and
          cache/TLB accesses will hit (so latencies and the power
          charges baked into the activity log are exact). *)
       for j = 0 to nm - 1 do
         let sq = sbase + mrel.(j) in
         let i = sq land rmask in
         if r_seq.(i) <> sq then raise Ff_stop;
         if r_addr.(i) <> mlast.(j) + stride.(j) then raise Ff_stop;
         if mkind.(j) <= 1 && not (Hierarchy.data_would_hit t.hier ~addr:r_addr.(i))
         then raise Ff_stop
       done;
       (* The period is certain: replay its cycles. Memory ops touch the
          real hierarchy (counters, LRU) and the real memory image at
          their logged offsets; charges ride in the activity log. *)
       let act = Account.activity t.acct in
       let mj = ref 0 in
       for j = 0 to dc - 1 do
         while !mj < nm && moff.(!mj) = j do
           let jj = !mj in
           (if mkind.(jj) <= 1 then begin
              let sq = sbase + mrel.(jj) in
              let i = sq land rmask in
              let a = r_addr.(i) in
              let lat =
                Hierarchy.data_at t.hier ~now:t.now ~addr:a
                  ~write:(mkind.(jj) = 1)
              in
              assert (lat = mlat.(jj));
              if mkind.(jj) = 1 then begin
                let wi = r_wi.(i) in
                if dec.Decoded.is_fp_mem.(wi) then
                  Store.write_float t.memory a r_sdf.(i)
                else if dec.Decoded.width.(wi) = 1 then
                  Store.write_byte t.memory a r_sdi.(i)
                else if dec.Decoded.width.(wi) = 2 then
                  Store.write_half t.memory a r_sdi.(i)
                else Store.write_word t.memory a (Bits.to_u32 r_sdi.(i))
              end
            end);
           incr mj
         done;
         Array.blit f.ff_ref_act.fv (j * ncomp) act 0 ncomp;
         Account.tick t.acct;
         t.committed <- t.committed + f.ff_ref_com.iv.(j);
         t.now <- t.now + 1;
         match t.sampler with
         | Some s when Sampler.due s ~cycle:t.now ->
             let v =
               sample_values_occ t
                 ~iqc:f.ff_ref_occ.iv.(3 * j)
                 ~robc:f.ff_ref_occ.iv.((3 * j) + 1)
                 ~lsqc:f.ff_ref_occ.iv.((3 * j) + 2)
             in
             Sampler.record s ~cycle:t.now v
         | Some _ | None -> ()
       done;
       (* Fold the period's commits into the architectural image. *)
       for s = 1 to nd do
         let sq = !frontier + s in
         let i = sq land rmask in
         assert (r_seq.(i) = sq);
         let dst = dec.Decoded.dst.(r_wi.(i)) in
         if dst >= 0 then
           if dst >= 32 then carch_f.(dst - 32) <- r_res_f.(i)
           else carch_i.(dst) <- r_res_i.(i)
       done;
       frontier := !frontier + nd;
       for j = 0 to nm - 1 do
         mlast.(j) <- mlast.(j) + stride.(j)
       done;
       incr m
     done
   with Ff_stop -> ());
  if !m > 0 then begin
    (* Relocate the frozen pipeline state by m periods: bump sequence
       numbers, rotate the event wheel, patch semantic payloads from the
       records, restore monotonic counters and the architectural
       registers. *)
    let dtot = !m * nd in
    Rob.iter_oldest_first t.rob (fun _ e ->
        e.Rob.seq <- e.Rob.seq + dtot;
        let i = e.Rob.seq land rmask in
        if r_seq.(i) = e.Rob.seq then begin
          e.Rob.value_i <- r_res_i.(i);
          e.Rob.value_f <- r_res_f.(i);
          e.Rob.taken <- r_taken.(i);
          e.Rob.actual_npc <- r_npc.(i)
        end);
    let slots = Iq.slots t.iq in
    for i = 0 to Iq.count t.iq - 1 do
      let s = slots.(i) in
      s.Iq.seq <- s.Iq.seq + dtot;
      let ri = s.Iq.seq land rmask in
      if r_seq.(ri) = s.Iq.seq then begin
        if s.Iq.src1_tag < 0 then begin
          s.Iq.src1_i <- r_s1i.(ri);
          s.Iq.src1_f <- r_s1f.(ri)
        end;
        if s.Iq.src2_tag < 0 then begin
          s.Iq.src2_i <- r_s2i.(ri);
          s.Iq.src2_f <- r_s2f.(ri)
        end
      end
    done;
    for i = 0 to Lsq.size t.lsq - 1 do
      let le = Lsq.entry t.lsq i in
      if le.Lsq.live then begin
        le.Lsq.seq <- le.Lsq.seq + dtot;
        let ri = le.Lsq.seq land rmask in
        if r_seq.(ri) = le.Lsq.seq then begin
          if le.Lsq.addr_ready then le.Lsq.addr <- r_addr.(ri);
          if le.Lsq.is_store && le.Lsq.data_ready then begin
            le.Lsq.data_i <- r_sdi.(ri);
            le.Lsq.data_f <- r_sdf.(ri)
          end
        end
      end
    done;
    let wrot = (!m * dc) land wheel_mask in
    (if wrot <> 0 then begin
       let rot a =
         let tmp = Array.copy a in
         for sl = 0 to wheel_mask do
           a.((sl + wrot) land wheel_mask) <- tmp.(sl)
         done
       in
       rot t.ev_seq;
       rot t.ev_rob;
       rot t.ev_kind;
       rot t.ev_addr;
       rot t.ev_di;
       rot t.ev_dtag;
       rot t.ev_df;
       rot t.ev_n
     end);
    for sl = 0 to wheel_mask do
      for j = 0 to t.ev_n.(sl) - 1 do
        let sq = t.ev_seq.(sl).(j) + dtot in
        t.ev_seq.(sl).(j) <- sq;
        if t.ev_kind.(sl).(j) = ev_agen then begin
          let ri = sq land rmask in
          if r_seq.(ri) = sq then begin
            t.ev_addr.(sl).(j) <- r_addr.(ri);
            if
              dec.Decoded.kind.(r_wi.(ri)) = Insn.K_store
              && t.ev_dtag.(sl).(j) < 0
            then begin
              t.ev_di.(sl).(j) <- r_sdi.(ri);
              t.ev_df.(sl).(j) <- r_sdf.(ri)
            end
          end
        end
      done
    done;
    Fu.ffwd_rebase t.fu ~old_now:base_now ~new_now:t.now;
    ff_affine_restore t f.ff_aff_prev ~m:!m ~d:f.ff_adiff;
    Array.blit carch_i 0 t.arch_i 0 32;
    Array.blit carch_f 0 t.arch_f 0 32;
    t.n_ffwd_iters <- t.n_ffwd_iters + (!m * !ipp);
    (* A productive loop earns its snapshot budget back. *)
    f.ff_cur_work := 0;
    f.ff_fails <- 0
  end

(* Gate on everything the replay's correctness argument needs, then
   replay. Called at a verified boundary. *)
let ff_try_replay t f ~cycle_limit =
  let nd = f.ff_ref_dsp.ivn / 3 in
  let dc = f.ff_ref_com.ivn in
  if
    nd > 0 && dc > 0
    && Array.length f.ff_adiff > 1
    && f.ff_adiff.(0) = nd (* commits per period = dispatches per period *)
    && f.ff_adiff.(1) = nd (* sequence numbers advance by the same *)
    && Array.length f.ff_mem_stride * 5 = f.ff_ref_mem.ivn
    && t.rp_n = 0
    && Rob.count t.rob > 0
    && Hierarchy.quiescent_at t.hier ~now:t.now
    && t.now + dc <= cycle_limit
  then ff_replay_periods t f ~nd ~dc ~cycle_limit

(* Record the current boundary snapshot in the search ring. *)
let ff_search_record f pred =
  let slot = f.ff_hist_n mod ff_hist_len in
  iv_copy_into f.ff_hist.(slot) f.ff_rigid_cur;
  f.ff_hist_pred.(slot) <- pred;
  f.ff_hist_n <- f.ff_hist_n + 1

(* Smallest distance k at which the current snapshot matches a recorded
   one (0 = no match in the window). *)
let ff_search_find f pred =
  let kmax = min f.ff_hist_n ff_hist_len in
  let rec go k =
    if k > kmax then 0
    else
      let slot = (f.ff_hist_n - k) mod ff_hist_len in
      if
        iv_equal f.ff_rigid_cur f.ff_hist.(slot) && pred = f.ff_hist_pred.(slot)
      then k
      else go (k + 1)
  in
  go 1

let ff_loop_key t =
  (t.reuse.Reuse_state.head lsl 25) lxor t.reuse.Reuse_state.tail

(* Snapshot-work budget per loop before it is written off. Generous
   enough for the search plus several observation restarts, small enough
   that a hopeless loop costs a bounded amount over the whole run. *)
let ff_work_budget = 512

let ff_go_dormant f =
  f.ff_mode <- 3;
  f.ff_cur_work := ff_work_budget + 1

let ff_on_boundary t f ~cycle_limit =
  match f.ff_mode with
  | 0 ->
      let key = ff_loop_key t in
      let cell =
        match Hashtbl.find_opt f.ff_work key with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add f.ff_work key r;
            r
      in
      f.ff_cur_work <- cell;
      if !cell > ff_work_budget then f.ff_mode <- 3
      else begin
        (* First boundary of the episode: seed the period search. *)
        incr cell;
        ff_rigid_vec t f.ff_rigid_cur;
        f.ff_hist_n <- 0;
        ff_search_record f (Predictor.ffwd_version t.pred);
        f.ff_mode <- 4
      end
  | 4 when !(f.ff_cur_work) > ff_work_budget -> ff_go_dormant f
  | 4 -> (
      incr f.ff_cur_work;
      ff_rigid_vec t f.ff_rigid_cur;
      let pred = Predictor.ffwd_version t.pred in
      match ff_search_find f pred with
      | 0 ->
          ff_search_record f pred;
          if f.ff_hist_n > ff_search_budget then ff_go_dormant f
      | k ->
          f.ff_super <- k;
          f.ff_bcount <- 0;
          ff_snapshot_start t f)
  | 1 ->
      f.ff_bcount <- f.ff_bcount + 1;
      if f.ff_bcount >= f.ff_super then begin
        f.ff_bcount <- 0;
        incr f.ff_cur_work;
        if ff_verify_boundary t f then begin
          if f.ff_periods >= f.ff_k + 1 then begin
            ff_try_replay t f ~cycle_limit;
            (* Whether the replay advanced or stopped immediately, the
               machine sits at a super-boundary: restart observation
               from it. *)
            f.ff_bcount <- 0;
            ff_snapshot_start t f
          end
        end
        else begin
          f.ff_fails <- f.ff_fails + 1;
          if f.ff_fails >= ff_max_fails then ff_go_dormant f
          else begin
            (* Restart the period search, seeded with this boundary. *)
            f.ff_hist_n <- 0;
            ff_search_record f (Predictor.ffwd_version t.pred);
            f.ff_mode <- 4
          end
        end
      end
  | _ -> ()

let run ?(cycle_limit = 200_000_000) t =
  let skip = t.cfg.Config.skip_ahead in
  let rec go () =
    if t.halted then Halted
    else if t.now >= cycle_limit then Cycle_limit
    else begin
      if skip && quiescent t then skip_to t ~target:(next_wake t ~cycle_limit);
      if t.now >= cycle_limit then Cycle_limit
      else begin
        step_cycle t;
        (match t.ff with
        | Some f when f.ff_boundary ->
            f.ff_boundary <- false;
            ff_on_boundary t f ~cycle_limit
        | Some _ | None -> ());
        go ()
      end
    end
  in
  go ()

let halted t = t.halted
let cycles t = t.now
let committed t = t.committed
let ipc t = if t.now = 0 then 0. else float_of_int t.committed /. float_of_int t.now
let gated_cycles t = t.gated_cycles
let occupancy t = (Iq.count t.iq, Rob.count t.rob, Lsq.count t.lsq)
let decode_cache_hits t = t.dc_hits
let decode_cache_installs t = t.dc_installs

let arch_state t =
  {
    Machine.final_pc = t.halt_pc + 4;
    instructions = t.committed;
    int_regs = Array.copy t.arch_i;
    fp_regs = Array.copy t.arch_f;
    memory =
      List.rev (Store.fold_nonzero t.memory ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc));
  }

let loop_decisions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.loop_log []
  |> List.sort (fun a b -> compare a.ld_tail b.ld_tail)

let account t = t.acct
let tracer t = t.tracer
let sampler t = t.sampler
let hierarchy t = t.hier
let reuse_state t = t.reuse
let nblt t = t.nblt
let loopcache t = t.lc
let config t = t.cfg

type stats = {
  cycles : int;
  committed : int;
  ipc : float;
  gated_cycles : int;
  gated_fraction : float;
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  reuse_dispatches : int;
  reuse_committed : int;
  buffer_attempts : int;
  revokes : int;
  promotions : int;
  reuse_exits : int;
  avg_power : float;
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  skipped_cycles : int;
  ffwd_iterations : int;
}

let stats t =
  {
    cycles = t.now;
    committed = t.committed;
    ipc = ipc t;
    gated_cycles = t.gated_cycles;
    gated_fraction = (if t.now = 0 then 0. else float_of_int t.gated_cycles /. float_of_int t.now);
    branches = t.n_branches;
    mispredicts = t.n_mispredicts;
    loads = t.n_loads;
    stores = t.n_stores;
    reuse_dispatches = t.n_reuse_dispatch;
    reuse_committed = t.n_reuse_commit;
    buffer_attempts = t.reuse.Reuse_state.n_buffer_attempts;
    revokes = t.reuse.Reuse_state.n_revokes;
    promotions = t.reuse.Reuse_state.n_promotions;
    reuse_exits = t.reuse.Reuse_state.n_reuse_exits;
    avg_power = Account.avg_power t.acct;
    icache_accesses = Cache.accesses (Hierarchy.l1i t.hier);
    icache_misses = Cache.misses (Hierarchy.l1i t.hier);
    dcache_accesses = Cache.accesses (Hierarchy.l1d t.hier);
    dcache_misses = Cache.misses (Hierarchy.l1d t.hier);
    skipped_cycles = t.n_skipped;
    ffwd_iterations = t.n_ffwd_iters;
  }
