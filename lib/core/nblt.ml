open Riq_obs

type t = {
  tracer : Tracer.t;
  entries : int array;
  valid : bool array;
  size : int;
  mutable next : int; (* FIFO insertion cursor *)
  mutable n_lookup : int;
  mutable n_insert : int;
}

let create ?tracer size =
  if size < 0 then invalid_arg "Nblt.create";
  {
    tracer = (match tracer with Some tr -> tr | None -> Tracer.null ());
    entries = Array.make (max size 1) 0;
    valid = Array.make (max size 1) false;
    size;
    next = 0;
    n_lookup = 0;
    n_insert = 0;
  }

let capacity t = t.size

let mem t pc =
  t.n_lookup <- t.n_lookup + 1;
  let found = ref false in
  for i = 0 to t.size - 1 do
    if t.valid.(i) && t.entries.(i) = pc then found := true
  done;
  !found

let present t pc =
  let found = ref false in
  for i = 0 to t.size - 1 do
    if t.valid.(i) && t.entries.(i) = pc then found := true
  done;
  !found

let insert ?(now = 0) t pc =
  if t.size > 0 && not (present t pc) then begin
    t.n_insert <- t.n_insert + 1;
    t.entries.(t.next) <- pc;
    t.valid.(t.next) <- true;
    t.next <- (t.next + 1) mod t.size;
    if Tracer.enabled t.tracer then
      Tracer.instant t.tracer ~now
        ~args:[ ("tail", Tracer.Int pc) ]
        ~cat:"nblt" "nblt-register"
  end

let lookups t = t.n_lookup
let insertions t = t.n_insert
