open Riq_isa

type state = Idle | Fill | Active

type t = {
  cap : int;
  mutable st : state;
  mutable head : int;
  mutable tail : int;
  mutable filled : int;
  mutable n_fill : int;
  mutable n_supply : int;
  mutable n_activate : int;
}

let create cap =
  if cap < 4 then invalid_arg "Loopcache.create: capacity must be >= 4";
  { cap; st = Idle; head = 0; tail = 0; filled = 0; n_fill = 0; n_supply = 0; n_activate = 0 }

let capacity t = t.cap
let state t = t.st

let in_loop t pc = pc >= t.head && pc <= t.tail

let serving t ~pc = t.st = Active && in_loop t pc

(* A short backward branch: conditional branch or direct jump whose taken
   target is behind it by at most the cache capacity. *)
(* Decoded form: [-1] = not a short backward branch. *)
let sbb_target_decoded t ~pc ~kind ~static_target =
  match kind with
  | Insn.K_branch | K_jump ->
      if
        static_target >= 0
        && static_target <= pc
        && ((pc - static_target) / 4) + 1 <= t.cap
      then static_target
      else -1
  | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt -> -1

let sbb_target t ~pc insn =
  let static_target =
    match Insn.ctrl_target insn ~pc with Some tgt -> tgt | None -> -1
  in
  match sbb_target_decoded t ~pc ~kind:(Insn.kind insn) ~static_target with
  | -1 -> None
  | tgt -> Some tgt

let to_idle t =
  t.st <- Idle;
  t.filled <- 0

let on_fetch_decoded t ~pc ~kind ~static_target ~pred_npc =
  match t.st with
  | Idle ->
      let target = sbb_target_decoded t ~pc ~kind ~static_target in
      if target >= 0 && pred_npc = target then begin
        t.st <- Fill;
        t.head <- target;
        t.tail <- pc;
        t.filled <- 0
      end
  | Fill ->
      if in_loop t pc then begin
        t.filled <- t.filled + 1;
        t.n_fill <- t.n_fill + 1;
        if pc = t.tail then
          if pred_npc = t.head && t.filled >= ((t.tail - t.head) / 4) + 1 then begin
            t.st <- Active;
            t.n_activate <- t.n_activate + 1
          end
          else to_idle t
      end
      else to_idle t
  | Active ->
      if in_loop t pc then begin
        t.n_supply <- t.n_supply + 1;
        if pc = t.tail && pred_npc <> t.head then to_idle t
      end
      else to_idle t

let on_fetch t ~pc ~insn ~pred_npc =
  match t.st with
  | Idle -> (
      match sbb_target t ~pc insn with
      | Some target when pred_npc = target ->
          t.st <- Fill;
          t.head <- target;
          t.tail <- pc;
          t.filled <- 0
      | Some _ | None -> ())
  | Fill ->
      if in_loop t pc then begin
        t.filled <- t.filled + 1;
        t.n_fill <- t.n_fill + 1;
        if pc = t.tail then
          if pred_npc = t.head && t.filled >= ((t.tail - t.head) / 4) + 1 then begin
            t.st <- Active;
            t.n_activate <- t.n_activate + 1
          end
          else to_idle t
      end
      else to_idle t (* left the loop while filling *)
  | Active ->
      if in_loop t pc then begin
        t.n_supply <- t.n_supply + 1;
        if pc = t.tail && pred_npc <> t.head then to_idle t
      end
      else to_idle t

let reset t = to_idle t
let fills t = t.n_fill
let supplies t = t.n_supply
let activations t = t.n_activate
