open Riq_util
open Riq_isa
open Riq_asm
open Riq_interp

(* Struct-of-arrays side tables for one program, built once at
   [Processor.create]: every per-instruction property the cycle loop
   needs, pre-derived from the packed words so the hot path is pure
   [int array]/flag-array indexing — no constructor matches, no option
   or tuple allocation, no per-cycle re-derivation.

   Indexing is by word index [wi = (pc - text_base) / 4]; [valid] tells
   whether a pc maps into the text segment at all (the flat-array
   replacement for [Program.insn_at]).

   Immediates are pre-transformed to what the execute stage consumes:
   ALU immediates go through [Semantics.alui_imm] (sign/zero extension
   per opcode), [Lui]'s shift is pre-applied, branch and direct-jump
   targets are absolute byte addresses in [target]. *)

(* Load extension codes for [ext]. *)
let ext_word = 0
let ext_s8 = 1
let ext_u8 = 2
let ext_s16 = 3
let ext_u16 = 4

type t = {
  n : int;
  text_base : int;
  insns : Insn.t array;  (** original constructors; rare seams only *)
  words : Packed.word array;
  exe : int array;  (** [Insn.code] per word *)
  kind : Insn.kind array;
  fu : Insn.fu_class array;
  lat : int array;
  pipe : bool array;
  is_ctrl : bool array;
  is_mem : bool array;
  is_store : bool array;
  is_fp_mem : bool array;
  width : int array;  (** access bytes, 0 for non-memory *)
  amask : int array;  (** width - 1, for alignment checks *)
  ext : int array;  (** load extension code *)
  r1 : int array;  (** first operand register, -1 = none (r0 filtered) *)
  r2 : int array;  (** second operand register (store data), -1 = none *)
  dst : int array;  (** destination register, -1 = none *)
  imm : int array;  (** pre-transformed immediate / shift amount / offset *)
  target : int array;  (** absolute static taken target, -1 = unknown *)
}

let wi_of_pc t pc = (pc - t.text_base) asr 2
let pc_of_wi t wi = t.text_base + (wi lsl 2)
let valid t pc = pc land 3 = 0 && pc >= t.text_base && wi_of_pc t pc < t.n

(* Operand registers exactly as the seed core's [operand_regs]: integer
   registers are filtered through "r0 is never a dependence", FP
   registers are not; for stores r1 is the base and r2 the data. *)
let operand_regs insn =
  let z r = if r = Reg.zero then -1 else r in
  match insn with
  | Insn.Alu (_, _, rs, rt) | Mul (_, rs, rt) | Div (_, rs, rt) -> (z rs, z rt)
  | Alui (_, _, rs, _) -> (z rs, -1)
  | Shift (_, _, rt, _) -> (z rt, -1)
  | Shiftv (_, _, rt, rs) -> (z rt, z rs)
  | Lui _ -> (-1, -1)
  | Fpu (op, _, fs, ft) -> if Insn.fpu_unary op then (fs, -1) else (fs, ft)
  | Fcmp (_, _, fs, ft) -> (fs, ft)
  | Cvtsw (_, rs) -> (z rs, -1)
  | Cvtws (_, fs) -> (fs, -1)
  | Lw (_, base, _) | Lb (_, base, _) | Lbu (_, base, _) | Lh (_, base, _)
  | Lhu (_, base, _) | Lwf (_, base, _) ->
      (z base, -1)
  | Sw (rt, base, _) | Sb (rt, base, _) | Sh (rt, base, _) -> (z base, z rt)
  | Swf (ft, base, _) -> (z base, ft)
  | Br (cond, rs, rt, _) -> (
      match cond with
      | Beq | Bne -> (z rs, z rt)
      | Blez | Bgtz | Bltz | Bgez -> (z rs, -1))
  | Jr rs | Jalr (_, rs) -> (z rs, -1)
  | J _ | Jal _ | Nop | Halt -> (-1, -1)

let exec_imm insn =
  match insn with
  | Insn.Alui (op, _, _, imm) -> Semantics.alui_imm op imm
  | Shift (_, _, _, sh) -> sh
  | Lui (_, imm) -> Bits.of_i32 (imm lsl 16)
  | Lw (_, _, off) | Lb (_, _, off) | Lbu (_, _, off) | Lh (_, _, off)
  | Lhu (_, _, off) | Lwf (_, _, off) | Sw (_, _, off) | Sb (_, _, off)
  | Sh (_, _, off) | Swf (_, _, off) ->
      off
  | _ -> 0

let ext_of insn =
  match insn with
  | Insn.Lb _ -> ext_s8
  | Lbu _ -> ext_u8
  | Lh _ -> ext_s16
  | Lhu _ -> ext_u16
  | _ -> ext_word

let of_program (p : Program.t) =
  let code = p.Program.code in
  let n = Array.length code in
  let text_base = p.Program.text_base in
  let t =
    {
      n;
      text_base;
      insns = Array.copy code;
      words = Packed.of_code_array code;
      exe = Array.make n 0;
      kind = Array.make n Insn.K_nop;
      fu = Array.make n Insn.FU_none;
      lat = Array.make n 1;
      pipe = Array.make n true;
      is_ctrl = Array.make n false;
      is_mem = Array.make n false;
      is_store = Array.make n false;
      is_fp_mem = Array.make n false;
      width = Array.make n 0;
      amask = Array.make n 0;
      ext = Array.make n 0;
      r1 = Array.make n (-1);
      r2 = Array.make n (-1);
      dst = Array.make n (-1);
      imm = Array.make n 0;
      target = Array.make n (-1);
    }
  in
  for wi = 0 to n - 1 do
    let insn = code.(wi) in
    let pc = pc_of_wi t wi in
    let c = Insn.code insn in
    t.exe.(wi) <- c;
    t.kind.(wi) <- Insn.kind_table.(c);
    t.fu.(wi) <- Insn.fu_table.(c);
    t.lat.(wi) <- Insn.latency_table.(c);
    t.pipe.(wi) <- Insn.pipelined_table.(c);
    (match t.kind.(wi) with
    | Insn.K_branch | K_jump | K_call | K_return | K_ijump -> t.is_ctrl.(wi) <- true
    | K_int | K_fp | K_load | K_store | K_nop | K_halt -> ());
    (match t.kind.(wi) with
    | Insn.K_load | K_store ->
        t.is_mem.(wi) <- true;
        t.is_store.(wi) <- t.kind.(wi) = Insn.K_store;
        t.is_fp_mem.(wi) <- (match insn with Insn.Lwf _ | Swf _ -> true | _ -> false);
        t.width.(wi) <- Insn.access_bytes_table.(c);
        t.amask.(wi) <- t.width.(wi) - 1;
        t.ext.(wi) <- ext_of insn
    | _ -> ());
    let r1, r2 = operand_regs insn in
    t.r1.(wi) <- r1;
    t.r2.(wi) <- r2;
    t.dst.(wi) <- (match Insn.dest insn with Some d -> d | None -> -1);
    t.imm.(wi) <- exec_imm insn;
    t.target.(wi) <-
      (match Insn.ctrl_target insn ~pc with Some tgt -> tgt | None -> -1)
  done;
  t

(* ------------------------------------------------------------------ *)
(* Dispatch descriptors: the decode-cache payload.                     *)
(* ------------------------------------------------------------------ *)

(* Everything rename/dispatch needs about one instruction, packed into a
   single int so a decode-cache hit replaces ~10 side-table loads with
   one load and a few shifts:

     bits  0..6   r1 + 1
     bits  7..13  r2 + 1
     bits 14..20  dst + 1
     bits 21..25  latency
     bits 26..28  fu class
     bit  29     pipelined
     bit  30     is_mem
     bit  31     is_store
     bit  32     is_fp_mem
     bit  33     is_ctrl
     bits 34..36  load extension code
     bits 37..39  access width *)

let fu_to_int = function
  | Insn.FU_none -> 0
  | FU_ialu -> 1
  | FU_imult -> 2
  | FU_fpalu -> 3
  | FU_fpmult -> 4
  | FU_mem -> 5

let fu_of_int = [| Insn.FU_none; FU_ialu; FU_imult; FU_fpalu; FU_fpmult; FU_mem |]

let descriptor t wi =
  (t.r1.(wi) + 1)
  lor ((t.r2.(wi) + 1) lsl 7)
  lor ((t.dst.(wi) + 1) lsl 14)
  lor (t.lat.(wi) lsl 21)
  lor (fu_to_int t.fu.(wi) lsl 26)
  lor ((if t.pipe.(wi) then 1 else 0) lsl 29)
  lor ((if t.is_mem.(wi) then 1 else 0) lsl 30)
  lor ((if t.is_store.(wi) then 1 else 0) lsl 31)
  lor ((if t.is_fp_mem.(wi) then 1 else 0) lsl 32)
  lor ((if t.is_ctrl.(wi) then 1 else 0) lsl 33)
  lor (t.ext.(wi) lsl 34)
  lor (t.width.(wi) lsl 37)

let d_r1 d = (d land 0x7F) - 1
let d_r2 d = ((d lsr 7) land 0x7F) - 1
let d_dst d = ((d lsr 14) land 0x7F) - 1
let d_lat d = (d lsr 21) land 0x1F
let d_fu d = fu_of_int.((d lsr 26) land 0x7)
let d_pipe d = (d lsr 29) land 1 <> 0
let d_is_mem d = (d lsr 30) land 1 <> 0
let d_is_store d = (d lsr 31) land 1 <> 0
let d_is_fp_mem d = (d lsr 32) land 1 <> 0
let d_is_ctrl d = (d lsr 33) land 1 <> 0
let d_ext d = (d lsr 34) land 0x7
let d_width d = (d lsr 37) land 0x7
