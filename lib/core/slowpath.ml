open Riq_util
open Riq_isa
open Riq_asm
open Riq_mem
open Riq_branch
open Riq_power
open Riq_ooo
open Riq_interp
open Riq_obs

(* Reference pipeline: a literal copy of the pre-packed-core [Processor]
   cycle loop, kept as the differential oracle for the flat-array fast
   path. It re-derives every per-instruction property with [Insn.t]
   pattern matches, uses [Queue.t] front-end latches and a [Hashtbl]
   event table — exactly the structures the fast path replaced — and
   carries its own private copies of the [Insn.t]-holding issue-queue and
   ROB (the shared [Riq_ooo] versions now store packed word indices).

   Every modeled access (cache, predictor, power charge) happens in the
   same order as the seed core, so arch state, every stat counter and
   every power float must be bit-identical to [Processor]'s. The
   differential suite (test/test_fastpath.ml) asserts exactly that over
   the fixed fuzz corpus and the eight kernels.

   No tracer/sampler seams: the oracle always runs with the null tracer
   (observability hooks are the one part of the seed core not copied). *)

module P = Processor

(* ------------------------------------------------------------------ *)
(* Private issue queue carrying Insn.t (copy of the pre-packed Iq).     *)
(* ------------------------------------------------------------------ *)

module SIq = struct
  type slot = {
    mutable seq : int;
    mutable rob_idx : int;
    mutable pc : int;
    mutable insn : Insn.t;
    mutable fu : Insn.fu_class;
    mutable src1_tag : int;
    mutable src1_i : int;
    mutable src1_f : float;
    mutable src2_tag : int;
    mutable src2_i : int;
    mutable src2_f : float;
    mutable issued : bool;
    mutable reusable : bool;
    mutable dead : bool;
    mutable pred_npc : int;
  }

  type t = { arr : slot array; size : int; mutable count : int; mutable rptr : int }

  let fresh_slot () =
    {
      seq = -1;
      rob_idx = -1;
      pc = 0;
      insn = Insn.Nop;
      fu = Insn.FU_none;
      src1_tag = -1;
      src1_i = 0;
      src1_f = 0.;
      src2_tag = -1;
      src2_i = 0;
      src2_f = 0.;
      issued = false;
      reusable = false;
      dead = false;
      pred_npc = 0;
    }

  let create size =
    if size < 1 then invalid_arg "SIq.create";
    { arr = Array.init size (fun _ -> fresh_slot ()); size; count = 0; rptr = 0 }

  let count t = t.count
  let free t = t.size - t.count
  let is_full t = t.count = t.size
  let slots t = t.arr

  let dispatch t =
    if is_full t then failwith "SIq.dispatch: full";
    let s = t.arr.(t.count) in
    t.count <- t.count + 1;
    s.dead <- false;
    s.issued <- false;
    s.reusable <- false;
    s

  let wakeup t ~tag ~value_i ~value_f =
    for i = 0 to t.count - 1 do
      let s = t.arr.(i) in
      if (not s.issued) && not s.dead then begin
        if s.src1_tag = tag then begin
          s.src1_tag <- -1;
          s.src1_i <- value_i;
          s.src1_f <- value_f
        end;
        if s.src2_tag = tag then begin
          s.src2_tag <- -1;
          s.src2_i <- value_i;
          s.src2_f <- value_f
        end
      end
    done

  let compact t =
    let orig_rptr = t.rptr in
    let dead_before = ref 0 in
    let w = ref 0 in
    let removed = ref 0 in
    for r = 0 to t.count - 1 do
      let s = t.arr.(r) in
      if s.dead then begin
        incr removed;
        if r < orig_rptr then incr dead_before
      end
      else begin
        if !w <> r then begin
          let tmp = t.arr.(!w) in
          t.arr.(!w) <- s;
          t.arr.(r) <- tmp
        end;
        incr w
      end
    done;
    t.count <- !w;
    t.rptr <- orig_rptr - !dead_before;
    if t.rptr > t.count || t.rptr < 0 then t.rptr <- 0;
    !removed

  let reuse_ptr t = t.rptr
  let set_reuse_ptr t i = t.rptr <- i

  let first_reusable t =
    let rec go i = if i >= t.count then -1 else if t.arr.(i).reusable then i else go (i + 1) in
    go 0

  let clear_classification t =
    for i = 0 to t.count - 1 do
      let s = t.arr.(i) in
      if s.reusable then begin
        s.reusable <- false;
        if s.issued then s.dead <- true
      end
    done

  let clear t =
    t.count <- 0;
    t.rptr <- 0

  let squash_after t ~seq =
    for i = 0 to t.count - 1 do
      let s = t.arr.(i) in
      if (not s.dead) && s.seq > seq then begin
        if s.reusable then begin
          if not s.issued then s.issued <- true
        end
        else s.dead <- true
      end
    done
end

(* ------------------------------------------------------------------ *)
(* Private ROB carrying Insn.t (copy of the pre-packed Rob).            *)
(* ------------------------------------------------------------------ *)

module SRob = struct
  type entry = {
    mutable seq : int;
    mutable pc : int;
    mutable insn : Insn.t;
    mutable completed : bool;
    mutable value_i : int;
    mutable value_f : float;
    mutable dest : int;
    mutable is_store : bool;
    mutable lsq_idx : int;
    mutable is_ctrl : bool;
    mutable pred_npc : int;
    mutable actual_npc : int;
    mutable taken : bool;
    mutable ras_ck : int;
    mutable from_reuse : bool;
  }

  type t = {
    entries : entry array;
    size : int;
    mutable head : int;
    mutable tail : int;
    mutable count : int;
  }

  let fresh_entry () =
    {
      seq = -1;
      pc = 0;
      insn = Insn.Nop;
      completed = false;
      value_i = 0;
      value_f = 0.;
      dest = -1;
      is_store = false;
      lsq_idx = -1;
      is_ctrl = false;
      pred_npc = 0;
      actual_npc = 0;
      taken = false;
      ras_ck = 0;
      from_reuse = false;
    }

  let create size =
    if size < 1 then invalid_arg "SRob.create";
    { entries = Array.init size (fun _ -> fresh_entry ()); size; head = 0; tail = 0; count = 0 }

  let count t = t.count
  let is_full t = t.count = t.size
  let is_empty t = t.count = 0

  let alloc t =
    if is_full t then failwith "SRob.alloc: full";
    let idx = t.tail in
    t.tail <- (t.tail + 1) mod t.size;
    t.count <- t.count + 1;
    idx

  let entry t idx = t.entries.(idx)
  let head t = t.head
  let head_entry t = if is_empty t then None else Some t.entries.(t.head)

  let pop_head t =
    if is_empty t then failwith "SRob.pop_head: empty";
    t.entries.(t.head).seq <- -1;
    t.head <- (t.head + 1) mod t.size;
    t.count <- t.count - 1

  let squash_after t ~seq ~f =
    let continue_ = ref true in
    while !continue_ && t.count > 0 do
      let last = (t.tail + t.size - 1) mod t.size in
      let e = t.entries.(last) in
      if e.seq > seq then begin
        f last e;
        e.seq <- -1;
        t.tail <- last;
        t.count <- t.count - 1
      end
      else continue_ := false
    done

  let iter_oldest_first t f =
    for i = 0 to t.count - 1 do
      let idx = (t.head + i) mod t.size in
      f idx t.entries.(idx)
    done
end

(* ------------------------------------------------------------------ *)
(* The pipeline proper — a line-for-line copy of the seed core.        *)
(* ------------------------------------------------------------------ *)

type fetched = {
  f_pc : int;
  f_insn : Insn.t;
  f_pred_npc : int;
  f_ras_ck : Predictor.checkpoint;
  mutable f_buffered : bool;
}

type ev_kind = Complete | Agen

type ev = {
  ev_seq : int;
  ev_rob : int;
  ev_kind : ev_kind;
  ev_addr : int;
  ev_di : int;
  ev_df : float;
  ev_dtag : int;
}

type replay = { rp_seq : int; rp_rob : int; rp_addr : int }

type t = {
  cfg : Config.t;
  program : Program.t;
  memory : Store.t;
  hier : Hierarchy.t;
  pred : Predictor.t;
  rob : SRob.t;
  iq : SIq.t;
  lsq : Lsq.t;
  fu : Fu.t;
  acct : Account.t;
  reuse : Reuse_state.t;
  nblt : Nblt.t;
  lc : Loopcache.t option;
  arch_i : int array;
  arch_f : float array;
  map : int array;
  mutable fetch_pc : int;
  mutable fetch_stall_until : int;
  fetch_q : fetched Queue.t;
  decode_latch : fetched Queue.t;
  mutable now : int;
  mutable seq_ctr : int;
  events : (int, ev list ref) Hashtbl.t;
  mutable replays : replay list;
  mutable halted : bool;
  mutable halt_pc : int;
  mutable committed : int;
  mutable gated_cycles : int;
  mutable n_branches : int;
  mutable n_mispredicts : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_reuse_dispatch : int;
  mutable n_reuse_commit : int;
  loop_log : (int, P.loop_decision) Hashtbl.t;
  mutable cur_reuse_tail : int;
  tracer : Tracer.t;
}

type stop = Halted | Cycle_limit

let create cfg program =
  Config.validate cfg;
  let tracer = Tracer.null () in
  let memory = Store.create () in
  Program.load program ~write_word:(Store.write_word memory);
  let arch_i = Array.make 32 0 in
  arch_i.(Reg.sp) <- Riq_interp.Machine.default_sp;
  {
    cfg;
    program;
    memory;
    hier = Hierarchy.create cfg.Config.mem;
    pred = Predictor.create cfg.Config.bpred;
    rob = SRob.create cfg.Config.rob_entries;
    iq = SIq.create cfg.Config.iq_entries;
    lsq = Lsq.create cfg.Config.lsq_entries;
    fu =
      Fu.create ~n_ialu:cfg.Config.n_ialu ~n_imult:cfg.Config.n_imult
        ~n_fpalu:cfg.Config.n_fpalu ~n_fpmult:cfg.Config.n_fpmult
        ~n_memport:cfg.Config.n_memport;
    acct = Account.create (Model.create (Config.power_geometry cfg));
    reuse = Reuse_state.create ~tracer ();
    nblt = Nblt.create ~tracer cfg.Config.nblt_entries;
    lc =
      (if cfg.Config.loop_cache_entries > 0 then
         Some (Loopcache.create cfg.Config.loop_cache_entries)
       else None);
    arch_i;
    arch_f = Array.make 32 0.;
    map = Array.make Reg.count (-1);
    fetch_pc = program.Program.entry;
    fetch_stall_until = 0;
    fetch_q = Queue.create ();
    decode_latch = Queue.create ();
    now = 0;
    seq_ctr = 0;
    events = Hashtbl.create 64;
    replays = [];
    halted = false;
    halt_pc = 0;
    committed = 0;
    gated_cycles = 0;
    n_branches = 0;
    n_mispredicts = 0;
    n_loads = 0;
    n_stores = 0;
    n_reuse_dispatch = 0;
    n_reuse_commit = 0;
    loop_log = Hashtbl.create 16;
    cur_reuse_tail = -1;
    tracer;
  }

let loop_record t ~head ~tail =
  match Hashtbl.find_opt t.loop_log tail with
  | Some r -> r
  | None ->
      let r =
        {
          P.ld_head = head;
          ld_tail = tail;
          ld_span = ((tail - head) / 4) + 1;
          ld_detections = 0;
          ld_nblt_filtered = 0;
          ld_attempts = 0;
          ld_revokes = 0;
          ld_rv_inner = 0;
          ld_rv_left = 0;
          ld_rv_overflow = 0;
          ld_rv_mispredict = 0;
          ld_nblt_registered = 0;
          ld_promotions = 0;
          ld_reuse_committed = 0;
        }
      in
      Hashtbl.replace t.loop_log tail r;
      r

let charge t c n = Account.add t.acct c n
let charge1 t c = Account.add t.acct c 1.

let schedule t ~cycle ev =
  match Hashtbl.find_opt t.events cycle with
  | Some l -> l := ev :: !l
  | None -> Hashtbl.replace t.events cycle (ref [ ev ])

let next_seq t =
  t.seq_ctr <- t.seq_ctr + 1;
  t.seq_ctr

let fetch_latency t addr =
  let l1_before = Cache.accesses (Hierarchy.l1i t.hier) in
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.fetch t.hier ~now:t.now ~addr () in
  (match Hierarchy.l0i t.hier with
  | Some _ -> charge1 t Component.L0cache
  | None -> ());
  let d1 = Cache.accesses (Hierarchy.l1i t.hier) - l1_before in
  if d1 > 0 then charge t Component.Icache (float_of_int d1);
  charge1 t Component.Itlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

let data_latency t ~addr ~write =
  let l2_before = Cache.accesses (Hierarchy.l2 t.hier) in
  let lat = Hierarchy.data t.hier ~now:t.now ~addr ~write () in
  charge1 t Component.Dcache;
  charge1 t Component.Dtlb;
  let dl2 = Cache.accesses (Hierarchy.l2 t.hier) - l2_before in
  if dl2 > 0 then charge t Component.L2 (float_of_int dl2);
  lat

let operand_regs insn =
  let z r = if r = Reg.zero then -1 else r in
  match insn with
  | Insn.Alu (_, _, rs, rt) | Mul (_, rs, rt) | Div (_, rs, rt) -> (z rs, z rt)
  | Alui (_, _, rs, _) -> (z rs, -1)
  | Shift (_, _, rt, _) -> (z rt, -1)
  | Shiftv (_, _, rt, rs) -> (z rt, z rs)
  | Lui _ -> (-1, -1)
  | Fpu (op, _, fs, ft) -> if Insn.fpu_unary op then (fs, -1) else (fs, ft)
  | Fcmp (_, _, fs, ft) -> (fs, ft)
  | Cvtsw (_, rs) -> (z rs, -1)
  | Cvtws (_, fs) -> (fs, -1)
  | Lw (_, base, _) | Lb (_, base, _) | Lbu (_, base, _) | Lh (_, base, _)
  | Lhu (_, base, _) | Lwf (_, base, _) ->
      (z base, -1)
  | Sw (rt, base, _) | Sb (rt, base, _) | Sh (rt, base, _) -> (z base, z rt)
  | Swf (ft, base, _) -> (z base, ft)
  | Br (cond, rs, rt, _) -> (
      match cond with
      | Beq | Bne -> (z rs, z rt)
      | Blez | Bgtz | Bltz | Bgez -> (z rs, -1))
  | Jr rs | Jalr (_, rs) -> (z rs, -1)
  | J _ | Jal _ | Nop | Halt -> (-1, -1)

let read_operand t r =
  if r < 0 then (-1, 0, 0.)
  else begin
    charge1 t Component.Regfile;
    match t.map.(r) with
    | -1 ->
        if Reg.is_fp r then (-1, 0, t.arch_f.(Reg.index r))
        else (-1, t.arch_i.(Reg.index r), 0.)
    | idx ->
        let e = SRob.entry t.rob idx in
        if e.SRob.completed then (-1, e.SRob.value_i, e.SRob.value_f) else (idx, 0, 0.)
  end

let compute insn ~pc ~s1i ~s1f ~s2i ~s2f =
  let next = pc + 4 in
  match insn with
  | Insn.Alu (op, _, _, _) -> (Semantics.alu op s1i s2i, 0., false, next)
  | Alui (op, _, _, imm) -> (Semantics.alu op s1i (Semantics.alui_imm op imm), 0., false, next)
  | Shift (op, _, _, sh) -> (Semantics.shift op s1i sh, 0., false, next)
  | Shiftv (op, _, _, _) -> (Semantics.shift op s1i s2i, 0., false, next)
  | Lui (_, imm) -> (Bits.of_i32 (imm lsl 16), 0., false, next)
  | Mul (_, _, _) -> (Semantics.mul s1i s2i, 0., false, next)
  | Div (_, _, _) -> (Semantics.div s1i s2i, 0., false, next)
  | Fpu (op, _, _, _) -> (0, Semantics.fpu op s1f s2f, false, next)
  | Fcmp (op, _, _, _) -> (Semantics.fcmp op s1f s2f, 0., false, next)
  | Cvtsw (_, _) -> (0, Semantics.cvt_s_w s1i, false, next)
  | Cvtws (_, _) -> (Semantics.cvt_w_s s1f, 0., false, next)
  | Br (cond, _, _, off) ->
      let taken = Semantics.branch_taken cond s1i s2i in
      (0, 0., taken, if taken then pc + 4 + (4 * off) else next)
  | J tgt -> (0, 0., true, 4 * tgt)
  | Jal tgt -> (next, 0., true, 4 * tgt)
  | Jr _ -> (0, 0., true, s1i)
  | Jalr (_, _) -> (next, 0., true, s1i)
  | Lw _ | Lb _ | Lbu _ | Lh _ | Lhu _ | Sw _ | Sb _ | Sh _ | Lwf _ | Swf _ | Nop | Halt ->
      (0, 0., false, next)

let effective_addr insn ~base =
  match insn with
  | Insn.Lw (_, _, off) | Lb (_, _, off) | Lbu (_, _, off) | Lh (_, _, off)
  | Lhu (_, _, off) | Sw (_, _, off) | Sb (_, _, off) | Sh (_, _, off)
  | Lwf (_, _, off) | Swf (_, _, off) ->
      Bits.add32 base off
  | Alu _ | Alui _ | Shift _ | Shiftv _ | Lui _ | Mul _ | Div _ | Fpu _ | Fcmp _
  | Cvtsw _ | Cvtws _ | Br _ | J _ | Jal _ | Jr _ | Jalr _ | Nop | Halt ->
      invalid_arg "Slowpath.effective_addr: not a memory operation"

let is_fp_mem insn = match insn with Insn.Lwf _ | Swf _ -> true | _ -> false

let valid_addr insn addr =
  addr >= 0 && addr land (Insn.access_bytes insn - 1) = 0

let rebuild_map t =
  Array.fill t.map 0 (Array.length t.map) (-1);
  SRob.iter_oldest_first t.rob (fun idx e ->
      if e.SRob.dest >= 0 then t.map.(e.SRob.dest) <- idx)

let flush_front_end t =
  Queue.clear t.fetch_q;
  Queue.clear t.decode_latch

let revoke_buffering t ~register_nblt ~cause =
  let r =
    loop_record t ~head:t.reuse.Reuse_state.head ~tail:t.reuse.Reuse_state.tail
  in
  r.P.ld_revokes <- r.P.ld_revokes + 1;
  (match cause with
  | P.Rv_inner_loop -> r.P.ld_rv_inner <- r.P.ld_rv_inner + 1
  | P.Rv_left_loop -> r.P.ld_rv_left <- r.P.ld_rv_left + 1
  | P.Rv_overflow -> r.P.ld_rv_overflow <- r.P.ld_rv_overflow + 1
  | P.Rv_mispredict -> r.P.ld_rv_mispredict <- r.P.ld_rv_mispredict + 1);
  if register_nblt then begin
    r.P.ld_nblt_registered <- r.P.ld_nblt_registered + 1;
    charge1 t Component.Nblt;
    Nblt.insert ~now:t.now t.nblt t.reuse.Reuse_state.tail
  end;
  SIq.clear_classification t.iq;
  Reuse_state.revoke ~now:t.now t.reuse

let exit_reuse t =
  SIq.clear_classification t.iq;
  SIq.set_reuse_ptr t.iq 0;
  Reuse_state.exit_reuse ~now:t.now t.reuse

let recover t (e : SRob.entry) =
  let seq = e.SRob.seq in
  SRob.squash_after t.rob ~seq ~f:(fun _ _ -> ());
  Lsq.squash_after t.lsq ~seq;
  SIq.squash_after t.iq ~seq;
  rebuild_map t;
  Predictor.restore t.pred e.SRob.ras_ck;
  flush_front_end t;
  t.fetch_pc <- e.SRob.actual_npc;
  t.fetch_stall_until <- t.now + 1;
  t.replays <- List.filter (fun r -> r.rp_seq <= seq) t.replays;
  Option.iter Loopcache.reset t.lc;
  match t.reuse.Reuse_state.state with
  | Reuse_state.Normal -> ()
  | Reuse_state.Buffering ->
      let in_loop = Reuse_state.in_loop t.reuse ~pc:e.SRob.pc in
      revoke_buffering t ~register_nblt:in_loop
        ~cause:(if in_loop then P.Rv_left_loop else P.Rv_mispredict)
  | Reuse_state.Reusing -> exit_reuse t

(* Commit. *)

let commit_one t (e : SRob.entry) =
  charge1 t Component.Rob;
  (match e.SRob.dest with
  | -1 -> ()
  | d ->
      charge1 t Component.Regfile;
      if Reg.is_fp d then t.arch_f.(Reg.index d) <- e.SRob.value_f
      else t.arch_i.(Reg.index d) <- e.SRob.value_i;
      let head_idx = SRob.head t.rob in
      if t.map.(d) = head_idx then t.map.(d) <- -1);
  if e.SRob.lsq_idx >= 0 then begin
    let le = Lsq.entry t.lsq e.SRob.lsq_idx in
    assert (Lsq.head_is t.lsq e.SRob.lsq_idx);
    if e.SRob.is_store then begin
      t.n_stores <- t.n_stores + 1;
      charge1 t Component.Lsq;
      ignore (data_latency t ~addr:le.Lsq.addr ~write:true);
      if le.Lsq.is_fp then Store.write_float t.memory le.Lsq.addr le.Lsq.data_f
      else begin
        match e.SRob.insn with
        | Insn.Sb _ -> Store.write_byte t.memory le.Lsq.addr le.Lsq.data_i
        | Insn.Sh _ -> Store.write_half t.memory le.Lsq.addr le.Lsq.data_i
        | _ -> Store.write_word t.memory le.Lsq.addr (Bits.to_u32 le.Lsq.data_i)
      end
    end
    else t.n_loads <- t.n_loads + 1;
    Lsq.pop_head t.lsq
  end;
  (match e.SRob.insn with
  | Insn.Halt ->
      t.halted <- true;
      t.halt_pc <- e.SRob.pc;
      SRob.squash_after t.rob ~seq:e.SRob.seq ~f:(fun _ _ -> ());
      Lsq.squash_after t.lsq ~seq:e.SRob.seq;
      SIq.clear t.iq;
      flush_front_end t;
      Hashtbl.reset t.events;
      t.replays <- []
  | _ -> ());
  if e.SRob.from_reuse then begin
    t.n_reuse_commit <- t.n_reuse_commit + 1;
    let best = ref None in
    Hashtbl.iter
      (fun _ r ->
        if e.SRob.pc >= r.P.ld_head && e.SRob.pc <= r.P.ld_tail then
          match !best with
          | Some b when b.P.ld_span <= r.P.ld_span -> ()
          | _ -> best := Some r)
      t.loop_log;
    match (!best, Hashtbl.find_opt t.loop_log t.cur_reuse_tail) with
    | Some r, _ | None, Some r -> r.P.ld_reuse_committed <- r.P.ld_reuse_committed + 1
    | None, None -> ()
  end;
  t.committed <- t.committed + 1;
  SRob.pop_head t.rob

let commit_stage t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.cfg.Config.commit_width && not t.halted do
    match SRob.head_entry t.rob with
    | Some e when e.SRob.completed ->
        commit_one t e;
        incr n
    | Some _ | None -> continue_ := false
  done

(* Writeback. *)

let complete t (e : SRob.entry) rob_idx =
  e.SRob.completed <- true;
  charge1 t Component.Rob;
  charge1 t Component.Resultbus;
  charge1 t Component.Iq_wakeup;
  SIq.wakeup t.iq ~tag:rob_idx ~value_i:e.SRob.value_i ~value_f:e.SRob.value_f;
  List.iter
    (fun (store_rob, store_seq) ->
      schedule t ~cycle:(t.now + 1)
        {
          ev_seq = store_seq;
          ev_rob = store_rob;
          ev_kind = Complete;
          ev_addr = 0;
          ev_di = 0;
          ev_df = 0.;
          ev_dtag = -1;
        })
    (Lsq.capture_data t.lsq ~tag:rob_idx ~value_i:e.SRob.value_i ~value_f:e.SRob.value_f);
  if e.SRob.is_ctrl then begin
    t.n_branches <- t.n_branches + 1;
    (match e.SRob.insn with
    | Insn.Br _ -> charge1 t Component.Bpred_dir
    | _ -> ());
    if e.SRob.taken then charge1 t Component.Btb;
    Predictor.resolve t.pred ~pc:e.SRob.pc ~insn:e.SRob.insn ~taken:e.SRob.taken
      ~target:e.SRob.actual_npc;
    if e.SRob.actual_npc <> e.SRob.pred_npc then begin
      t.n_mispredicts <- t.n_mispredicts + 1;
      recover t e
    end
  end

let load_value_from_reg insn raw =
  match insn with
  | Insn.Lb _ -> Bits.sign_extend raw ~width:8
  | Lbu _ -> raw land 0xFF
  | Lh _ -> Bits.sign_extend raw ~width:16
  | Lhu _ -> raw land 0xFFFF
  | _ -> Bits.of_i32 raw

let load_value_from_memory t insn addr =
  match insn with
  | Insn.Lb _ -> Bits.sign_extend (Store.read_byte t.memory addr) ~width:8
  | Lbu _ -> Store.read_byte t.memory addr
  | Lh _ -> Bits.sign_extend (Store.read_half t.memory addr) ~width:16
  | Lhu _ -> Store.read_half t.memory addr
  | _ -> Bits.of_i32 (Store.read_word t.memory addr)

let start_load ?(charge_search = true) t ~rob_idx ~(e : SRob.entry) ~addr =
  let le = Lsq.entry t.lsq e.SRob.lsq_idx in
  if charge_search then charge1 t Component.Lsq;
  match Lsq.check_load t.lsq ~idx:e.SRob.lsq_idx ~addr ~width:le.Lsq.width with
  | Lsq.Wait -> false
  | Lsq.Forward se ->
      if le.Lsq.is_fp then e.SRob.value_f <- se.Lsq.data_f
      else e.SRob.value_i <- load_value_from_reg e.SRob.insn se.Lsq.data_i;
      schedule t ~cycle:(t.now + 1)
        { ev_seq = e.SRob.seq; ev_rob = rob_idx; ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 };
      true
  | Lsq.Access ->
      let lat =
        if valid_addr e.SRob.insn addr then begin
          let lat = data_latency t ~addr ~write:false in
          if le.Lsq.is_fp then e.SRob.value_f <- Store.read_float t.memory addr
          else e.SRob.value_i <- load_value_from_memory t e.SRob.insn addr;
          lat
        end
        else 1
      in
      schedule t ~cycle:(t.now + lat)
        { ev_seq = e.SRob.seq; ev_rob = rob_idx; ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 };
      true

let process_agen t ev =
  let e = SRob.entry t.rob ev.ev_rob in
  if e.SRob.seq = ev.ev_seq then begin
    let le = Lsq.entry t.lsq e.SRob.lsq_idx in
    le.Lsq.addr <- ev.ev_addr;
    le.Lsq.addr_ready <- true;
    charge1 t Component.Lsq;
    if e.SRob.is_store then begin
      if ev.ev_dtag = -1 then begin
        le.Lsq.data_i <- ev.ev_di;
        le.Lsq.data_f <- ev.ev_df;
        le.Lsq.data_ready <- true;
        schedule t ~cycle:(t.now + 1)
          { ev with ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 }
      end
      else begin
        let producer = SRob.entry t.rob ev.ev_dtag in
        if producer.SRob.completed then begin
          le.Lsq.data_i <- producer.SRob.value_i;
          le.Lsq.data_f <- producer.SRob.value_f;
          le.Lsq.data_ready <- true;
          schedule t ~cycle:(t.now + 1)
            { ev with ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 }
        end
        else Lsq.wait_data t.lsq le ~tag:ev.ev_dtag
      end
    end
    else if not (start_load t ~rob_idx:ev.ev_rob ~e ~addr:ev.ev_addr) then
      t.replays <- { rp_seq = ev.ev_seq; rp_rob = ev.ev_rob; rp_addr = ev.ev_addr } :: t.replays
  end

let writeback_stage t =
  match Hashtbl.find_opt t.events t.now with
  | None -> ()
  | Some l ->
      Hashtbl.remove t.events t.now;
      let evs = List.sort (fun a b -> compare a.ev_seq b.ev_seq) !l in
      List.iter
        (fun ev ->
          let e = SRob.entry t.rob ev.ev_rob in
          if e.SRob.seq = ev.ev_seq && not e.SRob.completed then begin
            match ev.ev_kind with
            | Complete -> complete t e ev.ev_rob
            | Agen -> process_agen t ev
          end)
        evs

let replay_stage t =
  let pending = t.replays in
  t.replays <- [];
  List.iter
    (fun r ->
      let e = SRob.entry t.rob r.rp_rob in
      if e.SRob.seq = r.rp_seq && not e.SRob.completed then
        if not (start_load ~charge_search:false t ~rob_idx:r.rp_rob ~e ~addr:r.rp_addr) then
          t.replays <- r :: t.replays)
    (List.rev pending)

(* Issue. *)

let issue_slot t (s : SIq.slot) =
  let insn = s.SIq.insn in
  s.SIq.issued <- true;
  charge1 t Component.Iq_payload;
  (match s.SIq.fu with
  | Insn.FU_ialu -> charge1 t Component.Ialu
  | FU_imult -> charge1 t Component.Imult
  | FU_fpalu -> charge1 t Component.Fpalu
  | FU_fpmult -> charge1 t Component.Fpmult
  | FU_mem -> charge1 t Component.Ialu
  | FU_none -> ());
  let e = SRob.entry t.rob s.SIq.rob_idx in
  (match Insn.kind insn with
  | Insn.K_load | K_store ->
      let addr = effective_addr insn ~base:s.SIq.src1_i in
      schedule t ~cycle:(t.now + 1)
        {
          ev_seq = s.SIq.seq;
          ev_rob = s.SIq.rob_idx;
          ev_kind = Agen;
          ev_addr = addr;
          ev_di = s.SIq.src2_i;
          ev_df = s.SIq.src2_f;
          ev_dtag = s.SIq.src2_tag;
        }
  | K_int | K_fp | K_branch | K_jump | K_call | K_return | K_ijump | K_nop | K_halt ->
      let vi, vf, taken, npc =
        compute insn ~pc:s.SIq.pc ~s1i:s.SIq.src1_i ~s1f:s.SIq.src1_f ~s2i:s.SIq.src2_i
          ~s2f:s.SIq.src2_f
      in
      e.SRob.value_i <- vi;
      e.SRob.value_f <- vf;
      e.SRob.taken <- taken;
      e.SRob.actual_npc <- npc;
      let lat = max 1 (Insn.latency insn) in
      schedule t ~cycle:(t.now + lat)
        { ev_seq = s.SIq.seq; ev_rob = s.SIq.rob_idx; ev_kind = Complete; ev_addr = 0; ev_di = 0; ev_df = 0.; ev_dtag = -1 });
  if not s.SIq.reusable then s.SIq.dead <- true

let issue_stage t =
  let width = t.cfg.Config.issue_width in
  if SIq.count t.iq > 0 then charge1 t Component.Iq_select;
  let cand = Array.make width (-1) in
  let cand_seq = Array.make width max_int in
  let slots = SIq.slots t.iq in
  for i = 0 to SIq.count t.iq - 1 do
    let s = slots.(i) in
    let is_store = match Insn.kind s.SIq.insn with Insn.K_store -> true | _ -> false in
    if
      (not s.SIq.dead) && (not s.SIq.issued) && s.SIq.src1_tag = -1
      && (s.SIq.src2_tag = -1 || is_store)
    then begin
      let j = ref (width - 1) in
      if s.SIq.seq < cand_seq.(!j) then begin
        while !j > 0 && s.SIq.seq < cand_seq.(!j - 1) do
          cand_seq.(!j) <- cand_seq.(!j - 1);
          cand.(!j) <- cand.(!j - 1);
          decr j
        done;
        cand_seq.(!j) <- s.SIq.seq;
        cand.(!j) <- i
      end
    end
  done;
  for k = 0 to width - 1 do
    if cand.(k) >= 0 then begin
      let s = slots.(cand.(k)) in
      let lat = max 1 (Insn.latency s.SIq.insn) in
      if Fu.acquire t.fu s.SIq.fu ~now:t.now ~latency:lat ~pipelined:(Insn.pipelined s.SIq.insn)
      then issue_slot t s
    end
  done

(* Dispatch: normal mode. *)

let fill_rob_entry t ~rob_idx ~seq ~pc ~insn ~pred_npc ~ras_ck ~from_reuse =
  let e = SRob.entry t.rob rob_idx in
  e.SRob.seq <- seq;
  e.SRob.pc <- pc;
  e.SRob.insn <- insn;
  e.SRob.completed <- false;
  e.SRob.value_i <- 0;
  e.SRob.value_f <- 0.;
  e.SRob.dest <- (match Insn.dest insn with Some d -> d | None -> -1);
  e.SRob.is_store <- (match Insn.kind insn with Insn.K_store -> true | _ -> false);
  e.SRob.lsq_idx <- -1;
  e.SRob.is_ctrl <- Insn.is_ctrl insn;
  e.SRob.pred_npc <- pred_npc;
  e.SRob.actual_npc <- pc + 4;
  e.SRob.taken <- false;
  e.SRob.ras_ck <- ras_ck;
  e.SRob.from_reuse <- from_reuse;
  e

let is_mem insn =
  match Insn.kind insn with Insn.K_load | K_store -> true | _ -> false

let rename_into_slot t (s : SIq.slot) ~seq ~rob_idx ~pc ~insn ~pred_npc =
  charge1 t Component.Rename;
  let r1, r2 = operand_regs insn in
  let t1, v1i, v1f = read_operand t r1 in
  let t2, v2i, v2f = read_operand t r2 in
  s.SIq.seq <- seq;
  s.SIq.rob_idx <- rob_idx;
  s.SIq.pc <- pc;
  s.SIq.insn <- insn;
  s.SIq.fu <- Insn.fu insn;
  s.SIq.src1_tag <- t1;
  s.SIq.src1_i <- v1i;
  s.SIq.src1_f <- v1f;
  s.SIq.src2_tag <- t2;
  s.SIq.src2_i <- v2i;
  s.SIq.src2_f <- v2f;
  s.SIq.issued <- false;
  s.SIq.pred_npc <- pred_npc;
  (match Insn.dest insn with
  | Some d -> t.map.(d) <- rob_idx
  | None -> ())

let dispatch_one t (f : fetched) =
  if SRob.is_full t.rob then false
  else if SIq.is_full t.iq then begin
    if t.reuse.Reuse_state.state = Reuse_state.Buffering && f.f_buffered then
      revoke_buffering t ~register_nblt:true ~cause:P.Rv_overflow;
    false
  end
  else if is_mem f.f_insn && Lsq.is_full t.lsq then false
  else begin
    let seq = next_seq t in
    let rob_idx = SRob.alloc t.rob in
    charge1 t Component.Rob;
    let e =
      fill_rob_entry t ~rob_idx ~seq ~pc:f.f_pc ~insn:f.f_insn ~pred_npc:f.f_pred_npc
        ~ras_ck:f.f_ras_ck ~from_reuse:false
    in
    if is_mem f.f_insn then begin
      let li = Lsq.alloc t.lsq in
      let le = Lsq.entry t.lsq li in
      le.Lsq.seq <- seq;
      le.Lsq.rob_idx <- rob_idx;
      le.Lsq.is_store <- e.SRob.is_store;
      le.Lsq.is_fp <- is_fp_mem f.f_insn;
      le.Lsq.width <- Insn.access_bytes f.f_insn;
      e.SRob.lsq_idx <- li
    end;
    let s = SIq.dispatch t.iq in
    rename_into_slot t s ~seq ~rob_idx ~pc:f.f_pc ~insn:f.f_insn ~pred_npc:f.f_pred_npc;
    charge1 t Component.Iq_payload;
    let buffering = t.reuse.Reuse_state.state = Reuse_state.Buffering in
    if buffering && f.f_buffered then begin
      s.SIq.reusable <- true;
      charge1 t Component.Lrl;
      t.reuse.Reuse_state.iter_count <- t.reuse.Reuse_state.iter_count + 1;
      if t.reuse.Reuse_state.first_buffered_seq = -1 then
        t.reuse.Reuse_state.first_buffered_seq <- seq;
      if f.f_pc = t.reuse.Reuse_state.tail then begin
        let iter_size = t.reuse.Reuse_state.iter_count in
        t.reuse.Reuse_state.iters_buffered <- t.reuse.Reuse_state.iters_buffered + 1;
        t.reuse.Reuse_state.iter_count <- 0;
        let continue_buffering =
          t.cfg.Config.buffer_multiple_iterations && SIq.free t.iq >= iter_size
        in
        if not continue_buffering then begin
          let r =
            loop_record t ~head:t.reuse.Reuse_state.head
              ~tail:t.reuse.Reuse_state.tail
          in
          r.P.ld_promotions <- r.P.ld_promotions + 1;
          t.cur_reuse_tail <- t.reuse.Reuse_state.tail;
          Reuse_state.promote ~now:t.now t.reuse;
          SIq.set_reuse_ptr t.iq (SIq.first_reusable t.iq);
          flush_front_end t
        end
      end
    end;
    true
  end

let dispatch_normal t =
  let budget = ref t.cfg.Config.decode_width in
  let continue_ = ref true in
  while
    !continue_ && !budget > 0
    && (not (Queue.is_empty t.decode_latch))
    && t.reuse.Reuse_state.state <> Reuse_state.Reusing
  do
    let f = Queue.peek t.decode_latch in
    if dispatch_one t f then begin
      if not (Queue.is_empty t.decode_latch) then ignore (Queue.pop t.decode_latch);
      decr budget
    end
    else continue_ := false
  done

(* Dispatch in Code Reuse state. *)

let reuse_dispatch_one t ~allow_wrap =
  let first = SIq.first_reusable t.iq in
  if first < 0 then false
  else begin
    let p = SIq.reuse_ptr t.iq in
    let needs_wrap = p >= SIq.count t.iq || not (SIq.slots t.iq).(p).SIq.reusable in
    if needs_wrap && not allow_wrap then false
    else begin
    let rptr = if needs_wrap then first else p in
    let s = (SIq.slots t.iq).(rptr) in
    if not s.SIq.issued then false
    else if SRob.is_full t.rob then false
    else if is_mem s.SIq.insn && Lsq.is_full t.lsq then false
    else begin
      let insn = s.SIq.insn in
      let pc = s.SIq.pc in
      let seq = next_seq t in
      let rob_idx = SRob.alloc t.rob in
      charge1 t Component.Rob;
      let e =
        fill_rob_entry t ~rob_idx ~seq ~pc ~insn ~pred_npc:s.SIq.pred_npc
          ~ras_ck:(Predictor.checkpoint t.pred) ~from_reuse:true
      in
      if is_mem insn then begin
        let li = Lsq.alloc t.lsq in
        let le = Lsq.entry t.lsq li in
        le.Lsq.seq <- seq;
        le.Lsq.rob_idx <- rob_idx;
        le.Lsq.is_store <- e.SRob.is_store;
        le.Lsq.is_fp <- is_fp_mem insn;
        le.Lsq.width <- Insn.access_bytes insn;
        e.SRob.lsq_idx <- li
      end;
      rename_into_slot t s ~seq ~rob_idx ~pc ~insn ~pred_npc:s.SIq.pred_npc;
      s.SIq.reusable <- true;
      charge1 t Component.Lrl;
      charge t Component.Iq_payload Model.iq_partial_update_fraction;
      t.n_reuse_dispatch <- t.n_reuse_dispatch + 1;
      SIq.set_reuse_ptr t.iq (rptr + 1);
      true
    end
    end
  end

let dispatch_reuse t =
  let budget = ref t.cfg.Config.issue_width in
  let continue_ = ref true in
  while !continue_ && !budget > 0 && t.reuse.Reuse_state.state = Reuse_state.Reusing do
    if reuse_dispatch_one t ~allow_wrap:true then decr budget else continue_ := false
  done

(* Decode. *)

let decode_reuse_hooks t (f : fetched) =
  if t.cfg.Config.reuse_enabled then begin
    let r = t.reuse in
    match r.Reuse_state.state with
    | Reuse_state.Normal -> (
        if Insn.is_ctrl f.f_insn then charge1 t Component.Reuse_logic;
        match
          Detector.examine ~tracer:t.tracer ~now:t.now ~iq_size:t.cfg.Config.iq_entries
            ~pc:f.f_pc f.f_insn
        with
        | Detector.Capturable { head; tail; span = _ } ->
            r.Reuse_state.n_detections <- r.Reuse_state.n_detections + 1;
            let ld = loop_record t ~head ~tail in
            ld.P.ld_detections <- ld.P.ld_detections + 1;
            charge1 t Component.Nblt;
            if Nblt.mem t.nblt tail then begin
              r.Reuse_state.n_nblt_filtered <- r.Reuse_state.n_nblt_filtered + 1;
              ld.P.ld_nblt_filtered <- ld.P.ld_nblt_filtered + 1
            end
            else if f.f_pred_npc = head then begin
              ld.P.ld_attempts <- ld.P.ld_attempts + 1;
              Reuse_state.start_buffering ~now:t.now r ~head ~tail
            end
        | Detector.Too_large _ | Detector.Not_a_loop -> ())
    | Reuse_state.Buffering ->
        let in_loop = Reuse_state.in_loop r ~pc:f.f_pc in
        let in_callee = r.Reuse_state.call_depth > 0 in
        f.f_buffered <- in_loop || in_callee;
        (match Insn.kind f.f_insn with
        | Insn.K_call -> if f.f_buffered then r.Reuse_state.call_depth <- r.Reuse_state.call_depth + 1
        | K_return ->
            if in_callee then r.Reuse_state.call_depth <- r.Reuse_state.call_depth - 1
        | K_branch | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt ->
            ());
        if (not in_loop) && not in_callee then
          revoke_buffering t ~register_nblt:true ~cause:P.Rv_left_loop
        else begin
          match Detector.examine ~iq_size:t.cfg.Config.iq_entries ~pc:f.f_pc f.f_insn with
          | Detector.Capturable { tail; _ } when tail <> r.Reuse_state.tail ->
              revoke_buffering t ~register_nblt:true ~cause:P.Rv_inner_loop
          | Detector.Capturable _ | Detector.Too_large _ | Detector.Not_a_loop -> ()
        end
    | Reuse_state.Reusing -> ()
  end

let decode_stage t =
  if t.reuse.Reuse_state.state <> Reuse_state.Reusing then begin
    let room = t.cfg.Config.decode_width - Queue.length t.decode_latch in
    for _ = 1 to room do
      if
        (not (Queue.is_empty t.fetch_q))
        && t.reuse.Reuse_state.state <> Reuse_state.Reusing
      then begin
        let f = Queue.pop t.fetch_q in
        charge1 t Component.Decoder;
        decode_reuse_hooks t f;
        Queue.push f t.decode_latch
      end
    done
  end

(* Fetch. *)

let fetch_stage t =
  if
    t.reuse.Reuse_state.state <> Reuse_state.Reusing
    && t.fetch_pc >= 0
    && t.now >= t.fetch_stall_until
    && Queue.length t.fetch_q < t.cfg.Config.fetch_queue
    && Program.insn_at t.program t.fetch_pc <> None
  then begin
    let serve_lc =
      match t.lc with Some lc -> Loopcache.serving lc ~pc:t.fetch_pc | None -> false
    in
    let lat =
      if serve_lc then begin
        charge1 t Component.Loopcache;
        t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency
      end
      else fetch_latency t t.fetch_pc
    in
    if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then
      t.fetch_stall_until <- t.now + lat
    else begin
      let line = t.cfg.Config.mem.Hierarchy.l1i.Cache.line_bytes in
      let line_of pc = pc / line in
      let cur_line = ref (line_of t.fetch_pc) in
      let fetched = ref 0 in
      let continue_ = ref true in
      while
        !continue_ && !fetched < t.cfg.Config.fetch_width
        && Queue.length t.fetch_q < t.cfg.Config.fetch_queue
        && t.fetch_pc >= 0
      do
        if (not serve_lc) && line_of t.fetch_pc <> !cur_line then begin
          let lat = fetch_latency t t.fetch_pc in
          if lat > t.cfg.Config.mem.Hierarchy.l1i.Cache.hit_latency then begin
            t.fetch_stall_until <- t.now + lat;
            continue_ := false
          end
          else cur_line := line_of t.fetch_pc
        end;
        if !continue_ then begin
          match Program.insn_at t.program t.fetch_pc with
          | None -> continue_ := false
          | Some insn ->
              let pc = t.fetch_pc in
              let pred_npc, ck =
                if Insn.is_ctrl insn then begin
                  (match Insn.kind insn with
                  | Insn.K_branch -> charge1 t Component.Bpred_dir
                  | K_call | K_return -> charge1 t Component.Ras
                  | K_jump | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt -> ());
                  charge1 t Component.Btb;
                  let d = Predictor.lookup t.pred ~pc ~insn in
                  let ck = Predictor.checkpoint t.pred in
                  let npc =
                    if d.Predictor.taken then
                      match d.Predictor.target with Some tgt -> tgt | None -> -1
                    else pc + 4
                  in
                  (npc, ck)
                end
                else (pc + 4, Predictor.checkpoint t.pred)
              in
              Queue.push
                { f_pc = pc; f_insn = insn; f_pred_npc = pred_npc; f_ras_ck = ck; f_buffered = false }
                t.fetch_q;
              (match t.lc with
              | Some lc ->
                  if Loopcache.state lc = Loopcache.Fill then charge1 t Component.Loopcache;
                  Loopcache.on_fetch lc ~pc ~insn ~pred_npc
              | None -> ());
              incr fetched;
              (match Insn.kind insn with
              | Insn.K_halt ->
                  t.fetch_pc <- -1;
                  continue_ := false
              | _ ->
                  t.fetch_pc <- pred_npc;
                  if pred_npc < 0 then continue_ := false)
        end
      done
    end
  end

(* Cycle loop. *)

let step_cycle t =
  commit_stage t;
  if not t.halted then begin
    writeback_stage t;
    replay_stage t;
    issue_stage t;
    (match t.reuse.Reuse_state.state with
    | Reuse_state.Reusing -> dispatch_reuse t
    | Reuse_state.Normal | Reuse_state.Buffering -> dispatch_normal t);
    decode_stage t;
    fetch_stage t;
    if t.reuse.Reuse_state.state = Reuse_state.Reusing then begin
      t.gated_cycles <- t.gated_cycles + 1;
      charge1 t Component.Reuse_logic
    end;
    let removed = SIq.compact t.iq in
    if removed > 0 then charge t Component.Iq_payload (float_of_int removed)
  end;
  Account.tick t.acct;
  t.now <- t.now + 1

let run ?(cycle_limit = 200_000_000) t =
  let rec go () =
    if t.halted then Halted
    else if t.now >= cycle_limit then Cycle_limit
    else begin
      step_cycle t;
      go ()
    end
  in
  go ()

let halted t = t.halted
let cycles t = t.now
let committed t = t.committed
let ipc t = if t.now = 0 then 0. else float_of_int t.committed /. float_of_int t.now
let gated_cycles t = t.gated_cycles

let arch_state t =
  {
    Riq_interp.Machine.final_pc = t.halt_pc + 4;
    instructions = t.committed;
    int_regs = Array.copy t.arch_i;
    fp_regs = Array.copy t.arch_f;
    memory =
      List.rev (Store.fold_nonzero t.memory ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc));
  }

let loop_decisions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.loop_log []
  |> List.sort (fun a b -> compare a.P.ld_tail b.P.ld_tail)

let account t = t.acct

let stats t =
  {
    P.cycles = t.now;
    committed = t.committed;
    ipc = ipc t;
    gated_cycles = t.gated_cycles;
    gated_fraction = (if t.now = 0 then 0. else float_of_int t.gated_cycles /. float_of_int t.now);
    branches = t.n_branches;
    mispredicts = t.n_mispredicts;
    loads = t.n_loads;
    stores = t.n_stores;
    reuse_dispatches = t.n_reuse_dispatch;
    reuse_committed = t.n_reuse_commit;
    buffer_attempts = t.reuse.Reuse_state.n_buffer_attempts;
    revokes = t.reuse.Reuse_state.n_revokes;
    promotions = t.reuse.Reuse_state.n_promotions;
    reuse_exits = t.reuse.Reuse_state.n_reuse_exits;
    avg_power = Account.avg_power t.acct;
    icache_accesses = Cache.accesses (Hierarchy.l1i t.hier);
    icache_misses = Cache.misses (Hierarchy.l1i t.hier);
    dcache_accesses = Cache.accesses (Hierarchy.l1d t.hier);
    dcache_misses = Cache.misses (Hierarchy.l1d t.hier);
    skipped_cycles = 0;
    ffwd_iterations = 0;
  }
