open Riq_asm
open Riq_mem
open Riq_ooo
open Riq_interp

(** The modelled processor: a 4-wide out-of-order superscalar with the
    pipeline of Figure 1 (Fetch, Decode, Rename, Queue, Issue, RegRead,
    Execute, WriteBack, Commit) and, when [Config.reuse_enabled] is set,
    the paper's reusable-instruction issue queue:

    - loop detection at decode ({!Detector}),
    - Loop Buffering with the multiple-iteration strategy of Section 2.2.1
      and the procedure-call handling of Section 2.2.2,
    - the non-bufferable loop table of Section 2.2.3,
    - Code Reuse with front-end gating, reuse-pointer re-dispatch into
      rename, and static in-loop branch prediction (Section 2.4),
    - revoke and misprediction recovery (Section 2.5).

    Power is accounted cycle-by-cycle through {!Riq_power.Account}.

    {2 Observability}

    [create ?tracer ?sampler] attaches the cycle-level tracing subsystem
    ({!Riq_obs}): the tracer receives span/instant events from the reuse
    state machine ("loop-buffering" and "code-reuse" gating-window spans),
    the loop detector, the NBLT and the recovery path, plus periodic
    [ipc] / [occupancy] / [power] counter tracks; the sampler records the
    {!sample_channels} time series. Both default to off and the default
    path costs one dead branch per emission site, so untraced simulations
    are bit-identical to pre-observability builds. *)

type t

val sample_channels : string list
(** Channel names (and order) a sampler attached to {!create} must use:
    windowed IPC, IQ/ROB/LSQ occupancy, per-{!Riq_power.Component.group}
    power and total power. *)

val create :
  ?tracer:Riq_obs.Tracer.t -> ?sampler:Riq_obs.Sampler.t -> Config.t -> Program.t -> t
(** Raises [Invalid_argument] when [sampler]'s channels are not
    {!sample_channels}. *)

type stop = Halted | Cycle_limit

val run : ?cycle_limit:int -> t -> stop
(** Simulate until the [halt] instruction commits (default limit 200
    million cycles). *)

val step_cycle : t -> unit
(** Advance one cycle; exposed for the pipeline unit tests and the
    example that traces state-machine transitions. *)

val halted : t -> bool

(** {2 Results} *)

val cycles : t -> int
val committed : t -> int
val ipc : t -> float
val gated_cycles : t -> int
(** Cycles spent in Code Reuse state with the front-end gated. *)

val occupancy : t -> int * int * int
(** Current (issue queue, ROB, LSQ) occupancy — for pipeline viewers and
    the sampler. Once {!run} returns [Halted] the queues have been drained
    (anything younger than the halt is wrong-path), so this reads
    (0, 0, 0). *)

val decode_cache_hits : t -> int
(** Dispatch descriptors served by the steady-state decode cache while
    buffering a loop (correctness-neutral memoization; see DESIGN.md §9). *)

val decode_cache_installs : t -> int
(** Loop windows whose descriptors were installed into the decode cache
    when buffering started. *)

val tracer : t -> Riq_obs.Tracer.t
val sampler : t -> Riq_obs.Sampler.t option

val arch_state : t -> Machine.arch_state
(** Architectural snapshot in the reference simulator's format, for
    differential testing against {!Riq_interp.Machine}. *)

(** Why a buffering attempt was revoked — one constructor per revoke
    site in the pipeline. The static analysis predicts these
    ([Riq_analysis.Bufferability.revoke_cause]); the per-loop counters
    below let the oracle cross-check prediction against execution. *)
type revoke_cause =
  | Rv_inner_loop
      (** decode saw a second capturable backward transfer (Section 2.2.2) *)
  | Rv_left_loop
      (** decode left the loop window before promotion, or the loop's own
          branch mispredicted (Section 2.2.3) *)
  | Rv_overflow (** the issue queue filled while buffering (Section 2.2.2) *)
  | Rv_mispredict
      (** recovery from a mispredicted branch older than the loop *)

val revoke_cause_to_string : revoke_cause -> string

(** Per-loop decision record of the dynamic reuse machinery, keyed by the
    loop-ending instruction's pc (the detector's and the NBLT's key).
    Queryable after a run to compare against the static bufferability
    pass ([Riq_analysis.Bufferability]). *)
type loop_decision = {
  ld_head : int; (** byte address of the loop's first instruction *)
  ld_tail : int; (** byte address of the backward transfer *)
  ld_span : int;
  mutable ld_detections : int; (** detector hits at this tail *)
  mutable ld_nblt_filtered : int; (** detections suppressed by the NBLT *)
  mutable ld_attempts : int; (** buffering attempts started *)
  mutable ld_revokes : int;
  mutable ld_rv_inner : int; (** [ld_revokes] split by {!revoke_cause} *)
  mutable ld_rv_left : int;
  mutable ld_rv_overflow : int;
  mutable ld_rv_mispredict : int;
  mutable ld_nblt_registered : int; (** revokes that registered in the NBLT *)
  mutable ld_promotions : int; (** times the loop reached Code Reuse *)
  mutable ld_reuse_committed : int;
      (** committed instructions this loop supplied from the queue *)
}

val loop_decisions : t -> loop_decision list
(** All loops the detector ever flagged, sorted by tail address. *)

val account : t -> Riq_power.Account.t
val hierarchy : t -> Hierarchy.t
val reuse_state : t -> Reuse_state.t
val nblt : t -> Nblt.t
val loopcache : t -> Loopcache.t option
(** Present when [Config.loop_cache_entries > 0] (related-work baseline). *)

val config : t -> Config.t

type stats = {
  cycles : int;
  committed : int;
  ipc : float;
  gated_cycles : int;
  gated_fraction : float;
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  reuse_dispatches : int; (** instructions supplied by the issue queue *)
  reuse_committed : int; (** committed instructions that came from reuse *)
  buffer_attempts : int;
  revokes : int;
  promotions : int;
  reuse_exits : int;
  avg_power : float;
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  skipped_cycles : int;
      (** cycles run through the quiescent-stretch lean loop (0 with
          [Config.skip_ahead] off; purely diagnostic — identical
          behaviour either way) *)
  ffwd_iterations : int;
      (** reused loop iterations replayed analytically (0 with
          [Config.loop_ffwd] off; likewise behaviour-neutral) *)
}

val stats : t -> stats
