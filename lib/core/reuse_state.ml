open Riq_obs

type state = Normal | Buffering | Reusing

type t = {
  tracer : Tracer.t;
  mutable state : state;
  mutable head : int;
  mutable tail : int;
  mutable iter_count : int;
  mutable call_depth : int;
  mutable first_buffered_seq : int;
  mutable iters_buffered : int;
  mutable n_detections : int;
  mutable n_nblt_filtered : int;
  mutable n_buffer_attempts : int;
  mutable n_revokes : int;
  mutable n_promotions : int;
  mutable n_reuse_exits : int;
}

let create ?tracer () =
  {
    tracer = (match tracer with Some tr -> tr | None -> Tracer.null ());
    state = Normal;
    head = 0;
    tail = 0;
    iter_count = 0;
    call_depth = 0;
    first_buffered_seq = -1;
    iters_buffered = 0;
    n_detections = 0;
    n_nblt_filtered = 0;
    n_buffer_attempts = 0;
    n_revokes = 0;
    n_promotions = 0;
    n_reuse_exits = 0;
  }

(* Span conventions: the buffering window and the Code-Reuse gating window
   are named spans on track 0 ("reuse-engine"), so a Perfetto timeline
   shows exactly when the machine held each state. *)
let loop_args t =
  [ ("head", Tracer.Int t.head); ("tail", Tracer.Int t.tail) ]

let start_buffering ?(now = 0) t ~head ~tail =
  assert (t.state = Normal);
  t.state <- Buffering;
  t.head <- head;
  t.tail <- tail;
  t.iter_count <- 0;
  t.call_depth <- 0;
  t.first_buffered_seq <- -1;
  t.iters_buffered <- 0;
  t.n_buffer_attempts <- t.n_buffer_attempts + 1;
  if Tracer.enabled t.tracer then
    Tracer.begin_span t.tracer ~now ~args:(loop_args t) ~cat:"reuse" "loop-buffering"

let revoke ?(now = 0) t =
  assert (t.state = Buffering);
  t.state <- Normal;
  t.n_revokes <- t.n_revokes + 1;
  if Tracer.enabled t.tracer then
    Tracer.end_span t.tracer ~now ~cat:"reuse" "loop-buffering"

let promote ?(now = 0) t =
  assert (t.state = Buffering);
  t.state <- Reusing;
  t.n_promotions <- t.n_promotions + 1;
  if Tracer.enabled t.tracer then begin
    Tracer.end_span t.tracer ~now ~cat:"reuse" "loop-buffering";
    Tracer.begin_span t.tracer ~now
      ~args:(("iters_buffered", Tracer.Int t.iters_buffered) :: loop_args t)
      ~cat:"reuse" "code-reuse"
  end

let exit_reuse ?(now = 0) t =
  assert (t.state = Reusing);
  t.state <- Normal;
  t.n_reuse_exits <- t.n_reuse_exits + 1;
  if Tracer.enabled t.tracer then
    Tracer.end_span t.tracer ~now ~cat:"reuse" "code-reuse"

let in_loop t ~pc = pc >= t.head && pc <= t.tail
