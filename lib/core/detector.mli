open Riq_isa

(** Loop-structure detector (Section 2.1).

    The paper performs detection at the decode stage: for every conditional
    branch and direct jump it checks (1) whether the transfer is backward
    and (2) whether the static span from the target (the loop head) to the
    instruction itself (the loop tail) fits in the issue queue. Indirect
    jumps have no statically-known target at decode and are never loop
    ends. *)

type verdict =
  | Not_a_loop (** not a backward branch/jump *)
  | Too_large of int (** backward, but the body exceeds the queue; carries the span *)
  | Capturable of { head : int; tail : int; span : int }
      (** [head]/[tail] are byte addresses of the first and last
          instructions of an iteration; [span] the body size in
          instructions. *)

val examine :
  ?tracer:Riq_obs.Tracer.t -> ?now:int -> iq_size:int -> pc:int -> Insn.t -> verdict
(** Decode-stage check of the instruction at [pc]. With a [tracer], a
    non-[Not_a_loop] verdict emits a ["loop-detected"] /
    ["loop-too-large"] instant event timestamped [now]. *)
