open Riq_isa

(** Dynamic loop cache, after Lee, Moyer and Arends (ISLPED 1999) — the
    related-work baseline the paper positions itself against.

    A small fetch-side instruction buffer with a three-state controller:
    a taken {e short backward branch} (span within the cache capacity)
    triggers {e Fill}; if the same branch is taken again once the body has
    been captured, the controller goes {e Active} and the fetch unit reads
    instructions from the loop cache instead of the L1 instruction cache.
    Any control-flow departure from the loop (the branch falling through,
    a different taken branch, a pipeline redirect) returns to {e Idle}.

    Unlike the paper's reusable-instruction issue queue, the loop cache
    sits {e before} decode: it saves instruction-cache energy only —
    branch prediction and decode keep running every cycle. The comparison
    experiment (`riq_sim fig related`) quantifies exactly this gap. *)

type state = Idle | Fill | Active

type t

val create : int -> t
(** [create capacity] in instructions; capacity must be at least 4. *)

val capacity : t -> int
val state : t -> state

val serving : t -> pc:int -> bool
(** Whether the instruction at [pc] is supplied by the loop cache this
    cycle (Active and within the captured loop). *)

val on_fetch : t -> pc:int -> insn:Insn.t -> pred_npc:int -> unit
(** Advance the controller with one fetched instruction and the next-PC
    prediction made for it. *)

val on_fetch_decoded :
  t -> pc:int -> kind:Insn.kind -> static_target:int -> pred_npc:int -> unit
(** {!on_fetch} for the packed fast path: kind and statically-known taken
    target ([-1] = none) are pre-decoded side-table loads. Identical
    state-machine behavior and counters. *)

val reset : t -> unit
(** Pipeline redirect (misprediction recovery): back to Idle. *)

(** {2 Statistics} *)

val fills : t -> int
(** Instructions written into the buffer. *)

val supplies : t -> int
(** Instructions supplied from the buffer (L1I accesses avoided). *)

val activations : t -> int
