(** Non-bufferable loop table (Section 2.2.3).

    A small CAM holding the loop-ending-instruction addresses of the most
    recently identified non-bufferable loops, maintained as a FIFO. A loop
    whose ending address hits in the NBLT is not buffered, which
    eliminates the Loop-Buffering / Normal state thrashing on outer loops,
    loops with large embedded procedures, and early-exit loops.

    A zero-entry table is valid and never matches — used by the NBLT
    ablation experiment. *)

type t

val create : ?tracer:Riq_obs.Tracer.t -> int -> t
(** With a [tracer], every new registration emits an ["nblt-register"]
    instant event carrying the loop-tail address. *)

val capacity : t -> int

val mem : t -> int -> bool
(** [mem t tail_pc] — CAM lookup by loop-ending instruction address. *)

val insert : ?now:int -> t -> int -> unit
(** Register a non-bufferable loop; on overflow the oldest entry is
    evicted (FIFO). Re-inserting a present address refreshes nothing (the
    paper's table has no use for recency updates). *)

val lookups : t -> int
val insertions : t -> int
