open Riq_isa
open Riq_obs

type verdict =
  | Not_a_loop
  | Too_large of int
  | Capturable of { head : int; tail : int; span : int }

let examine ?tracer ?(now = 0) ~iq_size ~pc insn =
  let candidate =
    match Insn.kind insn with
    | Insn.K_branch | K_jump -> Insn.ctrl_target insn ~pc
    | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt -> None
  in
  let verdict =
    match candidate with
    | Some target when target <= pc ->
        let span = ((pc - target) / 4) + 1 in
        if span <= iq_size then Capturable { head = target; tail = pc; span }
        else Too_large span
    | Some _ | None -> Not_a_loop
  in
  (match tracer with
  | Some tr when Tracer.enabled tr -> (
      match verdict with
      | Capturable { head; tail; span } ->
          Tracer.instant tr ~now
            ~args:
              [ ("head", Tracer.Int head); ("tail", Tracer.Int tail); ("span", Tracer.Int span) ]
            ~cat:"detector" "loop-detected"
      | Too_large span ->
          Tracer.instant tr ~now
            ~args:[ ("tail", Tracer.Int pc); ("span", Tracer.Int span) ]
            ~cat:"detector" "loop-too-large"
      | Not_a_loop -> ())
  | Some _ | None -> ());
  verdict
