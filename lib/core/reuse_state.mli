(** Issue-queue operating state (Figure 2 of the paper) and the bookkeeping
    registers of the reuse engine: R_loophead, R_looptail, the
    iteration-size counter, and the procedure-call depth tracked while
    buffering.

    Transitions are driven by the pipeline ({!Processor}); this module
    centralises the registers and the statistics the experiments report
    (buffering attempts, revokes, promotions, reuse exits). *)

type state =
  | Normal
  | Buffering (** Loop Buffering: renamed loop instructions are retained *)
  | Reusing (** Code Reuse: the front-end is gated *)

type t = {
  tracer : Riq_obs.Tracer.t;
      (** sink for the state-machine spans; the null tracer by default *)
  mutable state : state;
  mutable head : int; (** R_loophead: address of the first loop instruction *)
  mutable tail : int; (** R_looptail: address of the loop-ending instruction *)
  mutable iter_count : int; (** instructions dispatched in the current buffering iteration *)
  mutable call_depth : int; (** procedure nesting while buffering *)
  mutable first_buffered_seq : int; (** -1 until the first buffered dispatch *)
  mutable iters_buffered : int;
  mutable n_detections : int;
  mutable n_nblt_filtered : int;
  mutable n_buffer_attempts : int;
  mutable n_revokes : int;
  mutable n_promotions : int;
  mutable n_reuse_exits : int;
}

val create : ?tracer:Riq_obs.Tracer.t -> unit -> t
(** With a [tracer], every transition emits span events: a
    ["loop-buffering"] span covers Buffering, a ["code-reuse"] span covers
    the gating window ([now] is the span timestamp). *)

val start_buffering : ?now:int -> t -> head:int -> tail:int -> unit
(** Normal -> Buffering (capturable loop detected, NBLT miss). *)

val revoke : ?now:int -> t -> unit
(** Buffering -> Normal. *)

val promote : ?now:int -> t -> unit
(** Buffering -> Reusing. *)

val exit_reuse : ?now:int -> t -> unit
(** Reusing -> Normal. *)

val in_loop : t -> pc:int -> bool
(** Whether [pc] lies within [head, tail]. *)
