(** Load/store queue.

    Slots are allocated in program order at dispatch and freed at commit
    (stores) or squash. Loads consult the queue for memory-order
    constraints: a load may access memory only when every older store has a
    resolved address (conservative disambiguation), and it forwards from
    the youngest older store with a matching address.

    Accesses carry a byte width (1, 2 or 4). Forwarding requires the
    store to match the load's address and width exactly; any other byte
    overlap makes the load wait until the store leaves the queue. *)

type entry = {
  mutable seq : int;
  mutable rob_idx : int;
  mutable is_store : bool;
  mutable is_fp : bool;
  mutable addr_ready : bool;
  mutable addr : int;
  mutable width : int; (** access footprint in bytes: 1, 2 or 4 *)
  mutable data_ready : bool; (** store data captured *)
  mutable data_tag : int; (** ROB index the store data waits on, or -1 *)
  mutable data_i : int;
  mutable data_f : float;
  mutable live : bool;
}

type t

val create : int -> t
val size : t -> int
val count : t -> int
val is_full : t -> bool

val alloc : t -> int
(** Claim the tail slot (program order); returns its index. *)

val entry : t -> int -> entry

val wait_data : t -> entry -> tag:int -> unit
(** Record that [entry]'s store data waits on ROB index [tag]. Tag writes
    go through here (not the field) so {!capture_data} can skip its walk
    when no store in the queue is waiting on any broadcast. *)

type load_check =
  | Forward of entry (** youngest older matching store, data ready *)
  | Wait (** an older store's address or matching data is unresolved *)
  | Access (** no conflict: go to the data cache *)

val check_load : t -> idx:int -> addr:int -> width:int -> load_check

val capture_data : t -> tag:int -> value_i:int -> value_f:float -> (int * int) list
(** Result broadcast to stores whose data operand was pending: every live
    store waiting on [tag] captures the value; returns their
    [(rob_idx, seq)] pairs so the pipeline can schedule their completion. *)

val head_is : t -> int -> bool
(** Whether [idx] is the oldest live slot (commit-order check). *)

val pop_head : t -> unit
val squash_after : t -> seq:int -> unit
(** Free every slot younger than [seq]. *)
