open Riq_isa

type slot = {
  mutable seq : int;
  mutable rob_idx : int;
  mutable pc : int;
  mutable wi : int;
  mutable fu : Insn.fu_class;
  mutable lat : int;
  mutable pipe : bool;
  mutable is_mem : bool;
  mutable is_store : bool;
  mutable src1_tag : int;
  mutable src1_i : int;
  mutable src1_f : float;
  mutable src2_tag : int;
  mutable src2_i : int;
  mutable src2_f : float;
  mutable issued : bool;
  mutable reusable : bool;
  mutable dead : bool;
  mutable pred_npc : int;
  (* Intrusive links, all self-linked when the slot is not on the
     corresponding list. [w1_*]/[w2_*] thread the slot onto the per-tag
     waiter list of its outstanding first/second source operand, so a
     result broadcast touches only the slots actually waiting on that
     tag. [r_*] thread the ready ring: unissued live slots whose
     operands are select-ready, the set the issue stage walks. A store
     with its address operand ready but its data still in flight sits on
     both a waiter list and the ready ring. Membership is maintained by
     {!enqueue}/{!mark_issued}/{!mark_renamed}/{!kill}/{!wakeup}; slot
     records keep their links when {!compact} permutes the array. *)
  mutable w1_next : slot;
  mutable w1_prev : slot;
  mutable w2_next : slot;
  mutable w2_prev : slot;
  mutable r_next : slot;
  mutable r_prev : slot;
}

type t = {
  arr : slot array;
  size : int;
  mutable count : int;
  mutable rptr : int;
  rq : slot; (* sentinel of the ready ring *)
  mutable wait1 : slot array; (* per-tag waiter-list sentinels, src1 *)
  mutable wait2 : slot array; (* per-tag waiter-list sentinels, src2 *)
  mutable n_wait : int array;
  (* waiters per tag, both lists combined: a broadcast for a tag nobody
     waits on (the common case) checks one int in a compact array instead
     of dereferencing two sentinel records *)
  mutable n_dead : int; (* dead slots within [0, count): compact's work *)
}

let fresh_slot () =
  let rec s =
    {
      seq = -1;
      rob_idx = -1;
      pc = 0;
      wi = -1;
      fu = Insn.FU_none;
      lat = 1;
      pipe = true;
      is_mem = false;
      is_store = false;
      src1_tag = -1;
      src1_i = 0;
      src1_f = 0.;
      src2_tag = -1;
      src2_i = 0;
      src2_f = 0.;
      issued = false;
      reusable = false;
      dead = false;
      pred_npc = 0;
      w1_next = s;
      w1_prev = s;
      w2_next = s;
      w2_prev = s;
      r_next = s;
      r_prev = s;
    }
  in
  s

let create size =
  if size < 1 then invalid_arg "Iq.create";
  {
    arr = Array.init size (fun _ -> fresh_slot ());
    size;
    count = 0;
    rptr = 0;
    rq = fresh_slot ();
    wait1 = Array.init 64 (fun _ -> fresh_slot ());
    wait2 = Array.init 64 (fun _ -> fresh_slot ());
    n_wait = Array.make 64 0;
    n_dead = 0;
  }

let size t = t.size
let count t = t.count
let free t = t.size - t.count
let is_full t = t.count = t.size
let slots t = t.arr
let ready t = t.rq

(* Tags are ROB indices; the sentinel tables grow to cover whatever tag
   range the client uses. *)
let ensure_tag t tag =
  let n = Array.length t.wait1 in
  if tag >= n then begin
    let n' =
      let m = ref n in
      while tag >= !m do
        m := !m * 2
      done;
      !m
    in
    let grow old = Array.init n' (fun i -> if i < n then old.(i) else fresh_slot ()) in
    t.wait1 <- grow t.wait1;
    t.wait2 <- grow t.wait2;
    let counts = Array.make n' 0 in
    Array.blit t.n_wait 0 counts 0 n;
    t.n_wait <- counts
  end

let w1_link t s =
  ensure_tag t s.src1_tag;
  let h = t.wait1.(s.src1_tag) in
  let p = h.w1_prev in
  s.w1_prev <- p;
  s.w1_next <- h;
  p.w1_next <- s;
  h.w1_prev <- s;
  t.n_wait.(s.src1_tag) <- t.n_wait.(s.src1_tag) + 1

(* Only ever called while [s] is linked, so [src1_tag] is still the tag
   whose list [s] is on (tags change only while a slot is off the lists). *)
let w1_remove t s =
  t.n_wait.(s.src1_tag) <- t.n_wait.(s.src1_tag) - 1;
  s.w1_prev.w1_next <- s.w1_next;
  s.w1_next.w1_prev <- s.w1_prev;
  s.w1_next <- s;
  s.w1_prev <- s

let w2_link t s =
  ensure_tag t s.src2_tag;
  let h = t.wait2.(s.src2_tag) in
  let p = h.w2_prev in
  s.w2_prev <- p;
  s.w2_next <- h;
  p.w2_next <- s;
  h.w2_prev <- s;
  t.n_wait.(s.src2_tag) <- t.n_wait.(s.src2_tag) + 1

let w2_remove t s =
  t.n_wait.(s.src2_tag) <- t.n_wait.(s.src2_tag) - 1;
  s.w2_prev.w2_next <- s.w2_next;
  s.w2_next.w2_prev <- s.w2_prev;
  s.w2_next <- s;
  s.w2_prev <- s

let rq_append t s =
  let p = t.rq.r_prev in
  s.r_prev <- p;
  s.r_next <- t.rq;
  p.r_next <- s;
  t.rq.r_prev <- s

let rq_remove s =
  s.r_prev.r_next <- s.r_next;
  s.r_next.r_prev <- s.r_prev;
  s.r_next <- s;
  s.r_prev <- s

let unlink t s =
  if s.w1_next != s then w1_remove t s;
  if s.w2_next != s then w2_remove t s;
  if s.r_next != s then rq_remove s

let dispatch t =
  if is_full t then failwith "Iq.dispatch: full";
  let s = t.arr.(t.count) in
  t.count <- t.count + 1;
  s.dead <- false;
  s.issued <- false;
  s.reusable <- false;
  s

(* Classify a slot onto the waiter lists and/or ready ring once its
   source tags are known. A store is select-ready as soon as its address
   operand resolves: the data operand rides along as a tag on the
   address-generation event. *)
let enqueue t s =
  if s.src1_tag >= 0 then w1_link t s;
  if s.src2_tag >= 0 then w2_link t s;
  if s.src1_tag < 0 && (s.src2_tag < 0 || s.is_store) then rq_append t s

let mark_issued t s =
  s.issued <- true;
  unlink t s

(* Reuse-path partial update: an issued buffered slot is renamed back to
   a fresh in-flight instance; the caller has already refreshed the
   source tags. *)
let mark_renamed t s =
  s.issued <- false;
  enqueue t s

let kill t s =
  if not s.dead then begin
    s.dead <- true;
    t.n_dead <- t.n_dead + 1
  end;
  unlink t s

(* Top-level (closure-free) waiter-list walks for {!wakeup}. *)
let rec wake1 t h value_i value_f (s : slot) =
  if s != h then begin
    let next = s.w1_next in
    w1_remove t s;
    s.src1_tag <- -1;
    s.src1_i <- value_i;
    s.src1_f <- value_f;
    if (s.src2_tag < 0 || s.is_store) && s.r_next == s then rq_append t s;
    wake1 t h value_i value_f next
  end

let rec wake2 t h value_i value_f (s : slot) =
  if s != h then begin
    let next = s.w2_next in
    w2_remove t s;
    s.src2_tag <- -1;
    s.src2_i <- value_i;
    s.src2_f <- value_f;
    if s.src1_tag < 0 && s.r_next == s then rq_append t s;
    wake2 t h value_i value_f next
  end

let wakeup t ~tag ~value_i ~value_f =
  (* Tags only change while a slot is off the lists, so membership in
     [wait1.(tag)] implies [src1_tag = tag] (resp. src2). Issued slots'
     sources are re-read at their next rename and are never linked. *)
  if tag < Array.length t.wait1 && t.n_wait.(tag) > 0 then begin
    let h1 = t.wait1.(tag) in
    wake1 t h1 value_i value_f h1.w1_next;
    let h2 = t.wait2.(tag) in
    wake2 t h2 value_i value_f h2.w2_next
  end

let compact t =
  if t.n_dead = 0 then 0
  else begin
    let orig_rptr = t.rptr in
    let dead_before = ref 0 in
    let w = ref 0 in
    let removed = ref 0 in
    for r = 0 to t.count - 1 do
      let s = t.arr.(r) in
      if s.dead then begin
        incr removed;
        if r < orig_rptr then incr dead_before
      end
      else begin
        if !w <> r then begin
          (* Swap the record references to keep slot objects unique. *)
          let tmp = t.arr.(!w) in
          t.arr.(!w) <- s;
          t.arr.(r) <- tmp
        end;
        incr w
      end
    done;
    t.count <- !w;
    t.n_dead <- 0;
    t.rptr <- orig_rptr - !dead_before;
    if t.rptr > t.count || t.rptr < 0 then t.rptr <- 0;
    !removed
  end

let reuse_ptr t = t.rptr
let set_reuse_ptr t i = t.rptr <- i

let first_reusable t =
  let rec go i = if i >= t.count then -1 else if t.arr.(i).reusable then i else go (i + 1) in
  go 0

let clear_classification t =
  for i = 0 to t.count - 1 do
    let s = t.arr.(i) in
    if s.reusable then begin
      s.reusable <- false;
      if s.issued then kill t s
    end
  done

let clear t =
  (* Unlink everything before dropping the slots. *)
  for i = 0 to t.count - 1 do
    unlink t t.arr.(i)
  done;
  t.count <- 0;
  t.rptr <- 0;
  t.n_dead <- 0

let squash_after t ~seq =
  for i = 0 to t.count - 1 do
    let s = t.arr.(i) in
    if (not s.dead) && s.seq > seq then begin
      if s.reusable then begin
        (* The in-flight instance dies but the buffered instruction
           remains; it is as if its last instance had already issued. *)
        if not s.issued then mark_issued t s
      end
      else kill t s
    end
  done
