open Riq_isa

type slot = {
  mutable seq : int;
  mutable rob_idx : int;
  mutable pc : int;
  mutable insn : Insn.t;
  mutable fu : Insn.fu_class;
  mutable src1_tag : int;
  mutable src1_i : int;
  mutable src1_f : float;
  mutable src2_tag : int;
  mutable src2_i : int;
  mutable src2_f : float;
  mutable issued : bool;
  mutable reusable : bool;
  mutable dead : bool;
  mutable pred_npc : int;
}

type t = { arr : slot array; size : int; mutable count : int; mutable rptr : int }

let fresh_slot () =
  {
    seq = -1;
    rob_idx = -1;
    pc = 0;
    insn = Insn.Nop;
    fu = Insn.FU_none;
    src1_tag = -1;
    src1_i = 0;
    src1_f = 0.;
    src2_tag = -1;
    src2_i = 0;
    src2_f = 0.;
    issued = false;
    reusable = false;
    dead = false;
    pred_npc = 0;
  }

let create size =
  if size < 1 then invalid_arg "Iq.create";
  { arr = Array.init size (fun _ -> fresh_slot ()); size; count = 0; rptr = 0 }

let size t = t.size
let count t = t.count
let free t = t.size - t.count
let is_full t = t.count = t.size
let slots t = t.arr

let dispatch t =
  if is_full t then failwith "Iq.dispatch: full";
  let s = t.arr.(t.count) in
  t.count <- t.count + 1;
  s.dead <- false;
  s.issued <- false;
  s.reusable <- false;
  s

let wakeup t ~tag ~value_i ~value_f =
  for i = 0 to t.count - 1 do
    let s = t.arr.(i) in
    if (not s.issued) && not s.dead then begin
      if s.src1_tag = tag then begin
        s.src1_tag <- -1;
        s.src1_i <- value_i;
        s.src1_f <- value_f
      end;
      if s.src2_tag = tag then begin
        s.src2_tag <- -1;
        s.src2_i <- value_i;
        s.src2_f <- value_f
      end
    end
  done

let compact t =
  let orig_rptr = t.rptr in
  let dead_before = ref 0 in
  let w = ref 0 in
  let removed = ref 0 in
  for r = 0 to t.count - 1 do
    let s = t.arr.(r) in
    if s.dead then begin
      incr removed;
      if r < orig_rptr then incr dead_before
    end
    else begin
      if !w <> r then begin
        (* Swap the record references to keep slot objects unique. *)
        let tmp = t.arr.(!w) in
        t.arr.(!w) <- s;
        t.arr.(r) <- tmp
      end;
      incr w
    end
  done;
  t.count <- !w;
  t.rptr <- orig_rptr - !dead_before;
  if t.rptr > t.count || t.rptr < 0 then t.rptr <- 0;
  !removed

let reuse_ptr t = t.rptr
let set_reuse_ptr t i = t.rptr <- i

let first_reusable t =
  let rec go i = if i >= t.count then -1 else if t.arr.(i).reusable then i else go (i + 1) in
  go 0

let clear_classification t =
  for i = 0 to t.count - 1 do
    let s = t.arr.(i) in
    if s.reusable then begin
      s.reusable <- false;
      if s.issued then s.dead <- true
    end
  done

let clear t =
  t.count <- 0;
  t.rptr <- 0

let squash_after t ~seq =
  for i = 0 to t.count - 1 do
    let s = t.arr.(i) in
    if (not s.dead) && s.seq > seq then begin
      if s.reusable then begin
        (* The in-flight instance dies but the buffered instruction
           remains; it is as if its last instance had already issued. *)
        if not s.issued then s.issued <- true
      end
      else s.dead <- true
    end
  done
