open Riq_isa

type pool = { busy_until : int array; mutable n_issued : int }

type t = { ialu : pool; imult : pool; fpalu : pool; fpmult : pool; mem : pool }

let make_pool n = { busy_until = Array.make n 0; n_issued = 0 }

let create ~n_ialu ~n_imult ~n_fpalu ~n_fpmult ~n_memport =
  {
    ialu = make_pool n_ialu;
    imult = make_pool n_imult;
    fpalu = make_pool n_fpalu;
    fpmult = make_pool n_fpmult;
    mem = make_pool n_memport;
  }

let pool_of t = function
  | Insn.FU_ialu -> Some t.ialu
  | FU_imult -> Some t.imult
  | FU_fpalu -> Some t.fpalu
  | FU_fpmult -> Some t.fpmult
  | FU_mem -> Some t.mem
  | FU_none -> None

(* Imperative scan: local refs compile to stack mutables, so the hot
   path allocates nothing. *)
let acquire_pool pool ~now ~latency ~pipelined =
  let n = Array.length pool.busy_until in
  let i = ref 0 in
  let got = ref false in
  while (not !got) && !i < n do
    if pool.busy_until.(!i) <= now then begin
      pool.busy_until.(!i) <- now + (if pipelined then 1 else latency);
      pool.n_issued <- pool.n_issued + 1;
      got := true
    end
    else incr i
  done;
  !got

let acquire t cls ~now ~latency ~pipelined =
  match cls with
  | Insn.FU_none -> true
  | FU_ialu -> acquire_pool t.ialu ~now ~latency ~pipelined
  | FU_imult -> acquire_pool t.imult ~now ~latency ~pipelined
  | FU_fpalu -> acquire_pool t.fpalu ~now ~latency ~pipelined
  | FU_fpmult -> acquire_pool t.fpmult ~now ~latency ~pipelined
  | FU_mem -> acquire_pool t.mem ~now ~latency ~pipelined

let issued_of t cls = match pool_of t cls with None -> 0 | Some pool -> pool.n_issued

(* Fast-forward support (see Processor's loop fast-forward): the pool
   state is a pure function of "cycles until free", so it can be compared
   and relocated relative to the current cycle. *)

let pools t = [| t.ialu; t.imult; t.fpalu; t.fpmult; t.mem |]

let ffwd_busy_rel t ~now =
  let out = ref [] in
  let ps = pools t in
  for p = Array.length ps - 1 downto 0 do
    let b = ps.(p).busy_until in
    for i = Array.length b - 1 downto 0 do
      out := (if b.(i) > now then b.(i) - now else 0) :: !out
    done
  done;
  !out

let ffwd_rebase t ~old_now ~new_now =
  let ps = pools t in
  Array.iter
    (fun p ->
      let b = p.busy_until in
      for i = 0 to Array.length b - 1 do
        b.(i) <- new_now + if b.(i) > old_now then b.(i) - old_now else 0
      done)
    ps

let ffwd_counters t = Array.map (fun p -> p.n_issued) (pools t)

let ffwd_set_counters t v = Array.iteri (fun i p -> p.n_issued <- v.(i)) (pools t)
