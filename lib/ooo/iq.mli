open Riq_isa

(** The unified issue queue, including the paper's reuse augmentations.

    The queue is a {e collapsing} structure: slots [0 .. count-1] of
    {!slots} are valid and ordered oldest-first (program order of their
    current dynamic instances). Conventional entries are marked dead when
    they issue and are removed by {!compact} (one pass per cycle); entries
    with the {e classification bit} ({!field-reusable}) set survive issue —
    their {e issue-state bit} ({!field-issued}) is set instead, exactly as
    in Section 2.2 of the paper.

    Operand values are captured into the slot (at dispatch for
    already-ready operands, at {!wakeup} otherwise), so a slot never reads
    a ROB entry after issue — necessary because P6-style ROB slots are
    recycled at commit.

    The per-slot [pred_npc] field holds, for control instructions, the
    next-PC prediction that was made for the buffered instance; reuse-mode
    re-dispatch uses it as the paper's static prediction. *)

type slot = {
  mutable seq : int; (** current dynamic instance *)
  mutable rob_idx : int;
  mutable pc : int;
  mutable wi : int;
      (** decoded word index ([(pc - text_base) / 4]); the slot's pointer
          into the packed side tables *)
  mutable fu : Insn.fu_class;
  mutable lat : int; (** execution latency, cached at rename *)
  mutable pipe : bool; (** functional unit pipelined for this op *)
  mutable is_mem : bool;
  mutable is_store : bool;
  mutable src1_tag : int; (** ROB index the operand waits on; -1 = ready *)
  mutable src1_i : int;
  mutable src1_f : float;
  mutable src2_tag : int;
  mutable src2_i : int;
  mutable src2_f : float;
  mutable issued : bool; (** issue-state bit *)
  mutable reusable : bool; (** classification bit *)
  mutable dead : bool; (** removed at the next {!compact} *)
  mutable pred_npc : int;
  mutable w1_next : slot;
      (** intrusive per-tag waiter-list link for the first source operand
          (the set {!wakeup} walks for that tag); self-linked = not on a
          list. Maintained by the queue operations — callers change issue
          state through {!enqueue}/{!mark_issued}/{!mark_renamed}/{!kill},
          never by writing [issued]/[dead] directly. *)
  mutable w1_prev : slot;
  mutable w2_next : slot;  (** waiter-list link, second source operand *)
  mutable w2_prev : slot;
  mutable r_next : slot;
      (** intrusive ready-ring link (unissued live slots whose operands
          are select-ready — the set the issue stage walks); self-linked =
          not in the ring. A store whose address operand is ready but
          whose data is still in flight sits on both a waiter list and
          the ready ring. *)
  mutable r_prev : slot;
}

type t

val create : int -> t
val size : t -> int
val count : t -> int
val free : t -> int
val is_full : t -> bool

val slots : t -> slot array
(** The backing array; only indices [0 .. count-1] are meaningful. *)

val dispatch : t -> slot
(** Claim the next slot (appended at the tail, preserving age order) and
    return it for the caller to fill. The slot joins no ring yet: call
    {!enqueue} once the source tags are resolved. Raises [Failure] when
    full. *)

val enqueue : t -> slot -> unit
(** Classify a freshly filled slot into the wait and/or ready rings based
    on its current source tags. Must be called exactly once after
    {!dispatch} (once the tags are known); {!mark_renamed} performs it
    implicitly. *)

val ready : t -> slot
(** Sentinel of the ready ring: the select-ready unissued slots are
    [r_next .. ] until the sentinel recurs. The issue stage walks this
    ring instead of scanning the whole array. *)

val mark_issued : t -> slot -> unit
(** Set the issue-state bit and leave both rings. *)

val mark_renamed : t -> slot -> unit
(** Reuse-mode partial update: an issued buffered slot becomes a fresh
    unissued in-flight instance and rejoins the rings according to the
    source tags the caller just refreshed. *)

val kill : t -> slot -> unit
(** Mark a slot dead (removed by the next {!compact}) and drop it from
    both rings. *)

val wakeup : t -> tag:int -> value_i:int -> value_f:float -> unit
(** Result broadcast: every un-issued slot waiting on [tag] captures the
    value and marks that operand ready. *)

val compact : t -> int
(** Remove dead slots, preserving order; returns the number removed (the
    power model charges the collapse writes). *)

val reuse_ptr : t -> int
(** The paper's reuse pointer: index of the next buffered slot to
    re-dispatch in Code Reuse state. Maintained across {!compact}. *)

val set_reuse_ptr : t -> int -> unit

val first_reusable : t -> int
(** Index of the oldest slot with the classification bit set, or -1. *)

val clear_classification : t -> unit
(** Revoke support: for every reusable slot, clear the classification bit;
    slots whose instance has already issued are marked dead (they exist
    only for future reuse, which is being cancelled). *)

val clear : t -> unit
(** Empty the queue outright (no per-slot power charges) — the end-of-run
    drain once the halt instruction commits. *)

val squash_after : t -> seq:int -> unit
(** Conventional misprediction recovery: conventional slots younger than
    [seq] are marked dead. Reusable slots younger than [seq] are {e reset
    to issued} — their squashed in-flight instance disappears, but the
    buffered instruction itself stays available for reuse (or for the
    revoke that typically follows). *)
