open Riq_mem
open Riq_branch

(** Machine configuration of the modelled superscalar processor.

    {!baseline} is Table 1 of the paper; the experiment sweeps derive the
    other configurations with {!with_iq_size} (which also sets
    ROB = issue queue size and LSQ = half of it, as the paper does). *)

type t = {
  fetch_queue : int; (** fetch buffer entries (4) *)
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  iq_entries : int;
  rob_entries : int;
  lsq_entries : int;
  n_ialu : int;
  n_imult : int;
  n_fpalu : int;
  n_fpmult : int;
  n_memport : int; (** L1D ports *)
  mem : Hierarchy.config;
  bpred : Predictor.config;
  reuse_enabled : bool; (** the paper's mechanism on/off *)
  nblt_entries : int; (** 0 disables the NBLT *)
  buffer_multiple_iterations : bool;
      (** Section 2.2.1: strategy 2 (true, the paper's choice) buffers
          iterations while they fit; strategy 1 (false) buffers exactly one
          iteration. *)
  loop_cache_entries : int;
      (** 0 disables. Related-work baseline (Lee/Moyer/Arends, ISLPED'99):
          a fetch-side buffer that captures short backward-branch loops and
          supplies instructions instead of the L1I — but, unlike the
          paper's issue-queue reuse, leaves branch prediction and decode
          running. *)
  skip_ahead : bool;
      (** Simulator-only fast path (no timing/power effect): when the
          pipeline is provably quiescent and the writeback event wheel
          knows the next wakeup, advance the cycle counter with a lean
          per-cycle loop instead of running the full stage machinery. *)
  loop_ffwd : bool;
      (** Simulator-only fast path (no timing/power effect): once a
          buffered loop's per-iteration timing signature has repeated for
          {!field-ffwd_verify_periods} consecutive iterations, replay
          further iterations analytically and drop back to cycle-accurate
          mode on any deviation. Disabled automatically while a tracer is
          attached. *)
  ffwd_verify_periods : int;
      (** Consecutive identical iteration periods required before the
          fast-forward replay may engage (>= 2; default 3). *)
}

val baseline : t
(** Table 1, reuse disabled (the conventional issue queue). *)

val reuse : t
(** Table 1 with the proposed issue queue enabled (8-entry NBLT,
    multiple-iteration buffering). *)

val loop_cache : int -> t
(** Table 1 with an [n]-entry loop cache instead of the reuse mechanism
    (related-work comparison). *)

val filter_cache : unit -> t
(** Table 1 with a 512-byte direct-mapped L0 instruction (filter) cache in
    front of the L1I (related-work comparison). *)

val with_iq_size : t -> int -> t
(** Scale the window: issue queue and ROB to [n], load/store queue to
    [n/2]. *)

val power_geometry : t -> Riq_power.Model.geometry

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent configurations. *)

val pp : Format.formatter -> t -> unit
(** Render the configuration as the paper's Table 1. *)
