
(** Reorder buffer.

    A circular buffer of in-flight instructions in program order. Results
    live here until commit (P6-style renaming): the map table points
    logical registers at ROB indices. Misprediction recovery squashes the
    tail and then rebuilds the map table by scanning the surviving entries
    oldest-first — simpler than per-entry previous-mapping chains and
    immune to the stale-pointer hazard those create when a producer
    commits before its consumer is squashed.

    Entry records are allocated once and reused in place; an index returned
    by {!alloc} is valid until the entry commits or is squashed. The [seq]
    field disambiguates reallocation: consumers that hold an index across
    cycles must check that the sequence number still matches. *)

type entry = {
  mutable seq : int; (** global dynamic sequence number *)
  mutable pc : int;
  mutable wi : int; (** decoded word index into the packed side tables *)
  mutable completed : bool;
  mutable value_i : int; (** integer result *)
  mutable value_f : float; (** FP result *)
  mutable dest : int; (** logical destination register, or -1 *)
  mutable is_store : bool;
  mutable lsq_idx : int; (** LSQ slot for memory operations, or -1 *)
  mutable is_ctrl : bool;
  mutable pred_npc : int; (** next PC predicted at fetch *)
  mutable actual_npc : int; (** computed at execute *)
  mutable taken : bool;
  mutable ras_ck : int; (** predictor checkpoint for recovery *)
  mutable from_reuse : bool; (** dispatched by the reuse engine *)
}

type t

val create : int -> t
val size : t -> int
val count : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val alloc : t -> int
(** Claim the tail entry and return its index; fields must be filled by the
    caller. Raises [Failure] when full. *)

val entry : t -> int -> entry

val head : t -> int
(** Index of the oldest entry. Meaningless when empty. *)

val head_entry : t -> entry option

val pop_head : t -> unit
(** Retire the oldest entry. *)

val squash_after : t -> seq:int -> f:(int -> entry -> unit) -> unit
(** Remove every entry younger than [seq] (strictly), youngest first,
    calling [f idx entry] on each before it is freed. *)

val iter_youngest_first : t -> (int -> entry -> unit) -> unit
val iter_oldest_first : t -> (int -> entry -> unit) -> unit
