
type entry = {
  mutable seq : int;
  mutable pc : int;
  mutable wi : int;
  mutable completed : bool;
  mutable value_i : int;
  mutable value_f : float;
  mutable dest : int;
  mutable is_store : bool;
  mutable lsq_idx : int;
  mutable is_ctrl : bool;
  mutable pred_npc : int;
  mutable actual_npc : int;
  mutable taken : bool;
  mutable ras_ck : int;
  mutable from_reuse : bool;
}

type t = {
  entries : entry array;
  size : int;
  mutable head : int;
  mutable tail : int; (* next free slot *)
  mutable count : int;
}

let fresh_entry () =
  {
    seq = -1;
    pc = 0;
    wi = -1;
    completed = false;
    value_i = 0;
    value_f = 0.;
    dest = -1;
    is_store = false;
    lsq_idx = -1;
    is_ctrl = false;
    pred_npc = 0;
    actual_npc = 0;
    taken = false;
    ras_ck = 0;
    from_reuse = false;
  }

let create size =
  if size < 1 then invalid_arg "Rob.create";
  { entries = Array.init size (fun _ -> fresh_entry ()); size; head = 0; tail = 0; count = 0 }

let size t = t.size
let count t = t.count
let is_full t = t.count = t.size
let is_empty t = t.count = 0

let alloc t =
  if is_full t then failwith "Rob.alloc: full";
  let idx = t.tail in
  t.tail <- (t.tail + 1) mod t.size;
  t.count <- t.count + 1;
  idx

let entry t idx = t.entries.(idx)
let head t = t.head
let head_entry t = if is_empty t then None else Some t.entries.(t.head)

let pop_head t =
  if is_empty t then failwith "Rob.pop_head: empty";
  t.entries.(t.head).seq <- -1;
  t.head <- (t.head + 1) mod t.size;
  t.count <- t.count - 1

let squash_after t ~seq ~f =
  let continue_ = ref true in
  while !continue_ && t.count > 0 do
    let last = (t.tail + t.size - 1) mod t.size in
    let e = t.entries.(last) in
    if e.seq > seq then begin
      f last e;
      e.seq <- -1;
      t.tail <- last;
      t.count <- t.count - 1
    end
    else continue_ := false
  done

let iter_youngest_first t f =
  for i = 0 to t.count - 1 do
    let idx = (t.tail + (t.size * 2) - 1 - i) mod t.size in
    f idx t.entries.(idx)
  done

let iter_oldest_first t f =
  for i = 0 to t.count - 1 do
    let idx = (t.head + i) mod t.size in
    f idx t.entries.(idx)
  done
