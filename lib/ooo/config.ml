open Riq_mem
open Riq_branch

type t = {
  fetch_queue : int;
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  iq_entries : int;
  rob_entries : int;
  lsq_entries : int;
  n_ialu : int;
  n_imult : int;
  n_fpalu : int;
  n_fpmult : int;
  n_memport : int;
  mem : Hierarchy.config;
  bpred : Predictor.config;
  reuse_enabled : bool;
  nblt_entries : int;
  buffer_multiple_iterations : bool;
  loop_cache_entries : int;
  skip_ahead : bool;
  loop_ffwd : bool;
  ffwd_verify_periods : int;
}

let baseline =
  {
    fetch_queue = 4;
    fetch_width = 4;
    decode_width = 4;
    issue_width = 4;
    commit_width = 4;
    iq_entries = 64;
    rob_entries = 64;
    lsq_entries = 32;
    n_ialu = 4;
    n_imult = 1;
    n_fpalu = 4;
    n_fpmult = 1;
    n_memport = 2;
    mem = Hierarchy.baseline;
    bpred = Predictor.baseline;
    reuse_enabled = false;
    nblt_entries = 8;
    buffer_multiple_iterations = true;
    loop_cache_entries = 0;
    skip_ahead = true;
    loop_ffwd = true;
    ffwd_verify_periods = 3;
  }

let reuse = { baseline with reuse_enabled = true }

let loop_cache n =
  if n < 4 then invalid_arg "Config.loop_cache: too small";
  { baseline with loop_cache_entries = n }

let filter_cache () =
  let l0 = Cache.config ~name:"il0" ~sets:16 ~ways:1 ~line_bytes:32 ~hit_latency:1 in
  { baseline with mem = { baseline.mem with Hierarchy.l0i = Some l0 } }

let with_iq_size t n =
  if n < 8 then invalid_arg "Config.with_iq_size: issue queue too small";
  { t with iq_entries = n; rob_entries = n; lsq_entries = max 4 (n / 2) }

let power_geometry t =
  {
    Riq_power.Model.iq_entries = t.iq_entries;
    rob_entries = t.rob_entries;
    lsq_entries = t.lsq_entries;
    fetch_width = t.fetch_width;
    issue_width = t.issue_width;
    icache = t.mem.Hierarchy.l1i;
    dcache = t.mem.Hierarchy.l1d;
    l2 = t.mem.Hierarchy.l2;
    itlb = t.mem.Hierarchy.itlb;
    dtlb = t.mem.Hierarchy.dtlb;
    bpred = t.bpred;
    nblt_entries = t.nblt_entries;
    l0_icache = t.mem.Hierarchy.l0i;
    loop_cache_entries = t.loop_cache_entries;
  }

let validate t =
  let pos name v = if v < 1 then invalid_arg ("Config: " ^ name ^ " must be positive") in
  pos "fetch_queue" t.fetch_queue;
  pos "fetch_width" t.fetch_width;
  pos "decode_width" t.decode_width;
  pos "issue_width" t.issue_width;
  pos "commit_width" t.commit_width;
  pos "iq_entries" t.iq_entries;
  pos "rob_entries" t.rob_entries;
  pos "lsq_entries" t.lsq_entries;
  pos "n_ialu" t.n_ialu;
  pos "n_imult" t.n_imult;
  pos "n_fpalu" t.n_fpalu;
  pos "n_fpmult" t.n_fpmult;
  pos "n_memport" t.n_memport;
  if t.nblt_entries < 0 then invalid_arg "Config: nblt_entries must be >= 0";
  if t.loop_cache_entries < 0 then invalid_arg "Config: loop_cache_entries must be >= 0";
  if t.reuse_enabled && t.loop_cache_entries > 0 then
    invalid_arg "Config: the reuse issue queue and the loop cache are alternatives";
  if t.rob_entries < t.iq_entries then
    invalid_arg "Config: ROB must be at least as large as the issue queue";
  if t.ffwd_verify_periods < 2 then
    invalid_arg "Config: ffwd_verify_periods must be >= 2 (two period deltas are needed)"

let pp ppf t =
  let cache_line name (c : Cache.config) =
    Format.asprintf "%s: %d KB, %d way, %d cycle%s" name
      (Cache.size_bytes c / 1024)
      c.Cache.ways c.Cache.hit_latency
      (if c.Cache.hit_latency > 1 then "s" else "")
  in
  Format.fprintf ppf "Issue Queue        %d entries@." t.iq_entries;
  Format.fprintf ppf "Load/Store Queue   %d entries@." t.lsq_entries;
  Format.fprintf ppf "ROB                %d entries@." t.rob_entries;
  Format.fprintf ppf "Fetch Queue        %d entries@." t.fetch_queue;
  Format.fprintf ppf "Fetch/Decode Width %d inst. per cycle@." t.fetch_width;
  Format.fprintf ppf "Issue/Commit Width %d inst. per cycle@." t.issue_width;
  Format.fprintf ppf "Function Units     %d IALU, %d IMULT, %d FPALU, %d FPMULT@." t.n_ialu
    t.n_imult t.n_fpalu t.n_fpmult;
  (match t.bpred.Predictor.scheme with
  | Predictor.Bimodal ->
      Format.fprintf ppf "Branch Predictor   bimod, %d entries, RAS %d entries@."
        t.bpred.Predictor.entries t.bpred.Predictor.ras_size
  | Predictor.Gshare { history_bits } ->
      Format.fprintf ppf "Branch Predictor   gshare, %d entries, %d-bit history, RAS %d@."
        t.bpred.Predictor.entries history_bits t.bpred.Predictor.ras_size);
  Format.fprintf ppf "BTB                %d set %d way assoc.@." t.bpred.Predictor.btb_sets
    t.bpred.Predictor.btb_ways;
  Format.fprintf ppf "%s@." (cache_line "L1 ICache" t.mem.Hierarchy.l1i);
  Format.fprintf ppf "%s@." (cache_line "L1 DCache" t.mem.Hierarchy.l1d);
  Format.fprintf ppf "%s@." (cache_line "L2 UCache" t.mem.Hierarchy.l2);
  Format.fprintf ppf "TLB                ITLB: %d set %d way, DTLB: %d set %d way@."
    t.mem.Hierarchy.itlb.Cache.sets t.mem.Hierarchy.itlb.Cache.ways
    t.mem.Hierarchy.dtlb.Cache.sets t.mem.Hierarchy.dtlb.Cache.ways;
  Format.fprintf ppf "                   4KB page size, %d cycle penalty@."
    t.mem.Hierarchy.tlb_miss_penalty;
  Format.fprintf ppf "Memory             %d cycles for first chunk, %d cycles the rest@."
    t.mem.Hierarchy.mem_first_chunk t.mem.Hierarchy.mem_next_chunk
