type entry = {
  mutable seq : int;
  mutable rob_idx : int;
  mutable is_store : bool;
  mutable is_fp : bool;
  mutable addr_ready : bool;
  mutable addr : int;
  mutable width : int;
  mutable data_ready : bool;
  mutable data_tag : int;
  mutable data_i : int;
  mutable data_f : float;
  mutable live : bool;
}

type t = {
  arr : entry array;
  size : int;
  mutable head : int;
  mutable tail : int;
  mutable count : int;
  mutable n_tagged : int; (* live stores with an outstanding data tag *)
}

let fresh () =
  {
    seq = -1;
    rob_idx = -1;
    is_store = false;
    is_fp = false;
    addr_ready = false;
    addr = 0;
    width = 4;
    data_ready = false;
    data_tag = -1;
    data_i = 0;
    data_f = 0.;
    live = false;
  }

let create size =
  if size < 1 then invalid_arg "Lsq.create";
  { arr = Array.init size (fun _ -> fresh ()); size; head = 0; tail = 0; count = 0; n_tagged = 0 }

let size t = t.size
let count t = t.count
let is_full t = t.count = t.size

let alloc t =
  if is_full t then failwith "Lsq.alloc: full";
  let idx = t.tail in
  let e = t.arr.(idx) in
  e.live <- true;
  e.addr_ready <- false;
  e.width <- 4;
  e.data_ready <- false;
  e.data_tag <- -1;
  t.tail <- (t.tail + 1) mod t.size;
  t.count <- t.count + 1;
  idx

let entry t idx = t.arr.(idx)

(* Tag writes go through here so {!capture_data} can skip its walk when
   no store is waiting on a broadcast at all (the common case). *)
let wait_data t e ~tag =
  e.data_tag <- tag;
  t.n_tagged <- t.n_tagged + 1

let untag t e =
  if e.data_tag >= 0 then begin
    e.data_tag <- -1;
    t.n_tagged <- t.n_tagged - 1
  end

type load_check = Forward of entry | Wait | Access

let overlaps a aw b bw = a < b + bw && b < a + aw

let check_load t ~idx ~addr ~width =
  (* Walk from the slot just older than [idx] back to the head. *)
  let result = ref Access in
  let pos = ref ((idx + t.size - 1) mod t.size) in
  let continue_ = ref (t.count > 0 && idx <> t.head) in
  while !continue_ do
    let e = t.arr.(!pos) in
    if e.live && e.is_store then begin
      if not e.addr_ready then begin
        result := Wait;
        continue_ := false
      end
      else if e.addr = addr && e.width = width then begin
        result := (if e.data_ready then Forward e else Wait);
        continue_ := false
      end
      else if overlaps e.addr e.width addr width then begin
        (* Partial overlap: no forwarding path; wait until the store
           commits and leaves the queue. *)
        result := Wait;
        continue_ := false
      end
    end;
    if !continue_ then begin
      if !pos = t.head then continue_ := false
      else pos := (!pos + t.size - 1) mod t.size
    end
  done;
  !result

let capture_data t ~tag ~value_i ~value_f =
  (* Only live entries can wait on a tag, so walk the occupied window;
     capture order is irrelevant downstream (distinct sequence numbers). *)
  if t.n_tagged = 0 then []
  else begin
    let captured = ref [] in
    let pos = ref t.head in
    for _ = 1 to t.count do
      let e = t.arr.(!pos) in
      if e.is_store && e.data_tag = tag then begin
        e.data_tag <- -1;
        t.n_tagged <- t.n_tagged - 1;
        e.data_ready <- true;
        e.data_i <- value_i;
        e.data_f <- value_f;
        captured := (e.rob_idx, e.seq) :: !captured
      end;
      pos := !pos + 1;
      if !pos = t.size then pos := 0
    done;
    !captured
  end

let head_is t idx = t.count > 0 && idx = t.head

let pop_head t =
  if t.count = 0 then failwith "Lsq.pop_head: empty";
  untag t t.arr.(t.head);
  t.arr.(t.head).live <- false;
  t.arr.(t.head).seq <- -1;
  t.head <- (t.head + 1) mod t.size;
  t.count <- t.count - 1

let squash_after t ~seq =
  let continue_ = ref true in
  while !continue_ && t.count > 0 do
    let last = (t.tail + t.size - 1) mod t.size in
    let e = t.arr.(last) in
    if e.live && e.seq > seq then begin
      untag t e;
      e.live <- false;
      e.seq <- -1;
      t.tail <- last;
      t.count <- t.count - 1
    end
    else continue_ := false
  done
