open Riq_isa

(** Function-unit pool: Table 1's 4 IALU, 1 IMULT, 4 FPALU, 1 FPMULT, plus
    the data-cache ports used by loads and stores for address generation.

    Pipelined units accept a new operation every cycle; non-pipelined ones
    (divides, square root) block their unit for the operation's full
    latency. [FU_none] (nop/halt) always succeeds. *)

type t

val create :
  n_ialu:int -> n_imult:int -> n_fpalu:int -> n_fpmult:int -> n_memport:int -> t

val acquire : t -> Insn.fu_class -> now:int -> latency:int -> pipelined:bool -> bool
(** Reserve a unit of the class for an operation starting this cycle;
    false when all units of the class are busy. *)

val issued_of : t -> Insn.fu_class -> int
(** Total operations accepted per class (power/statistics). *)

(** {2 Fast-forward support}

    The busy state of every unit is a pure function of "cycles until
    free", so the loop fast-forward (Processor) can snapshot it relative
    to the current cycle, compare across iteration boundaries, and
    relocate it after an analytic time jump. *)

val ffwd_busy_rel : t -> now:int -> int list
(** Per-unit [max (busy_until - now) 0], in a fixed pool order. *)

val ffwd_rebase : t -> old_now:int -> new_now:int -> unit
(** Translate every unit's [busy_until] from [old_now]-relative to
    [new_now]-relative (free units stay free). *)

val ffwd_counters : t -> int array
(** Per-pool issue counters, for affine (constant-stride) relocation. *)

val ffwd_set_counters : t -> int array -> unit
