open Riq_workloads

(** The issue-queue size sweep shared by Figures 5-8: every benchmark at
    every queue size, with and without the reuse mechanism (ROB = queue
    size, LSQ = half, as in the paper's Section 3). Results are computed
    once and reused by all figure printers.

    Since the experiment engine landed, the sweep is submitted as one job
    batch: pass [engine] to parallelize it over worker processes and/or
    serve cells from the on-disk result cache. Cell values are
    bit-identical whatever the worker count. *)

type cell = { baseline : Run.result; reuse : Run.result }

type t = {
  sizes : int list;
  benchmarks : Workloads.t list;
  cells : (string * (int * cell) list) list; (** benchmark name -> per-size *)
}

val default_sizes : int list
(** [32; 64; 128; 256], the paper's sweep. *)

val jobs :
  ?sizes:int list -> ?benchmarks:Workloads.t list -> ?check:bool -> unit ->
  Riq_exp.Job.t array
(** The sweep's job batch in its canonical order (benchmark-major, then
    size, baseline before reuse) — exposed for tooling that wants to
    inspect or prewarm the cache. *)

val run :
  ?engine:Riq_exp.Engine.t ->
  ?sizes:int list -> ?benchmarks:Workloads.t list -> ?check:bool ->
  ?progress:(string -> unit) -> unit -> t
(** [engine] defaults to a transient sequential engine without caching
    (the historical behaviour). [check] (default true) runs the
    differential validation on every simulation. [progress] is called
    with a short label per cell at submission time; live completion
    progress comes from the engine's [on_progress]. Raises [Failure] if
    any cell fails (see {!Run.error}). *)

val cell : t -> bench:string -> size:int -> cell

val to_json : ?engine:Riq_exp.Engine.t -> t -> Riq_util.Json.t
(** Machine-readable export: per-cell simulator statistics and power
    groups plus derived percentages, and — when [engine] is given — its
    cache/execution statistics plus any backend telemetry (for a remote
    backend, the service's hit/miss, queue-depth, batching and store
    counters) ([schema = "riq-sweep/2"]). *)
