open Riq_util
open Riq_ooo
open Riq_core
open Riq_workloads
open Riq_exp

let table1 () = Format.asprintf "%a" Config.pp Config.baseline

let table2 () =
  let t =
    Table.create ~title:"Table 2. Array-intensive applications."
      [ ("Name", Table.Left); ("Source", Table.Left); ("Description", Table.Left) ]
  in
  List.iter
    (fun w -> Table.add_row t [ w.Workloads.name; w.Workloads.source; w.Workloads.description ])
    Workloads.all;
  t

let size_cols sizes =
  ("Benchmark", Table.Left) :: List.map (fun s -> (Printf.sprintf "IQ %d" s, Table.Right)) sizes

(* One row per benchmark, one column per size, plus an average row. *)
let per_bench_table ~title ~digits sweep value =
  let t = Table.create ~title (size_cols sweep.Sweep.sizes) in
  let sums = Array.make (List.length sweep.Sweep.sizes) 0. in
  List.iter
    (fun (bench, per_size) ->
      let cells =
        List.mapi
          (fun i (_, c) ->
            let v = value c in
            sums.(i) <- sums.(i) +. v;
            Table.cell_pct ~digits v)
          per_size
      in
      Table.add_row t (bench :: cells))
    sweep.Sweep.cells;
  Table.add_sep t;
  let n = float_of_int (List.length sweep.Sweep.cells) in
  Table.add_row t
    ("average" :: Array.to_list (Array.map (fun s -> Table.cell_pct ~digits (s /. n)) sums));
  t

let fig5 sweep =
  per_bench_table
    ~title:
      "Figure 5. Percentage of total execution cycles with the pipeline front-end gated."
    ~digits:1 sweep
    (fun c -> 100. *. c.Sweep.reuse.Run.stats.Processor.gated_fraction)

let fig7 sweep =
  per_bench_table ~title:"Figure 7. Overall power (per cycle) reduction." ~digits:1 sweep
    (fun c -> Run.reduction c.Sweep.baseline.Run.total_power c.Sweep.reuse.Run.total_power)

let fig8 sweep =
  per_bench_table ~title:"Figure 8. Performance (IPC) degradation." ~digits:2 sweep (fun c ->
      Run.reduction c.Sweep.baseline.Run.stats.Processor.ipc
        c.Sweep.reuse.Run.stats.Processor.ipc)

(* Static bufferability analysis vs. dynamic measurement: for every
   benchmark and queue size, the reuse coverage (percent of committed
   instructions supplied by the issue queue) as the analyzer predicts it
   and as the simulator measures it. *)
let coverage sweep =
  let cols =
    ("Benchmark", Table.Left)
    :: List.concat_map
         (fun s ->
           [ (Printf.sprintf "IQ %d pred" s, Table.Right); ("meas", Table.Right) ])
         sweep.Sweep.sizes
  in
  let t =
    Table.create
      ~title:
        "Static bufferability analysis: predicted vs. measured reuse coverage \
         (percent of committed instructions supplied by the issue queue)."
      cols
  in
  List.iter
    (fun (bench, per_size) ->
      let w = Workloads.find bench in
      let program = Workloads.program w in
      let cells =
        List.concat_map
          (fun (size, c) ->
            let cfg = Config.with_iq_size Config.reuse size in
            let report = Riq_analysis.Bufferability.analyze_config cfg program in
            let predicted =
              Option.value ~default:0. report.Riq_analysis.Bufferability.coverage
            in
            let s = c.Sweep.reuse.Run.stats in
            let measured =
              if s.Processor.committed = 0 then 0.
              else
                100.
                *. float_of_int s.Processor.reuse_committed
                /. float_of_int s.Processor.committed
            in
            [ Table.cell_pct ~digits:1 predicted; Table.cell_pct ~digits:1 measured ])
          per_size
      in
      Table.add_row t (bench :: cells))
    sweep.Sweep.cells;
  t

let fig6 sweep =
  let t =
    Table.create
      ~title:
        "Figure 6. Power reduction in the instruction cache, branch predictor and issue\n\
         queue, and overhead power (share of total), averaged over the benchmarks."
      (("Series", Table.Left)
      :: List.map (fun s -> (Printf.sprintf "IQ %d" s, Table.Right)) sweep.Sweep.sizes)
  in
  let avg f =
    List.map
      (fun size ->
        let vals =
          List.map (fun (bench, _) -> f (Sweep.cell sweep ~bench ~size)) sweep.Sweep.cells
        in
        Stats.mean (Array.of_list vals))
      sweep.Sweep.sizes
  in
  let row name vals = Table.add_row t (name :: List.map (Table.cell_pct ~digits:1) vals) in
  row "Icache"
    (avg (fun c -> Run.reduction c.Sweep.baseline.Run.icache_power c.Sweep.reuse.Run.icache_power));
  row "Bpred"
    (avg (fun c -> Run.reduction c.Sweep.baseline.Run.bpred_power c.Sweep.reuse.Run.bpred_power));
  row "IssueQueue"
    (avg (fun c -> Run.reduction c.Sweep.baseline.Run.iq_power c.Sweep.reuse.Run.iq_power));
  row "Overhead"
    (avg (fun c -> 100. *. c.Sweep.reuse.Run.overhead_power /. c.Sweep.reuse.Run.total_power));
  t

(* ------------------------------------------------------------------ *)
(* Ablations: each builds one job batch over all benchmarks and hands   *)
(* it to the engine, so a parallel/cached engine accelerates them the   *)
(* same way it accelerates the main sweep. [per_bench] runs [variants]  *)
(* jobs per benchmark and gives the row printer that benchmark's slice. *)
(* ------------------------------------------------------------------ *)

let per_bench ?engine ~jobs_of row_of =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let specs = List.map (fun w -> (w, jobs_of w)) Workloads.all in
  let batch = Array.of_list (List.concat_map snd specs) in
  let results = Engine.run_exn engine batch in
  let off = ref 0 in
  List.iter
    (fun (w, jobs) ->
      let slice = Array.sub results !off (List.length jobs) in
      off := !off + List.length jobs;
      row_of w slice)
    specs

let fig9 ?engine ?(check = true) () =
  let t =
    Table.create
      ~title:
        "Figure 9. Impact of compiler optimizations (loop distribution), 64-entry issue\n\
         queue: overall power reduction, gated cycles and performance loss."
      [
        ("Benchmark", Table.Left);
        ("Power red. (orig)", Table.Right);
        ("Power red. (opt)", Table.Right);
        ("Gated (orig)", Table.Right);
        ("Gated (opt)", Table.Right);
        ("IPC loss (orig)", Table.Right);
        ("IPC loss (opt)", Table.Right);
      ]
  in
  let acc = Array.make 6 0. in
  per_bench ?engine
    ~jobs_of:(fun w ->
      let orig = Workloads.program w and opt = Workloads.optimized w in
      [
        Job.make ~check Config.baseline orig;
        Job.make ~check Config.reuse orig;
        Job.make ~check Config.baseline opt;
        Job.make ~check Config.reuse opt;
      ])
    (fun w r ->
      let bo = r.(0) and ro = r.(1) and bp = r.(2) and rp = r.(3) in
      let vals =
        [|
          Run.reduction bo.Run.total_power ro.Run.total_power;
          Run.reduction bp.Run.total_power rp.Run.total_power;
          100. *. ro.Run.stats.Processor.gated_fraction;
          100. *. rp.Run.stats.Processor.gated_fraction;
          Run.reduction bo.Run.stats.Processor.ipc ro.Run.stats.Processor.ipc;
          Run.reduction bp.Run.stats.Processor.ipc rp.Run.stats.Processor.ipc;
        |]
      in
      Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) vals;
      Table.add_row t
        (w.Workloads.name :: Array.to_list (Array.map (Table.cell_pct ~digits:1) vals)));
  Table.add_sep t;
  let n = float_of_int (List.length Workloads.all) in
  Table.add_row t
    ("average" :: Array.to_list (Array.map (fun v -> Table.cell_pct ~digits:1 (v /. n)) acc));
  t

let nblt_ablation ?engine ?(check = true) () =
  let t =
    Table.create
      ~title:
        "NBLT ablation (Section 3 text): buffering attempts that end in a revoke, with\n\
         and without the 8-entry non-bufferable loop table (64-entry issue queue)."
      [
        ("Benchmark", Table.Left);
        ("Revoke rate (no NBLT)", Table.Right);
        ("Revoke rate (NBLT 8)", Table.Right);
        ("Gated (no NBLT)", Table.Right);
        ("Gated (NBLT 8)", Table.Right);
      ]
  in
  per_bench ?engine
    ~jobs_of:(fun w ->
      let prog = Workloads.program w in
      [
        Job.make ~check { Config.reuse with Config.nblt_entries = 0 } prog;
        Job.make ~check { Config.reuse with Config.nblt_entries = 8 } prog;
      ])
    (fun w r ->
      let without = r.(0) and with_ = r.(1) in
      let rate (x : Run.result) =
        let s = x.Run.stats in
        Stats.percent
          (float_of_int s.Processor.revokes)
          (float_of_int (max 1 s.Processor.buffer_attempts))
      in
      Table.add_row t
        [
          w.Workloads.name;
          Table.cell_pct ~digits:1 (rate without);
          Table.cell_pct ~digits:1 (rate with_);
          Table.cell_pct ~digits:1 (100. *. without.Run.stats.Processor.gated_fraction);
          Table.cell_pct ~digits:1 (100. *. with_.Run.stats.Processor.gated_fraction);
        ]);
  t

let strategy_ablation ?engine ?(check = true) () =
  let t =
    Table.create
      ~title:
        "Buffering-strategy ablation (Section 2.2.1): buffer one iteration (strategy 1)\n\
         vs. fill the queue with whole iterations (strategy 2), 64-entry issue queue."
      [
        ("Benchmark", Table.Left);
        ("Gated (s1)", Table.Right);
        ("Gated (s2)", Table.Right);
        ("IPC (s1)", Table.Right);
        ("IPC (s2)", Table.Right);
      ]
  in
  per_bench ?engine
    ~jobs_of:(fun w ->
      let prog = Workloads.program w in
      [
        Job.make ~check { Config.reuse with Config.buffer_multiple_iterations = false } prog;
        Job.make ~check { Config.reuse with Config.buffer_multiple_iterations = true } prog;
      ])
    (fun w r ->
      let s1 = r.(0) and s2 = r.(1) in
      Table.add_row t
        [
          w.Workloads.name;
          Table.cell_pct ~digits:1 (100. *. s1.Run.stats.Processor.gated_fraction);
          Table.cell_pct ~digits:1 (100. *. s2.Run.stats.Processor.gated_fraction);
          Table.cell_f ~digits:2 s1.Run.stats.Processor.ipc;
          Table.cell_f ~digits:2 s2.Run.stats.Processor.ipc;
        ]);
  t

let related_work ?engine ?(check = true) ?(iq_size = 64) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Related-work comparison (Section 1): fetch-side loop cache and filter cache vs.\n\
            the reusable-instruction issue queue, %d-entry issue queue."
           iq_size)
      [
        ("Benchmark", Table.Left);
        ("icache red. (loop$)", Table.Right);
        ("icache red. (filter$)", Table.Right);
        ("icache red. (reuse)", Table.Right);
        ("total red. (loop$)", Table.Right);
        ("total red. (filter$)", Table.Right);
        ("total red. (reuse)", Table.Right);
        ("IPC loss (filter$)", Table.Right);
        ("IPC loss (reuse)", Table.Right);
      ]
  in
  let acc = Array.make 8 0. in
  per_bench ?engine
    ~jobs_of:(fun w ->
      let prog = Workloads.program w in
      let size cfg = Config.with_iq_size cfg iq_size in
      [
        Job.make ~check (size Config.baseline) prog;
        Job.make ~check (size (Config.loop_cache 64)) prog;
        Job.make ~check (size (Config.filter_cache ())) prog;
        Job.make ~check (size Config.reuse) prog;
      ])
    (fun w r ->
      let base = r.(0) and lc = r.(1) and fc = r.(2) and ru = r.(3) in
      let vals =
        [|
          Run.reduction base.Run.icache_power lc.Run.icache_power;
          Run.reduction base.Run.icache_power fc.Run.icache_power;
          Run.reduction base.Run.icache_power ru.Run.icache_power;
          Run.reduction base.Run.total_power lc.Run.total_power;
          Run.reduction base.Run.total_power fc.Run.total_power;
          Run.reduction base.Run.total_power ru.Run.total_power;
          Run.reduction base.Run.stats.Processor.ipc fc.Run.stats.Processor.ipc;
          Run.reduction base.Run.stats.Processor.ipc ru.Run.stats.Processor.ipc;
        |]
      in
      Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) vals;
      Table.add_row t
        (w.Workloads.name :: Array.to_list (Array.map (Table.cell_pct ~digits:1) vals)));
  Table.add_sep t;
  let n = float_of_int (List.length Workloads.all) in
  Table.add_row t
    ("average" :: Array.to_list (Array.map (fun v -> Table.cell_pct ~digits:1 (v /. n)) acc));
  t

let predictor_ablation ?engine ?(check = true) () =
  let t =
    Table.create
      ~title:
        "Predictor-sensitivity ablation: gated cycles and overall power reduction of the\n\
         reuse issue queue under bimodal (Table 1) vs. gshare direction prediction."
      [
        ("Benchmark", Table.Left);
        ("Gated (bimod)", Table.Right);
        ("Gated (gshare)", Table.Right);
        ("Power red. (bimod)", Table.Right);
        ("Power red. (gshare)", Table.Right);
      ]
  in
  let gshare_bpred =
    { Riq_branch.Predictor.baseline with
      Riq_branch.Predictor.scheme = Riq_branch.Predictor.Gshare { history_bits = 8 } }
  in
  per_bench ?engine
    ~jobs_of:(fun w ->
      let prog = Workloads.program w in
      let job bpred reuse_on =
        let cfg = if reuse_on then Config.reuse else Config.baseline in
        Job.make ~check { cfg with Config.bpred } prog
      in
      [
        job Config.baseline.Config.bpred false;
        job Config.baseline.Config.bpred true;
        job gshare_bpred false;
        job gshare_bpred true;
      ])
    (fun w r ->
      let bb = r.(0) and br = r.(1) and gb = r.(2) and gr = r.(3) in
      Table.add_row t
        [
          w.Workloads.name;
          Table.cell_pct ~digits:1 (100. *. br.Run.stats.Processor.gated_fraction);
          Table.cell_pct ~digits:1 (100. *. gr.Run.stats.Processor.gated_fraction);
          Table.cell_pct ~digits:1 (Run.reduction bb.Run.total_power br.Run.total_power);
          Table.cell_pct ~digits:1 (Run.reduction gb.Run.total_power gr.Run.total_power);
        ]);
  t

let unroll_ablation ?engine ?(check = true) ?(factor = 4) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Unrolling ablation: original vs. %dx-unrolled code on the reuse issue queue\n\
            (32 entries — where grown loop bodies lose capturability)."
           factor)
      [
        ("Benchmark", Table.Left);
        ("Gated (orig)", Table.Right);
        ("Gated (unrolled)", Table.Right);
        ("Power red. (orig)", Table.Right);
        ("Power red. (unrolled)", Table.Right);
        ("IPC (orig)", Table.Right);
        ("IPC (unrolled)", Table.Right);
      ]
  in
  let base_cfg = Config.with_iq_size Config.baseline 32 in
  let reuse_cfg = Config.with_iq_size Config.reuse 32 in
  per_bench ?engine
    ~jobs_of:(fun w ->
      let orig = Riq_loopir.Codegen.compile w.Workloads.ir in
      let unrolled =
        Riq_loopir.Codegen.compile (Riq_loopir.Unroll.unroll_program ~factor w.Workloads.ir)
      in
      [
        Job.make ~check base_cfg orig;
        Job.make ~check reuse_cfg orig;
        Job.make ~check base_cfg unrolled;
        Job.make ~check reuse_cfg unrolled;
      ])
    (fun w r ->
      let bo = r.(0) and ro = r.(1) and bu = r.(2) and ru = r.(3) in
      Table.add_row t
        [
          w.Workloads.name;
          Table.cell_pct ~digits:1 (100. *. ro.Run.stats.Processor.gated_fraction);
          Table.cell_pct ~digits:1 (100. *. ru.Run.stats.Processor.gated_fraction);
          Table.cell_pct ~digits:1 (Run.reduction bo.Run.total_power ro.Run.total_power);
          Table.cell_pct ~digits:1 (Run.reduction bu.Run.total_power ru.Run.total_power);
          Table.cell_f ~digits:2 ro.Run.stats.Processor.ipc;
          Table.cell_f ~digits:2 ru.Run.stats.Processor.ipc;
        ]);
  t

(* Predicted vs. measured revoke causes: the dataflow-backed static
   analysis names, for every loop whose verdict implies one, the revoke
   cause the hardware should observe; the simulator counts the causes it
   actually raised. Runs in-process (like riq-lint --dynamic) because the
   per-loop cause counters live in [Processor.loop_decisions], not in the
   engine's summary stats. *)
let revoke_causes ?(iq_size = 32) () =
  let cfg = Config.with_iq_size Config.reuse iq_size in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Static revoke-cause prediction vs. per-loop measured causes (IQ %d)."
           iq_size)
      [
        ("Benchmark", Table.Left);
        ("Loop", Table.Left);
        ("Predicted", Table.Left);
        ("inner", Table.Right);
        ("left", Table.Right);
        ("ovfl", Table.Right);
        ("mispred", Table.Right);
        ("Match", Table.Left);
      ]
  in
  List.iter
    (fun w ->
      let program = Workloads.program w in
      let report = Riq_analysis.Bufferability.analyze_config cfg program in
      let p = Processor.create cfg program in
      (match Processor.run p with
      | Processor.Halted -> ()
      | Processor.Cycle_limit -> failwith (w.Workloads.name ^ ": cycle limit hit"));
      List.iter
        (fun d ->
          let predicted =
            Option.bind
              (List.find_opt
                 (fun l -> l.Riq_analysis.Bufferability.tail = d.Processor.ld_tail)
                 report.Riq_analysis.Bufferability.loops)
              (fun l -> l.Riq_analysis.Bufferability.predicted_cause)
          in
          let counts =
            [
              (Riq_analysis.Bufferability.Rv_inner_loop, d.Processor.ld_rv_inner);
              (Riq_analysis.Bufferability.Rv_left_loop, d.Processor.ld_rv_left);
              (Riq_analysis.Bufferability.Rv_overflow, d.Processor.ld_rv_overflow);
              (Riq_analysis.Bufferability.Rv_mispredict, d.Processor.ld_rv_mispredict);
            ]
          in
          let dominant =
            List.fold_left
              (fun acc (c, n) ->
                match acc with
                | Some (_, m) when m >= n -> acc
                | _ -> if n > 0 then Some (c, n) else acc)
              None counts
          in
          let matches =
            match (predicted, dominant) with
            | None, _ -> "-"
            | Some _, None -> "no revokes"
            | Some c, Some (dc, _) -> if c = dc then "yes" else "NO"
          in
          Table.add_row t
            [
              w.Workloads.name;
              Printf.sprintf "%08x..%08x" d.Processor.ld_head d.Processor.ld_tail;
              (match predicted with
              | Some c -> Riq_analysis.Bufferability.cause_to_string c
              | None -> "-");
              string_of_int d.Processor.ld_rv_inner;
              string_of_int d.Processor.ld_rv_left;
              string_of_int d.Processor.ld_rv_overflow;
              string_of_int d.Processor.ld_rv_mispredict;
              matches;
            ])
        (Processor.loop_decisions p))
    Workloads.all;
  t
