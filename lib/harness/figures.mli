open Riq_util

(** Regeneration of every table and figure of the paper as ASCII tables
    whose rows/series mirror the published plots. See EXPERIMENTS.md for
    the paper-vs-measured record.

    The ablation printers submit all their simulations as one batch to an
    experiment engine: pass [engine] to run them on any backend — the
    fork pool, or a [riq-sim serve] daemon via [Riq_svc.Client.backend] —
    and/or serve repeats from the result cache (many ablation cells
    coincide with sweep cells and dedupe for free). With no [engine] they
    run sequentially in-process, as before. *)

val table1 : unit -> string
(** The baseline configuration, rendered like the paper's Table 1. *)

val table2 : unit -> Table.t
(** The benchmark list with provenance (Table 2). *)

val fig5 : Sweep.t -> Table.t
(** Percentage of execution cycles with the pipeline front-end gated, per
    benchmark per issue-queue size, with the arithmetic mean row. *)

val fig6 : Sweep.t -> Table.t
(** Benchmark-average power reduction in the instruction cache, branch
    predictor and issue queue, plus overhead power as a share of total,
    per issue-queue size. *)

val fig7 : Sweep.t -> Table.t
(** Overall per-cycle power reduction per benchmark per size. *)

val fig8 : Sweep.t -> Table.t
(** IPC degradation (percent, positive = slower than the conventional
    queue) per benchmark per size. *)

val coverage : Sweep.t -> Table.t
(** Static bufferability analysis ({!Riq_analysis.Bufferability}) against
    the dynamic core: predicted vs. simulator-measured reuse coverage per
    benchmark per issue-queue size. *)

val fig9 : ?engine:Riq_exp.Engine.t -> ?check:bool -> unit -> Table.t
(** Section 4: overall power reduction with original vs. loop-distributed
    code at the 64-entry baseline configuration, plus the gated-cycle
    percentages quoted in the text. *)

val nblt_ablation : ?engine:Riq_exp.Engine.t -> ?check:bool -> unit -> Table.t
(** Section 3 text: buffering-revoke rate with and without the 8-entry
    NBLT. *)

val strategy_ablation : ?engine:Riq_exp.Engine.t -> ?check:bool -> unit -> Table.t
(** Section 2.2.1: single-iteration buffering (strategy 1) vs.
    multiple-iteration buffering (strategy 2): gated cycles and IPC. *)

val related_work :
  ?engine:Riq_exp.Engine.t -> ?check:bool -> ?iq_size:int -> unit -> Table.t
(** The paper's introduction contrasts the reusable issue queue with
    fetch-side loop caches and filter caches, which save instruction-cache
    energy but keep the branch predictor and decoder running. This
    experiment quantifies the gap at the baseline configuration: icache-
    group and total power reduction plus IPC impact for a 64-entry loop
    cache, a 512-byte filter cache, and the reuse issue queue. *)

val predictor_ablation : ?engine:Riq_exp.Engine.t -> ?check:bool -> unit -> Table.t
(** Sensitivity of the mechanism to the direction predictor: bimodal
    (Table 1) vs. gshare. Detection arms on a predicted-taken backward
    branch, so a predictor that recognises loop branches sooner gates
    sooner. *)

val unroll_ablation :
  ?engine:Riq_exp.Engine.t -> ?check:bool -> ?factor:int -> unit -> Table.t
(** The compiler lever opposite to Section 4's loop distribution: unroll
    every loop by [factor] (default 4) and measure, at the 32-entry queue,
    how grown bodies lose capturability — and with it the gating and power
    benefit — against the control overhead they save. *)

val revoke_causes : ?iq_size:int -> unit -> Table.t
(** Static revoke-cause prediction against the simulator's per-loop cause
    counters ([iq_size] defaults to 32): one row per dynamically detected
    loop, the cause the {!Riq_analysis.Bufferability} verdict implies (if
    any), the measured inner-loop / left-loop / overflow / mispredict
    revoke counts, and whether the dominant measured cause matches the
    prediction. Runs the processor in-process — the cause counters are
    per-loop, not part of the engine's summary statistics. *)
