open Riq_exp

type result = Outcome.sim_result = {
  stats : Riq_core.Processor.stats;
  sim_seconds : float;
  icache_power : float;
  bpred_power : float;
  iq_power : float;
  overhead_power : float;
  total_power : float;
  arch_ok : bool option;
}

type error = Outcome.error =
  | Cycle_limit_exceeded of int
  | Arch_state_mismatch of string
  | Verdict_mismatch of string
  | Reference_did_not_halt
  | Worker_crashed of string
  | Job_timeout of float

let error_to_string = Outcome.error_to_string

let simulate_result ?check ?(cycle_limit = 100_000_000) cfg program =
  Runner.execute (Job.make ?check ~cycle_limit cfg program)

let simulate ?check ?cycle_limit cfg program =
  match simulate_result ?check ?cycle_limit cfg program with
  | Ok r -> r
  | Error e -> failwith ("Run.simulate: " ^ Outcome.error_to_string e)

let reduction base with_ = if base = 0. then 0. else 100. *. (1. -. (with_ /. base))
