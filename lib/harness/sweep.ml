open Riq_util
open Riq_ooo
open Riq_core
open Riq_workloads
open Riq_exp

type cell = { baseline : Run.result; reuse : Run.result }

type t = {
  sizes : int list;
  benchmarks : Workloads.t list;
  cells : (string * (int * cell) list) list;
}

let default_sizes = [ 32; 64; 128; 256 ]

(* The sweep is two jobs (baseline, reuse) per benchmark x size, submitted
   as one batch so the engine can parallelize and cache across all of it.
   Job order is fixed (benchmark-major, then size, then baseline before
   reuse), which makes the result array trivially re-assemblable and the
   output independent of completion order. *)
let jobs ?(sizes = default_sizes) ?(benchmarks = Workloads.all) ?(check = true) () =
  Array.of_list
    (List.concat_map
       (fun w ->
         let program = Workloads.program w in
         List.concat_map
           (fun size ->
             [
               Job.make ~check (Config.with_iq_size Config.baseline size) program;
               Job.make ~check (Config.with_iq_size Config.reuse size) program;
             ])
           sizes)
       benchmarks)

let run ?engine ?(sizes = default_sizes) ?(benchmarks = Workloads.all) ?(check = true)
    ?(progress = fun _ -> ()) () =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  List.iter
    (fun w ->
      List.iter
        (fun size -> progress (Printf.sprintf "%s/IQ%d" w.Workloads.name size))
        sizes)
    benchmarks;
  let results = Engine.run_exn engine (jobs ~sizes ~benchmarks ~check ()) in
  let idx = ref 0 in
  let next () =
    let r = results.(!idx) in
    incr idx;
    r
  in
  let cells =
    List.map
      (fun w ->
        let per_size =
          List.map
            (fun size ->
              let baseline = next () in
              let reuse = next () in
              (size, { baseline; reuse }))
            sizes
        in
        (w.Workloads.name, per_size))
      benchmarks
  in
  { sizes; benchmarks; cells }

let cell t ~bench ~size =
  match List.assoc_opt bench t.cells with
  | None -> invalid_arg ("Sweep.cell: unknown benchmark " ^ bench)
  | Some per_size -> (
      match List.assoc_opt size per_size with
      | None -> invalid_arg (Printf.sprintf "Sweep.cell: size %d not swept" size)
      | Some c -> c)

(* ------------------------------------------------------------------ *)
(* Machine-readable export                                             *)
(* ------------------------------------------------------------------ *)

(* The per-cell stats rendering is shared with the run report so the two
   exports stay field-compatible. *)
let stats_json = Report.stats_json

let insns_per_sec (r : Run.result) =
  if r.Run.sim_seconds > 0. then
    float_of_int r.Run.stats.Processor.committed /. r.Run.sim_seconds
  else 0.

let result_json (r : Run.result) =
  Json.Obj
    [
      ("stats", stats_json r.Run.stats);
      ("sim_seconds", Json.Float r.Run.sim_seconds);
      ("sim_insns_per_sec", Json.Float (insns_per_sec r));
      ( "power",
        Json.Obj
          [
            ("icache", Json.Float r.Run.icache_power);
            ("bpred", Json.Float r.Run.bpred_power);
            ("iq", Json.Float r.Run.iq_power);
            ("overhead", Json.Float r.Run.overhead_power);
            ("total", Json.Float r.Run.total_power);
          ] );
      ( "arch_ok",
        match r.Run.arch_ok with None -> Json.Null | Some b -> Json.Bool b );
    ]

let engine_json engine =
  let s = Engine.stats engine in
  let js = Engine.job_seconds engine in
  (* A fully warm run executes nothing; its quantiles are absent, not
     zero. Null-marked values keep the keys (consumers needn't branch on
     shape) while staying unmistakable for a measured 0-second job. *)
  let no_samples = Array.length js = 0 in
  let mean =
    if no_samples then 0.
    else Array.fold_left ( +. ) 0. js /. float_of_int (Array.length js)
  in
  let stat v = if no_samples then Json.Null else Json.Float v in
  let q p = Stats.quantile p js in
  Json.Obj
    ([
       ("backend", Json.String (Engine.backend_name engine));
       ("workers", Json.Int (Engine.workers engine));
       ("jobs", Json.Int s.Engine.jobs);
       ("cache_hits", Json.Int s.Engine.cache_hits);
       ("cache_misses", Json.Int (s.Engine.jobs - s.Engine.cache_hits - s.Engine.deduped));
       ("deduped", Json.Int s.Engine.deduped);
       ("executed", Json.Int s.Engine.executed);
       ("failures", Json.Int s.Engine.failures);
       ("retries", Json.Int s.Engine.retries);
       ("timeouts", Json.Int s.Engine.timeouts);
       ("wall_seconds", Json.Float s.Engine.wall_seconds);
       ("busy_seconds", Json.Float s.Engine.busy_seconds);
       ("utilization", Json.Float (Engine.utilization engine));
       ( "job_seconds",
         Json.Obj
           [
             ("count", Json.Int (Array.length js));
             ("mean", stat mean);
             ("p50", stat (q 0.5));
             ("p95", stat (q 0.95));
             ("max", stat (q 1.0));
           ] );
     ]
    (* A remote backend appends its "service" block here: client-side
       provenance (remote hits / executed / batched) and the daemon's
       queue-depth, batching and store-eviction counters. *)
    @ Engine.telemetry engine)

let to_json ?engine t =
  let cells =
    List.concat_map
      (fun (bench, per_size) ->
        List.map
          (fun (size, c) ->
            Json.Obj
              [
                ("benchmark", Json.String bench);
                ("iq_size", Json.Int size);
                ("baseline", result_json c.baseline);
                ("reuse", result_json c.reuse);
                ( "power_reduction_pct",
                  Json.Float
                    (Run.reduction c.baseline.Run.total_power c.reuse.Run.total_power) );
                ( "ipc_degradation_pct",
                  Json.Float
                    (Run.reduction c.baseline.Run.stats.Processor.ipc
                       c.reuse.Run.stats.Processor.ipc) );
                ( "gated_pct",
                  Json.Float (100. *. c.reuse.Run.stats.Processor.gated_fraction) );
              ])
          per_size)
      t.cells
  in
  (* Aggregate simulator throughput over every run in the sweep — the
     headline number the perf gate tracks across PRs. *)
  let committed, seconds =
    List.fold_left
      (fun acc (_, per_size) ->
        List.fold_left
          (fun (i, s) (_, c) ->
            ( i + c.baseline.Run.stats.Processor.committed
              + c.reuse.Run.stats.Processor.committed,
              s +. c.baseline.Run.sim_seconds +. c.reuse.Run.sim_seconds ))
          acc per_size)
      (0, 0.) t.cells
  in
  let throughput =
    Json.Obj
      [
        ("committed_insns", Json.Int committed);
        ("sim_seconds", Json.Float seconds);
        ( "sim_insns_per_sec",
          Json.Float (if seconds > 0. then float_of_int committed /. seconds else 0.)
        );
      ]
  in
  Json.Obj
    (("schema", Json.String "riq-sweep/2")
    :: ("revision", Json.String Revision.stamp)
    :: ("sizes", Json.List (List.map (fun s -> Json.Int s) t.sizes))
    :: ( "benchmarks",
         Json.List (List.map (fun w -> Json.String w.Workloads.name) t.benchmarks) )
    :: ("throughput", throughput)
    :: ("cells", Json.List cells)
    ::
    (match engine with
    | None -> []
    | Some e -> [ ("engine", engine_json e) ]))
