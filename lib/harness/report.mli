open Riq_core

(** Unified run report: one schema-versioned JSON document merging the
    simulator statistics, per-loop reuse decisions, power-group breakdown
    and — when observability was attached to the run — the tracer and
    sampler summaries. Written by [riq-sim run --report FILE].

    The [stats] block is the canonical JSON rendering of
    {!Riq_core.Processor.stats}; {!Sweep.to_json} embeds the same
    rendering per cell, so the two exports stay field-compatible. *)

val schema : string
(** ["riq-report/1"]. *)

val stats_json : Processor.stats -> Riq_util.Json.t
(** Every field of {!Processor.stats}, by name. *)

val loop_decision_json : Processor.loop_decision -> Riq_util.Json.t

val make : ?benchmark:string -> Processor.t -> Riq_util.Json.t
(** Build the report from a finished (or running) processor. Top-level
    keys: [schema], [revision], optional [benchmark], [config], [stats],
    [power] (per-{!Riq_power.Component.group} average power plus total),
    [loop_decisions], [trace] ({!Riq_obs.Tracer.summary}) and [sampler]
    ({!Riq_obs.Sampler.summary}, [null] when no sampler was attached). *)
