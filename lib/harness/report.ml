open Riq_util
open Riq_power
open Riq_ooo
open Riq_core
open Riq_obs

(* /2: loop decisions gained the per-cause revoke split.
   /3: stats gained skipped_cycles and ffwd_iterations (fast-path
   diagnostics; both are zero when the corresponding Config flag is
   off and never affect any other reported number). *)
let schema = "riq-report/3"

let stats_json (s : Processor.stats) =
  Json.Obj
    [
      ("cycles", Json.Int s.Processor.cycles);
      ("committed", Json.Int s.Processor.committed);
      ("ipc", Json.Float s.Processor.ipc);
      ("gated_cycles", Json.Int s.Processor.gated_cycles);
      ("gated_fraction", Json.Float s.Processor.gated_fraction);
      ("branches", Json.Int s.Processor.branches);
      ("mispredicts", Json.Int s.Processor.mispredicts);
      ("loads", Json.Int s.Processor.loads);
      ("stores", Json.Int s.Processor.stores);
      ("reuse_dispatches", Json.Int s.Processor.reuse_dispatches);
      ("reuse_committed", Json.Int s.Processor.reuse_committed);
      ("buffer_attempts", Json.Int s.Processor.buffer_attempts);
      ("revokes", Json.Int s.Processor.revokes);
      ("promotions", Json.Int s.Processor.promotions);
      ("reuse_exits", Json.Int s.Processor.reuse_exits);
      ("avg_power", Json.Float s.Processor.avg_power);
      ("icache_accesses", Json.Int s.Processor.icache_accesses);
      ("icache_misses", Json.Int s.Processor.icache_misses);
      ("dcache_accesses", Json.Int s.Processor.dcache_accesses);
      ("dcache_misses", Json.Int s.Processor.dcache_misses);
      ("skipped_cycles", Json.Int s.Processor.skipped_cycles);
      ("ffwd_iterations", Json.Int s.Processor.ffwd_iterations);
    ]

let config_json (cfg : Config.t) =
  Json.Obj
    [
      ("iq_entries", Json.Int cfg.Config.iq_entries);
      ("rob_entries", Json.Int cfg.Config.rob_entries);
      ("lsq_entries", Json.Int cfg.Config.lsq_entries);
      ("fetch_width", Json.Int cfg.Config.fetch_width);
      ("issue_width", Json.Int cfg.Config.issue_width);
      ("reuse_enabled", Json.Bool cfg.Config.reuse_enabled);
      ("nblt_entries", Json.Int cfg.Config.nblt_entries);
      ("buffer_multiple_iterations", Json.Bool cfg.Config.buffer_multiple_iterations);
      ("loop_cache_entries", Json.Int cfg.Config.loop_cache_entries);
    ]

let loop_decision_json (d : Processor.loop_decision) =
  Json.Obj
    [
      ("head", Json.Int d.Processor.ld_head);
      ("tail", Json.Int d.Processor.ld_tail);
      ("span", Json.Int d.Processor.ld_span);
      ("detections", Json.Int d.Processor.ld_detections);
      ("nblt_filtered", Json.Int d.Processor.ld_nblt_filtered);
      ("attempts", Json.Int d.Processor.ld_attempts);
      ("revokes", Json.Int d.Processor.ld_revokes);
      ( "revoke_causes",
        Json.Obj
          [
            ("inner_loop", Json.Int d.Processor.ld_rv_inner);
            ("left_loop", Json.Int d.Processor.ld_rv_left);
            ("overflow", Json.Int d.Processor.ld_rv_overflow);
            ("mispredict", Json.Int d.Processor.ld_rv_mispredict);
          ] );
      ("nblt_registered", Json.Int d.Processor.ld_nblt_registered);
      ("promotions", Json.Int d.Processor.ld_promotions);
      ("reuse_committed", Json.Int d.Processor.ld_reuse_committed);
    ]

let power_json acct =
  Json.Obj
    (Array.to_list
       (Array.map
          (fun g -> (Component.group_name g, Json.Float (Account.group_power acct g)))
          Component.groups)
    @ [ ("total", Json.Float (Account.avg_power acct)) ])

let make ?benchmark p =
  Json.Obj
    (("schema", Json.String schema)
    :: ("revision", Json.String Riq_exp.Revision.stamp)
    :: (match benchmark with
       | None -> []
       | Some b -> [ ("benchmark", Json.String b) ])
    @ [
        ("config", config_json (Processor.config p));
        ("stats", stats_json (Processor.stats p));
        ("power", power_json (Processor.account p));
        ( "loop_decisions",
          Json.List (List.map loop_decision_json (Processor.loop_decisions p)) );
        ("trace", Tracer.summary (Processor.tracer p));
        ( "sampler",
          match Processor.sampler p with
          | None -> Json.Null
          | Some s -> Sampler.summary s );
      ])
