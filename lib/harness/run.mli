open Riq_asm
open Riq_ooo
open Riq_core

(** Single-simulation driver used by every experiment. Since the
    experiment engine landed this is a thin veneer over
    {!Riq_exp.Runner}: the result and error types are re-exports, so
    harness results and engine outcomes interchange freely. *)

type result = Riq_exp.Outcome.sim_result = {
  stats : Processor.stats;
  sim_seconds : float; (** CPU seconds inside [Processor.run]; telemetry *)
  icache_power : float; (** per-cycle, Figure 6 grouping *)
  bpred_power : float;
  iq_power : float;
  overhead_power : float;
  total_power : float;
  arch_ok : bool option; (** differential check result when requested *)
}

type error = Riq_exp.Outcome.error =
  | Cycle_limit_exceeded of int
  | Arch_state_mismatch of string
  | Verdict_mismatch of string
  | Reference_did_not_halt
  | Worker_crashed of string
  | Job_timeout of float

val error_to_string : error -> string

val simulate_result :
  ?check:bool -> ?cycle_limit:int -> Config.t -> Program.t -> (result, error) Stdlib.result
(** Run to completion. [check] (default false) also runs the functional
    reference simulator and compares architectural states. Never raises
    for simulation-level failures — a parallel sweep records the error and
    keeps going. *)

val simulate : ?check:bool -> ?cycle_limit:int -> Config.t -> Program.t -> result
(** Raising wrapper around {!simulate_result} for call sites that treat
    failure as fatal: raises [Failure] with the rendered error. *)

val reduction : float -> float -> float
(** [reduction base with_] = percent reduction, [100*(1 - with_/base)]. *)
