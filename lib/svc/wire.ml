(* Length-prefixed JSON framing over a file descriptor.

   Every message — request or response, client/daemon or daemon/worker —
   is one frame: a 4-byte big-endian payload length followed by that many
   bytes of UTF-8 JSON. The fixed prefix makes the stream self-delimiting
   without scanning, keeps partial reads trivially resumable (the server's
   event loop accumulates bytes per connection and peels off whole frames)
   and puts a hard bound on per-message memory before a single payload
   byte is read. *)

let max_frame = 64 * 1024 * 1024
(* A sweep's job batch marshals to well under a megabyte; anything near
   the cap is a protocol error or a hostile peer, not a bigger sweep. *)

exception Closed
exception Protocol_error of string

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

(* [read_exact fd n] raises [Closed] on EOF before [n] bytes. *)
let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then b
    else
      let r = restart_on_intr (fun () -> Unix.read fd b off (n - off)) in
      if r = 0 then raise Closed else go (off + r)
  in
  go 0

let write_all fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = restart_on_intr (fun () -> Unix.write fd b off (n - off)) in
      go (off + w)
  in
  go 0

let frame json =
  let payload = Bytes.unsafe_of_string (Riq_util.Json.to_string json) in
  let len = Bytes.length payload in
  if len > max_frame then raise (Protocol_error "frame too large");
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit payload 0 b 4 len;
  b

let send fd json = write_all fd (frame json)

let recv fd =
  let hdr = read_exact fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" len));
  let payload = read_exact fd len in
  match Riq_util.Json.of_string (Bytes.to_string payload) with
  | Ok json -> json
  | Error msg -> raise (Protocol_error msg)

(* ------------------------------------------------------------------ *)
(* Hex transport encoding for opaque binary payloads                    *)
(* ------------------------------------------------------------------ *)

(* Marshalled jobs and outcomes ride inside JSON strings. Hex rather than
   base64: two lines of code each way, no padding corner cases, and the
   payloads are small enough that the 2x size is irrelevant next to
   simulation time. *)

let to_hex s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  let digit v = if v < 10 then Char.chr (Char.code '0' + v) else Char.chr (Char.code 'a' + v - 10) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (digit (c lsr 4));
    Bytes.set b ((2 * i) + 1) (digit (c land 0xF))
  done;
  Bytes.unsafe_to_string b

let of_hex s =
  let n = String.length s in
  if n land 1 = 1 then raise (Protocol_error "odd-length hex payload");
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Protocol_error "bad hex digit")
  in
  let b = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set b i (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  Bytes.unsafe_to_string b
