(* Client side of the serve protocol, packaged as an engine backend.

   The engine hands over its cache-missing job indices; the client
   submits them as one ticket, polls status, fetches the outcomes and
   replays them through [on_result]. All the serving leverage lives
   daemon-side (shared store, cross-client batching, fair queue), so the
   client stays deliberately dumb: a blocking request/response socket
   with one reconnect-and-retry per request.

   Per-request timeouts come from SO_RCVTIMEO on the socket; requests are
   safe to retry because submission is idempotent up to ticket identity —
   a resubmitted batch just opens a fresh ticket whose jobs are served
   from the store or coalesced onto the still-running execution of the
   lost one.

   Observability: the hello handshake carries the client's wall clock
   and returns the daemon's, bracketed by the round trip, which gives a
   clock-offset estimate good to about half the RTT — microseconds on a
   Unix socket, plenty for aligning trace spans. With a [trace] sink the
   client emits submit/await spans (wall-clock us, its own pid) and
   {!server_trace} pulls the daemon's span ring already shifted onto the
   client's clock, so one merged file loads in Perfetto with every
   process on a common timeline. *)

open Riq_util
open Riq_exp
module Metrics = Riq_obs.Metrics
module Tracer = Riq_obs.Tracer
module Log = Riq_obs.Log

type instruments = {
  i_requests : Metrics.counter;
  i_reconnects : Metrics.counter;
  i_request_seconds : Metrics.histogram;
}

let instruments_of registry =
  {
    i_requests =
      Metrics.counter registry ~help:"Wire requests sent to the daemon"
        "client_requests_total";
    i_reconnects =
      Metrics.counter registry ~help:"Reconnect-and-retry cycles"
        "client_reconnects_total";
    i_request_seconds =
      Metrics.histogram registry ~help:"Round-trip seconds per wire request"
        "client_request_seconds";
  }

type t = {
  address : Protocol.address;
  klass : Protocol.klass;
  poll_interval : float;
  request_timeout : float;
  ins : instruments option;
  tracer : Tracer.t option; (* caller-owned sink for client-side spans *)
  trace_id : string;
  mutable fd : Unix.file_descr option;
  mutable server_workers : int;
  mutable server_pid : int;
  mutable clock_offset : float; (* daemon clock minus ours, seconds *)
  mutable next_span : int;
  (* client-visible provenance counters, summed over every run *)
  mutable c_hits : int;
  mutable c_executed : int;
  mutable c_batched : int;
  mutable c_submitted : int;
  mutable c_reconnects : int;
}

let disconnect t =
  (match t.fd with Some fd -> ( try Unix.close fd with _ -> ()) | None -> ());
  t.fd <- None

let close = disconnect

let do_connect t =
  let fd =
    match t.address with
    | Protocol.Unix_socket _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Protocol.Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd (Protocol.sockaddr_of_address t.address)
   with
  | Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      failwith
        (Printf.sprintf "cannot reach riq-serve at %s: %s"
           (Protocol.address_to_string t.address)
           (Unix.error_message err))
  | e ->
      (try Unix.close fd with _ -> ());
      raise e);
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.request_timeout with _ -> ());
  let t0 = Unix.gettimeofday () in
  Wire.send fd
    (Protocol.request_to_json
       (Protocol.Hello
          {
            revision = Revision.stamp;
            format = Revision.format_version;
            t_client = Some t0;
          }));
  let resp = Wire.recv fd in
  let t1 = Unix.gettimeofday () in
  if not (Protocol.is_ok resp) then begin
    (try Unix.close fd with _ -> ());
    failwith ("riq-serve rejected the connection: " ^ Protocol.error_of resp)
  end;
  (match Option.bind (Json.member "workers" resp) Json.to_int with
  | Some w -> t.server_workers <- w
  | None -> ());
  (match Option.bind (Json.member "pid" resp) Json.to_int with
  | Some p -> t.server_pid <- p
  | None -> ());
  (* The daemon read its clock between our send (t0) and receive (t1);
     assuming a symmetric path, it did so at the midpoint. *)
  (match Option.bind (Json.member "server_time" resp) Json.to_float_opt with
  | Some server_time -> t.clock_offset <- server_time -. ((t0 +. t1) /. 2.)
  | None -> ());
  Log.debug ~scope:"client"
    ~kv:
      [
        ("address", Protocol.address_to_string t.address);
        ("offset_us", Log.float (t.clock_offset *. 1e6));
      ]
    "connected";
  t.fd <- Some fd

let ensure_connected t =
  match t.fd with
  | Some _ -> ()
  | None -> do_connect t

let rec request ?(retried = false) t req =
  ensure_connected t;
  let fd = Option.get t.fd in
  let t0 = Unix.gettimeofday () in
  match
    Wire.send fd (Protocol.request_to_json req);
    Wire.recv fd
  with
  | resp ->
      (match t.ins with
      | None -> ()
      | Some ins ->
          Metrics.inc ins.i_requests;
          Metrics.observe ins.i_request_seconds (Unix.gettimeofday () -. t0));
      resp
  | exception e ->
      disconnect t;
      if retried then raise e
      else begin
        t.c_reconnects <- t.c_reconnects + 1;
        (match t.ins with
        | None -> ()
        | Some ins -> Metrics.inc ins.i_reconnects);
        Log.warn ~scope:"client"
          ~kv:[ ("address", Protocol.address_to_string t.address) ]
          "connection lost, retrying";
        request ~retried:true t req
      end

let connect ?(klass = Protocol.Interactive) ?(poll_interval = 0.02)
    ?(request_timeout = 120.) ?metrics ?trace address =
  let trace_id =
    Printf.sprintf "%d-%06x" (Unix.getpid ())
      (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff)
  in
  let t =
    {
      address;
      klass;
      poll_interval;
      request_timeout;
      ins = Option.map instruments_of metrics;
      tracer = trace;
      trace_id;
      fd = None;
      server_workers = 1;
      server_pid = 0;
      clock_offset = 0.;
      next_span = 0;
      c_hits = 0;
      c_executed = 0;
      c_batched = 0;
      c_submitted = 0;
      c_reconnects = 0;
    }
  in
  do_connect t;
  t

let server_stats t =
  try Some (request t Protocol.Stats) with _ -> None

let clock_offset t = t.clock_offset
let server_pid t = t.server_pid
let trace_id t = t.trace_id

let require name conv resp =
  match Option.bind (Json.member name resp) conv with
  | Some v -> v
  | None ->
      raise
        (Wire.Protocol_error (Printf.sprintf "response missing field %S" name))

let strings_of resp name =
  List.map
    (fun j ->
      match Json.to_str j with
      | Some s -> s
      | None -> raise (Wire.Protocol_error ("non-string in " ^ name)))
    (require name Json.to_list resp)

(* ------------------------------------------------------------------ *)
(* Metrics / trace ops                                                 *)
(* ------------------------------------------------------------------ *)

let server_metrics t =
  match request t Protocol.Metrics with
  | exception e -> Error (Printexc.to_string e)
  | resp when not (Protocol.is_ok resp) -> Error (Protocol.error_of resp)
  | resp -> (
      match Json.member "metrics" resp with
      | None -> Error "response missing field \"metrics\""
      | Some j -> Metrics.snapshot_of_json j)

let server_exposition t =
  match request t Protocol.Metrics with
  | exception e -> Error (Printexc.to_string e)
  | resp when not (Protocol.is_ok resp) -> Error (Protocol.error_of resp)
  | resp -> (
      match Option.bind (Json.member "exposition" resp) Json.to_str with
      | None -> Error "response missing field \"exposition\""
      | Some s -> Ok s)

(* Shift a daemon trace event's timestamp onto the client's clock. The
   events are plain Chrome-trace objects; only "ts" needs adjusting
   (durations are offset-free), and metadata records stay pinned at 0. *)
let shift_event offset_us j =
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match (k, v) with
             | "ts", Json.Int ts when ts > 0 -> ("ts", Json.Int (ts - offset_us))
             | _ -> (k, v))
           fields)
  | other -> other

let server_trace ?(since = 0) t =
  match request t (Protocol.Trace { since }) with
  | exception e -> Error (Printexc.to_string e)
  | resp when not (Protocol.is_ok resp) -> Error (Protocol.error_of resp)
  | resp ->
      let events = require "events" Json.to_list resp in
      let next = require "next" Json.to_int resp in
      let offset_us = int_of_float (t.clock_offset *. 1e6) in
      Ok (List.map (shift_event offset_us) events, next)

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let span t ~started name args k =
  match t.tracer with
  | None -> k None
  | Some tr ->
      t.next_span <- t.next_span + 1;
      let id = t.next_span in
      let r = k (Some id) in
      let now = Unix.gettimeofday () in
      Tracer.complete tr
        ~now:(int_of_float (started *. 1e6))
        ~dur:(int_of_float ((now -. started) *. 1e6))
        ~args ~cat:"client" name;
      r

(* One engine batch: submit, poll to completion, fetch, replay. *)
let run_batch t (jobs : Job.t array) indices on_result =
  let wire_jobs = List.map (fun i -> Protocol.job_to_wire jobs.(i)) indices in
  let submit_started = Unix.gettimeofday () in
  let resp =
    span t ~started:submit_started "submit-batch"
      [ ("jobs", Tracer.Int (List.length wire_jobs));
        ("trace_id", Tracer.Str t.trace_id) ]
      (fun span_id ->
        let trace =
          Option.map
            (fun parent_span -> { Protocol.trace_id = t.trace_id; parent_span })
            span_id
        in
        request t (Protocol.Submit { klass = t.klass; jobs = wire_jobs; trace }))
  in
  if not (Protocol.is_ok resp) then
    failwith ("riq-serve submit refused: " ^ Protocol.error_of resp);
  let ticket = require "ticket" Json.to_int resp in
  t.c_submitted <- t.c_submitted + List.length indices;
  let await_started = Unix.gettimeofday () in
  let resp =
    span t ~started:await_started "await-results"
      [ ("ticket", Tracer.Int ticket); ("trace_id", Tracer.Str t.trace_id) ]
      (fun _ ->
        let rec wait () =
          let resp = request t (Protocol.Result { ticket }) in
          if Protocol.is_ok resp then resp
          else if Protocol.error_of resp = "pending" then begin
            (try ignore (Unix.select [] [] [] t.poll_interval) with _ -> ());
            wait ()
          end
          else failwith ("riq-serve result refused: " ^ Protocol.error_of resp)
        in
        wait ())
  in
  let outcomes = List.map Protocol.outcome_of_wire (strings_of resp "outcomes") in
  let sources =
    List.map
      (fun s ->
        match Protocol.source_of_string s with
        | Ok src -> src
        | Error e -> raise (Wire.Protocol_error e))
      (strings_of resp "sources")
  in
  let seconds =
    List.map
      (fun j ->
        match Json.to_float_opt j with
        | Some f -> f
        | None -> raise (Wire.Protocol_error "non-number in seconds"))
      (require "seconds" Json.to_list resp)
  in
  if List.length outcomes <> List.length indices then
    raise (Wire.Protocol_error "result count mismatch");
  List.iter2
    (fun i (outcome, (source, secs)) ->
      (match source with
      | Protocol.Hit -> t.c_hits <- t.c_hits + 1
      | Protocol.Executed -> t.c_executed <- t.c_executed + 1
      | Protocol.Batched -> t.c_batched <- t.c_batched + 1);
      on_result i ~seconds:secs outcome)
    indices
    (List.combine outcomes (List.combine sources seconds))

let service_json t =
  let client =
    Json.Obj
      [
        ("address", Json.String (Protocol.address_to_string t.address));
        ("class", Json.String (Protocol.klass_to_string t.klass));
        ("submitted", Json.Int t.c_submitted);
        ("remote_hits", Json.Int t.c_hits);
        ("remote_executed", Json.Int t.c_executed);
        ("remote_batched", Json.Int t.c_batched);
        ("reconnects", Json.Int t.c_reconnects);
        ("clock_offset_seconds", Json.Float t.clock_offset);
      ]
  in
  let server = match server_stats t with Some s -> s | None -> Json.Null in
  Json.Obj [ ("client", client); ("server", server) ]

let backend t =
  {
    Backend.name = Printf.sprintf "serve:%s" (Protocol.address_to_string t.address);
    parallelism = t.server_workers;
    telemetry = (fun () -> [ ("service", service_json t) ]);
    execute =
      (fun ~timeout:_ ~jobs ~indices ~on_result ->
        (* The daemon enforces its own per-job budget; a connection-level
           failure surfaces as unreported indices, which the engine
           records as [Worker_crashed]. *)
        (try run_batch t jobs indices on_result
         with _ -> disconnect t);
        { Backend.busy_seconds = 0.; retries = 0 });
  }
