(* Client side of the serve protocol, packaged as an engine backend.

   The engine hands over its cache-missing job indices; the client
   submits them as one ticket, polls status, fetches the outcomes and
   replays them through [on_result]. All the serving leverage lives
   daemon-side (shared store, cross-client batching, fair queue), so the
   client stays deliberately dumb: a blocking request/response socket
   with one reconnect-and-retry per request.

   Per-request timeouts come from SO_RCVTIMEO on the socket; requests are
   safe to retry because submission is idempotent up to ticket identity —
   a resubmitted batch just opens a fresh ticket whose jobs are served
   from the store or coalesced onto the still-running execution of the
   lost one. *)

open Riq_util
open Riq_exp

type t = {
  address : Protocol.address;
  klass : Protocol.klass;
  poll_interval : float;
  request_timeout : float;
  mutable fd : Unix.file_descr option;
  mutable server_workers : int;
  (* client-visible provenance counters, summed over every run *)
  mutable c_hits : int;
  mutable c_executed : int;
  mutable c_batched : int;
  mutable c_submitted : int;
  mutable c_reconnects : int;
}

let disconnect t =
  (match t.fd with Some fd -> ( try Unix.close fd with _ -> ()) | None -> ());
  t.fd <- None

let close = disconnect

let do_connect t =
  let fd =
    match t.address with
    | Protocol.Unix_socket _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Protocol.Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd (Protocol.sockaddr_of_address t.address)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.request_timeout with _ -> ());
  Wire.send fd
    (Protocol.request_to_json
       (Protocol.Hello
          { revision = Revision.stamp; format = Revision.format_version }));
  let resp = Wire.recv fd in
  if not (Protocol.is_ok resp) then begin
    (try Unix.close fd with _ -> ());
    failwith ("riq-serve rejected the connection: " ^ Protocol.error_of resp)
  end;
  (match Option.bind (Json.member "workers" resp) Json.to_int with
  | Some w -> t.server_workers <- w
  | None -> ());
  t.fd <- Some fd

let ensure_connected t =
  match t.fd with
  | Some _ -> ()
  | None -> do_connect t

let rec request ?(retried = false) t req =
  ensure_connected t;
  let fd = Option.get t.fd in
  match
    Wire.send fd (Protocol.request_to_json req);
    Wire.recv fd
  with
  | resp -> resp
  | exception e ->
      disconnect t;
      if retried then raise e
      else begin
        t.c_reconnects <- t.c_reconnects + 1;
        request ~retried:true t req
      end

let connect ?(klass = Protocol.Interactive) ?(poll_interval = 0.02)
    ?(request_timeout = 120.) address =
  let t =
    {
      address;
      klass;
      poll_interval;
      request_timeout;
      fd = None;
      server_workers = 1;
      c_hits = 0;
      c_executed = 0;
      c_batched = 0;
      c_submitted = 0;
      c_reconnects = 0;
    }
  in
  do_connect t;
  t

let server_stats t =
  try Some (request t Protocol.Stats) with _ -> None

let require name conv resp =
  match Option.bind (Json.member name resp) conv with
  | Some v -> v
  | None ->
      raise
        (Wire.Protocol_error (Printf.sprintf "response missing field %S" name))

let strings_of resp name =
  List.map
    (fun j ->
      match Json.to_str j with
      | Some s -> s
      | None -> raise (Wire.Protocol_error ("non-string in " ^ name)))
    (require name Json.to_list resp)

(* One engine batch: submit, poll to completion, fetch, replay. *)
let run_batch t (jobs : Job.t array) indices on_result =
  let wire_jobs = List.map (fun i -> Protocol.job_to_wire jobs.(i)) indices in
  let resp =
    request t (Protocol.Submit { klass = t.klass; jobs = wire_jobs })
  in
  if not (Protocol.is_ok resp) then
    failwith ("riq-serve submit refused: " ^ Protocol.error_of resp);
  let ticket = require "ticket" Json.to_int resp in
  t.c_submitted <- t.c_submitted + List.length indices;
  let rec wait () =
    let resp = request t (Protocol.Result { ticket }) in
    if Protocol.is_ok resp then resp
    else if Protocol.error_of resp = "pending" then begin
      (try ignore (Unix.select [] [] [] t.poll_interval) with _ -> ());
      wait ()
    end
    else failwith ("riq-serve result refused: " ^ Protocol.error_of resp)
  in
  let resp = wait () in
  let outcomes = List.map Protocol.outcome_of_wire (strings_of resp "outcomes") in
  let sources =
    List.map
      (fun s ->
        match Protocol.source_of_string s with
        | Ok src -> src
        | Error e -> raise (Wire.Protocol_error e))
      (strings_of resp "sources")
  in
  let seconds =
    List.map
      (fun j ->
        match Json.to_float_opt j with
        | Some f -> f
        | None -> raise (Wire.Protocol_error "non-number in seconds"))
      (require "seconds" Json.to_list resp)
  in
  if List.length outcomes <> List.length indices then
    raise (Wire.Protocol_error "result count mismatch");
  List.iter2
    (fun i (outcome, (source, secs)) ->
      (match source with
      | Protocol.Hit -> t.c_hits <- t.c_hits + 1
      | Protocol.Executed -> t.c_executed <- t.c_executed + 1
      | Protocol.Batched -> t.c_batched <- t.c_batched + 1);
      on_result i ~seconds:secs outcome)
    indices
    (List.combine outcomes (List.combine sources seconds))

let service_json t =
  let client =
    Json.Obj
      [
        ("address", Json.String (Protocol.address_to_string t.address));
        ("class", Json.String (Protocol.klass_to_string t.klass));
        ("submitted", Json.Int t.c_submitted);
        ("remote_hits", Json.Int t.c_hits);
        ("remote_executed", Json.Int t.c_executed);
        ("remote_batched", Json.Int t.c_batched);
        ("reconnects", Json.Int t.c_reconnects);
      ]
  in
  let server = match server_stats t with Some s -> s | None -> Json.Null in
  Json.Obj [ ("client", client); ("server", server) ]

let backend t =
  {
    Backend.name = Printf.sprintf "serve:%s" (Protocol.address_to_string t.address);
    parallelism = t.server_workers;
    telemetry = (fun () -> [ ("service", service_json t) ]);
    execute =
      (fun ~timeout:_ ~jobs ~indices ~on_result ->
        (* The daemon enforces its own per-job budget; a connection-level
           failure surfaces as unreported indices, which the engine
           records as [Worker_crashed]. *)
        (try run_batch t jobs indices on_result
         with _ -> disconnect t);
        { Backend.busy_seconds = 0.; retries = 0 });
  }
