(** Message shapes of the serve daemon's wire protocol (framing lives in
    {!Wire}). A session opens with [hello] carrying the simulator
    revision stamp and cache format version; the daemon rejects a
    mismatched peer before decoding any marshalled payload, so the opaque
    hex-encoded jobs/outcomes only ever travel between binaries that
    agree on their layout. *)

open Riq_exp

val version : string

type klass = Interactive | Batch
(** The two queue classes: interactive sweeps ahead of nightly fuzz
    campaigns, with weighted fairness so neither starves (see
    {!Server}). *)

val klass_to_string : klass -> string
val klass_of_string : string -> (klass, string) result

type source = Hit | Executed | Batched
(** Per-job result provenance: shared-store hit, executed for this
    request, or coalesced onto another request's in-flight execution of
    the same fingerprint. *)

val source_to_string : source -> string
val source_of_string : string -> (source, string) result

val job_to_wire : Job.t -> string
val job_of_wire : string -> Job.t
val outcome_to_wire : Outcome.t -> string
val outcome_of_wire : string -> Outcome.t

type trace_context = { trace_id : string; parent_span : int }
(** The client's trace identity, attached to submits so daemon- and
    worker-side spans can be merged into the client's Perfetto trace. *)

type request =
  | Hello of { revision : string; format : int; t_client : float option }
      (** [t_client] is the client's wall clock ([Unix.gettimeofday]) at
          send time; the daemon echoes its own in the reply so the client
          can estimate the clock offset and align merged trace
          timestamps. Absent from older clients. *)
  | Submit of { klass : klass; jobs : string list; trace : trace_context option }
  | Status of { ticket : int }
  | Result of { ticket : int }
  | Stats
  | Metrics
      (** Merged metrics snapshot (daemon + workers), as riq-metrics/1
          JSON plus rendered Prometheus exposition. *)
  | Trace of { since : int }
      (** Daemon/worker trace events with global index [>= since];
          clients poll incrementally with the returned cursor. *)

val request_to_json : request -> Riq_util.Json.t
val request_of_json : Riq_util.Json.t -> (request, string) result

val ok : (string * Riq_util.Json.t) list -> Riq_util.Json.t
val error : string -> Riq_util.Json.t
val is_ok : Riq_util.Json.t -> bool
val error_of : Riq_util.Json.t -> string

type address = Unix_socket of string | Tcp of string * int

val address_of_string : string -> address
(** ["host:1234"] parses as TCP, everything else as a Unix socket path. *)

val address_to_string : address -> string
val sockaddr_of_address : address -> Unix.sockaddr
