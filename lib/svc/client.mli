(** Client side of the serve protocol, packaged as an engine
    {!Riq_exp.Backend.t}: submit the engine's cache-missing jobs as one
    ticket, poll, fetch, replay through [on_result]. Connection loss is
    retried once per request (submission is idempotent: a reopened ticket
    is served from the daemon's store or coalesced onto the still-running
    execution). *)

type t

val connect :
  ?klass:Protocol.klass ->
  ?poll_interval:float ->
  ?request_timeout:float ->
  ?metrics:Riq_obs.Metrics.t ->
  ?trace:Riq_obs.Tracer.t ->
  Protocol.address ->
  t
(** Connect and handshake ([hello] with this build's revision stamp).
    [klass] (default [Interactive]) is the daemon queue class for every
    submit; [poll_interval] (default 20 ms) paces result polling;
    [request_timeout] (default 120 s) is SO_RCVTIMEO per request. With
    [metrics], the client registers [client_requests_total],
    [client_reconnects_total] and the [client_request_seconds] histogram.
    With [trace] (a caller-owned sink), submit/await spans are emitted in
    wall-clock microseconds under this process's default pid, and every
    submit carries a {!Protocol.trace_context} so daemon spans can be
    joined back. The handshake also estimates the daemon clock offset
    from the round trip. Raises [Failure] when the daemon is unreachable
    or rejects the revision. *)

val close : t -> unit

val backend : t -> Riq_exp.Backend.t
(** The engine backend. Its telemetry hook contributes a ["service"]
    block: client-side provenance counters (remote hits / executed /
    batched, reconnects, clock offset) plus a live snapshot of the
    daemon's stats (queue depths, batching fan-out, store size and
    evictions). *)

val server_stats : t -> Riq_util.Json.t option
(** One [stats] round-trip; [None] if the daemon went away. *)

val service_json : t -> Riq_util.Json.t
(** The telemetry block described under {!backend}. *)

val server_metrics : t -> (Riq_obs.Metrics.snapshot, string) result
(** One [metrics] round-trip: the daemon's merged fleet snapshot
    (daemon + live workers + retired workers). *)

val server_exposition : t -> (string, string) result
(** Same scrape, rendered daemon-side as Prometheus text exposition. *)

val server_trace : ?since:int -> t -> (Riq_util.Json.t list * int, string) result
(** One [trace] round-trip: daemon/worker span events with global index
    [>= since] as Chrome trace-event objects, timestamps already shifted
    onto this client's clock by the handshake's offset estimate. Returns
    the events and the next cursor. *)

val clock_offset : t -> float
(** Estimated daemon clock minus client clock, in seconds. *)

val server_pid : t -> int
(** The daemon's pid (0 before an old daemon that doesn't send it). *)

val trace_id : t -> string
(** This connection's trace identity, stamped on submits and spans. *)
