(** Client side of the serve protocol, packaged as an engine
    {!Riq_exp.Backend.t}: submit the engine's cache-missing jobs as one
    ticket, poll, fetch, replay through [on_result]. Connection loss is
    retried once per request (submission is idempotent: a reopened ticket
    is served from the daemon's store or coalesced onto the still-running
    execution). *)

type t

val connect :
  ?klass:Protocol.klass ->
  ?poll_interval:float ->
  ?request_timeout:float ->
  Protocol.address ->
  t
(** Connect and handshake ([hello] with this build's revision stamp).
    [klass] (default [Interactive]) is the daemon queue class for every
    submit; [poll_interval] (default 20 ms) paces result polling;
    [request_timeout] (default 120 s) is SO_RCVTIMEO per request. Raises
    [Failure] when the daemon is unreachable or rejects the revision. *)

val close : t -> unit

val backend : t -> Riq_exp.Backend.t
(** The engine backend. Its telemetry hook contributes a ["service"]
    block: client-side provenance counters (remote hits / executed /
    batched, reconnects) plus a live snapshot of the daemon's stats
    (queue depths, batching fan-out, store size and evictions). *)

val server_stats : t -> Riq_util.Json.t option
(** One [stats] round-trip; [None] if the daemon went away. *)

val service_json : t -> Riq_util.Json.t
(** The telemetry block described under {!backend}. *)
