(* The shared, concurrency-safe result store.

   This wraps the engine's content-addressed {!Riq_exp.Cache} (same
   on-disk layout, so local sweeps, fuzz campaigns and the serve daemon
   all interoperate on one tree) and adds what sharing a tree between
   many processes needs:

   - read-through [find] that touches the entry's mtime, giving the tree
     a cross-process recency order without any index file;
   - a cooperative lockfile for the maintenance operations (eviction and
     gc walk-and-delete; plain entry writes don't need it — the cache's
     temp-file-plus-rename is already atomic and last-writer-wins with
     identical contents);
   - LRU eviction to a byte budget, and an age-based gc, both of which
     only ever delete whole entries — a reader that raced an eviction
     sees a miss, never a torn file. *)

open Riq_exp
module Metrics = Riq_obs.Metrics

(* Store-level instruments, registered against a caller-supplied registry
   so the daemon, the engine and the CLIs each see their own process's
   store traffic under the same metric names. *)
type instruments = {
  i_hits : Metrics.counter;
  i_misses : Metrics.counter;
  i_writes : Metrics.counter;
  i_evictions : Metrics.counter;
  i_lock_wait : Metrics.histogram;
}

let instruments_of registry =
  let counter = Metrics.counter registry in
  {
    i_hits =
      counter ~help:"Store reads served from the shared tree"
        ~labels:[ ("result", "hit") ] "store_reads_total";
    i_misses =
      counter ~help:"Store reads served from the shared tree"
        ~labels:[ ("result", "miss") ] "store_reads_total";
    i_writes = counter ~help:"Outcomes written to the store" "store_writes_total";
    i_evictions =
      counter ~help:"Entries evicted by budget enforcement" "store_evictions_total";
    i_lock_wait =
      Metrics.histogram registry
        ~help:"Seconds spent waiting for the maintenance lockfile"
        "store_lock_wait_seconds";
  }

type t = {
  cache : Cache.t;
  root : string;
  budget_bytes : int option;
  ins : instruments option;
  mutable evictions : int; (* entries evicted by this process *)
  mutable stores : int; (* stores since the last budget check *)
}

let lock_stale_seconds = 60.

let open_ ?root ?budget_bytes ?metrics () =
  let cache = Cache.open_ ?root () in
  {
    cache;
    root = Cache.root cache;
    budget_bytes;
    ins = Option.map instruments_of metrics;
    evictions = 0;
    stores = 0;
  }

let count t f = match t.ins with None -> () | Some ins -> Metrics.inc (f ins)

let cache t = t.cache
let root t = t.root
let evictions t = t.evictions

(* ------------------------------------------------------------------ *)
(* Lockfile                                                            *)
(* ------------------------------------------------------------------ *)

let lock_path t = Filename.concat t.root ".riq-lock"

(* O_CREAT|O_EXCL is atomic on every filesystem we care about. The lock
   is cooperative and only guards maintenance; a holder that died leaves
   a stale file, which the next taker breaks once it is older than
   [lock_stale_seconds] (maintenance passes take milliseconds). *)
let try_lock t =
  let path = lock_path t in
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 in
    let pid = Bytes.of_string (string_of_int (Unix.getpid ()) ^ "\n") in
    ignore (Unix.write fd pid 0 (Bytes.length pid));
    Unix.close fd;
    true
  with Unix.Unix_error (Unix.EEXIST, _, _) ->
    (match Unix.stat path with
    | { Unix.st_mtime; _ } when Unix.gettimeofday () -. st_mtime > lock_stale_seconds ->
        (try Sys.remove path with _ -> ())
    | _ -> ()
    | exception _ -> ());
    false

let unlock t = try Sys.remove (lock_path t) with _ -> ()

let with_lock ?(timeout = 30.) t f =
  let started = Unix.gettimeofday () in
  let deadline = started +. timeout in
  let rec acquire () =
    if try_lock t then ()
    else if Unix.gettimeofday () > deadline then
      failwith ("Store.with_lock: timed out waiting for " ^ lock_path t)
    else begin
      (try ignore (Unix.select [] [] [] 0.01) with _ -> ());
      acquire ()
    end
  in
  acquire ();
  (match t.ins with
  | None -> ()
  | Some ins ->
      Metrics.observe ins.i_lock_wait (Unix.gettimeofday () -. started));
  Fun.protect ~finally:(fun () -> unlock t) f

(* ------------------------------------------------------------------ *)
(* Entry walk                                                          *)
(* ------------------------------------------------------------------ *)

type entry = { e_path : string; e_bytes : int; e_mtime : float }

(* Walks every version/revision subtree under the root, so stat/gc/evict
   also see (and can reclaim) entries orphaned by a revision bump. Temp
   files and the lockfile are not entries. *)
let entries t =
  let acc = ref [] in
  let is_entry name =
    (* 32-hex-digit fingerprint, no suffix *)
    String.length name = 32
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         name
  in
  let rec walk dir depth =
    match Sys.readdir dir with
    | exception _ -> ()
    | names ->
        Array.iter
          (fun name ->
            let path = Filename.concat dir name in
            match Unix.lstat path with
            | exception _ -> ()
            | { Unix.st_kind = Unix.S_DIR; _ } -> walk path (depth + 1)
            | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ }
              when is_entry name ->
                acc := { e_path = path; e_bytes = st_size; e_mtime = st_mtime } :: !acc
            | _ -> ())
          names
  in
  walk t.root 0;
  !acc

type stat = {
  entry_count : int;
  total_bytes : int;
  oldest_mtime : float option;
  newest_mtime : float option;
}

let stat t =
  let es = entries t in
  let bytes = List.fold_left (fun a e -> a + e.e_bytes) 0 es in
  let fold f =
    match es with
    | [] -> None
    | e :: rest -> Some (List.fold_left (fun a e -> f a e.e_mtime) e.e_mtime rest)
  in
  {
    entry_count = List.length es;
    total_bytes = bytes;
    oldest_mtime = fold min;
    newest_mtime = fold max;
  }

let remove_entry e = try Sys.remove e.e_path with _ -> ()

(* ------------------------------------------------------------------ *)
(* Read-through / write                                                *)
(* ------------------------------------------------------------------ *)

let touch path =
  try Unix.utimes path 0. 0. (* both zero = set to now *) with _ -> ()

let find t key =
  match Cache.find t.cache key with
  | None ->
      count t (fun i -> i.i_misses);
      None
  | Some outcome ->
      (* Recency for LRU eviction: hits refresh the entry's mtime. *)
      touch (Cache.path t.cache key);
      count t (fun i -> i.i_hits);
      Some outcome

(* Evict least-recently-used entries until the tree fits the budget.
   Under the lock so two maintainers don't double-delete; entry removal
   itself is safe against concurrent readers (they just miss). *)
let evict_to_budget_locked t budget =
  let es = List.sort (fun a b -> compare a.e_mtime b.e_mtime) (entries t) in
  let total = List.fold_left (fun a e -> a + e.e_bytes) 0 es in
  let over = ref (total - budget) in
  let removed = ref 0 in
  List.iter
    (fun e ->
      if !over > 0 then begin
        remove_entry e;
        over := !over - e.e_bytes;
        incr removed
      end)
    es;
  t.evictions <- t.evictions + !removed;
  (match t.ins with
  | None -> ()
  | Some ins -> Metrics.add ins.i_evictions !removed);
  !removed

let evict_to_budget t budget = with_lock t (fun () -> evict_to_budget_locked t budget)

(* Budget enforcement piggybacks on stores, amortized: checking the whole
   tree per store would turn every simulation into a directory walk. *)
let budget_check_interval = 32

let store t key outcome =
  Cache.store t.cache key outcome;
  count t (fun i -> i.i_writes);
  match t.budget_bytes with
  | None -> ()
  | Some budget ->
      t.stores <- t.stores + 1;
      if t.stores >= budget_check_interval then begin
        t.stores <- 0;
        (* Non-blocking: if another process holds the lock, it is already
           doing the maintenance we wanted to do. *)
        if try_lock t then
          Fun.protect
            ~finally:(fun () -> unlock t)
            (fun () -> ignore (evict_to_budget_locked t budget))
      end

(* ------------------------------------------------------------------ *)
(* GC                                                                  *)
(* ------------------------------------------------------------------ *)

(* Deletes entries whose mtime is strictly older than [now - max_age];
   anything newer than the cutoff survives by construction. Returns
   (entries removed, bytes freed). *)
let gc ?(now = Unix.gettimeofday ()) t ~max_age_seconds =
  with_lock t (fun () ->
      let cutoff = now -. max_age_seconds in
      List.fold_left
        (fun (n, bytes) e ->
          if e.e_mtime < cutoff then begin
            remove_entry e;
            (n + 1, bytes + e.e_bytes)
          end
          else (n, bytes))
        (0, 0) (entries t))

let stat_json t =
  let s = stat t in
  let open Riq_util.Json in
  Obj
    [
      ("root", String t.root);
      ("entries", Int s.entry_count);
      ("bytes", Int s.total_bytes);
      ( "oldest_age_seconds",
        match s.oldest_mtime with
        | None -> Null
        | Some m -> Float (Unix.gettimeofday () -. m) );
      ( "newest_age_seconds",
        match s.newest_mtime with
        | None -> Null
        | Some m -> Float (Unix.gettimeofday () -. m) );
      ( "budget_bytes",
        match t.budget_bytes with None -> Null | Some b -> Int b );
      ("evictions", Int t.evictions);
    ]
