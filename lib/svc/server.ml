(* The riq-sim serve daemon.

   One single-threaded select loop multiplexes three kinds of file
   descriptor: the listening socket, client connections speaking the
   length-prefixed JSON protocol ({!Wire}/{!Protocol}), and the result
   pipes of a resident pool of forked simulation workers. Nothing in the
   loop blocks on simulation: jobs travel to workers over pipes and come
   back as (seconds, outcome) records, so status/stats requests stay
   responsive while a sweep grinds.

   Scheduling. Submitted jobs are keyed by {!Riq_exp.Job.fingerprint}.
   Each fingerprint is resolved exactly once: first against the shared
   {!Store} (read-through hit), then against the in-flight table (a
   second request for a fingerprint that is queued or running is batched
   onto it — one execution fans out to every waiter), and only then
   queued for a worker. The queue is two-class — interactive ahead of
   batch, with a weighted round-robin (BATCH_SHARE) that guarantees the
   batch class one dispatch in every four when both classes are waiting,
   so a nightly fuzz campaign can never starve an interactive sweep nor
   be starved by one.

   Failure containment mirrors the fork pool: a worker that dies mid-job
   gets the job retried once on a fresh worker; a worker that exceeds the
   per-job timeout is SIGKILLed and the job is answered [Job_timeout];
   replacements are forked on demand.

   SIGTERM/SIGINT starts a graceful drain: the listening socket closes,
   new submits are refused, queued and in-flight jobs run to completion
   (connected clients can still poll status and fetch results), then the
   workers are shut down over their pipes, reaped, and the socket file is
   unlinked. No orphaned processes, no stale lockfiles: the store lock is
   only ever held across a bounded maintenance walk. *)

open Riq_util
open Riq_exp
module Metrics = Riq_obs.Metrics
module Tracer = Riq_obs.Tracer
module Log = Riq_obs.Log

(* When both classes are waiting, of every [batch_share] dispatches one
   goes to the batch queue. *)
let batch_share = 4

(* Daemon- and worker-side trace events are stamped in wall-clock
   microseconds, the unit Chrome traces use natively; clients shift them
   by the estimated clock offset before merging. *)
let us seconds = int_of_float (seconds *. 1e6)

type config = {
  address : Protocol.address;
  workers : int;
  store : Store.t;
  timeout : float option; (* per-job wall-clock budget *)
  metrics : Metrics.t;
  metrics_out : string option; (* periodic atomic exposition dump *)
  metrics_interval : float;
}

let config ?(workers = 1) ?(timeout = Some 600.) ?metrics ?metrics_out
    ?(metrics_interval = 5.) ~address store =
  if workers < 1 then invalid_arg "Server.config: workers must be >= 1";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { address; workers; store; timeout; metrics; metrics_out; metrics_interval }

(* ------------------------------------------------------------------ *)
(* Worker processes                                                    *)
(* ------------------------------------------------------------------ *)

(* Parent -> worker: one frame (4-byte BE length + marshalled Job.t).
   Worker -> parent: one frame (marshalled
   (seconds, Outcome.t, Metrics.snapshot)) — the snapshot is the worker's
   cumulative registry, so the parent always holds each worker's latest
   totals and loses nothing when a worker dies between results.
   EOF on the request pipe shuts the worker down. *)

let read_frame fd =
  let hdr = Wire.read_exact fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len <= 0 || len > Wire.max_frame then raise (Wire.Protocol_error "bad frame");
  Wire.read_exact fd len

let write_frame fd payload =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length payload));
  Wire.write_all fd hdr;
  Wire.write_all fd payload

let worker_main req_r res_w =
  let registry = Metrics.create () in
  let jobs =
    Metrics.counter registry ~help:"Jobs executed by this resident worker"
      "worker_jobs_total"
  in
  let job_seconds =
    Metrics.histogram registry ~help:"Wall-clock seconds per worker job"
      "worker_job_seconds"
  in
  let rec loop () =
    match read_frame req_r with
    | exception (Wire.Closed | Wire.Protocol_error _) -> ()
    | payload ->
        let job : Job.t = Marshal.from_bytes payload 0 in
        let t0 = Unix.gettimeofday () in
        let outcome = Runner.execute_safe job in
        let seconds = Unix.gettimeofday () -. t0 in
        Metrics.inc jobs;
        Metrics.observe job_seconds seconds;
        write_frame res_w
          (Marshal.to_bytes
             (seconds, (outcome : Outcome.t), Metrics.snapshot registry)
             []);
        loop ()
  in
  loop ()

type worker = {
  w_pid : int;
  w_req : Unix.file_descr;
  w_res : Unix.file_descr;
  mutable w_fp : string option; (* fingerprint in flight *)
  mutable w_started : float;
  mutable w_snap : Metrics.snapshot; (* latest cumulative registry *)
}

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type waiter = {
  wt_ticket : int;
  wt_index : int;
  wt_source : Protocol.source;
}

type pending = {
  p_job : Job.t;
  p_klass : Protocol.klass;
  p_enqueued : float; (* wall clock at submit, for queue-wait spans *)
  p_trace : Protocol.trace_context option;
  mutable p_state : [ `Queued | `Running ];
  mutable p_waiters : waiter list; (* reverse submission order *)
  mutable p_retried : bool;
}

type ticket = {
  t_id : int;
  t_total : int;
  t_outcomes : Outcome.t option array;
  t_sources : Protocol.source array;
  t_seconds : float array;
  mutable t_done : int;
}

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_hello : bool;
}

(* The daemon's own instruments, registered against cfg.metrics (which
   the caller usually shares with the {!Store} it opened). Request
   counters are registered lazily per op label. *)
type instruments = {
  i_submitted : Metrics.counter;
  i_store_hits : Metrics.counter;
  i_executed : Metrics.counter;
  i_batched : Metrics.counter;
  i_retries : Metrics.counter;
  i_timeouts : Metrics.counter;
  i_queue_interactive : Metrics.gauge;
  i_queue_batch : Metrics.gauge;
  i_inflight : Metrics.gauge;
  i_workers : Metrics.gauge;
  i_connections : Metrics.gauge;
  i_tickets : Metrics.gauge;
  i_uptime : Metrics.gauge;
  i_wait_interactive : Metrics.histogram;
  i_wait_batch : Metrics.histogram;
  i_simulate : Metrics.histogram;
}

let instruments_of registry =
  let counter = Metrics.counter registry in
  let gauge = Metrics.gauge registry in
  let wait_help = "Seconds jobs spent queued before dispatch" in
  {
    i_submitted = counter ~help:"Jobs submitted over the wire" "serve_submitted_total";
    i_store_hits =
      counter ~help:"Submitted jobs answered directly from the shared store"
        "store_hits_total";
    i_executed = counter ~help:"Jobs executed by resident workers" "serve_executed_total";
    i_batched =
      counter ~help:"Jobs coalesced onto an in-flight identical fingerprint"
        "serve_batched_total";
    i_retries = counter ~help:"Jobs retried after a worker crash" "serve_retries_total";
    i_timeouts = counter ~help:"Jobs killed at the wall-clock budget" "serve_timeouts_total";
    i_queue_interactive =
      gauge ~help:"Queued jobs per class" ~labels:[ ("class", "interactive") ]
        "serve_queue_depth";
    i_queue_batch =
      gauge ~help:"Queued jobs per class" ~labels:[ ("class", "batch") ]
        "serve_queue_depth";
    i_inflight = gauge ~help:"Jobs currently on a worker" "serve_inflight";
    i_workers = gauge ~help:"Resident worker processes" "serve_workers";
    i_connections = gauge ~help:"Open client connections" "serve_connections";
    i_tickets = gauge ~help:"Tickets awaiting fetch" "serve_tickets_open";
    i_uptime = gauge ~help:"Daemon uptime in seconds" "serve_uptime_seconds";
    i_wait_interactive =
      Metrics.histogram registry ~help:wait_help
        ~labels:[ ("class", "interactive") ] "serve_queue_wait_seconds";
    i_wait_batch =
      Metrics.histogram registry ~help:wait_help ~labels:[ ("class", "batch") ]
        "serve_queue_wait_seconds";
    i_simulate =
      Metrics.histogram registry ~help:"Wall-clock seconds per worker execution"
        "serve_simulate_seconds";
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  ins : instruments;
  tracer : Tracer.t; (* ring of wall-clock-us service spans *)
  mutable retired : Metrics.snapshot; (* folded registries of dead workers *)
  mutable conns : conn list;
  mutable pool : worker list;
  pending : (string, pending) Hashtbl.t; (* fingerprint -> queued/running *)
  q_interactive : string Queue.t;
  q_batch : string Queue.t;
  tickets : (int, ticket) Hashtbl.t;
  mutable next_ticket : int;
  mutable since_batch : int; (* interactive dispatches since a batch one *)
  mutable draining : bool;
  started : float;
  mutable last_dump : float; (* last --metrics-out write *)
  (* counters *)
  mutable n_submitted : int;
  mutable n_hits : int;
  mutable n_executed : int;
  mutable n_batched : int;
  mutable n_retries : int;
  mutable n_timeouts : int;
  mutable n_batch_jobs : int; (* waiters fanned out per execution, summed *)
  mutable n_max_batch : int;
  mutable n_max_queue : int;
  mutable n_requests : int;
}

let queue_depth t = Queue.length t.q_interactive + Queue.length t.q_batch

let inflight t = List.length (List.filter (fun w -> w.w_fp <> None) t.pool)

(* Point-in-time gauges are refreshed right before any snapshot leaves
   the daemon (metrics op, periodic dump) rather than on every change. *)
let refresh_gauges t =
  Metrics.set t.ins.i_queue_interactive (float_of_int (Queue.length t.q_interactive));
  Metrics.set t.ins.i_queue_batch (float_of_int (Queue.length t.q_batch));
  Metrics.set t.ins.i_inflight (float_of_int (inflight t));
  Metrics.set t.ins.i_workers (float_of_int (List.length t.pool));
  Metrics.set t.ins.i_connections (float_of_int (List.length t.conns));
  Metrics.set t.ins.i_tickets (float_of_int (Hashtbl.length t.tickets));
  Metrics.set t.ins.i_uptime (Unix.gettimeofday () -. t.started)

(* Daemon totals + every worker's latest cumulative registry + what dead
   workers left behind. Gauges sum across processes by convention, and
   the worker registries only carry counters/histograms, so the merge is
   exactly the fleet view. *)
let merged_snapshot t =
  refresh_gauges t;
  Metrics.merge_all
    (Metrics.snapshot t.cfg.metrics :: t.retired
    :: List.filter_map
         (fun w -> if w.w_snap = [] then None else Some w.w_snap)
         t.pool)

(* ------------------------------------------------------------------ *)
(* Socket setup / teardown                                             *)
(* ------------------------------------------------------------------ *)

let listen_socket address =
  match address with
  | Protocol.Unix_socket path ->
      (if Sys.file_exists path then begin
         (* A live daemon refuses the bind; a stale socket from a dead one
            is unlinked after a probe connect fails. *)
         let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         let alive =
           try
             Unix.connect probe (Unix.ADDR_UNIX path);
             true
           with _ -> false
         in
         (try Unix.close probe with _ -> ());
         if alive then failwith (Printf.sprintf "a daemon is already serving on %s" path)
         else try Sys.remove path with _ -> ()
       end);
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Protocol.Tcp _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Protocol.sockaddr_of_address address);
      Unix.listen fd 64;
      fd

let close_listener t =
  (try Unix.close t.listen_fd with _ -> ());
  match t.cfg.address with
  | Protocol.Unix_socket path -> ( try Sys.remove path with _ -> ())
  | Protocol.Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Worker lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let spawn_worker t =
  let req_r, req_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close req_w;
      Unix.close res_r;
      (try Unix.close t.listen_fd with _ -> ());
      List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) t.conns;
      List.iter
        (fun w ->
          (try Unix.close w.w_req with _ -> ());
          try Unix.close w.w_res with _ -> ())
        t.pool;
      (try worker_main req_r res_w with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close req_r;
      Unix.close res_w;
      let w =
        {
          w_pid = pid;
          w_req = req_w;
          w_res = res_r;
          w_fp = None;
          w_started = 0.;
          w_snap = [];
        }
      in
      t.pool <- w :: t.pool;
      Tracer.set_process_name t.tracer ~pid (Printf.sprintf "riq-serve worker %d" pid);
      Log.debug ~scope:"serve" ~kv:[ ("pid", Log.int pid) ] "worker spawned";
      w

let reap_worker t ?(kill = false) w =
  if kill then (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
  (try Unix.close w.w_req with _ -> ());
  (try Unix.close w.w_res with _ -> ());
  (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
  (* Keep the dead worker's totals in the fleet view. *)
  if w.w_snap <> [] then t.retired <- Metrics.merge t.retired w.w_snap;
  t.pool <- List.filter (fun w' -> w'.w_pid <> w.w_pid) t.pool

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

let deliver_to_ticket t ~ticket ~index ~source ~seconds outcome =
  match Hashtbl.find_opt t.tickets ticket with
  | None -> () (* ticket already dropped (drain) *)
  | Some tk ->
      if tk.t_outcomes.(index) = None then begin
        tk.t_outcomes.(index) <- Some outcome;
        tk.t_sources.(index) <- source;
        tk.t_seconds.(index) <- seconds;
        tk.t_done <- tk.t_done + 1
      end

let resolve_pending t fp ~seconds (outcome : Outcome.t) =
  match Hashtbl.find_opt t.pending fp with
  | None -> ()
  | Some p ->
      let waiters = List.rev p.p_waiters in
      let fanout = List.length waiters in
      t.n_batch_jobs <- t.n_batch_jobs + fanout;
      if fanout > t.n_max_batch then t.n_max_batch <- fanout;
      List.iter
        (fun w ->
          deliver_to_ticket t ~ticket:w.wt_ticket ~index:w.wt_index
            ~source:w.wt_source ~seconds outcome)
        waiters;
      Hashtbl.remove t.pending fp

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Weighted round-robin across the two class queues; see the header. *)
let next_fingerprint t =
  let qi, qb = (t.q_interactive, t.q_batch) in
  if Queue.is_empty qi && Queue.is_empty qb then None
  else if Queue.is_empty qb then Some (Queue.pop qi)
  else if Queue.is_empty qi then Some (Queue.pop qb)
  else if t.since_batch >= batch_share - 1 then begin
    t.since_batch <- 0;
    Some (Queue.pop qb)
  end
  else begin
    t.since_batch <- t.since_batch + 1;
    Some (Queue.pop qi)
  end

(* Span args carry the fingerprint (and the submitting client's trace id
   when it sent one) so merged traces can be joined back to jobs. *)
let span_args p =
  ("fp", Tracer.Str (String.sub (Job.fingerprint p.p_job) 0 12))
  ::
  (match p.p_trace with
  | None -> []
  | Some tc -> [ ("trace_id", Tracer.Str tc.Protocol.trace_id) ])

let dispatch_one t w fp =
  match Hashtbl.find_opt t.pending fp with
  | None -> () (* evaporated (shouldn't happen) *)
  | Some p -> (
      p.p_state <- `Running;
      w.w_fp <- Some fp;
      w.w_started <- Unix.gettimeofday ();
      let wait = Float.max 0. (w.w_started -. p.p_enqueued) in
      let wait_hist, tid =
        match p.p_klass with
        | Protocol.Interactive -> (t.ins.i_wait_interactive, 1)
        | Protocol.Batch -> (t.ins.i_wait_batch, 2)
      in
      Metrics.observe wait_hist wait;
      Tracer.complete t.tracer ~now:(us p.p_enqueued) ~dur:(us wait) ~tid
        ~args:(span_args p) ~cat:"serve" "queue-wait";
      try write_frame w.w_req (Marshal.to_bytes p.p_job [])
      with _ ->
        (* Worker died between jobs: retry via the crash path. *)
        w.w_fp <- None;
        reap_worker t w;
        p.p_state <- `Queued;
        Queue.push fp
          (match p.p_klass with
          | Protocol.Interactive -> t.q_interactive
          | Protocol.Batch -> t.q_batch))

let fill_workers t =
  (* Replace crashed workers while there is work for them. *)
  while List.length t.pool < min t.cfg.workers (max 1 (queue_depth t)) do
    ignore (spawn_worker t)
  done;
  List.iter
    (fun w ->
      if w.w_fp = None then
        match next_fingerprint t with
        | Some fp -> dispatch_one t w fp
        | None -> ())
    t.pool

let requeue_front t fp p =
  p.p_state <- `Queued;
  let q =
    match p.p_klass with
    | Protocol.Interactive -> t.q_interactive
    | Protocol.Batch -> t.q_batch
  in
  (* Queue has no push-front; rebuild. Queues are short-lived and small
     relative to simulation time, so this is fine. *)
  let rest = Queue.copy q in
  Queue.clear q;
  Queue.push fp q;
  Queue.transfer rest q

let worker_crashed t w =
  (match w.w_fp with
  | None -> ()
  | Some fp -> (
      match Hashtbl.find_opt t.pending fp with
      | None -> ()
      | Some p ->
          if p.p_retried then
            resolve_pending t fp ~seconds:0.
              (Error (Outcome.Worker_crashed "serve worker died mid-job"))
          else begin
            p.p_retried <- true;
            t.n_retries <- t.n_retries + 1;
            Metrics.inc t.ins.i_retries;
            Log.warn ~scope:"serve"
              ~kv:[ ("pid", Log.int w.w_pid) ]
              "worker died mid-job, retrying";
            requeue_front t fp p
          end));
  reap_worker t w

let worker_result t w =
  match read_frame w.w_res with
  | exception _ -> worker_crashed t w
  | payload ->
      let seconds, (outcome : Outcome.t), (snap : Metrics.snapshot) =
        Marshal.from_bytes payload 0
      in
      w.w_snap <- snap;
      (match w.w_fp with
      | None -> ()
      | Some fp ->
          Store.store t.cfg.store fp outcome;
          t.n_executed <- t.n_executed + 1;
          Metrics.inc t.ins.i_executed;
          Metrics.observe t.ins.i_simulate seconds;
          (match Hashtbl.find_opt t.pending fp with
          | Some p ->
              Tracer.complete t.tracer ~now:(us w.w_started) ~dur:(us seconds)
                ~pid:w.w_pid ~args:(span_args p) ~cat:"serve" "simulate"
          | None -> ());
          resolve_pending t fp ~seconds outcome);
      w.w_fp <- None

let check_timeouts t =
  match t.cfg.timeout with
  | None -> ()
  | Some budget ->
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          match w.w_fp with
          | Some fp when now -. w.w_started > budget ->
              t.n_timeouts <- t.n_timeouts + 1;
              Metrics.inc t.ins.i_timeouts;
              Log.warn ~scope:"serve"
                ~kv:[ ("pid", Log.int w.w_pid); ("budget", Log.float budget) ]
                "job exceeded wall-clock budget, killing worker";
              resolve_pending t fp ~seconds:budget (Error (Outcome.Job_timeout budget));
              reap_worker t ~kill:true w
          | _ -> ())
        t.pool

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let stats_json t =
  Json.Obj
    [
      ("server", Json.String Protocol.version);
      ("revision", Json.String Revision.stamp);
      ("address", Json.String (Protocol.address_to_string t.cfg.address));
      ("uptime_seconds", Json.Float (Unix.gettimeofday () -. t.started));
      ("workers", Json.Int t.cfg.workers);
      ("draining", Json.Bool t.draining);
      ("requests", Json.Int t.n_requests);
      ("submitted", Json.Int t.n_submitted);
      ("hits", Json.Int t.n_hits);
      ("misses", Json.Int (t.n_submitted - t.n_hits - t.n_batched));
      ("executed", Json.Int t.n_executed);
      ("batched", Json.Int t.n_batched);
      ("retries", Json.Int t.n_retries);
      ("timeouts", Json.Int t.n_timeouts);
      ("queue_interactive", Json.Int (Queue.length t.q_interactive));
      ("queue_batch", Json.Int (Queue.length t.q_batch));
      ("queue_depth_max", Json.Int t.n_max_queue);
      ("inflight", Json.Int (List.length (List.filter (fun w -> w.w_fp <> None) t.pool)));
      ("tickets_open", Json.Int (Hashtbl.length t.tickets));
      ( "batch",
        Json.Obj
          [
            ("executions", Json.Int t.n_executed);
            ("jobs_fanned_out", Json.Int t.n_batch_jobs);
            ("max_fanout", Json.Int t.n_max_batch);
          ] );
      ("store", Store.stat_json t.cfg.store);
    ]

let handle_submit t ~klass ~trace ~(wire_jobs : string list) =
  if t.draining then Protocol.error "draining: daemon is shutting down"
  else begin
    match List.map Protocol.job_of_wire wire_jobs with
    | exception _ -> Protocol.error "undecodable job payload"
    | jobs ->
        let total = List.length jobs in
        let id = t.next_ticket in
        t.next_ticket <- id + 1;
        let tk =
          {
            t_id = id;
            t_total = total;
            t_outcomes = Array.make total None;
            t_sources = Array.make total Protocol.Hit;
            t_seconds = Array.make total 0.;
            t_done = 0;
          }
        in
        Hashtbl.replace t.tickets id tk;
        let now = Unix.gettimeofday () in
        List.iteri
          (fun index job ->
            t.n_submitted <- t.n_submitted + 1;
            Metrics.inc t.ins.i_submitted;
            let fp = Job.fingerprint job in
            match Store.find t.cfg.store fp with
            | Some outcome ->
                t.n_hits <- t.n_hits + 1;
                Metrics.inc t.ins.i_store_hits;
                deliver_to_ticket t ~ticket:id ~index ~source:Protocol.Hit
                  ~seconds:0. outcome
            | None -> (
                match Hashtbl.find_opt t.pending fp with
                | Some p ->
                    (* Same fingerprint already queued or running (possibly
                       for another client): coalesce. *)
                    t.n_batched <- t.n_batched + 1;
                    Metrics.inc t.ins.i_batched;
                    p.p_waiters <-
                      { wt_ticket = id; wt_index = index; wt_source = Protocol.Batched }
                      :: p.p_waiters
                | None ->
                    let p =
                      {
                        p_job = job;
                        p_klass = klass;
                        p_enqueued = now;
                        p_trace = trace;
                        p_state = `Queued;
                        p_waiters =
                          [ { wt_ticket = id; wt_index = index; wt_source = Protocol.Executed } ];
                        p_retried = false;
                      }
                    in
                    Hashtbl.replace t.pending fp p;
                    Queue.push fp
                      (match klass with
                      | Protocol.Interactive -> t.q_interactive
                      | Protocol.Batch -> t.q_batch)))
          jobs;
        if queue_depth t > t.n_max_queue then t.n_max_queue <- queue_depth t;
        Protocol.ok
          [
            ("ticket", Json.Int id);
            ("jobs", Json.Int total);
            ("done", Json.Int tk.t_done);
          ]
  end

let op_name = function
  | Protocol.Hello _ -> "hello"
  | Protocol.Submit _ -> "submit"
  | Protocol.Status _ -> "status"
  | Protocol.Result _ -> "result"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"
  | Protocol.Trace _ -> "trace"

let handle_request t conn (req : Protocol.request) =
  t.n_requests <- t.n_requests + 1;
  Metrics.inc
    (Metrics.counter t.cfg.metrics ~help:"Wire requests handled, by op"
       ~labels:[ ("op", op_name req) ]
       "serve_requests_total");
  match req with
  | Protocol.Hello { revision; format; t_client = _ } ->
      if revision <> Revision.stamp then
        Protocol.error
          (Printf.sprintf "revision mismatch: daemon %s, client %s" Revision.stamp
             revision)
      else if format <> Revision.format_version then
        Protocol.error
          (Printf.sprintf "format mismatch: daemon %d, client %d"
             Revision.format_version format)
      else begin
        conn.c_hello <- true;
        (* server_time lets the client estimate the clock offset (its
           send/receive times bracket this read) and shift daemon trace
           timestamps onto its own clock before merging. *)
        Protocol.ok
          [
            ("server", Json.String Protocol.version);
            ("workers", Json.Int t.cfg.workers);
            ("server_time", Json.Float (Unix.gettimeofday ()));
            ("pid", Json.Int (Unix.getpid ()));
          ]
      end
  | _ when not conn.c_hello -> Protocol.error "hello required before any other op"
  | Protocol.Submit { klass; jobs; trace } ->
      handle_submit t ~klass ~trace ~wire_jobs:jobs
  | Protocol.Status { ticket } -> (
      match Hashtbl.find_opt t.tickets ticket with
      | None -> Protocol.error "unknown ticket"
      | Some tk ->
          Protocol.ok
            [
              ("ticket", Json.Int tk.t_id);
              ("done", Json.Int tk.t_done);
              ("total", Json.Int tk.t_total);
              ("queue_depth", Json.Int (queue_depth t));
            ])
  | Protocol.Result { ticket } -> (
      match Hashtbl.find_opt t.tickets ticket with
      | None -> Protocol.error "unknown ticket"
      | Some tk ->
          if tk.t_done < tk.t_total then
            Json.Obj
              [
                ("ok", Json.Bool false);
                ("error", Json.String "pending");
                ("done", Json.Int tk.t_done);
                ("total", Json.Int tk.t_total);
              ]
          else begin
            Hashtbl.remove t.tickets ticket;
            let outcome i =
              match tk.t_outcomes.(i) with
              | Some o -> o
              | None -> Error (Outcome.Worker_crashed "lost during drain")
            in
            Protocol.ok
              [
                ( "outcomes",
                  Json.List
                    (List.init tk.t_total (fun i ->
                         Json.String (Protocol.outcome_to_wire (outcome i)))) );
                ( "sources",
                  Json.List
                    (List.init tk.t_total (fun i ->
                         Json.String (Protocol.source_to_string tk.t_sources.(i)))) );
                ( "seconds",
                  Json.List
                    (List.init tk.t_total (fun i -> Json.Float tk.t_seconds.(i))) );
              ]
          end)
  | Protocol.Stats -> stats_json t
  | Protocol.Metrics ->
      let snap = merged_snapshot t in
      Protocol.ok
        [
          ("metrics", Metrics.to_json snap);
          ("exposition", Json.String (Metrics.to_prometheus snap));
        ]
  | Protocol.Trace { since } ->
      (* Incremental read of the span ring: events carry a global index
         (recorded order); [since] is the client's cursor. Overwritten
         events are reported as dropped, not silently skipped. *)
      let events = Tracer.events t.tracer in
      let recorded = Tracer.recorded t.tracer in
      let first = recorded - List.length events in
      let fresh =
        List.filteri (fun i _ -> first + i >= since) events
      in
      Protocol.ok
        [
          ("events", Json.List (List.map Tracer.event_json fresh));
          ("next", Json.Int recorded);
          ("dropped", Json.Int (max 0 (first - since)));
          ("pid", Json.Int (Unix.getpid ()));
        ]

(* ------------------------------------------------------------------ *)
(* Client connections                                                  *)
(* ------------------------------------------------------------------ *)

let close_conn t conn =
  (try Unix.close conn.c_fd with _ -> ());
  t.conns <- List.filter (fun c -> c.c_fd <> conn.c_fd) t.conns

(* Peel complete frames off the connection's accumulation buffer and
   answer each; responses are written synchronously (they are small, and
   a client that cannot drain its own responses deserves the stall). *)
let service_conn_buffer t conn =
  let continue_ = ref true in
  while !continue_ do
    let data = Buffer.contents conn.c_buf in
    let len = String.length data in
    if len < 4 then continue_ := false
    else
      let frame_len = Int32.to_int (String.get_int32_be data 0) in
      if frame_len < 0 || frame_len > Wire.max_frame then begin
        Wire.send conn.c_fd (Protocol.error "bad frame length");
        close_conn t conn;
        continue_ := false
      end
      else if len < 4 + frame_len then continue_ := false
      else begin
        Buffer.clear conn.c_buf;
        Buffer.add_substring conn.c_buf data (4 + frame_len) (len - 4 - frame_len);
        let response =
          match Json.of_string (String.sub data 4 frame_len) with
          | Error msg -> Protocol.error msg
          | Ok j -> (
              match Protocol.request_of_json j with
              | Error msg -> Protocol.error msg
              | Ok req -> handle_request t conn req)
        in
        try Wire.send conn.c_fd response
        with _ ->
          close_conn t conn;
          continue_ := false
      end
  done

let conn_readable t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception _ -> close_conn t conn
  | 0 -> close_conn t conn
  | n ->
      Buffer.add_subbytes conn.c_buf chunk 0 n;
      service_conn_buffer t conn

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let drain_requested = ref false

let install_signal_handlers () =
  let handle = Sys.Signal_handle (fun _ -> drain_requested := true) in
  List.iter
    (fun s -> try Sys.set_signal s handle with _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let work_left t =
  queue_depth t > 0 || List.exists (fun w -> w.w_fp <> None) t.pool

(* Atomic exposition dump: scrapers never see a torn file. *)
let dump_metrics t path =
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (Metrics.to_prometheus (merged_snapshot t));
    close_out oc;
    Sys.rename tmp path
  with e ->
    Log.warn ~scope:"serve"
      ~kv:[ ("path", path); ("error", Printexc.to_string e) ]
      "metrics dump failed"

let maybe_dump_metrics t =
  match t.cfg.metrics_out with
  | None -> ()
  | Some path ->
      let now = Unix.gettimeofday () in
      if now -. t.last_dump >= t.cfg.metrics_interval then begin
        t.last_dump <- now;
        dump_metrics t path
      end

let serve cfg =
  let tracer = Tracer.ring ~capacity:16384 () in
  Tracer.set_pid tracer (Unix.getpid ());
  Tracer.set_process_name tracer "riq-serve";
  Tracer.set_thread_name tracer ~tid:0 "daemon";
  Tracer.set_thread_name tracer ~tid:1 "queue interactive";
  Tracer.set_thread_name tracer ~tid:2 "queue batch";
  let t =
    {
      cfg;
      listen_fd = listen_socket cfg.address;
      ins = instruments_of cfg.metrics;
      tracer;
      retired = [];
      conns = [];
      pool = [];
      pending = Hashtbl.create 256;
      q_interactive = Queue.create ();
      q_batch = Queue.create ();
      tickets = Hashtbl.create 64;
      next_ticket = 1;
      since_batch = 0;
      draining = false;
      started = Unix.gettimeofday ();
      last_dump = Unix.gettimeofday ();
      n_submitted = 0;
      n_hits = 0;
      n_executed = 0;
      n_batched = 0;
      n_retries = 0;
      n_timeouts = 0;
      n_batch_jobs = 0;
      n_max_batch = 0;
      n_max_queue = 0;
      n_requests = 0;
    }
  in
  drain_requested := false;
  install_signal_handlers ();
  (* A client that disappears mid-write must not kill the daemon. *)
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> None
  in
  Log.info ~scope:"serve"
    ~kv:
      [
        ("address", Protocol.address_to_string cfg.address);
        ("workers", Log.int cfg.workers);
        ("store", Store.root cfg.store);
        ("pid", Log.int (Unix.getpid ()));
      ]
    "listening";
  let listener_open = ref true in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) t.conns;
      t.conns <- [];
      List.iter (fun w -> reap_worker t w) t.pool;
      if !listener_open then close_listener t;
      (* Last write wins: the post-mortem exposition includes everything
         the retired workers reported. *)
      (match cfg.metrics_out with Some path -> dump_metrics t path | None -> ());
      match old_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
      | None -> ())
    (fun () ->
      let running = ref true in
      while !running do
        if !drain_requested && not t.draining then begin
          t.draining <- true;
          Log.info ~scope:"serve"
            ~kv:
              [
                ("queued", Log.int (queue_depth t));
                ("inflight", Log.int (inflight t));
              ]
            "drain requested";
          (* Stop accepting new clients; existing ones keep polling. *)
          close_listener t;
          listener_open := false
        end;
        if t.draining && not (work_left t) then running := false
        else begin
          fill_workers t;
          maybe_dump_metrics t;
          let busy = List.filter (fun w -> w.w_fp <> None) t.pool in
          let read_fds =
            (if !listener_open then [ t.listen_fd ] else [])
            @ List.map (fun c -> c.c_fd) t.conns
            @ List.map (fun w -> w.w_res) busy
          in
          let select_timeout =
            match (t.cfg.timeout, busy) with
            | Some budget, _ :: _ ->
                let now = Unix.gettimeofday () in
                List.fold_left
                  (fun acc w -> min acc (max 0.05 (budget -. (now -. w.w_started))))
                  1.0 busy
            | _ -> 1.0
          in
          let readable =
            match Unix.select read_fds [] [] select_timeout with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
            | exception Unix.Unix_error (Unix.EBADF, _, _) -> []
          in
          (* Workers first: results unblock waiters and free slots. *)
          List.iter
            (fun w -> if List.memq w.w_res readable then worker_result t w)
            busy;
          (* Dead workers show up as EOF on their result pipe too; the
             read inside worker_result handled that via worker_crashed. *)
          check_timeouts t;
          List.iter
            (fun conn -> if List.memq conn.c_fd readable then conn_readable t conn)
            (List.filter (fun c -> List.memq c.c_fd readable) t.conns);
          if !listener_open && List.memq t.listen_fd readable then begin
            match Unix.accept t.listen_fd with
            | fd, _ ->
                t.conns <- { c_fd = fd; c_buf = Buffer.create 4096; c_hello = false } :: t.conns
            | exception _ -> ()
          end
        end
      done;
      Log.info ~scope:"serve" "drained, shutting down")
