(** The [riq-sim serve] daemon: a single-threaded select loop multiplexing
    the listening socket, wire-protocol clients and a resident pool of
    forked simulation workers, over a shared {!Store}.

    Scheduling: jobs are keyed by fingerprint and each fingerprint
    resolves exactly once — store read-through, then coalescing onto an
    in-flight execution (request batching), then the two-class queue
    (interactive ahead of batch with a weighted round-robin that
    guarantees batch one dispatch in four when both wait). A worker that
    dies mid-job gets the job retried once; one that exceeds the per-job
    timeout is killed and the job answered [Job_timeout].

    SIGTERM/SIGINT drains gracefully: stop accepting, run queued and
    in-flight jobs to completion (clients can still poll and fetch),
    shut down and reap every worker, unlink the socket.

    Observability: the daemon instruments itself against [metrics]
    ([serve_*], [store_hits_total]; share the registry with the
    {!Store.open_} call so [store_*] series land in the same scrape) and
    keeps a bounded ring of wall-clock-microsecond spans (queue-wait per
    class, simulate per worker pid). Both are served over the wire
    ([metrics] and [trace] ops); workers ship their own registries back
    with each result and the daemon merges them into the fleet view.
    Logging goes through {!Riq_obs.Log} under scope ["serve"]. *)

type config = {
  address : Protocol.address;
  workers : int;
  store : Store.t;
  timeout : float option;
  metrics : Riq_obs.Metrics.t;
  metrics_out : string option;
  metrics_interval : float;
}

val config :
  ?workers:int ->
  ?timeout:float option ->
  ?metrics:Riq_obs.Metrics.t ->
  ?metrics_out:string ->
  ?metrics_interval:float ->
  address:Protocol.address ->
  Store.t ->
  config
(** [workers] defaults to 1, [timeout] to 600 s per job ([None]
    disables). [metrics] defaults to a fresh registry; pass the one the
    store was opened with to get a combined exposition. With
    [metrics_out], the daemon atomically rewrites that file with the
    Prometheus exposition every [metrics_interval] (default 5 s) seconds
    and once more at shutdown. *)

val serve : config -> unit
(** Run the daemon until a graceful drain completes. Raises [Failure] if
    the address is already being served. *)
