(** The [riq-sim serve] daemon: a single-threaded select loop multiplexing
    the listening socket, wire-protocol clients and a resident pool of
    forked simulation workers, over a shared {!Store}.

    Scheduling: jobs are keyed by fingerprint and each fingerprint
    resolves exactly once — store read-through, then coalescing onto an
    in-flight execution (request batching), then the two-class queue
    (interactive ahead of batch with a weighted round-robin that
    guarantees batch one dispatch in four when both wait). A worker that
    dies mid-job gets the job retried once; one that exceeds the per-job
    timeout is killed and the job answered [Job_timeout].

    SIGTERM/SIGINT drains gracefully: stop accepting, run queued and
    in-flight jobs to completion (clients can still poll and fetch),
    shut down and reap every worker, unlink the socket. *)

type config = {
  address : Protocol.address;
  workers : int;
  store : Store.t;
  timeout : float option;
  log : string -> unit;
}

val config :
  ?workers:int ->
  ?timeout:float option ->
  ?log:(string -> unit) ->
  address:Protocol.address ->
  Store.t ->
  config
(** [workers] defaults to 1, [timeout] to 600 s per job ([None]
    disables), [log] to silent. *)

val serve : config -> unit
(** Run the daemon until a graceful drain completes. Raises [Failure] if
    the address is already being served. *)
