(** Length-prefixed JSON framing: every message on every socket of the
    serving subsystem is a 4-byte big-endian length followed by that many
    bytes of JSON. See DESIGN.md section 7 for the message catalogue. *)

exception Closed
(** Raised on EOF mid-frame — the peer went away. *)

exception Protocol_error of string
(** Malformed frame: oversized length, invalid JSON, bad hex. *)

val max_frame : int
(** Upper bound on a frame payload (64 MiB). *)

val send : Unix.file_descr -> Riq_util.Json.t -> unit
(** Write one whole frame (blocking). *)

val recv : Unix.file_descr -> Riq_util.Json.t
(** Read one whole frame (blocking). *)

val frame : Riq_util.Json.t -> bytes
(** The encoded frame bytes, for callers that buffer writes themselves. *)

val write_all : Unix.file_descr -> bytes -> unit
val read_exact : Unix.file_descr -> int -> bytes

val to_hex : string -> string
val of_hex : string -> string
(** Transport encoding for opaque binary payloads (marshalled jobs and
    outcomes) carried inside JSON strings. *)
