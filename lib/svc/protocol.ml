(* The serve daemon's wire protocol: message shapes, hex payload codecs
   and the client/daemon address syntax. Framing is Wire's job; this
   module only builds and destructures the JSON inside each frame.

   Marshalled OCaml values (jobs, outcomes) are opaque to the protocol:
   they ride as hex strings and are only meaningful between binaries built
   from the same source revision, which is why every session opens with a
   [hello] carrying the revision stamp and cache format version — a
   mismatched peer is rejected before any payload is decoded. *)

open Riq_util
open Riq_exp

let version = "riq-serve/1"

type klass = Interactive | Batch

let klass_to_string = function Interactive -> "interactive" | Batch -> "batch"

let klass_of_string = function
  | "interactive" -> Ok Interactive
  | "batch" -> Ok Batch
  | s -> Error (Printf.sprintf "unknown class %S" s)

(* Result provenance, per job: served from the shared store, executed by a
   worker on behalf of this request, or batched onto another request's
   in-flight execution of the same fingerprint. *)
type source = Hit | Executed | Batched

let source_to_string = function Hit -> "hit" | Executed -> "exec" | Batched -> "batched"

let source_of_string = function
  | "hit" -> Ok Hit
  | "exec" -> Ok Executed
  | "batched" -> Ok Batched
  | s -> Error (Printf.sprintf "unknown source %S" s)

let job_to_wire (job : Job.t) = Wire.to_hex (Marshal.to_string job [])

let job_of_wire s : Job.t = Marshal.from_string (Wire.of_hex s) 0

let outcome_to_wire (o : Outcome.t) = Wire.to_hex (Marshal.to_string o [])

let outcome_of_wire s : Outcome.t = Marshal.from_string (Wire.of_hex s) 0

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

(* A submit may carry the client's trace identity so daemon- and
   worker-side spans land in the same Perfetto trace as the client's. *)
type trace_context = { trace_id : string; parent_span : int }

let trace_context_to_json { trace_id; parent_span } =
  Json.Obj
    [ ("trace_id", Json.String trace_id); ("parent_span", Json.Int parent_span) ]

type request =
  | Hello of { revision : string; format : int; t_client : float option }
  | Submit of {
      klass : klass;
      jobs : string list; (* wire-encoded *)
      trace : trace_context option;
    }
  | Status of { ticket : int }
  | Result of { ticket : int }
  | Stats
  | Metrics
  | Trace of { since : int }

let request_to_json = function
  | Hello { revision; format; t_client } ->
      Json.Obj
        ([
           ("op", Json.String "hello");
           ("protocol", Json.String version);
           ("revision", Json.String revision);
           ("format", Json.Int format);
         ]
        @
        match t_client with
        | None -> []
        | Some t -> [ ("t_client", Json.Float t) ])
  | Submit { klass; jobs; trace } ->
      Json.Obj
        ([
           ("op", Json.String "submit");
           ("class", Json.String (klass_to_string klass));
           ("jobs", Json.List (List.map (fun j -> Json.String j) jobs));
         ]
        @
        match trace with
        | None -> []
        | Some tc -> [ ("trace", trace_context_to_json tc) ])
  | Status { ticket } ->
      Json.Obj [ ("op", Json.String "status"); ("ticket", Json.Int ticket) ]
  | Result { ticket } ->
      Json.Obj [ ("op", Json.String "result"); ("ticket", Json.Int ticket) ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Metrics -> Json.Obj [ ("op", Json.String "metrics") ]
  | Trace { since } ->
      Json.Obj [ ("op", Json.String "trace"); ("since", Json.Int since) ]

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let ( let* ) = Result.bind

(* Optional numeric fields tolerate Int (Json parses whole floats back as
   ints) and absence — older peers simply don't send them. *)
let opt_float name j =
  match Json.member name j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let trace_context_of_json j =
  match
    ( Option.bind (Json.member "trace_id" j) Json.to_str,
      Option.bind (Json.member "parent_span" j) Json.to_int )
  with
  | Some trace_id, Some parent_span -> Some { trace_id; parent_span }
  | _ -> None

let request_of_json j : (request, string) result =
  let* op = field "op" Json.to_str j in
  match op with
  | "hello" ->
      let* revision = field "revision" Json.to_str j in
      let* format = field "format" Json.to_int j in
      Ok (Hello { revision; format; t_client = opt_float "t_client" j })
  | "submit" ->
      let* klass_s = field "class" Json.to_str j in
      let* klass = klass_of_string klass_s in
      let* items = field "jobs" Json.to_list j in
      let* jobs =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match Json.to_str item with
            | Some s -> Ok (s :: acc)
            | None -> Error "non-string entry in jobs")
          items (Ok [])
      in
      let trace = Option.bind (Json.member "trace" j) trace_context_of_json in
      Ok (Submit { klass; jobs; trace })
  | "status" ->
      let* ticket = field "ticket" Json.to_int j in
      Ok (Status { ticket })
  | "result" ->
      let* ticket = field "ticket" Json.to_int j in
      Ok (Result { ticket })
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "trace" ->
      let* since = field "since" Json.to_int j in
      Ok (Trace { since })
  | other -> Error (Printf.sprintf "unknown op %S" other)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let is_ok j = Json.member "ok" j = Some (Json.Bool true)

let error_of j =
  match Option.bind (Json.member "error" j) Json.to_str with
  | Some e -> e
  | None -> "unspecified error"

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

type address = Unix_socket of string | Tcp of string * int

(* "host:port" with an all-digit port is TCP; anything else is a Unix
   socket path (paths with colons are not worth supporting here). *)
let address_of_string s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && not (String.contains host '/') ->
          Tcp (host, p)
      | _ -> Unix_socket s)
  | _ -> Unix_socket s

let address_to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr_of_address = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
      in
      Unix.ADDR_INET (addr, port)
