(** The shared, concurrency-safe result store: the engine's
    content-addressed {!Riq_exp.Cache} (same on-disk layout — local
    sweeps, fuzz campaigns and the serve daemon interoperate on one
    tree) plus what many processes sharing it need: recency-tracked
    read-through, a cooperative maintenance lockfile, LRU eviction to a
    byte budget, and age-based gc. Maintenance only ever deletes whole
    entries; a reader racing an eviction sees a miss, never a torn
    file. *)

open Riq_exp

type t

val open_ :
  ?root:string -> ?budget_bytes:int -> ?metrics:Riq_obs.Metrics.t -> unit -> t
(** [root] defaults like {!Cache.open_}. With [budget_bytes], every 32nd
    {!store} opportunistically evicts to the budget (skipped without
    blocking if another process holds the maintenance lock). With
    [metrics], the store registers [store_reads_total{result=hit|miss}],
    [store_writes_total], [store_evictions_total] and the
    [store_lock_wait_seconds] histogram against the given registry. *)

val cache : t -> Cache.t
val root : t -> string

val find : t -> string -> Outcome.t option
(** Read-through {!Cache.find} that refreshes the entry's mtime on a hit,
    which is the store's cross-process LRU order. *)

val store : t -> string -> Outcome.t -> unit
(** {!Cache.store} plus amortized budget enforcement. *)

val with_lock : ?timeout:float -> t -> (unit -> 'a) -> 'a
(** Run [f] holding the store's maintenance lockfile ([<root>/.riq-lock],
    atomic [O_CREAT|O_EXCL]); polls up to [timeout] (default 30 s) then
    raises [Failure]. A lockfile older than 60 s is considered stale
    (a dead holder) and broken. Entry writes do not need the lock —
    they are atomic on their own; this serializes maintenance walks. *)

val try_lock : t -> bool
(** One non-blocking acquisition attempt (breaks a stale lock as a side
    effect). Pair with {!unlock}. *)

val unlock : t -> unit

type entry = { e_path : string; e_bytes : int; e_mtime : float }

val entries : t -> entry list
(** Every entry under the root, across all revision subtrees (so gc and
    eviction reclaim trees orphaned by a revision bump too). *)

type stat = {
  entry_count : int;
  total_bytes : int;
  oldest_mtime : float option;
  newest_mtime : float option;
}

val stat : t -> stat
val stat_json : t -> Riq_util.Json.t

val evict_to_budget : t -> int -> int
(** Evict least-recently-used entries until total bytes fit the given
    budget (under the lock); returns entries removed. *)

val gc : ?now:float -> t -> max_age_seconds:float -> int * int
(** Remove entries strictly older than [now - max_age_seconds] (under
    the lock); never touches anything newer than the cutoff. Returns
    (entries removed, bytes freed). *)

val evictions : t -> int
(** Entries evicted by this process (budget enforcement + explicit
    {!evict_to_budget}). *)
