(* CI performance gate for the packed-core hot loop.

   Measures aggregate simulator throughput — committed instructions per
   CPU second, min-of-N timing per (workload, config) cell to shed
   scheduler noise — and compares it against the committed baseline in
   bench/perf_baseline.json. The baseline is deliberately conservative
   (roughly a third of the development-machine figure) because absolute
   throughput varies across CI hosts; combined with the default 30%
   tolerance the gate catches order-of-magnitude regressions (e.g.
   reintroducing per-cycle allocation in the issue/wakeup path), not
   single-digit drift.

   The gate doubles as a fast-path smoke test: the algorithmic fast
   paths (Config.skip_ahead, Config.loop_ffwd — DESIGN.md §9.5/§9.6)
   are on in the measured configs, and the run must show loop
   fast-forward actually firing on at least one reuse cell
   (ffwd_iterations > 0 somewhere). A silently-disabled fast path would
   otherwise only show up as unattributed throughput drift.

   Exit status is the contract: 0 = within tolerance, 1 = regression or
   dead fast path, 2 = usage/baseline error. *)

open Riq_util
open Riq_ooo
open Riq_core
open Riq_workloads

type cell = {
  bench : string;
  config : string;
  insns : int;
  seconds : float;
  ffwd : int;  (* loop fast-forward iterations replayed analytically *)
  skipped : int;  (* cycles covered by event skip-ahead *)
}

let measure ~repeats =
  List.concat_map
    (fun w ->
      let program = Workloads.program w in
      List.map
        (fun (config, cfg) ->
          let best = ref infinity and insns = ref 0 in
          let ffwd = ref 0 and skipped = ref 0 in
          for _ = 1 to repeats do
            let p = Processor.create cfg program in
            let t0 = (Unix.times ()).Unix.tms_utime in
            (match Processor.run p with
            | Processor.Halted -> ()
            | Processor.Cycle_limit ->
                Printf.eprintf "perf_gate: %s/%s hit the cycle limit\n" w.Workloads.name
                  config;
                exit 2);
            let dt = (Unix.times ()).Unix.tms_utime -. t0 in
            if dt < !best then best := dt;
            insns := Processor.committed p;
            let st = Processor.stats p in
            ffwd := st.Processor.ffwd_iterations;
            skipped := st.Processor.skipped_cycles
          done;
          {
            bench = w.Workloads.name;
            config;
            insns = !insns;
            seconds = !best;
            ffwd = !ffwd;
            skipped = !skipped;
          })
        [ ("baseline", Config.baseline); ("reuse", Config.reuse) ])
    Workloads.all

let minsns cells =
  let i = List.fold_left (fun a c -> a + c.insns) 0 cells in
  let s = List.fold_left (fun a c -> a +. c.seconds) 0. cells in
  if s > 0. then float_of_int i /. s /. 1e6 else 0.

let to_json cells =
  Json.Obj
    [
      ("schema", Json.String "riq-perf/1");
      ("minsns_per_sec", Json.Float (minsns cells));
      ( "committed_insns",
        Json.Int (List.fold_left (fun a c -> a + c.insns) 0 cells) );
      ( "cpu_seconds",
        Json.Float (List.fold_left (fun a c -> a +. c.seconds) 0. cells) );
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("benchmark", Json.String c.bench);
                   ("config", Json.String c.config);
                   ("committed_insns", Json.Int c.insns);
                   ("cpu_seconds", Json.Float c.seconds);
                   ( "minsns_per_sec",
                     Json.Float
                       (if c.seconds > 0. then
                          float_of_int c.insns /. c.seconds /. 1e6
                        else 0.) );
                   ("ffwd_iterations", Json.Int c.ffwd);
                   ("skipped_cycles", Json.Int c.skipped);
                 ])
             cells) );
    ]

let read_baseline path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Error e ->
      Printf.eprintf "perf_gate: %s: %s\n" path e;
      exit 2
  | Ok doc -> (
      match Option.bind (Json.member "min_minsns_per_sec" doc) Json.to_float_opt with
      | Some v -> v
      | None ->
          Printf.eprintf "perf_gate: %s: missing min_minsns_per_sec\n" path;
          exit 2)

let () =
  let baseline = ref "bench/perf_baseline.json" in
  let tolerance = ref 0.30 in
  let repeats = ref 3 in
  let json_out = ref "" in
  let update = ref false in
  Arg.parse
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed baseline JSON");
      ("--tolerance", Arg.Set_float tolerance, "F allowed fractional drop (default 0.30)");
      ("--repeats", Arg.Set_int repeats, "N timing repeats per cell (default 3)");
      ("--json", Arg.Set_string json_out, "FILE write the measured cells as JSON");
      ( "--update",
        Arg.Set update,
        " rewrite the baseline from this run (divided by 3, conservatively)" );
    ]
    (fun a ->
      Printf.eprintf "perf_gate: unexpected argument %s\n" a;
      exit 2)
    "perf_gate: simulator-throughput regression gate";
  let cells = measure ~repeats:!repeats in
  List.iter
    (fun c ->
      Printf.printf "%-8s %-8s %8d insns  %8.4f s  %7.3f Minsns/s\n" c.bench c.config
        c.insns c.seconds
        (if c.seconds > 0. then float_of_int c.insns /. c.seconds /. 1e6 else 0.))
    cells;
  let measured = minsns cells in
  Printf.printf "AGGREGATE %.3f Minsns/s\n" measured;
  let total_ffwd = List.fold_left (fun a c -> a + c.ffwd) 0 cells in
  let total_skipped = List.fold_left (fun a c -> a + c.skipped) 0 cells in
  Printf.printf "fast paths: %d ffwd iterations, %d skipped cycles\n" total_ffwd
    total_skipped;
  if !json_out <> "" then Json.to_file !json_out (to_json cells);
  if !update then begin
    Json.to_file !baseline
      (Json.Obj
         [
           ("schema", Json.String "riq-perf-baseline/1");
           ("min_minsns_per_sec", Json.Float (measured /. 3.));
           ( "note",
             Json.String
               "Conservative floor (measured/3 at update time); the gate fails \
                below (1 - tolerance) x this." );
         ]);
    Printf.printf "baseline updated: %s (floor %.3f Minsns/s)\n" !baseline (measured /. 3.)
  end
  else begin
    let floor_v = read_baseline !baseline in
    let gate = floor_v *. (1. -. !tolerance) in
    Printf.printf "baseline floor %.3f, gate %.3f (tolerance %.0f%%)\n" floor_v gate
      (100. *. !tolerance);
    if measured < gate then begin
      Printf.eprintf
        "perf_gate: REGRESSION: %.3f Minsns/s is below the gate of %.3f\n" measured gate;
      exit 1
    end
    else if total_ffwd = 0 then begin
      (* The kernel suite contains dense reused loops (aps, wss, tsf)
         that are known to stabilise into a verifiable period; none of
         them fast-forwarding means the controller is dead. *)
      Printf.eprintf
        "perf_gate: loop fast-forward never fired on any kernel (expected \
         ffwd_iterations > 0 on at least one reuse cell)\n";
      exit 1
    end
    else print_endline "perf gate: PASS"
  end
