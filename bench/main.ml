(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (the experiment
   harness proper): Table 1, Table 2, Figures 5-9, plus the NBLT and
   buffering-strategy ablations called out in the text. Every simulation
   behind these numbers is differentially validated against the functional
   reference simulator.

   Part 2 runs Bechamel micro-benchmarks of the simulator's own hot paths
   (one per major substrate), so performance regressions in the simulator
   are visible.

   Run with: dune exec bench/main.exe
   (pass --quick to skip the full sweep and only run the microbenchmarks,
   or --figures-only to skip the microbenchmarks; --jobs N parallelizes
   the figure regeneration over N worker processes, --no-cache disables
   the on-disk result cache, --serve ADDR runs the simulations through a
   riq-sim serve daemon instead of local workers)

   The sweep behind Figures 5-8 is also exported machine-readably to
   BENCH_sweep.json so the performance trajectory is comparable across
   PRs. *)

open Riq_util
open Riq_isa
open Riq_asm
open Riq_interp
open Riq_mem
open Riq_branch
open Riq_ooo
open Riq_core
open Riq_harness

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures.                             *)
(* ------------------------------------------------------------------ *)

let run_figures ~jobs ~use_cache ~serve () =
  print_endline "==============================================================";
  print_endline " Reproduction of Hu et al., \"Scheduling Reusable Instructions";
  print_endline " for Power Reduction\" (DATE 2004) — all tables and figures";
  print_endline "==============================================================";
  print_newline ();
  print_endline "Table 1. The baseline configuration.";
  print_string (Figures.table1 ());
  print_newline ();
  Table.print (Figures.table2 ());
  print_newline ();
  let engine =
    let on_progress p =
      Printf.eprintf "\r[engine] %d/%d done (%d cached, %d simulated)%!"
        p.Riq_exp.Engine.finished p.Riq_exp.Engine.total p.Riq_exp.Engine.cache_hits
        p.Riq_exp.Engine.executed;
      if p.Riq_exp.Engine.finished = p.Riq_exp.Engine.total then Printf.eprintf "\n%!"
    in
    match serve with
    | Some addr ->
        let client =
          Riq_svc.Client.connect ~klass:Riq_svc.Protocol.Batch
            (Riq_svc.Protocol.address_of_string addr)
        in
        Riq_exp.Engine.create ~backend:(Riq_svc.Client.backend client) ~on_progress ()
    | None ->
        let cache = if use_cache then Some (Riq_exp.Cache.open_ ()) else None in
        Riq_exp.Engine.create ~workers:jobs ?cache ~on_progress ()
  in
  let t0 = Unix.gettimeofday () in
  let sweep = Sweep.run ~engine ~check:true () in
  Printf.printf "(sweep of %d simulations finished in %.1f s; every run validated\n"
    (2 * List.length sweep.Sweep.sizes * List.length sweep.Sweep.cells)
    (Unix.gettimeofday () -. t0);
  print_endline " against the functional reference simulator)";
  Riq_util.Json.to_file "BENCH_sweep.json" (Sweep.to_json ~engine sweep);
  print_endline "(per-cell sweep statistics written to BENCH_sweep.json)";
  print_newline ();
  Table.print (Figures.fig5 sweep);
  print_newline ();
  Table.print (Figures.fig6 sweep);
  print_newline ();
  Table.print (Figures.fig7 sweep);
  print_newline ();
  Table.print (Figures.fig8 sweep);
  print_newline ();
  Table.print (Figures.fig9 ~engine ~check:true ());
  print_newline ();
  Table.print (Figures.nblt_ablation ~engine ~check:true ());
  print_newline ();
  Table.print (Figures.strategy_ablation ~engine ~check:true ());
  print_newline ();
  Table.print (Figures.related_work ~engine ~check:true ~iq_size:64 ());
  print_newline ();
  Table.print (Figures.related_work ~engine ~check:true ~iq_size:256 ());
  print_newline ();
  Table.print (Figures.predictor_ablation ~engine ~check:true ());
  print_newline ();
  Table.print (Figures.unroll_ablation ~engine ~check:true ());
  print_newline ();
  let s = Riq_exp.Engine.stats engine in
  Printf.printf
    "(engine totals: %d jobs = %d cache hits + %d deduped + %d simulated; %.1f s wall,\n\
    \ %d workers at %.0f%% utilization)\n"
    s.Riq_exp.Engine.jobs s.Riq_exp.Engine.cache_hits s.Riq_exp.Engine.deduped
    s.Riq_exp.Engine.executed s.Riq_exp.Engine.wall_seconds
    (Riq_exp.Engine.workers engine)
    (100. *. Riq_exp.Engine.utilization engine);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks of the simulator itself.          *)
(* ------------------------------------------------------------------ *)

let bench_encode_decode =
  let words = Array.init 256 (fun i -> Encode.encode (Insn.Alui (Add, 2, 3, i))) in
  Bechamel.Test.make ~name:"isa: decode 256 words"
    (Bechamel.Staged.stage (fun () ->
         Array.iter (fun w -> ignore (Encode.decode_exn w)) words))

let bench_cache =
  let c =
    Cache.create (Cache.config ~name:"b" ~sets:256 ~ways:4 ~line_bytes:32 ~hit_latency:1)
  in
  Bechamel.Test.make ~name:"mem: 1k cache accesses"
    (Bechamel.Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore (Cache.access c ~addr:(i * 64 land 0xFFFF) ~write:(i land 7 = 0))
         done))

let bench_bimod =
  let b = Bimod.create 2048 in
  Bechamel.Test.make ~name:"branch: 1k bimod predict+update"
    (Bechamel.Staged.stage (fun () ->
         for i = 0 to 999 do
           let pc = i * 4 in
           let t = Bimod.predict b ~pc in
           Bimod.update b ~pc ~taken:(not t)
         done))

let bench_iq =
  Bechamel.Test.make ~name:"ooo: iq dispatch/wakeup/compact (64 slots)"
    (Bechamel.Staged.stage (fun () ->
         let iq = Iq.create 64 in
         for i = 0 to 63 do
           let s = Iq.dispatch iq in
           s.Iq.seq <- i;
           s.Iq.src1_tag <- i land 7;
           s.Iq.src2_tag <- -1;
           s.Iq.dead <- false
         done;
         for tag = 0 to 7 do
           Iq.wakeup iq ~tag ~value_i:tag ~value_f:0.
         done;
         let slots = Iq.slots iq in
         for i = 0 to Iq.count iq - 1 do
           slots.(i).Iq.dead <- i land 1 = 0
         done;
         ignore (Iq.compact iq)))

let interp_program =
  Parse.program_exn
    {|
    li r2, 0
    li r3, 0
loop:
    add r2, r2, r3
    xor r5, r2, r3
    addi r3, r3, 1
    slti r4, r3, 2000
    bne r4, r0, loop
    halt
|}

let bench_interp =
  Bechamel.Test.make ~name:"interp: 10k-instruction loop"
    (Bechamel.Staged.stage (fun () ->
         let m = Machine.create interp_program in
         ignore (Machine.run m)))

let bench_processor mode =
  let cfg = if mode = "reuse" then Config.reuse else Config.baseline in
  Bechamel.Test.make
    ~name:(Printf.sprintf "core: 10k-instruction loop, %s processor" mode)
    (Bechamel.Staged.stage (fun () ->
         let p = Processor.create cfg interp_program in
         ignore (Processor.run p)))

let bench_power =
  let model = Riq_power.Model.create Riq_power.Model.baseline_geometry in
  Bechamel.Test.make ~name:"power: 1k accounting ticks"
    (Bechamel.Staged.stage (fun () ->
         let a = Riq_power.Account.create model in
         for _ = 1 to 1000 do
           Riq_power.Account.add a Riq_power.Component.Icache 1.;
           Riq_power.Account.add a Riq_power.Component.Ialu 3.;
           Riq_power.Account.tick a
         done))

let bench_workload_compile =
  let w = Riq_workloads.Workloads.find "vpenta" in
  Bechamel.Test.make ~name:"loopir: compile + distribute vpenta"
    (Bechamel.Staged.stage (fun () ->
         ignore (Riq_workloads.Workloads.optimized w)))

let run_microbench () =
  print_endline "==============================================================";
  print_endline " Simulator micro-benchmarks (Bechamel)";
  print_endline "==============================================================";
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"riq"
      [
        bench_encode_decode;
        bench_cache;
        bench_bimod;
        bench_iq;
        bench_interp;
        bench_processor "baseline";
        bench_processor "reuse";
        bench_power;
        bench_workload_compile;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          if ns >= 1e6 then Printf.printf "  %-48s %10.3f ms/run\n" name (ns /. 1e6)
          else if ns >= 1e3 then Printf.printf "  %-48s %10.3f us/run\n" name (ns /. 1e3)
          else Printf.printf "  %-48s %10.1f ns/run\n" name ns
      | Some _ | None -> Printf.printf "  %-48s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let figures_only = List.mem "--figures-only" args in
  let use_cache = not (List.mem "--no-cache" args) in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ | "-j" :: n :: _ -> (
          match int_of_string_opt n with
          | Some n when n >= 1 -> n
          | _ -> failwith "bench: --jobs expects a positive integer"
          )
      | _ :: rest -> find rest
      | [] -> 1
    in
    find args
  in
  let serve =
    let rec find = function
      | "--serve" :: addr :: _ -> Some addr
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if not quick then run_figures ~jobs ~use_cache ~serve ();
  if not figures_only then run_microbench ()
