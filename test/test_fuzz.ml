open Riq_isa
open Riq_fuzz

(* The fixed-seed corpus replayed on every `dune runtest` (and by the CI
   corpus job through `riq-fuzz run`): [corpus_size] programs derived from
   base seed 42, each pushed through the full four-way oracle —
   reference interpreter vs out-of-order core with reuse off, on, and on
   with the algorithmic fast paths disabled — plus the static-verdict and
   accounting cross-checks. *)
let base_seed = 42
let corpus_size = 50

let corpus =
  lazy
    (List.init corpus_size (fun i ->
         Gen.program ~seed:(Gen.derive_seed base_seed i) ()))

let assemble_exn prog =
  match Prog.to_program prog with
  | Ok p -> p
  | Error msg ->
      Alcotest.failf "corpus program (seed %d) does not assemble: %s"
        prog.Prog.seed msg

let default_cfg = fst (Result.get_ok (Driver.config "default"))
let small_cfg, small_params = Result.get_ok (Driver.config "small-iq")

let zero =
  {
    Oracle.committed = 0;
    detections = 0;
    nblt_filtered = 0;
    attempts = 0;
    revokes = 0;
    nblt_registered = 0;
    promotions = 0;
    exits = 0;
    reuse_committed = 0;
    static_loops = 0;
    hard_rejected = 0;
    no_alias_claims = 0;
    alias_risks = 0;
  }

let add (a : Oracle.summary) (b : Oracle.summary) =
  {
    Oracle.committed = a.Oracle.committed + b.Oracle.committed;
    detections = a.detections + b.detections;
    nblt_filtered = a.nblt_filtered + b.nblt_filtered;
    attempts = a.attempts + b.attempts;
    revokes = a.revokes + b.revokes;
    nblt_registered = a.nblt_registered + b.nblt_registered;
    promotions = a.promotions + b.promotions;
    exits = a.exits + b.exits;
    reuse_committed = a.reuse_committed + b.reuse_committed;
    static_loops = a.static_loops + b.static_loops;
    hard_rejected = a.hard_rejected + b.hard_rejected;
    no_alias_claims = a.no_alias_claims + b.no_alias_claims;
    alias_risks = a.alias_risks + b.alias_risks;
  }

let check_corpus ~cfg progs =
  List.fold_left
    (fun acc prog ->
      match Oracle.check ~cfg (assemble_exn prog) with
      | Ok s -> add acc s
      | Error f ->
          Alcotest.failf "corpus program (seed %d) fails the oracle: %s"
            prog.Prog.seed (Oracle.failure_to_string f))
    zero progs

let test_corpus_four_way () =
  let agg = check_corpus ~cfg:default_cfg (Lazy.force corpus) in
  (* Every transition of the paper's Figure 2 state machine — detection,
     NBLT filter, buffering attempt, revoke, NBLT registration, promotion,
     reuse exit — must be exercised by at least one corpus program. *)
  let nonzero name n =
    Alcotest.(check bool) (name ^ " exercised (" ^ string_of_int n ^ ")") true (n > 0)
  in
  nonzero "detections" agg.Oracle.detections;
  nonzero "nblt filtered" agg.Oracle.nblt_filtered;
  nonzero "buffer attempts" agg.Oracle.attempts;
  nonzero "revokes" agg.Oracle.revokes;
  nonzero "nblt registered" agg.Oracle.nblt_registered;
  nonzero "promotions" agg.Oracle.promotions;
  nonzero "reuse exits" agg.Oracle.exits;
  nonzero "reused commits" agg.Oracle.reuse_committed;
  nonzero "static loops seen" agg.Oracle.static_loops;
  nonzero "hard-rejected loops" agg.Oracle.hard_rejected;
  (* The dataflow analyses must not be vacuous on generated code: the
     corpus has to mint interpreter-checked no-alias claims and flag
     at least one may-alias store/load pair. *)
  nonzero "no-alias claims validated" agg.Oracle.no_alias_claims;
  nonzero "aliasing-store risks" agg.Oracle.alias_risks

let test_corpus_small_iq () =
  (* A slice of the corpus on the 16-entry queue: different straddle
     boundary, same oracle. *)
  let progs =
    List.init 8 (fun i ->
        Gen.program ~params:small_params ~seed:(Gen.derive_seed 1007 i) ())
  in
  let agg = check_corpus ~cfg:small_cfg progs in
  Alcotest.(check bool) "promotions on the small queue" true
    (agg.Oracle.promotions > 0)

(* Satellite: every instruction the generator emits survives an
   encode/decode round trip (the fuzzer feeds programs through [Encode] in
   the job fingerprint, so this is load-bearing for caching too). *)
let test_corpus_encode_roundtrip () =
  List.iter
    (fun prog ->
      let p = assemble_exn prog in
      Array.iter
        (fun insn ->
          let word = Encode.encode insn in
          match Encode.decode word with
          | Ok insn' ->
              if not (Insn.equal insn insn') then
                Alcotest.failf "round trip changed %s into %s (word %08x)"
                  (Insn.to_string insn) (Insn.to_string insn') word
          | Error msg ->
              Alcotest.failf "cannot decode %08x (%s): %s" word
                (Insn.to_string insn) msg)
        p.Riq_asm.Program.code)
    (Lazy.force corpus)

let test_generator_deterministic () =
  let a = Gen.program ~seed:12345 () and b = Gen.program ~seed:12345 () in
  Alcotest.(check string) "same seed renders identically" (Prog.render a)
    (Prog.render b);
  let c = Gen.program ~seed:12346 () in
  Alcotest.(check bool) "adjacent seed differs" true (Prog.render a <> Prog.render c)

let test_derive_seed_spreads () =
  let s0 = Gen.derive_seed 42 0 and s1 = Gen.derive_seed 42 1 in
  Alcotest.(check bool) "indices decorrelate" true (s0 <> s1);
  Alcotest.(check bool) "bases decorrelate" true (Gen.derive_seed 43 0 <> s0);
  Alcotest.(check bool) "non-negative" true (s0 >= 0 && s1 >= 0);
  Alcotest.(check int) "stable mixing" s0 (Gen.derive_seed 42 0)

let test_driver_deterministic () =
  let run () =
    match Driver.run ~config:"default" ~seed:7 ~count:5 () with
    | Ok r -> Driver.summary_to_string r
    | Error msg -> Alcotest.failf "driver: %s" msg
  in
  Alcotest.(check string) "byte-identical summaries" (run ()) (run ())

let test_driver_rejects_unknown_config () =
  match Driver.run ~config:"bogus" ~seed:1 ~count:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown config accepted"

(* ---- mutation test: the oracle catches an injected reuse bug ---- *)

(* A runner with a deliberate fault in the reuse path: whenever the
   reuse-on simulation actually committed instructions out of the queue,
   corrupt one architectural register — modelling a reuse engine that
   replays an instruction with a stale operand. The reuse-off leg is
   untouched, so only the feature under test diverges. *)
let faulty_runner : Oracle.runner =
  let real = Oracle.default_runner () in
  fun cfg program ->
    Result.map
      (fun (r : Oracle.run) ->
        if r.Oracle.stats.Riq_core.Processor.reuse_committed > 0 then begin
          let regs = Array.copy r.Oracle.arch.Riq_interp.Machine.int_regs in
          regs.(8) <- regs.(8) + 1;
          { r with Oracle.arch = { r.Oracle.arch with Riq_interp.Machine.int_regs = regs } }
        end
        else r)
      (real cfg program)

let fails_with_fault prog =
  match Prog.to_program prog with
  | Error _ -> false
  | Ok program ->
      Result.is_error (Oracle.check ~runner:faulty_runner ~cfg:default_cfg program)

let test_mutation_caught_and_shrunk () =
  (* Find a corpus program that reuses (and therefore trips the fault)... *)
  let victim =
    match List.find_opt fails_with_fault (Lazy.force corpus) with
    | Some p -> p
    | None -> Alcotest.fail "no corpus program exercises the injected bug"
  in
  (match Oracle.check ~runner:faulty_runner ~cfg:default_cfg (assemble_exn victim) with
  | Error (Oracle.Arch_mismatch _) -> ()
  | Error f ->
      Alcotest.failf "expected an architectural mismatch, got: %s"
        (Oracle.failure_to_string f)
  | Ok _ -> Alcotest.fail "oracle missed the injected bug");
  (* ...and shrink it to a small standalone repro that still fails. *)
  let repro = Shrink.minimize ~still_fails:fails_with_fault victim in
  Alcotest.(check bool) "shrunk repro still fails" true (fails_with_fault repro);
  let n = Prog.size_insns repro in
  Alcotest.(check bool)
    (Printf.sprintf "repro is small (%d insns)" n)
    true
    (n > 0 && n <= 20)

(* ---- mutation test: the fourth leg catches a fast-path bug ---- *)

(* A runner whose cycle-accurate (fast-paths-off) reuse leg runs one cycle
   long — modelling a skip-ahead or fast-forward that mis-accounts time.
   Architectural state is untouched, so only the new stats bit-identity
   check can see it; the reuse-off leg keeps [loop_ffwd] set and is
   unaffected. *)
let ffwd_faulty_runner : Oracle.runner =
  let real = Oracle.default_runner () in
  fun cfg program ->
    Result.map
      (fun (r : Oracle.run) ->
        if cfg.Riq_ooo.Config.reuse_enabled && not cfg.Riq_ooo.Config.loop_ffwd
        then
          let st = r.Oracle.stats in
          {
            r with
            Oracle.stats =
              { st with Riq_core.Processor.cycles = st.Riq_core.Processor.cycles + 1 };
          }
        else r)
      (real cfg program)

let fails_ffwd prog =
  match Prog.to_program prog with
  | Error _ -> false
  | Ok program ->
      Result.is_error
        (Oracle.check ~runner:ffwd_faulty_runner ~cfg:default_cfg program)

let test_ffwd_mutation_caught_and_shrunk () =
  let victim = List.hd (Lazy.force corpus) in
  (match
     Oracle.check ~runner:ffwd_faulty_runner ~cfg:default_cfg
       (assemble_exn victim)
   with
  | Error (Oracle.Fastforward_mismatch detail) ->
      Alcotest.(check bool)
        "detail names the diverging stat" true
        (let contains hay needle =
           let n = String.length needle and h = String.length hay in
           let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
           go 0
         in
         contains detail "cycles")
  | Error f ->
      Alcotest.failf "expected a fast-forward mismatch, got: %s"
        (Oracle.failure_to_string f)
  | Ok _ -> Alcotest.fail "oracle missed the injected fast-path bug");
  let repro = Shrink.minimize ~still_fails:fails_ffwd victim in
  Alcotest.(check bool) "shrunk repro still fails" true (fails_ffwd repro);
  Alcotest.(check bool) "repro shrank" true
    (Prog.size_insns repro <= Prog.size_insns victim)

let test_shrink_removes_irrelevant_items () =
  (* A hand-built program where only the loop matters: the shrinker must
     drop the glue and the unused procedure call. *)
  let loop = Prog.Loop { trip = 30; body = [ Prog.Op "addi r8, r8, 3" ] } in
  let prog =
    {
      Prog.seed = 0;
      main = [ Prog.Op "addi r9, r9, 1"; loop; Prog.Op "addi r10, r10, 2" ];
      procs = [];
      data_i = [||];
      data_f = [||];
    }
  in
  (* "Fails" whenever the loop survives with enough trips to promote. *)
  let still_fails p =
    let rec has_loop items =
      List.exists
        (function
          | Prog.Loop l -> l.Prog.trip >= 20 || has_loop l.Prog.body
          | Prog.Guard g -> has_loop g.Prog.g_body
          | _ -> false)
        items
    in
    has_loop p.Prog.main
  in
  let shrunk = Shrink.minimize ~still_fails prog in
  Alcotest.(check bool) "loop kept" true (still_fails shrunk);
  Alcotest.(check int) "glue removed" 1 (List.length shrunk.Prog.main)

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "corpus four-way differential" `Quick test_corpus_four_way;
        Alcotest.test_case "corpus on small iq" `Quick test_corpus_small_iq;
        Alcotest.test_case "corpus encode round-trip" `Quick test_corpus_encode_roundtrip;
        Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "derive_seed spreads" `Quick test_derive_seed_spreads;
        Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
        Alcotest.test_case "driver rejects unknown config" `Quick
          test_driver_rejects_unknown_config;
        Alcotest.test_case "injected bug caught and shrunk" `Quick
          test_mutation_caught_and_shrunk;
        Alcotest.test_case "injected fast-path bug caught and shrunk" `Quick
          test_ffwd_mutation_caught_and_shrunk;
        Alcotest.test_case "shrinker drops irrelevant items" `Quick
          test_shrink_removes_irrelevant_items;
      ] );
  ]
