open Riq_ooo
open Riq_core
open Riq_harness
open Riq_workloads

let test_run_simulate () =
  let w = Workloads.find "tsf" in
  let r = Run.simulate ~check:true Config.reuse (Workloads.program w) in
  Alcotest.(check bool) "checked" true (r.Run.arch_ok = Some true);
  Alcotest.(check bool) "total covers groups" true
    (r.Run.total_power
    > r.Run.icache_power +. r.Run.bpred_power +. r.Run.iq_power +. r.Run.overhead_power);
  Alcotest.(check bool) "gating" true (r.Run.stats.Processor.gated_fraction > 0.5)

let test_reduction () =
  Alcotest.(check (float 1e-9)) "half" 50. (Run.reduction 10. 5.);
  Alcotest.(check (float 1e-9)) "zero base" 0. (Run.reduction 0. 5.);
  Alcotest.(check (float 1e-9)) "increase" (-10.) (Run.reduction 10. 11.)

(* A reduced sweep exercises every figure printer. *)
let small_sweep =
  lazy
    (Sweep.run ~check:false ~sizes:[ 32; 64 ]
       ~benchmarks:[ Workloads.find "tsf"; Workloads.find "wss" ]
       ())

let test_sweep_cells () =
  let s = Lazy.force small_sweep in
  let c = Sweep.cell s ~bench:"tsf" ~size:32 in
  Alcotest.(check bool) "baseline no gating" true
    (c.Sweep.baseline.Run.stats.Processor.gated_cycles = 0);
  Alcotest.(check bool) "reuse gates" true
    (c.Sweep.reuse.Run.stats.Processor.gated_fraction > 0.5);
  Alcotest.(check bool) "unknown bench" true
    (try
       ignore (Sweep.cell s ~bench:"zzz" ~size:32);
       false
     with Invalid_argument _ -> true)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_figures_render () =
  let s = Lazy.force small_sweep in
  let t5 = Riq_util.Table.render (Figures.fig5 s) in
  Alcotest.(check bool) "fig5 rows" true (contains t5 "tsf" && contains t5 "average");
  let t6 = Riq_util.Table.render (Figures.fig6 s) in
  Alcotest.(check bool) "fig6 series" true
    (contains t6 "Icache" && contains t6 "Bpred" && contains t6 "IssueQueue"
   && contains t6 "Overhead");
  let t7 = Riq_util.Table.render (Figures.fig7 s) in
  Alcotest.(check bool) "fig7" true (contains t7 "IQ 64");
  let t8 = Riq_util.Table.render (Figures.fig8 s) in
  Alcotest.(check bool) "fig8" true (contains t8 "wss")

let test_table1_text () =
  let t = Figures.table1 () in
  Alcotest.(check bool) "issue queue line" true (contains t "Issue Queue        64 entries");
  Alcotest.(check bool) "fu line" true (contains t "4 IALU, 1 IMULT, 4 FPALU, 1 FPMULT")

let test_table2 () =
  let t = Riq_util.Table.render (Figures.table2 ()) in
  List.iter
    (fun w -> Alcotest.(check bool) w.Workloads.name true (contains t w.Workloads.name))
    Workloads.all

let test_fig5_values_sane () =
  let s = Lazy.force small_sweep in
  List.iter
    (fun (bench, per_size) ->
      List.iter
        (fun (_, c) ->
          let g = c.Sweep.reuse.Run.stats.Processor.gated_fraction in
          Alcotest.(check bool) (bench ^ " gating in [0,1]") true (g >= 0. && g <= 1.))
        per_size)
    s.Sweep.cells

(* ---- Run report ---- *)

let obj_assoc name = function
  | Riq_util.Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.fail ("missing key " ^ name))
  | _ -> Alcotest.fail "expected a JSON object"

let test_report_stats_field_for_field () =
  let w = Workloads.find "mxm" in
  let p = Processor.create (Config.with_iq_size Config.reuse 64) (Workloads.program w) in
  (match Processor.run p with
  | Processor.Halted -> ()
  | Processor.Cycle_limit -> Alcotest.fail "cycle limit");
  let report = Report.make ~benchmark:"mxm" p in
  Alcotest.(check string) "schema" Report.schema
    (match obj_assoc "schema" report with Riq_util.Json.String s -> s | _ -> "");
  let s = Processor.stats p in
  let block = obj_assoc "stats" report in
  let geti k = match obj_assoc k block with
    | Riq_util.Json.Int v -> v
    | _ -> Alcotest.fail (k ^ " not an int")
  and getf k = match obj_assoc k block with
    | Riq_util.Json.Float v -> v
    | _ -> Alcotest.fail (k ^ " not a float")
  in
  Alcotest.(check int) "cycles" s.Processor.cycles (geti "cycles");
  Alcotest.(check int) "committed" s.Processor.committed (geti "committed");
  Alcotest.(check (float 0.)) "ipc" s.Processor.ipc (getf "ipc");
  Alcotest.(check int) "gated_cycles" s.Processor.gated_cycles (geti "gated_cycles");
  Alcotest.(check (float 0.)) "gated_fraction" s.Processor.gated_fraction (getf "gated_fraction");
  Alcotest.(check int) "branches" s.Processor.branches (geti "branches");
  Alcotest.(check int) "mispredicts" s.Processor.mispredicts (geti "mispredicts");
  Alcotest.(check int) "loads" s.Processor.loads (geti "loads");
  Alcotest.(check int) "stores" s.Processor.stores (geti "stores");
  Alcotest.(check int) "reuse_dispatches" s.Processor.reuse_dispatches (geti "reuse_dispatches");
  Alcotest.(check int) "reuse_committed" s.Processor.reuse_committed (geti "reuse_committed");
  Alcotest.(check int) "buffer_attempts" s.Processor.buffer_attempts (geti "buffer_attempts");
  Alcotest.(check int) "revokes" s.Processor.revokes (geti "revokes");
  Alcotest.(check int) "promotions" s.Processor.promotions (geti "promotions");
  Alcotest.(check int) "reuse_exits" s.Processor.reuse_exits (geti "reuse_exits");
  Alcotest.(check (float 0.)) "avg_power" s.Processor.avg_power (getf "avg_power");
  Alcotest.(check int) "icache_accesses" s.Processor.icache_accesses (geti "icache_accesses");
  Alcotest.(check int) "icache_misses" s.Processor.icache_misses (geti "icache_misses");
  Alcotest.(check int) "dcache_accesses" s.Processor.dcache_accesses (geti "dcache_accesses");
  Alcotest.(check int) "dcache_misses" s.Processor.dcache_misses (geti "dcache_misses");
  (* The sweep export embeds the identical rendering per cell. *)
  Alcotest.(check bool) "sweep-compatible" true (Report.stats_json s = block);
  (* Power groups are present and sum to the total. *)
  let power = obj_assoc "power" report in
  (match power with
  | Riq_util.Json.Obj kvs ->
      let total = List.assoc "total" kvs in
      let sum =
        List.fold_left
          (fun acc (k, v) ->
            if k = "total" then acc
            else acc +. (match v with Riq_util.Json.Float f -> f | _ -> 0.))
          0. kvs
      in
      Alcotest.(check (float 1e-6)) "groups sum to total"
        (match total with Riq_util.Json.Float f -> f | _ -> -1.)
        sum
  | _ -> Alcotest.fail "power block");
  (* No sampler was attached, so the report says so. *)
  Alcotest.(check bool) "sampler null" true (obj_assoc "sampler" report = Riq_util.Json.Null)

let test_sweep_json_telemetry () =
  let engine = Riq_exp.Engine.create ~workers:1 () in
  let sweep =
    Sweep.run ~engine ~check:false ~sizes:[ 32 ] ~benchmarks:[ Workloads.find "tsf" ] ()
  in
  let js = Sweep.to_json ~engine sweep in
  let e = obj_assoc "engine" js in
  let geti k = match obj_assoc k e with
    | Riq_util.Json.Int v -> v
    | _ -> Alcotest.fail (k ^ " not an int")
  in
  Alcotest.(check int) "jobs" 2 (geti "jobs");
  Alcotest.(check int) "no cache attached: zero hits" 0 (geti "cache_hits");
  Alcotest.(check int) "misses" 2 (geti "cache_misses");
  Alcotest.(check int) "executed" 2 (geti "executed");
  Alcotest.(check int) "retries" 0 (geti "retries");
  (match obj_assoc "wall_seconds" e with
  | Riq_util.Json.Float w -> Alcotest.(check bool) "wall time measured" true (w > 0.)
  | _ -> Alcotest.fail "wall_seconds");
  let jt = obj_assoc "job_seconds" e in
  Alcotest.(check int) "job time series count" 2
    (match obj_assoc "count" jt with Riq_util.Json.Int v -> v | _ -> -1);
  (match (obj_assoc "p50" jt, obj_assoc "max" jt) with
  | Riq_util.Json.Float p50, Riq_util.Json.Float mx ->
      Alcotest.(check bool) "quantiles ordered" true (0. < p50 && p50 <= mx)
  | _ -> Alcotest.fail "job time quantiles")

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "run simulate" `Quick test_run_simulate;
        Alcotest.test_case "reduction" `Quick test_reduction;
        Alcotest.test_case "sweep cells" `Slow test_sweep_cells;
        Alcotest.test_case "figure printers" `Slow test_figures_render;
        Alcotest.test_case "table 1 text" `Quick test_table1_text;
        Alcotest.test_case "table 2" `Quick test_table2;
        Alcotest.test_case "fig5 sanity" `Slow test_fig5_values_sane;
        Alcotest.test_case "report stats field-for-field" `Quick test_report_stats_field_for_field;
        Alcotest.test_case "sweep json telemetry" `Slow test_sweep_json_telemetry;
      ] );
  ]
