open Riq_ooo
open Riq_core
open Riq_obs
open Riq_workloads
open Riq_fuzz

(* Differential suite for the two algorithmic fast paths (DESIGN §9):
   cycle skip-ahead over quiescent stretches and analytic steady-state
   loop fast-forward. Every kernel and every fixed-corpus program runs
   through [Processor] twice — fast paths forced off (pure cycle-by-cycle
   execution) and forced on — and the two runs must agree bit-for-bit on
   architectural state, every stat counter (power down to the float
   bits), the per-loop decision logs, and the sampler time series. The
   only permitted difference is the pair of diagnostic counters that
   report how often the fast paths fired.

   (The fast-on-vs-[Slowpath] leg lives in test_fastpath.ml: [Processor]
   runs with the default config there, which has both fast paths on.) *)

let base_seed = 42
let corpus_size = 50

let corpus =
  lazy
    (List.init corpus_size (fun i ->
         let prog = Gen.program ~seed:(Gen.derive_seed base_seed i) () in
         match Prog.to_program prog with
         | Ok p -> (Printf.sprintf "seed-%d" prog.Prog.seed, p)
         | Error msg ->
             Alcotest.failf "corpus program (seed %d) does not assemble: %s"
               prog.Prog.seed msg))

let fast_off cfg = { cfg with Config.skip_ahead = false; loop_ffwd = false }
let fast_on cfg = { cfg with Config.skip_ahead = true; loop_ffwd = true }

let configs =
  [ ("baseline", Config.baseline); ("reuse", Config.reuse) ]

(* Everything except the two fast-path diagnostic counters must be
   bit-identical; comparing scrubbed records covers future stat fields
   by default. *)
let check_stats name (off : Processor.stats) (on : Processor.stats) =
  let scrub (s : Processor.stats) =
    { s with Processor.skipped_cycles = 0; ffwd_iterations = 0 }
  in
  let off' = scrub off and on' = scrub on in
  if off' <> on' then begin
    let chk_i what a b = Alcotest.(check int) (name ^ ": " ^ what) a b in
    chk_i "cycles" off.Processor.cycles on.Processor.cycles;
    chk_i "committed" off.Processor.committed on.Processor.committed;
    chk_i "gated_cycles" off.Processor.gated_cycles on.Processor.gated_cycles;
    chk_i "branches" off.Processor.branches on.Processor.branches;
    chk_i "mispredicts" off.Processor.mispredicts on.Processor.mispredicts;
    chk_i "loads" off.Processor.loads on.Processor.loads;
    chk_i "stores" off.Processor.stores on.Processor.stores;
    chk_i "reuse_dispatches" off.Processor.reuse_dispatches
      on.Processor.reuse_dispatches;
    chk_i "reuse_committed" off.Processor.reuse_committed
      on.Processor.reuse_committed;
    chk_i "buffer_attempts" off.Processor.buffer_attempts
      on.Processor.buffer_attempts;
    chk_i "revokes" off.Processor.revokes on.Processor.revokes;
    chk_i "promotions" off.Processor.promotions on.Processor.promotions;
    chk_i "reuse_exits" off.Processor.reuse_exits on.Processor.reuse_exits;
    chk_i "icache_accesses" off.Processor.icache_accesses
      on.Processor.icache_accesses;
    chk_i "icache_misses" off.Processor.icache_misses
      on.Processor.icache_misses;
    chk_i "dcache_accesses" off.Processor.dcache_accesses
      on.Processor.dcache_accesses;
    chk_i "dcache_misses" off.Processor.dcache_misses
      on.Processor.dcache_misses;
    Alcotest.(check int64)
      (name ^ ": avg_power bits")
      (Int64.bits_of_float off.Processor.avg_power)
      (Int64.bits_of_float on.Processor.avg_power);
    (* Field-by-field found nothing: fail on the record anyway so a new
       stat field diverging cannot slip through. *)
    Alcotest.(check bool) (name ^ ": stats records equal") true (off' = on')
  end

let check_samplers name off on =
  Alcotest.(check int)
    (name ^ ": sampler length")
    (Sampler.length off) (Sampler.length on);
  Alcotest.(check int)
    (name ^ ": sampler stride")
    (Sampler.stride off) (Sampler.stride on);
  List.iter2
    (fun (c_off, v_off) (c_on, v_on) ->
      Alcotest.(check int) (name ^ ": sample cycle") c_off c_on;
      Array.iteri
        (fun i v ->
          Alcotest.(check int64)
            (Printf.sprintf "%s: sample @%d ch%d bits" name c_off i)
            (Int64.bits_of_float v)
            (Int64.bits_of_float v_on.(i)))
        v_off)
    (Sampler.samples off) (Sampler.samples on)

(* Run fast-off and fast-on over the same program/config; return the
   fast-on stats so callers can assert coverage. *)
let run_pair name program cfg =
  let run c =
    let sampler = Sampler.create ~channels:Processor.sample_channels () in
    let p = Processor.create ~sampler c program in
    (match Processor.run p with
    | Processor.Halted -> ()
    | Processor.Cycle_limit -> Alcotest.failf "%s: hit cycle limit" name);
    (p, sampler)
  in
  let off, s_off = run (fast_off cfg) in
  let on, s_on = run (fast_on cfg) in
  Alcotest.(check int)
    (name ^ ": fast-off runs no fast path")
    0
    ((Processor.stats off).Processor.skipped_cycles
    + (Processor.stats off).Processor.ffwd_iterations);
  let a_off = Processor.arch_state off and a_on = Processor.arch_state on in
  if not (Riq_interp.Machine.equal_arch a_off a_on) then
    Alcotest.failf "%s: arch state diverges\n%s" name
      (Riq_interp.Machine.diff_string a_off a_on);
  check_stats name (Processor.stats off) (Processor.stats on);
  (if Processor.loop_decisions off <> Processor.loop_decisions on then
     Alcotest.failf "%s: loop_decisions diverge" name);
  check_samplers name s_off s_on;
  Processor.stats on

let test_kernels () =
  let skipped = ref 0 and ffwd = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun (cname, cfg) ->
          let s =
            run_pair (w.Workloads.name ^ "/" ^ cname) (Workloads.program w) cfg
          in
          skipped := !skipped + s.Processor.skipped_cycles;
          ffwd := !ffwd + s.Processor.ffwd_iterations)
        configs)
    Workloads.all;
  (* Guard against a vacuous pass: the fast paths must actually fire
     somewhere in the kernel sweep, or the equalities above prove
     nothing. *)
  Alcotest.(check bool) "skip-ahead fired on some kernel" true (!skipped > 0);
  Alcotest.(check bool)
    "loop fast-forward fired on some kernel" true (!ffwd > 0)

let test_corpus () =
  List.iter
    (fun (pname, program) ->
      List.iter
        (fun (cname, cfg) ->
          ignore (run_pair (pname ^ "/" ^ cname) program cfg))
        configs)
    (Lazy.force corpus)

(* A constrained machine reaches the wheel-wrap, queue-overflow and
   revoke corners with different quiescent shapes than the default
   geometry. *)
let test_small_iq () =
  let cfg = Config.with_iq_size Config.reuse 16 in
  List.iter
    (fun w ->
      ignore (run_pair (w.Workloads.name ^ "/small-iq") (Workloads.program w) cfg))
    Workloads.all

(* Each fast path must also be safe alone: skip-ahead and fast-forward
   interact (a replay ends in a quiescent stretch and vice versa), so
   the single-flag variants pin down which path broke a future failure. *)
let test_single_flags () =
  List.iter
    (fun w ->
      let p = Workloads.program w in
      List.iter
        (fun (fname, f) ->
          let base = fast_off Config.reuse in
          let off = Processor.create base p in
          (match Processor.run off with
          | Processor.Halted -> ()
          | Processor.Cycle_limit ->
              Alcotest.failf "%s: hit cycle limit" w.Workloads.name);
          let on = Processor.create (f base) p in
          (match Processor.run on with
          | Processor.Halted -> ()
          | Processor.Cycle_limit ->
              Alcotest.failf "%s: hit cycle limit" w.Workloads.name);
          let name = w.Workloads.name ^ "/" ^ fname in
          let a_off = Processor.arch_state off
          and a_on = Processor.arch_state on in
          if not (Riq_interp.Machine.equal_arch a_off a_on) then
            Alcotest.failf "%s: arch state diverges\n%s" name
              (Riq_interp.Machine.diff_string a_off a_on);
          check_stats name (Processor.stats off) (Processor.stats on))
        [
          ("skip-only", fun c -> { c with Config.skip_ahead = true });
          ("ffwd-only", fun c -> { c with Config.loop_ffwd = true });
        ])
    Workloads.all

let suites =
  [
    ( "skipahead.differential",
      [
        Alcotest.test_case "kernels x 2 configs: fast off = fast on" `Slow
          test_kernels;
        Alcotest.test_case "fuzz corpus x 2 configs: fast off = fast on" `Slow
          test_corpus;
        Alcotest.test_case "small-iq kernels: fast off = fast on" `Slow
          test_small_iq;
        Alcotest.test_case "single-flag kernels: each path alone" `Slow
          test_single_flags;
      ] );
  ]
