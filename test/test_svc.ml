(* The serving subsystem: wire framing, protocol message round-trips, the
   shared store's concurrency machinery (lockfile, LRU eviction, gc), and
   an end-to-end forked daemon exercised through the engine's remote
   backend — including the 100%-hit repeat and the SIGTERM drain. *)

open Riq_asm
open Riq_ooo
open Riq_util
open Riq_exp
open Riq_svc

let tiny_program =
  Parse.program_exn
    {|
    li r2, 0
    li r3, 0
loop:
    add r2, r2, r3
    addi r3, r3, 1
    slti r4, r3, 50
    bne r4, r0, loop
    halt
|}

let tiny_job ?(check = false) ?(cycle_limit = Job.default_cycle_limit) () =
  Job.make ~check ~cycle_limit Config.baseline tiny_program

let rm_rf dir = ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let with_temp_dir f =
  let dir = Filename.temp_dir "riq-svc-test" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_temp_store ?budget_bytes f =
  with_temp_dir (fun dir -> f (Store.open_ ~root:(Filename.concat dir "cache") ?budget_bytes ()))

(* ------------------------------------------------------------------ *)
(* Wire framing                                                        *)
(* ------------------------------------------------------------------ *)

let test_hex_round_trip () =
  let cases = [ ""; "\x00"; "abc"; String.init 256 Char.chr ] in
  List.iter
    (fun s -> Alcotest.(check string) "hex round trip" s (Wire.of_hex (Wire.to_hex s)))
    cases;
  Alcotest.(check string) "lowercase hex" "00ff10" (Wire.to_hex "\x00\xff\x10")

let test_frame_round_trip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with _ -> ()) [ r; w ])
    (fun () ->
      let docs =
        [
          Json.Null;
          Json.Obj [ ("op", Json.String "hello"); ("n", Json.Int 42) ];
          Json.List [ Json.Bool true; Json.Float 2.5; Json.String "x\ny" ];
        ]
      in
      List.iter (Wire.send w) docs;
      List.iter
        (fun doc ->
          Alcotest.(check string) "framed document round trip" (Json.to_string doc)
            (Json.to_string (Wire.recv r)))
        docs)

let test_frame_rejects_oversized () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with _ -> ()) [ r; w ])
    (fun () ->
      (* A length prefix claiming far more than max_frame must be refused
         before any allocation or read of the payload. *)
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 0x7FFFFFFFl;
      Wire.write_all w b;
      match Wire.recv r with
      | _ -> Alcotest.fail "oversized frame accepted"
      | exception Wire.Protocol_error _ -> ())

let test_frame_eof_is_closed () =
  let r, w = Unix.pipe () in
  Unix.close w;
  Fun.protect
    ~finally:(fun () -> try Unix.close r with _ -> ())
    (fun () ->
      match Wire.recv r with
      | _ -> Alcotest.fail "read from closed pipe"
      | exception Wire.Closed -> ())

(* ------------------------------------------------------------------ *)
(* Protocol messages                                                   *)
(* ------------------------------------------------------------------ *)

let test_request_round_trip () =
  let reqs =
    [
      Protocol.Hello
        { revision = Revision.stamp; format = Revision.format_version; t_client = None };
      Protocol.Hello
        {
          revision = Revision.stamp;
          format = Revision.format_version;
          t_client = Some 1723000000.25;
        };
      Protocol.Submit
        { klass = Protocol.Interactive; jobs = [ "00ab"; "ff01" ]; trace = None };
      Protocol.Submit
        {
          klass = Protocol.Batch;
          jobs = [];
          trace = Some { Protocol.trace_id = "42-00abcd"; parent_span = 3 };
        };
      Protocol.Status { ticket = 7 };
      Protocol.Result { ticket = 0 };
      Protocol.Stats;
      Protocol.Metrics;
      Protocol.Trace { since = 12 };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.request_of_json (Protocol.request_to_json r) with
      | Ok r' -> Alcotest.(check bool) "request round trip" true (r = r')
      | Error msg -> Alcotest.fail ("request did not round trip: " ^ msg))
    reqs;
  (match Protocol.request_of_json (Json.Obj [ ("op", Json.String "nonsense") ]) with
  | Ok _ -> Alcotest.fail "unknown op accepted"
  | Error _ -> ());
  Alcotest.(check bool) "ok is ok" true (Protocol.is_ok (Protocol.ok []));
  Alcotest.(check bool) "error is not ok" false (Protocol.is_ok (Protocol.error "boom"));
  Alcotest.(check string) "error text" "boom" (Protocol.error_of (Protocol.error "boom"))

let test_job_outcome_wire () =
  let job = tiny_job ~check:true () in
  let job' = Protocol.job_of_wire (Protocol.job_to_wire job) in
  Alcotest.(check string) "job survives the wire" (Job.fingerprint job)
    (Job.fingerprint job');
  let outcome = Runner.execute job in
  Alcotest.(check bool) "tiny job succeeds" true (Result.is_ok outcome);
  Alcotest.(check bool) "outcome survives the wire" true
    (Protocol.outcome_of_wire (Protocol.outcome_to_wire outcome) = outcome);
  let err : Outcome.t = Error (Outcome.Job_timeout 1.5) in
  Alcotest.(check bool) "error outcome survives the wire" true
    (Protocol.outcome_of_wire (Protocol.outcome_to_wire err) = err)

let test_address_parsing () =
  (match Protocol.address_of_string "localhost:8080" with
  | Protocol.Tcp ("localhost", 8080) -> ()
  | _ -> Alcotest.fail "host:port should parse as TCP");
  (match Protocol.address_of_string "/tmp/riq.sock" with
  | Protocol.Unix_socket "/tmp/riq.sock" -> ()
  | _ -> Alcotest.fail "path should parse as a Unix socket");
  match Protocol.address_of_string "./relative:name" with
  | Protocol.Unix_socket _ -> ()
  | _ -> Alcotest.fail "non-numeric port means Unix socket"

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let stored_outcome = lazy (Runner.execute (tiny_job ()))

let store_n store n =
  (* n distinct fingerprints with distinct, strictly increasing mtimes. *)
  let outcome = Lazy.force stored_outcome in
  List.map
    (fun i ->
      let key = Job.fingerprint (tiny_job ~cycle_limit:(1000 + i) ()) in
      Store.store store key outcome;
      key)
    (List.init n Fun.id)

let set_mtimes store keys =
  (* Pin every entry's mtime explicitly (index order = recency order) so
     eviction and gc decisions are deterministic under test. *)
  let now = Unix.gettimeofday () in
  List.iteri
    (fun i key ->
      let entry =
        List.find
          (fun e -> Filename.basename e.Store.e_path = key)
          (Store.entries store)
      in
      let t = now -. 1000. +. (10. *. float_of_int i) in
      Unix.utimes entry.Store.e_path t t)
    keys;
  now

let test_store_round_trip () =
  with_temp_store (fun store ->
      let job = tiny_job () in
      let key = Job.fingerprint job in
      Alcotest.(check bool) "cold miss" true (Store.find store key = None);
      let outcome = Lazy.force stored_outcome in
      Store.store store key outcome;
      Alcotest.(check bool) "hit after store" true (Store.find store key = Some outcome);
      let s = Store.stat store in
      Alcotest.(check int) "one entry" 1 s.Store.entry_count;
      Alcotest.(check bool) "bytes counted" true (s.Store.total_bytes > 0))

let test_store_find_touches () =
  with_temp_store (fun store ->
      let keys = store_n store 1 in
      let key = List.hd keys in
      let entry () = List.hd (Store.entries store) in
      Unix.utimes (entry ()).Store.e_path 1000. 1000.;
      Alcotest.(check bool) "mtime pinned old" true ((entry ()).Store.e_mtime < 2000.);
      ignore (Store.find store key);
      (* A read refreshes recency: the entry must no longer be the
         1000-epoch relic, i.e. LRU order follows use, not creation. *)
      Alcotest.(check bool) "read refreshed mtime" true
        ((entry ()).Store.e_mtime > 1000000.))

let test_store_eviction_respects_budget () =
  with_temp_store (fun store ->
      let keys = store_n store 5 in
      ignore (set_mtimes store keys);
      let per_entry = (List.hd (Store.entries store)).Store.e_bytes in
      let budget = (2 * per_entry) + (per_entry / 2) in
      let removed = Store.evict_to_budget store budget in
      Alcotest.(check int) "evicted down to budget" 3 removed;
      let s = Store.stat store in
      Alcotest.(check int) "two entries left" 2 s.Store.entry_count;
      Alcotest.(check bool) "under budget" true (s.Store.total_bytes <= budget);
      (* LRU: the two most recently used survive. *)
      let survivors = List.map (fun e -> Filename.basename e.Store.e_path) (Store.entries store) in
      List.iteri
        (fun i key ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %d %s" i (if i >= 3 then "kept" else "evicted"))
            (i >= 3) (List.mem key survivors))
        keys;
      Alcotest.(check int) "eviction counter" 3 (Store.evictions store))

let test_store_gc_respects_cutoff () =
  with_temp_store (fun store ->
      let keys = store_n store 4 in
      let now = set_mtimes store keys in
      (* Ages are 1000, 990, 980, 970 seconds; cut at 985. *)
      let removed, bytes = Store.gc ~now store ~max_age_seconds:985. in
      Alcotest.(check int) "two old entries removed" 2 removed;
      Alcotest.(check bool) "bytes freed" true (bytes > 0);
      let survivors = List.map (fun e -> Filename.basename e.Store.e_path) (Store.entries store) in
      List.iteri
        (fun i key ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %d newer than cutoff %s" i
               (if i >= 2 then "kept" else "removed"))
            (i >= 2) (List.mem key survivors))
        keys;
      let removed', _ = Store.gc ~now store ~max_age_seconds:985. in
      Alcotest.(check int) "gc is idempotent" 0 removed')

let test_store_budget_enforced_on_store () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "cache" in
      let probe = Store.open_ ~root () in
      let keys = store_n probe 1 in
      let per_entry = (List.hd (Store.entries probe)).Store.e_bytes in
      ignore keys;
      rm_rf root;
      (* Budget for ~3 entries; write 64 so several of the amortized
         every-32nd-store sweeps trigger. *)
      let store = Store.open_ ~root ~budget_bytes:(3 * per_entry) () in
      ignore (store_n store 64);
      let s = Store.stat store in
      Alcotest.(check bool) "amortized eviction kept the store bounded" true
        (s.Store.entry_count < 40);
      Alcotest.(check bool) "evictions counted" true (Store.evictions store > 0))

let test_store_lock_stale_break () =
  with_temp_store (fun store ->
      let lock_path = Filename.concat (Store.root store) ".riq-lock" in
      let fd = Unix.openfile lock_path [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644 in
      Unix.close fd;
      Unix.utimes lock_path 1000. 1000.;
      (* A lockfile from a dead holder must not wedge maintenance. *)
      Store.with_lock ~timeout:5. store (fun () -> ());
      Alcotest.(check bool) "fresh lock released" true (not (Sys.file_exists lock_path)))

(* Cross-process mutual exclusion: two forked writers increment a shared
   counter file under the store lock; lost updates would leave the final
   count short. *)
let test_store_lock_contention () =
  if not (Pool.available ()) then ()
  else
    with_temp_store (fun store ->
        let counter = Filename.concat (Store.root store) "counter" in
        let oc = open_out counter in
        output_string oc "0";
        close_out oc;
        let rounds = 25 in
        let child () =
          for _ = 1 to rounds do
            Store.with_lock ~timeout:30. store (fun () ->
                let ic = open_in counter in
                let v = int_of_string (input_line ic) in
                close_in ic;
                (* Widen the race window: hold the lock across the
                   read-modify-write. *)
                ignore (Unix.select [] [] [] 0.001);
                let oc = open_out counter in
                output_string oc (string_of_int (v + 1));
                close_out oc)
          done;
          Unix._exit 0
        in
        flush stdout;
        flush stderr;
        let pids =
          List.init 2 (fun _ -> match Unix.fork () with 0 -> child () | pid -> pid)
        in
        List.iter
          (fun pid ->
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _ -> Alcotest.fail "lock contention child failed")
          pids;
        let ic = open_in counter in
        let v = int_of_string (input_line ic) in
        close_in ic;
        Alcotest.(check int) "no lost updates" (2 * rounds) v)

(* Two processes racing to store the same fingerprint while a third reads
   it: every read sees either a miss or one complete, valid outcome —
   never a torn entry. *)
let test_store_concurrent_writers_one_fingerprint () =
  if not (Pool.available ()) then ()
  else
    with_temp_store (fun store ->
        let key = Job.fingerprint (tiny_job ()) in
        let outcome = Lazy.force stored_outcome in
        let writer () =
          for _ = 1 to 50 do
            Store.store store key outcome
          done;
          Unix._exit 0
        in
        flush stdout;
        flush stderr;
        let pids =
          List.init 2 (fun _ -> match Unix.fork () with 0 -> writer () | pid -> pid)
        in
        for _ = 1 to 200 do
          match Store.find store key with
          | None -> ()
          | Some got ->
              Alcotest.(check bool) "read is complete and valid" true (got = outcome)
        done;
        List.iter
          (fun pid ->
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _ -> Alcotest.fail "writer child failed")
          pids;
        Alcotest.(check bool) "entry present at the end" true
          (Store.find store key = Some outcome))

(* ------------------------------------------------------------------ *)
(* End-to-end daemon                                                   *)
(* ------------------------------------------------------------------ *)

let with_daemon ?(workers = 1) f =
  if not (Pool.available ()) then ()
  else
    with_temp_dir (fun dir ->
        let sock = Filename.concat dir "d.sock" in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
            (try
               let store = Store.open_ ~root:(Filename.concat dir "cache") () in
               Server.serve
                 (Server.config ~workers ~timeout:(Some 60.)
                    ~address:(Protocol.Unix_socket sock) store)
             with _ -> Unix._exit 1);
            Unix._exit 0
        | pid ->
            let termed = ref false in
            Fun.protect
              ~finally:(fun () ->
                if not !termed then (try Unix.kill pid Sys.sigkill with _ -> ());
                ignore (try Unix.waitpid [] pid with _ -> (0, Unix.WEXITED 0)))
              (fun () ->
                let deadline = Unix.gettimeofday () +. 10. in
                let rec wait_sock () =
                  if Sys.file_exists sock then ()
                  else if Unix.gettimeofday () > deadline then
                    Alcotest.fail "daemon did not come up"
                  else begin
                    ignore (Unix.select [] [] [] 0.02);
                    wait_sock ()
                  end
                in
                wait_sock ();
                f ~sock ~pid;
                (* Graceful drain: SIGTERM, clean exit, socket unlinked. *)
                Unix.kill pid Sys.sigterm;
                termed := true;
                (match Unix.waitpid [] pid with
                | _, Unix.WEXITED 0 -> ()
                | _, Unix.WEXITED n ->
                    Alcotest.fail (Printf.sprintf "daemon exited with %d" n)
                | _ -> Alcotest.fail "daemon killed by signal");
                Alcotest.(check bool) "socket unlinked on drain" true
                  (not (Sys.file_exists sock))))

let e2e_jobs () =
  Array.of_list
    (List.init 6 (fun i -> tiny_job ~check:true ~cycle_limit:(20000 + i) ()))

let member_int path json =
  let rec go json = function
    | [] -> Json.to_int json
    | k :: rest -> ( match Json.member k json with None -> None | Some v -> go v rest)
  in
  match go json path with
  | Some v -> v
  | None -> Alcotest.fail ("missing counter " ^ String.concat "." path)

let test_daemon_end_to_end () =
  with_daemon (fun ~sock ~pid:_ ->
      let jobs = e2e_jobs () in
      let expected = Array.map Runner.execute jobs in
      (* Cold client: everything executes server-side. *)
      let c1 = Client.connect ~request_timeout:30. (Protocol.Unix_socket sock) in
      let engine1 = Riq_exp.Engine.create ~backend:(Client.backend c1) () in
      let got = Riq_exp.Engine.run engine1 jobs in
      Array.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "job %d matches local execution" i)
            true
            (Riq_exp.Outcome.zero_timing o
            = Riq_exp.Outcome.zero_timing expected.(i)))
        got;
      let svc1 = Client.service_json c1 in
      Alcotest.(check int) "cold run executed everything" (Array.length jobs)
        (member_int [ "client"; "remote_executed" ] svc1);
      Alcotest.(check int) "cold run had no hits" 0
        (member_int [ "client"; "remote_hits" ] svc1);
      Client.close c1;
      (* Warm client: same jobs, 100% served from the shared store. *)
      let c2 = Client.connect ~request_timeout:30. (Protocol.Unix_socket sock) in
      let engine2 = Riq_exp.Engine.create ~backend:(Client.backend c2) () in
      let again = Riq_exp.Engine.run engine2 jobs in
      Alcotest.(check bool) "warm results identical" true
        (Array.map Riq_exp.Outcome.zero_timing again
        = Array.map Riq_exp.Outcome.zero_timing expected);
      let svc2 = Client.service_json c2 in
      Alcotest.(check int) "warm run is 100% hits" (Array.length jobs)
        (member_int [ "client"; "remote_hits" ] svc2);
      Alcotest.(check int) "warm run executed nothing" 0
        (member_int [ "client"; "remote_executed" ] svc2);
      (* Daemon-side counters agree. *)
      (match Client.server_stats c2 with
      | None -> Alcotest.fail "daemon stats unavailable"
      | Some stats ->
          Alcotest.(check int) "daemon hit counter" (Array.length jobs)
            (member_int [ "hits" ] stats);
          Alcotest.(check int) "daemon executed counter" (Array.length jobs)
            (member_int [ "executed" ] stats));
      (* The metrics op: the fleet snapshot carries the store-hit counter
         CI asserts on, and the duration histograms saw every executed
         job (cold run) and every dispatch. *)
      (match Client.server_metrics c2 with
      | Error msg -> Alcotest.fail ("metrics op failed: " ^ msg)
      | Ok snap ->
          let sample name =
            match List.find_opt (fun s -> s.Riq_obs.Metrics.s_name = name) snap with
            | Some s -> s.Riq_obs.Metrics.s_value
            | None -> Alcotest.fail ("metric missing: " ^ name)
          in
          (match sample "store_hits_total" with
          | Riq_obs.Metrics.Counter_sample v ->
              Alcotest.(check int) "store_hits_total = warm submits"
                (Array.length jobs) v
          | _ -> Alcotest.fail "store_hits_total not a counter");
          (match sample "serve_executed_total" with
          | Riq_obs.Metrics.Counter_sample v ->
              Alcotest.(check int) "serve_executed_total = cold submits"
                (Array.length jobs) v
          | _ -> Alcotest.fail "serve_executed_total not a counter");
          (match sample "serve_simulate_seconds" with
          | Riq_obs.Metrics.Histogram_sample { counts; _ } ->
              Alcotest.(check int) "simulate histogram counts executions"
                (Array.length jobs)
                (Array.fold_left ( + ) 0 counts)
          | _ -> Alcotest.fail "serve_simulate_seconds not a histogram");
          (match sample "worker_jobs_total" with
          | Riq_obs.Metrics.Counter_sample v ->
              Alcotest.(check int) "worker snapshots merged in"
                (Array.length jobs) v
          | _ -> Alcotest.fail "worker_jobs_total not a counter"));
      (match Client.server_exposition c2 with
      | Error msg -> Alcotest.fail ("exposition op failed: " ^ msg)
      | Ok text ->
          let contains needle =
            let n = String.length needle and h = String.length text in
            let rec go i =
              i + n <= h && (String.sub text i n = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "exposition has store_hits_total" true
            (contains "store_hits_total 6");
          Alcotest.(check bool) "exposition has histogram buckets" true
            (contains "serve_simulate_seconds_bucket"));
      (* The trace op: daemon + worker spans, already shifted onto this
         client's clock, behind a stable cursor. *)
      (match Client.server_trace ~since:0 c2 with
      | Error msg -> Alcotest.fail ("trace op failed: " ^ msg)
      | Ok (events, next) ->
          Alcotest.(check bool) "trace has events" true (events <> []);
          Alcotest.(check int) "cursor accounts for every event"
            (List.length events) next;
          let named name j = Json.member "name" j = Some (Json.String name) in
          Alcotest.(check bool) "queue-wait spans present" true
            (List.exists (named "queue-wait") events);
          Alcotest.(check bool) "simulate spans present" true
            (List.exists (named "simulate") events);
          (* Worker spans carry the worker pid, distinct from the daemon's. *)
          let pids =
            List.sort_uniq compare
              (List.filter_map
                 (fun j -> Option.bind (Json.member "pid" j) Json.to_int)
                 events)
          in
          Alcotest.(check bool) "two or more processes traced" true
            (List.length pids >= 2));
      Client.close c2)

let test_daemon_batch_class () =
  with_daemon ~workers:2 (fun ~sock ~pid:_ ->
      let jobs = e2e_jobs () in
      let client =
        Client.connect ~klass:Protocol.Batch ~request_timeout:30.
          (Protocol.Unix_socket sock)
      in
      let engine = Riq_exp.Engine.create ~backend:(Client.backend client) () in
      let got = Riq_exp.Engine.run engine jobs in
      let expected = Array.map Runner.execute jobs in
      let norm = Array.map Riq_exp.Outcome.zero_timing in
      Alcotest.(check bool) "batch-class results identical" true
        (norm got = norm expected);
      Client.close client)

(* ------------------------------------------------------------------ *)
(* The sweep export survives its own parser                            *)
(* ------------------------------------------------------------------ *)

let test_sweep_json_parses () =
  let open Riq_harness in
  let bench = [ Riq_workloads.Workloads.find "tsf" ] in
  let engine = Riq_exp.Engine.create () in
  let sweep = Sweep.run ~engine ~sizes:[ 32 ] ~benchmarks:bench ~check:false () in
  let doc = Sweep.to_json ~engine sweep in
  let text = Json.to_string ~indent:true doc in
  let parsed = Json.of_string_exn text in
  (* Byte-level fixpoint: emit, parse, emit again — identical text. *)
  Alcotest.(check string) "emit/parse/emit fixpoint" text
    (Json.to_string ~indent:true parsed);
  Alcotest.(check bool) "schema field readable" true
    (Json.member "schema" parsed = Some (Json.String "riq-sweep/2"));
  Alcotest.(check int) "engine jobs counter readable" 2
    (member_int [ "engine"; "jobs" ] parsed)

let suites =
  [
    ( "svc-wire",
      [
        Alcotest.test_case "hex round trip" `Quick test_hex_round_trip;
        Alcotest.test_case "frame round trip" `Quick test_frame_round_trip;
        Alcotest.test_case "oversized frame rejected" `Quick test_frame_rejects_oversized;
        Alcotest.test_case "eof raises Closed" `Quick test_frame_eof_is_closed;
        Alcotest.test_case "request round trip" `Quick test_request_round_trip;
        Alcotest.test_case "job/outcome round trip" `Quick test_job_outcome_wire;
        Alcotest.test_case "address parsing" `Quick test_address_parsing;
      ] );
    ( "svc-store",
      [
        Alcotest.test_case "round trip" `Quick test_store_round_trip;
        Alcotest.test_case "find refreshes recency" `Quick test_store_find_touches;
        Alcotest.test_case "lru eviction respects budget" `Quick
          test_store_eviction_respects_budget;
        Alcotest.test_case "gc respects cutoff" `Quick test_store_gc_respects_cutoff;
        Alcotest.test_case "budget enforced on store" `Quick
          test_store_budget_enforced_on_store;
        Alcotest.test_case "stale lock broken" `Quick test_store_lock_stale_break;
        Alcotest.test_case "cross-process lock contention" `Quick
          test_store_lock_contention;
        Alcotest.test_case "concurrent writers, one fingerprint" `Quick
          test_store_concurrent_writers_one_fingerprint;
      ] );
    ( "svc-daemon",
      [
        Alcotest.test_case "end to end, warm repeat 100% hits" `Slow
          test_daemon_end_to_end;
        Alcotest.test_case "batch class end to end" `Slow test_daemon_batch_class;
        Alcotest.test_case "sweep json parses" `Slow test_sweep_json_parses;
      ] );
  ]
