open Riq_util
open Riq_obs
open Riq_ooo
open Riq_core
open Riq_workloads

(* ---- Tracer sinks ---- *)

let test_null_sink () =
  let tr = Tracer.null () in
  Alcotest.(check bool) "disabled" false (Tracer.enabled tr);
  (* Emissions are accepted but discarded; guarded call sites skip them
     entirely, but even unguarded ones must be harmless. *)
  Tracer.begin_span tr ~now:0 ~cat:"x" "span";
  Tracer.instant tr ~now:1 ~cat:"x" "point";
  Alcotest.(check int) "nothing recorded" 0 (Tracer.recorded tr);
  Alcotest.(check int) "nothing retained" 0 (List.length (Tracer.events tr));
  Tracer.close tr

let test_ring_sink () =
  let tr = Tracer.ring ~capacity:4 () in
  Alcotest.(check bool) "enabled" true (Tracer.enabled tr);
  Tracer.begin_span tr ~now:10 ~args:[ ("head", Tracer.Int 1) ] ~cat:"reuse" "loop-buffering";
  Tracer.instant tr ~now:12 ~cat:"pipeline" "pipeline-flush";
  Tracer.end_span tr ~now:20 ~cat:"reuse" "loop-buffering";
  Alcotest.(check int) "recorded" 3 (Tracer.recorded tr);
  let ev = Tracer.events tr in
  Alcotest.(check int) "retained" 3 (List.length ev);
  let first = List.hd ev in
  Alcotest.(check bool) "oldest first" true (first.Tracer.ts = 10 && first.Tracer.ph = Tracer.Begin);
  Alcotest.(check (list (pair string int))) "counts sorted by name"
    [ ("loop-buffering", 2); ("pipeline-flush", 1) ]
    (Tracer.counts tr);
  (* Overflow: the oldest events are overwritten and counted as dropped. *)
  for i = 1 to 4 do
    Tracer.instant tr ~now:(100 + i) ~cat:"x" "tick"
  done;
  Alcotest.(check int) "recorded keeps counting" 7 (Tracer.recorded tr);
  Alcotest.(check int) "capacity bound" 4 (List.length (Tracer.events tr));
  Alcotest.(check int) "dropped" 3 (Tracer.dropped tr);
  Alcotest.(check bool) "survivors are the newest" true
    (List.for_all (fun e -> e.Tracer.ts >= 20) (Tracer.events tr))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_stream_sink () =
  let path = Filename.temp_file "riq_trace" ".json" in
  let oc = open_out path in
  let tr = Tracer.stream ~process_name:"riq-test" oc in
  Tracer.set_thread_name tr ~tid:0 "reuse-engine";
  Tracer.begin_span tr ~now:5 ~args:[ ("head", Tracer.Int 64) ] ~cat:"reuse" "loop-buffering";
  Tracer.end_span tr ~now:9 ~cat:"reuse" "loop-buffering";
  Tracer.counter tr ~now:10 ~name:"ipc" [ ("ipc", 2.5) ];
  Tracer.close tr;
  Tracer.close tr (* idempotent *);
  close_out oc;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "array brackets" true
    (s.[0] = '[' && contains s "]" && String.length s > 2);
  Alcotest.(check bool) "process metadata" true
    (contains s "\"process_name\"" && contains s "riq-test");
  Alcotest.(check bool) "thread metadata" true (contains s "reuse-engine");
  Alcotest.(check bool) "span begin" true (contains s "\"ph\":\"B\"");
  Alcotest.(check bool) "span end" true (contains s "\"ph\":\"E\"");
  Alcotest.(check bool) "counter" true (contains s "\"ph\":\"C\"");
  Alcotest.(check bool) "args" true (contains s "\"head\":64");
  (* 3 payload events plus the thread-name metadata record. *)
  Alcotest.(check int) "recorded" 4 (Tracer.recorded tr)

let test_event_json_shape () =
  let instant_json =
    Json.to_string
      (Tracer.event_json
         { Tracer.ts = 7; ph = Tracer.Instant; name = "revoke"; cat = "reuse"; pid = 1;
           tid = 1; dur = 0; args = [ ("pc", Tracer.Int 4096) ] })
  in
  Alcotest.(check bool) "instant has scope" true (contains instant_json "\"s\":\"t\"");
  Alcotest.(check bool) "microsecond ts" true (contains instant_json "\"ts\":7");
  Alcotest.(check bool) "pid" true (contains instant_json "\"pid\":1")

(* ---- Sampler ---- *)

let test_sampler_stride_and_record () =
  let s = Sampler.create ~stride:4 ~channels:[ "a"; "b" ] () in
  Alcotest.(check bool) "due on stride" true (Sampler.due s ~cycle:8);
  Alcotest.(check bool) "not due off stride" false (Sampler.due s ~cycle:9);
  Sampler.record s ~cycle:4 [| 1.; 10. |];
  Sampler.record s ~cycle:8 [| 2.; 20. |];
  Alcotest.(check int) "length" 2 (Sampler.length s);
  (match Sampler.samples s with
  | [ (4, a); (8, b) ] ->
      Alcotest.(check (float 0.)) "first" 1. a.(0);
      Alcotest.(check (float 0.)) "second" 20. b.(1)
  | _ -> Alcotest.fail "unexpected samples");
  Alcotest.check_raises "arity" (Invalid_argument "Sampler.record: value count does not match channels")
    (fun () -> Sampler.record s ~cycle:12 [| 1. |])

let test_sampler_decimation () =
  let s = Sampler.create ~stride:1 ~max_samples:8 ~channels:[ "v" ] () in
  for c = 1 to 100 do
    if Sampler.due s ~cycle:c then Sampler.record s ~cycle:c [| float_of_int c |]
  done;
  Alcotest.(check bool) "bounded" true (Sampler.length s <= 8);
  Alcotest.(check bool) "decimated" true (Sampler.decimations s > 0);
  Alcotest.(check int) "stride doubled" (1 lsl Sampler.decimations s) (Sampler.stride s);
  let cycles = List.map fst (Sampler.samples s) in
  Alcotest.(check bool) "still spans the run" true (List.nth cycles (List.length cycles - 1) > 50);
  (* Decimation preserves order and coarsens, never densifies. *)
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun g -> Alcotest.(check bool) "gap within effective stride" true (g > 0 && g <= 2 * Sampler.stride s))
    (gaps cycles)

let test_sampler_exports () =
  let s = Sampler.create ~stride:2 ~channels:[ "ipc"; "iq" ] () in
  Sampler.record s ~cycle:2 [| 1.5; 3. |];
  Sampler.record s ~cycle:4 [| 2.5; 5. |];
  let csv = Sampler.to_csv s in
  Alcotest.(check bool) "csv header" true (contains csv "cycle,ipc,iq");
  Alcotest.(check bool) "csv row" true (contains csv "\n2,");
  let js = Json.to_string (Sampler.to_json s) in
  Alcotest.(check bool) "schema" true (contains js "riq-sampler/1");
  Alcotest.(check bool) "channels" true (contains js "\"ipc\"");
  let summary = Json.to_string (Sampler.summary s) in
  Alcotest.(check bool) "summary p50" true (contains summary "p50")

(* ---- Processor integration ---- *)

let reuse_cfg = Config.with_iq_size Config.reuse 64

let test_traced_run_matches_untraced () =
  let program = Workloads.program (Workloads.find "tsf") in
  let plain = Processor.create reuse_cfg program in
  (match Processor.run plain with
  | Processor.Halted -> ()
  | Processor.Cycle_limit -> Alcotest.fail "plain run hit cycle limit");
  let tracer = Tracer.ring ~capacity:65536 () in
  let sampler = Sampler.create ~channels:Processor.sample_channels () in
  let traced = Processor.create ~tracer ~sampler reuse_cfg program in
  (match Processor.run traced with
  | Processor.Halted -> ()
  | Processor.Cycle_limit -> Alcotest.fail "traced run hit cycle limit");
  (* Observability must not perturb the simulation. A tracer does force
     the cycle-accurate path (loop fast-forward cannot reproduce
     per-cycle trace events, so [create] disables it), which is allowed
     to show up in the two diagnostic fast-path counters — and nowhere
     else. *)
  let scrub (s : Processor.stats) =
    { s with Processor.skipped_cycles = 0; ffwd_iterations = 0 }
  in
  Alcotest.(check bool) "stats bit-identical" true
    (scrub (Processor.stats plain) = scrub (Processor.stats traced));
  let counts = Tracer.counts tracer in
  let count name = try List.assoc name counts with Not_found -> 0 in
  Alcotest.(check bool) "loop-buffering spans" true (count "loop-buffering" > 0);
  Alcotest.(check bool) "code-reuse spans" true (count "code-reuse" > 0);
  Alcotest.(check bool) "counter tracks" true (count "power" > 0 && count "ipc" > 0);
  Alcotest.(check bool) "halt instant" true (count "halted" = 1);
  Alcotest.(check bool) "sampler ran" true (Sampler.length sampler > 0);
  (* Spans balance: every begin has its end. *)
  let balance = ref 0 in
  List.iter
    (fun e ->
      match e.Tracer.ph with
      | Tracer.Begin -> incr balance
      | Tracer.End -> decr balance
      | _ -> ())
    (Tracer.events tracer);
  Alcotest.(check int) "spans balanced" 0 !balance

let test_sampler_channel_validation () =
  let program = Workloads.program (Workloads.find "tsf") in
  Alcotest.(check bool) "bad channels rejected" true
    (try
       ignore
         (Processor.create
            ~sampler:(Sampler.create ~channels:[ "wrong" ] ())
            reuse_cfg program);
       false
     with Invalid_argument _ -> true)

(* Satellite: every kernel drains its queues at the halt and never reports
   more gated cycles than cycles. *)
let test_all_kernels_drain () =
  List.iter
    (fun w ->
      let p = Processor.create reuse_cfg (Workloads.program w) in
      (match Processor.run p with
      | Processor.Halted -> ()
      | Processor.Cycle_limit -> Alcotest.fail (w.Workloads.name ^ ": cycle limit"));
      let iq, rob, lsq = Processor.occupancy p in
      Alcotest.(check (triple int int int)) (w.Workloads.name ^ " drained") (0, 0, 0)
        (iq, rob, lsq);
      Alcotest.(check bool)
        (w.Workloads.name ^ " gated <= cycles")
        true
        (Processor.gated_cycles p <= Processor.cycles p))
    (Workloads.all @ Workloads.extras)

let test_mxm_is_extra () =
  let w = Workloads.find "mxm" in
  Alcotest.(check string) "findable" "mxm" w.Workloads.name;
  Alcotest.(check bool) "not in the Table 2 sweep" true
    (not (List.exists (fun w' -> w'.Workloads.name = "mxm") Workloads.all))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "null sink" `Quick test_null_sink;
        Alcotest.test_case "ring sink" `Quick test_ring_sink;
        Alcotest.test_case "stream sink" `Quick test_stream_sink;
        Alcotest.test_case "event json shape" `Quick test_event_json_shape;
        Alcotest.test_case "sampler stride/record" `Quick test_sampler_stride_and_record;
        Alcotest.test_case "sampler decimation" `Quick test_sampler_decimation;
        Alcotest.test_case "sampler exports" `Quick test_sampler_exports;
        Alcotest.test_case "traced run matches untraced" `Quick test_traced_run_matches_untraced;
        Alcotest.test_case "sampler channel validation" `Quick test_sampler_channel_validation;
        Alcotest.test_case "all kernels drain at halt" `Slow test_all_kernels_drain;
        Alcotest.test_case "mxm stays out of the sweep" `Quick test_mxm_is_extra;
      ] );
  ]
