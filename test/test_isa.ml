open Riq_isa

(* ---- Reg ---- *)

let test_reg_basics () =
  Alcotest.(check string) "r0" "r0" (Reg.to_string Reg.zero);
  Alcotest.(check string) "f5" "f5" (Reg.to_string (Reg.f 5));
  Alcotest.(check bool) "fp" true (Reg.is_fp (Reg.f 0));
  Alcotest.(check bool) "int" false (Reg.is_fp (Reg.r 31));
  Alcotest.(check int) "index" 7 (Reg.index (Reg.f 7));
  Alcotest.(check (option int)) "parse r12" (Some 12) (Reg.of_string "r12");
  Alcotest.(check (option int)) "parse f31" (Some (32 + 31)) (Reg.of_string "f31");
  Alcotest.(check (option int)) "reject r32" None (Reg.of_string "r32");
  Alcotest.(check (option int)) "reject junk" None (Reg.of_string "x1");
  Alcotest.check_raises "out of range" (Invalid_argument "Reg.r") (fun () -> ignore (Reg.r 32))

(* ---- canonical instruction generator for the round-trip property ---- *)

let gen_insn =
  let open QCheck.Gen in
  let reg = map Reg.r (int_bound 31) in
  let freg = map Reg.f (int_bound 31) in
  let imm_s = int_range (-32768) 32767 in
  let imm_u = int_bound 65535 in
  let shamt = int_bound 31 in
  let target = int_bound ((1 lsl 26) - 1) in
  let alu_op = oneofl Insn.[ Add; Sub; And; Or; Xor; Nor; Slt; Sltu ] in
  let alui_op = oneofl Insn.[ Add; And; Or; Xor; Slt; Sltu ] in
  let shift_op = oneofl Insn.[ Sll; Srl; Sra ] in
  let fpu_bin = oneofl Insn.[ Fadd; Fsub; Fmul; Fdiv ] in
  let fpu_un = oneofl Insn.[ Fsqrt; Fneg; Fabs; Fmov ] in
  let fcmp_op = oneofl Insn.[ Feq; Flt; Fle ] in
  let cond2 = oneofl Insn.[ Beq; Bne ] in
  let cond1 = oneofl Insn.[ Blez; Bgtz; Bltz; Bgez ] in
  let alui_imm op =
    match op with
    | Insn.Add | Slt | Sltu -> imm_s
    | And | Or | Xor -> imm_u
    | Sub | Nor -> assert false
  in
  oneof
    [
      map3 (fun op (a, b) c -> Insn.Alu (op, a, b, c)) alu_op (pair reg reg) reg;
      alui_op >>= (fun op ->
        map3 (fun rt rs imm -> Insn.Alui (op, rt, rs, imm)) reg reg (alui_imm op));
      map3 (fun (op, rd) rt sh -> Insn.Shift (op, rd, rt, sh)) (pair shift_op reg) reg shamt;
      map3 (fun (op, rd) rt rs -> Insn.Shiftv (op, rd, rt, rs)) (pair shift_op reg) reg reg;
      map2 (fun rt imm -> Insn.Lui (rt, imm)) reg imm_u;
      map3 (fun rd rs rt -> Insn.Mul (rd, rs, rt)) reg reg reg;
      map3 (fun rd rs rt -> Insn.Div (rd, rs, rt)) reg reg reg;
      map3 (fun (op, fd) fs ft -> Insn.Fpu (op, fd, fs, ft)) (pair fpu_bin freg) freg freg;
      map2 (fun (op, fd) fs -> Insn.Fpu (op, fd, fs, Reg.f 0)) (pair fpu_un freg) freg;
      map3 (fun (op, rd) fs ft -> Insn.Fcmp (op, rd, fs, ft)) (pair fcmp_op reg) freg freg;
      map2 (fun fd rs -> Insn.Cvtsw (fd, rs)) freg reg;
      map2 (fun rd fs -> Insn.Cvtws (rd, fs)) reg freg;
      map3 (fun rt base off -> Insn.Lw (rt, base, off)) reg reg imm_s;
      map3 (fun rt base off -> Insn.Lb (rt, base, off)) reg reg imm_s;
      map3 (fun rt base off -> Insn.Lbu (rt, base, off)) reg reg imm_s;
      map3 (fun rt base off -> Insn.Lh (rt, base, off)) reg reg imm_s;
      map3 (fun rt base off -> Insn.Lhu (rt, base, off)) reg reg imm_s;
      map3 (fun rt base off -> Insn.Sw (rt, base, off)) reg reg imm_s;
      map3 (fun rt base off -> Insn.Sb (rt, base, off)) reg reg imm_s;
      map3 (fun rt base off -> Insn.Sh (rt, base, off)) reg reg imm_s;
      map3 (fun ft base off -> Insn.Lwf (ft, base, off)) freg reg imm_s;
      map3 (fun ft base off -> Insn.Swf (ft, base, off)) freg reg imm_s;
      map3 (fun (c, rs) rt off -> Insn.Br (c, rs, rt, off)) (pair cond2 reg) reg imm_s;
      map2 (fun (c, rs) off -> Insn.Br (c, rs, Reg.zero, off)) (pair cond1 reg) imm_s;
      map (fun tgt -> Insn.J tgt) target;
      map (fun tgt -> Insn.Jal tgt) target;
      map (fun rs -> Insn.Jr rs) reg;
      map2 (fun rd rs -> Insn.Jalr (rd, rs)) reg reg;
      return Insn.Nop;
      return Insn.Halt;
    ]

let arbitrary_insn = QCheck.make ~print:Insn.to_string gen_insn

let prop_encode_decode =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:2000 arbitrary_insn (fun insn ->
      match Encode.decode (Encode.encode insn) with
      | Ok insn' -> Insn.equal insn insn'
      | Error _ -> false)

let prop_encode_32bit =
  QCheck.Test.make ~name:"encodings fit 32 bits" ~count:2000 arbitrary_insn (fun insn ->
      let w = Encode.encode insn in
      w >= 0 && w <= 0xFFFFFFFF)

let prop_dest_not_source_of_store =
  QCheck.Test.make ~name:"stores and branches have no destination" ~count:500 arbitrary_insn
    (fun insn ->
      match Insn.kind insn with
      | Insn.K_store | K_branch | K_jump -> Insn.dest insn = None
      | _ -> true)

(* ---- unit tests ---- *)

let test_encode_specific () =
  (* add r1, r2, r3 = op 0, funct 0 *)
  let w = Encode.encode (Insn.Alu (Add, Reg.r 1, Reg.r 2, Reg.r 3)) in
  Alcotest.(check int) "add encoding" ((2 lsl 21) lor (3 lsl 16) lor (1 lsl 11)) w;
  (* negative immediate round-trips through the 16-bit field *)
  let w = Encode.encode (Insn.Alui (Add, Reg.r 4, Reg.r 5, -1)) in
  Alcotest.(check int) "imm field" 0xFFFF (w land 0xFFFF)

let test_encode_rejects () =
  Alcotest.(check bool) "imm too large" true
    (try
       ignore (Encode.encode (Insn.Alui (Add, Reg.r 1, Reg.r 1, 40000)));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "no subi" true
    (try
       ignore (Encode.encode (Insn.Alui (Sub, Reg.r 1, Reg.r 1, 1)));
       false
     with Invalid_argument _ -> true)

let test_decode_rejects () =
  (match Encode.decode 0xFFFFFFFF with
  | Error _ -> ()
  | Ok insn -> Alcotest.failf "decoded garbage to %s" (Insn.to_string insn));
  match Encode.decode (63 lsl 26) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded unknown opcode"

let test_ctrl_target () =
  let pc = 0x1000 in
  Alcotest.(check (option int)) "branch back" (Some 0x0FF4)
    (Insn.ctrl_target (Insn.Br (Beq, Reg.r 1, Reg.r 2, -4)) ~pc);
  Alcotest.(check (option int)) "branch fwd" (Some 0x100C)
    (Insn.ctrl_target (Insn.Br (Bne, Reg.r 1, Reg.r 2, 2)) ~pc);
  Alcotest.(check (option int)) "jump" (Some 0x2000) (Insn.ctrl_target (Insn.J 0x800) ~pc);
  Alcotest.(check (option int)) "indirect" None (Insn.ctrl_target (Insn.Jr (Reg.r 31)) ~pc)

let test_kinds () =
  Alcotest.(check bool) "jr ra is return" true (Insn.kind (Insn.Jr Reg.ra) = Insn.K_return);
  Alcotest.(check bool) "jr r5 is ijump" true (Insn.kind (Insn.Jr (Reg.r 5)) = Insn.K_ijump);
  Alcotest.(check bool) "jal is call" true (Insn.kind (Insn.Jal 12) = Insn.K_call);
  Alcotest.(check bool) "jal writes ra" true (Insn.dest (Insn.Jal 12) = Some Reg.ra);
  Alcotest.(check bool) "halt kind" true (Insn.kind Insn.Halt = Insn.K_halt)

let test_sources () =
  Alcotest.(check (list int)) "r0 excluded" []
    (Insn.sources (Insn.Alu (Add, Reg.r 1, Reg.zero, Reg.zero)));
  Alcotest.(check (list int)) "store sources"
    [ Reg.r 3; Reg.r 4 ]
    (Insn.sources (Insn.Sw (Reg.r 3, Reg.r 4, 0)));
  Alcotest.(check (list int)) "fp store sources"
    [ Reg.f 2; Reg.r 4 ]
    (Insn.sources (Insn.Swf (Reg.f 2, Reg.r 4, 0)))

let test_access_bytes () =
  Alcotest.(check int) "lw" 4 (Insn.access_bytes (Insn.Lw (1, 2, 0)));
  Alcotest.(check int) "lb" 1 (Insn.access_bytes (Insn.Lb (1, 2, 0)));
  Alcotest.(check int) "sh" 2 (Insn.access_bytes (Insn.Sh (1, 2, 0)));
  Alcotest.(check bool) "non-memory raises" true
    (try
       ignore (Insn.access_bytes Insn.Nop);
       false
     with Invalid_argument _ -> true)

let test_latency_classes () =
  Alcotest.(check bool) "div slow" true (Insn.latency (Insn.Div (1, 2, 3)) > 10);
  Alcotest.(check bool) "div unpipelined" false (Insn.pipelined (Insn.Div (1, 2, 3)));
  Alcotest.(check bool) "alu fast" true (Insn.latency (Insn.Alu (Add, 1, 2, 3)) = 1);
  Alcotest.(check bool) "fmul unit" true
    (Insn.fu (Insn.Fpu (Fmul, Reg.f 1, Reg.f 2, Reg.f 3)) = Insn.FU_fpmult);
  Alcotest.(check bool) "fadd unit" true
    (Insn.fu (Insn.Fpu (Fadd, Reg.f 1, Reg.f 2, Reg.f 3)) = Insn.FU_fpalu)

let prop_packed_round_trip =
  QCheck.Test.make ~name:"pack/unpack round-trip" ~count:2000 arbitrary_insn
    (fun insn -> Insn.equal insn (Packed.unpack (Packed.pack insn)))

let prop_packed_properties =
  QCheck.Test.make ~name:"packed property tables match Insn" ~count:2000
    arbitrary_insn (fun insn ->
      let w = Packed.pack insn in
      Packed.kind w = Insn.kind insn
      && Packed.fu w = Insn.fu insn
      && Packed.latency w = Insn.latency insn
      && Packed.pipelined w = Insn.pipelined insn
      &&
      match Insn.kind insn with
      | Insn.K_load | K_store -> Packed.access_bytes w = Insn.access_bytes insn
      | _ -> Packed.access_bytes w = 0)

let test_code_round_trip () =
  for c = 0 to Insn.code_count - 1 do
    Alcotest.(check int)
      (Printf.sprintf "code %d" c)
      c
      (Insn.code (Insn.of_code c))
  done

let suites =
  [
    ( "isa",
      [
        Alcotest.test_case "registers" `Quick test_reg_basics;
        Alcotest.test_case "specific encodings" `Quick test_encode_specific;
        Alcotest.test_case "encode rejects bad operands" `Quick test_encode_rejects;
        Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects;
        Alcotest.test_case "control targets" `Quick test_ctrl_target;
        Alcotest.test_case "instruction kinds" `Quick test_kinds;
        Alcotest.test_case "source operands" `Quick test_sources;
        Alcotest.test_case "latencies and units" `Quick test_latency_classes;
        Alcotest.test_case "access widths" `Quick test_access_bytes;
        QCheck_alcotest.to_alcotest prop_encode_decode;
        QCheck_alcotest.to_alcotest prop_encode_32bit;
        QCheck_alcotest.to_alcotest prop_dest_not_source_of_store;
        Alcotest.test_case "code/of_code round-trip" `Quick test_code_round_trip;
        QCheck_alcotest.to_alcotest prop_packed_round_trip;
        QCheck_alcotest.to_alcotest prop_packed_properties;
      ] );
  ]
