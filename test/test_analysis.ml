(* Tests for the static analysis pipeline (lib/analysis): CFG
   construction, dominators, natural loops (including the rejection of
   irreducible control flow), liveness, trip counts — and the differential
   property that anchors the whole pass: on every built-in kernel, the
   static bufferability verdicts must agree with what the dynamic core
   actually decides, and the predicted reuse coverage must track the
   measured one. *)

open Riq_isa
open Riq_asm
open Riq_ooo
open Riq_core
open Riq_workloads
open Riq_analysis

let parse = Parse.program_exn

let cfg_of src = Cfg.build (parse src)

(* ---- CFG ---- *)

(* entry, a loop, a skip branch, a tail: leaders and edges. *)
let diamond_src =
  {|
start:
    addi r2, r0, 10
    beq  r2, r0, else_
    addi r3, r0, 1
    j    join
else_:
    addi r3, r0, 2
join:
    add  r4, r3, r0
    halt
|}

let test_cfg_blocks () =
  let cfg = cfg_of diamond_src in
  Alcotest.(check int) "four blocks" 4 (Cfg.n_blocks cfg);
  let b0 = Cfg.block cfg 0 in
  Alcotest.(check int) "entry has two successors" 2 (List.length b0.Cfg.b_succs);
  let join = Option.get (Cfg.block_at cfg (Option.get (Program.address_of (cfg.Cfg.program) "join"))) in
  Alcotest.(check int) "join has two predecessors" 2 (List.length join.Cfg.b_preds);
  Alcotest.(check (list int))
    "last block falls through nowhere" [] join.Cfg.b_succs

let test_cfg_call_edges () =
  let cfg =
    cfg_of
      {|
start:
    jal  f
    halt
f:
    addi r2, r2, 1
    jr   r31
|}
  in
  let b0 = Cfg.block cfg 0 in
  Alcotest.(check bool) "entry is a call block" true b0.Cfg.b_call;
  Alcotest.(check int) "call has fallthrough and callee edges" 2 (List.length b0.Cfg.b_succs);
  let ret = Cfg.block cfg (Cfg.n_blocks cfg - 1) in
  Alcotest.(check bool) "return block is indirect" true ret.Cfg.b_indirect;
  Alcotest.(check (list int)) "return has no static successors" [] ret.Cfg.b_succs

let test_cfg_rpo_topological () =
  let cfg = cfg_of diamond_src in
  let rpo = Cfg.reverse_postorder cfg in
  let pos = Array.make (Cfg.n_blocks cfg) (-1) in
  Array.iteri (fun i b -> pos.(b) <- i) rpo;
  (* In an acyclic graph every edge goes forward in RPO. *)
  for b = 0 to Cfg.n_blocks cfg - 1 do
    List.iter
      (fun s -> Alcotest.(check bool) "edge goes forward" true (pos.(s) > pos.(b)))
      (Cfg.block cfg b).Cfg.b_succs
  done

(* ---- Dominators ---- *)

let test_dominators_diamond () =
  let cfg = cfg_of diamond_src in
  let dom = Dominators.compute cfg in
  (* Block ids are in address order: 0 entry, 1 then-side, 2 else-side,
     3 join. *)
  Alcotest.(check bool) "entry dominates join" true (Dominators.dominates dom 0 3);
  Alcotest.(check bool) "then does not dominate join" false (Dominators.dominates dom 1 3);
  Alcotest.(check (option int)) "join's idom is the entry" (Some 0) (Dominators.idom dom 3);
  Alcotest.(check bool) "reflexive" true (Dominators.dominates dom 2 2)

let nested_src =
  {|
start:
    addi r16, r0, 0
outer:
    addi r17, r0, 0
inner:
    addi r17, r17, 1
    slti r2, r17, 5
    bne  r2, r0, inner
    addi r16, r16, 1
    slti r2, r16, 3
    bne  r2, r0, outer
    halt
|}

let test_loop_nest () =
  let cfg = cfg_of nested_src in
  let ls = Loops.detect cfg in
  Alcotest.(check int) "two loops" 2 (Array.length ls.Loops.loops);
  Alcotest.(check (list (pair int int))) "no irreducible edges" [] ls.Loops.irreducible;
  let outer = ls.Loops.loops.(0) and inner = ls.Loops.loops.(1) in
  Alcotest.(check int) "outer depth" 1 outer.Loops.l_depth;
  Alcotest.(check int) "inner depth" 2 inner.Loops.l_depth;
  Alcotest.(check (option int)) "inner's parent is outer" (Some 0) inner.Loops.l_parent;
  Alcotest.(check (list int)) "outer's child is inner" [ 1 ] outer.Loops.l_children;
  Alcotest.(check bool) "inner is innermost" true (Loops.innermost ls inner);
  Alcotest.(check bool) "outer is not" false (Loops.innermost ls outer);
  Alcotest.(check bool) "inner body inside outer body" true
    (List.for_all (fun b -> List.mem b outer.Loops.l_blocks) inner.Loops.l_blocks)

(* A retreating edge whose target does not dominate its source (the
   classic two-entry loop) must be reported irreducible, never turned
   into a natural loop. *)
let irreducible_src =
  {|
start:
    addi r2, r0, 1
    beq  r2, r0, b2
b1:
    addi r3, r3, 1
    j    b2
b2:
    addi r3, r3, 2
    slti r4, r3, 10
    bne  r4, r0, b1
    halt
|}

let test_irreducible_rejected () =
  let cfg = cfg_of irreducible_src in
  let ls = Loops.detect cfg in
  Alcotest.(check int) "no natural loops" 0 (Array.length ls.Loops.loops);
  Alcotest.(check bool) "irreducible edge reported" true (ls.Loops.irreducible <> []);
  (* And the bufferability pass refuses the backward branch. *)
  let report = Bufferability.analyze ~iq_size:32 (parse irreducible_src) in
  match report.Bufferability.loops with
  | [ l ] ->
      Alcotest.(check bool) "verdict is irreducible" true
        (l.Bufferability.verdict = Error Bufferability.Irreducible)
  | ls_ -> Alcotest.failf "expected one analysed transfer, got %d" (List.length ls_)

(* ---- Liveness ---- *)

let test_liveness () =
  let src =
    {|
start:
    addi r2, r0, 10
loop:
    add  r4, r2, r3
    addi r3, r3, 1
    slti r5, r3, 10
    bne  r5, r0, loop
    add  r6, r4, r0
    halt
|}
  in
  let cfg = cfg_of src in
  let live = Liveness.compute cfg in
  let header = Option.get (Cfg.block_at cfg (Option.get (Program.address_of cfg.Cfg.program "loop"))) in
  let at_header = Liveness.live_in live header.Cfg.b_id in
  Alcotest.(check bool) "r2 live around the loop" true (Liveness.mem at_header (Reg.r 2));
  Alcotest.(check bool) "r3 live (loop-carried)" true (Liveness.mem at_header (Reg.r 3));
  Alcotest.(check bool) "r5 dead at the header" false (Liveness.mem at_header (Reg.r 5));
  Alcotest.(check bool) "r6 dead inside the loop" false (Liveness.mem at_header (Reg.r 6));
  (* r4 is redefined before any use on every path through the loop, so it
     is dead at the header — but live on exit from the body (the use after
     the loop). *)
  Alcotest.(check bool) "r4 dead at the header" false (Liveness.mem at_header (Reg.r 4));
  Alcotest.(check bool) "r4 live at the body's exit" true
    (Liveness.mem (Liveness.live_out live header.Cfg.b_id) (Reg.r 4))

let test_liveness_before () =
  let src = "start:\n    addi r2, r0, 1\n    add r3, r2, r2\n    halt\n" in
  let cfg = cfg_of src in
  let live = Liveness.compute cfg in
  let base = cfg.Cfg.program.Program.text_base in
  Alcotest.(check bool) "r2 live before its use" true
    (Liveness.mem (Liveness.live_before live ~pc:(base + 4)) (Reg.r 2));
  Alcotest.(check bool) "r2 dead before its definition" false
    (Liveness.mem (Liveness.live_before live ~pc:base) (Reg.r 2))

(* ---- Trip counts and verdicts ---- *)

let counted_loop n =
  Printf.sprintf
    {|
start:
    addi r16, r0, 0
loop:
    add  r4, r4, r16
    addi r16, r16, 1
    slti r2, r16, %d
    bne  r2, r0, loop
    halt
|}
    n

let analyzed_loop ?(iq = 32) src =
  match (Bufferability.analyze ~iq_size:iq (parse src)).Bufferability.loops with
  | [ l ] -> l
  | ls -> Alcotest.failf "expected one analysed transfer, got %d" (List.length ls)

let test_trip_count () =
  List.iter
    (fun n ->
      let l = analyzed_loop (counted_loop n) in
      Alcotest.(check (option int)) (Printf.sprintf "trip of %d" n) (Some n)
        l.Bufferability.trip)
    [ 1; 7; 100; 2600 ]

let test_trip_count_down () =
  let l =
    analyzed_loop
      {|
start:
    addi r16, r0, 12
loop:
    add  r4, r4, r16
    addi r16, r16, -3
    bgtz r16, loop
    halt
|}
  in
  Alcotest.(check (option int)) "counting down by 3 from 12" (Some 4) l.Bufferability.trip

let test_verdict_bufferable () =
  let l = analyzed_loop (counted_loop 100) in
  Alcotest.(check bool) "bufferable" true (l.Bufferability.verdict = Ok ());
  Alcotest.(check bool) "promotes" true (l.Bufferability.prediction = Bufferability.Promotes);
  Alcotest.(check int) "span" 4 l.Bufferability.span;
  Alcotest.(check bool) "several iterations fit" true (l.Bufferability.unroll > 1)

let test_verdict_too_large () =
  let body = String.concat "" (List.init 40 (fun i -> Printf.sprintf "    addi r%d, r0, 1\n" (3 + (i mod 8)))) in
  let src = "start:\n    addi r16, r0, 0\nloop:\n" ^ body
            ^ "    addi r16, r16, 1\n    slti r2, r16, 9\n    bne r2, r0, loop\n    halt\n" in
  let l = analyzed_loop src in
  (match l.Bufferability.verdict with
  | Error (Bufferability.Too_large s) -> Alcotest.(check int) "span carried" 43 s
  | _ -> Alcotest.fail "expected Too_large");
  Alcotest.(check bool) "never promotes" true
    (l.Bufferability.prediction = Bufferability.Never_promotes)

let test_verdict_inner_loop () =
  let report =
    Bufferability.analyze ~iq_size:64 (parse nested_src)
  in
  let outer =
    List.find
      (fun l -> l.Bufferability.depth = 1)
      report.Bufferability.loops
  in
  (match outer.Bufferability.verdict with
  | Error (Bufferability.Inner_transfer _) -> ()
  | _ -> Alcotest.fail "outer loop should be rejected for its inner loop");
  let inner = List.find (fun l -> l.Bufferability.depth = 2) report.Bufferability.loops in
  Alcotest.(check bool) "inner loop is fine" true (inner.Bufferability.verdict = Ok ())

let call_loop callee_body =
  Printf.sprintf
    {|
start:
    addi r16, r0, 0
loop:
    jal  f
    addi r16, r16, 1
    slti r2, r16, 50
    bne  r2, r0, loop
    halt
f:
%s    jr   r31
|}
    callee_body

let test_verdict_callee_ok () =
  let l = analyzed_loop (call_loop "    addi r3, r3, 1\n") in
  Alcotest.(check bool) "small callee is bufferable" true (l.Bufferability.verdict = Ok ())

let test_verdict_call_overflow () =
  let big = String.concat "" (List.init 40 (fun i -> Printf.sprintf "    addi r%d, r0, 2\n" (3 + (i mod 8)))) in
  let l = analyzed_loop (call_loop big) in
  match l.Bufferability.verdict with
  | Error (Bufferability.Call_overflow fp) ->
      Alcotest.(check bool) "footprint includes the callee" true (fp > 40)
  | _ -> Alcotest.fail "expected Call_overflow"

let test_verdict_callee_loops () =
  (* The callee's internal loop is a second analysed transfer; pick the
     calling loop by its span. *)
  let body = "    addi r3, r0, 5\nfl:\n    addi r3, r3, -1\n    bgtz r3, fl\n" in
  let report = Bufferability.analyze ~iq_size:32 (parse (call_loop body)) in
  let l =
    List.fold_left
      (fun a b -> if b.Bufferability.span > a.Bufferability.span then b else a)
      (List.hd report.Bufferability.loops)
      report.Bufferability.loops
  in
  match l.Bufferability.verdict with
  | Error (Bufferability.Callee_loops _) -> ()
  | _ -> Alcotest.fail "expected Callee_loops"

let test_verdict_indirect () =
  (* The indirect jump sits in a branch arm so the loop tail stays
     statically reachable. *)
  let src =
    {|
start:
    addi r16, r0, 0
    la   r5, start
loop:
    beq  r16, r0, skipjr
    jr   r5
skipjr:
    addi r16, r16, 1
    slti r2, r16, 9
    bne  r2, r0, loop
    halt
|}
  in
  let l = analyzed_loop src in
  match l.Bufferability.verdict with
  | Error (Bufferability.Indirect _) -> ()
  | _ -> Alcotest.fail "expected Indirect"

(* ---- Differential: static pass vs. the dynamic core ---- *)

let coverage_tolerance = 10.0

let differential_one bench size () =
  let w = Workloads.find bench in
  let program = Workloads.program w in
  let cfg = Config.with_iq_size Config.reuse size in
  let report = Bufferability.analyze_config cfg program in
  let p = Processor.create cfg program in
  (match Processor.run p with
  | Processor.Halted -> ()
  | Cycle_limit -> Alcotest.fail "cycle limit");
  let decisions = Processor.loop_decisions p in
  let promotions_at tail =
    match List.find_opt (fun d -> d.Processor.ld_tail = tail) decisions with
    | Some d -> d.Processor.ld_promotions
    | None -> 0
  in
  (* Verdict agreement for every backward transfer the analyzer saw. *)
  List.iter
    (fun l ->
      let promos = promotions_at l.Bufferability.tail in
      match l.Bufferability.prediction with
      | Bufferability.Promotes ->
          Alcotest.(check bool)
            (Printf.sprintf "%s iq%d loop %x should promote" bench size l.Bufferability.tail)
            true (promos > 0)
      | Bufferability.Never_promotes ->
          Alcotest.(check int)
            (Printf.sprintf "%s iq%d loop %x should never promote" bench size
               l.Bufferability.tail)
            0 promos
      | Bufferability.Marginal -> ())
    report.Bufferability.loops;
  (* Every loop the detector ever considered is in the static report. *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "%s iq%d dynamic loop %x analysed statically" bench size
           d.Processor.ld_tail)
        true
        (List.exists (fun l -> l.Bufferability.tail = d.Processor.ld_tail) report.Bufferability.loops))
    decisions;
  (* Predicted coverage tracks measured coverage. *)
  let s = Processor.stats p in
  let measured =
    if s.Processor.committed = 0 then 0.
    else 100. *. float_of_int s.Processor.reuse_committed /. float_of_int s.Processor.committed
  in
  let predicted = Option.value ~default:0. report.Bufferability.coverage in
  Alcotest.(check bool)
    (Printf.sprintf "%s iq%d coverage: predicted %.1f vs measured %.1f" bench size predicted
       measured)
    true
    (Float.abs (predicted -. measured) <= coverage_tolerance)

let differential_tests =
  List.concat_map
    (fun w ->
      List.map
        (fun size ->
          Alcotest.test_case
            (Printf.sprintf "%s iq=%d" w.Workloads.name size)
            `Slow
            (differential_one w.Workloads.name size))
        [ 32; 128 ])
    Workloads.all

let suites =
  [
    ( "analysis.cfg",
      [
        Alcotest.test_case "blocks and edges" `Quick test_cfg_blocks;
        Alcotest.test_case "call edges" `Quick test_cfg_call_edges;
        Alcotest.test_case "rpo is topological" `Quick test_cfg_rpo_topological;
      ] );
    ( "analysis.dominators",
      [ Alcotest.test_case "diamond" `Quick test_dominators_diamond ] );
    ( "analysis.loops",
      [
        Alcotest.test_case "nest detection" `Quick test_loop_nest;
        Alcotest.test_case "irreducible rejected" `Quick test_irreducible_rejected;
      ] );
    ( "analysis.liveness",
      [
        Alcotest.test_case "loop-carried registers" `Quick test_liveness;
        Alcotest.test_case "per-instruction query" `Quick test_liveness_before;
      ] );
    ( "analysis.bufferability",
      [
        Alcotest.test_case "trip counts (up)" `Quick test_trip_count;
        Alcotest.test_case "trip counts (down)" `Quick test_trip_count_down;
        Alcotest.test_case "bufferable loop" `Quick test_verdict_bufferable;
        Alcotest.test_case "too large" `Quick test_verdict_too_large;
        Alcotest.test_case "inner loop" `Quick test_verdict_inner_loop;
        Alcotest.test_case "small callee ok" `Quick test_verdict_callee_ok;
        Alcotest.test_case "call overflow" `Quick test_verdict_call_overflow;
        Alcotest.test_case "callee loops" `Quick test_verdict_callee_loops;
        Alcotest.test_case "indirect" `Quick test_verdict_indirect;
      ] );
    ("analysis.differential", differential_tests);
  ]
