open Riq_util

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in inclusive range" true (v >= -5 && v <= 5);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0. && f < 2.5)
  done

let test_rng_split () =
  let a = Rng.create 9 in
  let c = Rng.split a in
  let d = Rng.split a in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 c <> Rng.bits64 d)

let test_rng_shuffle () =
  let rng = Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

(* ---- Stats ---- *)

let test_mean () =
  checkf "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  checkf "empty" 0. (Stats.mean [||])

let test_geomean () =
  checkf "geomean" 2. (Stats.geomean [| 1.; 2.; 4. |]);
  checkf "empty" 0. (Stats.geomean [||])

let test_stddev () =
  checkf "constant" 0. (Stats.stddev [| 5.; 5.; 5. |]);
  checkf "spread" 2. (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_minmax () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  checkf "min" (-1.) lo;
  checkf "max" 7. hi;
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.min_max: empty array")
    (fun () -> ignore (Stats.min_max [||]))

let test_percent_ratio () =
  checkf "percent" 25. (Stats.percent 1. 4.);
  checkf "percent of zero" 0. (Stats.percent 1. 0.);
  checkf "ratio" 0.5 (Stats.ratio 1. 2.);
  checkf "ratio of zero" 0. (Stats.ratio 1. 0.)

let test_counter () =
  let c = Stats.counter "events" in
  Stats.incr c;
  Stats.add c 4;
  check "count" 5 (Stats.value c);
  Alcotest.(check string) "name" "events" (Stats.name c);
  Stats.reset c;
  check "reset" 0 (Stats.value c)

let test_quantile () =
  checkf "empty" 0. (Stats.quantile 0.5 [||]);
  checkf "singleton p0" 7. (Stats.quantile 0. [| 7. |]);
  checkf "singleton p100" 7. (Stats.quantile 1. [| 7. |]);
  (* Linear interpolation between order statistics, input order irrelevant. *)
  checkf "median even" 2.5 (Stats.quantile 0.5 [| 4.; 1.; 3.; 2. |]);
  checkf "median odd" 3. (Stats.quantile 0.5 [| 5.; 1.; 3. |]);
  checkf "p25 interpolated" 1.75 (Stats.quantile 0.25 [| 4.; 1.; 3.; 2. |]);
  checkf "p95" 9.55 (Stats.quantile 0.95 (Array.init 10 (fun i -> float_of_int (i + 1))));
  checkf "min" 1. (Stats.quantile 0. [| 4.; 1.; 3. |]);
  checkf "max" 4. (Stats.quantile 1. [| 4.; 1.; 3. |]);
  Alcotest.check_raises "q out of range" (Invalid_argument "Stats.quantile: q outside [0, 1]")
    (fun () -> ignore (Stats.quantile 1.5 [| 1. |]))

(* ---- Json ---- *)

let test_json_escaping () =
  let s v = Json.to_string (Json.String v) in
  Alcotest.(check string) "plain" "\"abc\"" (s "abc");
  Alcotest.(check string) "quote" "\"a\\\"b\"" (s "a\"b");
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (s "a\\b");
  Alcotest.(check string) "newline" "\"a\\nb\"" (s "a\nb");
  Alcotest.(check string) "tab and cr" "\"a\\tb\\rc\"" (s "a\tb\rc");
  Alcotest.(check string) "control char" "\"a\\u0001b\"" (s "a\x01b");
  Alcotest.(check string) "nul" "\"\\u0000\"" (s "\x00");
  Alcotest.(check string) "escaped key" "{\"a\\nb\":1}"
    (Json.to_string (Json.Obj [ ("a\nb", Json.Int 1) ]))

let test_json_null () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "null in list" "[null,1]"
    (Json.to_string (Json.List [ Json.Null; Json.Int 1 ]));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_parse_basics () =
  let p = Json.of_string_exn in
  Alcotest.(check bool) "null" true (p "null" = Json.Null);
  Alcotest.(check bool) "bools" true (p "true" = Json.Bool true && p "false" = Json.Bool false);
  Alcotest.(check bool) "int" true (p "-42" = Json.Int (-42));
  Alcotest.(check bool) "float" true (p "2.5" = Json.Float 2.5);
  Alcotest.(check bool) "exponent is float" true (p "1e3" = Json.Float 1000.);
  Alcotest.(check bool) "string" true (p "\"ab\"" = Json.String "ab");
  Alcotest.(check bool) "whitespace" true
    (p " [ 1 , {\"a\" : null} ] \n" = Json.List [ Json.Int 1; Json.Obj [ ("a", Json.Null) ] ]);
  Alcotest.(check bool) "empty containers" true
    (p "[]" = Json.List [] && p "{}" = Json.Obj []);
  (* Integers past the int range stay numeric as floats. *)
  match p "123456789012345678901234567890" with
  | Json.Float _ -> ()
  | _ -> Alcotest.fail "overflowing integer should parse as Float"

let test_json_parse_escapes () =
  let p = Json.of_string_exn in
  Alcotest.(check bool) "simple escapes" true
    (p "\"a\\n\\t\\r\\\\\\\"\\/b\"" = Json.String "a\n\t\r\\\"/b");
  Alcotest.(check bool) "unicode escape" true (p "\"\\u0041\"" = Json.String "A");
  Alcotest.(check bool) "two-byte utf8" true (p "\"\\u00e9\"" = Json.String "\xc3\xa9");
  Alcotest.(check bool) "three-byte utf8" true (p "\"\\u20ac\"" = Json.String "\xe2\x82\xac");
  Alcotest.(check bool) "surrogate pair" true
    (p "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80")

let test_json_parse_errors () =
  let rejects s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
    | Error _ -> ()
  in
  List.iter rejects
    [
      ""; "nul"; "tru"; "01"; "+1"; "1."; ".5"; "1e"; "--1";
      "\"unterminated"; "\"bad \\x escape\""; "\"\\ud83d\"" (* lone surrogate *);
      "[1,]"; "[1 2]"; "{\"a\"}"; "{\"a\":1,}"; "{1:2}"; "}";
      "null null" (* trailing garbage *); "[1] x";
    ]

(* Parse-side round trip: any document the emitter can produce comes back
   equal, up to the documented Int/Float split (an integral float prints
   without a fraction and re-reads as Int). *)
let rec json_eq a b =
  match (a, b) with
  | Json.Int i, Json.Float f | Json.Float f, Json.Int i -> float_of_int i = f
  | Json.Float x, Json.Float y -> x = y
  | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k, v) (k', v') -> k = k' && json_eq v v') xs ys
  | _ -> a = b

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        (* Finite by construction (m * 2^e, |e| <= 20). *)
        map2
          (fun m e -> Json.Float (Float.ldexp (float_of_int m) e))
          (int_range (-1000000) 1000000) (int_range (-20) 20);
        map (fun s -> Json.String s) (string_size (int_bound 12));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then scalar
         else
           frequency
             [
               (3, scalar);
               (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
               ( 1,
                 map
                   (fun l -> Json.Obj l)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 6)) (self (n / 2)))) );
             ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json parses its own output" ~count:500
    (QCheck.make ~print:(fun j -> Json.to_string j) json_gen)
    (fun doc ->
      json_eq doc (Json.of_string_exn (Json.to_string doc))
      && json_eq doc (Json.of_string_exn (Json.to_string ~indent:true doc)))

let prop_json_string_escaping_roundtrip =
  QCheck.Test.make ~name:"json string escaping round-trips arbitrary bytes" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s -> Json.of_string_exn (Json.to_string (Json.String s)) = Json.String s)

(* ---- Bits ---- *)

let test_bits_mask () =
  check "mask 0" 0 (Bits.mask 0);
  check "mask 8" 255 (Bits.mask 8);
  check "mask 32" 0xFFFFFFFF (Bits.mask 32)

let test_bits_fields () =
  let w = Bits.insert 0 ~lo:4 ~width:8 0xAB in
  check "insert" 0xAB0 w;
  check "extract" 0xAB (Bits.extract w ~lo:4 ~width:8);
  check "overwrite" 0xCD (Bits.extract (Bits.insert w ~lo:4 ~width:8 0xCD) ~lo:4 ~width:8)

let test_sign_extend () =
  check "positive" 5 (Bits.sign_extend 5 ~width:16);
  check "negative" (-1) (Bits.sign_extend 0xFFFF ~width:16);
  check "min" (-32768) (Bits.sign_extend 0x8000 ~width:16)

let test_arith32 () =
  check "wrap add" (-2147483648) (Bits.add32 0x7FFFFFFF 1);
  check "wrap sub" 2147483647 (Bits.sub32 (-2147483648) 1);
  check "mul" (-6) (Bits.mul32 2 (-3));
  check "mul wrap" 0 (Bits.mul32 0x10000 0x10000)

let test_log2 () =
  check "log2 1" 0 (Bits.log2 1);
  check "log2 1024" 10 (Bits.log2 1024);
  Alcotest.(check bool) "pow2" true (Bits.is_pow2 64);
  Alcotest.(check bool) "not pow2" false (Bits.is_pow2 48);
  Alcotest.(check bool) "zero" false (Bits.is_pow2 0)

(* ---- Table ---- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "long-cell"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains cell" true (contains s "long-cell")

let test_table_bad_row () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: cell count does not match column count") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "pct" "12.3%" (Table.cell_pct 12.345)

(* ---- property tests ---- *)

let prop_mask_extract =
  QCheck.Test.make ~name:"insert then extract returns the value" ~count:500
    QCheck.(triple (int_bound 24) (int_bound 8) (int_bound 0xFFFF))
    (fun (lo, w, v) ->
      let width = w + 1 in
      let v = v land Bits.mask width in
      Bits.extract (Bits.insert 0 ~lo ~width v) ~lo ~width = v)

let prop_sign_extend_roundtrip =
  QCheck.Test.make ~name:"sign_extend is idempotent on its range" ~count:500
    QCheck.(int_range (-32768) 32767)
    (fun v -> Bits.sign_extend (v land 0xFFFF) ~width:16 = v)

let suites =
  [
    ( "util",
      [
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng split" `Quick test_rng_split;
        Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
        Alcotest.test_case "stats mean" `Quick test_mean;
        Alcotest.test_case "stats geomean" `Quick test_geomean;
        Alcotest.test_case "stats stddev" `Quick test_stddev;
        Alcotest.test_case "stats min/max" `Quick test_minmax;
        Alcotest.test_case "stats percent/ratio" `Quick test_percent_ratio;
        Alcotest.test_case "stats counter" `Quick test_counter;
        Alcotest.test_case "stats quantile" `Quick test_quantile;
        Alcotest.test_case "json string escaping" `Quick test_json_escaping;
        Alcotest.test_case "json null" `Quick test_json_null;
        Alcotest.test_case "json parse basics" `Quick test_json_parse_basics;
        Alcotest.test_case "json parse escapes" `Quick test_json_parse_escapes;
        Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
        QCheck_alcotest.to_alcotest prop_json_roundtrip;
        QCheck_alcotest.to_alcotest prop_json_string_escaping_roundtrip;
        Alcotest.test_case "bits mask" `Quick test_bits_mask;
        Alcotest.test_case "bits fields" `Quick test_bits_fields;
        Alcotest.test_case "bits sign extend" `Quick test_sign_extend;
        Alcotest.test_case "bits 32-bit arithmetic" `Quick test_arith32;
        Alcotest.test_case "bits log2" `Quick test_log2;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table arity" `Quick test_table_bad_row;
        Alcotest.test_case "table cells" `Quick test_table_cells;
        QCheck_alcotest.to_alcotest prop_mask_extract;
        QCheck_alcotest.to_alcotest prop_sign_extend_roundtrip;
      ] );
  ]

let test_table_csv () =
  let t = Table.create ~title:"ignored" [ ("name", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "with, comma"; "quote\"d" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv"
    "name,v\nplain,1\n\"with, comma\",\"quote\"\"d\"\n" csv

let csv_suites =
  [ ("table-csv", [ Alcotest.test_case "csv rendering" `Quick test_table_csv ]) ]
