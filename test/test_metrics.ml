open Riq_util
open Riq_obs

(* ---- Registration and instrument basics ---- *)

let test_registration () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"h" "jobs_total" in
  Metrics.inc c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  (* Re-registering (name, labels) yields the same cell. *)
  let c' = Metrics.counter m "jobs_total" in
  Metrics.inc c';
  Alcotest.(check int) "same cell" 6 (Metrics.counter_value c);
  Alcotest.check_raises "monotonic"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () ->
      Metrics.add c (-1));
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 0.)) "gauge" 3.5 (Metrics.gauge_value g);
  (* One name, one kind; names are validated. *)
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Metrics.gauge m "jobs_total");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad name rejected" true
    (try
       ignore (Metrics.counter m "1bad");
       false
     with Invalid_argument _ -> true)

(* ---- Histogram bucket edges ---- *)

let test_bucket_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 0.001; 0.01; 0.1 |] "lat_seconds" in
  (* Prometheus [le] semantics: a value exactly on an edge belongs to
     that edge's bucket; past the last bound is the overflow bucket. *)
  Metrics.observe h 0.001;
  Metrics.observe h 0.002;
  Metrics.observe h 0.01;
  Metrics.observe h 0.1;
  Metrics.observe h 0.2;
  Metrics.observe h 0.;
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  match Metrics.snapshot m with
  | [ { Metrics.s_value = Metrics.Histogram_sample { bounds; counts; sum }; _ } ] ->
      Alcotest.(check (array (float 0.))) "bounds" [| 0.001; 0.01; 0.1 |] bounds;
      Alcotest.(check (array int)) "per-bucket counts" [| 2; 2; 1; 1 |] counts;
      Alcotest.(check (float 1e-9)) "sum" 0.313 sum
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_log_buckets () =
  Alcotest.(check (array (float 1e-12)))
    "geometric" [| 0.5; 1.; 2. |]
    (Metrics.log_buckets ~start:0.5 ~factor:2. 3);
  let d = Metrics.log_buckets 30 in
  Alcotest.(check int) "default width" 30 (Array.length d);
  Alcotest.(check (float 1e-18)) "default start" 1e-6 d.(0);
  let ascending = ref true in
  Array.iteri (fun i b -> if i > 0 && b <= d.(i - 1) then ascending := false) d;
  Alcotest.(check bool) "strictly ascending" true !ascending;
  Alcotest.(check bool) "spans minutes" true (d.(29) > 300.)

(* ---- Snapshot merge across a real fork ---- *)

let find_sample name snap =
  match List.find_opt (fun s -> s.Metrics.s_name = name) snap with
  | Some s -> s.Metrics.s_value
  | None -> Alcotest.fail ("series missing: " ^ name)

(* The worker protocol in miniature: the child instruments its own
   registry and ships one marshaled snapshot back over a pipe; the parent
   merges it with its own. Counters and buckets add; gauges add (the
   fleet-sum convention for per-worker gauges). *)
let instrument m ~jobs ~inflight ~observations =
  Metrics.add (Metrics.counter m "jobs_total") jobs;
  Metrics.set (Metrics.gauge m "inflight") inflight;
  let h = Metrics.histogram m ~buckets:[| 0.1; 1. |] "dur_seconds" in
  List.iter (Metrics.observe h) observations;
  m

let test_fork_merge () =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let m =
        instrument (Metrics.create ()) ~jobs:3 ~inflight:2. ~observations:[ 0.5; 5. ]
      in
      let oc = Unix.out_channel_of_descr wr in
      Marshal.to_channel oc (Metrics.snapshot m) [];
      flush oc;
      Unix._exit 0
  | pid ->
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      let child : Metrics.snapshot = Marshal.from_channel ic in
      close_in ic;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "child did not exit cleanly");
      let parent =
        instrument (Metrics.create ()) ~jobs:2 ~inflight:1. ~observations:[ 0.05 ]
      in
      let merged = Metrics.merge (Metrics.snapshot parent) child in
      (match find_sample "jobs_total" merged with
      | Metrics.Counter_sample v -> Alcotest.(check int) "counters add" 5 v
      | _ -> Alcotest.fail "jobs_total not a counter");
      (match find_sample "inflight" merged with
      | Metrics.Gauge_sample v -> Alcotest.(check (float 0.)) "gauges add" 3. v
      | _ -> Alcotest.fail "inflight not a gauge");
      (match find_sample "dur_seconds" merged with
      | Metrics.Histogram_sample { counts; sum; _ } ->
          Alcotest.(check (array int)) "buckets add" [| 1; 1; 1 |] counts;
          Alcotest.(check (float 1e-9)) "sums add" 5.55 sum
      | _ -> Alcotest.fail "dur_seconds not a histogram");
      (* absorb folds the same snapshot into live registry state. *)
      let live =
        instrument (Metrics.create ()) ~jobs:2 ~inflight:1. ~observations:[ 0.05 ]
      in
      Metrics.absorb live child;
      Alcotest.(check bool) "absorb = merge" true (Metrics.snapshot live = merged)

let test_merge_mismatch () =
  let snap_of build =
    let m = Metrics.create () in
    build m;
    Metrics.snapshot m
  in
  let refuses a b =
    try
      ignore (Metrics.merge a b);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "kind mismatch" true
    (refuses
       (snap_of (fun m -> ignore (Metrics.counter m "x_total")))
       (snap_of (fun m -> ignore (Metrics.gauge m "x_total"))));
  Alcotest.(check bool) "bounds mismatch" true
    (refuses
       (snap_of (fun m -> ignore (Metrics.histogram m ~buckets:[| 1. |] "h_seconds")))
       (snap_of (fun m -> ignore (Metrics.histogram m ~buckets:[| 2. |] "h_seconds"))))

(* ---- Exposition ---- *)

let golden_registry () =
  let m = Metrics.create () in
  let h =
    Metrics.histogram m ~help:"Request latency" ~buckets:[| 0.001; 0.01; 0.1 |]
      "latency_seconds"
  in
  List.iter (Metrics.observe h) [ 0.001; 0.005; 0.05; 0.5 ];
  Metrics.set (Metrics.gauge m ~help:"Jobs queued" "queue_depth") 4.;
  Metrics.add
    (Metrics.counter m ~help:"Requests served" ~labels:[ ("op", "submit") ]
       "requests_total")
    3;
  Metrics.inc
    (Metrics.counter m ~help:"Requests served" ~labels:[ ("op", "poll") ]
       "requests_total");
  m

(* Byte-for-byte: sorted by (name, labels), HELP/TYPE once per name,
   histogram buckets cumulative with le edges, +Inf closing the family. *)
let test_prometheus_golden () =
  let expected =
    "# HELP latency_seconds Request latency\n\
     # TYPE latency_seconds histogram\n\
     latency_seconds_bucket{le=\"0.001\"} 1\n\
     latency_seconds_bucket{le=\"0.01\"} 2\n\
     latency_seconds_bucket{le=\"0.1\"} 3\n\
     latency_seconds_bucket{le=\"+Inf\"} 4\n\
     latency_seconds_sum 0.556\n\
     latency_seconds_count 4\n\
     # HELP queue_depth Jobs queued\n\
     # TYPE queue_depth gauge\n\
     queue_depth 4\n\
     # HELP requests_total Requests served\n\
     # TYPE requests_total counter\n\
     requests_total{op=\"poll\"} 1\n\
     requests_total{op=\"submit\"} 3\n"
  in
  Alcotest.(check string) "exposition" expected
    (Metrics.to_prometheus (Metrics.snapshot (golden_registry ())))

let test_label_escaping () =
  let m = Metrics.create () in
  Metrics.inc
    (Metrics.counter m ~labels:[ ("path", "a\"b\\c\nd") ] "files_total");
  let exposition = Metrics.to_prometheus (Metrics.snapshot m) in
  Alcotest.(check bool) "escaped" true
    (String.length exposition > 0
    && exposition
       = "# TYPE files_total counter\nfiles_total{path=\"a\\\"b\\\\c\\nd\"} 1\n")

(* The wire format: registry -> JSON text -> snapshot must be the
   identity, since the metrics op ships exactly this document. *)
let test_json_round_trip () =
  let snap = Metrics.snapshot (golden_registry ()) in
  let text = Json.to_string (Metrics.to_json snap) in
  match Result.bind (Json.of_string text) Metrics.snapshot_of_json with
  | Ok snap' -> Alcotest.(check bool) "round trip" true (snap = snap')
  | Error msg -> Alcotest.fail msg

let test_json_rejects () =
  let reject j =
    match Metrics.snapshot_of_json j with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "wrong schema" true
    (reject (Json.Obj [ ("schema", Json.String "riq-metrics/9") ]));
  Alcotest.(check bool) "not an object" true (reject (Json.List []))

(* ---- Quantile estimation ---- *)

let test_histogram_quantile () =
  let bounds = [| 1.; 2.; 4. |] in
  let counts = [| 2; 2; 0; 0 |] in
  Alcotest.(check (float 1e-9)) "median at bucket edge" 1.
    (Metrics.histogram_quantile 0.5 ~bounds ~counts);
  Alcotest.(check (float 1e-9)) "p75 interpolates" 1.5
    (Metrics.histogram_quantile 0.75 ~bounds ~counts);
  Alcotest.(check (float 1e-9)) "overflow clamps to last bound" 4.
    (Metrics.histogram_quantile 1.0 ~bounds ~counts:[| 0; 0; 0; 5 |]);
  Alcotest.(check (float 0.)) "empty histogram" 0.
    (Metrics.histogram_quantile 0.5 ~bounds ~counts:[| 0; 0; 0; 0 |]);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.histogram_quantile: q outside [0, 1]") (fun () ->
      ignore (Metrics.histogram_quantile 1.5 ~bounds ~counts))

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "registration" `Quick test_registration;
        Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
        Alcotest.test_case "log buckets" `Quick test_log_buckets;
        Alcotest.test_case "merge across fork" `Quick test_fork_merge;
        Alcotest.test_case "merge mismatch" `Quick test_merge_mismatch;
        Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
        Alcotest.test_case "label escaping" `Quick test_label_escaping;
        Alcotest.test_case "json round trip" `Quick test_json_round_trip;
        Alcotest.test_case "json rejects" `Quick test_json_rejects;
        Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
      ] );
  ]
